// Serve: build a footprint store entirely in memory, query it
// programmatically, then stand up the full offnetd serving engine —
// worker pool, query cache, batch endpoint — and measure it with a
// seeded loadgen workload. No network, no files, no daemon: world →
// scan → pipeline → footstore → serving engine → load report.
package main

import (
	"context"
	"fmt"
	"log"

	"offnetscope/internal/core"
	"offnetscope/internal/footstore"
	"offnetscope/internal/hg"
	"offnetscope/internal/loadgen"
	"offnetscope/internal/offnetserve"
	"offnetscope/internal/scanners"
	"offnetscope/internal/timeline"
	"offnetscope/internal/worldsim"
)

func main() {
	log.SetFlags(0)

	// 1. A tiny deterministic world, scanned at the final snapshot.
	world, err := worldsim.New(worldsim.Config{Seed: 7, Scale: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	s := timeline.Snapshot(timeline.Count() - 1) // 2021-04
	snap := scanners.Scan(world, scanners.Rapid7Profile(), s)

	// 2. The §4 inference pipeline turns the scan into footprints.
	pipeline := &core.Pipeline{
		Trust:  world.TrustStore(),
		Orgs:   world.Orgs(),
		Mapper: func(s timeline.Snapshot) core.IPMapper { return world.IP2AS(s) },
		Opts:   core.DefaultOptions(),
	}
	res := pipeline.Run(snap)

	// 3. Freeze the result into an immutable store. The IP2AS table
	//    rides along so single-address queries resolve through LPM.
	store, err := footstore.FromResult(res, world.IP2AS(s))
	if err != nil {
		log.Fatal(err)
	}
	stats := store.Stats()
	fmt.Printf("store: %d snapshot(s), %d hypergiants, %d spans, %d prefixes\n",
		stats.Snapshots, stats.Hypergiants, stats.Spans, stats.Prefixes)

	// 4. Query it — the same lookups offnetd serves as /v1/* endpoints.
	fp, _ := store.Footprint(hg.Google, s)
	fmt.Printf("Google serves from %d ASes at %s\n", len(fp), s.Label())

	if len(res.PerHG[hg.Google].ConfirmedIPList) > 0 {
		ip := res.PerHG[hg.Google].ConfirmedIPList[0]
		prefix, origins, ok := store.LookupIP(ip)
		if ok {
			fmt.Printf("%s -> %s, origin AS%v\n", ip, prefix, origins)
			for _, h := range store.HostingsOf(origins[0]) {
				fmt.Printf("  AS%d hosts %s (%s..%s)\n", h.AS, h.HG, h.First.Label(), h.Last.Label())
			}
		}
	}

	// 5. The production serving engine in-process: the same handler
	//    stack offnetd puts behind a socket, with a generation-keyed
	//    query cache and the /v1/batch bulk endpoint.
	srv := offnetserve.New(store, offnetserve.Config{Workers: 32, CacheSize: 1024})

	// 6. A seeded workload derived from the store itself: zipfian hot
	//    IPs over its real prefixes, cold misses, AS and footprint
	//    queries, a malformed sliver. Same seed = identical trace.
	plan, err := loadgen.BuildPlan(store, loadgen.PlanConfig{Seed: 7, Requests: 20000})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := loadgen.Drive(context.Background(), plan,
		loadgen.HandlerTarget{Handler: srv}, loadgen.Options{Concurrency: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loadgen: %d requests (trace %s): %.0f req/s, p99 %dns, 5xx=%d\n",
		rep.Requests, rep.TraceHash, rep.QPS, rep.P99Ns, rep.Errors5xx)
	snap2 := srv.Registry().Snapshot()
	fmt.Printf("cache: %d hits, %d misses, %d deduped in-flight\n",
		snap2.Counter("cache.hits"), snap2.Counter("cache.misses"), snap2.Counter("cache.shared"))
}
