// Quickstart: generate a small synthetic Internet, scan it like Rapid7
// would, run the §4 off-net inference pipeline for one snapshot, and
// compare against ground truth — the minimal end-to-end use of the
// library's public API.
package main

import (
	"fmt"
	"log"

	"offnetscope/internal/core"
	"offnetscope/internal/hg"
	"offnetscope/internal/scanners"
	"offnetscope/internal/timeline"
	"offnetscope/internal/worldsim"
)

func main() {
	log.SetFlags(0)

	// 1. Build a world: a deterministic synthetic Internet with
	//    hypergiant deployments, at 2% of real-Internet scale.
	world, err := worldsim.New(worldsim.Config{Seed: 7, Scale: 0.02})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Scan it with the Rapid7-like campaign at the last snapshot.
	s := timeline.Snapshot(timeline.Count() - 1) // 2021-04
	snap := scanners.Scan(world, scanners.Rapid7Profile(), s)
	fmt.Printf("scanned %s: %d certificate records, %d HTTPS banners\n",
		s.Label(), len(snap.Certs), len(snap.HTTPS))

	// 3. Run the paper's methodology: validate chains, learn TLS
	//    fingerprints from on-nets, flag candidates, confirm by headers.
	pipeline := &core.Pipeline{
		Trust:  world.TrustStore(),
		Orgs:   world.Orgs(),
		Mapper: func(s timeline.Snapshot) core.IPMapper { return world.IP2AS(s) },
		Opts:   core.DefaultOptions(),
	}
	res := pipeline.Run(snap)

	// 4. Report, with ground truth alongside (a luxury the paper's
	//    authors only got from operator surveys).
	fmt.Printf("\n%-10s %9s %9s %7s\n", "HG", "inferred", "truth", "recall")
	for _, id := range hg.Top4() {
		inferred := res.PerHG[id].ConfirmedASes
		truth := world.TrueOffNetASes(id, s)
		hits := 0
		for _, as := range truth {
			if _, ok := inferred[as]; ok {
				hits++
			}
		}
		recall := 0.0
		if len(truth) > 0 {
			recall = 100 * float64(hits) / float64(len(truth))
		}
		fmt.Printf("%-10s %9d %9d %6.1f%%\n", id, len(inferred), len(truth), recall)
	}
}
