// Longitudinal: run the full seven-year study (31 quarterly snapshots)
// over a Rapid7-like corpus, reproducing the Figure 3 growth series —
// including the three Netflix envelope variants the paper needed to see
// through the 2017-2019 expired-certificate era.
package main

import (
	"fmt"
	"log"
	"time"

	"offnetscope/internal/core"
	"offnetscope/internal/corpus"
	"offnetscope/internal/hg"
	"offnetscope/internal/scanners"
	"offnetscope/internal/timeline"
	"offnetscope/internal/worldsim"
)

func main() {
	log.SetFlags(0)

	world, err := worldsim.New(worldsim.Config{Seed: 7, Scale: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	pipeline := &core.Pipeline{
		Trust:  world.TrustStore(),
		Orgs:   world.Orgs(),
		Mapper: func(s timeline.Snapshot) core.IPMapper { return world.IP2AS(s) },
		Opts:   core.DefaultOptions(),
	}

	profile := scanners.Rapid7Profile()
	start := time.Now()
	study := pipeline.RunStudy(func(s timeline.Snapshot) *corpus.Snapshot {
		return scanners.Scan(world, profile, s)
	})
	log.Printf("31-snapshot study in %v", time.Since(start).Round(time.Millisecond))

	fmt.Printf("%-8s %7s %9s %7s %8s %8s %8s\n",
		"snap", "Google", "Facebook", "Akamai", "NF-init", "NF-exp", "NF-http")
	g := study.ConfirmedSeries(hg.Google)
	f := study.ConfirmedSeries(hg.Facebook)
	a := study.ConfirmedSeries(hg.Akamai)
	for _, s := range timeline.All() {
		fmt.Printf("%-8s %7d %9d %7d %8d %8d %8d\n",
			s.Label(), g[s], f[s], a[s],
			study.NetflixInitial[s], study.NetflixWithExpired[s], study.NetflixNonTLS[s])
	}

	fmt.Println("\nTable-3-style summary (max footprint and when):")
	for _, h := range hg.All() {
		max, at := study.MaxConfirmed(h.ID)
		if max == 0 {
			continue
		}
		fmt.Printf("%-12s max %5d ASes at %s\n", h.ID, max, at.Label())
	}
}
