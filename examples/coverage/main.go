// Coverage: estimate how much of each country's Internet user
// population can be served from inside its own network provider —
// Figures 7 and 8 for Google, including the customer-cone expansion.
package main

import (
	"fmt"
	"log"
	"sort"

	"offnetscope/internal/astopo"
	"offnetscope/internal/core"
	"offnetscope/internal/hg"
	"offnetscope/internal/population"
	"offnetscope/internal/scanners"
	"offnetscope/internal/timeline"
	"offnetscope/internal/worldsim"
)

func main() {
	log.SetFlags(0)

	world, err := worldsim.New(worldsim.Config{Seed: 7, Scale: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	pop := population.Build(world.Graph(), 7)

	s := timeline.Snapshot(timeline.Count() - 1)
	pipeline := &core.Pipeline{
		Trust:  world.TrustStore(),
		Orgs:   world.Orgs(),
		Mapper: func(s timeline.Snapshot) core.IPMapper { return world.IP2AS(s) },
		Opts:   core.DefaultOptions(),
	}
	res := pipeline.Run(scanners.Scan(world, scanners.Rapid7Profile(), s))

	hosting := res.PerHG[hg.Google].ConfirmedASes
	direct := pop.CoverageByCountry(hosting, s)
	cones := pop.ConeCoverageByCountry(hosting, s)

	fmt.Printf("Google off-nets in %d ASes at %s\n", len(hosting), s.Label())
	fmt.Printf("world coverage: %.1f%% direct, %.1f%% with customer cones\n\n",
		pop.WorldCoverage(hosting, s),
		pop.WorldCoverage(population.ExpandByCones(world.Graph(), hosting, s), s))

	fmt.Printf("%-4s %-20s %8s %8s\n", "cc", "country", "direct", "+cones")
	var codes []string
	for code := range direct {
		codes = append(codes, code)
	}
	sort.Slice(codes, func(i, j int) bool { return direct[codes[i]] > direct[codes[j]] })
	for i, code := range codes {
		if i >= 20 {
			break
		}
		c, _ := astopo.CountryByCode(code)
		fmt.Printf("%-4s %-20s %7.1f%% %7.1f%%\n", code, c.Name, direct[code], cones[code])
	}
}
