// Methods: why the paper's certificate approach was needed. Runs the two
// earlier mapping techniques — EDNS-Client-Subnet enumeration and
// Facebook FNA hostname guessing — as real algorithms against the
// simulated DNS control plane, next to the certificate-based inference,
// and shows where each breaks: ECS dies at Google's 2016 lockdown, and
// naming maps only ever cover one hypergiant.
package main

import (
	"fmt"
	"log"

	"offnetscope/internal/baselines"
	"offnetscope/internal/core"
	"offnetscope/internal/dnssim"
	"offnetscope/internal/hg"
	"offnetscope/internal/scanners"
	"offnetscope/internal/timeline"
	"offnetscope/internal/worldsim"
)

func main() {
	log.SetFlags(0)

	world, err := worldsim.New(worldsim.Config{Seed: 7, Scale: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	resolver := dnssim.New(world)
	pipeline := &core.Pipeline{
		Trust:  world.TrustStore(),
		Orgs:   world.Orgs(),
		Mapper: func(s timeline.Snapshot) core.IPMapper { return world.IP2AS(s) },
		Opts:   core.DefaultOptions(),
	}

	certCount := func(id hg.ID, s timeline.Snapshot) int {
		res := pipeline.Run(scanners.Scan(world, scanners.Rapid7Profile(), s))
		return len(res.PerHG[id].ConfirmedASes)
	}

	fmt.Println("Google hosting ASes: certificates vs ECS enumeration")
	fmt.Printf("%-10s %8s %8s\n", "snapshot", "certs", "ECS")
	for _, s := range []timeline.Snapshot{4, 9, 12, 30} {
		ecs := baselines.ECSMap(resolver, world, world.IP2AS(s), hg.Google, s)
		fmt.Printf("%-10s %8d %8d\n", s.Label(), certCount(hg.Google, s), len(ecs))
	}
	fmt.Printf("(Google stopped answering ECS at %s — the technique went blind.)\n\n", dnssim.ECSCutoff.Label())

	fmt.Println("Facebook hosting ASes: certificates vs FNA name guessing")
	fmt.Printf("%-10s %8s %8s\n", "snapshot", "certs", "naming")
	for _, s := range []timeline.Snapshot{12, 20, 30} {
		fna := baselines.FNAMap(resolver, world, world.IP2AS(s), s, 60, 6)
		fmt.Printf("%-10s %8d %8d\n", s.Label(), certCount(hg.Facebook, s), len(fna))
	}
	fmt.Println("(Naming maps need a per-hypergiant pattern; most hypergiants have none.)")
}
