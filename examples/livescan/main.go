// Livescan: exercise the methodology over real TLS connections. A
// loopback server farm plays a hypergiant's on-net, two ISP-hosted
// off-nets, a self-signed impostor, and unrelated sites; the concurrent
// prober fetches their default certificates exactly as the authors'
// certigo scan did, and the §4 rules pick out the genuine off-nets.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"offnetscope/internal/hg"
	"offnetscope/internal/probe"
	"offnetscope/internal/servefarm"
)

func main() {
	log.SetFlags(0)

	netflixHeaders := []hg.Header{{Name: "Server", Value: "nginx"}, {Name: "X-TCP-Info", Value: "rtt:120"}}
	farm, err := servefarm.Start([]servefarm.Spec{
		{Name: "netflix-onnet", Organization: "Netflix, Inc.",
			DNSNames: []string{"*.netflix.com", "*.nflxvideo.net"}, Headers: netflixHeaders},
		{Name: "oca-isp-a", Organization: "Netflix, Inc.",
			DNSNames: []string{"*.nflxvideo.net"},
			Headers:  []hg.Header{{Name: "Server", Value: "nginx"}}}, // anonymous scans see only nginx
		{Name: "oca-isp-b", Organization: "Netflix, Inc.",
			DNSNames: []string{"*.nflxvideo.net", "*.netflix.com"},
			Headers:  []hg.Header{{Name: "Server", Value: "nginx"}}},
		{Name: "impostor", Organization: "Netflix, Inc.",
			DNSNames: []string{"*.netflix.com"}, SelfSigned: true},
		{Name: "background", Organization: "Vandelay Industries",
			DNSNames: []string{"www.vandelay.example"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer farm.Close()

	scanner := probe.New(probe.Config{Concurrency: 8, Timeout: 3 * time.Second, RootCAs: farm.CA.Pool()})
	defer scanner.Close()
	ctx := context.Background()

	results := scanner.FetchCerts(ctx, farm.TLSAddrs())

	// Learn the on-net dNSName set.
	onNames := map[string]struct{}{}
	for i, r := range results {
		if farm.Servers[i].Spec.Name == "netflix-onnet" && r.Valid {
			for _, d := range r.LeafDNSNames() {
				onNames[d] = struct{}{}
			}
		}
	}

	fmt.Println("Netflix off-net inference over live TLS:")
	for i, r := range results {
		srv := farm.Servers[i]
		if srv.Spec.Name == "netflix-onnet" {
			continue
		}
		verdict := "not a candidate"
		if r.Err == nil && strings.Contains(strings.ToLower(r.LeafOrganization()), "netflix") {
			switch {
			case !r.Valid:
				verdict = "rejected: invalid chain (§4.1)"
			case !allIn(r.LeafDNSNames(), onNames):
				verdict = "rejected: dNSNames not served on-net (§4.3)"
			default:
				// §4.4's Netflix rule: a Netflix certificate plus the
				// default nginx header marks an Open Connect appliance.
				hres := scanner.FetchHeaders(ctx, []string{srv.TLSAddr}, "www.netflix.com", true)
				if hres[0].Err == nil && hasNginx(hres[0].Headers) {
					verdict = "CONFIRMED Open Connect off-net (cert + nginx)"
				} else {
					verdict = "candidate, header check failed"
				}
			}
		}
		fmt.Printf("  %-14s → %s\n", srv.Spec.Name, verdict)
	}
}

func allIn(names []string, set map[string]struct{}) bool {
	if len(names) == 0 {
		return false
	}
	for _, d := range names {
		if _, ok := set[d]; !ok {
			return false
		}
	}
	return true
}

func hasNginx(headers []hg.Header) bool {
	for _, h := range headers {
		if strings.EqualFold(h.Name, "Server") && strings.HasPrefix(strings.ToLower(h.Value), "nginx") {
			return true
		}
	}
	return false
}
