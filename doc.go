// Package offnetscope is a from-scratch Go reproduction of "Seven Years
// in the Life of Hypergiants' Off-Nets" (Gigis et al., SIGCOMM 2021): a
// generic methodology that maps where content hypergiants (Google,
// Netflix, Facebook, Akamai, ...) install servers inside other networks,
// using nothing but Internet-wide TLS-certificate and HTTP(S)-header
// scan corpuses.
//
// The repository contains the full system the paper's study needs:
//
//   - internal/core — the §4 inference pipeline (the paper's contribution);
//   - internal/worldsim — a ground-truth Internet simulator standing in
//     for the proprietary Rapid7/Censys corpuses, with every deployment
//     pathology the paper documents;
//   - internal/astopo, internal/bgpsim, internal/population — the AS
//     topology, BGP/IP-to-AS, and user-population substrates (CAIDA,
//     RouteViews/RIS, APNIC stand-ins);
//   - internal/scanners, internal/corpus — scan-campaign emulation and
//     dataset persistence;
//   - internal/probe, internal/servefarm, internal/certgen — a real
//     TLS/HTTP scanner and loopback server farm for live end-to-end runs;
//   - internal/analysis — one function per table and figure in the
//     paper's evaluation, plus the §5 validation experiments.
//
// The benchmarks in this package regenerate every table and figure; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-versus-measured comparisons.
package offnetscope
