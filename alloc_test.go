package offnetscope

import (
	"testing"

	"offnetscope/internal/analysis"
	"offnetscope/internal/worldsim"
)

// TestA3CertAllocBudget is the allocation regression gate for the
// streaming A.3 pass. The streamed, header-free certificate enumeration
// plus the worldsim chain cache brought BenchmarkA3CertCharacteristics
// from ~15.9M allocs/op down to ~0.98M; the ceiling here is ~2× that
// measurement, so noise passes but reverting to materialized scans (or
// re-minting certificate chains per host) fails loudly in bench-smoke
// long before a full `make bench` would notice.
func TestA3CertAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a world")
	}
	e, err := analysis.NewEnv(worldsim.Config{Seed: 1, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	// AllocsPerRun's warm-up call populates the world's chain cache, so
	// the measured run sees the steady state the benchmark measures.
	const ceiling = 2_000_000
	allocs := testing.AllocsPerRun(1, func() {
		if out := analysis.A3Certs(e).Render(); len(out) == 0 {
			t.Fatal("empty experiment output")
		}
	})
	if allocs > ceiling {
		t.Errorf("A3Certs allocated %.0f objects per run, budget %d — the streamed cert pass has regressed", allocs, int(ceiling))
	}
}
