module offnetscope

go 1.22
