# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test test-short race bench experiments corpus clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

test-short:
	go test -short ./...

race:
	go test -race ./internal/probe/ ./internal/servefarm/ ./internal/corpus/ ./internal/certmodel/

bench:
	go test -bench=. -benchmem .

# Regenerate every table/figure/validation at the default scale and
# refresh the committed results (plus CSV exports for plotting).
experiments:
	go run ./cmd/experiments -exp all -scale 0.1 -csv results/csv | tee results/experiments_seed1_scale0.1.txt

# Produce an on-disk corpus with the public-dataset stand-ins.
corpus:
	go run ./cmd/worldgen -out ./data -scale 0.05 -datasets

clean:
	rm -rf ./data
