# Convenience targets; everything is plain `go` underneath.

.PHONY: all ci build vet test test-short race bench experiments corpus serve clean

all: build vet test

# The full pre-merge gate.
ci: build vet test-short race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

test-short:
	go test -short ./...

race:
	go test -race -short ./...

bench:
	go test -bench=. -benchmem .

# Regenerate every table/figure/validation at the default scale and
# refresh the committed results (plus CSV exports for plotting).
experiments:
	go run ./cmd/experiments -exp all -scale 0.1 -csv results/csv | tee results/experiments_seed1_scale0.1.txt

# Produce an on-disk corpus with the public-dataset stand-ins.
corpus:
	go run ./cmd/worldgen -out ./data -scale 0.05 -datasets

# End-to-end serving demo: generate a small world, freeze its inferred
# footprints into a store, and serve them on localhost:8097.
serve:
	go run ./cmd/worldgen -out ./data -scale 0.05
	go run ./cmd/offnetmap -corpus ./data -growth -store ./data/offnets.fst
	go run ./cmd/offnetd -store ./data/offnets.fst

clean:
	rm -rf ./data
