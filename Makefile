# Convenience targets; everything is plain `go` underneath.

.PHONY: all ci build vet test test-short race fuzz-smoke chaos-race golden bench bench-smoke bench-serve loadtest soak-smoke soak watch-smoke scenarios-smoke scenarios experiments corpus serve watch clean

all: build vet test

# The full pre-merge gate: build, vet, unit tests, the race detector,
# a short fuzz pass over every decoder, the chaos/fault-injection
# suite under race, the golden-regression suite, one-iteration
# benchmark smoke, the serving-stack load smoke, the short crash-only
# soak, the kill-anytime continuous-measurement smoke, and the
# scenario-matrix smoke grid.
ci: build vet test-short race fuzz-smoke chaos-race golden bench-smoke loadtest soak-smoke watch-smoke scenarios-smoke

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

test-short:
	go test -short ./...

race:
	go test -race -short ./...

# Smoke-fuzz every input decoder (go test allows one -fuzz target per
# invocation, hence one line per target).
FUZZTIME ?= 10s
fuzz-smoke:
	go test -run=^$$ -fuzz=FuzzCorpusRead -fuzztime=$(FUZZTIME) ./internal/corpus
	go test -run=^$$ -fuzz=FuzzFootstoreDecode -fuzztime=$(FUZZTIME) ./internal/footstore
	go test -run=^$$ -fuzz=FuzzGenerationManifest -fuzztime=$(FUZZTIME) ./internal/footstore
	go test -run=^$$ -fuzz=FuzzReadRIB -fuzztime=$(FUZZTIME) ./internal/bgpsim
	go test -run=^$$ -fuzz=FuzzReadASRel -fuzztime=$(FUZZTIME) ./internal/astopo
	go test -run=^$$ -fuzz=FuzzReadOrgs -fuzztime=$(FUZZTIME) ./internal/astopo
	go test -run=^$$ -fuzz=FuzzParseIP -fuzztime=$(FUZZTIME) ./internal/netmodel
	go test -run=^$$ -fuzz=FuzzParsePrefix -fuzztime=$(FUZZTIME) ./internal/netmodel
	go test -run=^$$ -fuzz=FuzzMatchDomain -fuzztime=$(FUZZTIME) ./internal/hg
	go test -run=^$$ -fuzz=FuzzFromLabel -fuzztime=$(FUZZTIME) ./internal/timeline
	go test -run=^$$ -fuzz=FuzzMetricsSnapshot -fuzztime=$(FUZZTIME) ./internal/obs
	go test -run=^$$ -fuzz=FuzzScenarioConfig -fuzztime=$(FUZZTIME) ./internal/scenarios

# The fault-injection suite under the race detector: corrupted-corpus
# ingestion, the kill/resume crash-equivalence suite, parallel-runner
# determinism (including the mid-run cancellation regression), hot
# reload under load, the serving engine's cache/batch/reload/deadline/
# breaker races plus its goroutine-leak check, the probe breaker, the
# SIGHUP-under-loadgen-traffic e2es (good and alternating-corrupt),
# and the chaos layer itself (reader, HTTP transport, TCP proxy).
chaos-race:
	go test -race ./internal/chaos ./internal/resilience ./internal/runstate ./internal/obs
	go test -race -run 'TestChaos|TestTolerant|TestWriteNDJSONCrashSafe|TestCrashResume|TestGrowthJobs' ./internal/corpus ./cmd/offnetmap
	go test -race -run 'TestRunStudyConfig' ./internal/core
	go test -race -run 'TestHotReload|TestLoadShedding|TestPanicRecovery|TestHealth|TestRetryAfter|TestReloadGeneration|TestReloadFile|TestSmokeValidate|TestCache|TestBatch|TestConcurrentLoad|TestDeadline|TestBreaker|TestShed|TestGoroutineLeak' ./internal/offnetserve
	go test -race -run 'TestProbeBreaker' ./internal/probe
	go test -race -run 'TestGenLog|TestNewBuilderFrom' ./internal/footstore
	go test -race -run 'TestWave' ./internal/waves
	go test -race -run 'TestWatchGenLog' ./internal/offnetserve
	go test -race -run 'TestSIGHUP|TestServerTimeout|TestGenlogMode' ./cmd/offnetd
	go test -race -run 'TestClassifyTransport|TestDriveClassifies' ./internal/loadgen

# The golden-regression suite: exact funnel metrics, growth series,
# and report tables of the seeded study — sequential, parallel (-jobs),
# record-sharded (-shards), and both combined, all byte-identical.
# Refresh after an intentional methodology change with:
#   go test ./internal/core -run TestGolden -update
golden:
	go test -run 'TestGolden' ./internal/core

# Full benchmark pass over the paper experiments plus the per-stage
# pipeline benchmarks (including the sharded snapshot-inference row),
# rendered to BENCH_pipeline.json for trend diffs.
bench:
	go test -bench=. -benchmem -run='^$$' . ./internal/core | go run ./cmd/benchjson -out BENCH_pipeline.json

# One iteration of every benchmark — catches bit-rotted benchmark code
# in CI without paying for a measurement run. The serving benchmarks
# run -short (one iteration is a whole workload replay there). The
# allocation gate pins the streamed A.3 certificate pass to its
# post-streaming budget so an alloc regression fails CI, not just a
# benchmark trend diff.
bench-smoke:
	go test -bench=. -benchtime=1x -benchmem -run='^$$' . ./internal/core
	go test -bench=. -benchtime=1x -benchmem -short -run='^$$' ./internal/loadgen
	go test -count=1 -run 'TestA3CertAllocBudget' .

# The serving benchmarks behind BENCH_offnetd.json: 1M-lookup zipfian
# workloads through the in-process offnetd engine — cache-on vs
# cache-off, and batched vs single-request framing. -benchtime=1x
# because one iteration IS the full workload.
bench-serve:
	go test -bench=BenchmarkServe -benchtime=1x -benchmem -run='^$$' ./internal/loadgen | go run ./cmd/benchjson -out BENCH_offnetd.json

# Serving-stack load smoke for CI: a short seeded loadgen run against
# the in-process offnetd engine must finish healthy (nonzero QPS, zero
# 5xx) and reproduce its trace hash.
loadtest:
	go test -run 'TestLoadtestSmoke|TestTraceDeterminism' -count=1 ./cmd/loadgen

# Short crash-only soak under the race detector (~seconds): seeded
# chaos traffic against a live daemon under SIGHUP reloads alternating
# good/corrupt store files, plus the run-twice determinism and report
# format pins. Part of `make ci`.
soak-smoke:
	go test -race -count=1 ./cmd/soak

# The full pre-release soak: a longer seeded run with the default
# chaos rates. The SLO report lands on stdout; the exit status is the
# verdict (nonzero on any violation).
soak:
	go run ./cmd/soak -requests 200000 -rate 4000 -reloads 40

# Kill-anytime smoke for the continuous-measurement pipeline: the wave
# daemon workload is SIGKILLed at seeded points until it completes,
# then scored for zero recovery artifacts, byte-identical state versus
# a never-killed run, and a forward-only served view. The daemon
# envelope tests (flag wiring, farm waves, genlog serving) ride along.
# Part of `make ci`.
watch-smoke:
	go test -count=1 -run 'TestSoakKill|TestKill|TestCompareGenLogs' ./cmd/soak
	go test -count=1 ./cmd/offnetwatchd

# Scenario-matrix smoke for CI: one representative adversarial cell
# per family (IPv6-only, hide-and-seek, cert reuse, flash trajectory,
# vendor outage) runs the full inference end to end and must land
# inside its precision/recall/coverage gates; the golden scenario cell
# and the workers-invariance pin ride along. Part of `make ci`.
scenarios-smoke:
	go test -count=1 -run 'TestSmokeGridPasses|TestMatrixDeterminism|TestGoldenCell' ./internal/scenarios

# The full pre-release scenario matrix: all 32 adversarial cells, run
# alongside `make soak` before cutting a release. Regenerates the
# committed results/SCENARIOS.json and SCENARIOS.md; byte-identical at
# any -workers/-jobs/-shards setting.
scenarios:
	go run ./cmd/scenarios -grid full -workers 2 -out results/SCENARIOS.json -md results/SCENARIOS.md

# Regenerate every table/figure/validation at the default scale and
# refresh the committed results (plus CSV exports for plotting).
experiments:
	go run ./cmd/experiments -exp all -scale 0.1 -csv results/csv | tee results/experiments_seed1_scale0.1.txt

# Produce an on-disk corpus with the public-dataset stand-ins.
corpus:
	go run ./cmd/worldgen -out ./data -scale 0.05 -datasets

# Continuous-measurement demo: the wave daemon scans its loopback farm
# every 5s, committing each wave into ./data/genlog; run
#   go run ./cmd/offnetd -genlog ./data/genlog
# in another terminal to serve the live timeline.
watch:
	go run ./cmd/offnetwatchd -log ./data/genlog -farm -interval 5s -compact-keep 8

# End-to-end serving demo: generate a small world, freeze its inferred
# footprints into a store, and serve them on localhost:8097.
serve:
	go run ./cmd/worldgen -out ./data -scale 0.05
	go run ./cmd/offnetmap -corpus ./data -growth -store ./data/offnets.fst
	go run ./cmd/offnetd -store ./data/offnets.fst

clean:
	rm -rf ./data
