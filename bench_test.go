package offnetscope

// One benchmark per table and figure in the paper's evaluation, plus the
// §5 validation experiments, the ablations from DESIGN.md, and the raw
// pipeline/live-scan costs. The longitudinal study is executed once and
// cached inside the shared environment (exactly like cmd/experiments);
// BenchmarkStudyRapid7 measures a full uncached pass.

import (
	"context"
	"sync"
	"testing"
	"time"

	"offnetscope/internal/analysis"
	"offnetscope/internal/core"
	"offnetscope/internal/corpus"
	"offnetscope/internal/hg"
	"offnetscope/internal/probe"
	"offnetscope/internal/scanners"
	"offnetscope/internal/servefarm"
	"offnetscope/internal/timeline"
	"offnetscope/internal/worldsim"
)

var (
	benchOnce sync.Once
	benchEnv  *analysis.Env
	benchSnap *corpus.Snapshot
)

func getEnv(b *testing.B) *analysis.Env {
	b.Helper()
	benchOnce.Do(func() {
		e, err := analysis.NewEnv(worldsim.Config{Seed: 1, Scale: 0.02})
		if err != nil {
			panic(err)
		}
		benchEnv = e
		benchSnap = e.Scan(corpus.Rapid7, analysis.LastSnapshot())
		// Warm the cached Rapid7 and Censys studies so per-figure
		// benchmarks measure the analysis computation itself.
		e.Study(corpus.Rapid7)
		e.Study(corpus.Censys)
	})
	return benchEnv
}

func benchExperiment(b *testing.B, run func(*analysis.Env) analysis.Renderer) {
	e := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := run(e).Render(); len(out) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

func BenchmarkTable2ScanCorpusStats(b *testing.B) {
	benchExperiment(b, func(e *analysis.Env) analysis.Renderer { return analysis.Table2(e) })
}

func BenchmarkTable3HypergiantFootprints(b *testing.B) {
	benchExperiment(b, func(e *analysis.Env) analysis.Renderer { return analysis.Table3(e) })
}

func BenchmarkFig2IPTimeline(b *testing.B) {
	benchExperiment(b, func(e *analysis.Env) analysis.Renderer { return analysis.Fig2(e) })
}

func BenchmarkFig3FootprintGrowth(b *testing.B) {
	benchExperiment(b, func(e *analysis.Env) analysis.Renderer { return analysis.Fig3(e) })
}

func BenchmarkFig4DatasetComparison(b *testing.B) {
	benchExperiment(b, func(e *analysis.Env) analysis.Renderer { return analysis.Fig4(e) })
}

func BenchmarkFig5ConeCategories(b *testing.B) {
	benchExperiment(b, func(e *analysis.Env) analysis.Renderer { return analysis.Fig5(e) })
}

func BenchmarkFig6RegionalGrowth(b *testing.B) {
	benchExperiment(b, func(e *analysis.Env) analysis.Renderer { return analysis.Fig6(e) })
}

func BenchmarkFig7PopulationCoverage(b *testing.B) {
	benchExperiment(b, func(e *analysis.Env) analysis.Renderer { return analysis.Fig7(e) })
}

func BenchmarkFig8ConeCoverage(b *testing.B) {
	benchExperiment(b, func(e *analysis.Env) analysis.Renderer { return analysis.Fig8(e) })
}

func BenchmarkFig9FacebookCoverage(b *testing.B) {
	benchExperiment(b, func(e *analysis.Env) analysis.Renderer { return analysis.Fig9(e) })
}

func BenchmarkFig10HostingOverlap(b *testing.B) {
	benchExperiment(b, func(e *analysis.Env) analysis.Renderer { return analysis.Fig10(e) })
}

func BenchmarkFig11CertGroups(b *testing.B) {
	benchExperiment(b, func(e *analysis.Env) analysis.Renderer { return analysis.Fig11(e) })
}

func BenchmarkFig12ConeCoverageOthers(b *testing.B) {
	benchExperiment(b, func(e *analysis.Env) analysis.Renderer { return analysis.Fig12(e) })
}

func BenchmarkFig13RegionTypeGrowth(b *testing.B) {
	benchExperiment(b, func(e *analysis.Env) analysis.Renderer { return analysis.Fig13(e) })
}

func BenchmarkFig14Willingness(b *testing.B) {
	benchExperiment(b, func(e *analysis.Env) analysis.Renderer { return analysis.Fig14(e) })
}

func BenchmarkValidationCrossDomain(b *testing.B) {
	benchExperiment(b, func(e *analysis.Env) analysis.Renderer { return analysis.ValCrossDomain(e) })
}

func BenchmarkValidationSample(b *testing.B) {
	benchExperiment(b, func(e *analysis.Env) analysis.Renderer { return analysis.ValSample(e) })
}

func BenchmarkValidationGroundTruth(b *testing.B) {
	benchExperiment(b, func(e *analysis.Env) analysis.Renderer { return analysis.ValGroundTruth(e) })
}

func BenchmarkValidationPriorStudies(b *testing.B) {
	benchExperiment(b, func(e *analysis.Env) analysis.Renderer { return analysis.ValPrior(e) })
}

// --- pipeline-level costs ---

// BenchmarkPipelineSnapshot measures one full §4 inference pass over one
// corpus snapshot (the unit of work behind every figure).
func BenchmarkPipelineSnapshot(b *testing.B) {
	e := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.Pipeline.Run(benchSnap)
		if len(res.PerHG) != hg.Count {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkStudyRapid7 measures a full uncached 31-snapshot longitudinal
// study including scanning.
func BenchmarkStudyRapid7(b *testing.B) {
	e := getEnv(b)
	profile := scanners.Rapid7Profile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr := e.Pipeline.RunStudy(func(s timeline.Snapshot) *corpus.Snapshot {
			return scanners.Scan(e.World, profile, s)
		})
		if sr.ConfirmedSeries(hg.Google)[30] == 0 {
			b.Fatal("empty study")
		}
	}
}

// BenchmarkScanSnapshot measures generating one vendor corpus snapshot.
func BenchmarkScanSnapshot(b *testing.B) {
	e := getEnv(b)
	profile := scanners.Rapid7Profile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := scanners.Scan(e.World, profile, analysis.LastSnapshot())
		if len(snap.Certs) == 0 {
			b.Fatal("empty scan")
		}
	}
}

// --- ablations (DESIGN.md) ---

func benchAblation(b *testing.B, opts core.Options) {
	e := getEnv(b)
	p := *e.Pipeline
	p.Opts = opts
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := p.Run(benchSnap)
		if res.TotalCertIPs == 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkAblationNoDNSNameFilter(b *testing.B) {
	benchAblation(b, core.Options{HeaderMode: core.HeadersEither, DisableDNSNameFilter: true})
}

func BenchmarkAblationNoHeaderConfirm(b *testing.B) {
	benchAblation(b, core.Options{HeaderMode: core.CertsOnly})
}

func BenchmarkAblationNoChainValidation(b *testing.B) {
	benchAblation(b, core.Options{HeaderMode: core.HeadersEither, DisableChainValidation: true})
}

func BenchmarkAblationNoStabilityFilter(b *testing.B) {
	// The IP-to-AS stability filter lives below the pipeline; measure
	// the lookup-table build with hijack-noise retained by comparing a
	// fresh monthly build per iteration.
	e := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := e.World.IP2AS(timeline.Snapshot(i % timeline.Count()))
		if m.Len() == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- live network path ---

// BenchmarkLiveScanPipeline measures real TLS certificate sweeps against
// the loopback farm (the certigo role).
func BenchmarkLiveScanPipeline(b *testing.B) {
	farm, err := servefarm.Start([]servefarm.Spec{
		{Name: "a", Organization: "Google LLC", DNSNames: []string{"*.google.com"},
			Headers: []hg.Header{{Name: "Server", Value: "gws"}}},
		{Name: "b", Organization: "Netflix, Inc.", DNSNames: []string{"*.nflxvideo.net"},
			Headers: []hg.Header{{Name: "Server", Value: "nginx"}}},
		{Name: "c", Organization: "Acme", DNSNames: []string{"www.acme.example"},
			Headers: []hg.Header{{Name: "Server", Value: "nginx"}}},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer farm.Close()
	scanner := probe.New(probe.Config{Concurrency: 8, Timeout: 2 * time.Second, RootCAs: farm.CA.Pool()})
	defer scanner.Close()
	addrs := farm.TLSAddrs()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := scanner.FetchCerts(ctx, addrs)
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

func BenchmarkA3CertCharacteristics(b *testing.B) {
	benchExperiment(b, func(e *analysis.Env) analysis.Renderer { return analysis.A3Certs(e) })
}

func BenchmarkHideAndSeek(b *testing.B) {
	benchExperiment(b, func(e *analysis.Env) analysis.Renderer { return analysis.HideSeek(e) })
}

func BenchmarkV6Gap(b *testing.B) {
	benchExperiment(b, func(e *analysis.Env) analysis.Renderer { return analysis.V6Gap(e) })
}

func BenchmarkMethodsComparison(b *testing.B) {
	benchExperiment(b, func(e *analysis.Env) analysis.Renderer { return analysis.Methods(e) })
}
