// Package population is the APNIC-population-dataset stand-in: per-AS
// Internet-user market shares at country granularity, with the presence
// filtering the paper applies (§6.5), and the coverage computations
// behind Figures 7-9 and 12 — including the customer-cone expansion of
// Figure 8.
package population

import (
	"math"
	"sort"

	"offnetscope/internal/astopo"
	"offnetscope/internal/rng"
	"offnetscope/internal/timeline"
)

// AvailableFrom is the first snapshot with population data: the paper
// stores monthly APNIC snapshots since October 2017.
const AvailableFrom = timeline.Snapshot(16)

// Dataset holds per-AS user market shares within each AS's country.
type Dataset struct {
	graph *astopo.Graph
	// share is the AS's fraction of its country's Internet users.
	share map[astopo.ASN]float64
	// reliability drives the per-month presence filter: ASes appear in
	// the daily measurement only intermittently; the paper keeps an AS
	// only if it was present ≥25 % of the month.
	reliability map[astopo.ASN]float64
}

// Build derives a population dataset from the AS graph: each country's
// users are split across its ASes with weights that grow with customer
// cone size (big eyeball networks hold most users), plus heavy-tailed
// noise so some stubs are large consumer ISPs.
func Build(g *astopo.Graph, seed uint64) *Dataset {
	rnd := rng.New(seed).Fork("population")
	d := &Dataset{
		graph:       g,
		share:       make(map[astopo.ASN]float64),
		reliability: make(map[astopo.ASN]float64),
	}
	last := timeline.Snapshot(timeline.Count() - 1)

	byCountry := make(map[string][]astopo.ASN)
	for i := 1; i <= g.NumASes(); i++ {
		as := astopo.ASN(i)
		byCountry[g.Country(as)] = append(byCountry[g.Country(as)], as)
	}
	var codes []string
	for code := range byCountry {
		codes = append(codes, code)
	}
	sort.Strings(codes)

	for _, code := range codes {
		asns := byCountry[code]
		weights := make([]float64, len(asns))
		var total float64
		for i, as := range asns {
			cone := float64(g.ConeSize(as, last, 1001))
			// Superlinear in cone size: national markets concentrate in
			// a few big eyeball networks, exactly why hypergiants reach
			// most users from a few thousand hosting ASes (§6.5).
			w := math.Pow(1+cone, 1.4) * (0.2 + 3*rnd.Float64()*rnd.Float64())
			weights[i] = w
			total += w
		}
		for i, as := range asns {
			d.share[as] = weights[i] / total
			// Big ASes are always measurable; small ones flicker.
			d.reliability[as] = 0.1 + 0.9*rnd.Float64()
			if weights[i]/total > 0.02 {
				d.reliability[as] = 0.9 + 0.1*rnd.Float64()
			}
		}
	}
	return d
}

// Present reports whether the AS passes the §6.5 presence filter in the
// month of s: seen at least 25 % of the month in the daily data.
func (d *Dataset) Present(as astopo.ASN, s timeline.Snapshot) bool {
	if s < AvailableFrom || !d.graph.Active(as, s) {
		return false
	}
	r, ok := d.reliability[as]
	if !ok {
		return false
	}
	// Deterministic monthly jitter around the AS's base reliability.
	h := uint64(as)*0x9e3779b97f4a7c15 + uint64(s)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	jitter := float64(h%1000)/1000*0.4 - 0.2
	return r+jitter >= 0.25
}

// Share returns the AS's fraction of its country's Internet users at s,
// or 0 when the AS is filtered out. The paper errs on the side of
// accuracy and treats the result as a lower bound.
func (d *Dataset) Share(as astopo.ASN, s timeline.Snapshot) float64 {
	if !d.Present(as, s) {
		return 0
	}
	return d.share[as]
}

// TrueShare bypasses the presence filter (used to quantify what the
// filter costs).
func (d *Dataset) TrueShare(as astopo.ASN) float64 { return d.share[as] }

// CoverageByCountry returns, per country code, the percentage (0-100) of
// the country's Internet users inside ASes from the hosting set — one
// Fig 7 map.
func (d *Dataset) CoverageByCountry(hosting map[astopo.ASN]struct{}, s timeline.Snapshot) map[string]float64 {
	out := make(map[string]float64)
	for as := range hosting {
		if share := d.Share(as, s); share > 0 {
			out[d.graph.Country(as)] += share * 100
		}
	}
	for code, v := range out {
		if v > 100 {
			out[code] = 100
		}
		_ = code
	}
	return out
}

// WorldCoverage aggregates country coverages into a single user-weighted
// world percentage (0-100).
func (d *Dataset) WorldCoverage(hosting map[astopo.ASN]struct{}, s timeline.Snapshot) float64 {
	byCountry := d.CoverageByCountry(hosting, s)
	var covered, total float64
	for _, c := range astopo.Countries() {
		total += c.Users
		covered += c.Users * byCountry[c.Code] / 100
	}
	if total == 0 {
		return 0
	}
	return covered / total * 100
}

// ExpandByCones grows a hosting set to include every AS in the customer
// cones of its members — the Fig 8 "serve the cone too" scenario.
func ExpandByCones(g *astopo.Graph, hosting map[astopo.ASN]struct{}, s timeline.Snapshot) map[astopo.ASN]struct{} {
	seeds := make([]astopo.ASN, 0, len(hosting))
	for as := range hosting {
		seeds = append(seeds, as)
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	return g.Descendants(seeds, s)
}

// ConeCoverageByCountry is CoverageByCountry over the cone-expanded set.
func (d *Dataset) ConeCoverageByCountry(hosting map[astopo.ASN]struct{}, s timeline.Snapshot) map[string]float64 {
	return d.CoverageByCountry(ExpandByCones(d.graph, hosting, s), s)
}
