package population

import (
	"testing"

	"offnetscope/internal/astopo"
	"offnetscope/internal/timeline"
)

func buildTestData(t testing.TB) (*astopo.Graph, *Dataset) {
	g := astopo.Generate(astopo.GenConfig{Seed: 3, FinalASes: 1500})
	return g, Build(g, 3)
}

func lastS() timeline.Snapshot { return timeline.Snapshot(timeline.Count() - 1) }

func TestSharesSumToAtMostOnePerCountry(t *testing.T) {
	g, d := buildTestData(t)
	sums := make(map[string]float64)
	for i := 1; i <= g.NumASes(); i++ {
		as := astopo.ASN(i)
		sums[g.Country(as)] += d.TrueShare(as)
	}
	for code, sum := range sums {
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("country %s shares sum to %v", code, sum)
		}
	}
}

func TestAvailabilityWindow(t *testing.T) {
	g, d := buildTestData(t)
	early := timeline.Snapshot(10)
	for i := 1; i <= g.NumASes(); i++ {
		if d.Share(astopo.ASN(i), early) != 0 {
			t.Fatal("population data must not exist before 2017-10")
		}
	}
	if AvailableFrom.Label() != "2017-10" {
		t.Fatalf("AvailableFrom = %v", AvailableFrom.Label())
	}
}

func TestPresenceFilterDropsSomeASes(t *testing.T) {
	g, d := buildTestData(t)
	s := lastS()
	present, absent := 0, 0
	for i := 1; i <= g.NumASes(); i++ {
		as := astopo.ASN(i)
		if !g.Active(as, s) {
			continue
		}
		if d.Present(as, s) {
			present++
		} else {
			absent++
		}
	}
	if absent == 0 {
		t.Error("presence filter dropped nothing; the paper drops ~2/3 of ASes")
	}
	if present == 0 {
		t.Fatal("presence filter dropped everything")
	}
	frac := float64(present) / float64(present+absent)
	if frac < 0.2 || frac > 0.95 {
		t.Errorf("present fraction = %v", frac)
	}
}

func TestLargeASesSurviveFilter(t *testing.T) {
	g, d := buildTestData(t)
	s := lastS()
	// ASes holding >2 % of their country must essentially always pass.
	missedBig := 0
	for i := 1; i <= g.NumASes(); i++ {
		as := astopo.ASN(i)
		if g.Active(as, s) && d.TrueShare(as) > 0.05 && !d.Present(as, s) {
			missedBig++
		}
	}
	if missedBig > 2 {
		t.Errorf("%d big eyeballs failed the presence filter", missedBig)
	}
}

func TestCoverageByCountry(t *testing.T) {
	g, d := buildTestData(t)
	s := lastS()
	// Hosting every active AS covers most of every measured country.
	all := make(map[astopo.ASN]struct{})
	for _, as := range g.ActiveASes(s) {
		all[as] = struct{}{}
	}
	cov := d.CoverageByCountry(all, s)
	if len(cov) == 0 {
		t.Fatal("no coverage computed")
	}
	for code, v := range cov {
		if v < 0 || v > 100 {
			t.Errorf("%s coverage = %v", code, v)
		}
	}
	// Empty hosting covers nothing.
	if got := d.WorldCoverage(map[astopo.ASN]struct{}{}, s); got != 0 {
		t.Errorf("empty hosting coverage = %v", got)
	}
	wc := d.WorldCoverage(all, s)
	if wc < 30 || wc > 100 {
		t.Errorf("world coverage with all ASes = %v", wc)
	}
}

func TestCoverageMonotoneInHostingSet(t *testing.T) {
	g, d := buildTestData(t)
	s := lastS()
	active := g.ActiveASes(s)
	small := map[astopo.ASN]struct{}{active[0]: {}, active[1]: {}}
	big := map[astopo.ASN]struct{}{active[0]: {}, active[1]: {}, active[2]: {}, active[3]: {}, active[4]: {}}
	if d.WorldCoverage(small, s) > d.WorldCoverage(big, s) {
		t.Error("coverage must be monotone in the hosting set")
	}
}

func TestConeExpansionIncreasesCoverage(t *testing.T) {
	g, d := buildTestData(t)
	s := lastS()
	// Seed with the biggest-cone ASes: their cones add customers.
	var seeds []astopo.ASN
	for _, as := range g.ActiveASes(s) {
		if g.CategoryOf(as, s) >= astopo.Medium {
			seeds = append(seeds, as)
		}
		if len(seeds) >= 10 {
			break
		}
	}
	if len(seeds) == 0 {
		t.Skip("no medium+ ASes in small world")
	}
	hosting := make(map[astopo.ASN]struct{})
	for _, as := range seeds {
		hosting[as] = struct{}{}
	}
	expanded := ExpandByCones(g, hosting, s)
	if len(expanded) <= len(hosting) {
		t.Fatalf("cone expansion added nothing: %d → %d", len(hosting), len(expanded))
	}
	base := d.WorldCoverage(hosting, s)
	cone := d.WorldCoverage(expanded, s)
	if cone < base {
		t.Errorf("cone coverage %v below base %v", cone, base)
	}
	byCountry := d.ConeCoverageByCountry(hosting, s)
	for code, v := range byCountry {
		if v < 0 || v > 100 {
			t.Errorf("%s cone coverage = %v", code, v)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	g := astopo.Generate(astopo.GenConfig{Seed: 9, FinalASes: 600})
	d1 := Build(g, 7)
	d2 := Build(g, 7)
	for i := 1; i <= g.NumASes(); i++ {
		as := astopo.ASN(i)
		if d1.TrueShare(as) != d2.TrueShare(as) {
			t.Fatal("same seed produced different shares")
		}
	}
}
