package astopo

import (
	"sort"

	"offnetscope/internal/timeline"
)

// ASN is an autonomous system number. The simulator allocates them
// densely from 1; 0 is never a valid ASN.
type ASN uint32

// Category classifies an AS by provider-peer customer cone size, exactly
// as §6.3 does: Stub (cone of only itself), Small (≤10), Medium (≤100),
// Large (≤1000), XLarge (>1000).
type Category uint8

// Categories from smallest to largest.
const (
	Stub Category = iota
	Small
	Medium
	Large
	XLarge
	numCategories
)

// NumCategories is the number of size categories.
const NumCategories = int(numCategories)

var categoryNames = [...]string{"Stub", "Small", "Medium", "Large", "XLarge"}

// String implements fmt.Stringer.
func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return "Unknown"
}

// AllCategories returns the categories from Stub to XLarge.
func AllCategories() []Category {
	return []Category{Stub, Small, Medium, Large, XLarge}
}

// Categorize maps a customer cone size (including the AS itself) to its
// category.
func Categorize(coneSize int) Category {
	switch {
	case coneSize <= 1:
		return Stub
	case coneSize <= 10:
		return Small
	case coneSize <= 100:
		return Medium
	case coneSize <= 1000:
		return Large
	default:
		return XLarge
	}
}

// Graph is the AS-level topology: the customer-provider edges (peering
// edges do not contribute to the provider-peer customer cone and are kept
// only for completeness), each AS's country, and the snapshot at which
// each AS first appears in BGP. ASNs are dense indices into the internal
// slices.
//
// Build a Graph with NewGraph plus AddAS/AddCustomer, or via Generate.
type Graph struct {
	country  []string            // per ASN-1: ISO country code
	born     []timeline.Snapshot // per ASN-1: first active snapshot
	children [][]ASN             // per ASN-1: direct customers
	parents  [][]ASN             // per ASN-1: direct providers
	peers    [][]ASN             // per ASN-1: peers
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// AddAS registers a new AS and returns its number. born is the first
// snapshot the AS is active in; country is its ISO code.
func (g *Graph) AddAS(country string, born timeline.Snapshot) ASN {
	g.country = append(g.country, country)
	g.born = append(g.born, born)
	g.children = append(g.children, nil)
	g.parents = append(g.parents, nil)
	g.peers = append(g.peers, nil)
	return ASN(len(g.country))
}

// NumASes returns the number of ASes ever registered.
func (g *Graph) NumASes() int { return len(g.country) }

func (g *Graph) idx(as ASN) int { return int(as) - 1 }

// Valid reports whether as names a registered AS.
func (g *Graph) Valid(as ASN) bool { return as >= 1 && int(as) <= len(g.country) }

// AddCustomer records a provider→customer edge.
func (g *Graph) AddCustomer(provider, customer ASN) {
	g.children[g.idx(provider)] = append(g.children[g.idx(provider)], customer)
	g.parents[g.idx(customer)] = append(g.parents[g.idx(customer)], provider)
}

// AddPeer records a (symmetric) peering edge.
func (g *Graph) AddPeer(a, b ASN) {
	g.peers[g.idx(a)] = append(g.peers[g.idx(a)], b)
	g.peers[g.idx(b)] = append(g.peers[g.idx(b)], a)
}

// Country returns the AS's ISO country code.
func (g *Graph) Country(as ASN) string { return g.country[g.idx(as)] }

// ContinentOf returns the AS's continent via the country registry.
func (g *Graph) ContinentOf(as ASN) (Continent, bool) {
	c, ok := CountryByCode(g.country[g.idx(as)])
	if !ok {
		return 0, false
	}
	return c.Continent, true
}

// Born returns the AS's first active snapshot.
func (g *Graph) Born(as ASN) timeline.Snapshot { return g.born[g.idx(as)] }

// Active reports whether the AS exists at snapshot s.
func (g *Graph) Active(as ASN, s timeline.Snapshot) bool {
	return g.Valid(as) && g.born[g.idx(as)] <= s
}

// ActiveASes returns all ASes active at s, in ascending ASN order.
func (g *Graph) ActiveASes(s timeline.Snapshot) []ASN {
	var out []ASN
	for i := range g.born {
		if g.born[i] <= s {
			out = append(out, ASN(i+1))
		}
	}
	return out
}

// Customers returns the direct customers of as.
func (g *Graph) Customers(as ASN) []ASN { return g.children[g.idx(as)] }

// Providers returns the direct providers of as.
func (g *Graph) Providers(as ASN) []ASN { return g.parents[g.idx(as)] }

// Peers returns the peers of as.
func (g *Graph) Peers(as ASN) []ASN { return g.peers[g.idx(as)] }

// ConeSize returns the provider-peer customer cone size of as at
// snapshot s: the number of active ASes reachable over customer edges,
// including as itself. cap, when positive, bounds the work: once the
// cone exceeds cap the traversal stops and returns a value > cap. The
// size categories only need cones resolved up to 1001, so callers pass
// cap=1001 to classify even tier-1 ASes cheaply.
func (g *Graph) ConeSize(as ASN, s timeline.Snapshot, cap int) int {
	if !g.Active(as, s) {
		return 0
	}
	visited := map[ASN]struct{}{as: {}}
	stack := []ASN{as}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.children[g.idx(n)] {
			if !g.Active(c, s) {
				continue
			}
			if _, seen := visited[c]; seen {
				continue
			}
			visited[c] = struct{}{}
			if cap > 0 && len(visited) > cap {
				return len(visited)
			}
			stack = append(stack, c)
		}
	}
	return len(visited)
}

// CategoryOf classifies an AS at snapshot s.
func (g *Graph) CategoryOf(as ASN, s timeline.Snapshot) Category {
	return Categorize(g.ConeSize(as, s, 1001))
}

// Cone returns the full customer cone of as at s as a sorted ASN slice,
// including as itself.
func (g *Graph) Cone(as ASN, s timeline.Snapshot) []ASN {
	if !g.Active(as, s) {
		return nil
	}
	set := g.descend([]ASN{as}, s)
	out := make([]ASN, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Descendants returns the union of customer cones of the seed ASes at s
// (each seed included), as a set. This is the primitive behind the
// "serve the customer cone too" coverage expansion (Fig. 8 / Fig. 12):
// it runs in one traversal regardless of how many seeds there are.
func (g *Graph) Descendants(seeds []ASN, s timeline.Snapshot) map[ASN]struct{} {
	return g.descend(seeds, s)
}

func (g *Graph) descend(seeds []ASN, s timeline.Snapshot) map[ASN]struct{} {
	visited := make(map[ASN]struct{})
	var stack []ASN
	for _, as := range seeds {
		if !g.Active(as, s) {
			continue
		}
		if _, seen := visited[as]; !seen {
			visited[as] = struct{}{}
			stack = append(stack, as)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.children[g.idx(n)] {
			if !g.Active(c, s) {
				continue
			}
			if _, seen := visited[c]; seen {
				continue
			}
			visited[c] = struct{}{}
			stack = append(stack, c)
		}
	}
	return visited
}

// CategoryShares returns, for snapshot s, the fraction of active ASes in
// each category. The paper reports these as remarkably stable
// (~85 % Stub, ~12 % Small, ~2.6 % Medium, <0.5 % Large, <0.1 % XLarge).
func (g *Graph) CategoryShares(s timeline.Snapshot) [NumCategories]float64 {
	var counts [NumCategories]int
	total := 0
	for i := range g.born {
		if g.born[i] > s {
			continue
		}
		total++
		counts[g.CategoryOf(ASN(i+1), s)]++
	}
	var shares [NumCategories]float64
	if total == 0 {
		return shares
	}
	for i, c := range counts {
		shares[i] = float64(c) / float64(total)
	}
	return shares
}
