package astopo

import (
	"sort"
	"strings"

	"offnetscope/internal/timeline"
)

// OrgDB is the AS-to-organization registry, the stand-in for the CAIDA
// AS Organizations dataset (§A.2). Organization names change over time
// (e.g. "Google Inc." became "Google LLC" in 2017); the DB keeps the full
// rename history per AS and answers both directions: the organization
// behind an AS at a snapshot, and the ASes whose organization name
// matches a keyword at a snapshot — the reverse mapping used to extract
// hypergiant on-net ASes across the study window.
type OrgDB struct {
	entries map[ASN][]orgEntry
}

type orgEntry struct {
	from timeline.Snapshot
	name string
}

// NewOrgDB returns an empty registry.
func NewOrgDB() *OrgDB {
	return &OrgDB{entries: make(map[ASN][]orgEntry)}
}

// Set records that as belongs to org from snapshot from onward (until a
// later Set overrides it). Calls may arrive in any order.
func (db *OrgDB) Set(as ASN, from timeline.Snapshot, org string) {
	es := db.entries[as]
	for i := range es {
		if es[i].from == from {
			es[i].name = org
			return
		}
	}
	es = append(es, orgEntry{from: from, name: org})
	sort.Slice(es, func(i, j int) bool { return es[i].from < es[j].from })
	db.entries[as] = es
}

// Name returns the organization name of as at snapshot s, or "" if the
// AS has no organization record yet.
func (db *OrgDB) Name(as ASN, s timeline.Snapshot) string {
	var name string
	for _, e := range db.entries[as] {
		if e.from > s {
			break
		}
		name = e.name
	}
	return name
}

// ASesMatching returns, sorted, every AS whose organization name at
// snapshot s contains keyword case-insensitively — the paper's manual
// "parse organization name literals" step.
func (db *OrgDB) ASesMatching(keyword string, s timeline.Snapshot) []ASN {
	kw := strings.ToLower(keyword)
	var out []ASN
	for as := range db.entries {
		if strings.Contains(strings.ToLower(db.Name(as, s)), kw) {
			out = append(out, as)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumASes returns the number of ASes with at least one record.
func (db *OrgDB) NumASes() int { return len(db.entries) }
