package astopo

import (
	"offnetscope/internal/rng"
	"offnetscope/internal/timeline"
)

// GenConfig controls synthetic topology generation.
type GenConfig struct {
	// Seed drives all randomness; identical configs generate identical
	// graphs.
	Seed uint64
	// FinalASes is the number of ASes alive at the last snapshot. The
	// real Internet grew from ~45k (2013) to ~71k (2021) ASes; the
	// generator keeps that ratio, so InitialASes ≈ 0.63 × FinalASes.
	FinalASes int
	// InitialFraction is the fraction of FinalASes already alive at the
	// first snapshot. Zero means the default 0.63 (≈45k/71k).
	InitialFraction float64
}

// asWeight skews AS-count allocation per country relative to its user
// population, reflecting how fragmented each national ISP market is
// (Brazil and Russia famously have thousands of small ASes; China very
// few relative to its size).
var asWeight = map[string]float64{
	"BR": 3.5, "RU": 3.0, "US": 2.2, "ID": 1.6, "AR": 2.0, "CO": 1.6, "PL": 2.0,
	"UA": 2.2, "GB": 1.4, "DE": 1.5, "NL": 1.8, "RO": 2.0, "CN": 0.25, "IN": 0.8,
	"AU": 1.6, "NZ": 1.8, "CA": 1.3, "MX": 1.0, "NG": 0.9, "ZA": 1.3, "KE": 1.1,
	"BD": 1.4, "VN": 0.7, "PH": 0.9, "TH": 0.7, "IR": 0.8, "TR": 0.9,
}

// lateGrowthBoost multiplies the birth weight of countries in regions
// whose AS counts grew fastest late in the study window, producing the
// South-America/Asia-heavy growth the paper observes.
var lateGrowthBoost = map[Continent]float64{
	SouthAmerica: 2.8,
	Asia:         1.8,
	Africa:       1.7,
	Europe:       1.0,
	NorthAmerica: 0.55,
	Oceania:      0.8,
}

// Generate builds a synthetic AS graph: a tiered customer-provider DAG
// whose per-snapshot category shares land near the real Internet's
// (~85 % Stub, ~12 % Small, ~2.6 % Medium, <0.5 % Large, <0.1 % XLarge),
// growing from ~63 % of FinalASes at the first snapshot to FinalASes at
// the last, with late growth biased toward South America, Asia and
// Africa.
func Generate(cfg GenConfig) *Graph {
	if cfg.FinalASes <= 0 {
		cfg.FinalASes = 2000
	}
	if cfg.InitialFraction <= 0 || cfg.InitialFraction > 1 {
		cfg.InitialFraction = 0.63
	}
	rnd := rng.New(cfg.Seed).Fork("astopo")
	g := NewGraph()

	n := cfg.FinalASes
	xlargeN := maxInt(3, n*8/10000)  // ~0.08 %
	largeN := maxInt(6, n*45/10000)  // ~0.45 %
	mediumN := maxInt(20, n*26/1000) // ~2.6 %
	smallN := maxInt(80, n*12/100)   // ~12 %
	stubN := n - xlargeN - largeN - mediumN - smallN

	last := timeline.Snapshot(timeline.Count() - 1)

	// birth draws an AS's first snapshot: InitialFraction of ASes exist
	// from the start, the rest appear uniformly across the window.
	birth := func() timeline.Snapshot {
		if rnd.Bool(cfg.InitialFraction) {
			return 0
		}
		return timeline.Snapshot(1 + rnd.Intn(int(last)))
	}

	country := func(born timeline.Snapshot) string {
		weights := make([]float64, len(countries))
		late := float64(born) / float64(last)
		for i, c := range countries {
			w := c.Users
			if f, ok := asWeight[c.Code]; ok {
				w *= f
			}
			boost := lateGrowthBoost[c.Continent]
			w *= 1 + late*(boost-1)
			weights[i] = w
		}
		return countries[rnd.WeightedPick(weights)].Code
	}

	add := func(k int, bornEarly bool) []ASN {
		out := make([]ASN, k)
		for i := range out {
			var b timeline.Snapshot
			if bornEarly {
				b = 0 // backbone tiers predate the study window
			} else {
				b = birth()
			}
			out[i] = g.AddAS(country(b), b)
		}
		return out
	}

	xlarge := add(xlargeN, true)
	large := add(largeN, true)
	medium := add(mediumN, false)
	small := add(smallN, false)
	stub := add(stubN, false)

	// Stubs: each gets 1-2 providers drawn later from the small/medium
	// pool; assignment happens while building the parents' cones so the
	// cone budgets are exact. Stubs not claimed below get a random small
	// provider at the end.
	claimed := make([]bool, len(stub))
	nextStub := 0
	takeStubs := func(k int) []ASN {
		out := make([]ASN, 0, k)
		for len(out) < k && nextStub < len(stub) {
			out = append(out, stub[nextStub])
			claimed[nextStub] = true
			nextStub++
		}
		return out
	}

	// Small ASes: 1-9 dedicated stub customers (cone 2-10); ~35 % stay
	// cone 1-2 which lands them in Stub/Small boundary territory just
	// like real regional ISPs.
	for _, s := range small {
		k := 1 + rnd.Intn(9)
		for _, c := range takeStubs(k) {
			g.AddCustomer(s, c)
		}
	}

	// Medium ASes: 2-8 small customers plus direct stubs, cone ~12-90.
	for _, m := range medium {
		budget := 12 + rnd.Intn(79)
		used := 1
		for used < budget {
			if rnd.Bool(0.6) && len(small) > 0 {
				ch := rng.Pick(rnd, small)
				g.AddCustomer(m, ch)
				used += 1 + len(g.Customers(ch))
			} else {
				st := takeStubs(1)
				if len(st) == 0 {
					break
				}
				g.AddCustomer(m, st[0])
				used++
			}
		}
	}

	// Large ASes: medium + small customers, cone ~120-900.
	for _, l := range large {
		budget := 120 + rnd.Intn(781)
		used := 1
		for used < budget {
			if rnd.Bool(0.7) {
				ch := rng.Pick(rnd, medium)
				g.AddCustomer(l, ch)
				used += 40 // expected medium cone contribution
			} else {
				ch := rng.Pick(rnd, small)
				g.AddCustomer(l, ch)
				used += 5
			}
		}
	}

	// XLarge (tier-1-like): many large/medium customers; cones blow
	// straight past 1000. Tier-1s peer with each other.
	for i, x := range xlarge {
		for _, l := range large {
			if rnd.Bool(0.5) {
				g.AddCustomer(x, l)
			}
		}
		for k := 0; k < len(medium)/3; k++ {
			g.AddCustomer(x, rng.Pick(rnd, medium))
		}
		for j := 0; j < i; j++ {
			g.AddPeer(x, xlarge[j])
		}
	}

	// Multihome every unclaimed stub and a third of claimed ones.
	for i, st := range stub {
		if !claimed[i] {
			g.AddCustomer(rng.Pick(rnd, small), st)
		} else if rnd.Bool(0.33) {
			g.AddCustomer(rng.Pick(rnd, small), st)
		}
	}

	// Sprinkle peering among mediums (does not affect customer cones).
	for i := 0; i+1 < len(medium); i += 7 {
		g.AddPeer(medium[i], medium[i+1])
	}

	return g
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
