package astopo

import "testing"

func TestCountryRegistry(t *testing.T) {
	all := Countries()
	if len(all) < 50 {
		t.Fatalf("registry has only %d countries", len(all))
	}
	seen := map[string]bool{}
	for _, c := range all {
		if len(c.Code) != 2 {
			t.Errorf("bad code %q", c.Code)
		}
		if seen[c.Code] {
			t.Errorf("duplicate code %q", c.Code)
		}
		seen[c.Code] = true
		if c.Users <= 0 {
			t.Errorf("%s has no users", c.Code)
		}
		if int(c.Continent) >= NumContinents {
			t.Errorf("%s has invalid continent", c.Code)
		}
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Code >= all[i].Code {
			t.Fatal("Countries() not sorted by code")
		}
	}
}

func TestCountryByCode(t *testing.T) {
	c, ok := CountryByCode("BR")
	if !ok || c.Name != "Brazil" || c.Continent != SouthAmerica {
		t.Fatalf("BR = %+v, %v", c, ok)
	}
	if _, ok := CountryByCode("ZZ"); ok {
		t.Fatal("unknown code resolved")
	}
}

func TestCountriesIn(t *testing.T) {
	total := 0
	for _, cont := range AllContinents() {
		cs := CountriesIn(cont)
		if len(cs) == 0 {
			t.Errorf("continent %v has no countries", cont)
		}
		for _, c := range cs {
			if c.Continent != cont {
				t.Errorf("%s misfiled under %v", c.Code, cont)
			}
		}
		total += len(cs)
	}
	if total != len(Countries()) {
		t.Errorf("continent partition covers %d of %d countries", total, len(Countries()))
	}
}

func TestWorldUsers(t *testing.T) {
	if WorldUsers() < 3000 {
		t.Errorf("world users = %v millions, implausibly low", WorldUsers())
	}
}

func TestContinentString(t *testing.T) {
	if Asia.String() != "Asia" || SouthAmerica.String() != "South America" {
		t.Error("continent names wrong")
	}
	if Continent(99).String() != "Unknown" {
		t.Error("invalid continent should stringify as Unknown")
	}
	if len(AllContinents()) != NumContinents {
		t.Error("AllContinents length mismatch")
	}
}
