package astopo

import (
	"strings"
	"testing"
)

func FuzzReadASRel(f *testing.F) {
	f.Add("A 1|US|0\nA 2|BR|3\n1|2|-1\n")
	f.Add("A 1|US|0\n1|1|0\n")
	f.Add("# comment only\n")
	f.Add("A 1|US|x")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadASRel(strings.NewReader(input))
		if err != nil {
			return
		}
		// Whatever parses must re-serialize and re-parse identically.
		var sb strings.Builder
		if err := WriteASRel(&sb, g); err != nil {
			t.Fatalf("re-serialization failed: %v", err)
		}
		back, err := ReadASRel(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		if back.NumASes() != g.NumASes() {
			t.Fatalf("round trip AS count %d vs %d", back.NumASes(), g.NumASes())
		}
	})
}

func FuzzReadOrgs(f *testing.F) {
	f.Add("1|0|Google Inc.\n1|14|Google LLC\n")
	f.Add("x|y|z")
	f.Add("1|0|Name|with|pipes")
	f.Fuzz(func(t *testing.T, input string) {
		db, err := ReadOrgs(strings.NewReader(input))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteOrgs(&sb, db); err != nil {
			t.Fatalf("re-serialization failed: %v", err)
		}
	})
}
