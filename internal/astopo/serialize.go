package astopo

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"offnetscope/internal/timeline"
)

// Serialization in the spirit of the public datasets the paper consumes:
// the CAIDA AS-relationship format ("a|b|rel") and the AS-organization
// format ("as|from|org"). A "# born" extension carries each AS's first
// active snapshot and country, which the public datasets encode by
// having one file per month; one annotated file keeps the corpus
// directories small.

// WriteASRel serializes the graph. Lines:
//
//	# as|country|born
//	A 64500 US 0
//	# provider|customer|-1  /  peer|peer|0
//	64500|64501|-1
//	64501|64502|0
func WriteASRel(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# offnetscope as-rel: A as|country|born, then provider|customer|-1 and peer|peer|0")
	for i := 1; i <= g.NumASes(); i++ {
		as := ASN(i)
		fmt.Fprintf(bw, "A %d|%s|%d\n", as, g.Country(as), g.Born(as))
	}
	for i := 1; i <= g.NumASes(); i++ {
		as := ASN(i)
		for _, c := range g.Customers(as) {
			fmt.Fprintf(bw, "%d|%d|-1\n", as, c)
		}
		for _, p := range g.Peers(as) {
			if p > as { // each symmetric edge once
				fmt.Fprintf(bw, "%d|%d|0\n", as, p)
			}
		}
	}
	return bw.Flush()
}

// ReadASRel parses WriteASRel output back into a Graph.
func ReadASRel(r io.Reader) (*Graph, error) {
	g := NewGraph()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	next := ASN(1)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if strings.HasPrefix(text, "A ") {
			parts := strings.Split(text[2:], "|")
			if len(parts) != 3 {
				return nil, fmt.Errorf("astopo: line %d: bad AS record %q", line, text)
			}
			asn, err := strconv.Atoi(parts[0])
			if err != nil || ASN(asn) != next {
				return nil, fmt.Errorf("astopo: line %d: AS records must be dense and ordered, got %q", line, parts[0])
			}
			born, err := strconv.Atoi(parts[2])
			if err != nil {
				return nil, fmt.Errorf("astopo: line %d: bad born %q", line, parts[2])
			}
			g.AddAS(parts[1], timeline.Snapshot(born))
			next++
			continue
		}
		parts := strings.Split(text, "|")
		if len(parts) != 3 {
			return nil, fmt.Errorf("astopo: line %d: bad edge %q", line, text)
		}
		a, err1 := strconv.Atoi(parts[0])
		b, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || !g.Valid(ASN(a)) || !g.Valid(ASN(b)) {
			return nil, fmt.Errorf("astopo: line %d: bad edge endpoints %q", line, text)
		}
		switch parts[2] {
		case "-1":
			g.AddCustomer(ASN(a), ASN(b))
		case "0":
			g.AddPeer(ASN(a), ASN(b))
		default:
			return nil, fmt.Errorf("astopo: line %d: bad relationship %q", line, parts[2])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("astopo: %w", err)
	}
	return g, nil
}

// WriteOrgs serializes an OrgDB: "as|from-snapshot|org name".
func WriteOrgs(w io.Writer, db *OrgDB) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# offnetscope as-org: as|from|org")
	var asns []ASN
	for as := range db.entries {
		asns = append(asns, as)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, as := range asns {
		for _, e := range db.entries[as] {
			fmt.Fprintf(bw, "%d|%d|%s\n", as, e.from, e.name)
		}
	}
	return bw.Flush()
}

// ReadOrgs parses WriteOrgs output back into an OrgDB.
func ReadOrgs(r io.Reader) (*OrgDB, error) {
	db := NewOrgDB()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.SplitN(text, "|", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("astopo: line %d: bad org record %q", line, text)
		}
		as, err1 := strconv.Atoi(parts[0])
		from, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("astopo: line %d: bad org record %q", line, text)
		}
		db.Set(ASN(as), timeline.Snapshot(from), parts[2])
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("astopo: %w", err)
	}
	return db, nil
}
