package astopo

import (
	"bytes"
	"strings"
	"testing"

	"offnetscope/internal/timeline"
)

func TestASRelRoundTrip(t *testing.T) {
	g := Generate(GenConfig{Seed: 4, FinalASes: 400})
	var buf bytes.Buffer
	if err := WriteASRel(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadASRel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumASes() != g.NumASes() {
		t.Fatalf("AS counts differ: %d vs %d", back.NumASes(), g.NumASes())
	}
	last := timeline.Snapshot(timeline.Count() - 1)
	for i := 1; i <= g.NumASes(); i++ {
		as := ASN(i)
		if g.Country(as) != back.Country(as) || g.Born(as) != back.Born(as) {
			t.Fatalf("AS %d metadata differs", i)
		}
		if g.ConeSize(as, last, 0) != back.ConeSize(as, last, 0) {
			t.Fatalf("AS %d cone differs after round trip", i)
		}
		if len(g.Peers(as)) != len(back.Peers(as)) {
			t.Fatalf("AS %d peer count differs", i)
		}
	}
}

func TestASRelRejectsGarbage(t *testing.T) {
	bad := []string{
		"A 2|US|0",         // not dense (must start at 1)
		"A 1|US|x",         // bad born
		"A 1|US",           // wrong arity
		"1|2|-1",           // edge before AS records
		"A 1|US|0\n1|9|-1", // unknown endpoint
		"A 1|US|0\n1|1|9",  // bad relationship
		"A 1|US|0\nnonsense",
	}
	for _, in := range bad {
		if _, err := ReadASRel(strings.NewReader(in)); err == nil {
			t.Errorf("input %q parsed without error", in)
		}
	}
	// Comments and blank lines are fine.
	if _, err := ReadASRel(strings.NewReader("# hi\n\nA 1|US|0\n")); err != nil {
		t.Errorf("benign input rejected: %v", err)
	}
}

func TestOrgsRoundTrip(t *testing.T) {
	db := NewOrgDB()
	db.Set(1, 0, "Google Inc.")
	db.Set(1, 14, "Google LLC")
	db.Set(2, 3, "Pipe|Corp") // org names may contain the separator? no: SplitN keeps it
	var buf bytes.Buffer
	if err := WriteOrgs(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadOrgs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name(1, 0) != "Google Inc." || back.Name(1, 20) != "Google LLC" {
		t.Fatal("rename history lost")
	}
	if back.Name(2, 5) != "Pipe|Corp" {
		t.Fatalf("org with pipe = %q", back.Name(2, 5))
	}
	if _, err := ReadOrgs(strings.NewReader("x|y")); err == nil {
		t.Error("garbage accepted")
	}
}
