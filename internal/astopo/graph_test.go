package astopo

import (
	"testing"
	"testing/quick"

	"offnetscope/internal/timeline"
)

func TestCategorize(t *testing.T) {
	cases := []struct {
		cone int
		want Category
	}{
		{0, Stub}, {1, Stub}, {2, Small}, {10, Small}, {11, Medium},
		{100, Medium}, {101, Large}, {1000, Large}, {1001, XLarge}, {50000, XLarge},
	}
	for _, c := range cases {
		if got := Categorize(c.cone); got != c.want {
			t.Errorf("Categorize(%d) = %v, want %v", c.cone, got, c.want)
		}
	}
}

func TestCategoryString(t *testing.T) {
	if Stub.String() != "Stub" || XLarge.String() != "XLarge" {
		t.Error("category names wrong")
	}
	if Category(99).String() != "Unknown" {
		t.Error("out-of-range category should stringify as Unknown")
	}
	if len(AllCategories()) != NumCategories {
		t.Error("AllCategories length mismatch")
	}
}

// chainGraph builds provider → customer chains for cone tests:
//
//	t1 ─▶ m ─▶ s1 ─▶ stub1
//	        └▶ s2 ─▶ stub2 (born at snapshot 5)
func chainGraph() (*Graph, map[string]ASN) {
	g := NewGraph()
	ids := map[string]ASN{
		"t1":    g.AddAS("US", 0),
		"m":     g.AddAS("DE", 0),
		"s1":    g.AddAS("BR", 0),
		"s2":    g.AddAS("BR", 0),
		"stub1": g.AddAS("BR", 0),
		"stub2": g.AddAS("CO", 5),
	}
	g.AddCustomer(ids["t1"], ids["m"])
	g.AddCustomer(ids["m"], ids["s1"])
	g.AddCustomer(ids["m"], ids["s2"])
	g.AddCustomer(ids["s1"], ids["stub1"])
	g.AddCustomer(ids["s2"], ids["stub2"])
	return g, ids
}

func TestConeSize(t *testing.T) {
	g, ids := chainGraph()
	s := timeline.Snapshot(10)
	cases := []struct {
		name string
		want int
	}{
		{"stub1", 1}, {"s1", 2}, {"s2", 2}, {"m", 5}, {"t1", 6},
	}
	for _, c := range cases {
		if got := g.ConeSize(ids[c.name], s, 0); got != c.want {
			t.Errorf("ConeSize(%s) = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestConeSizeRespectsBirth(t *testing.T) {
	g, ids := chainGraph()
	early := timeline.Snapshot(0)
	// stub2 is born at snapshot 5, so s2's cone at snapshot 0 is just itself.
	if got := g.ConeSize(ids["s2"], early, 0); got != 1 {
		t.Errorf("cone of s2 before stub2's birth = %d, want 1", got)
	}
	if got := g.ConeSize(ids["m"], early, 0); got != 4 {
		t.Errorf("cone of m before stub2's birth = %d, want 4", got)
	}
	if got := g.ConeSize(ids["stub2"], early, 0); got != 0 {
		t.Errorf("cone of unborn AS = %d, want 0", got)
	}
}

func TestConeSizeCap(t *testing.T) {
	g := NewGraph()
	top := g.AddAS("US", 0)
	for i := 0; i < 50; i++ {
		g.AddCustomer(top, g.AddAS("US", 0))
	}
	if got := g.ConeSize(top, 0, 10); got <= 10 {
		t.Errorf("capped cone = %d, want > cap", got)
	}
	if got := g.ConeSize(top, 0, 0); got != 51 {
		t.Errorf("uncapped cone = %d, want 51", got)
	}
}

func TestConeDiamondNotDoubleCounted(t *testing.T) {
	// p has two customers that share a stub; the cone is a set.
	g := NewGraph()
	p := g.AddAS("US", 0)
	a := g.AddAS("US", 0)
	b := g.AddAS("US", 0)
	shared := g.AddAS("US", 0)
	g.AddCustomer(p, a)
	g.AddCustomer(p, b)
	g.AddCustomer(a, shared)
	g.AddCustomer(b, shared)
	if got := g.ConeSize(p, 0, 0); got != 4 {
		t.Errorf("diamond cone = %d, want 4", got)
	}
}

func TestConeMembers(t *testing.T) {
	g, ids := chainGraph()
	cone := g.Cone(ids["m"], 10)
	if len(cone) != 5 {
		t.Fatalf("cone members = %v", cone)
	}
	for i := 1; i < len(cone); i++ {
		if cone[i-1] >= cone[i] {
			t.Fatal("cone not sorted")
		}
	}
	if g.Cone(ids["stub2"], 0) != nil {
		t.Error("cone of unborn AS should be nil")
	}
}

func TestDescendantsUnion(t *testing.T) {
	g, ids := chainGraph()
	set := g.Descendants([]ASN{ids["s1"], ids["s2"]}, 10)
	if len(set) != 4 {
		t.Fatalf("union cone size = %d, want 4", len(set))
	}
	// Unborn seeds are skipped.
	set = g.Descendants([]ASN{ids["stub2"]}, 0)
	if len(set) != 0 {
		t.Fatal("unborn seed should contribute nothing")
	}
}

func TestActiveASes(t *testing.T) {
	g, _ := chainGraph()
	if got := len(g.ActiveASes(0)); got != 5 {
		t.Errorf("active at 0 = %d, want 5", got)
	}
	if got := len(g.ActiveASes(5)); got != 6 {
		t.Errorf("active at 5 = %d, want 6", got)
	}
}

func TestContinentOf(t *testing.T) {
	g, ids := chainGraph()
	cont, ok := g.ContinentOf(ids["s1"])
	if !ok || cont != SouthAmerica {
		t.Errorf("ContinentOf(BR) = %v, %v", cont, ok)
	}
	bad := g.AddAS("ZZ", 0)
	if _, ok := g.ContinentOf(bad); ok {
		t.Error("unknown country should not resolve")
	}
}

func TestPeersSymmetric(t *testing.T) {
	g := NewGraph()
	a := g.AddAS("US", 0)
	b := g.AddAS("DE", 0)
	g.AddPeer(a, b)
	if len(g.Peers(a)) != 1 || g.Peers(a)[0] != b {
		t.Error("peer edge a→b missing")
	}
	if len(g.Peers(b)) != 1 || g.Peers(b)[0] != a {
		t.Error("peer edge b→a missing")
	}
	// Peering must not affect customer cones.
	if g.ConeSize(a, 0, 0) != 1 {
		t.Error("peering leaked into the customer cone")
	}
}

func TestGenerateShapes(t *testing.T) {
	g := Generate(GenConfig{Seed: 1, FinalASes: 3000})
	last := timeline.Snapshot(timeline.Count() - 1)
	total := len(g.ActiveASes(last))
	if total < 2900 || total > 3100 {
		t.Fatalf("final AS count = %d, want ~3000", total)
	}
	first := len(g.ActiveASes(0))
	ratio := float64(first) / float64(total)
	if ratio < 0.55 || ratio > 0.72 {
		t.Errorf("initial fraction = %v, want ~0.63", ratio)
	}
	shares := g.CategoryShares(last)
	if shares[Stub] < 0.70 || shares[Stub] > 0.92 {
		t.Errorf("stub share = %v, want ~0.85", shares[Stub])
	}
	if shares[Small] < 0.05 || shares[Small] > 0.25 {
		t.Errorf("small share = %v, want ~0.12", shares[Small])
	}
	if shares[XLarge] > 0.01 {
		t.Errorf("xlarge share = %v, want < 1%%", shares[XLarge])
	}
	// At least one genuinely XLarge AS must exist.
	foundXL := false
	for _, as := range g.ActiveASes(last) {
		if g.CategoryOf(as, last) == XLarge {
			foundXL = true
			break
		}
	}
	if !foundXL {
		t.Error("no XLarge AS generated")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{Seed: 7, FinalASes: 800})
	b := Generate(GenConfig{Seed: 7, FinalASes: 800})
	if a.NumASes() != b.NumASes() {
		t.Fatal("same seed produced different AS counts")
	}
	for i := 1; i <= a.NumASes(); i++ {
		as := ASN(i)
		if a.Country(as) != b.Country(as) || a.Born(as) != b.Born(as) {
			t.Fatalf("AS %d differs between runs", i)
		}
		if len(a.Customers(as)) != len(b.Customers(as)) {
			t.Fatalf("AS %d customer lists differ", i)
		}
	}
}

func TestGenerateCategorySharesStable(t *testing.T) {
	g := Generate(GenConfig{Seed: 3, FinalASes: 2000})
	s0 := g.CategoryShares(0)
	sLast := g.CategoryShares(timeline.Snapshot(timeline.Count() - 1))
	// The paper highlights that category shares are stable over the
	// whole window despite 45k→71k growth.
	for _, c := range AllCategories() {
		diff := s0[c] - sLast[c]
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.08 {
			t.Errorf("category %v share drifted %v → %v", c, s0[c], sLast[c])
		}
	}
}

func TestConeMonotoneOverTimeQuick(t *testing.T) {
	// Property: with static edges and monotone activity, cones only grow.
	g := Generate(GenConfig{Seed: 11, FinalASes: 600})
	f := func(asRaw uint16, s1, s2 uint8) bool {
		as := ASN(int(asRaw)%g.NumASes() + 1)
		a := timeline.Snapshot(int(s1) % timeline.Count())
		b := timeline.Snapshot(int(s2) % timeline.Count())
		if a > b {
			a, b = b, a
		}
		return g.ConeSize(as, a, 0) <= g.ConeSize(as, b, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
