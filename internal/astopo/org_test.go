package astopo

import (
	"testing"

	"offnetscope/internal/timeline"
)

func TestOrgDBNameHistory(t *testing.T) {
	db := NewOrgDB()
	as := ASN(15169)
	db.Set(as, 0, "Google Inc.")
	db.Set(as, 14, "Google LLC") // 2017-04 rename

	if got := db.Name(as, 0); got != "Google Inc." {
		t.Errorf("name at 0 = %q", got)
	}
	if got := db.Name(as, 13); got != "Google Inc." {
		t.Errorf("name at 13 = %q", got)
	}
	if got := db.Name(as, 14); got != "Google LLC" {
		t.Errorf("name at 14 = %q", got)
	}
	if got := db.Name(as, 30); got != "Google LLC" {
		t.Errorf("name at 30 = %q", got)
	}
	if got := db.Name(ASN(1), 10); got != "" {
		t.Errorf("unknown AS name = %q", got)
	}
}

func TestOrgDBSetOutOfOrderAndOverride(t *testing.T) {
	db := NewOrgDB()
	as := ASN(7)
	db.Set(as, 10, "B Corp")
	db.Set(as, 0, "A Corp")
	if got := db.Name(as, 5); got != "A Corp" {
		t.Errorf("name at 5 = %q", got)
	}
	db.Set(as, 10, "B2 Corp") // same-snapshot override
	if got := db.Name(as, 12); got != "B2 Corp" {
		t.Errorf("name at 12 = %q", got)
	}
}

func TestOrgDBASesMatching(t *testing.T) {
	db := NewOrgDB()
	db.Set(ASN(1), 0, "Google Inc.")
	db.Set(ASN(2), 0, "Google Fiber")
	db.Set(ASN(3), 0, "Netflix, Inc.")
	db.Set(ASN(4), 5, "Google Cloud") // appears later

	got := db.ASesMatching("google", 0)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("ASesMatching at 0 = %v", got)
	}
	got = db.ASesMatching("GOOGLE", 10)
	if len(got) != 3 {
		t.Fatalf("ASesMatching at 10 = %v", got)
	}
	if n := len(db.ASesMatching("amazon", timeline.Snapshot(10))); n != 0 {
		t.Errorf("amazon matches = %d", n)
	}
	if db.NumASes() != 4 {
		t.Errorf("NumASes = %d", db.NumASes())
	}
}
