// Package astopo models the AS-level Internet the study is grounded in:
// the AS relationship graph with CAIDA-style provider-peer customer
// cones, AS size categories, the AS-to-organization registry used to find
// hypergiant on-net ASes, and AS-to-country/continent geography.
package astopo

import "sort"

// Continent identifies one of the six regions the paper reports growth
// for (Fig. 6).
type Continent uint8

// Continents in the paper's presentation order.
const (
	Asia Continent = iota
	Europe
	SouthAmerica
	NorthAmerica
	Africa
	Oceania
	numContinents
)

// NumContinents is the number of regions.
const NumContinents = int(numContinents)

var continentNames = [...]string{"Asia", "Europe", "South America", "North America", "Africa", "Oceania"}

// String implements fmt.Stringer.
func (c Continent) String() string {
	if int(c) < len(continentNames) {
		return continentNames[c]
	}
	return "Unknown"
}

// AllContinents returns the regions in presentation order.
func AllContinents() []Continent {
	return []Continent{Asia, Europe, SouthAmerica, NorthAmerica, Africa, Oceania}
}

// Country describes one country in the geography registry.
type Country struct {
	Code      string // ISO 3166-1 alpha-2
	Name      string
	Continent Continent
	// Users is the country's Internet user population in millions,
	// used to weight coverage maps (Fig. 7-9) and to size AS market
	// shares in the APNIC-style population dataset.
	Users float64
}

// countries is the built-in registry: a representative subset of the
// world large enough to exercise every regional analysis. User counts
// are ballpark 2021 figures in millions.
var countries = []Country{
	{"CN", "China", Asia, 1000}, {"IN", "India", Asia, 750}, {"ID", "Indonesia", Asia, 200},
	{"JP", "Japan", Asia, 115}, {"PK", "Pakistan", Asia, 110}, {"BD", "Bangladesh", Asia, 110},
	{"PH", "Philippines", Asia, 75}, {"VN", "Vietnam", Asia, 70}, {"TR", "Turkey", Asia, 70},
	{"IR", "Iran", Asia, 70}, {"TH", "Thailand", Asia, 50}, {"KR", "South Korea", Asia, 50},
	{"MY", "Malaysia", Asia, 28}, {"SA", "Saudi Arabia", Asia, 33}, {"IQ", "Iraq", Asia, 30},
	{"UZ", "Uzbekistan", Asia, 22}, {"TW", "Taiwan", Asia, 21}, {"LK", "Sri Lanka", Asia, 11},
	{"KZ", "Kazakhstan", Asia, 15}, {"IL", "Israel", Asia, 8},

	{"RU", "Russia", Europe, 120}, {"DE", "Germany", Europe, 78}, {"GB", "United Kingdom", Europe, 65},
	{"FR", "France", Europe, 60}, {"IT", "Italy", Europe, 50}, {"ES", "Spain", Europe, 43},
	{"PL", "Poland", Europe, 32}, {"UA", "Ukraine", Europe, 30}, {"NL", "Netherlands", Europe, 16},
	{"RO", "Romania", Europe, 16}, {"SE", "Sweden", Europe, 10}, {"CZ", "Czechia", Europe, 9},
	{"GR", "Greece", Europe, 8}, {"PT", "Portugal", Europe, 8}, {"BE", "Belgium", Europe, 10},
	{"CH", "Switzerland", Europe, 8}, {"AT", "Austria", Europe, 8}, {"NO", "Norway", Europe, 5},

	{"BR", "Brazil", SouthAmerica, 160}, {"CO", "Colombia", SouthAmerica, 35},
	{"AR", "Argentina", SouthAmerica, 37}, {"PE", "Peru", SouthAmerica, 20},
	{"VE", "Venezuela", SouthAmerica, 20}, {"CL", "Chile", SouthAmerica, 16},
	{"EC", "Ecuador", SouthAmerica, 11}, {"BO", "Bolivia", SouthAmerica, 6},
	{"PY", "Paraguay", SouthAmerica, 5}, {"UY", "Uruguay", SouthAmerica, 3},

	{"US", "United States", NorthAmerica, 300}, {"MX", "Mexico", NorthAmerica, 92},
	{"CA", "Canada", NorthAmerica, 35}, {"GT", "Guatemala", NorthAmerica, 8},
	{"DO", "Dominican Republic", NorthAmerica, 8}, {"CU", "Cuba", NorthAmerica, 7},
	{"HN", "Honduras", NorthAmerica, 4}, {"CR", "Costa Rica", NorthAmerica, 4},

	{"NG", "Nigeria", Africa, 110}, {"EG", "Egypt", Africa, 60}, {"ZA", "South Africa", Africa, 40},
	{"KE", "Kenya", Africa, 22}, {"MA", "Morocco", Africa, 28}, {"DZ", "Algeria", Africa, 26},
	{"ET", "Ethiopia", Africa, 24}, {"GH", "Ghana", Africa, 16}, {"TZ", "Tanzania", Africa, 15},
	{"TN", "Tunisia", Africa, 8}, {"SN", "Senegal", Africa, 7}, {"CI", "Ivory Coast", Africa, 10},

	{"AU", "Australia", Oceania, 22}, {"NZ", "New Zealand", Oceania, 4},
	{"PG", "Papua New Guinea", Oceania, 1.5}, {"FJ", "Fiji", Oceania, 0.5},
}

var countryByCode = func() map[string]*Country {
	m := make(map[string]*Country, len(countries))
	for i := range countries {
		m[countries[i].Code] = &countries[i]
	}
	return m
}()

// Countries returns the full registry sorted by code.
func Countries() []Country {
	out := make([]Country, len(countries))
	copy(out, countries)
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// CountryByCode looks up a country by ISO code.
func CountryByCode(code string) (Country, bool) {
	c, ok := countryByCode[code]
	if !ok {
		return Country{}, false
	}
	return *c, true
}

// CountriesIn returns the countries of one continent, sorted by code.
func CountriesIn(cont Continent) []Country {
	var out []Country
	for _, c := range countries {
		if c.Continent == cont {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// WorldUsers returns the total Internet user population (millions) across
// the registry.
func WorldUsers() float64 {
	var sum float64
	for _, c := range countries {
		sum += c.Users
	}
	return sum
}
