package footstore

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"offnetscope/internal/astopo"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/timeline"
)

// corruptTestStore builds a small valid store to mutilate.
func corruptTestStore(t *testing.T) *Store {
	t.Helper()
	s1, _ := timeline.FromLabel("2020-10")
	s2, _ := timeline.FromLabel("2021-01")
	b := NewBuilder()
	if err := b.AddSnapshot(s1, map[hg.ID][]astopo.ASN{hg.Google: {100, 200}}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSnapshot(s2, map[hg.ID][]astopo.ASN{hg.Google: {200}, hg.Netflix: {300}}); err != nil {
		t.Fatal(err)
	}
	b.AddPrefix(netmodel.MustParsePrefix("10.0.0.0/16"), []astopo.ASN{100})
	st, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCorruptErrorClassification is the ErrCorrupt contract: every way a
// store file's bytes can be wrong — truncation, bit flips, bad magic,
// garbage, structural damage behind a fixed-up CRC — must surface as a
// CorruptError matching errors.Is(err, ErrCorrupt), while a missing file
// and an intact-but-newer version must NOT, so reload validation and
// -tolerant callers can budget real corruption separately.
func TestCorruptErrorClassification(t *testing.T) {
	good := corruptTestStore(t).Encode()
	if _, err := Decode(good); err != nil {
		t.Fatalf("sanity: good bytes must decode: %v", err)
	}

	flip := func(data []byte, off int, mask byte) []byte {
		out := append([]byte(nil), data...)
		out[off] ^= mask
		return out
	}

	cases := []struct {
		name        string
		data        []byte
		wantCorrupt bool
	}{
		{"truncated-half", good[:len(good)/2], true},
		{"truncated-tail", good[:len(good)-1], true},
		{"truncated-below-header", good[:6], true},
		{"bit-flip-body", flip(good, len(good)/2, 0x10), true},
		{"bit-flip-crc", flip(good, len(good)-2, 0x01), true},
		{"bad-magic", flip(good, 0, 0xFF), true},
		{"empty", nil, true},
		{"garbage", []byte("definitely not a footstore"), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.data)
			if err == nil {
				t.Fatal("Decode accepted corrupt bytes")
			}
			if got := errors.Is(err, ErrCorrupt); got != tc.wantCorrupt {
				t.Fatalf("errors.Is(err, ErrCorrupt) = %v, want %v (err: %v)", got, tc.wantCorrupt, err)
			}
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("error is not a *CorruptError: %v", err)
			}
			if ce.Reason == "" {
				t.Errorf("CorruptError carries no reason: %+v", ce)
			}
			if ce.Offset < 0 || ce.Offset > len(tc.data) {
				t.Errorf("CorruptError offset %d outside [0, %d]", ce.Offset, len(tc.data))
			}
		})
	}
}

// TestCorruptErrorOpenCarriesPath pins that Open attaches the file path
// to the typed error, and that a missing file is NOT classified corrupt.
func TestCorruptErrorOpenCarriesPath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.fst")
	good := corruptTestStore(t).Encode()
	if err := os.WriteFile(path, good[:len(good)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(path)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated file: errors.Is(err, ErrCorrupt) = false (err: %v)", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Path != path {
		t.Fatalf("Open error does not carry the path: %v", err)
	}

	_, err = Open(filepath.Join(dir, "nope.fst"))
	if err == nil {
		t.Fatal("missing file must fail")
	}
	if errors.Is(err, ErrCorrupt) {
		t.Errorf("missing file misclassified as corrupt: %v", err)
	}
	if !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("missing file should match fs.ErrNotExist: %v", err)
	}
}

// TestUnsupportedVersionNotCorrupt: a structurally intact file with a
// newer version number is a compatibility problem, not corruption.
func TestUnsupportedVersionNotCorrupt(t *testing.T) {
	// Rebuild a minimal file by hand: magic + version 2 + valid CRC.
	data := append([]byte(nil), magic...)
	data = append(data, 2) // uvarint version 2
	data = binary.LittleEndian.AppendUint32(data, crc32.ChecksumIEEE(data))
	_, err := Decode(data)
	if err == nil {
		t.Fatal("unsupported version must fail")
	}
	if errors.Is(err, ErrCorrupt) {
		t.Errorf("unsupported version misclassified as corrupt: %v", err)
	}
}
