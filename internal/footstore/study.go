package footstore

import (
	"offnetscope/internal/core"
)

// FromStudy freezes a longitudinal study result into a store: one
// snapshot per month the study had data for, plus the supplied
// IP-to-AS prefix table (normally the latest snapshot's table, so IP
// queries answer with the current mapping). prefixes may be nil when
// IP-granularity queries are not needed.
func FromStudy(sr *core.StudyResult, prefixes PrefixSource) (*Store, error) {
	b := NewBuilder()
	for _, s := range sr.Snapshots() {
		if err := b.AddSnapshot(s, sr.FootprintAt(s)); err != nil {
			return nil, err
		}
	}
	if prefixes != nil {
		b.AddPrefixes(prefixes)
	}
	return b.Build()
}

// FromResult freezes a single-snapshot inference result into a store.
func FromResult(res *core.Result, prefixes PrefixSource) (*Store, error) {
	b := NewBuilder()
	if err := b.AddSnapshot(res.Snapshot, res.Footprints()); err != nil {
		return nil, err
	}
	if prefixes != nil {
		b.AddPrefixes(prefixes)
	}
	return b.Build()
}
