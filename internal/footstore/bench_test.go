package footstore

import (
	"testing"

	"offnetscope/internal/astopo"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/rng"
	"offnetscope/internal/timeline"
)

// benchWorld sizes roughly match a full-scale study: tens of thousands
// of prefixes and a few thousand off-net ASes churning over all 31
// snapshots.
const (
	benchASes     = 4000
	benchPrefixes = 50000
)

func benchFillBuilder(b *Builder, r *rng.RNG) {
	// Churning footprints: each HG holds a random ~12 % of the AS pool
	// and flips a small fraction every snapshot.
	member := make(map[hg.ID]map[astopo.ASN]bool, hg.Count)
	for _, h := range hg.All() {
		set := make(map[astopo.ASN]bool)
		for i := 0; i < benchASes/8; i++ {
			set[astopo.ASN(r.Intn(benchASes)+1)] = true
		}
		member[h.ID] = set
	}
	for _, s := range timeline.All() {
		fp := make(map[hg.ID][]astopo.ASN, hg.Count)
		for id, set := range member {
			for i := 0; i < benchASes/100; i++ {
				as := astopo.ASN(r.Intn(benchASes) + 1)
				if set[as] {
					delete(set, as)
				} else {
					set[as] = true
				}
			}
			ases := make([]astopo.ASN, 0, len(set))
			for as := range set {
				ases = append(ases, as)
			}
			fp[id] = ases
		}
		if err := b.AddSnapshot(s, fp); err != nil {
			panic(err)
		}
	}
	for i := 0; i < benchPrefixes; i++ {
		addr := netmodel.IP(0x0a000000 + uint32(i)<<8) // 10.x.y.0/24 rows
		b.AddPrefix(netmodel.MakePrefix(addr, 24), []astopo.ASN{astopo.ASN(r.Intn(benchASes) + 1)})
	}
}

func benchStore(b *testing.B) *Store {
	b.Helper()
	builder := NewBuilder()
	benchFillBuilder(builder, rng.New(42).Fork("footstore/bench"))
	st, err := builder.Build()
	if err != nil {
		b.Fatal(err)
	}
	return st
}

func BenchmarkFootstoreBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		builder := NewBuilder()
		benchFillBuilder(builder, rng.New(42).Fork("footstore/bench"))
		b.StartTimer()
		if _, err := builder.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFootstoreEncode(b *testing.B) {
	st := benchStore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.Encode()
	}
}

func BenchmarkFootstoreDecode(b *testing.B) {
	enc := benchStore(b).Encode()
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFootstoreLookupIP is the daemon's hot path: concurrent
// longest-prefix-match lookups against a shared store — lock-free and
// allocation-free.
func BenchmarkFootstoreLookupIP(b *testing.B) {
	st := benchStore(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rng.New(7).Fork("footstore/lookup")
		for pb.Next() {
			ip := netmodel.IP(0x0a000000 + uint32(r.Intn(benchPrefixes))<<8 + uint32(r.Intn(256)))
			if _, _, ok := st.LookupIP(ip); !ok {
				b.Fatal("lookup missed inside the mapped range")
			}
		}
	})
}

// BenchmarkFootstoreQueryParallel mixes the three query shapes the way
// a busy daemon would see them.
func BenchmarkFootstoreQueryParallel(b *testing.B) {
	st := benchStore(b)
	latest := st.Latest()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rng.New(11).Fork("footstore/mixed")
		i := 0
		for pb.Next() {
			switch i % 3 {
			case 0:
				ip := netmodel.IP(0x0a000000 + uint32(r.Intn(benchPrefixes))<<8)
				st.LookupIP(ip)
			case 1:
				st.HostingsOf(astopo.ASN(r.Intn(benchASes) + 1))
			default:
				st.FootprintSize(hg.Google, latest)
			}
			i++
		}
	})
}
