package footstore

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"offnetscope/internal/astopo"
	"offnetscope/internal/core"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/timeline"
)

// fakePrefixes satisfies PrefixSource for tests.
type fakePrefixes []prefixEntry

func (f fakePrefixes) Walk(fn func(netmodel.Prefix, []astopo.ASN) bool) {
	for _, e := range f {
		if !fn(e.prefix, e.asns) {
			return
		}
	}
}

// buildTestStore covers the interesting shapes: an AS that stays, one
// that leaves, one that leaves and rejoins (two spans), a MOAS prefix,
// and two hypergiants sharing an AS.
func buildTestStore(t testing.TB) *Store {
	t.Helper()
	b := NewBuilder()
	if err := b.AddSnapshot(10, map[hg.ID][]astopo.ASN{
		hg.Google:  {100, 200, 300},
		hg.Netflix: {200},
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSnapshot(12, map[hg.ID][]astopo.ASN{
		hg.Google:  {100, 300},
		hg.Netflix: {200, 400},
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSnapshot(13, map[hg.ID][]astopo.ASN{
		hg.Google:  {100, 200},
		hg.Netflix: {200, 400},
	}); err != nil {
		t.Fatal(err)
	}
	b.AddPrefix(netmodel.MustParsePrefix("10.1.0.0/16"), []astopo.ASN{100})
	b.AddPrefix(netmodel.MustParsePrefix("10.1.2.0/24"), []astopo.ASN{200})
	b.AddPrefix(netmodel.MustParsePrefix("10.2.0.0/16"), []astopo.ASN{300, 400}) // MOAS
	st, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStoreQueries(t *testing.T) {
	st := buildTestStore(t)

	want := []timeline.Snapshot{10, 12, 13}
	if got := st.Snapshots(); !reflect.DeepEqual(got, want) {
		t.Errorf("Snapshots() = %v, want %v", got, want)
	}
	if st.Latest() != 13 {
		t.Errorf("Latest() = %v, want 13", st.Latest())
	}
	if got := st.Hypergiants(); !reflect.DeepEqual(got, []hg.ID{hg.Google, hg.Netflix}) {
		t.Errorf("Hypergiants() = %v", got)
	}

	fp, ok := st.Footprint(hg.Google, 12)
	if !ok || !reflect.DeepEqual(fp, []astopo.ASN{100, 300}) {
		t.Errorf("Footprint(google, 12) = %v, %v", fp, ok)
	}
	// AS 200 left Google's footprint at 12 and rejoined at 13: two spans.
	fp, ok = st.Footprint(hg.Google, 13)
	if !ok || !reflect.DeepEqual(fp, []astopo.ASN{100, 200}) {
		t.Errorf("Footprint(google, 13) = %v, %v", fp, ok)
	}
	if _, ok := st.Footprint(hg.Google, 11); ok {
		t.Error("Footprint at absent snapshot should report !ok")
	}
	if n := st.FootprintSize(hg.Netflix, 13); n != 2 {
		t.Errorf("FootprintSize(netflix, 13) = %d, want 2", n)
	}
	if n := st.FootprintSize(hg.Akamai, 13); n != 0 {
		t.Errorf("FootprintSize(akamai, 13) = %d, want 0", n)
	}

	hostings := st.HostingsOf(200)
	wantHostings := []Hosting{
		{HG: hg.Google, AS: 200, First: 10, Last: 10},
		{HG: hg.Google, AS: 200, First: 13, Last: 13},
		{HG: hg.Netflix, AS: 200, First: 10, Last: 13},
	}
	if !reflect.DeepEqual(hostings, wantHostings) {
		t.Errorf("HostingsOf(200) = %+v, want %+v", hostings, wantHostings)
	}
	if st.HostingsOf(999) != nil {
		t.Error("HostingsOf(unknown) should be nil")
	}

	// LPM: /24 beats /16.
	p, origins, ok := st.LookupIP(netmodel.MustParseIP("10.1.2.9"))
	if !ok || p.String() != "10.1.2.0/24" || !reflect.DeepEqual(origins, []astopo.ASN{200}) {
		t.Errorf("LookupIP = %v %v %v", p, origins, ok)
	}
	_, origins, ok = st.LookupIP(netmodel.MustParseIP("10.2.200.1"))
	if !ok || !reflect.DeepEqual(origins, []astopo.ASN{300, 400}) {
		t.Errorf("MOAS LookupIP = %v %v", origins, ok)
	}
	if _, _, ok := st.LookupIP(netmodel.MustParseIP("192.0.2.1")); ok {
		t.Error("unmapped IP should report !ok")
	}

	stats := st.Stats()
	if stats.Snapshots != 3 || stats.Hypergiants != 2 || stats.Prefixes != 3 {
		t.Errorf("Stats() = %+v", stats)
	}
	// Google: 100 (1 span), 200 (2 spans), 300 (1 span); Netflix: 200,
	// 400 → 6 spans over 4 distinct ASes.
	if stats.Spans != 6 || stats.ASes != 4 {
		t.Errorf("Stats() spans/ASes = %+v", stats)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	if _, err := b.Build(); err == nil {
		t.Error("empty build should fail")
	}
	if err := b.AddSnapshot(timeline.Snapshot(timeline.Count()), nil); err == nil {
		t.Error("out-of-range snapshot should fail")
	}
	if err := b.AddSnapshot(5, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSnapshot(5, nil); err == nil {
		t.Error("non-increasing snapshot should fail")
	}
	if err := b.AddSnapshot(6, map[hg.ID][]astopo.ASN{hg.None: {1}}); err == nil {
		t.Error("invalid hypergiant id should fail")
	}
}

// TestRoundTrip is the acceptance property: build → write → read →
// re-write must be byte-identical, and the decoded store must answer
// queries identically.
func TestRoundTrip(t *testing.T) {
	st := buildTestStore(t)
	enc := st.Encode()

	st2, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, st2.Encode()) {
		t.Error("re-encoding a decoded store is not byte-identical")
	}
	if !reflect.DeepEqual(st.snaps, st2.snaps) || !reflect.DeepEqual(st.spans, st2.spans) {
		t.Error("decoded store differs from original")
	}
	fp1, _ := st.Footprint(hg.Google, 13)
	fp2, _ := st2.Footprint(hg.Google, 13)
	if !reflect.DeepEqual(fp1, fp2) {
		t.Errorf("footprints diverge after round trip: %v vs %v", fp1, fp2)
	}

	path := filepath.Join(t.TempDir(), "store.fst")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	st3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, st3.Encode()) {
		t.Error("Save/Open round trip is not byte-identical")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st4, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, st4.Encode()) {
		t.Error("Read round trip is not byte-identical")
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	valid := buildTestStore(t).Encode()

	if _, err := Decode(nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Decode([]byte("not a footstore file")); err == nil {
		t.Error("bad magic should fail")
	}
	for cut := 1; cut < len(valid); cut += 7 {
		if _, err := Decode(valid[:cut]); err == nil {
			t.Errorf("truncation at %d should fail", cut)
		}
	}
	for i := len(magic); i < len(valid); i += 11 {
		corrupt := append([]byte(nil), valid...)
		corrupt[i] ^= 0x40
		if _, err := Decode(corrupt); err == nil {
			t.Errorf("bit flip at %d should fail the checksum", i)
		}
	}
	trailing := append(append([]byte(nil), valid...), 0)
	if _, err := Decode(trailing); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestFromStudyAndResult(t *testing.T) {
	mkResult := func(s timeline.Snapshot, google []astopo.ASN) *core.Result {
		confirmed := make(map[astopo.ASN]struct{}, len(google))
		for _, as := range google {
			confirmed[as] = struct{}{}
		}
		return &core.Result{
			Snapshot: s,
			PerHG: map[hg.ID]*core.HGResult{
				hg.Google: {HG: hg.Google, ConfirmedASes: confirmed},
				hg.Akamai: {HG: hg.Akamai, ConfirmedASes: map[astopo.ASN]struct{}{}},
			},
		}
	}
	sr := &core.StudyResult{Results: make([]*core.Result, timeline.Count())}
	sr.Results[3] = mkResult(3, []astopo.ASN{10, 20})
	sr.Results[7] = mkResult(7, []astopo.ASN{10, 30})

	prefixes := fakePrefixes{{prefix: netmodel.MustParsePrefix("10.0.0.0/8"), asns: []astopo.ASN{10}}}
	st, err := FromStudy(sr, prefixes)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Snapshots(); !reflect.DeepEqual(got, []timeline.Snapshot{3, 7}) {
		t.Errorf("Snapshots() = %v", got)
	}
	fp, ok := st.Footprint(hg.Google, 7)
	if !ok || !reflect.DeepEqual(fp, []astopo.ASN{10, 30}) {
		t.Errorf("Footprint = %v, %v", fp, ok)
	}
	if len(st.Hypergiants()) != 1 {
		t.Errorf("empty Akamai footprint should not appear: %v", st.Hypergiants())
	}
	if _, origins, ok := st.LookupIP(netmodel.MustParseIP("10.9.9.9")); !ok || origins[0] != 10 {
		t.Errorf("LookupIP through study store = %v, %v", origins, ok)
	}

	single, err := FromResult(sr.Results[3], nil)
	if err != nil {
		t.Fatal(err)
	}
	if single.Latest() != 3 || single.FootprintSize(hg.Google, 3) != 2 {
		t.Errorf("FromResult store wrong: latest=%v size=%d", single.Latest(), single.FootprintSize(hg.Google, 3))
	}
}

// TestWalkPrefixesAndASes covers the accessors loadgen derives its
// workload populations from: WalkPrefixes visits the canonical prefix
// table in sorted order (with early stop), and ASes lists every
// hosting AS sorted.
func TestWalkPrefixesAndASes(t *testing.T) {
	st := buildTestStore(t)

	var prefixes []string
	var asnSets [][]astopo.ASN
	st.WalkPrefixes(func(p netmodel.Prefix, asns []astopo.ASN) bool {
		prefixes = append(prefixes, p.String())
		asnSets = append(asnSets, append([]astopo.ASN(nil), asns...))
		return true
	})
	wantPrefixes := []string{"10.1.0.0/16", "10.1.2.0/24", "10.2.0.0/16"}
	if !reflect.DeepEqual(prefixes, wantPrefixes) {
		t.Errorf("WalkPrefixes order = %v, want %v", prefixes, wantPrefixes)
	}
	if !reflect.DeepEqual(asnSets[2], []astopo.ASN{300, 400}) {
		t.Errorf("MOAS origins = %v, want [300 400]", asnSets[2])
	}

	// Early stop: returning false ends the walk.
	visited := 0
	st.WalkPrefixes(func(netmodel.Prefix, []astopo.ASN) bool {
		visited++
		return false
	})
	if visited != 1 {
		t.Errorf("early-stopped walk visited %d prefixes, want 1", visited)
	}

	if got, want := st.ASes(), []astopo.ASN{100, 200, 300, 400}; !reflect.DeepEqual(got, want) {
		t.Errorf("ASes() = %v, want %v", got, want)
	}
}
