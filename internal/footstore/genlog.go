// Generation log: the crash-only durability layer under the
// continuous-measurement daemon (cmd/offnetwatchd). Each committed scan
// wave becomes one immutable generation — a CRC-trailed segment file
// holding a full canonical store image — and a single manifest names
// the committed window. The manifest rename is the only commit point:
// a process SIGKILLed at any instant during an append or a compaction
// restarts serving exactly the generations the manifest named, never a
// torn one.
//
// On-disk layout (all files live directly in the log directory):
//
//	gen-00000042.seg        one generation (see segment format below)
//	MANIFEST.glm            the committed window (see manifest format)
//	gen-00000043.seg.torn   a quarantined torn tail, kept for forensics
//	.tmp-*                  in-flight atomic writes, removed on open
//
// Segment format (version 1), CRC-32 IEEE little-endian trailer over
// every preceding byte:
//
//	"offnetGS"      8-byte magic
//	version         uvarint, currently 1
//	generation      uvarint, must match the number in the filename
//	payload length  uvarint
//	payload         the canonical Store image (Encode), opaque here
//	crc32           4 bytes little-endian
//
// Manifest format (version 1), same trailer discipline:
//
//	"offnetGM"      8-byte magic
//	version         uvarint, currently 1
//	base            uvarint, first retained generation (≥ 1)
//	count           uvarint, number of retained generations
//	per generation base+i, in order:
//	  size          uvarint, exact byte size of the segment file
//	  crc32         4 bytes little-endian, over the whole segment file
//	crc32           4 bytes little-endian
//
// Write protocol. Append writes the segment file under its final name
// (write, fsync, close), then commits by writing the manifest via
// temp + rename + parent-dir fsync. A crash between the two leaves a
// segment at generation ≥ next with no manifest entry: a torn tail,
// quarantined (renamed to .torn) on the next open — never trusted,
// never silently deleted. Compact raises base in the manifest FIRST,
// then unlinks the dropped segments; a crash in between leaves orphans
// below base, which open removes. Committed segments are immutable, so
// read-only observers (PeekGenLog + LoadGeneration) are safe to run
// concurrently with the writer without any locking across processes.
package footstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"offnetscope/internal/obs"
)

const (
	// GenLogVersion is the current segment + manifest format version.
	GenLogVersion = 1

	manifestName = "MANIFEST.glm"
	tornSuffix   = ".torn"
	tmpPrefix    = ".tmp-"
)

var (
	segMagic      = []byte("offnetGS")
	manifestMagic = []byte("offnetGM")
)

// segMeta is one manifest row: the exact size and whole-file checksum
// of a committed segment.
type segMeta struct {
	size uint64
	crc  uint32
}

// GenLog is the writer handle: a single process appends generations
// and compacts the tail. Methods are safe for concurrent use within
// the process; cross-process safety relies on there being exactly one
// writer (the daemon) while readers use PeekGenLog/LoadGeneration.
type GenLog struct {
	dir string

	mu   sync.Mutex
	base uint64 // first retained generation, ≥ 1
	segs []segMeta

	metrics *obs.Registry
}

// GenRecovery reports what OpenGenLog found and repaired.
type GenRecovery struct {
	Committed       int      // generations named by the manifest, all verified
	TornQuarantined []string // segments past the committed tail, renamed *.torn
	OrphanedRemoved []string // segments below base (interrupted compaction), unlinked
	TempsRemoved    int      // .tmp-* files swept
}

func segName(gen uint64) string { return fmt.Sprintf("gen-%08d.seg", gen) }

// parseSegName extracts the generation number from a gen-NNNNNNNN.seg
// filename; ok is false for anything else (including .torn quarantines).
func parseSegName(name string) (uint64, bool) {
	const pre, suf = "gen-", ".seg"
	if !strings.HasPrefix(name, pre) || !strings.HasSuffix(name, suf) {
		return 0, false
	}
	num := name[len(pre) : len(name)-len(suf)]
	if num == "" {
		return 0, false
	}
	gen, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// OpenGenLog opens (creating if needed) the generation log in dir,
// verifies every committed segment against the manifest, quarantines
// torn tails, and removes compaction orphans and temp files. It is the
// writer-side open: it mutates the directory to a clean state. A
// corrupt manifest or a corrupt *committed* segment is not a crash
// artifact — both fail with a *CorruptError rather than being repaired,
// because committed data is supposed to be durable.
func OpenGenLog(dir string) (*GenLog, *GenRecovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("genlog: %w", err)
	}
	l := &GenLog{dir: dir, base: 1}
	rec := &GenRecovery{}

	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// Fresh log (or a crash before the very first commit): any
		// segments present are uncommitted by definition.
	case err != nil:
		return nil, nil, fmt.Errorf("genlog: %w", err)
	default:
		base, segs, derr := decodeManifest(raw)
		if derr != nil {
			var ce *CorruptError
			if errors.As(derr, &ce) {
				ce.Path = filepath.Join(dir, manifestName)
			}
			return nil, nil, derr
		}
		l.base, l.segs = base, segs
	}

	// Verify every committed segment byte-for-byte against its manifest
	// row and its own internal framing.
	for i, meta := range l.segs {
		gen := l.base + uint64(i)
		path := filepath.Join(dir, segName(gen))
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, nil, &CorruptError{Path: path, Offset: 0, Reason: fmt.Sprintf("committed generation %d unreadable: %v", gen, rerr)}
		}
		if uint64(len(data)) != meta.size {
			return nil, nil, &CorruptError{Path: path, Offset: len(data), Reason: fmt.Sprintf("committed generation %d: size %d, manifest says %d", gen, len(data), meta.size)}
		}
		if got := crc32.ChecksumIEEE(data); got != meta.crc {
			return nil, nil, &CorruptError{Path: path, Offset: 0, Reason: fmt.Sprintf("committed generation %d: checksum mismatch against manifest", gen)}
		}
		if _, derr := decodeSegment(data, gen); derr != nil {
			var ce *CorruptError
			if errors.As(derr, &ce) {
				ce.Path = path
			}
			return nil, nil, derr
		}
	}
	rec.Committed = len(l.segs)

	// Sweep the directory: temp files go, segments past the committed
	// tail are quarantined, segments below base are compaction orphans.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("genlog: %w", err)
	}
	next := l.base + uint64(len(l.segs))
	dirty := false
	for _, e := range entries {
		if e.IsDir() {
			continue // e.g. a wave-checkpoint subdirectory
		}
		name := e.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return nil, nil, fmt.Errorf("genlog: %w", err)
			}
			rec.TempsRemoved++
			dirty = true
			continue
		}
		gen, ok := parseSegName(name)
		if !ok {
			continue // manifest, quarantines, foreign files
		}
		switch {
		case gen >= next:
			// Torn tail: written (possibly partially) but never
			// committed. Quarantine, don't trust, don't destroy.
			dst := filepath.Join(dir, name+tornSuffix)
			for n := 1; ; n++ {
				if _, serr := os.Lstat(dst); errors.Is(serr, fs.ErrNotExist) {
					break
				}
				dst = filepath.Join(dir, fmt.Sprintf("%s%s.%d", name, tornSuffix, n))
			}
			if err := os.Rename(filepath.Join(dir, name), dst); err != nil {
				return nil, nil, fmt.Errorf("genlog: %w", err)
			}
			rec.TornQuarantined = append(rec.TornQuarantined, filepath.Base(dst))
			dirty = true
		case gen < l.base:
			// Orphan from a compaction that committed its manifest but
			// died before unlinking.
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return nil, nil, fmt.Errorf("genlog: %w", err)
			}
			rec.OrphanedRemoved = append(rec.OrphanedRemoved, name)
			dirty = true
		}
	}
	sort.Strings(rec.TornQuarantined)
	sort.Strings(rec.OrphanedRemoved)
	if dirty {
		if err := syncDir(dir); err != nil {
			return nil, nil, err
		}
	}

	// A fresh directory gets its empty manifest immediately, so a
	// concurrent PeekGenLog never has to special-case "no manifest yet"
	// beyond fs.ErrNotExist.
	if raw == nil {
		if err := l.writeManifestLocked(); err != nil {
			return nil, nil, err
		}
	}
	return l, rec, nil
}

// SetMetrics attaches an obs registry; nil (the default) discards.
func (l *GenLog) SetMetrics(reg *obs.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.metrics = reg
	reg.Gauge("genlog.generations").Set(int64(len(l.segs)))
}

// Dir returns the log directory.
func (l *GenLog) Dir() string { return l.dir }

// Base returns the first retained generation number.
func (l *GenLog) Base() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// Last returns the newest committed generation, or 0 if none.
func (l *GenLog) Last() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segs) == 0 {
		return 0
	}
	return l.base + uint64(len(l.segs)) - 1
}

// Len returns the number of retained generations.
func (l *GenLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Append commits st as the next generation and returns its number.
func (l *GenLog) Append(st *Store) (uint64, error) {
	return l.AppendEncoded(st.Encode())
}

// AppendEncoded commits an already-encoded payload as the next
// generation. The payload is opaque to the log (the crash-equivalence
// suite uses arbitrary deterministic bytes); callers that serve the log
// validate payloads on the read side (Load / LoadGeneration).
func (l *GenLog) AppendEncoded(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	start := time.Now()
	gen := l.base + uint64(len(l.segs))

	seg := encodeSegment(gen, payload)
	path := filepath.Join(l.dir, segName(gen))
	// The segment lands under its final name on purpose: until the
	// manifest names it, it is a torn tail, and open quarantines it.
	if err := writeDurable(path, seg); err != nil {
		return 0, err
	}
	meta := segMeta{size: uint64(len(seg)), crc: crc32.ChecksumIEEE(seg)}

	l.segs = append(l.segs, meta)
	if err := l.writeManifestLocked(); err != nil {
		// The manifest on disk still names the old window; rewind the
		// in-memory view to match and leave the segment as a torn tail.
		l.segs = l.segs[:len(l.segs)-1]
		return 0, err
	}

	l.metrics.Counter("genlog.appends").Inc()
	l.metrics.Counter("genlog.append_bytes").Add(int64(len(seg)))
	l.metrics.Histogram("genlog.append_ns").Since(start)
	l.metrics.Gauge("genlog.generations").Set(int64(len(l.segs)))
	return gen, nil
}

// Compact drops all but the newest keep generations. The manifest with
// the raised base commits first; only then are the dropped segments
// unlinked, so a kill mid-compaction leaves removable orphans, never a
// manifest pointing at missing data. Returns how many generations were
// dropped.
func (l *GenLog) Compact(keep int) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if keep < 1 || len(l.segs) <= keep {
		return 0, nil
	}
	drop := len(l.segs) - keep
	oldBase := l.base
	l.base += uint64(drop)
	l.segs = append([]segMeta(nil), l.segs[drop:]...)
	if err := l.writeManifestLocked(); err != nil {
		l.base = oldBase
		return 0, err
	}
	for i := 0; i < drop; i++ {
		path := filepath.Join(l.dir, segName(oldBase+uint64(i)))
		if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return 0, fmt.Errorf("genlog: %w", err)
		}
	}
	if err := syncDir(l.dir); err != nil {
		return 0, err
	}
	l.metrics.Counter("genlog.compactions").Inc()
	l.metrics.Counter("genlog.compacted_segments").Add(int64(drop))
	l.metrics.Gauge("genlog.generations").Set(int64(len(l.segs)))
	return drop, nil
}

// Load decodes the store image committed as generation gen.
func (l *GenLog) Load(gen uint64) (*Store, error) {
	payload, err := l.LoadEncoded(gen)
	if err != nil {
		return nil, err
	}
	st, err := Decode(payload)
	if err != nil {
		var ce *CorruptError
		if errors.As(err, &ce) {
			ce.Path = filepath.Join(l.dir, segName(gen))
		}
		return nil, err
	}
	return st, nil
}

// LoadEncoded returns the raw payload committed as generation gen.
func (l *GenLog) LoadEncoded(gen uint64) ([]byte, error) {
	l.mu.Lock()
	base, count := l.base, uint64(len(l.segs))
	l.mu.Unlock()
	if gen < base || gen >= base+count {
		return nil, fmt.Errorf("genlog: generation %d not in committed window [%d, %d)", gen, base, base+count)
	}
	return readSegmentPayload(l.dir, gen)
}

// writeManifestLocked commits the current window; the caller holds mu.
func (l *GenLog) writeManifestLocked() error {
	return writeAtomicInDir(l.dir, manifestName, encodeManifest(l.base, l.segs))
}

// PeekGenLog reads the committed window without touching anything:
// base is the first retained generation, next the one after the newest
// committed (base == next means the log is empty). Safe to call while
// a writer is appending — the manifest swaps atomically.
func PeekGenLog(dir string) (base, next uint64, err error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return 0, 0, fmt.Errorf("genlog: %w", err)
	}
	b, segs, derr := decodeManifest(raw)
	if derr != nil {
		var ce *CorruptError
		if errors.As(derr, &ce) {
			ce.Path = filepath.Join(dir, manifestName)
		}
		return 0, 0, derr
	}
	return b, b + uint64(len(segs)), nil
}

// LoadGeneration reads one committed generation without a writer
// handle — the serving-side entry point (offnetserve's watcher feeds
// it through the validated reload path). The segment's framing and
// checksum are verified; the payload must be a valid store image.
func LoadGeneration(dir string, gen uint64) (*Store, error) {
	payload, err := readSegmentPayload(dir, gen)
	if err != nil {
		return nil, err
	}
	st, err := Decode(payload)
	if err != nil {
		var ce *CorruptError
		if errors.As(err, &ce) {
			ce.Path = filepath.Join(dir, segName(gen))
		}
		return nil, err
	}
	return st, nil
}

// readSegmentPayload reads and fully verifies one segment file.
func readSegmentPayload(dir string, gen uint64) ([]byte, error) {
	path := filepath.Join(dir, segName(gen))
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("genlog: %w", err)
	}
	payload, derr := decodeSegment(data, gen)
	if derr != nil {
		var ce *CorruptError
		if errors.As(derr, &ce) {
			ce.Path = path
		}
		return nil, derr
	}
	return payload, nil
}

// encodeSegment frames a payload as generation gen.
func encodeSegment(gen uint64, payload []byte) []byte {
	buf := append([]byte(nil), segMagic...)
	buf = binary.AppendUvarint(buf, GenLogVersion)
	buf = binary.AppendUvarint(buf, gen)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// decodeSegment verifies the framing and returns the payload. wantGen
// must match the generation recorded in the header (a segment renamed
// to the wrong slot is corruption, not a crash artifact).
func decodeSegment(data []byte, wantGen uint64) ([]byte, error) {
	if len(data) < len(segMagic)+4 || string(data[:len(segMagic)]) != string(segMagic) {
		return nil, &CorruptError{Offset: 0, Reason: "bad segment magic"}
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, &CorruptError{Offset: len(body), Reason: "segment checksum mismatch (corrupt or truncated)"}
	}
	d := &decoder{data: body, off: len(segMagic)}
	if v := d.uvarint(); d.err == nil && v != GenLogVersion {
		return nil, fmt.Errorf("genlog: unsupported segment version %d", v)
	}
	gen := d.uvarint()
	if d.err == nil && gen != wantGen {
		d.fail(fmt.Sprintf("segment header names generation %d, expected %d", gen, wantGen))
	}
	plen := d.uvarint()
	if d.err == nil && plen != uint64(len(d.data)-d.off) {
		d.fail("segment payload length mismatch")
	}
	if d.err != nil {
		return nil, d.err
	}
	return d.data[d.off:], nil
}

// encodeManifest serializes the committed window.
func encodeManifest(base uint64, segs []segMeta) []byte {
	buf := append([]byte(nil), manifestMagic...)
	buf = binary.AppendUvarint(buf, GenLogVersion)
	buf = binary.AppendUvarint(buf, base)
	buf = binary.AppendUvarint(buf, uint64(len(segs)))
	for _, m := range segs {
		buf = binary.AppendUvarint(buf, m.size)
		buf = binary.LittleEndian.AppendUint32(buf, m.crc)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// minSegmentSize is the smallest legal segment file: magic + three
// one-byte varints + empty payload + trailer. Manifest rows claiming
// less are structurally corrupt.
const minSegmentSize = 8 + 3 + 4

// decodeManifest parses and validates a manifest. It never panics on
// malformed bytes (see FuzzGenerationManifest).
func decodeManifest(data []byte) (base uint64, segs []segMeta, err error) {
	if len(data) < len(manifestMagic)+4 || string(data[:len(manifestMagic)]) != string(manifestMagic) {
		return 0, nil, &CorruptError{Offset: 0, Reason: "bad manifest magic"}
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return 0, nil, &CorruptError{Offset: len(body), Reason: "manifest checksum mismatch (corrupt or truncated)"}
	}
	d := &decoder{data: body, off: len(manifestMagic)}
	if v := d.uvarint(); d.err == nil && v != GenLogVersion {
		return 0, nil, fmt.Errorf("genlog: unsupported manifest version %d", v)
	}
	base = d.uvarint()
	if d.err == nil && base == 0 {
		d.fail("manifest base must be ≥ 1")
	}
	count := d.count(0)
	if d.err == nil && base+uint64(count) < base {
		d.fail("manifest window overflows")
	}
	for i := 0; i < count && d.err == nil; i++ {
		size := d.uvarint()
		if d.err == nil && size < minSegmentSize {
			d.fail("manifest row smaller than any legal segment")
			break
		}
		if d.err == nil && d.off+4 > len(d.data) {
			d.fail("truncated manifest row")
			break
		}
		if d.err != nil {
			break
		}
		crc := binary.LittleEndian.Uint32(d.data[d.off:])
		d.off += 4
		segs = append(segs, segMeta{size: size, crc: crc})
	}
	if d.err == nil && d.off != len(d.data) {
		d.fail("trailing bytes")
	}
	if d.err != nil {
		return 0, nil, d.err
	}
	return base, segs, nil
}

// writeDurable writes data under its final name and fsyncs both the
// file and the directory. Used for segments, where "exists but not in
// the manifest" is the designed torn-tail state.
func writeDurable(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("genlog: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("genlog: writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("genlog: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("genlog: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// writeAtomicInDir writes name into dir via temp + fsync + rename +
// dir fsync — the same discipline as runstate's checkpoint writer. The
// rename is the commit point.
func writeAtomicInDir(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, tmpPrefix+name+"-")
	if err != nil {
		return fmt.Errorf("genlog: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("genlog: writing %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("genlog: %w", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("genlog: %w", err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		cleanup()
		return fmt.Errorf("genlog: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		cleanup()
		return fmt.Errorf("genlog: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and unlinks inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("genlog: %w", err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("genlog: %w", err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("genlog: %w", err)
	}
	return nil
}
