package footstore

import (
	"bytes"
	"testing"

	"offnetscope/internal/astopo"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
)

// FuzzFootstoreDecode throws arbitrary bytes at the binary decoder: it
// must reject corrupt and truncated input with an error — never a
// panic — and anything it accepts must re-encode canonically.
func FuzzFootstoreDecode(f *testing.F) {
	b := NewBuilder()
	_ = b.AddSnapshot(1, map[hg.ID][]astopo.ASN{hg.Google: {7, 9}})
	_ = b.AddSnapshot(2, map[hg.ID][]astopo.ASN{hg.Google: {9}, hg.Akamai: {7}})
	b.AddPrefix(netmodel.MustParsePrefix("10.0.0.0/8"), []astopo.ASN{7})
	st, err := b.Build()
	if err != nil {
		f.Fatal(err)
	}
	valid := st.Encode()

	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("offnetFS"))
	f.Add([]byte("garbage that is not a store"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, input []byte) {
		st, err := Decode(input)
		if err != nil {
			return
		}
		// Accepted input must round-trip: the canonical re-encoding
		// decodes to the same bytes again.
		enc := st.Encode()
		st2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoding of accepted input does not decode: %v", err)
		}
		if !bytes.Equal(enc, st2.Encode()) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}
