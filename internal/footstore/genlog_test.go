package footstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"offnetscope/internal/astopo"
	"offnetscope/internal/hg"
	"offnetscope/internal/obs"
	"offnetscope/internal/timeline"
)

// genStore builds a small store whose content varies with n, so
// successive generations have distinct bytes.
func genStore(t testing.TB, n int) *Store {
	t.Helper()
	b := NewBuilder()
	for i := 0; i <= n%3; i++ {
		s := timeline.Snapshot(i)
		if err := b.AddSnapshot(s, map[hg.ID][]astopo.ASN{
			hg.Google: {astopo.ASN(100 + n), astopo.ASN(200 + i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func mustOpen(t testing.TB, dir string) (*GenLog, *GenRecovery) {
	t.Helper()
	l, rec, err := OpenGenLog(dir)
	if err != nil {
		t.Fatalf("OpenGenLog(%s): %v", dir, err)
	}
	return l, rec
}

func TestGenLogFresh(t *testing.T) {
	dir := t.TempDir()
	l, rec := mustOpen(t, dir)
	if rec.Committed != 0 || len(rec.TornQuarantined) != 0 || len(rec.OrphanedRemoved) != 0 {
		t.Fatalf("fresh log recovery = %+v", rec)
	}
	if l.Base() != 1 || l.Last() != 0 || l.Len() != 0 {
		t.Fatalf("fresh log window = base %d last %d len %d", l.Base(), l.Last(), l.Len())
	}
	// The empty manifest is written eagerly so readers need no special
	// "not yet" case beyond a missing file.
	base, next, err := PeekGenLog(dir)
	if err != nil || base != 1 || next != 1 {
		t.Fatalf("PeekGenLog = %d, %d, %v", base, next, err)
	}
}

func TestGenLogAppendLoadReopen(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	reg := obs.NewRegistry("genlog-test")
	l.SetMetrics(reg)

	var want [][]byte
	for n := 0; n < 4; n++ {
		st := genStore(t, n)
		gen, err := l.Append(st)
		if err != nil {
			t.Fatal(err)
		}
		if gen != uint64(n+1) {
			t.Fatalf("append %d returned generation %d", n, gen)
		}
		want = append(want, st.Encode())
	}
	if l.Base() != 1 || l.Last() != 4 || l.Len() != 4 {
		t.Fatalf("window = base %d last %d len %d", l.Base(), l.Last(), l.Len())
	}
	if got := reg.Counter("genlog.appends").Value(); got != 4 {
		t.Fatalf("genlog.appends = %d", got)
	}

	check := func(l *GenLog) {
		t.Helper()
		for n, enc := range want {
			gen := uint64(n + 1)
			payload, err := l.LoadEncoded(gen)
			if err != nil {
				t.Fatalf("LoadEncoded(%d): %v", gen, err)
			}
			if !bytes.Equal(payload, enc) {
				t.Fatalf("generation %d payload differs", gen)
			}
			st, err := l.Load(gen)
			if err != nil {
				t.Fatalf("Load(%d): %v", gen, err)
			}
			if !bytes.Equal(st.Encode(), enc) {
				t.Fatalf("generation %d store re-encodes differently", gen)
			}
			ro, err := LoadGeneration(dir, gen)
			if err != nil {
				t.Fatalf("LoadGeneration(%d): %v", gen, err)
			}
			if !bytes.Equal(ro.Encode(), enc) {
				t.Fatalf("read-only generation %d differs", gen)
			}
		}
	}
	check(l)

	// Reopen: everything verified, nothing repaired.
	l2, rec := mustOpen(t, dir)
	if rec.Committed != 4 || len(rec.TornQuarantined) != 0 || len(rec.OrphanedRemoved) != 0 || rec.TempsRemoved != 0 {
		t.Fatalf("clean reopen recovery = %+v", rec)
	}
	check(l2)

	base, next, err := PeekGenLog(dir)
	if err != nil || base != 1 || next != 5 {
		t.Fatalf("PeekGenLog = %d, %d, %v", base, next, err)
	}

	if _, err := l.LoadEncoded(5); err == nil {
		t.Fatal("LoadEncoded past the committed window succeeded")
	}
	if _, err := l.LoadEncoded(0); err == nil {
		t.Fatal("LoadEncoded(0) succeeded")
	}
}

func TestGenLogTornTailQuarantined(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	for n := 0; n < 2; n++ {
		if _, err := l.Append(genStore(t, n)); err != nil {
			t.Fatal(err)
		}
	}

	// Simulate a crash between segment write and manifest commit: a
	// fully written segment at the next slot, and a half-written one
	// beyond it.
	whole := encodeSegment(3, genStore(t, 2).Encode())
	if err := os.WriteFile(filepath.Join(dir, segName(3)), whole, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(4)), whole[:len(whole)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec := mustOpen(t, dir)
	if rec.Committed != 2 {
		t.Fatalf("committed = %d, want 2", rec.Committed)
	}
	if len(rec.TornQuarantined) != 2 {
		t.Fatalf("torn quarantined = %v, want 2 entries", rec.TornQuarantined)
	}
	if l2.Last() != 2 {
		t.Fatalf("Last = %d after quarantine, want 2", l2.Last())
	}
	for _, gen := range []uint64{3, 4} {
		if _, err := os.Lstat(filepath.Join(dir, segName(gen))); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("torn segment %d still under its live name", gen)
		}
		if _, err := os.Lstat(filepath.Join(dir, segName(gen)+tornSuffix)); err != nil {
			t.Fatalf("torn segment %d not preserved: %v", gen, err)
		}
	}

	// The slot is reusable: the next append commits generation 3 and
	// does not collide with the quarantine.
	st := genStore(t, 5)
	gen, err := l2.Append(st)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 3 {
		t.Fatalf("post-recovery append got generation %d, want 3", gen)
	}
	got, err := LoadGeneration(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Encode(), st.Encode()) {
		t.Fatal("recommitted generation 3 differs")
	}
}

func TestGenLogTornQuarantineNameCollision(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	if _, err := l.Append(genStore(t, 0)); err != nil {
		t.Fatal(err)
	}
	// A previous crash already quarantined a generation 2; tear another.
	if err := os.WriteFile(filepath.Join(dir, segName(2)+tornSuffix), []byte("old torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(2)), []byte("new torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpen(t, dir)
	if len(rec.TornQuarantined) != 1 {
		t.Fatalf("torn quarantined = %v", rec.TornQuarantined)
	}
	raw, err := os.ReadFile(filepath.Join(dir, segName(2)+tornSuffix+".1"))
	if err != nil {
		t.Fatalf("collision quarantine missing: %v", err)
	}
	if string(raw) != "new torn" {
		t.Fatalf("collision quarantine holds %q", raw)
	}
	old, err := os.ReadFile(filepath.Join(dir, segName(2)+tornSuffix))
	if err != nil || string(old) != "old torn" {
		t.Fatalf("prior quarantine clobbered: %q, %v", old, err)
	}
}

func TestGenLogTempsSweptAndSubdirsIgnored(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	if _, err := l.Append(genStore(t, 0)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"MANIFEST.glm-123"), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Wave checkpoints live in a subdirectory of the log dir; the sweep
	// must not trip over it.
	if err := os.MkdirAll(filepath.Join(dir, "waves-ck"), 0o755); err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, dir)
	if rec.TempsRemoved != 1 {
		t.Fatalf("temps removed = %d, want 1", rec.TempsRemoved)
	}
	if l2.Last() != 1 {
		t.Fatalf("Last = %d", l2.Last())
	}
	if _, err := os.Stat(filepath.Join(dir, "waves-ck")); err != nil {
		t.Fatalf("subdirectory disturbed: %v", err)
	}
}

func TestGenLogCompact(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	var want [][]byte
	for n := 0; n < 5; n++ {
		st := genStore(t, n)
		if _, err := l.Append(st); err != nil {
			t.Fatal(err)
		}
		want = append(want, st.Encode())
	}

	removed, err := l.Compact(2)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 {
		t.Fatalf("Compact removed %d, want 3", removed)
	}
	if l.Base() != 4 || l.Last() != 5 || l.Len() != 2 {
		t.Fatalf("window after compact = base %d last %d len %d", l.Base(), l.Last(), l.Len())
	}
	for gen := uint64(1); gen <= 3; gen++ {
		if _, err := os.Lstat(filepath.Join(dir, segName(gen))); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("compacted segment %d still on disk", gen)
		}
		if _, err := l.LoadEncoded(gen); err == nil {
			t.Fatalf("LoadEncoded(%d) succeeded after compaction", gen)
		}
	}
	for gen := uint64(4); gen <= 5; gen++ {
		payload, err := l.LoadEncoded(gen)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(payload, want[gen-1]) {
			t.Fatalf("generation %d payload changed by compaction", gen)
		}
	}

	// Idempotent when already within budget.
	if removed, err := l.Compact(2); err != nil || removed != 0 {
		t.Fatalf("second Compact = %d, %v", removed, err)
	}
	// keep < 1 disables compaction.
	if removed, err := l.Compact(0); err != nil || removed != 0 {
		t.Fatalf("Compact(0) = %d, %v", removed, err)
	}

	// Reopen and append: numbering continues past the raised base.
	l2, rec := mustOpen(t, dir)
	if rec.Committed != 2 || len(rec.OrphanedRemoved) != 0 {
		t.Fatalf("post-compact reopen recovery = %+v", rec)
	}
	gen, err := l2.Append(genStore(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	if gen != 6 {
		t.Fatalf("append after compact+reopen got generation %d, want 6", gen)
	}
}

func TestGenLogCompactionOrphansRemovedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	for n := 0; n < 4; n++ {
		if _, err := l.Append(genStore(t, n)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a compaction killed between its manifest commit and the
	// unlinks: write the raised-base manifest by hand, leaving segments
	// 1 and 2 stranded below base.
	l.mu.Lock()
	l.base = 3
	l.segs = l.segs[2:]
	if err := l.writeManifestLocked(); err != nil {
		l.mu.Unlock()
		t.Fatal(err)
	}
	l.mu.Unlock()

	l2, rec := mustOpen(t, dir)
	if len(rec.OrphanedRemoved) != 2 {
		t.Fatalf("orphans removed = %v, want 2 entries", rec.OrphanedRemoved)
	}
	if l2.Base() != 3 || l2.Last() != 4 {
		t.Fatalf("window = base %d last %d", l2.Base(), l2.Last())
	}
	for gen := uint64(1); gen <= 2; gen++ {
		if _, err := os.Lstat(filepath.Join(dir, segName(gen))); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("orphan %d survived open", gen)
		}
	}
}

func TestGenLogCorruptCommittedSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	if _, err := l.Append(genStore(t, 0)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segName(1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = OpenGenLog(dir)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenGenLog over corrupt committed segment: %v", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Path != path {
		t.Fatalf("CorruptError path = %+v", err)
	}
	if _, err := LoadGeneration(dir, 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("LoadGeneration over corrupt segment: %v", err)
	}
}

func TestGenLogCorruptManifestRejected(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	if _, err := l.Append(genStore(t, 0)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenGenLog(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenGenLog over corrupt manifest: %v", err)
	}
	if _, _, err := PeekGenLog(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("PeekGenLog over corrupt manifest: %v", err)
	}
}

func TestGenLogSegmentWrongSlotRejected(t *testing.T) {
	payload := []byte("payload")
	seg := encodeSegment(5, payload)
	if got, err := decodeSegment(seg, 5); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("decodeSegment(5) = %q, %v", got, err)
	}
	if _, err := decodeSegment(seg, 6); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("segment accepted in the wrong slot: %v", err)
	}
}

func TestGenLogManifestRoundtrip(t *testing.T) {
	segs := []segMeta{{size: 15, crc: 0xdeadbeef}, {size: 4096, crc: 0}, {size: 1 << 20, crc: 42}}
	raw := encodeManifest(7, segs)
	base, got, err := decodeManifest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if base != 7 || len(got) != len(segs) {
		t.Fatalf("decoded base %d, %d rows", base, len(got))
	}
	for i := range segs {
		if got[i] != segs[i] {
			t.Fatalf("row %d = %+v, want %+v", i, got[i], segs[i])
		}
	}
	if !bytes.Equal(encodeManifest(base, got), raw) {
		t.Fatal("manifest re-encoding not canonical")
	}
	// Structural rejections.
	if _, _, err := decodeManifest(encodeManifest(0, nil)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("base 0 accepted: %v", err)
	}
	if _, _, err := decodeManifest(encodeManifest(1, []segMeta{{size: 3, crc: 1}})); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("implausibly small segment row accepted: %v", err)
	}
}

func TestGenLogAppendEncodedOpaque(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	payload := bytes.Repeat([]byte{0xab, 0xcd}, 1000)
	gen, err := l.AppendEncoded(payload)
	if err != nil || gen != 1 {
		t.Fatalf("AppendEncoded = %d, %v", gen, err)
	}
	got, err := l.LoadEncoded(1)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("LoadEncoded after opaque append: %v", err)
	}
	// The payload is not a store image; the serving-side loader rejects
	// it while the log-level read does not.
	if _, err := LoadGeneration(dir, 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("LoadGeneration over an opaque payload: %v", err)
	}
}

func TestNewBuilderFromRoundtrip(t *testing.T) {
	st := buildTestStore(t)
	st2, err := NewBuilderFrom(st).Build()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st2.Encode(), st.Encode()) {
		t.Fatal("NewBuilderFrom roundtrip is not byte-identical")
	}
	// And the rebuilt builder accepts further snapshots after Latest().
	b := NewBuilderFrom(st)
	if err := b.AddSnapshot(st.Latest()+1, map[hg.ID][]astopo.ASN{hg.Google: {100}}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
}
