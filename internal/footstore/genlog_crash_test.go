package footstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"offnetscope/internal/rng"
)

// The generation-log crash-equivalence suite: a subprocess appends and
// compacts a deterministic workload while the parent SIGKILLs it at
// seeded points — mid-append, mid-manifest-commit, mid-compaction.
// After every kill the log is reopened (quarantining torn tails,
// removing orphans) and the workload resumes. The final directory must
// be byte-identical to an uninterrupted run: same manifest, same
// committed segments, nothing torn ever promoted.

const genlogCrashHelperEnv = "GENLOG_CRASH_HELPER"

func TestMain(m *testing.M) {
	if spec := os.Getenv(genlogCrashHelperEnv); spec != "" {
		if err := genlogCrashHelper(spec); err != nil {
			fmt.Fprintln(os.Stderr, "genlog crash helper:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// genlogPayload derives generation g's bytes purely from (seed, g), so
// a restarted run re-appends identical segments. ~32 KiB per payload
// keeps each append long enough for SIGKILL to land inside it.
func genlogPayload(seed uint64, g uint64) []byte {
	r := rng.New(seed).Fork(fmt.Sprintf("gen-%d", g))
	out := make([]byte, 0, 32*1024)
	for len(out) < 32*1024 {
		out = binary.LittleEndian.AppendUint64(out, r.Uint64())
	}
	return out
}

// genlogTargetBase is the deterministic compaction schedule: after the
// highest multiple m of compactEvery reached so far, only the newest
// keep generations survive. It depends only on the newest generation
// number, never on run history, so crashed-and-resumed runs converge
// on the same window as a clean run.
func genlogTargetBase(last uint64, compactEvery, keep uint64) uint64 {
	m := (last / compactEvery) * compactEvery
	if m == 0 || m <= keep {
		return 1
	}
	return m - keep + 1
}

// runGenLogWorkload appends deterministic payloads until the log's
// newest generation reaches target, compacting on the deterministic
// schedule. Safe to call on a partially complete directory: it resumes
// from whatever is committed.
func runGenLogWorkload(dir string, seed, target, compactEvery, keep uint64) error {
	l, _, err := OpenGenLog(dir)
	if err != nil {
		return err
	}
	enforce := func(last uint64) error {
		if last == 0 {
			return nil
		}
		if tb := genlogTargetBase(last, compactEvery, keep); tb > l.Base() {
			if _, err := l.Compact(int(last - tb + 1)); err != nil {
				return err
			}
		}
		return nil
	}
	// Catch up on a compaction the previous incarnation died before.
	if err := enforce(l.Last()); err != nil {
		return err
	}
	for g := l.Last() + 1; g <= target; g++ {
		if _, err := l.AppendEncoded(genlogPayload(seed, g)); err != nil {
			return err
		}
		if err := enforce(g); err != nil {
			return err
		}
	}
	return nil
}

// genlogCrashHelper is the subprocess body; spec is
// "dir|seed|target|compactEvery|keep".
func genlogCrashHelper(spec string) error {
	parts := strings.Split(spec, "|")
	if len(parts) != 5 {
		return fmt.Errorf("bad helper spec %q", spec)
	}
	var seed, target, every, keep uint64
	if _, err := fmt.Sscanf(strings.Join(parts[1:], " "), "%d %d %d %d", &seed, &target, &every, &keep); err != nil {
		return fmt.Errorf("bad helper spec %q: %v", spec, err)
	}
	return runGenLogWorkload(parts[0], seed, target, every, keep)
}

// runGenlogCrashHelper execs the test binary as the workload runner,
// SIGKILLing it after killAfter (0 = let it finish). Returns whether
// the process completed (exit 0) and its combined output.
func runGenlogCrashHelper(t *testing.T, dir string, seed, target, every, keep uint64, killAfter time.Duration) (completed bool, out string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), fmt.Sprintf("%s=%s|%d|%d|%d|%d", genlogCrashHelperEnv, dir, seed, target, every, keep))
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	var timer <-chan time.Time
	if killAfter > 0 {
		timer = time.After(killAfter)
	}
	for {
		select {
		case werr := <-done:
			var ee *exec.ExitError
			if errors.As(werr, &ee) {
				return false, buf.String()
			}
			if werr != nil {
				t.Fatalf("waiting for helper: %v", werr)
			}
			return true, buf.String()
		case <-timer:
			timer = nil
			cmd.Process.Signal(syscall.SIGKILL)
		case <-time.After(2 * time.Minute):
			cmd.Process.Kill()
			t.Fatalf("helper wedged; output:\n%s", buf.String())
		}
	}
}

func TestGenLogCrashEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("SIGKILL crash-equivalence e2e is not -short")
	}
	const (
		seed   = uint64(0x0ff7e75)
		target = uint64(120)
		every  = uint64(10)
		keep   = uint64(4)
	)
	work := t.TempDir()
	cleanDir := filepath.Join(work, "clean")
	crashDir := filepath.Join(work, "crash")

	// Uninterrupted baseline, in-process.
	if err := runGenLogWorkload(cleanDir, seed, target, every, keep); err != nil {
		t.Fatalf("clean run: %v", err)
	}

	// Crash run: SIGKILL at seeded points until the workload completes.
	g := rng.New(seed).Fork("kill-schedule")
	kills, completed := 0, false
	for attempt := 0; attempt < 25; attempt++ {
		delay := 15*time.Millisecond + time.Duration(g.Int63n(int64(185*time.Millisecond)))
		ok, out := runGenlogCrashHelper(t, crashDir, seed, target, every, keep, delay)
		if strings.Contains(out, "genlog crash helper:") {
			t.Fatalf("helper failed:\n%s", out)
		}
		if ok {
			completed = true
			break
		}
		kills++
	}
	if !completed {
		if ok, out := runGenlogCrashHelper(t, crashDir, seed, target, every, keep, 0); !ok {
			t.Fatalf("final uninterrupted helper run failed:\n%s", out)
		}
	}
	if kills == 0 {
		t.Fatal("no SIGKILL landed mid-run; the suite proved nothing")
	}
	t.Logf("workload killed %d time(s) before completing", kills)

	// One more open repairs any tail the last (completed) run left; a
	// completed run leaves nothing, so this must be a no-op.
	l, rec, err := OpenGenLog(crashDir)
	if err != nil {
		t.Fatalf("final open of crash dir: %v", err)
	}
	if len(rec.TornQuarantined) != 0 || len(rec.OrphanedRemoved) != 0 || rec.TempsRemoved != 0 {
		t.Fatalf("completed run left crash artifacts: %+v", rec)
	}
	if l.Last() != target {
		t.Fatalf("crash run Last = %d, want %d", l.Last(), target)
	}

	// Byte-identity: the committed window — manifest and every live
	// segment — must match the uninterrupted baseline exactly.
	// Quarantined *.torn files are the only allowed extra artifacts.
	cb, cn, err := PeekGenLog(cleanDir)
	if err != nil {
		t.Fatal(err)
	}
	xb, xn, err := PeekGenLog(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	if cb != xb || cn != xn {
		t.Fatalf("committed windows differ: clean [%d,%d) vs crash [%d,%d)", cb, cn, xb, xn)
	}
	mustRead := func(dir, name string) []byte {
		t.Helper()
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if !bytes.Equal(mustRead(cleanDir, manifestName), mustRead(crashDir, manifestName)) {
		t.Fatal("manifests differ")
	}
	for gen := cb; gen < cn; gen++ {
		if !bytes.Equal(mustRead(cleanDir, segName(gen)), mustRead(crashDir, segName(gen))) {
			t.Fatalf("generation %d segment differs", gen)
		}
	}

	// The clean directory must hold no quarantines; count the crash
	// run's for the log line.
	torn := 0
	entries, err := os.ReadDir(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), tornSuffix) {
			torn++
		}
	}
	cleanEntries, err := os.ReadDir(cleanDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range cleanEntries {
		if strings.Contains(e.Name(), tornSuffix) || strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Fatalf("clean run left crash artifact %s", e.Name())
		}
	}
	t.Logf("crash run quarantined %d torn segment(s); committed window [%d,%d) byte-identical", torn, xb, xn)
}
