package footstore

import (
	"testing"
)

// FuzzGenerationManifest throws arbitrary bytes at the generation-log
// manifest decoder: corrupt and truncated input must be rejected with
// an error — never a panic, never a huge allocation — and anything it
// accepts must survive a re-encode/decode roundtrip.
func FuzzGenerationManifest(f *testing.F) {
	f.Add(encodeManifest(1, nil))
	f.Add(encodeManifest(1, []segMeta{{size: minSegmentSize, crc: 0x12345678}}))
	f.Add(encodeManifest(42, []segMeta{
		{size: 1024, crc: 1}, {size: 4096, crc: 2}, {size: 1 << 20, crc: 3},
	}))
	valid := encodeManifest(7, []segMeta{{size: 99, crc: 0xffffffff}})
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("offnetGM"))
	f.Add([]byte("not a manifest at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, input []byte) {
		base, segs, err := decodeManifest(input)
		if err != nil {
			return
		}
		if base == 0 {
			t.Fatal("decoder accepted base 0")
		}
		for i, m := range segs {
			if m.size < minSegmentSize {
				t.Fatalf("decoder accepted row %d with size %d", i, m.size)
			}
		}
		// Accepted input must roundtrip through the canonical encoder.
		base2, segs2, err := decodeManifest(encodeManifest(base, segs))
		if err != nil {
			t.Fatalf("re-encoded manifest rejected: %v", err)
		}
		if base2 != base || len(segs2) != len(segs) {
			t.Fatalf("roundtrip changed window: base %d→%d, rows %d→%d", base, base2, len(segs), len(segs2))
		}
		for i := range segs {
			if segs[i] != segs2[i] {
				t.Fatalf("roundtrip changed row %d: %+v → %+v", i, segs[i], segs2[i])
			}
		}
	})
}
