// Package footstore is the serving-side artifact of the off-net study:
// an immutable, memory-compact longitudinal footprint store. The §4
// pipeline (internal/core) produces per-snapshot per-hypergiant off-net
// AS sets; footstore freezes them — together with the IP-to-AS prefix
// table of the most recent snapshot — into one queryable object that a
// daemon (cmd/offnetd) can hold in memory and hit from any number of
// goroutines.
//
// Internally the longitudinal footprints are stored as spans: for each
// hypergiant, runs of consecutive present snapshots during which an AS
// stayed in the footprint. Spans answer all three query shapes without
// materialising 31 separate AS sets:
//
//   - Footprint(hg, snapshot): every span covering the snapshot;
//   - HostingsOf(as): the per-hypergiant spans touching the AS;
//   - LookupIP(ip): longest-prefix match through the netmodel trie to
//     the origin AS(es), then HostingsOf.
//
// A Store is built once (Builder or Decode) and never mutated, so the
// entire query path is lock-free and safe for unbounded concurrent
// readers. The on-disk format is documented in serialize.go.
package footstore

import (
	"fmt"
	"sort"

	"offnetscope/internal/astopo"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/timeline"
)

// PrefixSource supplies the prefix-to-origin table IP queries resolve
// through; *bgpsim.IP2AS satisfies it.
type PrefixSource interface {
	Walk(fn func(netmodel.Prefix, []astopo.ASN) bool)
}

// span is one contiguous run of present-snapshot indices (inclusive on
// both ends) during which an AS sat in a hypergiant's footprint.
type span struct {
	as       astopo.ASN
	from, to int32 // indices into Store.snaps
}

// prefixEntry is one row of the IP-to-AS table, kept sorted by
// (address, length) so serialization is deterministic.
type prefixEntry struct {
	prefix netmodel.Prefix
	asns   []astopo.ASN
}

// Hosting is one hypergiant's continuous presence inside an AS.
type Hosting struct {
	HG    hg.ID
	AS    astopo.ASN
	First timeline.Snapshot // first present snapshot of the run
	Last  timeline.Snapshot // last present snapshot of the run
}

// Store is the immutable read side. All accessors are safe for
// concurrent use; none of them takes a lock.
type Store struct {
	snaps    []timeline.Snapshot // present snapshots, strictly increasing
	spans    [][]span            // indexed by hg.ID, sorted by (as, from)
	asIndex  map[astopo.ASN][]Hosting
	prefixes []prefixEntry
	trie     netmodel.Trie[[]astopo.ASN]
}

// Snapshots returns the present snapshots in order.
func (st *Store) Snapshots() []timeline.Snapshot {
	out := make([]timeline.Snapshot, len(st.snaps))
	copy(out, st.snaps)
	return out
}

// Latest returns the most recent snapshot in the store.
func (st *Store) Latest() timeline.Snapshot {
	if len(st.snaps) == 0 {
		return -1
	}
	return st.snaps[len(st.snaps)-1]
}

// SnapshotIndex locates s among the present snapshots.
func (st *Store) SnapshotIndex(s timeline.Snapshot) (int, bool) {
	i := sort.Search(len(st.snaps), func(i int) bool { return st.snaps[i] >= s })
	if i < len(st.snaps) && st.snaps[i] == s {
		return i, true
	}
	return 0, false
}

// Hypergiants returns the hypergiants with at least one span, in ID
// order.
func (st *Store) Hypergiants() []hg.ID {
	var out []hg.ID
	for id, spans := range st.spans {
		if len(spans) > 0 {
			out = append(out, hg.ID(id))
		}
	}
	return out
}

// Footprint returns id's off-net AS set at snapshot s, sorted. The
// second return is false when s is not a present snapshot.
func (st *Store) Footprint(id hg.ID, s timeline.Snapshot) ([]astopo.ASN, bool) {
	idx, ok := st.SnapshotIndex(s)
	if !ok {
		return nil, false
	}
	var out []astopo.ASN
	for _, sp := range st.spansOf(id) {
		if sp.from <= int32(idx) && int32(idx) <= sp.to {
			out = append(out, sp.as)
		}
	}
	return out, true
}

// FootprintSize counts id's off-net ASes at snapshot s without
// allocating the set.
func (st *Store) FootprintSize(id hg.ID, s timeline.Snapshot) int {
	idx, ok := st.SnapshotIndex(s)
	if !ok {
		return 0
	}
	n := 0
	for _, sp := range st.spansOf(id) {
		if sp.from <= int32(idx) && int32(idx) <= sp.to {
			n++
		}
	}
	return n
}

func (st *Store) spansOf(id hg.ID) []span {
	if int(id) < 0 || int(id) >= len(st.spans) {
		return nil
	}
	return st.spans[id]
}

// HostingsOf returns every hypergiant presence run inside as, ordered
// by (hypergiant, first snapshot). The returned slice is shared and
// must not be mutated.
func (st *Store) HostingsOf(as astopo.ASN) []Hosting {
	return st.asIndex[as]
}

// LookupIP resolves ip through the longest-prefix-match table. The
// returned origin slice is shared and must not be mutated; ok is false
// when no prefix covers the address.
func (st *Store) LookupIP(ip netmodel.IP) (p netmodel.Prefix, origins []astopo.ASN, ok bool) {
	return st.trie.LookupPrefix(ip)
}

// WalkPrefixes visits every row of the IP-to-AS table in canonical
// (address, length) order, stopping early when fn returns false. The
// origin slices are shared and must not be mutated. Workload generators
// (internal/loadgen) use this to derive realistic hot-IP populations
// from the store itself; the deterministic order is what makes a seeded
// workload reproducible across runs.
func (st *Store) WalkPrefixes(fn func(netmodel.Prefix, []astopo.ASN) bool) {
	for i := range st.prefixes {
		if !fn(st.prefixes[i].prefix, st.prefixes[i].asns) {
			return
		}
	}
}

// ASes returns every AS hosting at least one hypergiant anywhere in the
// study window, sorted ascending — the deterministic population for
// /v1/as query workloads.
func (st *Store) ASes() []astopo.ASN {
	out := make([]astopo.ASN, 0, len(st.asIndex))
	for as := range st.asIndex {
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats summarises the store for logs and /debug/vars.
type Stats struct {
	Snapshots   int
	Hypergiants int
	Spans       int
	ASes        int
	Prefixes    int
}

// Stats computes summary counts.
func (st *Store) Stats() Stats {
	s := Stats{
		Snapshots: len(st.snaps),
		ASes:      len(st.asIndex),
		Prefixes:  len(st.prefixes),
	}
	for _, spans := range st.spans {
		if len(spans) > 0 {
			s.Hypergiants++
			s.Spans += len(spans)
		}
	}
	return s
}

// finalize derives the AS index from the spans; called once at the end
// of Build and Decode, before the store is shared.
func (st *Store) finalize() {
	st.asIndex = make(map[astopo.ASN][]Hosting)
	for id, spans := range st.spans {
		for _, sp := range spans {
			st.asIndex[sp.as] = append(st.asIndex[sp.as], Hosting{
				HG:    hg.ID(id),
				AS:    sp.as,
				First: st.snaps[sp.from],
				Last:  st.snaps[sp.to],
			})
		}
	}
	for _, hs := range st.asIndex {
		sort.Slice(hs, func(i, j int) bool {
			if hs[i].HG != hs[j].HG {
				return hs[i].HG < hs[j].HG
			}
			return hs[i].First < hs[j].First
		})
	}
	for i := range st.prefixes {
		st.trie.Insert(st.prefixes[i].prefix, st.prefixes[i].asns)
	}
}

// Builder accumulates per-snapshot footprints and a prefix table, then
// freezes them into a Store. Snapshots must be added in increasing
// order; the zero value is ready to use.
type Builder struct {
	snaps      []timeline.Snapshot
	footprints []map[hg.ID][]astopo.ASN
	prefixes   []prefixEntry
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// NewBuilderFrom reconstructs a builder holding st's exact contents, so
// a restarted process can keep extending a store it only has the frozen
// form of (the continuous-measurement daemon rebuilds its wave builder
// from the newest committed generation this way). The roundtrip is
// canonical: NewBuilderFrom(st).Build() encodes byte-identically to st.
func NewBuilderFrom(st *Store) *Builder {
	b := NewBuilder()
	ids := st.Hypergiants()
	for _, s := range st.Snapshots() {
		fp := make(map[hg.ID][]astopo.ASN, len(ids))
		for _, id := range ids {
			if set, ok := st.Footprint(id, s); ok && len(set) > 0 {
				fp[id] = set
			}
		}
		if err := b.AddSnapshot(s, fp); err != nil {
			// Unreachable: st's snapshots are strictly increasing and
			// its IDs validated at build time.
			panic(err)
		}
	}
	st.WalkPrefixes(func(p netmodel.Prefix, origins []astopo.ASN) bool {
		b.AddPrefix(p, origins)
		return true
	})
	return b
}

// AddSnapshot records each hypergiant's off-net AS set at s. The sets
// are copied; unsorted input is tolerated.
func (b *Builder) AddSnapshot(s timeline.Snapshot, footprints map[hg.ID][]astopo.ASN) error {
	if !s.Valid() {
		return fmt.Errorf("footstore: invalid snapshot %d", int(s))
	}
	if n := len(b.snaps); n > 0 && b.snaps[n-1] >= s {
		return fmt.Errorf("footstore: snapshot %s not after %s", s, b.snaps[n-1])
	}
	cp := make(map[hg.ID][]astopo.ASN, len(footprints))
	for id, ases := range footprints {
		if int(id) <= int(hg.None) || int(id) > hg.Count {
			return fmt.Errorf("footstore: invalid hypergiant id %d", int(id))
		}
		set := make([]astopo.ASN, len(ases))
		copy(set, ases)
		sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
		set = dedupASNs(set)
		if len(set) > 0 {
			cp[id] = set
		}
	}
	b.snaps = append(b.snaps, s)
	b.footprints = append(b.footprints, cp)
	return nil
}

// AddPrefix adds one prefix-to-origin row to the IP lookup table.
// Duplicate prefixes keep the last value.
func (b *Builder) AddPrefix(p netmodel.Prefix, origins []astopo.ASN) {
	if len(origins) == 0 {
		return
	}
	cp := make([]astopo.ASN, len(origins))
	copy(cp, origins)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	b.prefixes = append(b.prefixes, prefixEntry{prefix: p.Canonical(), asns: dedupASNs(cp)})
}

// AddPrefixes drains a PrefixSource (for example *bgpsim.IP2AS) into
// the lookup table.
func (b *Builder) AddPrefixes(src PrefixSource) {
	src.Walk(func(p netmodel.Prefix, origins []astopo.ASN) bool {
		b.AddPrefix(p, origins)
		return true
	})
}

// Build freezes the accumulated data into an immutable Store.
func (b *Builder) Build() (*Store, error) {
	if len(b.snaps) == 0 {
		return nil, fmt.Errorf("footstore: no snapshots")
	}
	st := &Store{
		snaps: append([]timeline.Snapshot(nil), b.snaps...),
		spans: make([][]span, hg.Count+1),
	}
	// Turn the per-snapshot sets into spans: extend a run while the AS
	// stays present in consecutive present snapshots, else open a new
	// one.
	for id := hg.ID(1); int(id) <= hg.Count; id++ {
		open := make(map[astopo.ASN]int) // AS -> index into st.spans[id]
		for i := range b.snaps {
			for _, as := range b.footprints[i][id] {
				if j, ok := open[as]; ok && st.spans[id][j].to == int32(i-1) {
					st.spans[id][j].to = int32(i)
					continue
				}
				open[as] = len(st.spans[id])
				st.spans[id] = append(st.spans[id], span{as: as, from: int32(i), to: int32(i)})
			}
		}
		sortSpans(st.spans[id])
	}
	st.prefixes = canonicalPrefixes(b.prefixes)
	st.finalize()
	return st, nil
}

// sortSpans orders spans by (AS, from) — the canonical order both the
// query path and the serializer rely on.
func sortSpans(spans []span) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].as != spans[j].as {
			return spans[i].as < spans[j].as
		}
		return spans[i].from < spans[j].from
	})
}

// canonicalPrefixes sorts by (address, length) and keeps the last
// occurrence of duplicate prefixes.
func canonicalPrefixes(in []prefixEntry) []prefixEntry {
	out := make([]prefixEntry, len(in))
	copy(out, in)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].prefix.Addr != out[j].prefix.Addr {
			return out[i].prefix.Addr < out[j].prefix.Addr
		}
		return out[i].prefix.Len < out[j].prefix.Len
	})
	dst := 0
	for i := range out {
		if dst > 0 && out[dst-1].prefix == out[i].prefix {
			out[dst-1] = out[i]
			continue
		}
		out[dst] = out[i]
		dst++
	}
	return out[:dst]
}

func dedupASNs(sorted []astopo.ASN) []astopo.ASN {
	dst := 0
	for i, as := range sorted {
		if i > 0 && sorted[i-1] == as {
			continue
		}
		sorted[dst] = as
		dst++
	}
	return sorted[:dst]
}
