package footstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"

	"offnetscope/internal/astopo"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/timeline"
)

// On-disk format (version 1). Everything after the magic is
// varint-encoded (encoding/binary uvarint); the file ends with a CRC-32
// (IEEE, little-endian) of every preceding byte including the magic.
//
//	"offnetFS"                          8-byte magic
//	version                             uvarint, currently 1
//	snapshot section:
//	  count ≥ 1, then the present snapshot indices — first absolute,
//	  the rest as deltas (strictly increasing)
//	hypergiant section:
//	  count, then per hypergiant (IDs strictly increasing):
//	    id, then for every present snapshot the footprint delta against
//	    the previous present snapshot: added-count + added ASNs
//	    (delta-encoded, strictly increasing), removed-count + removed
//	    ASNs (same encoding; every removal must be present)
//	prefix section:
//	  count, then rows sorted by (address, length): address — first
//	  absolute, the rest as deltas; equal addresses must have strictly
//	  increasing lengths — then the length and the origin ASNs
//	  (count ≥ 1, delta-encoded, strictly increasing)
//	crc32                               4 bytes little-endian
//
// The encoding is canonical: a store always serializes to the same
// bytes, so build → write → read → re-write is byte-identical.

// Version is the current on-disk format version.
const Version = 1

var magic = []byte("offnetFS")

// Encode serializes the store into its canonical binary form.
func (st *Store) Encode() []byte {
	buf := append([]byte(nil), magic...)
	buf = binary.AppendUvarint(buf, Version)

	// Snapshot section.
	buf = binary.AppendUvarint(buf, uint64(len(st.snaps)))
	prev := uint64(0)
	for i, s := range st.snaps {
		v := uint64(s)
		if i == 0 {
			buf = binary.AppendUvarint(buf, v)
		} else {
			buf = binary.AppendUvarint(buf, v-prev)
		}
		prev = v
	}

	// Hypergiant section: reconstruct the per-snapshot sets from the
	// spans, then emit added/removed deltas between consecutive present
	// snapshots.
	var ids []hg.ID
	for id, spans := range st.spans {
		if len(spans) > 0 {
			ids = append(ids, hg.ID(id))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, uint64(id))
		sets := make([][]astopo.ASN, len(st.snaps))
		for _, sp := range st.spans[id] {
			for i := sp.from; i <= sp.to; i++ {
				sets[i] = append(sets[i], sp.as)
			}
		}
		var prevSet []astopo.ASN
		for _, set := range sets {
			sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
			added, removed := diffSorted(prevSet, set)
			buf = appendASNList(buf, added)
			buf = appendASNList(buf, removed)
			prevSet = set
		}
	}

	// Prefix section.
	buf = binary.AppendUvarint(buf, uint64(len(st.prefixes)))
	prevAddr := uint64(0)
	for i := range st.prefixes {
		p := st.prefixes[i].prefix
		addr := uint64(p.Addr)
		if i == 0 {
			buf = binary.AppendUvarint(buf, addr)
		} else {
			buf = binary.AppendUvarint(buf, addr-prevAddr)
		}
		prevAddr = addr
		buf = binary.AppendUvarint(buf, uint64(p.Len))
		buf = appendASNList(buf, st.prefixes[i].asns)
	}

	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// WriteTo implements io.WriterTo.
func (st *Store) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(st.Encode())
	return int64(n), err
}

// Save writes the store to path.
func (st *Store) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("footstore: %w", err)
	}
	if _, err := st.WriteTo(f); err != nil {
		f.Close()
		return fmt.Errorf("footstore: writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("footstore: %w", err)
	}
	return nil
}

// ErrCorrupt is the sentinel every corruption error matches via
// errors.Is: bad magic, checksum mismatch, or a structural violation
// inside a file whose bytes cannot be a store. It deliberately excludes
// missing files (fs.ErrNotExist) and unsupported-but-intact newer
// versions, so reload validation and -tolerant callers can budget
// corruption separately from configuration mistakes.
var ErrCorrupt = errors.New("corrupt store")

// CorruptError is the concrete corruption error: where decoding gave up
// and why. Open fills Path; in-memory decodes leave it empty.
type CorruptError struct {
	Path   string // file path when known
	Offset int    // byte offset at which decoding failed
	Reason string
}

func (e *CorruptError) Error() string {
	if e.Path != "" {
		return fmt.Sprintf("footstore: %s: %s (offset %d)", e.Path, e.Reason, e.Offset)
	}
	return fmt.Sprintf("footstore: %s (offset %d)", e.Reason, e.Offset)
}

// Is makes errors.Is(err, ErrCorrupt) match any CorruptError.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// Read decodes a store from r.
func Read(r io.Reader) (*Store, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("footstore: %w", err)
	}
	return Decode(data)
}

// Open loads a store file written by Save.
func Open(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("footstore: %w", err)
	}
	st, err := Decode(data)
	if err != nil {
		var ce *CorruptError
		if errors.As(err, &ce) {
			ce.Path = path
			return nil, ce
		}
		// Other decode errors already carry the footstore: prefix.
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return st, nil
}

// Decode parses the binary format, rejecting corrupt or truncated
// input. It never panics on malformed bytes (see FuzzFootstoreDecode).
func Decode(data []byte) (*Store, error) {
	if len(data) < len(magic)+4 || !bytes.Equal(data[:len(magic)], magic) {
		return nil, &CorruptError{Offset: 0, Reason: "bad magic"}
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, &CorruptError{Offset: len(body), Reason: "checksum mismatch (corrupt or truncated)"}
	}
	d := &decoder{data: body, off: len(magic)}

	if v := d.uvarint(); d.err == nil && v != Version {
		return nil, fmt.Errorf("footstore: unsupported version %d", v)
	}

	// Snapshot section.
	snapCount := d.count(1)
	snaps := make([]timeline.Snapshot, 0, snapCount)
	prev := uint64(0)
	for i := 0; i < snapCount && d.err == nil; i++ {
		v := d.uvarint()
		if i > 0 {
			if v == 0 {
				d.fail("snapshots not increasing")
				break
			}
			v += prev
		}
		prev = v
		if v > uint64(timeline.Count()-1) {
			d.fail("snapshot index out of range")
			break
		}
		snaps = append(snaps, timeline.Snapshot(v))
	}

	// Hypergiant section: replay the deltas into per-snapshot sets.
	b := NewBuilder()
	footprints := make([]map[hg.ID][]astopo.ASN, snapCount)
	for i := range footprints {
		footprints[i] = make(map[hg.ID][]astopo.ASN)
	}
	hgCount := d.count(0)
	prevID := uint64(0)
	for h := 0; h < hgCount && d.err == nil; h++ {
		id := d.uvarint()
		if id <= prevID && h > 0 {
			d.fail("hypergiant ids not increasing")
			break
		}
		if id == 0 || id > uint64(hg.Count) {
			d.fail("hypergiant id out of range")
			break
		}
		prevID = id
		cur := make(map[astopo.ASN]struct{})
		for i := 0; i < snapCount && d.err == nil; i++ {
			added := d.asnList()
			removed := d.asnList()
			for _, as := range added {
				if _, dup := cur[as]; dup {
					d.fail("added AS already present")
				}
				cur[as] = struct{}{}
			}
			for _, as := range removed {
				if _, ok := cur[as]; !ok {
					d.fail("removed AS not present")
				}
				delete(cur, as)
			}
			if d.err != nil {
				break
			}
			set := make([]astopo.ASN, 0, len(cur))
			for as := range cur {
				set = append(set, as)
			}
			footprints[i][hg.ID(id)] = set
		}
	}

	// Prefix section.
	prefixCount := d.count(0)
	prevAddr := uint64(0)
	prevLen := uint64(0)
	for i := 0; i < prefixCount && d.err == nil; i++ {
		addr := d.uvarint()
		if i > 0 {
			addr += prevAddr
		}
		length := d.uvarint()
		if addr > math.MaxUint32 || length > 32 {
			d.fail("prefix out of range")
			break
		}
		if i > 0 && addr == prevAddr && length <= prevLen {
			d.fail("prefixes not ordered")
			break
		}
		prevAddr, prevLen = addr, length
		p := netmodel.Prefix{Addr: netmodel.IP(addr), Len: uint8(length)}
		if !p.IsCanonical() {
			d.fail("prefix has host bits set")
			break
		}
		asns := d.asnList()
		if d.err == nil && len(asns) == 0 {
			d.fail("prefix with no origins")
			break
		}
		b.AddPrefix(p, asns)
	}

	if d.err == nil && d.off != len(d.data) {
		d.fail("trailing bytes")
	}
	if d.err != nil {
		return nil, d.err
	}
	for i, s := range snaps {
		if err := b.AddSnapshot(s, footprints[i]); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// diffSorted computes next − prev and prev − next over sorted slices.
func diffSorted(prev, next []astopo.ASN) (added, removed []astopo.ASN) {
	i, j := 0, 0
	for i < len(prev) && j < len(next) {
		switch {
		case prev[i] == next[j]:
			i++
			j++
		case prev[i] < next[j]:
			removed = append(removed, prev[i])
			i++
		default:
			added = append(added, next[j])
			j++
		}
	}
	removed = append(removed, prev[i:]...)
	added = append(added, next[j:]...)
	return added, removed
}

// appendASNList emits a count followed by the sorted ASNs,
// delta-encoded (first absolute, the rest strictly increasing deltas).
func appendASNList(buf []byte, asns []astopo.ASN) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(asns)))
	prev := uint64(0)
	for i, as := range asns {
		v := uint64(as)
		if i == 0 {
			buf = binary.AppendUvarint(buf, v)
		} else {
			buf = binary.AppendUvarint(buf, v-prev)
		}
		prev = v
	}
	return buf
}

// decoder is a bounds-checked cursor over the body bytes; the first
// error sticks.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = &CorruptError{Offset: d.off, Reason: msg}
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("truncated or overlong varint")
		return 0
	}
	d.off += n
	return v
}

// count reads a list length and sanity-checks it against the remaining
// input (every element costs at least one byte), so corrupt counts
// cannot trigger huge allocations.
func (d *decoder) count(min int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v < uint64(min) || v > uint64(len(d.data)-d.off) {
		d.fail("implausible count")
		return 0
	}
	return int(v)
}

// asnList reads a delta-encoded, strictly increasing ASN list.
func (d *decoder) asnList() []astopo.ASN {
	n := d.count(0)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]astopo.ASN, 0, n)
	prev := uint64(0)
	for i := 0; i < n; i++ {
		v := d.uvarint()
		if d.err != nil {
			return nil
		}
		if i > 0 {
			if v == 0 {
				d.fail("ASN list not increasing")
				return nil
			}
			v += prev
		}
		if v > math.MaxUint32 {
			d.fail("ASN out of range")
			return nil
		}
		prev = v
		out = append(out, astopo.ASN(v))
	}
	return out
}
