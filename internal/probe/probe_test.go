package probe

import (
	"context"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"offnetscope/internal/hg"
	"offnetscope/internal/servefarm"
)

// liveFarm builds a miniature Internet on loopback: Google on-net and
// off-net boxes, an Akamai edge that also serves Apple, a Cloudflare
// customer origin, a self-signed impostor, an SNI-only server, and
// background hosts.
func liveFarm(t testing.TB) *servefarm.Farm {
	t.Helper()
	specs := []servefarm.Spec{
		{
			Name: "google-onnet", Organization: "Google LLC",
			DNSNames: []string{"*.google.com", "*.googlevideo.com"},
			Headers:  []hg.Header{{Name: "Server", Value: "gws"}},
		},
		{
			Name: "google-offnet", Organization: "Google LLC",
			DNSNames: []string{"*.googlevideo.com", "*.google.com"},
			Headers:  []hg.Header{{Name: "Server", Value: "gws"}},
		},
		{
			Name: "akamai-edge", Organization: "Akamai Technologies, Inc.",
			DNSNames: []string{"a248.e.akamai.net"},
			Headers:  []hg.Header{{Name: "Server", Value: "AkamaiGHost"}},
			ExtraDomains: map[string]servefarm.ExtraCert{
				"www.apple.com": {Organization: "Apple Inc.", DNSNames: []string{"*.apple.com"}},
			},
		},
		{
			Name: "impostor", Organization: "Google LLC",
			DNSNames:   []string{"*.google.com"},
			SelfSigned: true,
			Headers:    []hg.Header{{Name: "Server", Value: "nginx"}},
		},
		{
			Name: "sni-only", Organization: "Google LLC",
			DNSNames: []string{"*.google.com"},
			SNIOnly:  true,
			Headers:  []hg.Header{{Name: "Server", Value: "gws"}},
		},
		{
			Name: "background", Organization: "Acme Web Services",
			DNSNames: []string{"www.acme.example"},
			Headers:  []hg.Header{{Name: "Server", Value: "nginx"}},
		},
	}
	farm, err := servefarm.Start(specs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(farm.Close)
	return farm
}

func TestFetchCertsDefault(t *testing.T) {
	farm := liveFarm(t)
	s := New(Config{RootCAs: farm.CA.Pool(), Concurrency: 4})
	defer s.Close()

	results := s.FetchCerts(context.Background(), farm.TLSAddrs())
	byName := map[string]CertResult{}
	for i, r := range results {
		byName[farm.Servers[i].Spec.Name] = r
	}

	g := byName["google-onnet"]
	if g.Err != nil || g.LeafOrganization() != "Google LLC" || !g.Valid {
		t.Fatalf("google-onnet: org=%q valid=%v err=%v", g.LeafOrganization(), g.Valid, g.Err)
	}
	names := strings.Join(g.LeafDNSNames(), ",")
	if !strings.Contains(names, "googlevideo") {
		t.Errorf("google-onnet dNSNames = %q", names)
	}

	imp := byName["impostor"]
	if imp.Err != nil || len(imp.Chain) == 0 {
		t.Fatalf("impostor should present a chain: %v", imp.Err)
	}
	if imp.Valid {
		t.Error("self-signed impostor must not verify")
	}

	sni := byName["sni-only"]
	if sni.Err == nil {
		t.Error("SNI-only server must fail the default-certificate handshake")
	}
}

func TestFetchCertSNI(t *testing.T) {
	farm := liveFarm(t)
	s := New(Config{RootCAs: farm.CA.Pool()})
	defer s.Close()
	ctx := context.Background()

	var akamai, sniOnly *servefarm.Server
	for _, srv := range farm.Servers {
		switch srv.Spec.Name {
		case "akamai-edge":
			akamai = srv
		case "sni-only":
			sniOnly = srv
		}
	}

	// The Akamai edge serves Apple's certificate for Apple SNI — the §5
	// cross-validation surprise.
	r := s.FetchCertSNI(ctx, akamai.TLSAddr, "www.apple.com")
	if r.Err != nil || r.LeafOrganization() != "Apple Inc." {
		t.Fatalf("SNI fetch: org=%q err=%v", r.LeafOrganization(), r.Err)
	}
	if !r.Valid {
		t.Error("Apple chain should verify for its SNI")
	}
	// Default SNI still yields Akamai's own certificate.
	r = s.FetchCertSNI(ctx, akamai.TLSAddr, "a248.e.akamai.net")
	if r.Err != nil || !strings.Contains(r.LeafOrganization(), "Akamai") {
		t.Fatalf("default SNI: org=%q err=%v", r.LeafOrganization(), r.Err)
	}
	// The SNI-only server answers when asked properly.
	r = s.FetchCertSNI(ctx, sniOnly.TLSAddr, "www.google.com")
	if r.Err != nil || r.LeafOrganization() != "Google LLC" {
		t.Fatalf("sni-only with SNI: org=%q err=%v", r.LeafOrganization(), r.Err)
	}
}

func TestFetchHeaders(t *testing.T) {
	farm := liveFarm(t)
	s := New(Config{})
	defer s.Close()
	ctx := context.Background()

	google := hg.Get(hg.Google)
	var onnet *servefarm.Server
	for _, srv := range farm.Servers {
		if srv.Spec.Name == "google-onnet" {
			onnet = srv
		}
	}
	res := s.FetchHeaders(ctx, []string{onnet.TLSAddr}, "www.google.com", true)
	if res[0].Err != nil || res[0].Status != 200 {
		t.Fatalf("https headers: %+v", res[0])
	}
	if !google.MatchesHeaders(res[0].Headers) {
		t.Errorf("gws header not detected in %v", res[0].Headers)
	}
	// Plain HTTP too.
	res = s.FetchHeaders(ctx, []string{onnet.HTTPAddr}, "", false)
	if res[0].Err != nil || !google.MatchesHeaders(res[0].Headers) {
		t.Errorf("http headers: %+v", res[0])
	}
}

func TestLiveMethodologyEndToEnd(t *testing.T) {
	// The full §4 loop over real sockets: learn the fingerprint from the
	// on-net box, find candidates elsewhere, drop the invalid impostor,
	// confirm with headers.
	farm := liveFarm(t)
	s := New(Config{RootCAs: farm.CA.Pool(), Concurrency: 8})
	defer s.Close()
	ctx := context.Background()

	results := s.FetchCerts(ctx, farm.TLSAddrs())

	// Step 1+2: learn dNSNames from the valid on-net certificate.
	onNetNames := map[string]struct{}{}
	for i, r := range results {
		if farm.Servers[i].Spec.Name == "google-onnet" && r.Valid {
			for _, d := range r.LeafDNSNames() {
				onNetNames[d] = struct{}{}
			}
		}
	}
	if len(onNetNames) == 0 {
		t.Fatal("no on-net fingerprint learned")
	}

	// Step 3: candidates (valid, org match, names subset, not on-net).
	var confirmed []string
	for i, r := range results {
		srv := farm.Servers[i]
		if srv.Spec.Name == "google-onnet" {
			continue
		}
		if !r.Valid || !strings.Contains(strings.ToLower(r.LeafOrganization()), "google") {
			continue
		}
		subset := true
		for _, d := range r.LeafDNSNames() {
			if _, ok := onNetNames[d]; !ok {
				subset = false
			}
		}
		if !subset {
			continue
		}
		// Step 5: header confirmation.
		hres := s.FetchHeaders(ctx, []string{srv.TLSAddr}, "www.google.com", true)
		if hres[0].Err == nil && hg.Get(hg.Google).MatchesHeaders(hres[0].Headers) {
			confirmed = append(confirmed, srv.Spec.Name)
		}
	}
	if len(confirmed) != 1 || confirmed[0] != "google-offnet" {
		t.Fatalf("confirmed = %v, want exactly google-offnet", confirmed)
	}
}

func TestScannerTimeoutAndCancel(t *testing.T) {
	s := New(Config{Timeout: 300 * time.Millisecond})
	defer s.Close()
	// Unroutable TEST-NET address: must time out, not hang.
	start := time.Now()
	res := s.FetchCerts(context.Background(), []string{"192.0.2.1:443"})
	if res[0].Err == nil {
		t.Fatal("expected a dial error")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatalf("timeout not honoured: %v", time.Since(start))
	}
	// Pre-cancelled context returns immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res = s.FetchCerts(ctx, []string{"192.0.2.1:443"})
	if res[0].Err == nil && res[0].Chain == nil {
		t.Log("cancelled scan returned zero result as expected")
	}
}

func TestRateLimiter(t *testing.T) {
	farm := liveFarm(t)
	s := New(Config{RatePerSecond: 10, Concurrency: 8})
	defer s.Close()
	addrs := make([]string, 0, 20)
	for i := 0; i < 20; i++ {
		addrs = append(addrs, farm.Servers[0].TLSAddr)
	}
	start := time.Now()
	s.FetchCerts(context.Background(), addrs)
	elapsed := time.Since(start)
	// 20 probes at 10/s with a 10-token burst needs ≥ ~0.9s.
	if elapsed < 700*time.Millisecond {
		t.Errorf("rate limiter too permissive: 20 probes in %v", elapsed)
	}
}

func TestRetriesRecoverFlakyServer(t *testing.T) {
	// A listener that rejects the first TLS attempt (closing the
	// connection) and serves properly afterwards: one retry must
	// recover it.
	farm := liveFarm(t)
	target := farm.Servers[0]

	flaky := newFlakyProxy(t, target.TLSAddr, 1)
	noRetry := New(Config{Timeout: time.Second})
	defer noRetry.Close()
	if res := noRetry.FetchCerts(context.Background(), []string{flaky.addr()}); res[0].Err == nil {
		t.Fatal("first attempt should fail through the flaky proxy")
	}

	flaky2 := newFlakyProxy(t, target.TLSAddr, 1)
	withRetry := New(Config{Timeout: time.Second, Retries: 2, RetryBackoff: 10 * time.Millisecond, RootCAs: farm.CA.Pool()})
	defer withRetry.Close()
	res := withRetry.FetchCerts(context.Background(), []string{flaky2.addr()})
	if res[0].Err != nil {
		t.Fatalf("retry did not recover: %v", res[0].Err)
	}
	if res[0].LeafOrganization() == "" {
		t.Fatal("no certificate fetched after retry")
	}
}

// flakyProxy drops the first n connections, then pipes transparently.
type flakyProxy struct {
	ln    net.Listener
	drops int32
}

func newFlakyProxy(t *testing.T, backend string, drops int32) *flakyProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{ln: ln, drops: drops}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if atomic.AddInt32(&p.drops, -1) >= 0 {
				conn.Close()
				continue
			}
			go func(c net.Conn) {
				defer c.Close()
				up, err := net.Dial("tcp", backend)
				if err != nil {
					return
				}
				defer up.Close()
				done := make(chan struct{}, 2)
				go func() { io.Copy(up, c); done <- struct{}{} }() //nolint:errcheck
				go func() { io.Copy(c, up); done <- struct{}{} }() //nolint:errcheck
				<-done
			}(conn)
		}
	}()
	return p
}

func (p *flakyProxy) addr() string { return p.ln.Addr().String() }
