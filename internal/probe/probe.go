// Package probe is the live-network scanner: a concurrent TLS
// certificate fetcher (the certigo role) and an HTTP(S) banner grabber
// with explicit SNI/Host (the ZGrab2 role), built on crypto/tls and
// net/http with a worker pool, a token-bucket rate limiter, per-dial
// timeouts, and context cancellation — the ethics-conscious scanning
// practices §5 describes.
package probe

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"net"
	"net/http"
	"sync"
	"time"

	"offnetscope/internal/hg"
	"offnetscope/internal/obs"
	"offnetscope/internal/resilience"
)

// Config tunes the scanner.
type Config struct {
	// Concurrency is the worker-pool size. Zero means 16.
	Concurrency int
	// Timeout bounds each dial+handshake. Zero means 5s.
	Timeout time.Duration
	// RatePerSecond caps probe launches; zero means unlimited. Slow
	// scans trigger less rate limiting on the remote side — the reason
	// the authors' four-day scan saw more hosts than Rapid7's.
	RatePerSecond int
	// RootCAs verifies fetched chains; nil skips verification status
	// (the chain is still captured).
	RootCAs *x509.CertPool
	// Retries re-attempts failed dials/handshakes with capped
	// exponential backoff and full jitter (internal/resilience);
	// transient loss is the main reason fast scans under-count (§5).
	Retries int
	// RetryBackoff is the base backoff delay; successive attempts
	// double it up to 10x, each sleep jittered uniformly below the
	// ceiling. Zero means 100ms.
	RetryBackoff time.Duration
	// BreakerFailures, when > 0, arms a per-target circuit breaker:
	// after that many consecutive exhausted probe attempts against one
	// address, further probes to it fail fast with
	// resilience.ErrBreakerOpen for BreakerOpenFor instead of burning a
	// full dial-timeout × retry budget per touch on a dead host — on a
	// four-day scan, dead hosts are the common case, not the exception.
	// Zero disables breakers.
	BreakerFailures int
	// BreakerOpenFor is the fail-fast window per tripped target. Zero
	// means 30s.
	BreakerOpenFor time.Duration
	// BreakerNow is the breaker clock hook, for deterministic tests.
	// Nil means time.Now.
	BreakerNow func() time.Time
	// Metrics receives probe accounting (probe.certs, probe.headers,
	// probe.errors, probe.breaker_fastfail). Nil discards.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = 16
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.BreakerOpenFor <= 0 {
		c.BreakerOpenFor = 30 * time.Second
	}
	return c
}

// Scanner runs concurrent probes.
type Scanner struct {
	cfg     Config
	limiter *rateLimiter

	// breakers holds one circuit breaker per probed address, created
	// lazily on first touch (nil map when disabled). One breaker per
	// target, not one global: a dead host must not stop the scan of a
	// healthy one.
	bmu      sync.Mutex
	breakers map[string]*resilience.Breaker
}

// New builds a scanner.
func New(cfg Config) *Scanner {
	cfg = cfg.withDefaults()
	s := &Scanner{cfg: cfg}
	if cfg.RatePerSecond > 0 {
		s.limiter = newRateLimiter(cfg.RatePerSecond)
	}
	if cfg.BreakerFailures > 0 {
		s.breakers = make(map[string]*resilience.Breaker)
	}
	return s
}

// breakerFor returns the target's breaker, creating it on first use,
// or nil when breakers are disabled.
func (s *Scanner) breakerFor(addr string) *resilience.Breaker {
	if s.breakers == nil {
		return nil
	}
	s.bmu.Lock()
	defer s.bmu.Unlock()
	b, ok := s.breakers[addr]
	if !ok {
		b = resilience.NewBreaker(resilience.BreakerPolicy{
			ConsecutiveFailures: s.cfg.BreakerFailures,
			OpenFor:             s.cfg.BreakerOpenFor,
			Name:                "probe",
			Now:                 s.cfg.BreakerNow,
		})
		s.breakers[addr] = b
	}
	return b
}

// withBreaker runs op under the target's breaker (or directly when
// disabled). One op is one fully-retried probe: the breaker counts
// exhausted retry budgets, not individual attempts, so BreakerFailures
// means "this many probes in a row found the target dead".
func (s *Scanner) withBreaker(addr string, op func() error) error {
	b := s.breakerFor(addr)
	if b == nil {
		return op()
	}
	return b.Do(op)
}

// CertResult is one fetched default certificate.
type CertResult struct {
	Addr string
	// Chain is the presented chain, leaf first. Nil when the handshake
	// failed (including SNI-only servers probed without a name).
	Chain []*x509.Certificate
	// Valid reports whether the chain verifies against Config.RootCAs.
	Valid bool
	Err   error
}

// LeafOrganization returns the leaf's first Organization entry.
func (r CertResult) LeafOrganization() string {
	if len(r.Chain) == 0 || len(r.Chain[0].Subject.Organization) == 0 {
		return ""
	}
	return r.Chain[0].Subject.Organization[0]
}

// LeafDNSNames returns the leaf's dNSNames.
func (r CertResult) LeafDNSNames() []string {
	if len(r.Chain) == 0 {
		return nil
	}
	return r.Chain[0].DNSNames
}

// FetchCerts grabs the default certificate (no SNI) from every address,
// certigo-style. Results are returned in input order.
func (s *Scanner) FetchCerts(ctx context.Context, addrs []string) []CertResult {
	results := make([]CertResult, len(addrs))
	s.fanOut(ctx, len(addrs), func(i int) {
		results[i] = s.fetchCertRetry(ctx, addrs[i], "")
	})
	return results
}

// fetchCertRetry wraps fetchCert with the configured retry policy:
// every handshake failure is presumed transient (resilience's default
// classification) because under-counting hosts costs more than a
// wasted retry.
func (s *Scanner) fetchCertRetry(ctx context.Context, addr, serverName string) CertResult {
	res := CertResult{Addr: addr}
	err := s.withBreaker(addr, func() error {
		return resilience.Retry(ctx, resilience.Policy{
			MaxAttempts: s.cfg.Retries + 1,
			BaseDelay:   s.cfg.RetryBackoff,
			MaxDelay:    10 * s.cfg.RetryBackoff,
		}, func(ctx context.Context) error {
			res = s.fetchCert(ctx, addr, serverName)
			return res.Err
		})
	})
	if err != nil && res.Err == nil {
		// The breaker rejected without probing, or the context died
		// before the first attempt ran.
		res.Err = err
	}
	s.cfg.Metrics.Counter("probe.certs").Inc()
	if res.Err != nil {
		s.cfg.Metrics.Counter("probe.errors").Inc()
		if errors.Is(res.Err, resilience.ErrBreakerOpen) {
			s.cfg.Metrics.Counter("probe.breaker_fastfail").Inc()
		}
	}
	return res
}

// FetchCertSNI grabs the certificate presented for one explicit SNI.
func (s *Scanner) FetchCertSNI(ctx context.Context, addr, serverName string) CertResult {
	if err := s.wait(ctx); err != nil {
		return CertResult{Addr: addr, Err: err}
	}
	return s.fetchCertRetry(ctx, addr, serverName)
}

func (s *Scanner) fetchCert(ctx context.Context, addr, serverName string) CertResult {
	res := CertResult{Addr: addr}
	dialer := &net.Dialer{Timeout: s.cfg.Timeout}
	dctx, cancel := context.WithTimeout(ctx, s.cfg.Timeout)
	defer cancel()
	rawConn, err := dialer.DialContext(dctx, "tcp", addr)
	if err != nil {
		res.Err = err
		return res
	}
	defer rawConn.Close()
	if deadline, ok := dctx.Deadline(); ok {
		rawConn.SetDeadline(deadline) //nolint:errcheck — best effort
	}
	conn := tls.Client(rawConn, &tls.Config{
		ServerName:         serverName,
		InsecureSkipVerify: true, // capture the chain; validity judged below
	})
	if err := conn.HandshakeContext(dctx); err != nil {
		res.Err = err
		return res
	}
	res.Chain = conn.ConnectionState().PeerCertificates
	if s.cfg.RootCAs != nil && len(res.Chain) > 0 {
		inter := x509.NewCertPool()
		for _, c := range res.Chain[1:] {
			inter.AddCert(c)
		}
		opts := x509.VerifyOptions{Roots: s.cfg.RootCAs, Intermediates: inter}
		if serverName != "" {
			opts.DNSName = serverName
		}
		_, verr := res.Chain[0].Verify(opts)
		res.Valid = verr == nil
	}
	return res
}

// HeaderResult is one banner grab.
type HeaderResult struct {
	Addr    string
	Headers []hg.Header
	Status  int
	Err     error
}

// FetchHeaders performs GET / against every address (https when tlsMode,
// else plain http), recording response headers ZGrab2-style. host sets
// both SNI and the Host header when non-empty.
func (s *Scanner) FetchHeaders(ctx context.Context, addrs []string, host string, tlsMode bool) []HeaderResult {
	results := make([]HeaderResult, len(addrs))
	s.fanOut(ctx, len(addrs), func(i int) {
		results[i] = s.fetchHeadersBreaker(ctx, addrs[i], host, tlsMode)
	})
	return results
}

// fetchHeadersBreaker runs one banner grab under the target's breaker.
func (s *Scanner) fetchHeadersBreaker(ctx context.Context, addr, host string, tlsMode bool) HeaderResult {
	res := HeaderResult{Addr: addr}
	err := s.withBreaker(addr, func() error {
		res = s.fetchHeaders(ctx, addr, host, tlsMode)
		return res.Err
	})
	if err != nil && res.Err == nil {
		res.Err = err // breaker rejected without probing
	}
	s.cfg.Metrics.Counter("probe.headers").Inc()
	if res.Err != nil {
		s.cfg.Metrics.Counter("probe.errors").Inc()
		if errors.Is(res.Err, resilience.ErrBreakerOpen) {
			s.cfg.Metrics.Counter("probe.breaker_fastfail").Inc()
		}
	}
	return res
}

func (s *Scanner) fetchHeaders(ctx context.Context, addr, host string, tlsMode bool) HeaderResult {
	res := HeaderResult{Addr: addr}
	transport := &http.Transport{
		DialContext:       (&net.Dialer{Timeout: s.cfg.Timeout}).DialContext,
		DisableKeepAlives: true,
	}
	scheme := "http"
	if tlsMode {
		scheme = "https"
		transport.TLSClientConfig = &tls.Config{ServerName: host, InsecureSkipVerify: true}
	}
	client := &http.Client{Transport: transport, Timeout: s.cfg.Timeout}
	defer transport.CloseIdleConnections()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, scheme+"://"+addr+"/", nil)
	if err != nil {
		res.Err = err
		return res
	}
	if host != "" {
		req.Host = host
	}
	resp, err := client.Do(req)
	if err != nil {
		res.Err = err
		return res
	}
	defer resp.Body.Close()
	res.Status = resp.StatusCode
	for name, values := range resp.Header {
		for _, v := range values {
			res.Headers = append(res.Headers, hg.Header{Name: name, Value: v})
		}
	}
	return res
}

// fanOut runs n jobs across the worker pool, respecting the rate limiter
// and context cancellation.
func (s *Scanner) fanOut(ctx context.Context, n int, job func(int)) {
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := s.cfg.Concurrency
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := s.wait(ctx); err != nil {
					return
				}
				job(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
}

// wait blocks until the rate limiter grants a token or ctx ends.
func (s *Scanner) wait(ctx context.Context) error {
	if s.limiter == nil {
		return ctx.Err()
	}
	return s.limiter.wait(ctx)
}

// rateLimiter is a token bucket refilled on a ticker; stdlib only.
type rateLimiter struct {
	tokens chan struct{}
	stop   chan struct{}
	once   sync.Once
}

func newRateLimiter(perSecond int) *rateLimiter {
	rl := &rateLimiter{
		tokens: make(chan struct{}, perSecond),
		stop:   make(chan struct{}),
	}
	// Pre-fill one burst.
	for i := 0; i < perSecond; i++ {
		rl.tokens <- struct{}{}
	}
	interval := time.Second / time.Duration(perSecond)
	if interval <= 0 {
		interval = time.Millisecond
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				select {
				case rl.tokens <- struct{}{}:
				default:
				}
			case <-rl.stop:
				return
			}
		}
	}()
	return rl
}

func (rl *rateLimiter) wait(ctx context.Context) error {
	select {
	case <-rl.tokens:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close releases the limiter's refill goroutine.
func (s *Scanner) Close() {
	if s.limiter != nil {
		s.limiter.once.Do(func() { close(s.limiter.stop) })
	}
}
