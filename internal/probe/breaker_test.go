package probe

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"offnetscope/internal/resilience"
)

// deadAddr returns a loopback address that refuses connections: bind a
// port, learn it, close it.
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestProbeBreakerFailsFastOnDeadTarget: after BreakerFailures
// exhausted probes against one address, further probes to it return
// ErrBreakerOpen without dialing, and the breaker re-probes after its
// cooldown (driven by a fake clock — no sleeps).
func TestProbeBreakerFailsFastOnDeadTarget(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	s := New(Config{
		Timeout:         200 * time.Millisecond,
		BreakerFailures: 2,
		BreakerOpenFor:  30 * time.Second,
		BreakerNow:      clock,
	})
	defer s.Close()
	addr := deadAddr(t)
	ctx := context.Background()

	// Two failed probes trip the target's breaker.
	for i := 0; i < 2; i++ {
		res := s.FetchCerts(ctx, []string{addr})[0]
		if res.Err == nil {
			t.Fatalf("probe %d of dead target succeeded", i)
		}
		if errors.Is(res.Err, resilience.ErrBreakerOpen) {
			t.Fatalf("probe %d rejected before the trip threshold", i)
		}
	}

	// Tripped: fail fast, no dial.
	res := s.FetchCerts(ctx, []string{addr})[0]
	if !errors.Is(res.Err, resilience.ErrBreakerOpen) {
		t.Fatalf("post-trip probe err = %v, want ErrBreakerOpen", res.Err)
	}

	// The header path shares the same per-target breaker.
	hres := s.FetchHeaders(ctx, []string{addr}, "", false)[0]
	if !errors.Is(hres.Err, resilience.ErrBreakerOpen) {
		t.Fatalf("header probe err = %v, want ErrBreakerOpen", hres.Err)
	}

	// Cooldown elapsed: the breaker admits a real probe again (which
	// still fails with a dial error — but it was attempted).
	advance(31 * time.Second)
	res = s.FetchCerts(ctx, []string{addr})[0]
	if res.Err == nil {
		t.Fatal("dead target probe succeeded after cooldown")
	}
	if errors.Is(res.Err, resilience.ErrBreakerOpen) {
		t.Fatal("breaker still rejecting after cooldown")
	}
}

// TestProbeBreakerIsPerTarget: one dead host must not poison probes to
// a healthy one — breakers are keyed by address.
func TestProbeBreakerIsPerTarget(t *testing.T) {
	farm := liveFarm(t)
	s := New(Config{
		Timeout:         2 * time.Second,
		BreakerFailures: 1,
		BreakerOpenFor:  time.Minute,
	})
	defer s.Close()
	ctx := context.Background()
	dead := deadAddr(t)
	alive := farm.Servers[0].TLSAddr

	// Trip the dead target.
	s.FetchCerts(ctx, []string{dead})
	res := s.FetchCerts(ctx, []string{dead, alive})
	if !errors.Is(res[0].Err, resilience.ErrBreakerOpen) {
		t.Fatalf("dead target err = %v, want ErrBreakerOpen", res[0].Err)
	}
	if res[1].Err != nil {
		t.Fatalf("healthy target err = %v, want nil (breakers must be per-target)", res[1].Err)
	}
	if len(res[1].Chain) == 0 {
		t.Fatal("healthy target returned no chain")
	}
}

// TestProbeBreakerDisabledByDefault: the zero config never rejects.
func TestProbeBreakerDisabledByDefault(t *testing.T) {
	s := New(Config{Timeout: 100 * time.Millisecond})
	defer s.Close()
	addr := deadAddr(t)
	for i := 0; i < 4; i++ {
		res := s.FetchCerts(context.Background(), []string{addr})[0]
		if errors.Is(res.Err, resilience.ErrBreakerOpen) {
			t.Fatalf("probe %d rejected with breakers disabled", i)
		}
	}
}
