package waves

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"

	"offnetscope/internal/runstate"
)

// Mid-wave checkpoints ride on runstate's crash-safe blob store: one
// JSON blob per wave, keyed by the snapshot label, rewritten after
// every probed batch. The blob pins the snapshot slot and a hash of
// the target list, so a checkpoint from a different wave — or from a
// run against different targets — is ignored rather than mixed in.
// Stale blobs (a crash after commit but before the clear) are harmless
// for the same reason: the committed wave advanced the slot, so the
// old blob's snapshot no longer matches.

// ckFile is the blob payload.
type ckFile struct {
	Snapshot    int       `json:"snapshot"`
	TargetsHash uint64    `json:"targets_hash"`
	Outcomes    []outcome `json:"outcomes"`
}

func (r *Runner) ckName() string { return "wave-" + r.next.Label() }

// targetsHash fingerprints the target list (addresses, ASes, order).
func (r *Runner) targetsHash() uint64 {
	h := fnv.New64a()
	for _, t := range r.targets {
		fmt.Fprintf(h, "%s\x00%d\n", t.Addr, uint32(t.AS))
	}
	return h.Sum64()
}

// loadCheckpoint restores the current wave's outcomes, or an empty map
// when there is no usable checkpoint.
func (r *Runner) loadCheckpoint() (map[string]outcome, int) {
	out := make(map[string]outcome)
	if r.cfg.CheckpointDir == "" {
		return out, 0
	}
	raw := runstate.LoadBlob(r.cfg.CheckpointDir, r.ckName())
	if raw == nil {
		return out, 0
	}
	var ck ckFile
	if err := json.Unmarshal(raw, &ck); err != nil {
		return out, 0
	}
	if ck.Snapshot != int(r.next) || ck.TargetsHash != r.targetsHash() {
		return out, 0
	}
	for _, o := range ck.Outcomes {
		out[o.Addr] = o
	}
	return out, len(out)
}

// saveCheckpoint persists the wave's progress; outcomes are sorted by
// address so the blob bytes are deterministic for a given state.
func (r *Runner) saveCheckpoint(outcomes map[string]outcome) error {
	if r.cfg.CheckpointDir == "" {
		return nil
	}
	ck := ckFile{Snapshot: int(r.next), TargetsHash: r.targetsHash()}
	for _, o := range outcomes {
		ck.Outcomes = append(ck.Outcomes, o)
	}
	sort.Slice(ck.Outcomes, func(i, j int) bool { return ck.Outcomes[i].Addr < ck.Outcomes[j].Addr })
	raw, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("waves: %w", err)
	}
	if err := runstate.SaveBlob(r.cfg.CheckpointDir, r.ckName(), raw); err != nil {
		return fmt.Errorf("waves: checkpointing wave %s: %w", r.next.Label(), err)
	}
	r.cfg.Metrics.Counter("waves.checkpoints").Inc()
	return nil
}

// clearCheckpoint drops the wave's blob; best-effort — a stale blob is
// ignored on the next load anyway.
func (r *Runner) clearCheckpoint() {
	if r.cfg.CheckpointDir == "" {
		return
	}
	_ = runstate.RemoveBlob(r.cfg.CheckpointDir, r.ckName())
}
