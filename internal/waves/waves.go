// Package waves runs supervised scan waves for the continuous-
// measurement daemon (cmd/offnetwatchd): each wave probes a fixed
// target list with the live scanner (internal/probe), applies the §4
// inference steps per target, folds the confirmed off-nets into the
// longitudinal builder, and commits the result as one new generation
// in the append-only generation log (footstore.GenLog).
//
// Waves are crash-only and degrade instead of aborting:
//
//   - a per-wave deadline bounds the whole wave; a wave that ran out of
//     time (or concluded fewer targets than MinCoverage) still commits,
//     with a "reduced-coverage" verdict, mirroring offnetmap's
//     degraded-mode semantics;
//   - per-target retry/backoff and circuit breakers come from the
//     scanner's own resilience kit (probe.Config);
//   - progress is checkpointed batch-by-batch through runstate blobs,
//     so a SIGKILL mid-wave resumes the wave where it stopped instead
//     of re-probing concluded targets;
//   - only a wave that concluded nothing at all fails (ErrWaveFailed) —
//     the daemon logs it and tries again next interval.
//
// The timeline grid is finite (31 quarterly snapshots); each committed
// wave occupies the next free snapshot, and ErrGridExhausted tells the
// daemon the study window is full.
package waves

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"offnetscope/internal/astopo"
	"offnetscope/internal/footstore"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/obs"
	"offnetscope/internal/probe"
	"offnetscope/internal/timeline"
)

// Target is one scan destination with its (known) origin AS — the live
// analogue of a cert-corpus row already resolved through the IP-to-AS
// table.
type Target struct {
	Addr string // host:port to probe
	AS   astopo.ASN
}

// PrefixRow seeds the store's IP-to-AS table when the log starts empty.
type PrefixRow struct {
	Prefix  netmodel.Prefix
	Origins []astopo.ASN
}

// Config tunes the wave runner.
type Config struct {
	// Probe configures the scanner (concurrency, rate, retries,
	// breakers). Its Metrics field is overridden with Config.Metrics.
	Probe probe.Config
	// Hypergiants to infer per wave. Empty means hg.Top4().
	Hypergiants []hg.ID
	// WaveTimeout bounds one whole wave. Zero means 2m.
	WaveTimeout time.Duration
	// MinCoverage is the concluded-target fraction below which a wave
	// commits with a reduced-coverage verdict. Zero means 0.5.
	MinCoverage float64
	// CheckpointDir holds mid-wave progress blobs (runstate). Empty
	// disables checkpointing; a killed wave then restarts from scratch.
	CheckpointDir string
	// BatchSize is how many targets are probed between checkpoints.
	// Zero means 16.
	BatchSize int
	// Prefixes is installed into the builder when the log is empty.
	Prefixes []PrefixRow
	// Metrics receives waves.* accounting. Nil discards.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if len(c.Hypergiants) == 0 {
		c.Hypergiants = hg.Top4()
	}
	if c.WaveTimeout <= 0 {
		c.WaveTimeout = 2 * time.Minute
	}
	if c.MinCoverage <= 0 {
		c.MinCoverage = 0.5
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	c.Probe.Metrics = c.Metrics
	return c
}

// Wave verdicts.
const (
	VerdictFull    = "full"
	VerdictReduced = "reduced-coverage"
)

// ErrGridExhausted means every snapshot slot of the timeline grid holds
// a committed generation; the study window is complete.
var ErrGridExhausted = errors.New("waves: timeline grid exhausted")

// ErrWaveFailed means a wave concluded zero targets — nothing to
// commit. The wave's checkpoint is cleared so the retry re-probes
// everything.
var ErrWaveFailed = errors.New("waves: wave concluded no targets")

// Result summarises one committed wave.
type Result struct {
	Generation uint64            // generation the wave committed as
	Snapshot   timeline.Snapshot // grid slot the wave filled
	Verdict    string            // VerdictFull or VerdictReduced
	Targets    int               // targets in the wave
	Concluded  int               // targets that yielded a verdict
	Failed     int               // targets whose probes never succeeded
	Confirmed  int               // off-net confirmations across hypergiants
	Resumed    int               // outcomes restored from the checkpoint
	TimedOut   bool              // the wave deadline expired
	Elapsed    time.Duration
}

// Runner drives scan waves against one target list, committing each
// into the generation log. Not safe for concurrent use.
type Runner struct {
	log     *footstore.GenLog
	targets []Target
	cfg     Config
	scanner *probe.Scanner

	builder *footstore.Builder
	next    timeline.Snapshot
	// dirty marks the builder as possibly diverged from the log (an
	// append failed after AddSnapshot); the next wave rebuilds it from
	// the newest committed generation before trusting it.
	dirty bool
}

// NewRunner builds a runner. When the log already holds generations,
// the builder — and the next free snapshot slot — are reconstructed
// from the newest committed one, so a restarted daemon continues the
// timeline instead of restarting it.
func NewRunner(log *footstore.GenLog, targets []Target, cfg Config) (*Runner, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("waves: no targets")
	}
	cfg = cfg.withDefaults()
	r := &Runner{
		log:     log,
		targets: append([]Target(nil), targets...),
		cfg:     cfg,
		scanner: probe.New(cfg.Probe),
	}
	if err := r.rebuild(); err != nil {
		r.scanner.Close()
		return nil, err
	}
	return r, nil
}

// rebuild derives the builder and next slot from the log's committed
// state — used at startup and after a failed append.
func (r *Runner) rebuild() error {
	if r.log.Len() == 0 {
		b := footstore.NewBuilder()
		for _, p := range r.cfg.Prefixes {
			b.AddPrefix(p.Prefix, p.Origins)
		}
		r.builder, r.next, r.dirty = b, 0, false
		return nil
	}
	st, err := r.log.Load(r.log.Last())
	if err != nil {
		return fmt.Errorf("waves: rebuilding from generation %d: %w", r.log.Last(), err)
	}
	r.builder = footstore.NewBuilderFrom(st)
	r.next = st.Latest() + 1
	r.dirty = false
	return nil
}

// NextSnapshot returns the grid slot the next wave will fill.
func (r *Runner) NextSnapshot() timeline.Snapshot { return r.next }

// Close releases the scanner.
func (r *Runner) Close() { r.scanner.Close() }

// outcome is one target's verdict within a wave.
type outcome struct {
	Addr      string `json:"addr"`
	AS        uint32 `json:"as"`
	Concluded bool   `json:"concluded"`
	HG        int    `json:"hg,omitempty"` // 0 = concluded, no hypergiant
}

// RunWave runs one supervised wave: probe, infer, commit. A context
// cancellation from the caller (daemon shutdown) returns ctx.Err() with
// the checkpoint retained; the wave deadline expiring merely degrades
// the verdict.
func (r *Runner) RunWave(ctx context.Context) (*Result, error) {
	if !r.next.Valid() {
		return nil, ErrGridExhausted
	}
	if r.dirty {
		if err := r.rebuild(); err != nil {
			return nil, err
		}
		if !r.next.Valid() {
			return nil, ErrGridExhausted
		}
	}
	start := time.Now()
	r.cfg.Metrics.Counter("waves.started").Inc()

	wctx, cancel := context.WithTimeout(ctx, r.cfg.WaveTimeout)
	defer cancel()

	outcomes, resumed := r.loadCheckpoint()
	r.cfg.Metrics.Counter("waves.resumed_targets").Add(int64(resumed))

	// Probe in deterministic batches, checkpointing after each, so a
	// kill loses at most one batch of work.
	var pending []Target
	for _, t := range r.targets {
		if _, done := outcomes[t.Addr]; !done {
			pending = append(pending, t)
		}
	}
	for len(pending) > 0 && wctx.Err() == nil {
		n := r.cfg.BatchSize
		if n > len(pending) {
			n = len(pending)
		}
		batch := pending[:n]
		pending = pending[n:]
		batchOut := r.probeBatch(wctx, batch)
		if wctx.Err() != nil && batchOut == nil {
			// The deadline or a shutdown landed mid-batch; its results
			// are partial and untrustworthy. Drop them.
			break
		}
		for _, o := range batchOut {
			outcomes[o.Addr] = o
		}
		if err := r.saveCheckpoint(outcomes); err != nil {
			return nil, err
		}
	}

	if err := ctx.Err(); err != nil {
		// Daemon shutdown, not a wave timeout: leave the checkpoint for
		// the next incarnation and surface the cancellation.
		return nil, err
	}

	res := &Result{
		Snapshot: r.next,
		Targets:  len(r.targets),
		Resumed:  resumed,
		TimedOut: wctx.Err() != nil,
	}
	footprints := make(map[hg.ID][]astopo.ASN)
	for _, t := range r.targets {
		o, ok := outcomes[t.Addr]
		if !ok {
			continue // never reached before the deadline
		}
		if !o.Concluded {
			res.Failed++
			continue
		}
		res.Concluded++
		if o.HG != 0 {
			footprints[hg.ID(o.HG)] = append(footprints[hg.ID(o.HG)], astopo.ASN(o.AS))
			res.Confirmed++
		}
	}
	r.cfg.Metrics.Counter("waves.targets_probed").Add(int64(res.Concluded + res.Failed))
	r.cfg.Metrics.Counter("waves.targets_failed").Add(int64(res.Failed))
	r.cfg.Metrics.Counter("waves.targets_confirmed").Add(int64(res.Confirmed))

	if res.Concluded == 0 {
		// Nothing trustworthy at all — do not commit an empty wave.
		r.clearCheckpoint()
		r.cfg.Metrics.Counter("waves.failed").Inc()
		return nil, ErrWaveFailed
	}

	coverage := float64(res.Concluded) / float64(res.Targets)
	res.Verdict = VerdictFull
	if res.TimedOut || coverage < r.cfg.MinCoverage {
		res.Verdict = VerdictReduced
	}

	if err := r.builder.AddSnapshot(r.next, footprints); err != nil {
		r.dirty = true
		return nil, fmt.Errorf("waves: %w", err)
	}
	st, err := r.builder.Build()
	if err != nil {
		r.dirty = true
		return nil, fmt.Errorf("waves: %w", err)
	}
	gen, err := r.log.Append(st)
	if err != nil {
		r.dirty = true
		return nil, fmt.Errorf("waves: committing wave %s: %w", r.next.Label(), err)
	}
	res.Generation = gen
	r.clearCheckpoint()
	r.next++

	res.Elapsed = time.Since(start)
	r.cfg.Metrics.Counter("waves.committed").Inc()
	if res.Verdict == VerdictReduced {
		r.cfg.Metrics.Counter("waves.reduced").Inc()
	}
	r.cfg.Metrics.Histogram("waves.duration_ns").Since(start)
	r.cfg.Metrics.Gauge("waves.generation").Set(int64(gen))
	return res, nil
}

// probeBatch probes one batch and applies the §4 steps per target:
// default-cert sweep (§4.1–§4.3 roles), then header confirmation
// (§4.5) for hypergiant-org candidates. Returns nil when the context
// died mid-batch and the results cannot be trusted.
func (r *Runner) probeBatch(ctx context.Context, batch []Target) []outcome {
	addrs := make([]string, len(batch))
	for i, t := range batch {
		addrs[i] = t.Addr
	}
	certs := r.scanner.FetchCerts(ctx, addrs)
	if ctx.Err() != nil {
		return nil
	}
	out := make([]outcome, 0, len(batch))
	for i, t := range batch {
		cr := certs[i]
		o := outcome{Addr: t.Addr, AS: uint32(t.AS)}
		if cr.Err == nil {
			o.Concluded = true
			if id, ok := r.classify(ctx, t.Addr, cr); ok {
				o.HG = int(id)
			}
		}
		if ctx.Err() != nil {
			return nil // header confirmation was cut short
		}
		out = append(out, o)
	}
	return out
}

// classify decides whether one probed target is a confirmed off-net of
// any configured hypergiant: organization keyword match on the leaf
// (§4.1), a chain that verifies (§4.1's invalid-cert rejection), and a
// header fingerprint match when the hypergiant defines one (§4.5).
func (r *Runner) classify(ctx context.Context, addr string, cr probe.CertResult) (hg.ID, bool) {
	org := strings.ToLower(cr.LeafOrganization())
	for _, id := range r.cfg.Hypergiants {
		h := hg.Get(id)
		if h == nil || !strings.Contains(org, h.Keyword) {
			continue
		}
		if !cr.Valid {
			return 0, false // impostor: right org string, broken chain
		}
		if !h.HasFingerprints() {
			return id, true
		}
		host := ""
		if len(h.Domains) > 0 {
			host = hg.ConcreteDomain(h.Domains[0])
		}
		hres := r.scanner.FetchHeaders(ctx, []string{addr}, host, true)
		if hres[0].Err == nil && h.MatchesHeaders(hres[0].Headers) {
			return id, true
		}
		return 0, false // candidate, header confirmation failed
	}
	return 0, false
}
