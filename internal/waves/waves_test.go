package waves

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"offnetscope/internal/astopo"
	"offnetscope/internal/footstore"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/obs"
	"offnetscope/internal/probe"
	"offnetscope/internal/runstate"
	"offnetscope/internal/servefarm"
	"offnetscope/internal/timeline"
)

// testFarm is a miniature Internet on loopback: two Google off-nets,
// one Akamai off-net, one background site, and one impostor with a
// self-signed "Google" certificate.
func testFarm(t *testing.T) (*servefarm.Farm, []Target) {
	t.Helper()
	gws := []hg.Header{{Name: "Server", Value: "gws"}}
	ghost := []hg.Header{{Name: "Server", Value: "AkamaiGHost"}}
	nginx := []hg.Header{{Name: "Server", Value: "nginx"}}
	farm, err := servefarm.Start([]servefarm.Spec{
		{Name: "google-offnet-1", Organization: "Google LLC",
			DNSNames: []string{"*.googlevideo.com"}, Headers: gws},
		{Name: "google-offnet-2", Organization: "Google LLC",
			DNSNames: []string{"*.googlevideo.com", "*.youtube.com"}, Headers: gws},
		{Name: "akamai-offnet", Organization: "Akamai Technologies, Inc.",
			DNSNames: []string{"a248.e.akamai.net"}, Headers: ghost},
		{Name: "background", Organization: "Acme Web Services",
			DNSNames: []string{"www.acme.example"}, Headers: nginx},
		{Name: "google-impostor", Organization: "Google LLC",
			DNSNames: []string{"*.google.com"}, SelfSigned: true, Headers: nginx},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(farm.Close)
	targets := make([]Target, len(farm.Servers))
	for i, s := range farm.Servers {
		targets[i] = Target{Addr: s.TLSAddr, AS: astopo.ASN(64512 + i)}
	}
	return farm, targets
}

func testConfig(farm *servefarm.Farm) Config {
	return Config{
		Probe: probe.Config{
			Concurrency: 8,
			Timeout:     2 * time.Second,
			RootCAs:     farm.CA.Pool(),
		},
		WaveTimeout: 30 * time.Second,
		Prefixes: []PrefixRow{
			{Prefix: netmodel.MustParsePrefix("198.18.0.0/24"), Origins: []astopo.ASN{64512}},
		},
	}
}

// deadAddr returns an address nothing listens on.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestWaveCommitsGenerations(t *testing.T) {
	farm, targets := testFarm(t)
	log, _, err := footstore.OpenGenLog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry("waves-test")
	cfg := testConfig(farm)
	cfg.Metrics = reg

	r, err := NewRunner(log, targets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NextSnapshot() != 0 {
		t.Fatalf("fresh runner NextSnapshot = %s", r.NextSnapshot())
	}

	res, err := r.RunWave(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != 1 || res.Snapshot != 0 {
		t.Fatalf("first wave = generation %d snapshot %s", res.Generation, res.Snapshot)
	}
	if res.Verdict != VerdictFull {
		t.Fatalf("verdict = %q (%+v)", res.Verdict, res)
	}
	if res.Concluded != len(targets) || res.Failed != 0 {
		t.Fatalf("concluded %d failed %d of %d", res.Concluded, res.Failed, res.Targets)
	}
	// Two Google off-nets and one Akamai; the impostor (broken chain)
	// and the background site must not confirm.
	if res.Confirmed != 3 {
		t.Fatalf("confirmed = %d, want 3", res.Confirmed)
	}

	st, err := log.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := st.Footprint(hg.Google, 0)
	if !ok || len(g) != 2 || g[0] != 64512 || g[1] != 64513 {
		t.Fatalf("Google footprint = %v, %t", g, ok)
	}
	a, ok := st.Footprint(hg.Akamai, 0)
	if !ok || len(a) != 1 || a[0] != 64514 {
		t.Fatalf("Akamai footprint = %v, %t", a, ok)
	}
	// The seeded prefix table made it into the committed store.
	if _, origins, ok := st.LookupIP(netmodel.MustParseIP("198.18.0.9")); !ok || origins[0] != 64512 {
		t.Fatalf("seeded prefix lookup = %v, %t", origins, ok)
	}

	// Second wave fills the next slot and keeps the first.
	res2, err := r.RunWave(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Generation != 2 || res2.Snapshot != 1 {
		t.Fatalf("second wave = generation %d snapshot %s", res2.Generation, res2.Snapshot)
	}
	st2, err := log.Load(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Snapshots(); len(got) != 2 {
		t.Fatalf("second generation holds %d snapshots", len(got))
	}
	if reg.Counter("waves.committed").Value() != 2 {
		t.Fatalf("waves.committed = %d", reg.Counter("waves.committed").Value())
	}
	if reg.Gauge("waves.generation").Value() != 2 {
		t.Fatalf("waves.generation = %d", reg.Gauge("waves.generation").Value())
	}
}

func TestWaveRunnerResumesFromLog(t *testing.T) {
	farm, targets := testFarm(t)
	dir := t.TempDir()
	log, _, err := footstore.OpenGenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(log, targets, testConfig(farm))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunWave(context.Background()); err != nil {
		t.Fatal(err)
	}
	r.Close()

	// A fresh runner (daemon restart) continues the timeline.
	log2, _, err := footstore.OpenGenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRunner(log2, targets, testConfig(farm))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.NextSnapshot() != 1 {
		t.Fatalf("restarted runner NextSnapshot = %s, want 1", r2.NextSnapshot())
	}
	res, err := r2.RunWave(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != 2 || res.Snapshot != 1 {
		t.Fatalf("post-restart wave = generation %d snapshot %s", res.Generation, res.Snapshot)
	}
	// The restarted store still carries wave 1's history.
	st, err := log2.Load(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Footprint(hg.Google, 0); !ok {
		t.Fatal("restart lost the first wave's snapshot")
	}
}

func TestWaveReducedCoverage(t *testing.T) {
	farm, targets := testFarm(t)
	// Outnumber the 5 live servers with 6 dead targets: coverage 5/11
	// < 0.5 → the wave commits, degraded.
	for i := 0; i < 6; i++ {
		targets = append(targets, Target{Addr: deadAddr(t), AS: astopo.ASN(64600 + i)})
	}
	log, _, err := footstore.OpenGenLog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry("waves-reduced")
	cfg := testConfig(farm)
	cfg.Metrics = reg
	cfg.Probe.Timeout = 500 * time.Millisecond

	r, err := NewRunner(log, targets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, err := r.RunWave(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictReduced {
		t.Fatalf("verdict = %q, want %q (%+v)", res.Verdict, VerdictReduced, res)
	}
	if res.Failed != 6 || res.Concluded != 5 {
		t.Fatalf("failed %d concluded %d", res.Failed, res.Concluded)
	}
	if log.Last() != 1 {
		t.Fatal("reduced-coverage wave did not commit")
	}
	if reg.Counter("waves.reduced").Value() != 1 {
		t.Fatalf("waves.reduced = %d", reg.Counter("waves.reduced").Value())
	}
}

func TestWaveFailsWhenNothingConcludes(t *testing.T) {
	farm, _ := testFarm(t)
	targets := []Target{
		{Addr: deadAddr(t), AS: 64600},
		{Addr: deadAddr(t), AS: 64601},
	}
	log, _, err := footstore.OpenGenLog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(farm)
	cfg.Probe.Timeout = 300 * time.Millisecond
	cfg.CheckpointDir = t.TempDir()

	r, err := NewRunner(log, targets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunWave(context.Background()); !errors.Is(err, ErrWaveFailed) {
		t.Fatalf("RunWave = %v, want ErrWaveFailed", err)
	}
	if log.Len() != 0 {
		t.Fatal("failed wave committed a generation")
	}
	// The checkpoint was cleared so a retry re-probes from scratch.
	if raw := runstate.LoadBlob(cfg.CheckpointDir, r.ckName()); raw != nil {
		t.Fatalf("failed wave left checkpoint %q", raw)
	}
}

func TestWaveResumesMidWaveFromCheckpoint(t *testing.T) {
	farm, targets := testFarm(t)
	log, _, err := footstore.OpenGenLog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(farm)
	cfg.CheckpointDir = t.TempDir()
	r, err := NewRunner(log, targets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Plant the checkpoint a killed predecessor would have left: the
	// background target already "confirmed" as a Google off-net. If the
	// wave trusts the checkpoint instead of re-probing, the impossible
	// confirmation shows up in the committed footprint.
	bg := targets[3]
	ck := ckFile{
		Snapshot:    0,
		TargetsHash: r.targetsHash(),
		Outcomes: []outcome{
			{Addr: bg.Addr, AS: uint32(bg.AS), Concluded: true, HG: int(hg.Google)},
		},
	}
	raw, err := json.Marshal(ck)
	if err != nil {
		t.Fatal(err)
	}
	if err := runstate.SaveBlob(cfg.CheckpointDir, r.ckName(), raw); err != nil {
		t.Fatal(err)
	}

	res, err := r.RunWave(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed != 1 {
		t.Fatalf("resumed = %d, want 1", res.Resumed)
	}
	st, err := log.Load(res.Generation)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := st.Footprint(hg.Google, 0)
	found := false
	for _, as := range g {
		if as == bg.AS {
			found = true
		}
	}
	if !found {
		t.Fatalf("checkpointed outcome ignored; Google footprint = %v", g)
	}
	// Commit cleared the wave's checkpoint.
	if raw := runstate.LoadBlob(cfg.CheckpointDir, r.ckName()); raw != nil {
		t.Fatal("stale checkpoint survived the commit")
	}

	// A checkpoint pinned to different targets must be ignored.
	ck.TargetsHash++
	ck.Snapshot = int(r.NextSnapshot())
	raw, _ = json.Marshal(ck)
	if err := runstate.SaveBlob(cfg.CheckpointDir, r.ckName(), raw); err != nil {
		t.Fatal(err)
	}
	res2, err := r.RunWave(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed != 0 {
		t.Fatalf("mismatched checkpoint resumed %d outcomes", res2.Resumed)
	}
}

func TestWaveShutdownKeepsCheckpoint(t *testing.T) {
	farm, targets := testFarm(t)
	log, _, err := footstore.OpenGenLog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(farm)
	cfg.CheckpointDir = t.TempDir()
	r, err := NewRunner(log, targets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ck := ckFile{Snapshot: 0, TargetsHash: r.targetsHash(), Outcomes: []outcome{
		{Addr: targets[0].Addr, AS: uint32(targets[0].AS), Concluded: true, HG: int(hg.Google)},
	}}
	raw, _ := json.Marshal(ck)
	if err := runstate.SaveBlob(cfg.CheckpointDir, r.ckName(), raw); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // daemon shutdown before the wave starts
	if _, err := r.RunWave(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunWave under shutdown = %v", err)
	}
	if log.Len() != 0 {
		t.Fatal("cancelled wave committed")
	}
	if raw := runstate.LoadBlob(cfg.CheckpointDir, r.ckName()); raw == nil {
		t.Fatal("shutdown discarded the mid-wave checkpoint")
	}
}

func TestWaveGridExhausted(t *testing.T) {
	farm, targets := testFarm(t)
	dir := t.TempDir()
	log, _, err := footstore.OpenGenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Commit a generation whose newest snapshot is the last grid slot.
	b := footstore.NewBuilder()
	last := timeline.Snapshot(timeline.Count() - 1)
	if err := b.AddSnapshot(last, map[hg.ID][]astopo.ASN{hg.Google: {64512}}); err != nil {
		t.Fatal(err)
	}
	st, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(st); err != nil {
		t.Fatal(err)
	}

	r, err := NewRunner(log, targets, testConfig(farm))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunWave(context.Background()); !errors.Is(err, ErrGridExhausted) {
		t.Fatalf("RunWave on a full grid = %v", err)
	}
}
