// Package scanners emulates the scan campaigns behind the public
// corpuses. Each vendor profile sweeps the world's responsive hosts with
// its own blind spots — opt-out blocklists that grow over the years,
// rate-limit losses, and different collection start dates for HTTPS
// headers — and emits corpus.Snapshot records identical in shape to what
// Rapid7 and Censys publish. The certigo profile reproduces the authors'
// own slower but less-filtered active scan (§5, Table 2).
package scanners

import (
	"offnetscope/internal/astopo"
	"offnetscope/internal/certmodel"
	"offnetscope/internal/corpus"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/timeline"
	"offnetscope/internal/worldsim"
)

// Profile describes one scanning campaign's behaviour.
type Profile struct {
	Vendor corpus.Vendor
	// BlocklistFrac is the base fraction of ASes that asked to be
	// excluded from this vendor's scans.
	BlocklistFrac float64
	// BlocklistGrowth is added to BlocklistFrac per snapshot — both
	// long-running projects accumulate complaints over the years (§5).
	BlocklistGrowth float64
	// DropFrac is the per-host probability of missing a response to
	// rate limiting; slow scans (certigo ran for four days) lose less.
	DropFrac float64
	// CertsFrom / HTTPSHeadersFrom / HTTPHeadersFrom gate availability:
	// records before these snapshots don't exist in the vendor's corpus.
	CertsFrom        timeline.Snapshot
	HTTPSHeadersFrom timeline.Snapshot
	HTTPHeadersFrom  timeline.Snapshot
	// NoHeaders disables header collection entirely (pure TLS scan).
	NoHeaders bool
}

// Rapid7Profile is the study's main longitudinal corpus: certificates
// and HTTP headers from 2013-10, HTTPS headers from 2016-07.
func Rapid7Profile() Profile {
	return Profile{
		Vendor:           corpus.Rapid7,
		BlocklistFrac:    0.020,
		BlocklistGrowth:  0.0008,
		DropFrac:         0.13,
		CertsFrom:        0,
		HTTPSHeadersFrom: 11, // 2016-07
		HTTPHeadersFrom:  0,
	}
}

// CensysProfile covers 2019-10 onwards with both header corpuses.
func CensysProfile() Profile {
	return Profile{
		Vendor:           corpus.Censys,
		BlocklistFrac:    0.025,
		BlocklistGrowth:  0.0008,
		DropFrac:         0.12,
		CertsFrom:        24, // 2019-10
		HTTPSHeadersFrom: 24,
		HTTPHeadersFrom:  24,
	}
}

// CertigoProfile is the authors' one-off four-day active scan of
// November 2019: almost no exclusions, little rate limiting, no headers.
func CertigoProfile() Profile {
	return Profile{
		Vendor:        corpus.Certigo,
		BlocklistFrac: 0.002,
		DropFrac:      0.02,
		CertsFrom:     24,
		NoHeaders:     true,
	}
}

// Profiles returns the three campaign profiles (Table 2's corpuses).
func Profiles() []Profile {
	return []Profile{Rapid7Profile(), CensysProfile(), CertigoProfile()}
}

// Available reports whether the vendor has certificate data for s.
func (p Profile) Available(s timeline.Snapshot) bool { return s >= p.CertsFrom }

// excluded reports whether as opted out of this vendor's scans by
// snapshot s. Once excluded, always excluded (removal requests are not
// retracted).
func (p Profile) excluded(as astopo.ASN, s timeline.Snapshot) bool {
	frac := p.BlocklistFrac + p.BlocklistGrowth*float64(s)
	h := hashScan(string(p.Vendor), uint64(as), 0, 0)
	joined := float64(h%100000) / 100000 // when in [0,1] the AS opted out
	return joined < frac
}

// dropped reports whether this particular probe got rate limited.
func (p Profile) dropped(ip netmodel.IP, s timeline.Snapshot, port uint64) bool {
	h := hashScan(string(p.Vendor), uint64(ip), uint64(s), port)
	return float64(h%100000)/100000 < p.DropFrac
}

func hashScan(vendor string, a, b, c uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(vendor); i++ {
		h ^= uint64(vendor[i])
		h *= 1099511628211
	}
	for _, x := range []uint64{a, b, c} {
		h ^= x
		h *= 1099511628211
		h ^= h >> 29
	}
	return h
}

// Scan sweeps the world at snapshot s with profile p. It returns nil if
// the vendor has no data for that month.
func Scan(w *worldsim.World, p Profile, s timeline.Snapshot) *corpus.Snapshot {
	if !p.Available(s) {
		return nil
	}
	snap := &corpus.Snapshot{Vendor: p.Vendor, Snapshot: s}
	wantHTTPS := !p.NoHeaders && s >= p.HTTPSHeadersFrom
	wantHTTP := !p.NoHeaders && s >= p.HTTPHeadersFrom

	w.Hosts(s, func(h *worldsim.Host) bool {
		// Hypergiants never opt their own serving infrastructure out of
		// scans; blocklists are an eyeball-network phenomenon.
		if _, isOnNet := w.HGOfOnNetAS(h.TrueAS); !isOnNet && p.excluded(h.TrueAS, s) {
			return true
		}
		if h.HTTPSUp && !p.dropped(h.IP, s, 443) {
			if h.Chain != nil {
				snap.Certs = append(snap.Certs, corpus.CertRecord{IP: h.IP, Chain: h.Chain})
			}
			if wantHTTPS && h.HTTPSHeaders != nil {
				snap.HTTPS = append(snap.HTTPS, corpus.HeaderRecord{IP: h.IP, Headers: h.HTTPSHeaders})
			}
		}
		if wantHTTP && h.HTTPUp && !p.dropped(h.IP, s, 80) {
			snap.HTTP = append(snap.HTTP, corpus.HeaderRecord{IP: h.IP, Headers: h.HTTPHeaders})
		}
		return true
	})
	return snap
}

// ScanStream sweeps the world at snapshot s like Scan, but exposes the
// result as a corpus.Stream of chunked record batches instead of a
// materialized Snapshot: records are synthesized during consumption, so
// a month's corpus never exists in memory all at once. The certs pass
// walks the cheap header-free enumeration (worldsim.CertHosts); the
// header passes run the full one only when the profile actually
// collects headers at s. Record order and filtering are identical to
// Scan's, making the streamed corpus byte-equivalent at any chunk size.
// Like Scan, it returns nil when the vendor has no data for the month.
func ScanStream(w *worldsim.World, p Profile, s timeline.Snapshot, chunk int) *corpus.Stream {
	if !p.Available(s) {
		return nil
	}
	if chunk <= 0 {
		chunk = corpus.DefaultChunkSize
	}
	wantHTTPS := !p.NoHeaders && s >= p.HTTPSHeadersFrom
	wantHTTP := !p.NoHeaders && s >= p.HTTPHeadersFrom
	st := &corpus.Stream{Vendor: p.Vendor, Snapshot: s}
	st.Certs = func(yield func([]corpus.CertRecord) error) error {
		cy := newChunkYielder(chunk, yield)
		w.CertHosts(s, func(h *worldsim.Host) bool {
			if _, isOnNet := w.HGOfOnNetAS(h.TrueAS); !isOnNet && p.excluded(h.TrueAS, s) {
				return true
			}
			if h.HTTPSUp && h.Chain != nil && !p.dropped(h.IP, s, 443) {
				return cy.add(corpus.CertRecord{IP: h.IP, Chain: h.Chain})
			}
			return true
		})
		return cy.finish()
	}
	st.HTTPS = func(yield func([]corpus.HeaderRecord) error) error {
		if !wantHTTPS {
			return nil
		}
		cy := newChunkYielder(chunk, yield)
		w.Hosts(s, func(h *worldsim.Host) bool {
			if _, isOnNet := w.HGOfOnNetAS(h.TrueAS); !isOnNet && p.excluded(h.TrueAS, s) {
				return true
			}
			if h.HTTPSUp && h.HTTPSHeaders != nil && !p.dropped(h.IP, s, 443) {
				return cy.add(corpus.HeaderRecord{IP: h.IP, Headers: h.HTTPSHeaders})
			}
			return true
		})
		return cy.finish()
	}
	st.HTTP = func(yield func([]corpus.HeaderRecord) error) error {
		if !wantHTTP {
			return nil
		}
		cy := newChunkYielder(chunk, yield)
		w.Hosts(s, func(h *worldsim.Host) bool {
			if _, isOnNet := w.HGOfOnNetAS(h.TrueAS); !isOnNet && p.excluded(h.TrueAS, s) {
				return true
			}
			if h.HTTPUp && !p.dropped(h.IP, s, 80) {
				return cy.add(corpus.HeaderRecord{IP: h.IP, Headers: h.HTTPHeaders})
			}
			return true
		})
		return cy.finish()
	}
	return st
}

// chunkYielder accumulates records into one reused batch buffer and
// forwards every full batch to yield, honouring the corpus.Stream
// batch-reuse contract.
type chunkYielder[T any] struct {
	batch []T
	yield func([]T) error
	err   error
}

func newChunkYielder[T any](chunk int, yield func([]T) error) *chunkYielder[T] {
	return &chunkYielder[T]{batch: make([]T, 0, chunk), yield: yield}
}

// add appends one record, flushing at the chunk size; false means a
// yield failed and enumeration must stop.
func (c *chunkYielder[T]) add(rec T) bool {
	c.batch = append(c.batch, rec)
	if len(c.batch) == cap(c.batch) {
		if c.err = c.yield(c.batch); c.err != nil {
			return false
		}
		c.batch = c.batch[:0]
	}
	return true
}

// finish flushes the trailing partial batch and reports the stream's
// error, if any yield returned one.
func (c *chunkYielder[T]) finish() error {
	if c.err != nil {
		return c.err
	}
	if len(c.batch) > 0 {
		return c.yield(c.batch)
	}
	return nil
}

// ProbeResult is one ZGrab2-style targeted grab: TLS with explicit SNI
// plus an HTTP GET with the matching Host header (§5's active
// validation).
type ProbeResult struct {
	IP        netmodel.IP
	Domain    string
	Reachable bool
	// TLSValid reports whether the handshake produced a chain that is
	// valid (§4.1 rules) *and* covers the requested domain — the
	// paper's "correctly validated" criterion.
	TLSValid bool
	Chain    certmodel.Chain
	Headers  []hg.Header
}

// ZGrab performs one targeted (IP, domain) grab against the world.
func ZGrab(w *worldsim.World, ip netmodel.IP, domain string, s timeline.Snapshot) ProbeResult {
	res := w.Probe(ip, domain, s)
	out := ProbeResult{IP: ip, Domain: domain, Reachable: res.Reachable, Chain: res.Chain, Headers: res.Headers}
	if !res.Reachable || !res.ServesDomain {
		return out
	}
	if err := certmodel.Verify(res.Chain, s.MidTime(), w.TrustStore()); err != nil {
		return out
	}
	covered := false
	for _, pat := range res.Chain.LeafDNSNames() {
		if hg.MatchDomain(pat, domain) {
			covered = true
			break
		}
	}
	out.TLSValid = covered
	return out
}
