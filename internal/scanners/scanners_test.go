package scanners

import (
	"testing"

	"offnetscope/internal/astopo"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/timeline"
	"offnetscope/internal/worldsim"
)

var testWorld = func() *worldsim.World {
	w, err := worldsim.New(worldsim.Config{Seed: 42, Scale: 0.02})
	if err != nil {
		panic(err)
	}
	return w
}()

func lastS() timeline.Snapshot { return timeline.Snapshot(timeline.Count() - 1) }

func TestAvailabilityWindows(t *testing.T) {
	if Scan(testWorld, CensysProfile(), 10) != nil {
		t.Error("Censys must have no data before 2019-10")
	}
	if Scan(testWorld, CertigoProfile(), 0) != nil {
		t.Error("certigo is a one-off late scan")
	}
	snap := Scan(testWorld, Rapid7Profile(), 0)
	if snap == nil || len(snap.Certs) == 0 {
		t.Fatal("Rapid7 must cover the whole window")
	}
	if len(snap.HTTPS) != 0 {
		t.Error("Rapid7 HTTPS headers must not exist before 2016-07")
	}
	if len(snap.HTTP) == 0 {
		t.Error("Rapid7 HTTP headers exist from the start")
	}
	snap = Scan(testWorld, Rapid7Profile(), 12)
	if len(snap.HTTPS) == 0 {
		t.Error("Rapid7 HTTPS headers exist after 2016-07")
	}
}

func TestCertigoSeesMore(t *testing.T) {
	s := Nov2019()
	r7 := Scan(testWorld, Rapid7Profile(), s)
	ac := Scan(testWorld, CertigoProfile(), s)
	if len(ac.Certs) <= len(r7.Certs) {
		t.Errorf("certigo (%d) should see more IPs than Rapid7 (%d)", len(ac.Certs), len(r7.Certs))
	}
	if len(ac.HTTPS)+len(ac.HTTP) != 0 {
		t.Error("certigo collects no headers")
	}
}

func Nov2019() timeline.Snapshot { return timeline.Snapshot(24) }

func TestScanDeterministic(t *testing.T) {
	a := Scan(testWorld, Rapid7Profile(), 15)
	b := Scan(testWorld, Rapid7Profile(), 15)
	if len(a.Certs) != len(b.Certs) || len(a.HTTP) != len(b.HTTP) {
		t.Fatal("same scan twice differs")
	}
	for i := range a.Certs {
		if a.Certs[i].IP != b.Certs[i].IP {
			t.Fatal("record order differs")
		}
	}
}

func TestBlocklistGrows(t *testing.T) {
	p := Rapid7Profile()
	excludedEarly, excludedLate := 0, 0
	g := testWorld.Graph()
	for i := 1; i <= g.NumASes(); i++ {
		as := astopo.ASN(i)
		if p.excluded(as, 0) {
			excludedEarly++
		}
		if p.excluded(as, lastS()) {
			excludedLate++
		}
		if p.excluded(as, 0) && !p.excluded(as, lastS()) {
			t.Fatal("blocklist removals must not happen")
		}
	}
	if excludedLate <= excludedEarly {
		t.Errorf("blocklist should grow: %d → %d", excludedEarly, excludedLate)
	}
}

func TestOnNetNeverExcluded(t *testing.T) {
	// Every hypergiant must have on-net certificate records in every
	// vendor's scan — otherwise fingerprint learning dies.
	for _, v := range []Profile{Rapid7Profile(), CensysProfile()} {
		s := lastS()
		snap := Scan(testWorld, v, s)
		mapper := testWorld.IP2AS(s)
		seen := map[hg.ID]bool{}
		for _, cr := range snap.Certs {
			for _, as := range mapper.Lookup(cr.IP) {
				if id, ok := testWorld.HGOfOnNetAS(as); ok {
					seen[id] = true
				}
			}
		}
		for _, h := range hg.All() {
			if !seen[h.ID] {
				t.Errorf("%s: no on-net records for %v", v.Vendor, h.ID)
			}
		}
	}
}

func TestZGrabValidation(t *testing.T) {
	s := lastS()
	gASes := testWorld.TrueOffNetASes(hg.Google, s)
	if len(gASes) == 0 {
		t.Fatal("no Google off-nets")
	}
	ip := offNetIPOf(t, gASes[0])
	if res := ZGrab(testWorld, ip, "www.google.com", s); !res.TLSValid {
		t.Errorf("Google off-net should validate www.google.com: %+v", res)
	}
	if res := ZGrab(testWorld, ip, "www.facebook.com", s); res.TLSValid {
		t.Error("Google off-net must not validate www.facebook.com")
	}
	if res := ZGrab(testWorld, netmodel.MustParseIP("0.0.0.9"), "x.example", s); res.Reachable {
		t.Error("unallocated space must be unreachable")
	}
}

// offNetIPOf computes the first Google off-net IP in as using the world
// layout (first prefix, Google's slot).
func offNetIPOf(t *testing.T, as astopo.ASN) netmodel.IP {
	t.Helper()
	p := testWorld.Alloc().PrefixesOf(as)[0]
	return p.Addr + netmodel.IP(10+(int(hg.Google)-1)*8)
}
