package scanners

import (
	"errors"
	"reflect"
	"testing"

	"offnetscope/internal/astopo"
	"offnetscope/internal/corpus"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/timeline"
	"offnetscope/internal/worldsim"
)

var testWorld = func() *worldsim.World {
	w, err := worldsim.New(worldsim.Config{Seed: 42, Scale: 0.02})
	if err != nil {
		panic(err)
	}
	return w
}()

func lastS() timeline.Snapshot { return timeline.Snapshot(timeline.Count() - 1) }

func TestAvailabilityWindows(t *testing.T) {
	if Scan(testWorld, CensysProfile(), 10) != nil {
		t.Error("Censys must have no data before 2019-10")
	}
	if Scan(testWorld, CertigoProfile(), 0) != nil {
		t.Error("certigo is a one-off late scan")
	}
	snap := Scan(testWorld, Rapid7Profile(), 0)
	if snap == nil || len(snap.Certs) == 0 {
		t.Fatal("Rapid7 must cover the whole window")
	}
	if len(snap.HTTPS) != 0 {
		t.Error("Rapid7 HTTPS headers must not exist before 2016-07")
	}
	if len(snap.HTTP) == 0 {
		t.Error("Rapid7 HTTP headers exist from the start")
	}
	snap = Scan(testWorld, Rapid7Profile(), 12)
	if len(snap.HTTPS) == 0 {
		t.Error("Rapid7 HTTPS headers exist after 2016-07")
	}
}

func TestCertigoSeesMore(t *testing.T) {
	s := Nov2019()
	r7 := Scan(testWorld, Rapid7Profile(), s)
	ac := Scan(testWorld, CertigoProfile(), s)
	if len(ac.Certs) <= len(r7.Certs) {
		t.Errorf("certigo (%d) should see more IPs than Rapid7 (%d)", len(ac.Certs), len(r7.Certs))
	}
	if len(ac.HTTPS)+len(ac.HTTP) != 0 {
		t.Error("certigo collects no headers")
	}
}

func Nov2019() timeline.Snapshot { return timeline.Snapshot(24) }

func TestScanDeterministic(t *testing.T) {
	a := Scan(testWorld, Rapid7Profile(), 15)
	b := Scan(testWorld, Rapid7Profile(), 15)
	if len(a.Certs) != len(b.Certs) || len(a.HTTP) != len(b.HTTP) {
		t.Fatal("same scan twice differs")
	}
	for i := range a.Certs {
		if a.Certs[i].IP != b.Certs[i].IP {
			t.Fatal("record order differs")
		}
	}
}

// TestScanStreamMatchesScan pins the streamed scan to the materialized
// one: same records, same order, at any chunk size, for every profile —
// including months where a vendor collects no headers (empty streams)
// and none at all (nil).
func TestScanStreamMatchesScan(t *testing.T) {
	cases := []struct {
		profile Profile
		s       timeline.Snapshot
	}{
		{Rapid7Profile(), 5},  // certs + HTTP only (pre-2016-07)
		{Rapid7Profile(), 15}, // all three record kinds
		{CensysProfile(), 25},
		{CertigoProfile(), 24}, // no headers at all
	}
	for _, tc := range cases {
		snap := Scan(testWorld, tc.profile, tc.s)
		for _, chunk := range []int{1, 7, 0} {
			st := ScanStream(testWorld, tc.profile, tc.s, chunk)
			if st == nil {
				t.Fatalf("%s s=%d: stream is nil where scan is not", tc.profile.Vendor, tc.s)
			}
			if st.Vendor != snap.Vendor || st.Snapshot != snap.Snapshot {
				t.Fatalf("%s s=%d: stream identity mismatch", tc.profile.Vendor, tc.s)
			}
			var certs []corpus.CertRecord
			if err := st.Certs(func(b []corpus.CertRecord) error {
				certs = append(certs, b...)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(certs) != len(snap.Certs) {
				t.Fatalf("%s s=%d chunk=%d: %d streamed certs vs %d scanned", tc.profile.Vendor, tc.s, chunk, len(certs), len(snap.Certs))
			}
			for i := range certs {
				if certs[i].IP != snap.Certs[i].IP {
					t.Fatalf("%s s=%d chunk=%d: cert record %d IP differs", tc.profile.Vendor, tc.s, chunk, i)
				}
				if certs[i].Chain.Leaf().Fingerprint() != snap.Certs[i].Chain.Leaf().Fingerprint() {
					t.Fatalf("%s s=%d chunk=%d: cert record %d chain differs", tc.profile.Vendor, tc.s, chunk, i)
				}
			}
			checkHeaders := func(name string, want []corpus.HeaderRecord, consume func(func([]corpus.HeaderRecord) error) error) {
				var got []corpus.HeaderRecord
				if err := consume(func(b []corpus.HeaderRecord) error {
					got = append(got, b...)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s s=%d chunk=%d: %d streamed %s records vs %d scanned", tc.profile.Vendor, tc.s, chunk, len(got), name, len(want))
				}
				for i := range got {
					if got[i].IP != want[i].IP || !reflect.DeepEqual(got[i].Headers, want[i].Headers) {
						t.Fatalf("%s s=%d chunk=%d: %s record %d differs", tc.profile.Vendor, tc.s, chunk, name, i)
					}
				}
			}
			checkHeaders("https", snap.HTTPS, st.HTTPS)
			checkHeaders("http", snap.HTTP, st.HTTP)
		}
	}
	if ScanStream(testWorld, CensysProfile(), 10, 0) != nil {
		t.Error("stream must be nil for uncovered months, like Scan")
	}
}

// TestScanStreamAbort pins the yield-error contract: a consumer error
// stops enumeration and comes back verbatim.
func TestScanStreamAbort(t *testing.T) {
	boom := errors.New("boom")
	st := ScanStream(testWorld, Rapid7Profile(), 15, 1)
	batches := 0
	err := st.Certs(func([]corpus.CertRecord) error {
		if batches++; batches == 2 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("got %v, want the consumer's error verbatim", err)
	}
	if batches != 2 {
		t.Fatalf("enumeration continued after the abort: %d batches", batches)
	}
}

func TestBlocklistGrows(t *testing.T) {
	p := Rapid7Profile()
	excludedEarly, excludedLate := 0, 0
	g := testWorld.Graph()
	for i := 1; i <= g.NumASes(); i++ {
		as := astopo.ASN(i)
		if p.excluded(as, 0) {
			excludedEarly++
		}
		if p.excluded(as, lastS()) {
			excludedLate++
		}
		if p.excluded(as, 0) && !p.excluded(as, lastS()) {
			t.Fatal("blocklist removals must not happen")
		}
	}
	if excludedLate <= excludedEarly {
		t.Errorf("blocklist should grow: %d → %d", excludedEarly, excludedLate)
	}
}

func TestOnNetNeverExcluded(t *testing.T) {
	// Every hypergiant must have on-net certificate records in every
	// vendor's scan — otherwise fingerprint learning dies.
	for _, v := range []Profile{Rapid7Profile(), CensysProfile()} {
		s := lastS()
		snap := Scan(testWorld, v, s)
		mapper := testWorld.IP2AS(s)
		seen := map[hg.ID]bool{}
		for _, cr := range snap.Certs {
			for _, as := range mapper.Lookup(cr.IP) {
				if id, ok := testWorld.HGOfOnNetAS(as); ok {
					seen[id] = true
				}
			}
		}
		for _, h := range hg.All() {
			if !seen[h.ID] {
				t.Errorf("%s: no on-net records for %v", v.Vendor, h.ID)
			}
		}
	}
}

func TestZGrabValidation(t *testing.T) {
	s := lastS()
	gASes := testWorld.TrueOffNetASes(hg.Google, s)
	if len(gASes) == 0 {
		t.Fatal("no Google off-nets")
	}
	ip := offNetIPOf(t, gASes[0])
	if res := ZGrab(testWorld, ip, "www.google.com", s); !res.TLSValid {
		t.Errorf("Google off-net should validate www.google.com: %+v", res)
	}
	if res := ZGrab(testWorld, ip, "www.facebook.com", s); res.TLSValid {
		t.Error("Google off-net must not validate www.facebook.com")
	}
	if res := ZGrab(testWorld, netmodel.MustParseIP("0.0.0.9"), "x.example", s); res.Reachable {
		t.Error("unallocated space must be unreachable")
	}
}

// offNetIPOf computes the first Google off-net IP in as using the world
// layout (first prefix, Google's slot).
func offNetIPOf(t *testing.T, as astopo.ASN) netmodel.IP {
	t.Helper()
	p := testWorld.Alloc().PrefixesOf(as)[0]
	return p.Addr + netmodel.IP(10+(int(hg.Google)-1)*8)
}
