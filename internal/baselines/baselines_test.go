package baselines

import (
	"testing"

	"offnetscope/internal/astopo"
	"offnetscope/internal/dnssim"
	"offnetscope/internal/hg"
	"offnetscope/internal/timeline"
	"offnetscope/internal/worldsim"
)

var (
	testWorld = func() *worldsim.World {
		w, err := worldsim.New(worldsim.Config{Seed: 42, Scale: 0.03})
		if err != nil {
			panic(err)
		}
		return w
	}()
	testResolver = dnssim.New(testWorld)
)

func truthSet(id hg.ID, s timeline.Snapshot) map[astopo.ASN]struct{} {
	out := make(map[astopo.ASN]struct{})
	for _, as := range testWorld.TrueOffNetASes(id, s) {
		out[as] = struct{}{}
	}
	return out
}

func TestECSMapBeforeCutoff(t *testing.T) {
	s := timeline.Snapshot(8) // 2015-10, ECS still answered
	found := ECSMap(testResolver, testWorld, testWorld.IP2AS(s), hg.Google, s)
	truth := truthSet(hg.Google, s)
	if len(found) == 0 {
		t.Fatal("ECS mapping found nothing pre-cutoff")
	}
	overlap := Overlap(found, truth)
	recall := float64(overlap) / float64(len(truth))
	if recall < 0.8 {
		t.Errorf("ECS recall pre-cutoff = %.2f (found %d of %d)", recall, overlap, len(truth))
	}
	precision := float64(overlap) / float64(len(found))
	if precision < 0.8 {
		t.Errorf("ECS precision = %.2f", precision)
	}
}

func TestECSMapDiesAfterCutoff(t *testing.T) {
	s := timeline.Snapshot(timeline.Count() - 1)
	found := ECSMap(testResolver, testWorld, testWorld.IP2AS(s), hg.Google, s)
	// Post-lockdown, ECS answers only ever point on-net — the technique
	// uncovers (almost) nothing, which is exactly why the paper needed a
	// new method.
	if len(found) > len(truthSet(hg.Google, s))/10 {
		t.Errorf("ECS still found %d ASes after the lockdown", len(found))
	}
}

func TestECSUselessForNonECSHypergiants(t *testing.T) {
	s := timeline.Snapshot(8)
	found := ECSMap(testResolver, testWorld, testWorld.IP2AS(s), hg.Netflix, s)
	if len(found) != 0 {
		t.Errorf("ECS mapped %d Netflix ASes; Netflix never supported ECS", len(found))
	}
}

func TestFNAMapRecoversFacebook(t *testing.T) {
	s := timeline.Snapshot(timeline.Count() - 1)
	found := FNAMap(testResolver, testWorld, testWorld.IP2AS(s), s, 60, 6)
	truth := truthSet(hg.Facebook, s)
	if len(truth) == 0 {
		t.Fatal("no Facebook truth")
	}
	overlap := Overlap(found, truth)
	recall := float64(overlap) / float64(len(truth))
	// The guessing attack works well but not perfectly (index gaps past
	// the miss streak, BGP noise).
	if recall < 0.7 {
		t.Errorf("FNA recall = %.2f (found %d of %d)", recall, overlap, len(truth))
	}
	// Before the CDN launch the namespace is empty.
	if early := FNAMap(testResolver, testWorld, testWorld.IP2AS(5), 5, 20, 3); len(early) != 0 {
		t.Errorf("FNA map found %d ASes before the CDN existed", len(early))
	}
}

func TestOverlapHelper(t *testing.T) {
	a := map[astopo.ASN]struct{}{1: {}, 2: {}, 3: {}}
	b := map[astopo.ASN]struct{}{2: {}, 3: {}, 4: {}}
	if Overlap(a, b) != 2 || Overlap(b, a) != 2 {
		t.Fatal("overlap wrong")
	}
	if Overlap(a, nil) != 0 {
		t.Fatal("overlap with nil wrong")
	}
}
