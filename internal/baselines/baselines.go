// Package baselines implements the earlier off-net mapping techniques
// the paper compares against (§1, §5), as real algorithms over the DNS
// control plane:
//
//   - ECSMap: EDNS-Client-Subnet enumeration (Calder et al. 2013) — issue
//     one ECS query per routable prefix, collect the answers, map them
//     to ASes with public BGP data;
//   - FNAMap: Facebook naming-convention guessing (the FNA hackathon
//     maps) — exhaustively try <airport><n>-c1.fna.fbcdn.net hostnames.
//
// Both illustrate why the paper's certificate approach wins: ECS died
// when Google stopped answering it, and name-guessing is per-HG, fragile
// and quadratic in its guess space.
package baselines

import (
	"sort"

	"offnetscope/internal/astopo"
	"offnetscope/internal/dnssim"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/timeline"
	"offnetscope/internal/worldsim"
)

// ASMapper maps answer IPs to origin ASes — the public BGP view both
// baselines rely on.
type ASMapper interface {
	Lookup(ip netmodel.IP) []astopo.ASN
}

// ECSClientCoverage is the fraction of client prefixes the ECS
// enumeration actually exercises: the original studies built their
// prefix lists from BGP dumps and open-resolver vantage points and never
// reached everything — the reason the paper's approach found hundreds of
// additional ASes beyond the ECS map.
const ECSClientCoverage = 0.85

// ECSMap reproduces the ECS-based mapping: for (most of) the active
// ASes, issue an ECS query (the AS's first announced prefix) for one of
// the hypergiant's delivery domains and attribute the answer IPs. ASes
// whose answers map outside the hypergiant's own networks are off-net
// sites.
func ECSMap(r *dnssim.Resolver, w *worldsim.World, mapper ASMapper, id hg.ID, s timeline.Snapshot) map[astopo.ASN]struct{} {
	h := hg.Get(id)
	domain := hg.ConcreteDomain(h.Domains[1%len(h.Domains)]) // the delivery domain
	onNet := make(map[astopo.ASN]struct{})
	for _, as := range w.OnNetASes(id) {
		onNet[as] = struct{}{}
	}
	found := make(map[astopo.ASN]struct{})
	for i := 1; i <= w.Graph().NumASes(); i++ {
		client := astopo.ASN(i)
		if !w.Graph().Active(client, s) {
			continue
		}
		if skipClient(uint64(client)) {
			continue
		}
		prefixes := w.Alloc().PrefixesOf(client)
		if len(prefixes) == 0 {
			continue
		}
		ans := r.ResolveECS(domain, prefixes[0], s)
		for _, ip := range ans.IPs {
			for _, origin := range mapper.Lookup(ip) {
				if _, isOnNet := onNet[origin]; !isOnNet {
					found[origin] = struct{}{}
				}
			}
		}
	}
	return found
}

// FNAMap reproduces the naming-convention attack: enumerate the public
// airport-code list for every country, with site indices up to maxIdx,
// resolve each guess, and attribute the answers. missStreak bounds how
// many consecutive unused indices are tried per code before giving up,
// like the original scripts did.
func FNAMap(r *dnssim.Resolver, w *worldsim.World, mapper ASMapper, s timeline.Snapshot, maxIdx, missStreak int) map[astopo.ASN]struct{} {
	if maxIdx <= 0 {
		maxIdx = 50
	}
	if missStreak <= 0 {
		missStreak = 4
	}
	found := make(map[astopo.ASN]struct{})
	countries := astopo.Countries()
	codes := make([]string, 0, len(countries)*3)
	for _, c := range countries {
		codes = append(codes, dnssim.AirportCodesFor(c.Code)...)
	}
	sort.Strings(codes)
	for _, code := range codes {
		misses := 0
		for n := 1; n <= maxIdx && misses < missStreak; n++ {
			qname := code + itoa(n) + "-c1.fna.fbcdn.net"
			ans := r.Resolve(qname, 0, s)
			if ans.NXDomain || len(ans.IPs) == 0 {
				misses++
				continue
			}
			misses = 0
			for _, ip := range ans.IPs {
				for _, origin := range mapper.Lookup(ip) {
					found[origin] = struct{}{}
				}
			}
		}
	}
	return found
}

// skipClient deterministically drops 1-ECSClientCoverage of client ASes.
func skipClient(as uint64) bool {
	h := as * 0x9e3779b97f4a7c15
	h ^= h >> 29
	return float64(h%100000)/100000 >= ECSClientCoverage
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Overlap computes |a ∩ b|.
func Overlap(a, b map[astopo.ASN]struct{}) int {
	n := 0
	for as := range a {
		if _, ok := b[as]; ok {
			n++
		}
	}
	return n
}
