package analysis

import (
	"fmt"
	"sort"
	"strings"

	"offnetscope/internal/astopo"
	"offnetscope/internal/corpus"
	"offnetscope/internal/hg"
	"offnetscope/internal/report"
	"offnetscope/internal/timeline"
)

func init() {
	register("fig2", "Figure 2: IPs with certificates and HG share over time", func(e *Env) Renderer { return Fig2(e) })
	register("fig3", "Figure 3: top-4 off-net footprint growth", func(e *Env) Renderer { return Fig3(e) })
	register("fig4", "Figure 4: Rapid7 vs Censys, certs vs headers", func(e *Env) Renderer { return Fig4(e) })
	register("fig5", "Figure 5: growth by AS customer-cone category", func(e *Env) Renderer { return Fig5(e) })
	register("fig10", "Figure 10: co-hosting of the top-4 hypergiants", func(e *Env) Renderer { return Fig10(e) })
	register("fig11", "Figure 11: top-10 certificate IP groups", func(e *Env) Renderer { return Fig11(e) })
	register("fig14", "Figure 14: willingness to host across snapshots", func(e *Env) Renderer { return Fig14(e) })
}

// Fig2Result reproduces Figure 2: the raw certificate population and the
// share held by hypergiants, split on-net vs off-net.
type Fig2Result struct {
	TotalIPs    []int
	PctOnNetHG  []float64
	PctOffNetHG []float64
}

// Fig2 computes the series from the Rapid7 study.
func Fig2(e *Env) *Fig2Result {
	sr := e.Study(corpus.Rapid7)
	out := &Fig2Result{
		TotalIPs:    make([]int, timeline.Count()),
		PctOnNetHG:  make([]float64, timeline.Count()),
		PctOffNetHG: make([]float64, timeline.Count()),
	}
	for i, r := range sr.Results {
		if r == nil || r.TotalCertIPs == 0 {
			continue
		}
		out.TotalIPs[i] = r.TotalCertIPs
		out.PctOnNetHG[i] = 100 * float64(r.HGOnNetCertIPs) / float64(r.TotalCertIPs)
		out.PctOffNetHG[i] = 100 * float64(r.HGOffNetCertIPs) / float64(r.TotalCertIPs)
	}
	return out
}

// Render implements Renderer.
func (f *Fig2Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2 — IPs with certificates (raw Rapid7) and % serving HG certificates\n")
	b.WriteString(seriesHeader() + "\n")
	b.WriteString(seriesRow("total IPs", f.TotalIPs) + "\n")
	b.WriteString(pctRow("% HG on-net", f.PctOnNetHG) + "\n")
	b.WriteString(pctRow("% HG off-net", f.PctOffNetHG) + "\n")
	b.WriteString("shape:\n" + report.SparkRow("total IPs", f.TotalIPs) + "\n")
	return b.String()
}

func pctRow(label string, values []float64) string {
	out := fmt.Sprintf("%-12s", label)
	for _, v := range values {
		out += fmt.Sprintf("%9.2f", v)
	}
	return out
}

// Fig3Result reproduces Figure 3: top-4 growth with the Netflix
// envelope variants.
type Fig3Result struct {
	Google, Facebook, Akamai                      []int
	NetflixInitial, NetflixExpired, NetflixNonTLS []int
}

// Fig3 extracts the growth series from the Rapid7 study.
func Fig3(e *Env) *Fig3Result {
	sr := e.Study(corpus.Rapid7)
	return &Fig3Result{
		Google:         sr.ConfirmedSeries(hg.Google),
		Facebook:       sr.ConfirmedSeries(hg.Facebook),
		Akamai:         sr.ConfirmedSeries(hg.Akamai),
		NetflixInitial: sr.NetflixInitial,
		NetflixExpired: sr.NetflixWithExpired,
		NetflixNonTLS:  sr.NetflixNonTLS,
	}
}

// Render implements Renderer.
func (f *Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3 — off-net footprint growth of the top-4 hypergiants (# ASes)\n")
	b.WriteString(seriesHeader() + "\n")
	b.WriteString(seriesRow("Google", f.Google) + "\n")
	b.WriteString(seriesRow("Facebook", f.Facebook) + "\n")
	b.WriteString(seriesRow("Akamai", f.Akamai) + "\n")
	b.WriteString(seriesRow("NF initial", f.NetflixInitial) + "\n")
	b.WriteString(seriesRow("NF w/exp", f.NetflixExpired) + "\n")
	b.WriteString(seriesRow("NF non-tls", f.NetflixNonTLS) + "\n")
	b.WriteString("shape:\n")
	b.WriteString(report.SparkRow("Google", f.Google) + "\n")
	b.WriteString(report.SparkRow("Facebook", f.Facebook) + "\n")
	b.WriteString(report.SparkRow("Akamai", f.Akamai) + "\n")
	b.WriteString(report.SparkRow("NF initial", f.NetflixInitial) + "\n")
	b.WriteString(report.SparkRow("NF non-tls", f.NetflixNonTLS) + "\n")
	return b.String()
}

// Fig4Series is one (vendor, mode) growth line for one hypergiant.
type Fig4Series struct {
	Vendor corpus.Vendor
	Mode   string // "certs", "either", "both"
	Counts []int
}

// Fig4Result reproduces Figure 4 for Google, Facebook, and Akamai.
type Fig4Result struct {
	PerHG map[hg.ID][]Fig4Series
}

// Fig4 compares Rapid7 and Censys, certificates alone vs with headers.
func Fig4(e *Env) *Fig4Result {
	out := &Fig4Result{PerHG: make(map[hg.ID][]Fig4Series)}
	for _, v := range []corpus.Vendor{corpus.Rapid7, corpus.Censys} {
		sr := e.Study(v)
		for _, id := range []hg.ID{hg.Google, hg.Facebook, hg.Akamai} {
			certs := make([]int, timeline.Count())
			either := make([]int, timeline.Count())
			both := make([]int, timeline.Count())
			for i, r := range sr.Results {
				if r == nil {
					continue
				}
				hr := r.PerHG[id]
				certs[i] = len(hr.CandidateASes)
				either[i] = len(hr.ConfirmedByEitherASes)
				both[i] = len(hr.ConfirmedByBothASes)
			}
			out.PerHG[id] = append(out.PerHG[id],
				Fig4Series{Vendor: v, Mode: "certs", Counts: certs},
				Fig4Series{Vendor: v, Mode: "either", Counts: either},
				Fig4Series{Vendor: v, Mode: "both", Counts: both},
			)
		}
	}
	return out
}

// Render implements Renderer.
func (f *Fig4Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4 — dataset comparison (# ASes): certs only vs certs+headers\n")
	for _, id := range []hg.ID{hg.Google, hg.Facebook, hg.Akamai} {
		fmt.Fprintf(&b, "--- %s ---\n%s\n", id, seriesHeader())
		for _, s := range f.PerHG[id] {
			b.WriteString(seriesRow(fmt.Sprintf("%s/%s", s.Vendor[:2], s.Mode), s.Counts) + "\n")
		}
	}
	return b.String()
}

// Fig5Result reproduces Figure 5: per-snapshot footprints grouped by AS
// customer-cone category, for the top-4 hypergiants.
type Fig5Result struct {
	// PerHG[id][category][snapshot]
	PerHG map[hg.ID][astopo.NumCategories][]int
	// BasePopulation is the category share of all active ASes at the
	// last snapshot, for the §6.3 over/under-representation discussion.
	BasePopulation [astopo.NumCategories]float64
}

// Fig5 classifies every confirmed hosting AS by its cone size.
func Fig5(e *Env) *Fig5Result {
	sr := e.Study(corpus.Rapid7)
	out := &Fig5Result{PerHG: make(map[hg.ID][astopo.NumCategories][]int)}
	for _, id := range hg.Top4() {
		var series [astopo.NumCategories][]int
		for c := range series {
			series[c] = make([]int, timeline.Count())
		}
		for _, s := range timeline.All() {
			for _, sets := range []map[astopo.ASN]struct{}{top4SetsAt(sr, s)[id]} {
				for as := range sets {
					series[e.CategoryOf(as, s)][s]++
				}
			}
		}
		out.PerHG[id] = series
	}
	out.BasePopulation = e.World.Graph().CategoryShares(LastSnapshot())
	return out
}

// Render implements Renderer.
func (f *Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5 — footprint by AS customer-cone category (# ASes)\n")
	for _, id := range hg.Top4() {
		fmt.Fprintf(&b, "--- %s ---\n%s\n", id, seriesHeader())
		series := f.PerHG[id]
		for _, c := range astopo.AllCategories() {
			b.WriteString(seriesRow(c.String(), series[c]) + "\n")
		}
	}
	b.WriteString("base AS population shares: ")
	for _, c := range astopo.AllCategories() {
		fmt.Fprintf(&b, "%s=%.1f%% ", c, 100*f.BasePopulation[c])
	}
	b.WriteString("\n")
	return b.String()
}

// Fig10Result reproduces Figure 10: how many of the top-4 hypergiants
// each hosting AS runs.
type Fig10Result struct {
	// Dist[s][k] is the number of ASes hosting exactly k+1 of the top-4
	// at snapshot s.
	Dist [][4]int
	// PctTop4 is the share of all HG-hosting ASes that host at least
	// one top-4 HG (the ~97% annotations).
	PctTop4 []float64
	// Persistent (Fig 10a): among ASes hosting a top-4 HG in *every*
	// snapshot they appear, the distribution of top-4 count at the
	// first and last snapshots.
	PersistentFirst, PersistentLast [4]int
}

// Fig10 computes co-hosting distributions.
func Fig10(e *Env) *Fig10Result {
	sr := e.Study(corpus.Rapid7)
	out := &Fig10Result{
		Dist:    make([][4]int, timeline.Count()),
		PctTop4: make([]float64, timeline.Count()),
	}
	alwaysHosting := make(map[astopo.ASN]int) // AS → #snapshots hosting ≥1 top-4
	for _, s := range timeline.All() {
		r := sr.Results[s]
		if r == nil {
			continue
		}
		sets := top4SetsAt(sr, s)
		counts := make(map[astopo.ASN]int)
		for _, id := range hg.Top4() {
			for as := range sets[id] {
				counts[as]++
			}
		}
		for as, k := range counts {
			if k >= 1 && k <= 4 {
				out.Dist[s][k-1]++
			}
			alwaysHosting[as]++
		}
		anyHG := make(map[astopo.ASN]struct{})
		for _, hr := range r.PerHG {
			for as := range hr.ConfirmedASes {
				anyHG[as] = struct{}{}
			}
		}
		for as := range r.PerHG[hg.Netflix].ExpiredASes {
			anyHG[as] = struct{}{}
		}
		if len(anyHG) > 0 {
			out.PctTop4[s] = 100 * float64(len(counts)) / float64(len(anyHG))
			if out.PctTop4[s] > 100 {
				out.PctTop4[s] = 100
			}
		}
	}
	// Persistent hosts: hosting in every snapshot of the window.
	firstSets := top4SetsAt(sr, 0)
	lastSets := top4SetsAt(sr, LastSnapshot())
	for as, n := range alwaysHosting {
		if n < timeline.Count() {
			continue
		}
		count := func(sets map[hg.ID]map[astopo.ASN]struct{}) int {
			k := 0
			for _, id := range hg.Top4() {
				if _, ok := sets[id][as]; ok {
					k++
				}
			}
			return k
		}
		if k := count(firstSets); k >= 1 {
			out.PersistentFirst[k-1]++
		}
		if k := count(lastSets); k >= 1 {
			out.PersistentLast[k-1]++
		}
	}
	return out
}

// Render implements Renderer.
func (f *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 10b — ASes by number of top-4 HGs hosted (and % of all HG hosts)\n")
	fmt.Fprintf(&b, "%-10s %8s %8s %8s %8s %9s\n", "snapshot", "1 HG", "2 HGs", "3 HGs", "4 HGs", "% top-4")
	for _, s := range timeline.All() {
		d := f.Dist[s]
		fmt.Fprintf(&b, "%-10s %8d %8d %8d %8d %8.1f%%\n", s.Label(), d[0], d[1], d[2], d[3], f.PctTop4[s])
	}
	fmt.Fprintf(&b, "Figure 10a — persistent hosts: first %v, last %v (by #top-4 hosted 1..4)\n",
		f.PersistentFirst, f.PersistentLast)
	return b.String()
}

// Fig11Result reproduces Figure 11: the share of each hypergiant's
// serving IPs covered by its ten largest certificate groups.
type Fig11Result struct {
	// Shares[id][snapshot] is the top-10 groups' percentage shares,
	// largest first.
	Shares map[hg.ID][][]float64
}

// Fig11 measures certificate-group concentration for Google and Facebook.
func Fig11(e *Env) *Fig11Result {
	sr := e.Study(corpus.Rapid7)
	out := &Fig11Result{Shares: make(map[hg.ID][][]float64)}
	for _, id := range []hg.ID{hg.Google, hg.Facebook} {
		perSnap := make([][]float64, timeline.Count())
		for i, r := range sr.Results {
			if r == nil {
				continue
			}
			groups := r.PerHG[id].CertIPGroups
			var counts []int
			total := 0
			for _, c := range groups {
				counts = append(counts, c)
				total += c
			}
			sort.Sort(sort.Reverse(sort.IntSlice(counts)))
			if len(counts) > 10 {
				counts = counts[:10]
			}
			shares := make([]float64, len(counts))
			for j, c := range counts {
				if total > 0 {
					shares[j] = 100 * float64(c) / float64(total)
				}
			}
			perSnap[i] = shares
		}
		out.Shares[id] = perSnap
	}
	return out
}

// Render implements Renderer.
func (f *Fig11Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 11 — % of serving IPs per top-10 certificate group\n")
	for _, id := range []hg.ID{hg.Google, hg.Facebook} {
		fmt.Fprintf(&b, "--- %s ---\n", id)
		for _, s := range timeline.All() {
			shares := f.Shares[id][s]
			fmt.Fprintf(&b, "%-10s", s.Label())
			for _, sh := range shares {
				fmt.Fprintf(&b, " %5.1f", sh)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Fig14Result reproduces Figure 14: ASes hosting at least one top-4 HG
// in at least 25% / 50% of the snapshots, by number of top-4 HGs hosted
// at their peak.
type Fig14Result struct {
	AtLeast25, AtLeast50 [4]int
	Total25, Total50     int
}

// Fig14 computes hosting persistence distributions.
func Fig14(e *Env) *Fig14Result {
	sr := e.Study(corpus.Rapid7)
	hostedSnapshots := make(map[astopo.ASN]int)
	maxHGs := make(map[astopo.ASN]int)
	snaps := 0
	for _, s := range timeline.All() {
		if sr.Results[s] == nil {
			continue
		}
		snaps++
		sets := top4SetsAt(sr, s)
		counts := make(map[astopo.ASN]int)
		for _, id := range hg.Top4() {
			for as := range sets[id] {
				counts[as]++
			}
		}
		for as, k := range counts {
			hostedSnapshots[as]++
			if k > maxHGs[as] {
				maxHGs[as] = k
			}
		}
	}
	out := &Fig14Result{}
	for as, n := range hostedSnapshots {
		k := maxHGs[as]
		if k < 1 || k > 4 {
			continue
		}
		if float64(n) >= 0.25*float64(snaps) {
			out.AtLeast25[k-1]++
			out.Total25++
		}
		if float64(n) >= 0.50*float64(snaps) {
			out.AtLeast50[k-1]++
			out.Total50++
		}
	}
	return out
}

// Render implements Renderer.
func (f *Fig14Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 14 — ASes hosting ≥1 top-4 HG by persistence (by peak #top-4 hosted 1..4)\n")
	fmt.Fprintf(&b, "≥25%% of snapshots: %v (total %d)\n", f.AtLeast25, f.Total25)
	fmt.Fprintf(&b, "≥50%% of snapshots: %v (total %d)\n", f.AtLeast50, f.Total50)
	return b.String()
}
