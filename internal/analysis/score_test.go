package analysis

import (
	"testing"

	"offnetscope/internal/astopo"
	"offnetscope/internal/core"
	"offnetscope/internal/hg"
	"offnetscope/internal/timeline"
)

func asSet(ases ...astopo.ASN) map[astopo.ASN]struct{} {
	out := make(map[astopo.ASN]struct{}, len(ases))
	for _, as := range ases {
		out[as] = struct{}{}
	}
	return out
}

func TestScoreSets(t *testing.T) {
	cases := []struct {
		name     string
		truth    []astopo.ASN
		inferred map[astopo.ASN]struct{}
		want     HGScore
	}{
		{
			name: "zero footprint",
			want: HGScore{},
		},
		{
			name:     "perfect match",
			truth:    []astopo.ASN{1, 2, 3},
			inferred: asSet(1, 2, 3),
			want:     HGScore{Truth: 3, Inferred: 3, Both: 3, Recall: 100, Precision: 100},
		},
		{
			name:     "partial overlap",
			truth:    []astopo.ASN{1, 2, 3, 4},
			inferred: asSet(3, 4, 5),
			want:     HGScore{Truth: 4, Inferred: 3, Both: 2, Recall: 50, Precision: 100.0 * 2 / 3},
		},
		{
			name:  "nothing inferred",
			truth: []astopo.ASN{1, 2},
			want:  HGScore{Truth: 2},
		},
		{
			name:     "everything spurious",
			inferred: asSet(7, 8),
			want:     HGScore{Inferred: 2},
		},
	}
	for _, c := range cases {
		if got := ScoreSets(c.truth, c.inferred); got != c.want {
			t.Errorf("%s: ScoreSets = %+v, want %+v", c.name, got, c.want)
		}
	}
}

// fakeTruth is a static ground truth for scorer unit tests.
type fakeTruth map[hg.ID][]astopo.ASN

func (f fakeTruth) TrueOffNetASes(id hg.ID, _ timeline.Snapshot) []astopo.ASN { return f[id] }

// fakeStudy builds a StudyResult whose final snapshot confirms the given
// AS sets and whose coverage is the listed snapshots.
func fakeStudy(covered []timeline.Snapshot, confirmed map[hg.ID][]astopo.ASN) *core.StudyResult {
	n := timeline.Count()
	sr := &core.StudyResult{Results: make([]*core.Result, n)}
	for _, s := range covered {
		r := &core.Result{PerHG: make(map[hg.ID]*core.HGResult, hg.Count)}
		for _, h := range hg.All() {
			r.PerHG[h.ID] = &core.HGResult{}
		}
		sr.Results[s] = r
	}
	last := covered[len(covered)-1]
	for id, ases := range confirmed {
		sr.Results[last].PerHG[id].ConfirmedASes = asSet(ases...)
	}
	return sr
}

func TestScoreStudyCoverageAndRows(t *testing.T) {
	truth := fakeTruth{hg.Google: {1, 2, 3, 4}, hg.Akamai: {10}}
	covered := []timeline.Snapshot{0, 1, 2, 5, 9}
	sr := fakeStudy(covered, map[hg.ID][]astopo.ASN{hg.Google: {2, 3, 4, 5}})

	sc := ScoreStudy(truth, sr)
	if sc.Snapshot != 9 {
		t.Fatalf("scored at %v, want last covered snapshot 9", sc.Snapshot)
	}
	if sc.Covered != len(covered) || sc.Total != timeline.Count() {
		t.Errorf("coverage %d/%d, want %d/%d", sc.Covered, sc.Total, len(covered), timeline.Count())
	}
	wantCov := 100 * float64(len(covered)) / float64(timeline.Count())
	if sc.Coverage != wantCov {
		t.Errorf("coverage pct = %v, want %v", sc.Coverage, wantCov)
	}
	if len(sc.Rows) != 2 {
		t.Fatalf("rows = %+v, want Google and Akamai", sc.Rows)
	}
	// Sorted by descending truth: Google (4) before Akamai (1).
	if sc.Rows[0].HG != hg.Google || sc.Rows[1].HG != hg.Akamai {
		t.Errorf("row order = %v, %v", sc.Rows[0].HG, sc.Rows[1].HG)
	}
	if g := sc.Rows[0]; g.Both != 3 || g.Recall != 75 || g.Precision != 75 {
		t.Errorf("Google row = %+v", g)
	}
	if a := sc.Rows[1]; a.Truth != 1 || a.Inferred != 0 || a.Recall != 0 {
		t.Errorf("Akamai row = %+v", a)
	}

	prec, rec := sc.MicroAverage()
	if wantPrec := 75.0; prec != wantPrec {
		t.Errorf("micro precision = %v, want %v", prec, wantPrec)
	}
	if wantRec := 100.0 * 3 / 5; rec != wantRec {
		t.Errorf("micro recall = %v, want %v", rec, wantRec)
	}
}

func TestMicroAverageEmptySidesScoreFull(t *testing.T) {
	empty := &ScoreResult{}
	if p, r := empty.MicroAverage(); p != 100 || r != 100 {
		t.Errorf("empty matrix micro-average = %v/%v, want 100/100", p, r)
	}
	onlyTruth := &ScoreResult{Rows: []HGScore{{Truth: 5}}}
	if p, r := onlyTruth.MicroAverage(); p != 100 || r != 0 {
		t.Errorf("nothing-inferred micro-average = %v/%v, want 100/0", p, r)
	}
}
