package analysis

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"offnetscope/internal/astopo"
	"offnetscope/internal/hg"
	"offnetscope/internal/timeline"
)

// CSVTables is implemented by experiment results that can export their
// underlying data as CSV tables (name → rows including a header row),
// so the paper's figures can be re-plotted with any tool.
type CSVTables interface {
	CSVTables() map[string][][]string
}

// WriteCSV exports every table of a CSVTables-implementing result under
// dir, one file per table.
func WriteCSV(dir string, r Renderer) ([]string, error) {
	ct, ok := r.(CSVTables)
	if !ok {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	names := make([]string, 0)
	tables := ct.CSVTables()
	for name := range tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(dir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return written, err
		}
		w := csv.NewWriter(f)
		if err := w.WriteAll(tables[name]); err != nil {
			f.Close()
			return written, err
		}
		w.Flush()
		if err := f.Close(); err != nil {
			return written, err
		}
		written = append(written, path)
	}
	return written, nil
}

// seriesTable renders labelled per-snapshot series as CSV rows.
func seriesTable(labels []string, series [][]int) [][]string {
	head := []string{"snapshot"}
	head = append(head, labels...)
	rows := [][]string{head}
	for _, s := range timeline.All() {
		row := []string{s.Label()}
		for _, col := range series {
			row = append(row, fmt.Sprint(col[s]))
		}
		rows = append(rows, row)
	}
	return rows
}

// CSVTables implements CSVTables for Figure 2.
func (f *Fig2Result) CSVTables() map[string][][]string {
	rows := [][]string{{"snapshot", "total_ips", "pct_hg_onnet", "pct_hg_offnet"}}
	for _, s := range timeline.All() {
		rows = append(rows, []string{
			s.Label(), fmt.Sprint(f.TotalIPs[s]),
			fmt.Sprintf("%.3f", f.PctOnNetHG[s]), fmt.Sprintf("%.3f", f.PctOffNetHG[s]),
		})
	}
	return map[string][][]string{"fig2_ip_timeline": rows}
}

// CSVTables implements CSVTables for Figure 3.
func (f *Fig3Result) CSVTables() map[string][][]string {
	return map[string][][]string{
		"fig3_growth": seriesTable(
			[]string{"google", "facebook", "akamai", "netflix_initial", "netflix_expired", "netflix_nontls"},
			[][]int{f.Google, f.Facebook, f.Akamai, f.NetflixInitial, f.NetflixExpired, f.NetflixNonTLS},
		),
	}
}

// CSVTables implements CSVTables for Figure 4.
func (f *Fig4Result) CSVTables() map[string][][]string {
	out := make(map[string][][]string)
	for id, series := range f.PerHG {
		labels := make([]string, len(series))
		cols := make([][]int, len(series))
		for i, s := range series {
			labels[i] = fmt.Sprintf("%s_%s", s.Vendor, s.Mode)
			cols[i] = s.Counts
		}
		out["fig4_"+idSlug(id)] = seriesTable(labels, cols)
	}
	return out
}

// CSVTables implements CSVTables for Figure 5.
func (f *Fig5Result) CSVTables() map[string][][]string {
	out := make(map[string][][]string)
	for id, series := range f.PerHG {
		labels := make([]string, 0, astopo.NumCategories)
		cols := make([][]int, 0, astopo.NumCategories)
		for _, c := range astopo.AllCategories() {
			labels = append(labels, c.String())
			cols = append(cols, series[c])
		}
		out["fig5_"+idSlug(id)] = seriesTable(labels, cols)
	}
	return out
}

// CSVTables implements CSVTables for Figure 6.
func (f *Fig6Result) CSVTables() map[string][][]string {
	out := make(map[string][][]string)
	for _, cont := range astopo.AllContinents() {
		labels := make([]string, 0, len(fig6HGs))
		cols := make([][]int, 0, len(fig6HGs))
		for _, id := range fig6HGs {
			labels = append(labels, idSlug(id))
			cols = append(cols, f.Counts[cont][id])
		}
		out["fig6_"+slug(cont.String())] = seriesTable(labels, cols)
	}
	return out
}

// CSVTables implements CSVTables for the coverage maps of Figure 7.
func (f *Fig7Result) CSVTables() map[string][][]string {
	out := make(map[string][][]string)
	for _, m := range f.Maps {
		out["fig7_"+idSlug(m.HG)] = coverageTable(m)
	}
	return out
}

// CSVTables implements CSVTables for Figure 8.
func (f *Fig8Result) CSVTables() map[string][][]string {
	return map[string][][]string{
		"fig8_google_direct": coverageTable(f.Direct),
		"fig8_google_cones":  coverageTable(f.Cones),
	}
}

// CSVTables implements CSVTables for Figure 9.
func (f *Fig9Result) CSVTables() map[string][][]string {
	return map[string][][]string{
		"fig9_facebook_2017": coverageTable(f.Early),
		"fig9_facebook_2021": coverageTable(f.Late),
	}
}

func coverageTable(m CoverageMap) [][]string {
	rows := [][]string{{"country", "coverage_pct"}}
	var codes []string
	for code := range m.ByCountry {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	for _, code := range codes {
		rows = append(rows, []string{code, fmt.Sprintf("%.2f", m.ByCountry[code])})
	}
	rows = append(rows, []string{"WORLD", fmt.Sprintf("%.2f", m.World)})
	return rows
}

// CSVTables implements CSVTables for Table 2.
func (t *Table2Result) CSVTables() map[string][][]string {
	rows := [][]string{{"corpus", "cert_ips", "cert_ases", "unique_ases", "any_hg_ases", "google", "netflix", "facebook", "akamai"}}
	for _, r := range t.Rows {
		rows = append(rows, []string{
			string(r.Vendor), fmt.Sprint(r.CertIPs), fmt.Sprint(r.CertASes),
			fmt.Sprint(r.UniqueASes), fmt.Sprint(r.AnyHGASes),
			fmt.Sprint(r.PerTop4ASes[hg.Google]), fmt.Sprint(r.PerTop4ASes[hg.Netflix]),
			fmt.Sprint(r.PerTop4ASes[hg.Facebook]), fmt.Sprint(r.PerTop4ASes[hg.Akamai]),
		})
	}
	return map[string][][]string{"table2_corpuses": rows}
}

// CSVTables implements CSVTables for Table 3.
func (t *Table3Result) CSVTables() map[string][][]string {
	rows := [][]string{{"rank", "hypergiant", "first", "first_certs_only", "max", "max_at", "last", "last_certs_only"}}
	for i, r := range t.Rows {
		rows = append(rows, []string{
			fmt.Sprint(i + 1), r.HG.String(),
			fmt.Sprint(r.First), fmt.Sprint(r.FirstCertsOnly),
			fmt.Sprint(r.Max), r.MaxAt.Label(),
			fmt.Sprint(r.Last), fmt.Sprint(r.LastCertsOnly),
		})
	}
	return map[string][][]string{"table3_footprints": rows}
}

func idSlug(id hg.ID) string { return slug(id.String()) }

func slug(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ':
			out = append(out, '_')
		}
	}
	return string(out)
}
