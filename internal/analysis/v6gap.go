package analysis

import (
	"fmt"
	"strings"

	"offnetscope/internal/core"
	"offnetscope/internal/hg"
	"offnetscope/internal/scanners"
	"offnetscope/internal/timeline"
	"offnetscope/internal/worldsim"
)

func init() {
	register("v6gap", "§7 limitation: IPv6-only networks invisible to IPv4 corpuses", func(e *Env) Renderer { return V6Gap(e) })
}

// V6GapRow is one hypergiant's visibility loss to IPv6-only hosting ASes.
type V6GapRow struct {
	HG            hg.ID
	Truth         int // ground-truth hosting ASes
	V6OnlyHosting int // of which IPv6-only
	Inferred      int
	Recall        float64
}

// V6GapResult quantifies the §7 IPv6 limitation: off-nets inside
// IPv6-only operators never appear in an IPv4 certificate corpus, so
// recall is capped below 100 % no matter how good the pipeline is.
type V6GapResult struct {
	Snapshot timeline.Snapshot
	Frac     float64
	Rows     []V6GapRow
}

// V6Gap rebuilds the world with a share of IPv6-only eyeball networks
// and measures the resulting recall ceiling.
func V6Gap(e *Env) *V6GapResult {
	s := LastSnapshot()
	const frac = 0.06
	cfg := e.World.Config()
	cfg.IPv6OnlyASFrac = frac
	w, err := worldsim.New(cfg)
	if err != nil {
		return &V6GapResult{Snapshot: s, Frac: frac}
	}
	pipeline := &core.Pipeline{
		Trust:  w.TrustStore(),
		Orgs:   w.Orgs(),
		Mapper: func(s timeline.Snapshot) core.IPMapper { return w.IP2AS(s) },
		Opts:   core.DefaultOptions(),
	}
	res := pipeline.Run(scanners.Scan(w, scanners.Rapid7Profile(), s))

	out := &V6GapResult{Snapshot: s, Frac: frac}
	for _, id := range hg.Top4() {
		truth := w.TrueOffNetASes(id, s)
		inferred := res.PerHG[id].ConfirmedASes
		v6 := 0
		hits := 0
		for _, as := range truth {
			if w.IPv6Only(as) {
				v6++
			}
			if _, ok := inferred[as]; ok {
				hits++
			}
		}
		row := V6GapRow{HG: id, Truth: len(truth), V6OnlyHosting: v6, Inferred: len(inferred)}
		if len(truth) > 0 {
			row.Recall = 100 * float64(hits) / float64(len(truth))
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Render implements Renderer.
func (v *V6GapResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "IPv6 limitation @ %s: %.0f%% of eyeball ASes are IPv6-only\n", v.Snapshot.Label(), v.Frac*100)
	fmt.Fprintf(&b, "%-10s %7s %9s %9s %8s\n", "HG", "truth", "v6-only", "inferred", "recall")
	for _, r := range v.Rows {
		fmt.Fprintf(&b, "%-10s %7d %9d %9d %7.1f%%\n", r.HG, r.Truth, r.V6OnlyHosting, r.Inferred, r.Recall)
	}
	b.WriteString("IPv4 corpuses cannot see IPv6-only deployments; the recall ceiling is 100% minus the v6-only share.\n")
	return b.String()
}
