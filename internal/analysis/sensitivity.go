package analysis

import (
	"fmt"
	"strings"

	"offnetscope/internal/core"
	"offnetscope/internal/hg"
	"offnetscope/internal/scanners"
	"offnetscope/internal/timeline"
	"offnetscope/internal/worldsim"
)

func init() {
	register("sensitivity", "Robustness: conclusions stable across seeds and scales", func(e *Env) Renderer { return Sensitivity(e) })
}

// SensitivityRow is one world variant's headline shape numbers at the
// final snapshot.
type SensitivityRow struct {
	Label string
	// Confirmed footprints of the top-4 at 2021-04.
	Confirmed map[hg.ID]int
	// GoogleOverAkamai is the headline ratio the paper's Table 3 ranking
	// rests on (≈3.5 in the paper).
	GoogleOverAkamai float64
	// AkamaiDecline is peak/final for Akamai (paper: 1463/1094 ≈ 1.34),
	// probed at the 2018-04 peak region.
	AkamaiDecline float64
}

// SensitivityResult verifies that the qualitative conclusions — Table
// 3's ranking, the Google:Akamai ratio, Akamai's peak-and-decline — are
// properties of the modelled world, not artefacts of one seed or one
// scale.
type SensitivityResult struct {
	Rows []SensitivityRow
}

// Sensitivity rebuilds the world under different seeds and scales and
// recomputes the headline numbers.
func Sensitivity(e *Env) *SensitivityResult {
	base := e.World.Config()
	variants := []struct {
		label string
		cfg   worldsim.Config
	}{
		{fmt.Sprintf("base (seed=%d scale=%g)", base.Seed, base.Scale), base},
		{"different seed", worldsim.Config{Seed: base.Seed + 1000, Scale: base.Scale}},
		{"half scale", worldsim.Config{Seed: base.Seed, Scale: base.Scale / 2}},
	}
	out := &SensitivityResult{}
	for _, v := range variants {
		w, err := worldsim.New(v.cfg)
		if err != nil {
			continue
		}
		pipeline := &core.Pipeline{
			Trust:  w.TrustStore(),
			Orgs:   w.Orgs(),
			Mapper: func(s timeline.Snapshot) core.IPMapper { return w.IP2AS(s) },
			Opts:   core.DefaultOptions(),
		}
		atEnd := pipeline.Run(scanners.Scan(w, scanners.Rapid7Profile(), LastSnapshot()))
		atPeak := pipeline.Run(scanners.Scan(w, scanners.Rapid7Profile(), 18)) // Akamai peak region

		row := SensitivityRow{Label: v.label, Confirmed: make(map[hg.ID]int)}
		for _, id := range hg.Top4() {
			row.Confirmed[id] = len(atEnd.PerHG[id].ConfirmedASes)
		}
		if ak := row.Confirmed[hg.Akamai]; ak > 0 {
			row.GoogleOverAkamai = float64(row.Confirmed[hg.Google]) / float64(ak)
			row.AkamaiDecline = float64(len(atPeak.PerHG[hg.Akamai].ConfirmedASes)) / float64(ak)
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Render implements Renderer.
func (s *SensitivityResult) Render() string {
	var b strings.Builder
	b.WriteString("Sensitivity — headline shapes across world variants (2021-04)\n")
	fmt.Fprintf(&b, "%-26s %7s %8s %9s %7s %8s %9s\n",
		"variant", "Google", "Netflix", "Facebook", "Akamai", "G/Akam", "Akam peak/end")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-26s %7d %8d %9d %7d %8.2f %9.2f\n",
			r.Label, r.Confirmed[hg.Google], r.Confirmed[hg.Netflix],
			r.Confirmed[hg.Facebook], r.Confirmed[hg.Akamai],
			r.GoogleOverAkamai, r.AkamaiDecline)
	}
	b.WriteString("paper: ranking G>F≈N>A, Google/Akamai ≈ 3.5, Akamai peak/end ≈ 1.34\n")
	return b.String()
}
