package analysis

import (
	"os"
	"strings"
	"sync"
	"testing"

	"offnetscope/internal/timeline"

	"offnetscope/internal/astopo"
	"offnetscope/internal/hg"
	"offnetscope/internal/worldsim"
)

var (
	envOnce sync.Once
	env     *Env
)

func testEnv(t testing.TB) *Env {
	envOnce.Do(func() {
		e, err := NewEnv(worldsim.Config{Seed: 42, Scale: 0.03})
		if err != nil {
			panic(err)
		}
		env = e
	})
	if env == nil {
		t.Fatal("env failed to build")
	}
	return env
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table2", "table3", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"val-cross", "val-sample", "val-truth", "val-prior", "ablation",
		"a3-certs", "hideseek", "v6gap", "methods", "sensitivity", "whatif",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(Experiments()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(Experiments()), len(want))
	}
}

func TestTable2(t *testing.T) {
	e := testEnv(t)
	tbl := Table2(e)
	if len(tbl.Rows) != 3 {
		t.Fatalf("table 2 has %d rows", len(tbl.Rows))
	}
	byVendor := map[string]Table2Row{}
	for _, r := range tbl.Rows {
		byVendor[string(r.Vendor)] = r
	}
	r7, cs, ac := byVendor["rapid7"], byVendor["censys"], byVendor["certigo"]
	// The authors' slow scan found ~20% more IPs than the projects' scans.
	if float64(ac.CertIPs) < 1.05*float64(r7.CertIPs) {
		t.Errorf("certigo IPs (%d) should clearly exceed Rapid7 (%d)", ac.CertIPs, r7.CertIPs)
	}
	// But the AS-level footprints are very similar across corpuses.
	for _, id := range hg.Top4() {
		a, b := r7.PerTop4ASes[id], cs.PerTop4ASes[id]
		if a == 0 || b == 0 {
			t.Fatalf("%v footprint empty in a corpus", id)
		}
		ratio := float64(a) / float64(b)
		if ratio < 0.7 || ratio > 1.4 {
			t.Errorf("%v differs too much across corpuses: R7 %d vs CS %d", id, a, b)
		}
	}
	if r7.AnyHGASes == 0 {
		t.Error("no ASes with any HG")
	}
	if out := tbl.Render(); !strings.Contains(out, "rapid7") {
		t.Error("render missing rapid7 row")
	}
}

func TestTable3(t *testing.T) {
	e := testEnv(t)
	tbl := Table3(e)
	if len(tbl.Rows) < 8 {
		t.Fatalf("table 3 has only %d rows", len(tbl.Rows))
	}
	if tbl.Rows[0].HG != hg.Google {
		t.Errorf("rank 1 = %v, want Google", tbl.Rows[0].HG)
	}
	rank := map[hg.ID]int{}
	for i, r := range tbl.Rows {
		rank[r.HG] = i
	}
	for _, id := range hg.Top4() {
		if rank[id] > 4 {
			t.Errorf("%v ranked %d; top-4 should lead the table", id, rank[id]+1)
		}
	}
	for _, r := range tbl.Rows {
		switch r.HG {
		case hg.Facebook:
			if r.First != 0 {
				t.Errorf("Facebook 2013 = %d, want 0", r.First)
			}
			if r.MaxAt != LastSnapshot() {
				t.Errorf("Facebook max at %v, want 2021-04", r.MaxAt.Label())
			}
		case hg.Akamai:
			if r.MaxAt >= 26 || r.MaxAt <= 10 {
				t.Errorf("Akamai max at %v, want mid-study", r.MaxAt.Label())
			}
			if r.Last >= r.Max {
				t.Error("Akamai should end below its peak")
			}
		case hg.Apple:
			if r.Last != 0 || r.LastCertsOnly == 0 {
				t.Errorf("Apple end = %d (%d certs-only), want 0 with a certs-only tail", r.Last, r.LastCertsOnly)
			}
		}
	}
}

func TestFig2(t *testing.T) {
	e := testEnv(t)
	f := Fig2(e)
	first, last := f.TotalIPs[0], f.TotalIPs[len(f.TotalIPs)-1]
	if first == 0 || last < 2*first {
		t.Errorf("raw IP population should grow substantially: %d → %d", first, last)
	}
	for i := range f.TotalIPs {
		total := f.PctOnNetHG[i] + f.PctOffNetHG[i]
		if total < 0 || total > 15 {
			t.Errorf("HG share at %d = %.1f%%, implausible", i, total)
		}
	}
	if f.PctOffNetHG[len(f.PctOffNetHG)-1] <= 0 {
		t.Error("off-net HG share must be positive at the end")
	}
}

func TestFig3Shapes(t *testing.T) {
	e := testEnv(t)
	f := Fig3(e)
	if f.Google[30] <= f.Google[0] {
		t.Error("Google must grow")
	}
	if f.Facebook[0] != 0 || f.Facebook[30] == 0 {
		t.Error("Facebook must start at 0 and end positive")
	}
	// Netflix envelope: expired ≥ initial; non-TLS ≥ expired, visible
	// gap during the era.
	for i := range f.NetflixInitial {
		if f.NetflixExpired[i] < f.NetflixInitial[i] {
			t.Fatalf("envelope violated at %d", i)
		}
		if f.NetflixNonTLS[i] < f.NetflixExpired[i] {
			t.Fatalf("non-TLS envelope violated at %d", i)
		}
	}
	if f.NetflixExpired[18] <= f.NetflixInitial[18] {
		t.Error("no expired-cert gap during the Netflix era")
	}
}

func TestFig4(t *testing.T) {
	e := testEnv(t)
	f := Fig4(e)
	for _, id := range []hg.ID{hg.Google, hg.Facebook, hg.Akamai} {
		series := f.PerHG[id]
		if len(series) != 6 {
			t.Fatalf("%v has %d series, want 6", id, len(series))
		}
		for _, s := range series {
			if s.Vendor == "censys" {
				for i := 0; i < 24; i++ {
					if s.Counts[i] != 0 {
						t.Fatalf("Censys has data before 2019-10 at %d", i)
					}
				}
				if s.Counts[30] == 0 {
					t.Errorf("%v censys/%s empty at the end", id, s.Mode)
				}
			}
		}
		// Fig 4's point: certs-only and certs+headers nearly converge.
		var certs, either []int
		for _, s := range series {
			if s.Vendor == "rapid7" && s.Mode == "certs" {
				certs = s.Counts
			}
			if s.Vendor == "rapid7" && s.Mode == "either" {
				either = s.Counts
			}
		}
		if certs[30] == 0 || float64(either[30]) < 0.75*float64(certs[30]) {
			t.Errorf("%v: headers lost too much: certs %d vs either %d", id, certs[30], either[30])
		}
	}
}

func TestFig5Demographics(t *testing.T) {
	e := testEnv(t)
	f := Fig5(e)
	for _, id := range []hg.ID{hg.Google, hg.Facebook} {
		series := f.PerHG[id]
		last := len(series[astopo.Stub]) - 1
		total := 0
		for _, c := range astopo.AllCategories() {
			total += series[c][last]
		}
		if total == 0 {
			t.Fatalf("%v has no classified hosts", id)
		}
		stubShare := float64(series[astopo.Stub][last]) / float64(total)
		baseStub := f.BasePopulation[astopo.Stub]
		// §6.3: stubs are heavily under-represented among hosts
		// (~29% of hosts vs ~85% of all ASes).
		if stubShare >= baseStub {
			t.Errorf("%v stub share %.2f not below base %.2f", id, stubShare, baseStub)
		}
		medShare := float64(series[astopo.Medium][last]) / float64(total)
		if medShare <= f.BasePopulation[astopo.Medium] {
			t.Errorf("%v medium ASes not over-represented: %.3f vs %.3f", id, medShare, f.BasePopulation[astopo.Medium])
		}
	}
}

func TestFig6Regional(t *testing.T) {
	e := testEnv(t)
	f := Fig6(e)
	// South-America growth for Google is strong.
	sa := f.Counts[astopo.SouthAmerica][hg.Google]
	if sa[30] <= sa[0]*2 && sa[30] < 10 {
		t.Errorf("Google South America growth too weak: %d → %d", sa[0], sa[30])
	}
	// Alibaba is Asia-centric.
	asia := f.Counts[astopo.Asia][hg.Alibaba][30]
	others := 0
	for _, cont := range astopo.AllContinents() {
		if cont != astopo.Asia {
			others += f.Counts[cont][hg.Alibaba][30]
		}
	}
	if asia < others {
		t.Errorf("Alibaba: Asia %d vs elsewhere %d; should be Asia-dominant", asia, others)
	}
}

func TestFig7Coverage(t *testing.T) {
	e := testEnv(t)
	f := Fig7(e)
	if len(f.Maps) != 3 {
		t.Fatalf("fig 7 has %d maps", len(f.Maps))
	}
	for _, m := range f.Maps {
		if m.World <= 5 || m.World > 100 {
			t.Errorf("%v world coverage = %.1f%%", m.HG, m.World)
		}
		if len(m.ByCountry) == 0 {
			t.Errorf("%v covers no countries", m.HG)
		}
	}
}

func TestFig8ConeExpansion(t *testing.T) {
	e := testEnv(t)
	f := Fig8(e)
	if f.Cones.World < f.Direct.World {
		t.Errorf("cone coverage %.1f below direct %.1f", f.Cones.World, f.Direct.World)
	}
	if len(f.TopGainers) == 0 {
		t.Error("cone expansion should raise some countries")
	}
}

func TestFig9FacebookGrowth(t *testing.T) {
	e := testEnv(t)
	f := Fig9(e)
	if f.Late.World <= f.Early.World {
		t.Errorf("Facebook coverage should grow: %.1f → %.1f", f.Early.World, f.Late.World)
	}
}

func TestFig10Overlap(t *testing.T) {
	e := testEnv(t)
	f := Fig10(e)
	lastD := f.Dist[30]
	if lastD[0]+lastD[1]+lastD[2]+lastD[3] == 0 {
		t.Fatal("no hosting ASes at the end")
	}
	// Multi-HG hosting grows over time (2020: >70% host 2-4).
	multiEarly := f.Dist[0][1] + f.Dist[0][2] + f.Dist[0][3]
	multiLate := lastD[1] + lastD[2] + lastD[3]
	if multiLate <= multiEarly {
		t.Errorf("multi-HG hosting should grow: %d → %d", multiEarly, multiLate)
	}
	// Almost all HG hosts host a top-4 HG (~97%).
	if f.PctTop4[30] < 85 {
		t.Errorf("top-4 share of hosts = %.1f%%, want >85%%", f.PctTop4[30])
	}
}

func TestFig11CertGroups(t *testing.T) {
	e := testEnv(t)
	f := Fig11(e)
	g := f.Shares[hg.Google][30]
	if len(g) == 0 {
		t.Fatal("no Google cert groups")
	}
	if g[0] < 25 {
		t.Errorf("Google top group share = %.1f%%, want dominant (>50%% in the paper)", g[0])
	}
	fbEarly := f.Shares[hg.Facebook][2]
	fbLate := f.Shares[hg.Facebook][30]
	if len(fbEarly) == 0 || len(fbLate) == 0 {
		t.Fatal("missing Facebook group data")
	}
	if fbLate[0] >= fbEarly[0] {
		t.Errorf("Facebook should disaggregate: top share %.1f → %.1f", fbEarly[0], fbLate[0])
	}
}

func TestFig13ConsistentWithFig5(t *testing.T) {
	e := testEnv(t)
	f13 := Fig13(e)
	f5 := Fig5(e)
	// Summing Fig 13 over continents reproduces Fig 5 (minus unmapped
	// countries and the Large/XLarge fold).
	for _, id := range hg.Top4() {
		sum13 := 0
		for _, cat := range fig13Categories {
			for _, cont := range astopo.AllContinents() {
				sum13 += f13.Counts[id][cat][cont][30]
			}
		}
		sum5 := 0
		for _, c := range astopo.AllCategories() {
			sum5 += f5.PerHG[id][c][30]
		}
		if sum13 == 0 || sum13 > sum5 {
			t.Errorf("%v: fig13 sum %d vs fig5 sum %d", id, sum13, sum5)
		}
	}
}

func TestFig14(t *testing.T) {
	e := testEnv(t)
	f := Fig14(e)
	if f.Total25 < f.Total50 {
		t.Errorf("≥25%% population (%d) must contain the ≥50%% one (%d)", f.Total25, f.Total50)
	}
	if f.Total25 == 0 {
		t.Fatal("no persistent hosts")
	}
}

func TestValCross(t *testing.T) {
	e := testEnv(t)
	v := ValCrossDomain(e)
	if v.OffNets == 0 {
		t.Fatal("no inferred off-nets to validate")
	}
	if v.PctNoValidation < 70 || v.PctNoValidation > 99.5 {
		t.Errorf("no-validation share = %.1f%%, paper reports 89.7%%", v.PctNoValidation)
	}
	// Akamai dominates the validating exceptions (paper: 97%).
	best, bestShare := hg.None, 0.0
	for id, share := range v.ValidatorShare {
		if share > bestShare {
			best, bestShare = id, share
		}
	}
	if best != hg.Akamai {
		t.Errorf("largest validator = %v (%.1f%%), want Akamai", best, bestShare)
	}
}

func TestValSample(t *testing.T) {
	e := testEnv(t)
	v := ValSample(e)
	if v.Sampled == 0 {
		t.Fatal("nothing sampled")
	}
	if v.PctValid > 10 {
		t.Errorf("valid responders = %.2f%%, paper reports 0.1%%", v.PctValid)
	}
	if v.ValidResponders > 0 && v.PctInferred < 60 {
		t.Errorf("inferred share of valid responders = %.1f%%, paper reports 98%%", v.PctInferred)
	}
}

func TestValGroundTruth(t *testing.T) {
	e := testEnv(t)
	v := ValGroundTruth(e)
	found := map[hg.ID]bool{}
	for _, r := range v.Rows {
		found[r.HG] = true
		if hg.IsTop4(r.HG) {
			if r.Recall < 85 {
				t.Errorf("%v recall = %.1f%%", r.HG, r.Recall)
			}
			if r.Precision < 85 {
				t.Errorf("%v precision = %.1f%%", r.HG, r.Precision)
			}
		}
	}
	for _, id := range hg.Top4() {
		if !found[id] {
			t.Errorf("%v missing from ground-truth validation", id)
		}
	}
}

func TestValPrior(t *testing.T) {
	e := testEnv(t)
	v := ValPrior(e)
	if len(v.Rows) != 5 {
		t.Fatalf("prior comparison has %d rows, want 5", len(v.Rows))
	}
	for _, r := range v.Rows {
		if r.PriorASes == 0 {
			t.Errorf("%s: empty prior study", r.Study)
			continue
		}
		if r.PctFound < 80 {
			t.Errorf("%s @ %s: found only %.1f%% of prior ASes", r.Study, r.Snapshot.Label(), r.PctFound)
		}
	}
}

func TestAblations(t *testing.T) {
	e := testEnv(t)
	a := Ablations(e)
	if len(a.Rows) != 4 {
		t.Fatalf("ablations = %d rows", len(a.Rows))
	}
	anyGrew := false
	for _, r := range a.Rows {
		if r.AblatedASes < r.BaselineASes {
			t.Errorf("%s: ablated %d below baseline %d", r.Name, r.AblatedASes, r.BaselineASes)
		}
		if r.AblatedASes > r.BaselineASes {
			anyGrew = true
		}
	}
	if !anyGrew {
		t.Error("no ablation changed anything; filters are dead code?")
	}
}

func TestAllExperimentsRender(t *testing.T) {
	e := testEnv(t)
	for _, exp := range Experiments() {
		out := exp.Run(e).Render()
		if len(strings.TrimSpace(out)) == 0 {
			t.Errorf("%s renders empty output", exp.ID)
		}
	}
}

func TestA3Certs(t *testing.T) {
	e := testEnv(t)
	a := A3Certs(e)
	// Google rotates quarterly: its median lifetime stays ~90 days.
	g := a.Rows[hg.Google][30]
	if g.UniqueCerts == 0 {
		t.Fatal("no Google certificates observed")
	}
	if g.MedianLifetimeDays < 60 || g.MedianLifetimeDays > 120 {
		t.Errorf("Google median lifetime = %d days, want ~90", g.MedianLifetimeDays)
	}
	// Netflix switched to 35-day certificates in 2019 (appendix A.3).
	nfBefore := a.Rows[hg.Netflix][20].MedianLifetimeDays
	nfAfter := a.Rows[hg.Netflix][27].MedianLifetimeDays
	if nfAfter >= nfBefore {
		t.Errorf("Netflix lifetimes should shorten: %d → %d days", nfBefore, nfAfter)
	}
	if nfAfter > 60 {
		t.Errorf("Netflix post-2019 median = %d days, want ~35", nfAfter)
	}
	// Microsoft terms are year-scale throughout.
	if ms := a.Rows[hg.Microsoft][30].MedianLifetimeDays; ms < 300 {
		t.Errorf("Microsoft median lifetime = %d days, want year-scale", ms)
	}
}

func TestHideSeek(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds four worlds")
	}
	e := testEnv(t)
	h := HideSeek(e)
	if len(h.Rows) != 4 {
		t.Fatalf("hide-and-seek has %d scenarios", len(h.Rows))
	}
	base := h.Rows[0]
	if base.Recall[hg.Google] < 85 {
		t.Fatalf("baseline recall = %.1f%%", base.Recall[hg.Google])
	}
	for _, r := range h.Rows[1:] {
		switch r.Scenario {
		case "null default certificates":
			if r.Recall[hg.Google] > base.Recall[hg.Google]/2 {
				t.Errorf("null certs barely hurt: %.1f%%", r.Recall[hg.Google])
			}
		case "strip Organization field":
			if r.Recall[hg.Google] > 5 {
				t.Errorf("stripping the org field should blind the method: %.1f%%", r.Recall[hg.Google])
			}
		case "anonymize debug headers":
			if r.Recall[hg.Google] > 5 {
				t.Errorf("anonymized headers should kill confirmation: %.1f%%", r.Recall[hg.Google])
			}
			// ... except for Netflix, whose default-nginx rule matches
			// generic server software anyway — an emergent weakness of
			// that §4.4 special case.
			if r.Recall[hg.Netflix] < 30 {
				t.Errorf("Netflix nginx rule should survive anonymization: %.1f%%", r.Recall[hg.Netflix])
			}
		}
	}
}

func TestCSVExport(t *testing.T) {
	e := testEnv(t)
	dir := t.TempDir()
	// Every CSV-capable experiment must export parsable tables with a
	// header row and at least one data row.
	exported := 0
	for _, exp := range Experiments() {
		res := exp.Run(e)
		files, err := WriteCSV(dir, res)
		if err != nil {
			t.Fatalf("%s: %v", exp.ID, err)
		}
		exported += len(files)
	}
	if exported < 10 {
		t.Fatalf("only %d CSV files exported", exported)
	}
	// Spot-check fig3's table.
	f3, _ := ByID("fig3")
	files, err := WriteCSV(dir, f3.Run(e))
	if err != nil || len(files) != 1 {
		t.Fatalf("fig3 export: %v %v", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != timeline.Count()+1 {
		t.Fatalf("fig3 csv has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "snapshot,google,facebook") {
		t.Fatalf("fig3 header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "2013-10,") {
		t.Fatalf("fig3 first row = %q", lines[1])
	}
	// Non-CSV experiments export nothing, without error.
	vc, _ := ByID("val-cross")
	files, err = WriteCSV(dir, vc.Run(e))
	if err != nil || len(files) != 0 {
		t.Fatalf("val-cross should export nothing: %v %v", files, err)
	}
}

func TestV6Gap(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds a world")
	}
	e := testEnv(t)
	v := V6Gap(e)
	if len(v.Rows) != 4 {
		t.Fatalf("v6gap rows = %d", len(v.Rows))
	}
	for _, r := range v.Rows {
		if r.Truth == 0 {
			t.Fatalf("%v: empty truth", r.HG)
		}
		// Recall must be capped roughly by the v6-only hosting share.
		ceiling := 100 * float64(r.Truth-r.V6OnlyHosting) / float64(r.Truth)
		if r.Recall > ceiling+0.01 {
			t.Errorf("%v: recall %.1f%% above the v6 ceiling %.1f%%", r.HG, r.Recall, ceiling)
		}
	}
	// At least one hypergiant must actually have v6-only hosts at this
	// scale, or the experiment is vacuous.
	anyV6 := false
	for _, r := range v.Rows {
		if r.V6OnlyHosting > 0 {
			anyV6 = true
		}
	}
	if !anyV6 {
		t.Error("no IPv6-only hosting ASes in the scenario")
	}
}

func TestMethodsComparison(t *testing.T) {
	e := testEnv(t)
	m := Methods(e)
	idx := func(s timeline.Snapshot) int {
		for i, x := range m.Snapshots {
			if x == s {
				return i
			}
		}
		t.Fatalf("snapshot %v not sampled", s)
		return -1
	}
	// Pre-lockdown ECS tracks the certificate method for Google.
	pre := idx(9)
	if m.GoogleECS[pre] == 0 {
		t.Fatal("ECS found nothing pre-lockdown")
	}
	ratio := float64(m.GoogleECS[pre]) / float64(m.GoogleCerts[pre])
	if ratio < 0.6 || ratio > 1.3 {
		t.Errorf("pre-lockdown ECS/certs ratio = %.2f", ratio)
	}
	// Post-lockdown ECS collapses while the certificate method keeps
	// growing — the paper's generality argument.
	post := idx(24)
	if m.GoogleECS[post] > m.GoogleCerts[post]/10 {
		t.Errorf("ECS should collapse after 2016: %d vs certs %d", m.GoogleECS[post], m.GoogleCerts[post])
	}
	if m.GoogleCerts[post] <= m.GoogleCerts[pre] {
		t.Error("certificate method should keep growing")
	}
	// FNA mapping only works once the CDN exists, then tracks certs.
	if m.FacebookFNA[idx(4)] != 0 {
		t.Error("FNA found sites before the CDN existed")
	}
	last := idx(30)
	if m.FacebookFNA[last] == 0 {
		t.Fatal("FNA found nothing at the end")
	}
	fnaRatio := float64(m.FacebookFNA[last]) / float64(m.FacebookCerts[last])
	if fnaRatio < 0.6 || fnaRatio > 1.3 {
		t.Errorf("FNA/certs ratio = %.2f", fnaRatio)
	}
}

func TestSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds worlds")
	}
	e := testEnv(t)
	res := Sensitivity(e)
	if len(res.Rows) != 3 {
		t.Fatalf("sensitivity rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		// Ranking: Google first, Akamai last among the top-4.
		g := r.Confirmed[hg.Google]
		if g == 0 {
			t.Fatalf("%s: empty Google footprint", r.Label)
		}
		for _, id := range []hg.ID{hg.Netflix, hg.Facebook, hg.Akamai} {
			if r.Confirmed[id] > g {
				t.Errorf("%s: %v exceeds Google", r.Label, id)
			}
		}
		if r.GoogleOverAkamai < 2 || r.GoogleOverAkamai > 6 {
			t.Errorf("%s: Google/Akamai ratio = %.2f, paper ≈ 3.5", r.Label, r.GoogleOverAkamai)
		}
		if r.AkamaiDecline <= 1.0 {
			t.Errorf("%s: Akamai peak/end = %.2f, should exceed 1", r.Label, r.AkamaiDecline)
		}
	}
}

func TestWhatIf(t *testing.T) {
	e := testEnv(t)
	w := WhatIf(e)
	if len(w.Rows) == 0 {
		t.Fatal("no what-if recommendations")
	}
	for _, r := range w.Rows {
		if r.After < r.Before {
			t.Errorf("%v in %s: coverage dropped %.1f → %.1f", r.HG, r.Country, r.Before, r.After)
		}
		if r.After > 100 {
			t.Errorf("%v: coverage above 100%%", r.HG)
		}
		if len(r.Picks) == 0 {
			t.Errorf("%v in %s: no picks", r.HG, r.Country)
			continue
		}
		// Picks are ranked by share and none already hosts.
		for i := 1; i < len(r.Picks); i++ {
			if r.Picks[i].Share > r.Picks[i-1].Share {
				t.Errorf("%v: picks not ranked by share", r.HG)
			}
		}
		hosting := hostingSetAt(e, r.HG, LastSnapshot())
		for _, p := range r.Picks {
			if _, already := hosting[p.AS]; already {
				t.Errorf("%v: pick AS%d already hosts", r.HG, p.AS)
			}
		}
	}
}
