package analysis

import (
	"fmt"
	"strings"

	"offnetscope/internal/baselines"
	"offnetscope/internal/corpus"
	"offnetscope/internal/dnssim"
	"offnetscope/internal/hg"
	"offnetscope/internal/timeline"
)

func init() {
	register("methods", "Generality: certificate method vs earlier DNS techniques over time", func(e *Env) Renderer { return Methods(e) })
}

// MethodsResult contrasts the paper's certificate-based inference with
// the two earlier families of techniques across the study window — the
// paper's §1 motivation made quantitative. The ECS series collapses at
// the 2016 lockdown; the FNA series exists only for Facebook and only
// after its CDN launch; the certificate method covers every hypergiant
// for the whole window.
type MethodsResult struct {
	Snapshots []timeline.Snapshot
	// Google: certificate method vs ECS enumeration.
	GoogleCerts, GoogleECS []int
	// Facebook: certificate method vs FNA name guessing.
	FacebookCerts, FacebookFNA []int
}

// methodsSnapshots samples the window sparsely: the DNS baselines issue
// tens of thousands of queries per snapshot.
func methodsSnapshots() []timeline.Snapshot {
	return []timeline.Snapshot{0, 4, 8, 9, 10, 12, 16, 20, 24, 28, 30}
}

// Methods runs all three techniques at sampled snapshots.
func Methods(e *Env) *MethodsResult {
	resolver := dnssim.New(e.World)
	sr := e.Study(corpus.Rapid7)
	out := &MethodsResult{Snapshots: methodsSnapshots()}
	for _, s := range out.Snapshots {
		out.GoogleCerts = append(out.GoogleCerts, len(hostingSetAt(e, hg.Google, s)))
		out.FacebookCerts = append(out.FacebookCerts, len(hostingSetAt(e, hg.Facebook, s)))
		mapper := e.World.IP2AS(s)
		out.GoogleECS = append(out.GoogleECS, len(baselines.ECSMap(resolver, e.World, mapper, hg.Google, s)))
		out.FacebookFNA = append(out.FacebookFNA, len(baselines.FNAMap(resolver, e.World, mapper, s, 60, 6)))
	}
	_ = sr
	return out
}

// Render implements Renderer.
func (m *MethodsResult) Render() string {
	var b strings.Builder
	b.WriteString("Technique comparison (# hosting ASes found)\n")
	fmt.Fprintf(&b, "%-10s %12s %10s %14s %10s\n", "snapshot", "Google/certs", "Google/ECS", "Facebook/certs", "FB/naming")
	for i, s := range m.Snapshots {
		fmt.Fprintf(&b, "%-10s %12d %10d %14d %10d\n",
			s.Label(), m.GoogleCerts[i], m.GoogleECS[i], m.FacebookCerts[i], m.FacebookFNA[i])
	}
	b.WriteString("ECS mapping dies at the 2016-04 lockdown; naming maps exist for one hypergiant only.\n")
	return b.String()
}

// CSVTables implements CSVTables.
func (m *MethodsResult) CSVTables() map[string][][]string {
	rows := [][]string{{"snapshot", "google_certs", "google_ecs", "facebook_certs", "facebook_fna"}}
	for i, s := range m.Snapshots {
		rows = append(rows, []string{
			s.Label(),
			fmt.Sprint(m.GoogleCerts[i]), fmt.Sprint(m.GoogleECS[i]),
			fmt.Sprint(m.FacebookCerts[i]), fmt.Sprint(m.FacebookFNA[i]),
		})
	}
	return map[string][][]string{"methods_comparison": rows}
}
