package analysis

import (
	"fmt"
	"sort"
	"strings"

	"offnetscope/internal/astopo"
	"offnetscope/internal/corpus"
	"offnetscope/internal/hg"
	"offnetscope/internal/population"
	"offnetscope/internal/timeline"
)

func init() {
	register("fig7", "Figure 7: user-population coverage per country (Google/Netflix/Akamai)", func(e *Env) Renderer { return Fig7(e) })
	register("fig8", "Figure 8: Google coverage via customer cones", func(e *Env) Renderer { return Fig8(e) })
	register("fig9", "Figure 9: Facebook coverage 2017-10 vs 2021-04", func(e *Env) Renderer { return Fig9(e) })
	register("fig12", "Figure 12: cone coverage for Facebook/Netflix/Akamai", func(e *Env) Renderer { return Fig12(e) })
}

// hostingSetAt returns one hypergiant's confirmed hosting AS set at s
// (with the Netflix expired restoration).
func hostingSetAt(e *Env, id hg.ID, s timeline.Snapshot) map[astopo.ASN]struct{} {
	sr := e.Study(corpus.Rapid7)
	r := sr.Results[s]
	if r == nil {
		return nil
	}
	set := make(map[astopo.ASN]struct{})
	for as := range r.PerHG[id].ConfirmedASes {
		set[as] = struct{}{}
	}
	if id == hg.Netflix {
		for as := range r.PerHG[id].ExpiredASes {
			set[as] = struct{}{}
		}
	}
	return set
}

// CoverageMap is one per-country coverage map plus its world aggregate.
type CoverageMap struct {
	HG        hg.ID
	Snapshot  timeline.Snapshot
	ByCountry map[string]float64 // percent, 0-100
	World     float64
}

func coverageMap(e *Env, id hg.ID, s timeline.Snapshot, cones bool) CoverageMap {
	hosting := hostingSetAt(e, id, s)
	if cones {
		hosting = population.ExpandByCones(e.World.Graph(), hosting, s)
	}
	return CoverageMap{
		HG:        id,
		Snapshot:  s,
		ByCountry: e.Pop.CoverageByCountry(hosting, s),
		World:     e.Pop.WorldCoverage(hosting, s),
	}
}

func renderMap(b *strings.Builder, m CoverageMap) {
	fmt.Fprintf(b, "--- %s @ %s (world %.1f%%) ---\n", m.HG, m.Snapshot.Label(), m.World)
	var codes []string
	for code := range m.ByCountry {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	for i, code := range codes {
		fmt.Fprintf(b, "%s:%5.1f  ", code, m.ByCountry[code])
		if (i+1)%8 == 0 {
			b.WriteString("\n")
		}
	}
	b.WriteString("\n")
}

// Fig7Result reproduces Figure 7: April 2021 coverage maps for Google,
// Netflix, and Akamai.
type Fig7Result struct {
	Maps []CoverageMap
}

// Fig7 computes the three coverage maps.
func Fig7(e *Env) *Fig7Result {
	out := &Fig7Result{}
	for _, id := range []hg.ID{hg.Google, hg.Netflix, hg.Akamai} {
		out.Maps = append(out.Maps, coverageMap(e, id, LastSnapshot(), false))
	}
	return out
}

// Render implements Renderer.
func (f *Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7 — % of a country's Internet users in ASes hosting off-nets (2021-04)\n")
	for _, m := range f.Maps {
		renderMap(&b, m)
	}
	return b.String()
}

// Fig8Result reproduces Figure 8: Google's coverage when off-nets also
// serve the hosting ASes' customer cones.
type Fig8Result struct {
	Direct CoverageMap
	Cones  CoverageMap
	// TopGainers lists the countries with the largest coverage increase.
	TopGainers []CountryGain
}

// CountryGain is one country's direct → cone coverage increase.
type CountryGain struct {
	Code         string
	Direct, Cone float64
}

// Fig8 computes the cone-expanded Google coverage.
func Fig8(e *Env) *Fig8Result {
	out := &Fig8Result{
		Direct: coverageMap(e, hg.Google, LastSnapshot(), false),
		Cones:  coverageMap(e, hg.Google, LastSnapshot(), true),
	}
	for code, cone := range out.Cones.ByCountry {
		direct := out.Direct.ByCountry[code]
		if cone > direct {
			out.TopGainers = append(out.TopGainers, CountryGain{Code: code, Direct: direct, Cone: cone})
		}
	}
	sort.Slice(out.TopGainers, func(i, j int) bool {
		return out.TopGainers[i].Cone-out.TopGainers[i].Direct > out.TopGainers[j].Cone-out.TopGainers[j].Direct
	})
	if len(out.TopGainers) > 10 {
		out.TopGainers = out.TopGainers[:10]
	}
	return out
}

// Render implements Renderer.
func (f *Fig8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 — Google coverage with customer cones: world %.1f%% → %.1f%%\n",
		f.Direct.World, f.Cones.World)
	renderMap(&b, f.Cones)
	b.WriteString("largest gains: ")
	for _, g := range f.TopGainers {
		fmt.Fprintf(&b, "%s %.1f→%.1f  ", g.Code, g.Direct, g.Cone)
	}
	b.WriteString("\n")
	return b.String()
}

// Fig9Result reproduces Figure 9: Facebook coverage at the start of the
// population dataset (2017-10) and at the end of the study.
type Fig9Result struct {
	Early, Late CoverageMap
}

// Fig9 computes the two Facebook maps.
func Fig9(e *Env) *Fig9Result {
	return &Fig9Result{
		Early: coverageMap(e, hg.Facebook, population.AvailableFrom, false),
		Late:  coverageMap(e, hg.Facebook, LastSnapshot(), false),
	}
}

// Render implements Renderer.
func (f *Fig9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9 — Facebook coverage: world %.1f%% (2017-10) → %.1f%% (2021-04)\n",
		f.Early.World, f.Late.World)
	renderMap(&b, f.Early)
	renderMap(&b, f.Late)
	return b.String()
}

// Fig12Result reproduces Figure 12: cone-expanded coverage for Facebook,
// Netflix, and Akamai.
type Fig12Result struct {
	Pairs []struct {
		Direct, Cones CoverageMap
	}
}

// Fig12 computes the three cone-coverage maps.
func Fig12(e *Env) *Fig12Result {
	out := &Fig12Result{}
	for _, id := range []hg.ID{hg.Facebook, hg.Netflix, hg.Akamai} {
		out.Pairs = append(out.Pairs, struct{ Direct, Cones CoverageMap }{
			Direct: coverageMap(e, id, LastSnapshot(), false),
			Cones:  coverageMap(e, id, LastSnapshot(), true),
		})
	}
	return out
}

// Render implements Renderer.
func (f *Fig12Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 12 — coverage within customer cones (2021-04)\n")
	for _, p := range f.Pairs {
		fmt.Fprintf(&b, "%s: world %.1f%% → %.1f%%\n", p.Direct.HG, p.Direct.World, p.Cones.World)
		renderMap(&b, p.Cones)
	}
	return b.String()
}
