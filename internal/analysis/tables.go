package analysis

import (
	"fmt"
	"strings"

	"offnetscope/internal/astopo"
	"offnetscope/internal/core"
	"offnetscope/internal/corpus"
	"offnetscope/internal/hg"
	"offnetscope/internal/timeline"
)

func init() {
	register("table2", "Table 2: three scan corpuses, Nov 2019", func(e *Env) Renderer { return Table2(e) })
	register("table3", "Table 3: per-hypergiant off-net footprints 2013-2021", func(e *Env) Renderer { return Table3(e) })
}

// Table2Row is one corpus's statistics in the November 2019 comparison.
type Table2Row struct {
	Vendor      corpus.Vendor
	CertIPs     int
	CertASes    int
	UniqueASes  int // ASes with certs seen only by this corpus
	AnyHGASes   int
	PerTop4ASes map[hg.ID]int
}

// Table2Result reproduces Table 2.
type Table2Result struct {
	Snapshot timeline.Snapshot
	Rows     []Table2Row
}

// Table2 scans the world with all three campaign profiles at the
// November 2019 grid point and runs the pipeline on each corpus.
func Table2(e *Env) *Table2Result {
	out := &Table2Result{Snapshot: Nov2019}
	asSets := make([]map[astopo.ASN]struct{}, 0, 3)

	for _, v := range []corpus.Vendor{corpus.Rapid7, corpus.Censys, corpus.Certigo} {
		snap := e.Scan(v, Nov2019)
		if snap == nil {
			continue
		}
		res := e.Pipeline.Run(snap)
		row := Table2Row{
			Vendor:      v,
			CertIPs:     res.TotalCertIPs,
			CertASes:    res.TotalCertASes,
			PerTop4ASes: make(map[hg.ID]int, 4),
		}
		// Certigo has no headers: the paper compares footprints by
		// certificates for it, headers+certs for the others.
		anySet := make(map[astopo.ASN]struct{})
		for _, id := range hg.Top4() {
			hr := res.PerHG[id]
			set := hr.ConfirmedASes
			if v == corpus.Certigo {
				set = hr.CandidateASes
			}
			row.PerTop4ASes[id] = len(set)
		}
		for _, hr := range res.PerHG {
			set := hr.ConfirmedASes
			if v == corpus.Certigo {
				set = hr.CandidateASes
			}
			for as := range set {
				anySet[as] = struct{}{}
			}
		}
		row.AnyHGASes = len(anySet)

		mapper := e.World.IP2AS(Nov2019)
		asSet := make(map[astopo.ASN]struct{})
		for _, cr := range snap.Certs {
			for _, as := range mapper.Lookup(cr.IP) {
				asSet[as] = struct{}{}
			}
		}
		asSets = append(asSets, asSet)
		out.Rows = append(out.Rows, row)
	}

	// Unique ASes: seen with certificates only in this corpus.
	for i := range out.Rows {
		unique := 0
		for as := range asSets[i] {
			seenElsewhere := false
			for j := range asSets {
				if j == i {
					continue
				}
				if _, ok := asSets[j][as]; ok {
					seenElsewhere = true
					break
				}
			}
			if !seenElsewhere {
				unique++
			}
		}
		out.Rows[i].UniqueASes = unique
	}
	return out
}

// Render implements Renderer.
func (t *Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — scan corpus comparison at %s\n", t.Snapshot.Label())
	fmt.Fprintf(&b, "%-10s %12s %10s %8s %8s %8s %8s %9s %8s\n",
		"corpus", "IPs w/certs", "ASes", "unique", "anyHG", "Google", "Netflix", "Facebook", "Akamai")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-10s %12d %10d %8d %8d %8d %8d %9d %8d\n",
			r.Vendor, r.CertIPs, r.CertASes, r.UniqueASes, r.AnyHGASes,
			r.PerTop4ASes[hg.Google], r.PerTop4ASes[hg.Netflix],
			r.PerTop4ASes[hg.Facebook], r.PerTop4ASes[hg.Akamai])
	}
	return b.String()
}

// Table3Row is one hypergiant's study-wide footprint summary.
type Table3Row struct {
	HG             hg.ID
	First          int // 2013-10 confirmed
	FirstCertsOnly int
	Max            int
	MaxAt          timeline.Snapshot
	Last           int // 2021-04 confirmed
	LastCertsOnly  int
}

// Table3Result reproduces Table 3, sorted by maximum footprint.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 summarizes the Rapid7 longitudinal study per hypergiant.
func Table3(e *Env) *Table3Result {
	sr := e.Study(corpus.Rapid7)
	out := &Table3Result{}
	lastIdx := int(LastSnapshot())
	for _, h := range hg.All() {
		conf := sr.EnvelopeSeries(h.ID)
		cand := sr.CandidateSeries(h.ID)
		row := Table3Row{
			HG:             h.ID,
			First:          conf[0],
			FirstCertsOnly: cand[0],
			Last:           conf[lastIdx],
			LastCertsOnly:  cand[lastIdx],
		}
		row.Max, row.MaxAt = sr.MaxConfirmed(h.ID)
		if row.Max == 0 && row.LastCertsOnly == 0 && row.FirstCertsOnly == 0 {
			continue // the paper omits hypergiants with no inferred footprint
		}
		out.Rows = append(out.Rows, row)
	}
	// Sort by max footprint, descending (Table 3's ranking).
	for i := 0; i < len(out.Rows); i++ {
		for j := i + 1; j < len(out.Rows); j++ {
			if out.Rows[j].Max > out.Rows[i].Max {
				out.Rows[i], out.Rows[j] = out.Rows[j], out.Rows[i]
			}
		}
	}
	return out
}

// Render implements Renderer.
func (t *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 3 — number of ASes with HG off-nets (Rapid7, confirmed; certs-only in parens)\n")
	fmt.Fprintf(&b, "%-3s %-12s %18s %16s %18s\n", "#", "hypergiant", "2013-10", "max [when]", "2021-04")
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "%-3d %-12s %10d (%4d) %8d [%s] %10d (%4d)\n",
			i+1, r.HG, r.First, r.FirstCertsOnly, r.Max, r.MaxAt.Label(), r.Last, r.LastCertsOnly)
	}
	return b.String()
}

// top4SetsAt gathers the confirmed top-4 AS sets at one snapshot; the
// Netflix set uses the envelope logic implicitly via ConfirmedASes plus
// expired restoration.
func top4SetsAt(sr *core.StudyResult, s timeline.Snapshot) map[hg.ID]map[astopo.ASN]struct{} {
	out := make(map[hg.ID]map[astopo.ASN]struct{}, 4)
	r := sr.Results[s]
	if r == nil {
		return out
	}
	for _, id := range hg.Top4() {
		set := make(map[astopo.ASN]struct{})
		for as := range r.PerHG[id].ConfirmedASes {
			set[as] = struct{}{}
		}
		if id == hg.Netflix {
			for as := range r.PerHG[id].ExpiredASes {
				set[as] = struct{}{}
			}
		}
		out[id] = set
	}
	return out
}
