// Package analysis regenerates every table and figure of the paper's
// evaluation, plus the §5 validation experiments, by wiring the world
// simulator, the scan-campaign emulators, the §4 inference pipeline, and
// the population dataset together. Each experiment is a function from an
// Env to a renderable result; cmd/experiments and the repository
// benchmarks are thin wrappers around this package.
package analysis

import (
	"fmt"
	"sort"
	"sync"

	"offnetscope/internal/astopo"
	"offnetscope/internal/core"
	"offnetscope/internal/corpus"
	"offnetscope/internal/population"
	"offnetscope/internal/scanners"
	"offnetscope/internal/timeline"
	"offnetscope/internal/worldsim"
)

// Env bundles the shared state experiments run against. Studies are
// executed lazily and cached per vendor so a batch of experiments pays
// for each longitudinal pass once.
type Env struct {
	World    *worldsim.World
	Pipeline *core.Pipeline
	Pop      *population.Dataset

	mu      sync.Mutex
	studies map[corpus.Vendor]*core.StudyResult
	cats    map[timeline.Snapshot]map[astopo.ASN]astopo.Category
}

// NewEnv builds a world from cfg and the pipeline bound to its datasets.
func NewEnv(cfg worldsim.Config) (*Env, error) {
	w, err := worldsim.New(cfg)
	if err != nil {
		return nil, err
	}
	e := &Env{
		World: w,
		Pipeline: &core.Pipeline{
			Trust:  w.TrustStore(),
			Orgs:   w.Orgs(),
			Mapper: func(s timeline.Snapshot) core.IPMapper { return w.IP2AS(s) },
			Opts:   core.DefaultOptions(),
		},
		Pop:     population.Build(w.Graph(), cfg.Seed),
		studies: make(map[corpus.Vendor]*core.StudyResult),
		cats:    make(map[timeline.Snapshot]map[astopo.ASN]astopo.Category),
	}
	return e, nil
}

// profileFor maps a vendor back to its campaign profile.
func profileFor(v corpus.Vendor) scanners.Profile {
	switch v {
	case corpus.Censys:
		return scanners.CensysProfile()
	case corpus.Certigo:
		return scanners.CertigoProfile()
	default:
		return scanners.Rapid7Profile()
	}
}

// Study runs (or returns the cached) longitudinal inference over one
// vendor's corpus.
func (e *Env) Study(v corpus.Vendor) *core.StudyResult {
	e.mu.Lock()
	if sr, ok := e.studies[v]; ok {
		e.mu.Unlock()
		return sr
	}
	e.mu.Unlock()
	profile := profileFor(v)
	sr := e.Pipeline.RunStudy(func(s timeline.Snapshot) *corpus.Snapshot {
		return scanners.Scan(e.World, profile, s)
	})
	e.mu.Lock()
	e.studies[v] = sr
	e.mu.Unlock()
	return sr
}

// Scan produces one vendor snapshot (uncached; corpuses are large).
func (e *Env) Scan(v corpus.Vendor, s timeline.Snapshot) *corpus.Snapshot {
	return scanners.Scan(e.World, profileFor(v), s)
}

// ScanStream produces one vendor snapshot as a chunked record stream:
// records are synthesized during consumption instead of materializing
// the month's corpus, so experiments that only walk one record kind
// (e.g. A.3's certificate pass) stay in bounded memory. Nil when the
// vendor doesn't cover s, like Scan.
func (e *Env) ScanStream(v corpus.Vendor, s timeline.Snapshot) *corpus.Stream {
	return scanners.ScanStream(e.World, profileFor(v), s, 0)
}

// CategoryOf returns the AS's size category at s, cached per snapshot.
func (e *Env) CategoryOf(as astopo.ASN, s timeline.Snapshot) astopo.Category {
	e.mu.Lock()
	m, ok := e.cats[s]
	if !ok {
		m = make(map[astopo.ASN]astopo.Category)
		e.cats[s] = m
	}
	cat, ok := m[as]
	e.mu.Unlock()
	if ok {
		return cat
	}
	cat = e.World.Graph().CategoryOf(as, s)
	e.mu.Lock()
	m[as] = cat
	e.mu.Unlock()
	return cat
}

// LastSnapshot is the final study month (2021-04).
func LastSnapshot() timeline.Snapshot { return timeline.Snapshot(timeline.Count() - 1) }

// Nov2019 is the month of the Table 2 three-corpus comparison.
const Nov2019 = timeline.Snapshot(24) // 2019-10 grid point covering the Nov 2019 scans

// Renderer is anything an experiment returns: a human-readable
// reproduction of the table or figure.
type Renderer interface {
	Render() string
}

// Experiment is one registered table/figure/validation reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Env) Renderer
}

var registry []Experiment

func register(id, title string, run func(*Env) Renderer) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// Experiments lists every registered experiment in a stable order.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// seriesHeader renders the snapshot labels used across figure tables.
func seriesHeader() string {
	out := fmt.Sprintf("%-12s", "snapshot")
	for _, s := range timeline.All() {
		out += fmt.Sprintf("%9s", s.Label())
	}
	return out
}

// seriesRow renders one labelled int series.
func seriesRow(label string, values []int) string {
	out := fmt.Sprintf("%-12s", label)
	for _, v := range values {
		out += fmt.Sprintf("%9d", v)
	}
	return out
}
