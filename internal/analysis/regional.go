package analysis

import (
	"fmt"
	"strings"

	"offnetscope/internal/astopo"
	"offnetscope/internal/corpus"
	"offnetscope/internal/hg"
	"offnetscope/internal/report"
	"offnetscope/internal/timeline"
)

func init() {
	register("fig6", "Figure 6: regional growth per continent", func(e *Env) Renderer { return Fig6(e) })
	register("fig13", "Figure 13: growth per continent and network type", func(e *Env) Renderer { return Fig13(e) })
}

// fig6HGs are the hypergiants plotted in Figure 6 (the top-4 plus
// Alibaba, whose Asia growth the paper highlights).
var fig6HGs = []hg.ID{hg.Google, hg.Akamai, hg.Netflix, hg.Facebook, hg.Alibaba}

// Fig6Result reproduces Figure 6: footprints per continent over time.
type Fig6Result struct {
	// Counts[continent][hg index][snapshot]
	Counts [astopo.NumContinents]map[hg.ID][]int
}

// Fig6 assigns every confirmed hosting AS to its continent.
func Fig6(e *Env) *Fig6Result {
	sr := e.Study(corpus.Rapid7)
	out := &Fig6Result{}
	for c := range out.Counts {
		out.Counts[c] = make(map[hg.ID][]int, len(fig6HGs))
		for _, id := range fig6HGs {
			out.Counts[c][id] = make([]int, timeline.Count())
		}
	}
	g := e.World.Graph()
	for _, s := range timeline.All() {
		r := sr.Results[s]
		if r == nil {
			continue
		}
		for _, id := range fig6HGs {
			set := r.PerHG[id].ConfirmedASes
			for as := range set {
				if cont, ok := g.ContinentOf(as); ok {
					out.Counts[cont][id][s]++
				}
			}
			if id == hg.Netflix {
				for as := range r.PerHG[id].ExpiredASes {
					if cont, ok := g.ContinentOf(as); ok {
						out.Counts[cont][id][s]++
					}
				}
			}
		}
	}
	return out
}

// Render implements Renderer.
func (f *Fig6Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6 — off-net footprint per continent (# ASes)\n")
	for _, cont := range astopo.AllContinents() {
		fmt.Fprintf(&b, "--- %s ---\n%s\n", cont, seriesHeader())
		for _, id := range fig6HGs {
			b.WriteString(seriesRow(id.String(), f.Counts[cont][id]) + "\n")
		}
		for _, id := range fig6HGs {
			b.WriteString(report.SparkRow(id.String(), f.Counts[cont][id]) + "\n")
		}
	}
	return b.String()
}

// fig13Categories are the network types of Figure 13 (XLarge is folded
// into Large, as in the paper's appendix).
var fig13Categories = []astopo.Category{astopo.Stub, astopo.Small, astopo.Medium, astopo.Large}

// Fig13Result reproduces Figure 13: per continent × network type growth
// for the top-4 hypergiants.
type Fig13Result struct {
	// Counts[hg][category][continent][snapshot]
	Counts map[hg.ID]map[astopo.Category][astopo.NumContinents][]int
}

// Fig13 cross-tabulates hosting ASes by continent and cone category.
func Fig13(e *Env) *Fig13Result {
	sr := e.Study(corpus.Rapid7)
	out := &Fig13Result{Counts: make(map[hg.ID]map[astopo.Category][astopo.NumContinents][]int)}
	g := e.World.Graph()
	for _, id := range hg.Top4() {
		out.Counts[id] = make(map[astopo.Category][astopo.NumContinents][]int)
		for _, cat := range fig13Categories {
			var byCont [astopo.NumContinents][]int
			for c := range byCont {
				byCont[c] = make([]int, timeline.Count())
			}
			out.Counts[id][cat] = byCont
		}
	}
	for _, s := range timeline.All() {
		if sr.Results[s] == nil {
			continue
		}
		sets := top4SetsAt(sr, s)
		for _, id := range hg.Top4() {
			for as := range sets[id] {
				cont, ok := g.ContinentOf(as)
				if !ok {
					continue
				}
				cat := e.CategoryOf(as, s)
				if cat == astopo.XLarge {
					cat = astopo.Large
				}
				out.Counts[id][cat][cont][s]++
			}
		}
	}
	return out
}

// Render implements Renderer.
func (f *Fig13Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 13 — footprint per continent and network type (# ASes)\n")
	for _, cat := range fig13Categories {
		for _, id := range hg.Top4() {
			fmt.Fprintf(&b, "--- %s %s ASes ---\n%s\n", id, cat, seriesHeader())
			byCont := f.Counts[id][cat]
			for _, cont := range astopo.AllContinents() {
				b.WriteString(seriesRow(cont.String(), byCont[cont]) + "\n")
			}
		}
	}
	return b.String()
}
