package analysis

import (
	"fmt"
	"sort"
	"strings"

	"offnetscope/internal/astopo"
	"offnetscope/internal/hg"
	"offnetscope/internal/timeline"
)

func init() {
	register("whatif", "§6.5 what-if: best next deployments to raise a country's coverage", func(e *Env) Renderer { return WhatIf(e) })
}

// WhatIfPick is one recommended deployment.
type WhatIfPick struct {
	AS    astopo.ASN
	Share float64 // the AS's share of the country's users, percent
}

// WhatIfRow is one (hypergiant, country) recommendation: the paper's
// example was Facebook in the US, 33.9 % → 61.8 % with five ASes.
type WhatIfRow struct {
	HG      hg.ID
	Country string
	Before  float64
	After   float64
	Picks   []WhatIfPick
}

// WhatIfResult holds the §6.5-style deployment recommendations.
type WhatIfResult struct {
	Snapshot timeline.Snapshot
	K        int
	Rows     []WhatIfRow
}

// WhatIf greedily picks, for each top-4 hypergiant, the K highest-share
// non-hosting ASes in its most under-covered large market. With per-AS
// additive market shares the greedy pick is optimal.
func WhatIf(e *Env) *WhatIfResult {
	s := LastSnapshot()
	const k = 5
	out := &WhatIfResult{Snapshot: s, K: k}
	g := e.World.Graph()

	for _, id := range hg.Top4() {
		hosting := hostingSetAt(e, id, s)
		coverage := e.Pop.CoverageByCountry(hosting, s)

		// The most under-covered market among big countries.
		var target string
		worst := 101.0
		for _, c := range astopo.Countries() {
			if c.Users < 30 { // markets the paper's discussion focuses on
				continue
			}
			if cov := coverage[c.Code]; cov < worst {
				worst, target = cov, c.Code
			}
		}
		if target == "" {
			continue
		}

		// Rank the country's non-hosting ASes by market share.
		type cand struct {
			as    astopo.ASN
			share float64
		}
		var cands []cand
		for i := 1; i <= g.NumASes(); i++ {
			as := astopo.ASN(i)
			if !g.Active(as, s) || g.Country(as) != target {
				continue
			}
			if _, already := hosting[as]; already {
				continue
			}
			if share := e.Pop.Share(as, s); share > 0 {
				cands = append(cands, cand{as, share})
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].share > cands[j].share })

		row := WhatIfRow{HG: id, Country: target, Before: coverage[target], After: coverage[target]}
		for i := 0; i < k && i < len(cands); i++ {
			row.Picks = append(row.Picks, WhatIfPick{AS: cands[i].as, Share: cands[i].share * 100})
			row.After += cands[i].share * 100
		}
		if row.After > 100 {
			row.After = 100
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Render implements Renderer.
func (w *WhatIfResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "What-if @ %s: coverage gain from the %d best additional hosting ASes\n", w.Snapshot.Label(), w.K)
	fmt.Fprintf(&b, "(the paper's example: Facebook in the US, 33.9%% → 61.8%% with 5 ASes)\n")
	for _, r := range w.Rows {
		fmt.Fprintf(&b, "%-10s in %s: %5.1f%% → %5.1f%%  via", r.HG, r.Country, r.Before, r.After)
		for _, p := range r.Picks {
			fmt.Fprintf(&b, " AS%d(%.1f%%)", p.AS, p.Share)
		}
		b.WriteString("\n")
	}
	return b.String()
}
