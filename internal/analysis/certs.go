package analysis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"offnetscope/internal/certmodel"
	"offnetscope/internal/corpus"
	"offnetscope/internal/hg"
	"offnetscope/internal/timeline"
)

func init() {
	register("a3-certs", "Appendix A.3: hypergiant certificate characteristics over time", func(e *Env) Renderer { return A3Certs(e) })
}

// A3Row is one hypergiant's certificate statistics at one snapshot.
type A3Row struct {
	UniqueCerts int
	// MedianLifetimeDays is the median NotAfter-NotBefore of the
	// hypergiant's observed end-entity certificates.
	MedianLifetimeDays int
}

// A3Result reproduces appendix A.3: certificate counts and validity
// periods per hypergiant across the study, which expose each company's
// certificate-management strategy (Google's 3-month rotation, Netflix's
// 2019 shift to 35-day certificates, Microsoft's 1-2 year terms).
type A3Result struct {
	// Rows[id][snapshot]
	Rows map[hg.ID][]A3Row
	HGs  []hg.ID
}

// A3Certs scans selected snapshots of the Rapid7 corpus and aggregates
// per-hypergiant certificate statistics.
func A3Certs(e *Env) *A3Result {
	out := &A3Result{
		Rows: make(map[hg.ID][]A3Row),
		HGs:  []hg.ID{hg.Google, hg.Netflix, hg.Facebook, hg.Microsoft},
	}
	for _, id := range out.HGs {
		out.Rows[id] = make([]A3Row, timeline.Count())
	}
	domainPools := make(map[hg.ID]map[string]struct{})
	for _, id := range out.HGs {
		pool := make(map[string]struct{})
		for _, d := range hg.Get(id).Domains {
			pool[d] = struct{}{}
		}
		domainPools[id] = pool
	}
	for _, s := range timeline.All() {
		// The pass only reads certificates, so consume the streamed scan:
		// record batches are synthesized and discarded in place instead of
		// materializing the month's corpus (headers and all).
		st := e.ScanStream(corpus.Rapid7, s)
		if st == nil {
			continue
		}
		type agg struct {
			fps       map[uint64]struct{}
			lifetimes []float64
		}
		aggs := make(map[hg.ID]*agg)
		for _, id := range out.HGs {
			aggs[id] = &agg{fps: make(map[uint64]struct{})}
		}
		scanTime := st.ScanTime()
		// Synthesized streams never fail and the consumer never aborts.
		_ = st.Certs(func(batch []corpus.CertRecord) error {
			for _, cr := range batch {
				leaf := cr.Chain.Leaf()
				org := strings.ToLower(leaf.Subject.Organization)
				for _, id := range out.HGs {
					if !strings.Contains(org, hg.Get(id).Keyword) {
						continue
					}
					// Only genuine hypergiant serving certificates: valid
					// chains whose dNSNames all come from the hypergiant's
					// first-party domain pool. This sheds shared-certificate
					// partners and self-signed impostors.
					if certmodel.Verify(cr.Chain, scanTime, e.World.TrustStore()) != nil {
						continue
					}
					inPool := len(leaf.DNSNames) > 0
					for _, d := range leaf.DNSNames {
						if _, ok := domainPools[id][d]; !ok {
							inPool = false
							break
						}
					}
					if !inPool {
						continue
					}
					a := aggs[id]
					fp := uint64(leaf.Fingerprint())
					if _, seen := a.fps[fp]; !seen {
						a.fps[fp] = struct{}{}
						a.lifetimes = append(a.lifetimes, leaf.NotAfter.Sub(leaf.NotBefore).Hours()/24)
					}
					break
				}
			}
			return nil
		})
		for _, id := range out.HGs {
			a := aggs[id]
			row := A3Row{UniqueCerts: len(a.fps)}
			if len(a.lifetimes) > 0 {
				sort.Float64s(a.lifetimes)
				row.MedianLifetimeDays = int(a.lifetimes[len(a.lifetimes)/2])
			}
			out.Rows[id][s] = row
		}
	}
	return out
}

// Render implements Renderer.
func (a *A3Result) Render() string {
	var b strings.Builder
	b.WriteString("Appendix A.3 — unique certificates and median validity period (days)\n")
	for _, id := range a.HGs {
		fmt.Fprintf(&b, "--- %s ---\n%s\n", id, seriesHeader())
		certs := make([]int, timeline.Count())
		lifetimes := make([]int, timeline.Count())
		for i, r := range a.Rows[id] {
			certs[i] = r.UniqueCerts
			lifetimes[i] = r.MedianLifetimeDays
		}
		b.WriteString(seriesRow("certs", certs) + "\n")
		b.WriteString(seriesRow("median days", lifetimes) + "\n")
	}
	return b.String()
}

// MedianLifetimeAt is a convenience accessor for tests.
func (a *A3Result) MedianLifetimeAt(id hg.ID, s timeline.Snapshot) time.Duration {
	return time.Duration(a.Rows[id][s].MedianLifetimeDays) * 24 * time.Hour
}
