package analysis

import (
	"sort"

	"offnetscope/internal/astopo"
	"offnetscope/internal/core"
	"offnetscope/internal/hg"
	"offnetscope/internal/timeline"
)

// This file is the reusable accuracy scorer behind the §5 ground-truth
// validation (val-truth) and the scenario-matrix harness: inferred
// footprints compared against the simulator's ground truth, per
// hypergiant, plus the study's snapshot coverage.

// OffNetTruth is the slice of ground truth the scorer consumes;
// *worldsim.World implements it.
type OffNetTruth interface {
	TrueOffNetASes(hg.ID, timeline.Snapshot) []astopo.ASN
}

// HGScore is one hypergiant's inference accuracy against ground truth.
// Recall and Precision are percentages; by convention an empty side
// scores zero (nothing found of a real footprint, or vice versa).
type HGScore struct {
	HG        hg.ID   `json:"-"`
	Name      string  `json:"hg"`
	Truth     int     `json:"truth"`
	Inferred  int     `json:"inferred"`
	Both      int     `json:"both"`
	Recall    float64 `json:"recall"`
	Precision float64 `json:"precision"`
}

// ScoreSets compares one truth/inferred hosting-AS pair. The HG and
// Name fields are left for the caller to fill.
func ScoreSets(truth []astopo.ASN, inferred map[astopo.ASN]struct{}) HGScore {
	truthSet := make(map[astopo.ASN]struct{}, len(truth))
	for _, as := range truth {
		truthSet[as] = struct{}{}
	}
	both := 0
	for as := range inferred {
		if _, ok := truthSet[as]; ok {
			both++
		}
	}
	sc := HGScore{Truth: len(truthSet), Inferred: len(inferred), Both: both}
	if sc.Truth > 0 {
		sc.Recall = 100 * float64(both) / float64(sc.Truth)
	}
	if sc.Inferred > 0 {
		sc.Precision = 100 * float64(both) / float64(sc.Inferred)
	}
	return sc
}

// ScoreResult is the accuracy of one study against ground truth at one
// snapshot, with the study's snapshot coverage alongside.
type ScoreResult struct {
	Snapshot timeline.Snapshot
	// Rows holds one entry per hypergiant with any footprint (true or
	// inferred), sorted by descending true footprint.
	Rows []HGScore
	// Covered counts study snapshots with data, out of Total; Coverage
	// is the same as a percentage.
	Covered, Total int
	Coverage       float64
}

// MicroAverage aggregates the per-hypergiant rows by pooling their AS
// sets: precision over everything inferred, recall over everything
// true. An empty side scores 100 — no false positives, or nothing to
// find — so degenerate cells gate on the other metric.
func (r *ScoreResult) MicroAverage() (precision, recall float64) {
	var truth, inferred, both int
	for _, row := range r.Rows {
		truth += row.Truth
		inferred += row.Inferred
		both += row.Both
	}
	precision, recall = 100, 100
	if inferred > 0 {
		precision = 100 * float64(both) / float64(inferred)
	}
	if truth > 0 {
		recall = 100 * float64(both) / float64(truth)
	}
	return precision, recall
}

// ScoreStudyAt scores the study's confirmed footprints against truth at
// snapshot s.
func ScoreStudyAt(truth OffNetTruth, sr *core.StudyResult, s timeline.Snapshot) *ScoreResult {
	out := &ScoreResult{Snapshot: s, Total: timeline.Count()}
	for _, snap := range timeline.All() {
		if sr.Results[snap] != nil {
			out.Covered++
		}
	}
	if out.Total > 0 {
		out.Coverage = 100 * float64(out.Covered) / float64(out.Total)
	}
	for _, h := range hg.All() {
		trueASes := truth.TrueOffNetASes(h.ID, s)
		inferred := sr.ConfirmedASesAt(h.ID, s)
		if len(trueASes) == 0 && len(inferred) == 0 {
			continue
		}
		row := ScoreSets(trueASes, inferred)
		row.HG, row.Name = h.ID, h.Name
		out.Rows = append(out.Rows, row)
	}
	sort.Slice(out.Rows, func(i, j int) bool { return out.Rows[i].Truth > out.Rows[j].Truth })
	return out
}

// ScoreStudy scores at the last snapshot the study has data for (the
// final study month under full coverage).
func ScoreStudy(truth OffNetTruth, sr *core.StudyResult) *ScoreResult {
	s := timeline.Snapshot(0)
	for _, snap := range timeline.All() {
		if sr.Results[snap] != nil {
			s = snap
		}
	}
	return ScoreStudyAt(truth, sr, s)
}

// Score is the Env convenience wrapper over ScoreStudy.
func Score(e *Env, sr *core.StudyResult) *ScoreResult {
	return ScoreStudy(e.World, sr)
}
