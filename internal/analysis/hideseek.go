package analysis

import (
	"fmt"
	"strings"

	"offnetscope/internal/core"
	"offnetscope/internal/hg"
	"offnetscope/internal/scanners"
	"offnetscope/internal/timeline"
	"offnetscope/internal/worldsim"
)

func init() {
	register("hideseek", "§8 hide-and-seek: how evasion strategies degrade the methodology", func(e *Env) Renderer { return HideSeek(e) })
}

// HideSeekRow is one evasion scenario's effect on the top-4 inference.
type HideSeekRow struct {
	Scenario string
	// Confirmed[id] is the confirmed off-net AS count under the scenario.
	Confirmed map[hg.ID]int
	// Recall is measured against the scenario world's ground truth.
	Recall map[hg.ID]float64
}

// HideSeekResult quantifies the §8 discussion: null default
// certificates blind the corpus-based approach almost completely,
// stripping the Organization field breaks keyword matching, and header
// anonymization only removes the confirmation step.
type HideSeekResult struct {
	Snapshot timeline.Snapshot
	Rows     []HideSeekRow
}

// HideSeek rebuilds the world under each §8 countermeasure and re-runs
// the pipeline at the final snapshot.
func HideSeek(e *Env) *HideSeekResult {
	s := LastSnapshot()
	base := e.World.Config()
	scenarios := []struct {
		name string
		hide worldsim.HideAndSeek
	}{
		{"baseline (no evasion)", worldsim.HideAndSeek{}},
		{"null default certificates", worldsim.HideAndSeek{NullDefaultCertFrac: 0.95}},
		{"strip Organization field", worldsim.HideAndSeek{StripOrganization: true}},
		{"anonymize debug headers", worldsim.HideAndSeek{AnonymizeHeaders: true}},
	}
	out := &HideSeekResult{Snapshot: s}
	for _, sc := range scenarios {
		cfg := base
		cfg.Hide = sc.hide
		w, err := worldsim.New(cfg)
		if err != nil {
			continue
		}
		pipeline := &core.Pipeline{
			Trust:  w.TrustStore(),
			Orgs:   w.Orgs(),
			Mapper: func(s timeline.Snapshot) core.IPMapper { return w.IP2AS(s) },
			Opts:   core.DefaultOptions(),
		}
		res := pipeline.Run(scanners.Scan(w, scanners.Rapid7Profile(), s))
		row := HideSeekRow{Scenario: sc.name, Confirmed: make(map[hg.ID]int), Recall: make(map[hg.ID]float64)}
		for _, id := range hg.Top4() {
			inferred := res.PerHG[id].ConfirmedASes
			row.Confirmed[id] = len(inferred)
			truth := w.TrueOffNetASes(id, s)
			hits := 0
			for _, as := range truth {
				if _, ok := inferred[as]; ok {
					hits++
				}
			}
			if len(truth) > 0 {
				row.Recall[id] = 100 * float64(hits) / float64(len(truth))
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Render implements Renderer.
func (h *HideSeekResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hide-and-seek scenarios @ %s (confirmed ASes / recall vs scenario ground truth)\n", h.Snapshot.Label())
	fmt.Fprintf(&b, "%-28s", "scenario")
	for _, id := range hg.Top4() {
		fmt.Fprintf(&b, " %16s", id)
	}
	b.WriteString("\n")
	for _, r := range h.Rows {
		fmt.Fprintf(&b, "%-28s", r.Scenario)
		for _, id := range hg.Top4() {
			fmt.Fprintf(&b, " %7d (%5.1f%%)", r.Confirmed[id], r.Recall[id])
		}
		b.WriteString("\n")
	}
	return b.String()
}
