package analysis

import (
	"fmt"
	"sort"
	"strings"

	"offnetscope/internal/astopo"
	"offnetscope/internal/baselines"
	"offnetscope/internal/core"
	"offnetscope/internal/corpus"
	"offnetscope/internal/dnssim"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/rng"
	"offnetscope/internal/scanners"
	"offnetscope/internal/timeline"
)

func init() {
	register("val-cross", "§5 validation: cross-HG domain requests against inferred off-nets", func(e *Env) Renderer { return ValCrossDomain(e) })
	register("val-sample", "§5 validation: random IP sample vs HG domains", func(e *Env) Renderer { return ValSample(e) })
	register("val-truth", "§5 validation: precision/recall against ground truth (operator survey)", func(e *Env) Renderer { return ValGroundTruth(e) })
	register("val-prior", "§5 validation: comparison with earlier per-HG mapping studies", func(e *Env) Renderer { return ValPrior(e) })
}

// ValCrossResult reproduces the §5 active-measurement validation: an
// inferred off-net should refuse TLS for domains its hypergiant does not
// host.
type ValCrossResult struct {
	Snapshot timeline.Snapshot
	OffNets  int
	// PctNoValidation is the share of inferred off-nets that validated
	// none of the foreign domains (paper: 89.7 %).
	PctNoValidation float64
	// ValidatorShare attributes the off-nets that did validate foreign
	// domains to their hypergiant (paper: 97 % Akamai).
	ValidatorShare map[hg.ID]float64
}

// ValCrossDomain probes every inferred off-net IP with popular domains
// of ten other hypergiants (ZGrab2-style, §5).
func ValCrossDomain(e *Env) *ValCrossResult {
	s := Nov2019
	res := e.Pipeline.Run(e.Scan(corpus.Rapid7, s))
	rnd := rng.New(e.World.Config().Seed).Fork("val-cross")

	out := &ValCrossResult{Snapshot: s, ValidatorShare: make(map[hg.ID]float64)}
	all := hg.All()
	noValidation := 0
	validators := make(map[hg.ID]int)
	totalValidators := 0

	for _, h := range all {
		hr := res.PerHG[h.ID]
		for _, ip := range hr.ConfirmedIPList {
			out.OffNets++
			validated := false
			for k := 0; k < 10; k++ {
				other := all[rnd.Intn(len(all))]
				if other.ID == h.ID {
					continue
				}
				domains := other.PopularDomains()
				domain := domains[rnd.Intn(len(domains))]
				if scanners.ZGrab(e.World, ip, domain, s).TLSValid {
					validated = true
					break
				}
			}
			if validated {
				validators[h.ID]++
				totalValidators++
			} else {
				noValidation++
			}
		}
	}
	if out.OffNets > 0 {
		out.PctNoValidation = 100 * float64(noValidation) / float64(out.OffNets)
	}
	for id, n := range validators {
		if totalValidators > 0 {
			out.ValidatorShare[id] = 100 * float64(n) / float64(totalValidators)
		}
	}
	return out
}

// Render implements Renderer.
func (v *ValCrossResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cross-domain validation @ %s: %d inferred off-net IPs\n", v.Snapshot.Label(), v.OffNets)
	fmt.Fprintf(&b, "%.1f%% validated no foreign domain (paper: 89.7%%)\n", v.PctNoValidation)
	b.WriteString("off-nets that validated foreign domains, by hypergiant:\n")
	var ids []hg.ID
	for id := range v.ValidatorShare {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return v.ValidatorShare[ids[i]] > v.ValidatorShare[ids[j]] })
	for _, id := range ids {
		fmt.Fprintf(&b, "  %-12s %5.1f%%\n", id, v.ValidatorShare[id])
	}
	return b.String()
}

// ValSampleResult reproduces the §5 random-sample validation: servers
// outside hypergiant address space should not serve hypergiant domains
// unless we inferred them to be off-nets.
type ValSampleResult struct {
	Snapshot        timeline.Snapshot
	Sampled         int
	ValidResponders int
	PctValid        float64 // paper: 0.1 %
	// PctInferred is the share of valid responders the pipeline had
	// already inferred (paper: 98 %).
	PctInferred float64
}

// ValSample probes a random sample of non-on-net certificate IPs with
// random hypergiant domains.
func ValSample(e *Env) *ValSampleResult {
	s := timeline.Snapshot(28) // 2020-10, the paper's November 2020 check
	snap := e.Scan(corpus.Rapid7, s)
	res := e.Pipeline.Run(snap)
	rnd := rng.New(e.World.Config().Seed).Fork("val-sample")

	onNet := make(map[astopo.ASN]struct{})
	inferredIPs := make(map[netmodel.IP]struct{})
	for _, hr := range res.PerHG {
		for _, as := range hr.OnNetASes {
			onNet[as] = struct{}{}
		}
		for _, ip := range hr.ConfirmedIPList {
			inferredIPs[ip] = struct{}{}
		}
		for _, ip := range hr.CandidateIPList {
			inferredIPs[ip] = struct{}{}
		}
	}

	mapper := e.World.IP2AS(s)
	all := hg.All()
	out := &ValSampleResult{Snapshot: s}
	inferredValid := 0
	for _, cr := range snap.Certs {
		if !rnd.Bool(0.25) { // the paper's 25 % sample
			continue
		}
		if anyASIn(mapper.Lookup(cr.IP), onNet) {
			continue
		}
		out.Sampled++
		valid := false
		for k := 0; k < 10 && !valid; k++ {
			h := all[rnd.Intn(len(all))]
			domains := h.PopularDomains()
			if scanners.ZGrab(e.World, cr.IP, domains[rnd.Intn(len(domains))], s).TLSValid {
				valid = true
			}
		}
		if valid {
			out.ValidResponders++
			if _, ok := inferredIPs[cr.IP]; ok {
				inferredValid++
			}
		}
	}
	if out.Sampled > 0 {
		out.PctValid = 100 * float64(out.ValidResponders) / float64(out.Sampled)
	}
	if out.ValidResponders > 0 {
		out.PctInferred = 100 * float64(inferredValid) / float64(out.ValidResponders)
	}
	return out
}

func anyASIn(asns []astopo.ASN, set map[astopo.ASN]struct{}) bool {
	for _, as := range asns {
		if _, ok := set[as]; ok {
			return true
		}
	}
	return false
}

// Render implements Renderer.
func (v *ValSampleResult) Render() string {
	return fmt.Sprintf(
		"Random-sample validation @ %s: sampled %d non-on-net cert IPs\n"+
			"%d (%.2f%%) validated a HG domain (paper: 0.1%%)\n"+
			"%.1f%% of valid responders were already inferred (paper: 98%%)\n",
		v.Snapshot.Label(), v.Sampled, v.ValidResponders, v.PctValid, v.PctInferred)
}

// ValTruthResult summarizes accuracy for every hypergiant with a
// footprint — the exact analogue of the paper's operator survey. The
// rows come from the shared scorer (score.go) that the scenario-matrix
// harness also uses.
type ValTruthResult struct {
	Snapshot timeline.Snapshot
	Rows     []HGScore
}

// ValGroundTruth compares inferred and true footprints at the end of the
// study.
func ValGroundTruth(e *Env) *ValTruthResult {
	sc := ScoreStudyAt(e.World, e.Study(corpus.Rapid7), LastSnapshot())
	return &ValTruthResult{Snapshot: sc.Snapshot, Rows: sc.Rows}
}

// Render implements Renderer.
func (v *ValTruthResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ground-truth validation @ %s (paper's survey: 89-95%% of hosting ASes uncovered)\n", v.Snapshot.Label())
	fmt.Fprintf(&b, "%-12s %8s %9s %8s %10s\n", "hypergiant", "truth", "inferred", "recall", "precision")
	for _, r := range v.Rows {
		fmt.Fprintf(&b, "%-12s %8d %9d %7.1f%% %9.1f%%\n", r.HG, r.Truth, r.Inferred, r.Recall, r.Precision)
	}
	// The appendix-A.4 survey, answered from the measured numbers: what
	// each top-4 "operator" would have told the authors.
	b.WriteString("simulated operator survey (appendix A.4):\n")
	for _, r := range v.Rows {
		if !hg.IsTop4(r.HG) || r.Truth == 0 {
			continue
		}
		missErr := 100 - r.Recall
		overErr := 100 - r.Precision
		rating := "Good"
		switch {
		case missErr <= 5 && overErr <= 5:
			rating = "Very good"
		case missErr <= 10 && overErr <= 10:
			rating = "Good"
		default:
			rating = "Poor"
		}
		direction := "estimation is quite accurate"
		if missErr > overErr+1 {
			direction = "underestimate"
		} else if overErr > missErr+1 {
			direction = "overestimate"
		}
		fmt.Fprintf(&b, "  %-10s Q1 rating: %-9s  Q2: %-26s  Q3 error: miss %.0f%% / extra %.0f%%\n",
			r.HG, rating, direction, missErr, overErr)
	}
	return b.String()
}

// ValPriorRow compares our inference with one simulated earlier study.
type ValPriorRow struct {
	Study    string
	HG       hg.ID
	Snapshot timeline.Snapshot
	// PriorASes is the earlier study's footprint; Found is how many of
	// them our technique also uncovered; Additional is what we found
	// beyond the earlier study.
	PriorASes, Found, Additional int
	PctFound                     float64
}

// ValPriorResult reproduces the §5 comparisons with earlier approaches.
type ValPriorResult struct {
	Rows []ValPriorRow
}

// priorStudy simulates an earlier mapping effort: a technique-specific
// sample of the true footprint (ECS mapping and naming-convention
// guessing both miss some hosts and carry some stale entries).
func priorStudy(e *Env, id hg.ID, s timeline.Snapshot, coverage float64, label string) ValPriorRow {
	rnd := rng.New(e.World.Config().Seed).Fork("val-prior/" + label + s.Label())
	truth := e.World.TrueOffNetASes(id, s)
	prior := make(map[astopo.ASN]struct{})
	for _, as := range truth {
		if rnd.Bool(coverage) {
			prior[as] = struct{}{}
		}
	}
	// Stale entries: ASes that hosted the HG earlier but no longer do.
	if s >= 4 {
		for _, as := range e.World.TrueOffNetASes(id, s-4) {
			if rnd.Bool(0.03) {
				prior[as] = struct{}{}
			}
		}
	}
	inferred := hostingSetAt(e, id, s)
	found, additional := 0, 0
	for as := range prior {
		if _, ok := inferred[as]; ok {
			found++
		}
	}
	for as := range inferred {
		if _, ok := prior[as]; !ok {
			additional++
		}
	}
	row := ValPriorRow{Study: label, HG: id, Snapshot: s, PriorASes: len(prior), Found: found, Additional: additional}
	if len(prior) > 0 {
		row.PctFound = 100 * float64(found) / float64(len(prior))
	}
	return row
}

// ValPrior runs the three §5 comparisons. The Google and Facebook
// entries run the *actual* earlier techniques (package baselines) over
// the DNS control plane: ECS enumeration while Google still answered it,
// and FNA hostname guessing; the Netflix entry simulates the published
// Open Connect study as a high-coverage sample.
func ValPrior(e *Env) *ValPriorResult {
	out := &ValPriorResult{}
	resolver := dnssim.New(e.World)

	// ECS mapping, run just before Google's 2016 lockdown.
	ecsAt := dnssim.ECSCutoff - 1
	ecs := baselines.ECSMap(resolver, e.World, e.World.IP2AS(ecsAt), hg.Google, ecsAt)
	out.Rows = append(out.Rows, comparePrior(e, hg.Google, ecsAt, ecs, "ECS mapping (run)"))

	// FNA naming maps at the three dates the community published.
	for _, s := range []timeline.Snapshot{18, 24, 30} {
		fna := baselines.FNAMap(resolver, e.World, e.World.IP2AS(s), s, 60, 6)
		out.Rows = append(out.Rows, comparePrior(e, hg.Facebook, s, fna, "FNA naming map (run)"))
	}
	out.Rows = append(out.Rows, priorStudy(e, hg.Netflix, 14, 0.95, "Open Connect study"))
	return out
}

// comparePrior measures how much of a baseline technique's footprint our
// pipeline also uncovered, and what it found beyond it.
func comparePrior(e *Env, id hg.ID, s timeline.Snapshot, prior map[astopo.ASN]struct{}, label string) ValPriorRow {
	inferred := hostingSetAt(e, id, s)
	found, additional := 0, 0
	for as := range prior {
		if _, ok := inferred[as]; ok {
			found++
		}
	}
	for as := range inferred {
		if _, ok := prior[as]; !ok {
			additional++
		}
	}
	row := ValPriorRow{Study: label, HG: id, Snapshot: s, PriorASes: len(prior), Found: found, Additional: additional}
	if len(prior) > 0 {
		row.PctFound = 100 * float64(found) / float64(len(prior))
	}
	return row
}

// Render implements Renderer.
func (v *ValPriorResult) Render() string {
	var b strings.Builder
	b.WriteString("Comparison with earlier per-HG studies (paper: 94-98% of prior ASes uncovered)\n")
	fmt.Fprintf(&b, "%-28s %-10s %-8s %7s %7s %7s %8s\n", "study", "HG", "when", "prior", "found", "extra", "%found")
	for _, r := range v.Rows {
		fmt.Fprintf(&b, "%-28s %-10s %-8s %7d %7d %7d %7.1f%%\n",
			r.Study, r.HG, r.Snapshot.Label(), r.PriorASes, r.Found, r.Additional, r.PctFound)
	}
	return b.String()
}

// --- ablations ---

func init() {
	register("ablation", "Ablations: what each methodology step contributes", func(e *Env) Renderer { return Ablations(e) })
}

// AblationRow is one disabled-step measurement.
type AblationRow struct {
	Name string
	// CandidateIPs/ASes across all hypergiants with the step disabled
	// vs the full methodology.
	BaselineASes, AblatedASes int
}

// AblationResult quantifies each filter's contribution.
type AblationResult struct {
	Snapshot timeline.Snapshot
	Rows     []AblationRow
}

// Ablations runs the pipeline with individual steps disabled.
func Ablations(e *Env) *AblationResult {
	s := LastSnapshot()
	snap := e.Scan(corpus.Rapid7, s)
	base := e.Pipeline.Run(snap)
	sumCand := func(r *core.Result) int {
		total := 0
		for _, hr := range r.PerHG {
			total += len(hr.CandidateASes)
		}
		return total
	}
	run := func(opts core.Options) *core.Result {
		p := *e.Pipeline
		p.Opts = opts
		return p.Run(snap)
	}
	out := &AblationResult{Snapshot: s}
	baseline := sumCand(base)
	for _, abl := range []struct {
		name string
		opts core.Options
	}{
		{"no chain validation (§4.1 off)", core.Options{HeaderMode: core.HeadersEither, DisableChainValidation: true}},
		{"no dNSName subset rule (§4.3 off)", core.Options{HeaderMode: core.HeadersEither, DisableDNSNameFilter: true}},
		{"no Cloudflare filter (§7 off)", core.Options{HeaderMode: core.HeadersEither, DisableCloudflareFilter: true}},
		{"no conflict priority (§7 off)", core.Options{HeaderMode: core.HeadersEither, DisableConflictPriority: true}},
	} {
		res := run(abl.opts)
		row := AblationRow{Name: abl.name, BaselineASes: baseline, AblatedASes: sumCand(res)}
		if abl.name == "no conflict priority (§7 off)" {
			// Conflict priority affects confirmation, not candidates.
			row.BaselineASes = sumConfirmed(base)
			row.AblatedASes = sumConfirmed(res)
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

func sumConfirmed(r *core.Result) int {
	total := 0
	for _, hr := range r.PerHG {
		total += len(hr.ConfirmedASes)
	}
	return total
}

// Render implements Renderer.
func (a *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations @ %s (candidate ASes summed over all hypergiants)\n", a.Snapshot.Label())
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-36s baseline %6d → ablated %6d (+%d)\n",
			r.Name, r.BaselineASes, r.AblatedASes, r.AblatedASes-r.BaselineASes)
	}
	return b.String()
}
