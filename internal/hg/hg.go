// Package hg is the hypergiant registry: the 23 content hypergiants the
// paper examines (§4.6), together with everything the *measurement side*
// knows about each — the organization keyword searched for in TLS
// Subject Organization fields, the organization name literals used to
// find on-net ASes in WHOIS data, a pool of first-party domains, and the
// curated HTTP(S) header fingerprints of appendix A.5 (Table 4).
//
// What each hypergiant actually *does* in the simulated world (deployment
// strategy, certificate lifetimes, anomalies) deliberately lives in
// package worldsim instead: the pipeline must not peek at ground truth.
package hg

import "strings"

// ID identifies a hypergiant. The zero value None is invalid.
type ID int

// The examined hypergiants. Order groups the top-4 first (the four with
// the largest off-net footprints: Google, Netflix, Facebook, Akamai).
const (
	None ID = iota
	Google
	Netflix
	Facebook
	Akamai
	Alibaba
	Cloudflare
	Amazon
	CDNetworks
	Limelight
	Apple
	Twitter
	Microsoft
	Hulu
	Disney
	Yahoo
	Chinacache
	Fastly
	Cachefly
	Incapsula
	CDN77
	Bamtech
	Highwinds
	Verizon
	numIDs
)

// Count is the number of registered hypergiants (23).
const Count = int(numIDs) - 1

// Header is one HTTP response header.
type Header struct {
	Name  string
	Value string
}

// HeaderFingerprint is one Table 4 rule identifying a hypergiant's
// servers from response headers.
type HeaderFingerprint struct {
	// Name is the header name, matched case-insensitively. If
	// NamePrefix is set, any header whose name starts with Name matches
	// (e.g. "X-Netflix" matches "X-Netflix.request-id").
	Name       string
	NamePrefix bool
	// Value, when non-empty, must match the header value; if
	// ValuePrefix is set a prefix match suffices (Table 4's trailing *).
	Value       string
	ValuePrefix bool
	// Documented records whether public documentation confirms the
	// header (Table 4's last column).
	Documented bool
}

// Matches reports whether the fingerprint matches one concrete header.
func (f HeaderFingerprint) Matches(h Header) bool {
	name := strings.ToLower(h.Name)
	fname := strings.ToLower(f.Name)
	if f.NamePrefix {
		if !strings.HasPrefix(name, fname) {
			return false
		}
	} else if name != fname {
		return false
	}
	if f.Value == "" {
		return true
	}
	if f.ValuePrefix {
		return strings.HasPrefix(strings.ToLower(h.Value), strings.ToLower(f.Value))
	}
	return strings.EqualFold(h.Value, f.Value)
}

// Hypergiant describes one examined hypergiant from the measurer's
// perspective.
type Hypergiant struct {
	ID      ID
	Name    string // display name, e.g. "Google"
	Keyword string // case-insensitive substring searched in Subject Organization (§4.2)
	// OrgNames are the WHOIS organization name literals over time, used
	// to locate on-net ASes (§A.2). The simulator registers these names
	// in the OrgDB; the pipeline greps for Keyword.
	OrgNames []string
	// Domains is the hypergiant's first-party domain pool; certificates
	// draw their dNSNames from here.
	Domains []string
	// Fingerprints are the appendix-A.5 header rules. Empty for the
	// hypergiants the paper could not derive unique headers for.
	Fingerprints []HeaderFingerprint
}

// MatchesHeaders reports whether any fingerprint matches any header —
// the §4.5 confirmation test.
func (h *Hypergiant) MatchesHeaders(headers []Header) bool {
	for _, f := range h.Fingerprints {
		for _, hd := range headers {
			if f.Matches(hd) {
				return true
			}
		}
	}
	return false
}

// HasFingerprints reports whether header confirmation is possible for
// this hypergiant.
func (h *Hypergiant) HasFingerprints() bool { return len(h.Fingerprints) > 0 }

var registry = map[ID]*Hypergiant{
	Google: {
		ID: Google, Name: "Google", Keyword: "google",
		OrgNames: []string{"Google Inc.", "Google LLC"},
		Domains: []string{
			"*.google.com", "*.googlevideo.com", "*.gstatic.com", "*.youtube.com",
			"*.ggpht.com", "*.googleapis.com", "*.google.com.br", "*.android.com",
			"*.gvt1.com", "*.doubleclick.net",
		},
		Fingerprints: []HeaderFingerprint{
			{Name: "Server", Value: "gws", Documented: true},
			{Name: "Server", Value: "gvs", ValuePrefix: true, Documented: true},
			{Name: "X-Google-Security-Signals"},
			{Name: "X_FW_Edge"},
			{Name: "X_FW_Cache"},
		},
	},
	Netflix: {
		ID: Netflix, Name: "Netflix", Keyword: "netflix",
		OrgNames: []string{"Netflix, Inc."},
		Domains: []string{
			"*.nflxvideo.net", "*.netflix.com", "*.nflximg.net", "*.nflxext.com",
			"*.nflxso.net", "api-global.netflix.com",
		},
		Fingerprints: []HeaderFingerprint{
			{Name: "X-Netflix", NamePrefix: true},
			{Name: "X-TCP-Info"},
			{Name: "Access-Control-Expose-Headers", Value: "X-TCP-Info"},
		},
	},
	Facebook: {
		ID: Facebook, Name: "Facebook", Keyword: "facebook",
		OrgNames: []string{"Facebook, Inc."},
		Domains: []string{
			"*.facebook.com", "*.fbcdn.net", "*.instagram.com", "*.cdninstagram.com",
			"*.whatsapp.net", "*.fb.com", "*.messenger.com",
		},
		Fingerprints: []HeaderFingerprint{
			{Name: "Server", Value: "proxygen", ValuePrefix: true, Documented: true},
			{Name: "X-FB-Debug", Documented: true},
			{Name: "X-FB-TRIP-ID", Documented: true},
		},
	},
	Akamai: {
		ID: Akamai, Name: "Akamai", Keyword: "akamai",
		OrgNames: []string{"Akamai Technologies, Inc."},
		Domains: []string{
			"a248.e.akamai.net", "*.akamaized.net", "*.akamaihd.net", "*.akamai.net",
			"*.edgekey.net", "*.edgesuite.net", "*.akadns.net",
		},
		Fingerprints: []HeaderFingerprint{
			{Name: "Server", Value: "AkamaiGHost", Documented: true},
			{Name: "Server", Value: "AkamaiNetStorage", Documented: true},
			{Name: "Server", Value: "Ghost", Documented: true}, // only seen in China
		},
	},
	Alibaba: {
		ID: Alibaba, Name: "Alibaba", Keyword: "alibaba",
		OrgNames: []string{"Alibaba (China) Technology Co., Ltd."},
		Domains: []string{
			"*.alicdn.com", "*.aliyuncs.com", "*.taobao.com", "*.alibaba.com",
			"*.alikunlun.com", "*.tbcache.com",
		},
		Fingerprints: []HeaderFingerprint{
			{Name: "Server", Value: "tengine", ValuePrefix: true, Documented: true},
			{Name: "Eagleid", Documented: true},
			{Name: "Server", Value: "AliyunOSS", ValuePrefix: true, Documented: true},
		},
	},
	Cloudflare: {
		ID: Cloudflare, Name: "Cloudflare", Keyword: "cloudflare",
		OrgNames: []string{"Cloudflare, Inc."},
		Domains: []string{
			"*.cloudflare.com", "*.cloudflaressl.com", "*.cloudflare-dns.com",
			"cloudflare-dns.com", "*.pages.dev", "*.workers.dev",
		},
		Fingerprints: []HeaderFingerprint{
			{Name: "Server", Value: "Cloudflare", Documented: true},
			{Name: "cf-cache-status", Documented: true},
			{Name: "cf-ray", Documented: true},
			{Name: "cf-request-id", Documented: true},
		},
	},
	Amazon: {
		ID: Amazon, Name: "Amazon", Keyword: "amazon",
		OrgNames: []string{"Amazon.com, Inc.", "Amazon Technologies Inc."},
		Domains: []string{
			"*.amazonaws.com", "*.cloudfront.net", "*.amazon.com", "*.media-amazon.com",
			"*.ssl-images-amazon.com", "*.awsstatic.com",
		},
		Fingerprints: []HeaderFingerprint{
			{Name: "x-amz-id2", Documented: true},
			{Name: "x-amz-request-id", Documented: true},
			{Name: "Server", Value: "AmazonS3", Documented: true},
			{Name: "Server", Value: "awselb", ValuePrefix: true, Documented: true},
			{Name: "X-Amz-Cf-Id", Documented: true},
			{Name: "X-Amz-Cf-Pop", Documented: true},
			{Name: "X-Cache", Value: "Hit from cloudfront", Documented: true},
			{Name: "x-amzn-RequestId", Documented: true},
		},
	},
	CDNetworks: {
		ID: CDNetworks, Name: "Cdnetworks", Keyword: "cdnetworks",
		OrgNames: []string{"CDNetworks Inc."},
		Domains:  []string{"*.cdngc.net", "*.gccdn.net", "*.panthercdn.com"},
		Fingerprints: []HeaderFingerprint{
			{Name: "Server", Value: "PWS/", ValuePrefix: true, Documented: true},
		},
	},
	Limelight: {
		ID: Limelight, Name: "Limelight", Keyword: "limelight",
		OrgNames: []string{"Limelight Networks, Inc."},
		Domains:  []string{"*.llnwd.net", "*.llnw.net", "*.limelight.com", "*.lldns.net"},
		Fingerprints: []HeaderFingerprint{
			{Name: "Server", Value: "EdgePrism", ValuePrefix: true, Documented: true},
			{Name: "X-LLID", Documented: true},
		},
	},
	Apple: {
		ID: Apple, Name: "Apple", Keyword: "apple",
		OrgNames: []string{"Apple Inc."},
		Domains: []string{
			"*.apple.com", "*.aaplimg.com", "*.mzstatic.com", "*.icloud.com",
			"*.cdn-apple.com",
		},
		Fingerprints: []HeaderFingerprint{
			{Name: "CDNUUID"},
		},
	},
	Twitter: {
		ID: Twitter, Name: "Twitter", Keyword: "twitter",
		OrgNames: []string{"Twitter, Inc."},
		Domains:  []string{"*.twitter.com", "*.twimg.com", "*.t.co", "*.periscope.tv"},
		Fingerprints: []HeaderFingerprint{
			{Name: "Server", Value: "tsa_a", Documented: true},
		},
	},
	Microsoft: {
		ID: Microsoft, Name: "Microsoft", Keyword: "microsoft",
		OrgNames: []string{"Microsoft Corporation"},
		Domains: []string{
			"*.microsoft.com", "*.azureedge.net", "*.msecnd.net", "*.windows.net",
			"*.office365.com", "*.bing.com", "*.xboxlive.com",
		},
		Fingerprints: []HeaderFingerprint{
			{Name: "X-MSEdge-Ref", Documented: true},
		},
	},
	Hulu: {
		ID: Hulu, Name: "Hulu", Keyword: "hulu",
		OrgNames: []string{"Hulu, LLC"},
		Domains:  []string{"*.hulu.com", "*.huluim.com", "*.hulustream.com"},
		Fingerprints: []HeaderFingerprint{
			{Name: "X-Hulu-Request-Id"},
			{Name: "X-HULU-NGINX"},
		},
	},
	Verizon: {
		ID: Verizon, Name: "Verizon", Keyword: "verizon",
		OrgNames: []string{"Verizon Digital Media Services"},
		Domains:  []string{"*.edgecastcdn.net", "*.vdms.com", "*.verizondigitalmedia.com"},
		Fingerprints: []HeaderFingerprint{
			{Name: "Server", Value: "ECacc", ValuePrefix: true, Documented: true},
		},
	},
	Fastly: {
		ID: Fastly, Name: "Fastly", Keyword: "fastly",
		OrgNames: []string{"Fastly, Inc."},
		Domains:  []string{"*.fastly.net", "*.fastlylb.net", "*.fastly.com"},
		Fingerprints: []HeaderFingerprint{
			{Name: "X-Served-By", Value: "cache-", ValuePrefix: true, Documented: true},
		},
	},
	Incapsula: {
		ID: Incapsula, Name: "Incapsula", Keyword: "incapsula",
		OrgNames: []string{"Incapsula Inc"},
		Domains:  []string{"*.incapdns.net", "*.incapsula.com"},
		Fingerprints: []HeaderFingerprint{
			{Name: "X-CDN", Value: "Incapsula"},
		},
	},
	// The remaining hypergiants claim a CDN and have identifiable
	// certificates but no unique header fingerprints (§A.5).
	Disney: {
		ID: Disney, Name: "Disney", Keyword: "disney",
		OrgNames: []string{"Disney Worldwide Services, Inc."},
		Domains:  []string{"*.disney.com", "*.disneyplus.com", "*.dssott.com"},
	},
	Yahoo: {
		ID: Yahoo, Name: "Yahoo", Keyword: "yahoo",
		OrgNames: []string{"Yahoo! Inc.", "Yahoo Holdings, Inc."},
		Domains:  []string{"*.yahoo.com", "*.yimg.com", "*.yahooapis.com"},
	},
	Chinacache: {
		ID: Chinacache, Name: "Chinacache", Keyword: "chinacache",
		OrgNames: []string{"ChinaCache International Holdings"},
		Domains:  []string{"*.ccgslb.com", "*.chinacache.net"},
	},
	Cachefly: {
		ID: Cachefly, Name: "Cachefly", Keyword: "cachefly",
		OrgNames: []string{"CacheFly Networks, Inc."},
		Domains:  []string{"*.cachefly.net", "*.cachefly.com"},
	},
	CDN77: {
		ID: CDN77, Name: "CDN77", Keyword: "cdn77",
		OrgNames: []string{"CDN77 (DataCamp Limited)"},
		Domains:  []string{"*.cdn77.org", "*.cdn77-ssl.net", "*.cdn77.com"},
	},
	Bamtech: {
		ID: Bamtech, Name: "Bamtech", Keyword: "bamtech",
		OrgNames: []string{"BAMTech Media"},
		Domains:  []string{"*.bamgrid.com", "*.mlbstatic.com"},
	},
	Highwinds: {
		ID: Highwinds, Name: "Highwinds", Keyword: "highwinds",
		OrgNames: []string{"Highwinds Network Group, Inc."},
		Domains:  []string{"*.hwcdn.net", "*.highwinds.com"},
	},
}

// Get returns the registry entry for id. It panics on an unregistered
// id, which always indicates a programming error.
func Get(id ID) *Hypergiant {
	h, ok := registry[id]
	if !ok {
		panic("hg: unknown hypergiant id")
	}
	return h
}

// All returns every registered hypergiant in ID order.
func All() []*Hypergiant {
	out := make([]*Hypergiant, 0, Count)
	for id := None + 1; id < numIDs; id++ {
		out = append(out, registry[id])
	}
	return out
}

// Top4 returns the four hypergiants with the largest off-net footprints:
// Google, Netflix, Facebook, Akamai.
func Top4() []ID { return []ID{Google, Netflix, Facebook, Akamai} }

// IsTop4 reports whether id is one of the top-4.
func IsTop4(id ID) bool {
	return id == Google || id == Netflix || id == Facebook || id == Akamai
}

// ByName looks a hypergiant up by display name, case-insensitively.
func ByName(name string) (*Hypergiant, bool) {
	for _, h := range All() {
		if strings.EqualFold(h.Name, name) {
			return h, true
		}
	}
	return nil, false
}

// String implements fmt.Stringer.
func (id ID) String() string {
	if id <= None || id >= numIDs {
		return "None"
	}
	return registry[id].Name
}
