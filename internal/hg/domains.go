package hg

import "strings"

// MatchDomain reports whether a certificate dNSName pattern covers a
// concrete host name, using X.509 wildcard semantics: "*.example.com"
// matches exactly one additional left-most label ("a.example.com" but
// neither "example.com" nor "a.b.example.com"). Comparison is
// case-insensitive.
func MatchDomain(pattern, name string) bool {
	pattern = strings.ToLower(pattern)
	name = strings.ToLower(name)
	if !strings.HasPrefix(pattern, "*.") {
		return pattern == name
	}
	suffix := pattern[1:] // ".example.com"
	if !strings.HasSuffix(name, suffix) {
		return false
	}
	label := name[:len(name)-len(suffix)]
	return label != "" && !strings.Contains(label, ".")
}

// ConcreteDomain turns a dNSName pattern into a representative concrete
// host name: "*.google.com" becomes "www.google.com"; non-wildcard
// patterns are returned unchanged.
func ConcreteDomain(pattern string) string {
	if strings.HasPrefix(pattern, "*.") {
		return "www" + pattern[1:]
	}
	return pattern
}

// PopularDomains returns concrete host names for the hypergiant's most
// popular properties — the request targets used by the paper's active
// validation (§5).
func (h *Hypergiant) PopularDomains() []string {
	out := make([]string, 0, len(h.Domains))
	for _, d := range h.Domains {
		out = append(out, ConcreteDomain(d))
	}
	return out
}
