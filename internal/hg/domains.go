package hg

import "strings"

// MatchDomain reports whether a certificate dNSName pattern covers a
// concrete host name, using X.509 wildcard semantics: "*.example.com"
// matches exactly one additional left-most label ("a.example.com" but
// neither "example.com" nor "a.b.example.com"). Comparison is
// case-insensitive.
func MatchDomain(pattern, name string) bool {
	pattern = lowerASCII(pattern)
	name = lowerASCII(name)
	if !strings.HasPrefix(pattern, "*.") {
		return pattern == name
	}
	suffix := pattern[1:] // ".example.com"
	if !strings.HasSuffix(name, suffix) {
		return false
	}
	label := name[:len(name)-len(suffix)]
	return label != "" && !strings.Contains(label, ".")
}

// lowerASCII lowercases A-Z byte-wise. Domain names are ASCII;
// strings.ToLower must not be used here because it folds every invalid
// UTF-8 byte to U+FFFD, making distinct garbage names compare equal.
func lowerASCII(s string) string {
	i := 0
	for ; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			break
		}
	}
	if i == len(s) {
		return s
	}
	b := []byte(s)
	for ; i < len(b); i++ {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

// ConcreteDomain turns a dNSName pattern into a representative concrete
// host name: "*.google.com" becomes "www.google.com"; non-wildcard
// patterns are returned unchanged.
func ConcreteDomain(pattern string) string {
	if strings.HasPrefix(pattern, "*.") {
		return "www" + pattern[1:]
	}
	return pattern
}

// PopularDomains returns concrete host names for the hypergiant's most
// popular properties — the request targets used by the paper's active
// validation (§5).
func (h *Hypergiant) PopularDomains() []string {
	out := make([]string, 0, len(h.Domains))
	for _, d := range h.Domains {
		out = append(out, ConcreteDomain(d))
	}
	return out
}
