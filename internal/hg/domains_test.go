package hg

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMatchDomain(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"*.google.com", "www.google.com", true},
		{"*.google.com", "video.google.com", true},
		{"*.google.com", "google.com", false},     // wildcard needs a label
		{"*.google.com", "a.b.google.com", false}, // exactly one label
		{"*.google.com", "wwwgoogle.com", false},  // the dot matters
		{"*.google.com", "www.google.com.br", false},
		{"a248.e.akamai.net", "a248.e.akamai.net", true},
		{"a248.e.akamai.net", "a249.e.akamai.net", false},
		{"*.GOOGLE.com", "www.google.COM", true}, // case-insensitive
		{"*.google.com", "", false},
		{"", "", true},
	}
	for _, c := range cases {
		if got := MatchDomain(c.pattern, c.name); got != c.want {
			t.Errorf("MatchDomain(%q, %q) = %v, want %v", c.pattern, c.name, got, c.want)
		}
	}
}

func TestConcreteDomain(t *testing.T) {
	if got := ConcreteDomain("*.google.com"); got != "www.google.com" {
		t.Errorf("ConcreteDomain = %q", got)
	}
	if got := ConcreteDomain("a248.e.akamai.net"); got != "a248.e.akamai.net" {
		t.Errorf("non-wildcard should pass through: %q", got)
	}
}

func TestConcreteDomainAlwaysMatchesQuick(t *testing.T) {
	// Property: for every registered hypergiant domain pattern, the
	// concrete representative matches its own pattern.
	for _, h := range All() {
		for _, d := range h.Domains {
			if !MatchDomain(d, ConcreteDomain(d)) {
				t.Errorf("%v: ConcreteDomain(%q) does not match its pattern", h.ID, d)
			}
		}
	}
}

func TestPopularDomains(t *testing.T) {
	g := Get(Google)
	pop := g.PopularDomains()
	if len(pop) != len(g.Domains) {
		t.Fatalf("popular domains length %d", len(pop))
	}
	for _, d := range pop {
		if strings.Contains(d, "*") {
			t.Errorf("popular domain %q still a wildcard", d)
		}
	}
}

func TestMatchDomainNeverPanicsQuick(t *testing.T) {
	f := func(pattern, name string) bool {
		MatchDomain(pattern, name) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchDomainWildcardConsistencyQuick(t *testing.T) {
	// Property: "*.<suffix>" matches "<label>.<suffix>" for any dot-free
	// non-empty label and dot-containing suffix.
	f := func(rawLabel, rawSuffix string) bool {
		label := sanitize(rawLabel)
		suffix := sanitize(rawSuffix) + ".example"
		if label == "" {
			return true
		}
		return MatchDomain("*."+suffix, label+"."+suffix)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	if b.Len() > 20 {
		return b.String()[:20]
	}
	return b.String()
}
