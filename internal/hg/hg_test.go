package hg

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != Count || Count != 23 {
		t.Fatalf("registry has %d entries, want 23", len(all))
	}
	seen := map[string]bool{}
	for _, h := range all {
		if h.ID == None {
			t.Errorf("%s has zero ID", h.Name)
		}
		if h.Keyword == "" || h.Keyword != strings.ToLower(h.Keyword) {
			t.Errorf("%s keyword %q must be non-empty lowercase", h.Name, h.Keyword)
		}
		if len(h.OrgNames) == 0 {
			t.Errorf("%s has no organization names", h.Name)
		}
		for _, org := range h.OrgNames {
			if !strings.Contains(strings.ToLower(org), h.Keyword) {
				t.Errorf("%s org name %q does not contain keyword %q", h.Name, org, h.Keyword)
			}
		}
		if len(h.Domains) == 0 {
			t.Errorf("%s has no domains", h.Name)
		}
		if seen[h.Keyword] {
			t.Errorf("duplicate keyword %q", h.Keyword)
		}
		seen[h.Keyword] = true
		if h.ID.String() != h.Name {
			t.Errorf("ID.String() = %q, want %q", h.ID.String(), h.Name)
		}
	}
}

func TestTop4(t *testing.T) {
	top := Top4()
	want := []ID{Google, Netflix, Facebook, Akamai}
	for i, id := range want {
		if top[i] != id {
			t.Fatalf("Top4 = %v", top)
		}
		if !IsTop4(id) {
			t.Errorf("IsTop4(%v) = false", id)
		}
	}
	if IsTop4(Cloudflare) || IsTop4(None) {
		t.Error("non-top-4 misclassified")
	}
}

func TestByName(t *testing.T) {
	h, ok := ByName("google")
	if !ok || h.ID != Google {
		t.Fatalf("ByName(google) = %v, %v", h, ok)
	}
	if _, ok := ByName("notahypergiant"); ok {
		t.Fatal("unknown name resolved")
	}
}

func TestIDStringBounds(t *testing.T) {
	if None.String() != "None" || ID(-1).String() != "None" || ID(999).String() != "None" {
		t.Error("out-of-range IDs should stringify as None")
	}
}

func TestHeaderFingerprintMatching(t *testing.T) {
	cases := []struct {
		fp    HeaderFingerprint
		hd    Header
		match bool
	}{
		// exact name, exact value, case-insensitive
		{HeaderFingerprint{Name: "Server", Value: "AkamaiGHost"}, Header{"server", "akamaighost"}, true},
		{HeaderFingerprint{Name: "Server", Value: "AkamaiGHost"}, Header{"Server", "nginx"}, false},
		// name only
		{HeaderFingerprint{Name: "X-FB-Debug"}, Header{"X-FB-Debug", "abc123=="}, true},
		{HeaderFingerprint{Name: "X-FB-Debug"}, Header{"X-FB-Debug-2", "x"}, false},
		// value prefix
		{HeaderFingerprint{Name: "Server", Value: "gvs", ValuePrefix: true}, Header{"Server", "gvs 1.0"}, true},
		{HeaderFingerprint{Name: "Server", Value: "gvs", ValuePrefix: true}, Header{"Server", "gws"}, false},
		// name prefix (X-Netflix.*)
		{HeaderFingerprint{Name: "X-Netflix", NamePrefix: true}, Header{"X-Netflix.request-context", "r"}, true},
		{HeaderFingerprint{Name: "X-Netflix", NamePrefix: true}, Header{"X-Net", "r"}, false},
		// exact value with specific text
		{HeaderFingerprint{Name: "X-Cache", Value: "Hit from cloudfront"}, Header{"X-Cache", "Hit from cloudfront"}, true},
		{HeaderFingerprint{Name: "X-Cache", Value: "Hit from cloudfront"}, Header{"X-Cache", "Miss"}, false},
	}
	for i, c := range cases {
		if got := c.fp.Matches(c.hd); got != c.match {
			t.Errorf("case %d: Matches(%+v, %+v) = %v, want %v", i, c.fp, c.hd, got, c.match)
		}
	}
}

func TestMatchesHeaders(t *testing.T) {
	google := Get(Google)
	if !google.MatchesHeaders([]Header{{"Content-Type", "text/html"}, {"Server", "gws"}}) {
		t.Error("gws should confirm Google")
	}
	if google.MatchesHeaders([]Header{{"Server", "nginx"}}) {
		t.Error("nginx must not confirm Google")
	}
	if google.MatchesHeaders(nil) {
		t.Error("no headers must not confirm")
	}
}

func TestFingerprintCoverageMatchesPaper(t *testing.T) {
	// Table 4 lists fingerprints for 16 hypergiants; the other 7
	// (Bamtech, CDN77, Cachefly, Chinacache, Disney, Highwinds, Yahoo)
	// have none.
	var with, without int
	for _, h := range All() {
		if h.HasFingerprints() {
			with++
		} else {
			without++
		}
	}
	if with != 16 || without != 7 {
		t.Fatalf("fingerprints: %d with, %d without; want 16/7", with, without)
	}
	for _, id := range []ID{Bamtech, CDN77, Cachefly, Chinacache, Disney, Highwinds, Yahoo} {
		if Get(id).HasFingerprints() {
			t.Errorf("%v should have no fingerprints", id)
		}
	}
}

func TestFingerprintsAreMutuallyDistinctive(t *testing.T) {
	// A canonical header sample for each hypergiant must match only
	// that hypergiant (the whole point of the curated table). Build one
	// concrete header per HG from its first fingerprint.
	sample := func(h *Hypergiant) Header {
		f := h.Fingerprints[0]
		hd := Header{Name: f.Name, Value: f.Value}
		if f.NamePrefix {
			hd.Name += ".request-id"
		}
		if f.ValuePrefix {
			hd.Value += "-suffix"
		}
		if hd.Value == "" {
			hd.Value = "opaque"
		}
		return hd
	}
	for _, owner := range All() {
		if !owner.HasFingerprints() {
			continue
		}
		hd := sample(owner)
		for _, other := range All() {
			if !other.HasFingerprints() {
				continue
			}
			got := other.MatchesHeaders([]Header{hd})
			if other.ID == owner.ID && !got {
				t.Errorf("%v does not match its own sample %+v", owner.ID, hd)
			}
			if other.ID != owner.ID && got {
				t.Errorf("%v's sample %+v also matches %v", owner.ID, hd, other.ID)
			}
		}
	}
}

func TestGetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Get(None) should panic")
		}
	}()
	Get(None)
}
