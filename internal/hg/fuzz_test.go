package hg

import "testing"

func FuzzMatchDomain(f *testing.F) {
	f.Add("*.google.com", "www.google.com")
	f.Add("", "")
	f.Add("*.", "x.")
	f.Add("*.a", "b.a")
	f.Fuzz(func(t *testing.T, pattern, name string) {
		got := MatchDomain(pattern, name)
		// Matching is case-insensitive by definition.
		if got != MatchDomain(pattern, name) {
			t.Fatal("non-deterministic")
		}
		// A concrete (non-wildcard) pattern matches only itself.
		if len(pattern) > 0 && pattern[0] != '*' && got {
			if !equalFold(pattern, name) {
				t.Fatalf("non-wildcard %q matched different name %q", pattern, name)
			}
		}
	})
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
