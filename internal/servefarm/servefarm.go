// Package servefarm runs a farm of real TLS/HTTP servers on loopback,
// emulating the serving behaviours the methodology must cope with:
// default certificates, SNI-dependent certificates, null default
// certificates (SNI-only servers), self-signed impostors, and
// per-operator response headers. The probe scanner exercises genuine
// crypto/tls handshakes and HTTP requests against it — the live
// equivalent of the paper's certigo and ZGrab2 scans.
package servefarm

import (
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"offnetscope/internal/certgen"
	"offnetscope/internal/hg"
)

// Spec describes one server in the farm.
type Spec struct {
	// Name labels the server in results (e.g. "google-onnet-1").
	Name string
	// Organization and DNSNames shape the default certificate.
	Organization string
	DNSNames     []string
	// Headers are sent on every HTTP(S) response.
	Headers []hg.Header
	// SelfSigned mints the default certificate without the farm CA.
	SelfSigned bool
	// SNIOnly servers present no default certificate: the handshake
	// fails without a matching server name (the §8 null-certificate
	// hide-and-seek behaviour).
	SNIOnly bool
	// ExtraDomains are additional certificates served only for their
	// exact SNI (third-party hosting: an Akamai box serving Apple).
	ExtraDomains map[string]ExtraCert
}

// ExtraCert is one SNI-specific certificate's identity.
type ExtraCert struct {
	Organization string
	DNSNames     []string
}

// Server is one running farm member.
type Server struct {
	Spec     Spec
	TLSAddr  string // host:port of the HTTPS listener
	HTTPAddr string // host:port of the plain-HTTP listener
	tlsLn    net.Listener
	httpLn   net.Listener
	httpSrv  *http.Server
	httpsSrv *http.Server
}

// Farm is a set of running servers sharing one CA.
type Farm struct {
	CA      *certgen.CA
	Servers []*Server
}

// Start brings up every spec on 127.0.0.1 with ephemeral ports.
func Start(specs []Spec) (*Farm, error) {
	ca, err := certgen.NewCA("Farm WebPKI")
	if err != nil {
		return nil, err
	}
	farm := &Farm{CA: ca}
	for _, spec := range specs {
		srv, err := startServer(ca, spec)
		if err != nil {
			farm.Close()
			return nil, fmt.Errorf("servefarm: starting %s: %w", spec.Name, err)
		}
		farm.Servers = append(farm.Servers, srv)
	}
	return farm, nil
}

func startServer(ca *certgen.CA, spec Spec) (*Server, error) {
	var cert tls.Certificate
	var err error
	leafSpec := certgen.LeafSpec{Organization: spec.Organization, DNSNames: spec.DNSNames}
	if spec.SelfSigned {
		cert, err = certgen.SelfSigned(leafSpec)
	} else {
		cert, err = ca.IssueLeaf(leafSpec)
	}
	if err != nil {
		return nil, err
	}
	namedCert := &cert
	// SNI-only servers hold their certificate but refuse to present it
	// as a default.
	defaultCert := namedCert
	if spec.SNIOnly {
		defaultCert = nil
	}
	extra := make(map[string]*tls.Certificate, len(spec.ExtraDomains))
	for domain, ec := range spec.ExtraDomains {
		cert, err := ca.IssueLeaf(certgen.LeafSpec{Organization: ec.Organization, DNSNames: ec.DNSNames})
		if err != nil {
			return nil, err
		}
		extra[domain] = &cert
	}

	tlsCfg := &tls.Config{
		GetCertificate: func(chi *tls.ClientHelloInfo) (*tls.Certificate, error) {
			if chi.ServerName != "" {
				if c, ok := extra[chi.ServerName]; ok {
					return c, nil
				}
				if matchesAny(spec.DNSNames, chi.ServerName) {
					return namedCert, nil
				}
			}
			if defaultCert == nil {
				return nil, errors.New("servefarm: no certificate for this server name")
			}
			return defaultCert, nil
		},
	}

	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for _, h := range spec.Headers {
			w.Header().Set(h.Name, h.Value)
		}
		fmt.Fprintf(w, "hello from %s\n", spec.Name)
	})

	tlsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tlsLn.Close()
		return nil, err
	}
	srv := &Server{
		Spec:     spec,
		TLSAddr:  tlsLn.Addr().String(),
		HTTPAddr: httpLn.Addr().String(),
		tlsLn:    tlsLn,
		httpLn:   httpLn,
		httpsSrv: &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second},
		httpSrv:  &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second},
	}
	go srv.httpsSrv.Serve(tls.NewListener(tlsLn, tlsCfg)) //nolint:errcheck — closed on shutdown
	go srv.httpSrv.Serve(httpLn)                          //nolint:errcheck — closed on shutdown
	return srv, nil
}

func matchesAny(patterns []string, name string) bool {
	for _, p := range patterns {
		if hg.MatchDomain(p, name) {
			return true
		}
	}
	return false
}

// TLSAddrs lists every server's HTTPS address in farm order.
func (f *Farm) TLSAddrs() []string {
	out := make([]string, len(f.Servers))
	for i, s := range f.Servers {
		out[i] = s.TLSAddr
	}
	return out
}

// ByTLSAddr finds the server listening on addr.
func (f *Farm) ByTLSAddr(addr string) (*Server, bool) {
	for _, s := range f.Servers {
		if s.TLSAddr == addr {
			return s, true
		}
	}
	return nil, false
}

// Close shuts every server down.
func (f *Farm) Close() {
	var wg sync.WaitGroup
	for _, s := range f.Servers {
		wg.Add(1)
		go func(s *Server) {
			defer wg.Done()
			s.httpsSrv.Close()
			s.httpSrv.Close()
			s.tlsLn.Close()
			s.httpLn.Close()
		}(s)
	}
	wg.Wait()
}
