package servefarm

import (
	"crypto/tls"
	"io"
	"net/http"
	"testing"
	"time"

	"offnetscope/internal/hg"
)

func startTestFarm(t *testing.T) *Farm {
	t.Helper()
	farm, err := Start([]Spec{
		{
			Name: "alpha", Organization: "Alpha Corp",
			DNSNames: []string{"*.alpha.example"},
			Headers:  []hg.Header{{Name: "X-Alpha", Value: "1"}},
			ExtraDomains: map[string]ExtraCert{
				"www.beta.example": {Organization: "Beta Inc", DNSNames: []string{"*.beta.example"}},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(farm.Close)
	return farm
}

func dialTLS(t *testing.T, addr, sni string) *tls.Conn {
	t.Helper()
	conn, err := tls.Dial("tcp", addr, &tls.Config{ServerName: sni, InsecureSkipVerify: true})
	if err != nil {
		t.Fatalf("dial %s (sni %q): %v", addr, sni, err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestDefaultCertificate(t *testing.T) {
	farm := startTestFarm(t)
	conn := dialTLS(t, farm.Servers[0].TLSAddr, "")
	leaf := conn.ConnectionState().PeerCertificates[0]
	if leaf.Subject.Organization[0] != "Alpha Corp" {
		t.Errorf("default cert org = %q", leaf.Subject.Organization[0])
	}
}

func TestSNISelectsExtraCert(t *testing.T) {
	farm := startTestFarm(t)
	conn := dialTLS(t, farm.Servers[0].TLSAddr, "www.beta.example")
	leaf := conn.ConnectionState().PeerCertificates[0]
	if leaf.Subject.Organization[0] != "Beta Inc" {
		t.Errorf("SNI cert org = %q", leaf.Subject.Organization[0])
	}
	// Matching own wildcard also works.
	conn = dialTLS(t, farm.Servers[0].TLSAddr, "www.alpha.example")
	leaf = conn.ConnectionState().PeerCertificates[0]
	if leaf.Subject.Organization[0] != "Alpha Corp" {
		t.Errorf("own-SNI cert org = %q", leaf.Subject.Organization[0])
	}
}

func TestHTTPAndHTTPSHeaders(t *testing.T) {
	farm := startTestFarm(t)
	srv := farm.Servers[0]

	client := &http.Client{
		Timeout: 5 * time.Second,
		Transport: &http.Transport{
			TLSClientConfig: &tls.Config{InsecureSkipVerify: true},
		},
	}
	resp, err := client.Get("https://" + srv.TLSAddr + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Alpha") != "1" {
		t.Errorf("custom header missing: %v", resp.Header)
	}
	if len(body) == 0 {
		t.Error("empty body")
	}

	resp, err = client.Get("http://" + srv.HTTPAddr + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Alpha") != "1" {
		t.Error("custom header missing on plain HTTP")
	}
}

func TestByTLSAddr(t *testing.T) {
	farm := startTestFarm(t)
	srv, ok := farm.ByTLSAddr(farm.Servers[0].TLSAddr)
	if !ok || srv.Spec.Name != "alpha" {
		t.Fatal("ByTLSAddr failed")
	}
	if _, ok := farm.ByTLSAddr("127.0.0.1:1"); ok {
		t.Fatal("unknown address resolved")
	}
	if len(farm.TLSAddrs()) != 1 {
		t.Fatal("TLSAddrs wrong length")
	}
}

func TestStartFailureCleansUp(t *testing.T) {
	// A farm that fails mid-start must close already-started servers;
	// we can't easily force a failure with valid specs, so at least
	// verify double Close is safe.
	farm := startTestFarm(t)
	farm.Close()
	farm.Close()
}
