package report

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty series = %q", got)
	}
	got := Sparkline([]int{0, 0, 0})
	if utf8.RuneCountInString(got) != 3 {
		t.Errorf("zero series length = %q", got)
	}
	got = Sparkline([]int{1, 2, 4, 8})
	if utf8.RuneCountInString(got) != 4 {
		t.Fatalf("length = %q", got)
	}
	runes := []rune(got)
	if runes[3] != '█' {
		t.Errorf("max value should be a full block: %q", got)
	}
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("monotone series rendered non-monotonically: %q", got)
		}
	}
}

func TestSparklineScalesQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		values := make([]int, len(raw))
		for i, v := range raw {
			values[i] = int(v)
		}
		got := Sparkline(values)
		return utf8.RuneCountInString(got) == len(values)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSparkRow(t *testing.T) {
	row := SparkRow("Google", []int{10, 20, 40})
	for _, want := range []string{"Google", "10", "40"} {
		if !strings.Contains(row, want) {
			t.Errorf("row %q missing %q", row, want)
		}
	}
	if !strings.Contains(SparkRow("x", nil), "no data") {
		t.Error("empty row should say so")
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); utf8.RuneCountInString(got) != 10 {
		t.Errorf("bar width = %q", got)
	}
	if got := Bar(10, 10, 8); strings.Contains(got, "·") {
		t.Errorf("full bar should have no empty cells: %q", got)
	}
	if got := Bar(0, 10, 8); strings.Contains(got, "█") {
		t.Errorf("empty bar should have no full cells: %q", got)
	}
	if Bar(5, 0, 10) != "" || Bar(5, 10, 0) != "" {
		t.Error("degenerate bars should be empty")
	}
	// Overflow clamps.
	if got := Bar(100, 10, 8); utf8.RuneCountInString(got) != 8 {
		t.Errorf("overflow bar = %q", got)
	}
}

func TestBarRow(t *testing.T) {
	row := BarRow("Stub", 3, 10, 10)
	if !strings.Contains(row, "Stub") || !strings.Contains(row, "3") {
		t.Errorf("row = %q", row)
	}
}

func TestStackedShares(t *testing.T) {
	row := StackedShares("2021-04", []float64{25, 50, 25}, 20)
	if !strings.Contains(row, "2021-04") {
		t.Errorf("row = %q", row)
	}
	if !strings.Contains(row, "25%") && !strings.Contains(row, "50") {
		t.Errorf("percentages missing: %q", row)
	}
	// Zero shares render as a dotted bar without dividing by zero.
	row = StackedShares("empty", []float64{0, 0}, 10)
	if !strings.Contains(row, strings.Repeat("·", 10)) {
		t.Errorf("zero shares row = %q", row)
	}
}
