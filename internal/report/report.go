// Package report renders experiment series as terminal charts:
// sparklines for single series and stacked horizontal bars for
// composition, so cmd/experiments output conveys the *shape* of each
// figure at a glance.
package report

import (
	"fmt"
	"strings"
)

// sparkRunes are the eight block heights of a sparkline cell.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as one line of block characters, scaled to
// the series' own maximum. An all-zero (or empty) series renders as
// baseline blocks.
func Sparkline(values []int) string {
	if len(values) == 0 {
		return ""
	}
	max := 0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if max > 0 && v > 0 {
			idx = (v*len(sparkRunes) - 1) / max
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
			if idx < 0 {
				idx = 0
			}
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// SparkRow renders a labelled sparkline with first/last values, e.g.
//
//	Google     1044 ▁▂▃▄▅▆▇█ 3810
func SparkRow(label string, values []int) string {
	if len(values) == 0 {
		return fmt.Sprintf("%-12s (no data)", label)
	}
	return fmt.Sprintf("%-12s %6d %s %-6d", label, values[0], Sparkline(values), values[len(values)-1])
}

// Bar renders a horizontal bar of width cells for value out of max.
func Bar(value, max, width int) string {
	if max <= 0 || width <= 0 {
		return ""
	}
	n := value * width / max
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return strings.Repeat("█", n) + strings.Repeat("·", width-n)
}

// BarRow renders a labelled bar with its value, e.g.
//
//	Stub        ███████···············  102
func BarRow(label string, value, max, width int) string {
	return fmt.Sprintf("%-12s %s %5d", label, Bar(value, max, width), value)
}

// StackedShares renders a percentage composition as one bar, e.g.
//
//	2021-04  ████▒▒▒▒░░░░  29/44/27
//
// using a distinct fill per component. Components beyond the fill
// alphabet reuse the last glyph.
func StackedShares(label string, shares []float64, width int) string {
	fills := []rune{'█', '▓', '▒', '░', '/', '\\'}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s ", label)
	used := 0
	var total float64
	for _, s := range shares {
		total += s
	}
	if total <= 0 {
		b.WriteString(strings.Repeat("·", width))
		return b.String()
	}
	for i, s := range shares {
		cells := int(s/total*float64(width) + 0.5)
		if used+cells > width {
			cells = width - used
		}
		fill := fills[min(i, len(fills)-1)]
		b.WriteString(strings.Repeat(string(fill), cells))
		used += cells
	}
	if used < width {
		b.WriteString(strings.Repeat("·", width-used))
	}
	b.WriteString("  ")
	for i, s := range shares {
		if i > 0 {
			b.WriteString("/")
		}
		fmt.Fprintf(&b, "%.0f", s/total*100)
	}
	b.WriteString("%")
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
