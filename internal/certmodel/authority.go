package certmodel

import (
	"time"

	"offnetscope/internal/rng"
)

// Authority mints simulated certificates: it plays the role of the WebPKI
// CA ecosystem for the world simulator. Each Authority owns one root and
// a pool of intermediates, and hands out end-entity certificates chained
// through them. Key IDs and serial numbers are drawn from a deterministic
// RNG so a world generated twice from the same seed contains bit-identical
// certificates.
type Authority struct {
	Name          string
	Root          *Certificate
	Intermediates []*Certificate

	rnd     *rng.RNG
	nextKey uint64
	serial  uint64
}

// NewAuthority creates a CA with one root and n intermediates, all valid
// across [validFrom, validTo].
func NewAuthority(name string, n int, validFrom, validTo time.Time, rnd *rng.RNG) *Authority {
	a := &Authority{Name: name, rnd: rnd.Fork("authority/" + name)}
	rootKey := a.newKey()
	a.Root = &Certificate{
		SerialNumber: a.nextSerial(),
		Subject:      Name{Organization: name, CommonName: name + " Root CA"},
		Issuer:       Name{Organization: name, CommonName: name + " Root CA"},
		NotBefore:    validFrom,
		NotAfter:     validTo,
		IsCA:         true,
		Key:          rootKey,
		SignedBy:     rootKey, // roots are self-signed by definition
	}
	for i := 0; i < n; i++ {
		ic := &Certificate{
			SerialNumber: a.nextSerial(),
			Subject:      Name{Organization: name, CommonName: name + " Intermediate CA"},
			Issuer:       a.Root.Subject,
			NotBefore:    validFrom,
			NotAfter:     validTo,
			IsCA:         true,
			Key:          a.newKey(),
			SignedBy:     rootKey,
		}
		a.Intermediates = append(a.Intermediates, ic)
	}
	return a
}

func (a *Authority) newKey() KeyID {
	a.nextKey++
	return KeyID(a.rnd.Uint64()&^0xff | a.nextKey&0xff)
}

func (a *Authority) nextSerial() uint64 {
	a.serial++
	return a.rnd.Uint64()>>16<<16 | a.serial&0xffff
}

// LeafSpec describes an end-entity certificate to mint.
type LeafSpec struct {
	Organization string
	CommonName   string
	DNSNames     []string
	NotBefore    time.Time
	NotAfter     time.Time
}

// IssueLeaf mints an end-entity certificate signed by one of the
// authority's intermediates and returns the full chain
// (leaf, intermediate, root).
func (a *Authority) IssueLeaf(spec LeafSpec) Chain {
	inter := a.Intermediates[a.rnd.Intn(len(a.Intermediates))]
	leaf := &Certificate{
		SerialNumber: a.nextSerial(),
		Subject: Name{
			Organization: spec.Organization,
			CommonName:   spec.CommonName,
		},
		Issuer:    inter.Subject,
		DNSNames:  append([]string(nil), spec.DNSNames...),
		NotBefore: spec.NotBefore,
		NotAfter:  spec.NotAfter,
		Key:       a.newKey(),
		SignedBy:  inter.Key,
	}
	return Chain{leaf, inter, a.Root}
}

// IssueSelfSigned mints a self-signed end-entity certificate — the kind
// anyone can create to mimic a hypergiant, which §4.1 discards.
func (a *Authority) IssueSelfSigned(spec LeafSpec) Chain {
	key := a.newKey()
	leaf := &Certificate{
		SerialNumber: a.nextSerial(),
		Subject:      Name{Organization: spec.Organization, CommonName: spec.CommonName},
		Issuer:       Name{Organization: spec.Organization, CommonName: spec.CommonName},
		DNSNames:     append([]string(nil), spec.DNSNames...),
		NotBefore:    spec.NotBefore,
		NotAfter:     spec.NotAfter,
		Key:          key,
		SignedBy:     key,
	}
	return Chain{leaf}
}
