// Package certmodel models the subset of X.509 the paper's methodology
// consumes: end-entity and CA certificates with Subject Organization,
// dNSNames, validity windows, and chains of trust verified against a
// WebPKI-style root store.
//
// Signatures are simulated: every certificate carries the key ID of its
// signer, and verification checks issuer linkage, CA bits, validity
// windows, and anchoring in a TrustStore. This keeps corpus generation of
// tens of millions of certificate records cheap while preserving every
// validation decision the pipeline makes (§4.1): expired certificates,
// self-signed end entities, forged or broken chains, and untrusted roots
// are all representable and all rejected for the same reasons as in the
// paper. Real cryptographic certificates for the live network path are
// minted by package certgen instead.
package certmodel

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// KeyID identifies a (simulated) public key.
type KeyID uint64

// Name is the subset of an X.509 distinguished name the methodology reads.
type Name struct {
	Organization string
	CommonName   string
	Country      string
}

// Certificate is one X.509-shaped certificate. Certificates are immutable
// after creation; Fingerprint caches the content hash.
type Certificate struct {
	SerialNumber uint64
	Subject      Name
	Issuer       Name
	DNSNames     []string // authenticated dNSName SAN entries
	NotBefore    time.Time
	NotAfter     time.Time
	IsCA         bool

	// Key is this certificate's public key; SignedBy is the key that
	// produced the signature. A self-signed certificate has
	// SignedBy == Key. Forged marks a signature that does not verify
	// (e.g. a tampered certificate).
	Key      KeyID
	SignedBy KeyID
	Forged   bool

	// fingerprint caches the content hash; accessed atomically so
	// shared certificates (interned intermediates) are safe under
	// concurrent readers.
	fingerprint atomic.Uint64
}

// Fingerprint is a stable content hash of a certificate, used to group IP
// addresses serving the same certificate (Fig. 11) and to deduplicate
// corpus records.
type Fingerprint uint64

// Fingerprint returns the certificate's content hash, computing and
// caching it on first use.
func (c *Certificate) Fingerprint() Fingerprint {
	if fp := c.fingerprint.Load(); fp != 0 {
		return Fingerprint(fp)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%s|%s|%s|%d|%d|%v|%d|%d|%v",
		c.SerialNumber,
		c.Subject.Organization, c.Subject.CommonName,
		c.Issuer.Organization, c.Issuer.CommonName,
		strings.Join(c.DNSNames, ","),
		c.NotBefore.Unix(), c.NotAfter.Unix(), c.IsCA,
		c.Key, c.SignedBy, c.Forged)
	fp := h.Sum64()
	if fp == 0 {
		fp = 1
	}
	c.fingerprint.Store(fp)
	return Fingerprint(fp)
}

// SelfSigned reports whether the certificate is signed by its own key.
func (c *Certificate) SelfSigned() bool { return c.Key == c.SignedBy }

// ValidAt reports whether t falls inside the certificate's validity
// window (inclusive of the boundaries, as in RFC 5280).
func (c *Certificate) ValidAt(t time.Time) bool {
	return !t.Before(c.NotBefore) && !t.After(c.NotAfter)
}

// MatchesOrganization performs the paper's case-insensitive substring
// search of a hypergiant keyword in the Subject Organization (§4.2).
func (c *Certificate) MatchesOrganization(keyword string) bool {
	return strings.Contains(strings.ToLower(c.Subject.Organization), strings.ToLower(keyword))
}

// Clone returns a deep copy, used when the simulator derives tampered or
// renewed variants of a certificate.
func (c *Certificate) Clone() *Certificate {
	dup := &Certificate{
		SerialNumber: c.SerialNumber,
		Subject:      c.Subject,
		Issuer:       c.Issuer,
		DNSNames:     append([]string(nil), c.DNSNames...),
		NotBefore:    c.NotBefore,
		NotAfter:     c.NotAfter,
		IsCA:         c.IsCA,
		Key:          c.Key,
		SignedBy:     c.SignedBy,
		Forged:       c.Forged,
	}
	return dup
}

// Chain is an ordered certificate chain: the end-entity certificate
// first, then intermediates, ending at (or just below) a root.
type Chain []*Certificate

// Leaf returns the end-entity certificate, or nil for an empty chain.
func (ch Chain) Leaf() *Certificate {
	if len(ch) == 0 {
		return nil
	}
	return ch[0]
}

// TrustStore is the set of trusted root keys — the stand-in for the
// Common CA Database WebPKI list the paper validates against.
type TrustStore struct {
	roots map[KeyID]*Certificate
}

// NewTrustStore returns an empty store.
func NewTrustStore() *TrustStore {
	return &TrustStore{roots: make(map[KeyID]*Certificate)}
}

// AddRoot registers a root CA certificate as trusted. Non-CA certificates
// are rejected.
func (s *TrustStore) AddRoot(c *Certificate) error {
	if !c.IsCA {
		return errors.New("certmodel: trust store roots must be CA certificates")
	}
	s.roots[c.Key] = c
	return nil
}

// Trusted reports whether key belongs to a trusted root.
func (s *TrustStore) Trusted(key KeyID) bool {
	_, ok := s.roots[key]
	return ok
}

// Len returns the number of trusted roots.
func (s *TrustStore) Len() int { return len(s.roots) }

// Roots returns the trusted root certificates in deterministic order.
func (s *TrustStore) Roots() []*Certificate {
	out := make([]*Certificate, 0, len(s.roots))
	for _, c := range s.roots {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// VerifyError explains why a chain failed §4.1 validation. Reason is one
// of the Reason* constants; the pipeline aggregates failures by reason to
// reproduce the paper's "more than one third of hosts returned invalid
// certificates" statistic.
type VerifyError struct {
	Reason string
	Detail string
}

func (e *VerifyError) Error() string {
	return "certmodel: invalid chain: " + e.Reason + ": " + e.Detail
}

// Chain-verification failure reasons.
const (
	ReasonEmptyChain   = "empty-chain"
	ReasonExpired      = "expired"
	ReasonNotYetValid  = "not-yet-valid"
	ReasonSelfSigned   = "self-signed-leaf"
	ReasonBrokenChain  = "broken-chain"
	ReasonForged       = "forged-signature"
	ReasonNotCA        = "intermediate-not-ca"
	ReasonUntrusted    = "untrusted-root"
	ReasonExpiredChain = "expired-intermediate"
)

// Verify checks a chain at time at against the trust store, applying
// exactly the §4.1 rules: the leaf must be inside its validity window and
// must not be self-signed, every signature must link and verify, every
// issuer must be a CA valid at time at, and the chain must anchor at a
// trusted root. A nil error means the chain is valid.
func Verify(ch Chain, at time.Time, store *TrustStore) error {
	if len(ch) == 0 {
		return &VerifyError{Reason: ReasonEmptyChain, Detail: "no certificates presented"}
	}
	leaf := ch[0]
	if at.Before(leaf.NotBefore) {
		return &VerifyError{Reason: ReasonNotYetValid, Detail: fmt.Sprintf("leaf valid from %s", leaf.NotBefore.Format(time.RFC3339))}
	}
	if at.After(leaf.NotAfter) {
		return &VerifyError{Reason: ReasonExpired, Detail: fmt.Sprintf("leaf expired %s", leaf.NotAfter.Format(time.RFC3339))}
	}
	if leaf.SelfSigned() {
		// Anyone can mint a certificate naming any organization; the
		// paper discards all self-signed end entities.
		return &VerifyError{Reason: ReasonSelfSigned, Detail: "self-signed end-entity certificate"}
	}
	for i, c := range ch {
		if c.Forged {
			return &VerifyError{Reason: ReasonForged, Detail: fmt.Sprintf("certificate %d has an invalid signature", i)}
		}
		if i == 0 {
			continue
		}
		if !c.IsCA {
			return &VerifyError{Reason: ReasonNotCA, Detail: fmt.Sprintf("certificate %d signs but is not a CA", i)}
		}
		if at.Before(c.NotBefore) || at.After(c.NotAfter) {
			return &VerifyError{Reason: ReasonExpiredChain, Detail: fmt.Sprintf("intermediate %d outside validity window", i)}
		}
		if ch[i-1].SignedBy != c.Key {
			return &VerifyError{Reason: ReasonBrokenChain, Detail: fmt.Sprintf("certificate %d not signed by certificate %d", i-1, i)}
		}
	}
	last := ch[len(ch)-1]
	if store.Trusted(last.Key) || store.Trusted(last.SignedBy) {
		return nil
	}
	return &VerifyError{Reason: ReasonUntrusted, Detail: "chain does not anchor at a trusted root"}
}

// Reason extracts the failure reason from an error returned by Verify,
// or "" for nil / foreign errors.
func Reason(err error) string {
	var ve *VerifyError
	if errors.As(err, &ve) {
		return ve.Reason
	}
	return ""
}

// LeafDNSNames returns the end-entity certificate's dNSNames, or nil for
// an empty chain.
func (ch Chain) LeafDNSNames() []string {
	if leaf := ch.Leaf(); leaf != nil {
		return leaf.DNSNames
	}
	return nil
}
