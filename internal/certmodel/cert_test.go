package certmodel

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"offnetscope/internal/rng"
)

var (
	epoch = time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	far   = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	mid   = time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC)
)

func testAuthority(t *testing.T) (*Authority, *TrustStore) {
	t.Helper()
	a := NewAuthority("TestPKI", 2, epoch, far, rng.New(1))
	store := NewTrustStore()
	if err := store.AddRoot(a.Root); err != nil {
		t.Fatal(err)
	}
	return a, store
}

func leafSpec(org string, names ...string) LeafSpec {
	return LeafSpec{
		Organization: org,
		CommonName:   names[0],
		DNSNames:     names,
		NotBefore:    epoch,
		NotAfter:     far,
	}
}

func TestVerifyValidChain(t *testing.T) {
	a, store := testAuthority(t)
	ch := a.IssueLeaf(leafSpec("Google LLC", "*.google.com", "*.googlevideo.com"))
	if err := Verify(ch, mid, store); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
}

func TestVerifyEmptyChain(t *testing.T) {
	_, store := testAuthority(t)
	err := Verify(nil, mid, store)
	if Reason(err) != ReasonEmptyChain {
		t.Fatalf("reason = %q, err = %v", Reason(err), err)
	}
}

func TestVerifyExpiredLeaf(t *testing.T) {
	a, store := testAuthority(t)
	spec := leafSpec("Netflix, Inc.", "*.nflxvideo.net")
	spec.NotAfter = time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	ch := a.IssueLeaf(spec)
	if err := Verify(ch, mid, store); Reason(err) != ReasonExpired {
		t.Fatalf("reason = %q, err = %v", Reason(err), err)
	}
	// But valid when evaluated inside the window: the paper checks
	// validity at scan time, not at analysis time.
	if err := Verify(ch, time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC), store); err != nil {
		t.Fatalf("chain should verify at scan time: %v", err)
	}
}

func TestVerifyNotYetValidLeaf(t *testing.T) {
	a, store := testAuthority(t)
	spec := leafSpec("Google LLC", "*.google.com")
	spec.NotBefore = time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)
	ch := a.IssueLeaf(spec)
	if err := Verify(ch, mid, store); Reason(err) != ReasonNotYetValid {
		t.Fatalf("reason = %q, err = %v", Reason(err), err)
	}
}

func TestVerifySelfSignedLeafRejected(t *testing.T) {
	a, store := testAuthority(t)
	ch := a.IssueSelfSigned(leafSpec("Google LLC", "*.google.com"))
	if err := Verify(ch, mid, store); Reason(err) != ReasonSelfSigned {
		t.Fatalf("reason = %q, err = %v", Reason(err), err)
	}
}

func TestVerifyForgedSignature(t *testing.T) {
	a, store := testAuthority(t)
	ch := a.IssueLeaf(leafSpec("Facebook, Inc.", "*.facebook.com"))
	forged := Chain{ch[0].Clone(), ch[1], ch[2]}
	forged[0].Forged = true
	if err := Verify(forged, mid, store); Reason(err) != ReasonForged {
		t.Fatalf("reason = %q, err = %v", Reason(err), err)
	}
}

func TestVerifyBrokenChain(t *testing.T) {
	a, store := testAuthority(t)
	b := NewAuthority("OtherPKI", 1, epoch, far, rng.New(2))
	ch := a.IssueLeaf(leafSpec("Akamai Technologies", "a248.e.akamai.net"))
	// Splice in an unrelated intermediate: issuer linkage must fail.
	broken := Chain{ch[0], b.Intermediates[0], b.Root}
	if err := Verify(broken, mid, store); Reason(err) != ReasonBrokenChain {
		t.Fatalf("reason = %q, err = %v", Reason(err), err)
	}
}

func TestVerifyUntrustedRoot(t *testing.T) {
	a, _ := testAuthority(t)
	emptyStore := NewTrustStore()
	ch := a.IssueLeaf(leafSpec("Google LLC", "*.google.com"))
	if err := Verify(ch, mid, emptyStore); Reason(err) != ReasonUntrusted {
		t.Fatalf("reason = %q, err = %v", Reason(err), err)
	}
}

func TestVerifyIntermediateNotCA(t *testing.T) {
	a, store := testAuthority(t)
	ch := a.IssueLeaf(leafSpec("Google LLC", "*.google.com"))
	notCA := ch[1].Clone()
	notCA.IsCA = false
	bad := Chain{ch[0], notCA, ch[2]}
	if err := Verify(bad, mid, store); Reason(err) != ReasonNotCA {
		t.Fatalf("reason = %q, err = %v", Reason(err), err)
	}
}

func TestVerifyExpiredIntermediate(t *testing.T) {
	a, store := testAuthority(t)
	ch := a.IssueLeaf(leafSpec("Google LLC", "*.google.com"))
	old := ch[1].Clone()
	old.NotAfter = time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	// Re-link the leaf to the cloned intermediate's key so only the
	// expiry differs.
	leaf := ch[0].Clone()
	leaf.SignedBy = old.Key
	old.SignedBy = ch[2].Key
	bad := Chain{leaf, old, ch[2]}
	if err := Verify(bad, mid, store); Reason(err) != ReasonExpiredChain {
		t.Fatalf("reason = %q, err = %v", Reason(err), err)
	}
}

func TestTrustStoreRejectsNonCARoot(t *testing.T) {
	a, _ := testAuthority(t)
	ch := a.IssueLeaf(leafSpec("Google LLC", "*.google.com"))
	store := NewTrustStore()
	if err := store.AddRoot(ch.Leaf()); err == nil {
		t.Fatal("leaf accepted as trust root")
	}
	if store.Len() != 0 {
		t.Fatal("failed AddRoot must not modify the store")
	}
}

func TestMatchesOrganization(t *testing.T) {
	c := &Certificate{Subject: Name{Organization: "Google LLC"}}
	for _, kw := range []string{"google", "GOOGLE", "Google LLC", "oogle"} {
		if !c.MatchesOrganization(kw) {
			t.Errorf("keyword %q should match", kw)
		}
	}
	if c.MatchesOrganization("netflix") {
		t.Error("netflix should not match Google LLC")
	}
}

func TestFingerprintStableAndDistinct(t *testing.T) {
	a, _ := testAuthority(t)
	c1 := a.IssueLeaf(leafSpec("Google LLC", "*.google.com")).Leaf()
	c2 := a.IssueLeaf(leafSpec("Google LLC", "*.google.com")).Leaf()
	if c1.Fingerprint() != c1.Fingerprint() {
		t.Error("fingerprint not stable")
	}
	if c1.Fingerprint() == c2.Fingerprint() {
		t.Error("distinct certificates (serials) share a fingerprint")
	}
	dup := c1.Clone()
	if dup.Fingerprint() != c1.Fingerprint() {
		t.Error("clone changed fingerprint")
	}
}

func TestValidAtBoundaries(t *testing.T) {
	c := &Certificate{NotBefore: epoch, NotAfter: far}
	if !c.ValidAt(epoch) || !c.ValidAt(far) {
		t.Error("validity boundaries are inclusive")
	}
	if c.ValidAt(epoch.Add(-time.Second)) || c.ValidAt(far.Add(time.Second)) {
		t.Error("outside boundaries must be invalid")
	}
}

func TestChainLeaf(t *testing.T) {
	if (Chain{}).Leaf() != nil {
		t.Error("empty chain leaf should be nil")
	}
}

func TestAuthorityDeterminism(t *testing.T) {
	a1 := NewAuthority("PKI", 3, epoch, far, rng.New(99))
	a2 := NewAuthority("PKI", 3, epoch, far, rng.New(99))
	c1 := a1.IssueLeaf(leafSpec("Google LLC", "*.google.com")).Leaf()
	c2 := a2.IssueLeaf(leafSpec("Google LLC", "*.google.com")).Leaf()
	if c1.Fingerprint() != c2.Fingerprint() {
		t.Error("same seed should mint identical certificates")
	}
}

func TestVerifyNeverPanicsQuick(t *testing.T) {
	a, store := testAuthority(t)
	base := a.IssueLeaf(leafSpec("Google LLC", "*.google.com"))
	f := func(forge bool, dropRoot bool, offsetDays int16) bool {
		ch := Chain{base[0].Clone(), base[1], base[2]}
		ch[0].Forged = forge
		if dropRoot {
			ch = ch[:2]
		}
		at := mid.AddDate(0, 0, int(offsetDays))
		err := Verify(ch, at, store)
		// Either valid or a classified reason; never an unclassified error.
		return err == nil || Reason(err) != ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintConcurrent(t *testing.T) {
	a, _ := testAuthority(t)
	c := a.IssueLeaf(leafSpec("Google LLC", "*.google.com")).Leaf()
	want := c.Clone().Fingerprint()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if c.Fingerprint() != want {
					panic("fingerprint mismatch")
				}
			}
		}()
	}
	wg.Wait()
}

func TestTrustStoreRoots(t *testing.T) {
	a, store := testAuthority(t)
	b := NewAuthority("SecondPKI", 1, epoch, far, rng.New(3))
	if err := store.AddRoot(b.Root); err != nil {
		t.Fatal(err)
	}
	roots := store.Roots()
	if len(roots) != 2 {
		t.Fatalf("roots = %d", len(roots))
	}
	if roots[0].Key >= roots[1].Key {
		t.Error("Roots() not sorted by key")
	}
	if !store.Trusted(a.Root.Key) || !store.Trusted(b.Root.Key) {
		t.Error("registered roots must be trusted")
	}
	if store.Trusted(KeyID(12345)) {
		t.Error("random key must not be trusted")
	}
}

func TestVerifyErrorMessage(t *testing.T) {
	_, store := testAuthority(t)
	err := Verify(nil, mid, store)
	if err == nil || err.Error() == "" {
		t.Fatal("error should have a message")
	}
	if Reason(nil) != "" {
		t.Error("Reason(nil) should be empty")
	}
}
