package certmodel

import (
	"testing"
	"time"

	"offnetscope/internal/rng"
)

func benchChain(b *testing.B) (Chain, *TrustStore, time.Time) {
	b.Helper()
	from := time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	a := NewAuthority("BenchCA", 4, from, to, rng.New(1))
	store := NewTrustStore()
	if err := store.AddRoot(a.Root); err != nil {
		b.Fatal(err)
	}
	ch := a.IssueLeaf(LeafSpec{
		Organization: "Google LLC", CommonName: "*.google.com",
		DNSNames:  []string{"*.google.com", "*.googlevideo.com", "*.gstatic.com"},
		NotBefore: from, NotAfter: to,
	})
	return ch, store, time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
}

// BenchmarkVerify measures §4.1 chain validation — executed once per
// corpus record, hundreds of thousands of times per snapshot.
func BenchmarkVerify(b *testing.B) {
	ch, store, at := benchChain(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(ch, at, store); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFingerprint(b *testing.B) {
	ch, _, _ := benchChain(b)
	leaf := ch.Leaf()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Clone defeats the cache so the hash itself is measured.
		if i%64 == 0 {
			leaf = ch.Leaf().Clone()
		}
		_ = leaf.Fingerprint()
	}
}

func BenchmarkMatchesOrganization(b *testing.B) {
	ch, _, _ := benchChain(b)
	leaf := ch.Leaf()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !leaf.MatchesOrganization("google") {
			b.Fatal("no match")
		}
	}
}
