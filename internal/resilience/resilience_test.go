package resilience

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"offnetscope/internal/chaos"
)

var errFlaky = errors.New("flaky")

// recordingPolicy captures the backoff schedule instead of sleeping.
func recordingPolicy(p Policy, slept *[]time.Duration) Policy {
	p.sleep = func(_ context.Context, d time.Duration) error {
		*slept = append(*slept, d)
		return nil
	}
	return p
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	var slept []time.Duration
	calls := 0
	err := Retry(context.Background(), recordingPolicy(Policy{MaxAttempts: 5, Seed: 1}, &slept),
		func(context.Context) error {
			calls++
			if calls < 3 {
				return errFlaky
			}
			return nil
		})
	if err != nil {
		t.Fatalf("Retry = %v", err)
	}
	if calls != 3 || len(slept) != 2 {
		t.Fatalf("calls=%d slept=%d, want 3 and 2", calls, len(slept))
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	var slept []time.Duration
	calls := 0
	err := Retry(context.Background(), recordingPolicy(Policy{MaxAttempts: 4, Seed: 1}, &slept),
		func(context.Context) error { calls++; return errFlaky })
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
	if !errors.Is(err, errFlaky) {
		t.Fatalf("exhausted error does not wrap the cause: %v", err)
	}
}

func TestRetryStopsOnPermanent(t *testing.T) {
	calls := 0
	cause := errors.New("bad request")
	err := Retry(context.Background(), Policy{MaxAttempts: 5},
		func(context.Context) error { calls++; return Permanent(cause) })
	if calls != 1 {
		t.Fatalf("permanent error retried: %d calls", calls)
	}
	if !errors.Is(err, cause) || !IsPermanent(err) {
		t.Fatalf("error lost its identity: %v", err)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
}

func TestRetryRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Retry(ctx, Policy{MaxAttempts: 10, BaseDelay: time.Millisecond},
		func(context.Context) error {
			calls++
			cancel() // fails once, then the sleep sees a dead context
			return errFlaky
		})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, errFlaky) {
		t.Fatalf("err = %v, want the last op error", err)
	}
	// A context dead before the first attempt returns the context error.
	if err := Retry(ctx, Policy{}, func(context.Context) error {
		t.Fatal("op ran under a dead context")
		return nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Retry = %v", err)
	}
}

func TestDefaultClassify(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errFlaky, true},
		{Permanent(errFlaky), false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{&chaos.TransientError{Offset: 9}, true},
	}
	for _, c := range cases {
		if got := DefaultClassify(c.err); got != c.want {
			t.Errorf("DefaultClassify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// The schedule is capped exponential with full jitter: every sleep is
// bounded by min(MaxDelay, Base·2^attempt) and the stream is
// deterministic under a fixed seed.
func TestBackoffSchedule(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	for attempt, wantCeil := range []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, 80 * time.Millisecond,
	} {
		for _, u := range []float64{0, 0.25, 0.5, 0.999} {
			d := Backoff(p, attempt, u)
			if d <= 0 || d > wantCeil {
				t.Fatalf("Backoff(attempt=%d, u=%v) = %v, ceiling %v", attempt, u, d, wantCeil)
			}
		}
	}

	var a, b []time.Duration
	fail := func(context.Context) error { return errFlaky }
	Retry(context.Background(), recordingPolicy(Policy{MaxAttempts: 6, Seed: 42}, &a), fail) //nolint:errcheck
	Retry(context.Background(), recordingPolicy(Policy{MaxAttempts: 6, Seed: 42}, &b), fail) //nolint:errcheck
	if len(a) != 5 {
		t.Fatalf("recorded %d sleeps, want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded jitter not deterministic: %v vs %v", a, b)
		}
	}
}

// Retrying a chaos-faulted stream drains it completely: the two
// packages compose into the read-everything-despite-faults guarantee
// the degraded-mode pipeline relies on.
func TestRetryOverChaosReader(t *testing.T) {
	data := make([]byte, 32<<10)
	for i := range data {
		data[i] = byte(i)
	}
	r := chaos.NewReader(bytes.NewReader(data), chaos.Config{Seed: 13, ErrProb: 0.4}, "stream")
	var out []byte
	buf := make([]byte, 512)
	for {
		var n int
		err := Retry(context.Background(), Policy{MaxAttempts: 20, BaseDelay: time.Microsecond, Seed: 13},
			func(context.Context) error {
				var rerr error
				n, rerr = r.Read(buf)
				if rerr != nil && !chaos.IsTransient(rerr) {
					return Permanent(rerr)
				}
				return rerr
			})
		out = append(out, buf[:n]...)
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			t.Fatalf("read failed despite retries: %v", err)
		}
	}
	if len(out) != len(data) {
		t.Fatalf("drained %d/%d bytes", len(out), len(data))
	}
}
