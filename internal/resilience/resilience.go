// Package resilience is the shared retry policy for every component
// that talks to something flaky — live probes over real sockets, corpus
// reads off networked filesystems, store reloads. It implements
// capped exponential backoff with full jitter (the AWS-architecture
// recipe: sleep a uniform duration in (0, min(cap, base·2^attempt)],
// which decorrelates synchronized retry storms better than equal or
// decorrelated jitter), is context-aware throughout, and separates
// retryable from permanent failures so callers never burn attempts on
// errors that cannot clear.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"offnetscope/internal/obs"
	"offnetscope/internal/rng"
)

// Policy tunes Retry. The zero value is usable: 3 attempts, 50ms base
// delay, 2s cap, default classification.
type Policy struct {
	// MaxAttempts is the total number of tries including the first.
	// Zero or negative means 3.
	MaxAttempts int
	// BaseDelay seeds the exponential schedule. Zero means 50ms.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep. Zero means 2s.
	MaxDelay time.Duration
	// Classify reports whether an error is worth retrying. Nil means
	// DefaultClassify.
	Classify func(error) bool
	// Seed, when nonzero, makes the jitter stream deterministic — the
	// same property every simulator in this repo has. Zero draws from
	// the process-wide stream, which is still reproducible run-to-run
	// but shared across callers.
	Seed uint64
	// Metrics, when set, receives retry accounting (resilience.* in
	// DESIGN.md §7): attempts, successes, retries, aborted (permanent
	// or cancelled), exhausted budgets, and a backoff-sleep histogram.
	Metrics *obs.Registry
	// sleep is swapped by tests to observe the schedule.
	sleep func(context.Context, time.Duration) error
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Classify == nil {
		p.Classify = DefaultClassify
	}
	if p.sleep == nil {
		p.sleep = sleepCtx
	}
	return p
}

// permanentError marks an error no retry can clear.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return "permanent: " + e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Retry (under DefaultClassify) stops
// immediately and returns it. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// DefaultClassify treats an error as retryable unless it is marked
// Permanent or stems from the caller's own context ending — a cancelled
// or timed-out context never heals inside the retry loop. Everything
// else (dial refusals, resets, transient chaos faults, timeouts of the
// individual attempt) is presumed transient: for scan traffic the cost
// of a wasted retry is far below the cost of under-counting hosts (§5).
func DefaultClassify(err error) bool {
	if err == nil {
		return false
	}
	if IsPermanent(err) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// globalJitter is the process-wide jitter stream used when Policy.Seed
// is zero; guarded because Retry runs from many goroutines.
var (
	jitterMu     sync.Mutex
	globalJitter = rng.New(0x7e5).Fork("resilience")
)

func jitterFloat(g *rng.RNG) float64 {
	if g != nil {
		return g.Float64()
	}
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return globalJitter.Float64()
}

// Retry runs op until it succeeds, exhausts the attempt budget, hits a
// non-retryable error, or ctx ends. It returns nil on success and
// otherwise the last error observed (the attempt count is attached via
// %w wrapping only in the exhausted case, so callers can still match
// the underlying error with errors.Is/As).
func Retry(ctx context.Context, p Policy, op func(context.Context) error) error {
	p = p.withDefaults()
	var g *rng.RNG
	if p.Seed != 0 {
		g = rng.New(p.Seed).Fork("resilience")
	}
	m := p.Metrics
	var err error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			m.Counter("resilience.aborted").Inc()
			if err == nil {
				return cerr
			}
			return err
		}
		m.Counter("resilience.attempts").Inc()
		if err = op(ctx); err == nil {
			m.Counter("resilience.successes").Inc()
			return nil
		}
		if !p.Classify(err) {
			m.Counter("resilience.aborted").Inc()
			return err
		}
		if attempt == p.MaxAttempts-1 {
			break
		}
		d := Backoff(p, attempt, jitterFloat(g))
		m.Counter("resilience.retries").Inc()
		m.Histogram("resilience.backoff_ns").Observe(int64(d))
		if serr := p.sleep(ctx, d); serr != nil {
			m.Counter("resilience.aborted").Inc()
			return err
		}
	}
	m.Counter("resilience.exhausted").Inc()
	return fmt.Errorf("resilience: %d attempts exhausted: %w", p.MaxAttempts, err)
}

// Backoff computes the sleep before retrying after the given attempt
// (0-based): a uniform draw u∈[0,1) over (0, min(MaxDelay,
// BaseDelay·2^attempt)] — full jitter. Exposed for callers that manage
// their own loops.
func Backoff(p Policy, attempt int, u float64) time.Duration {
	p = p.withDefaults()
	ceiling := p.BaseDelay
	for i := 0; i < attempt && ceiling < p.MaxDelay; i++ {
		ceiling *= 2
	}
	if ceiling > p.MaxDelay {
		ceiling = p.MaxDelay
	}
	d := time.Duration(u * float64(ceiling))
	if d <= 0 {
		d = time.Millisecond
	}
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
