package resilience

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"offnetscope/internal/obs"
)

// Breaker is the second half of the package's overload story. Retry
// protects one operation against transient failure; the breaker protects
// the *system* against an operation that keeps failing — a flaky probe
// target, an overloaded serving path — by failing fast instead of
// queueing more work behind a dependency that cannot absorb it.
//
// The state machine is the classic three states:
//
//	closed    all calls pass; failures are tallied. Trips to open on
//	          ConsecutiveFailures in a row, or when the failure fraction
//	          of the last Window outcomes exceeds ErrorRate.
//	open      all calls are rejected with ErrBreakerOpen until OpenFor
//	          has elapsed, then the breaker admits probes (half-open).
//	half-open up to HalfOpenProbes calls are admitted concurrently. Any
//	          failure reopens the breaker; HalfOpenProbes consecutive
//	          successes close it and reset all tallies.
//
// Time is read through the Now hook, so tests advance a fake clock and
// the whole machine is deterministic; the zero hook reads time.Now.
// All methods are safe for concurrent use.

// ErrBreakerOpen is returned by Allow/Do while the breaker is open.
// DefaultClassify treats it as retryable (the breaker may close), but
// callers that fan out should treat it as "back off now".
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// BreakerState names the three states, for tests and gauges.
type BreakerState int32

const (
	BreakerClosed BreakerState = iota
	BreakerHalfOpen
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// BreakerPolicy tunes a Breaker. The zero value is usable: trip after 5
// consecutive failures, no error-rate trip, stay open 5s, close after 1
// half-open success.
type BreakerPolicy struct {
	// ConsecutiveFailures trips the breaker when that many failures are
	// recorded in a row. Zero means 5; negative disables the
	// consecutive-failure trip.
	ConsecutiveFailures int
	// ErrorRate, when > 0, trips the breaker when the failure fraction
	// over the last Window outcomes strictly exceeds it (and at least
	// Window outcomes have been observed since the last reset).
	ErrorRate float64
	// Window is the tally length for ErrorRate. Zero means 32.
	Window int
	// OpenFor is how long the breaker rejects before admitting probes.
	// Zero means 5s.
	OpenFor time.Duration
	// HalfOpenProbes is both the concurrent-probe cap in half-open and
	// the consecutive successes required to close. Zero means 1.
	HalfOpenProbes int
	// Classify reports whether an error counts as a failure. Nil treats
	// every non-nil error except the caller's own context ending as a
	// failure (DefaultClassify) — a cancelled caller says nothing about
	// the dependency's health.
	Classify func(error) bool
	// Metrics, when set, receives breaker accounting under
	// breaker.<name>.*: allowed, rejected, failures, opened, half_open,
	// closed counters and a state gauge (0 closed, 1 half-open, 2 open).
	Metrics *obs.Registry
	// Name scopes the metric names; empty means "default".
	Name string
	// Now is the clock hook; nil means time.Now. Tests inject a fake
	// clock to drive open→half-open transitions deterministically.
	Now func() time.Time
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.ConsecutiveFailures == 0 {
		p.ConsecutiveFailures = 5
	}
	if p.Window <= 0 {
		p.Window = 32
	}
	if p.OpenFor <= 0 {
		p.OpenFor = 5 * time.Second
	}
	if p.HalfOpenProbes <= 0 {
		p.HalfOpenProbes = 1
	}
	if p.Classify == nil {
		p.Classify = DefaultClassify
	}
	if p.Now == nil {
		p.Now = time.Now
	}
	if p.Name == "" {
		p.Name = "default"
	}
	return p
}

// Breaker is one circuit breaker. Create with NewBreaker.
//
// The closed state is the hot path — a breaker guarding a serving
// path sees every request — so it is lock-free: Allow reads one
// atomic, and a successful Record (with no error-rate window to
// maintain) writes one. Everything rare (failures, trips, open and
// half-open traffic) serializes on the mutex. The atomics mean a
// request racing a trip may be admitted as a straggler; Record
// already treats straggler outcomes as stale, so the state machine
// stays exact where it matters and the deterministic (sequential)
// tests see precisely the classic semantics.
type Breaker struct {
	p BreakerPolicy

	allowed, rejected *obs.Counter
	failures          *obs.Counter
	opened, probed    *obs.Counter
	closed            *obs.Counter
	stateGauge        *obs.Gauge

	fastState   atomic.Int32 // mirrors state for the lock-free closed path
	consecFails atomic.Int64

	mu           sync.Mutex
	state        BreakerState
	window       []bool // ring of outcomes, true = failure
	windowNext   int
	windowFilled int
	openedAt     time.Time
	probes       int // half-open: probes currently admitted
	probeOK      int // half-open: consecutive probe successes
}

// NewBreaker builds a breaker in the closed state.
func NewBreaker(p BreakerPolicy) *Breaker {
	p = p.withDefaults()
	reg, name := p.Metrics, p.Name
	b := &Breaker{
		p:          p,
		allowed:    reg.Counter("breaker." + name + ".allowed"),
		rejected:   reg.Counter("breaker." + name + ".rejected"),
		failures:   reg.Counter("breaker." + name + ".failures"),
		opened:     reg.Counter("breaker." + name + ".opened"),
		probed:     reg.Counter("breaker." + name + ".half_open"),
		closed:     reg.Counter("breaker." + name + ".closed"),
		stateGauge: reg.Gauge("breaker." + name + ".state"),
		window:     make([]bool, p.Window),
	}
	return b
}

// State reports the current state (open flips to half-open lazily, on
// the first Allow after the cooldown — State reflects that).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether a call may proceed. A nil return admits the
// call and MUST be paired with exactly one Record of its outcome;
// ErrBreakerOpen means fail fast without attempting the call.
func (b *Breaker) Allow() error {
	if BreakerState(b.fastState.Load()) == BreakerClosed {
		b.allowed.Inc()
		return nil
	}
	return b.allowSlow()
}

func (b *Breaker) allowSlow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.allowed.Inc()
		return nil
	case BreakerOpen:
		if b.p.Now().Sub(b.openedAt) < b.p.OpenFor {
			b.rejected.Inc()
			return ErrBreakerOpen
		}
		b.setState(BreakerHalfOpen)
		b.probed.Inc()
		b.probes, b.probeOK = 0, 0
		fallthrough
	case BreakerHalfOpen:
		if b.probes >= b.p.HalfOpenProbes {
			b.rejected.Inc()
			return ErrBreakerOpen
		}
		b.probes++
		b.allowed.Inc()
		return nil
	}
	b.rejected.Inc()
	return ErrBreakerOpen
}

// Record feeds the outcome of one admitted call back into the machine.
func (b *Breaker) Record(err error) {
	failed := b.p.Classify(err)
	// Lock-free success path: closed state with no error-rate window
	// means the only bookkeeping is clearing the consecutive tally.
	if !failed && b.p.ErrorRate <= 0 &&
		BreakerState(b.fastState.Load()) == BreakerClosed {
		if b.consecFails.Load() != 0 {
			b.consecFails.Store(0)
		}
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if failed {
		b.failures.Inc()
	}
	switch b.state {
	case BreakerHalfOpen:
		if b.probes == 0 {
			return // straggler admitted before the trip; its outcome is stale
		}
		b.probes--
		if failed {
			b.trip()
			return
		}
		b.probeOK++
		if b.probeOK >= b.p.HalfOpenProbes {
			b.reset()
		}
	case BreakerClosed:
		if failed {
			b.consecFails.Add(1)
		} else {
			b.consecFails.Store(0)
		}
		if b.p.ErrorRate > 0 {
			b.window[b.windowNext] = failed
			b.windowNext = (b.windowNext + 1) % len(b.window)
			if b.windowFilled < len(b.window) {
				b.windowFilled++
			}
		}
		if b.tripLocked() {
			b.trip()
		}
	case BreakerOpen:
		// A straggler from before the trip; its outcome is stale.
	}
}

// tripLocked evaluates the closed-state trip conditions.
func (b *Breaker) tripLocked() bool {
	if b.p.ConsecutiveFailures > 0 && b.consecFails.Load() >= int64(b.p.ConsecutiveFailures) {
		return true
	}
	if b.p.ErrorRate > 0 && b.windowFilled == len(b.window) {
		fails := 0
		for _, f := range b.window {
			if f {
				fails++
			}
		}
		if float64(fails)/float64(len(b.window)) > b.p.ErrorRate {
			return true
		}
	}
	return false
}

// trip moves to open and stamps the cooldown clock. Caller holds b.mu.
func (b *Breaker) trip() {
	b.setState(BreakerOpen)
	b.openedAt = b.p.Now()
	b.opened.Inc()
}

// reset returns to closed with clean tallies. Caller holds b.mu.
func (b *Breaker) reset() {
	b.setState(BreakerClosed)
	b.closed.Inc()
	b.consecFails.Store(0)
	b.windowNext, b.windowFilled = 0, 0
	for i := range b.window {
		b.window[i] = false
	}
}

func (b *Breaker) setState(s BreakerState) {
	b.state = s
	b.fastState.Store(int32(s))
	b.stateGauge.Set(int64(s))
}

// Do is the convenience form: Allow, run op, Record. The op's error is
// returned as-is; a rejected call returns ErrBreakerOpen without
// running op.
func (b *Breaker) Do(op func() error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := op()
	b.Record(err)
	return err
}
