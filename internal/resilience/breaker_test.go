package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"offnetscope/internal/obs"
)

// fakeClock is the deterministic time source every breaker test runs
// on: no sleeps, transitions driven by explicit advances.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

var errBoom = errors.New("boom")

// TestBreakerConsecutiveFailureTrip walks the full state machine:
// closed → open on N consecutive failures → rejections during cooldown
// → half-open probe → closed on probe success.
func TestBreakerConsecutiveFailureTrip(t *testing.T) {
	clock := newFakeClock()
	reg := obs.NewRegistry("test")
	b := NewBreaker(BreakerPolicy{
		ConsecutiveFailures: 3,
		OpenFor:             time.Second,
		Metrics:             reg,
		Name:                "t",
		Now:                 clock.now,
	})

	// Successes interleaved with failures never trip.
	for i := 0; i < 10; i++ {
		if err := b.Do(func() error { return errBoom }); !errors.Is(err, errBoom) {
			t.Fatalf("call %d: %v", i, err)
		}
		if err := b.Do(func() error { return nil }); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after interleaved outcomes = %v, want closed", got)
	}

	// Three in a row trip it.
	for i := 0; i < 3; i++ {
		b.Do(func() error { return errBoom })
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after 3 consecutive failures = %v, want open", got)
	}

	// While open: fail fast, op not run.
	ran := false
	if err := b.Do(func() error { ran = true; return nil }); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker returned %v, want ErrBreakerOpen", err)
	}
	if ran {
		t.Fatal("open breaker ran the op")
	}

	// Cooldown not elapsed yet.
	clock.advance(999 * time.Millisecond)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow before cooldown = %v, want ErrBreakerOpen", err)
	}

	// Cooldown elapsed: one probe admitted, success closes.
	clock.advance(2 * time.Millisecond)
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}

	snap := reg.Snapshot()
	if got := snap.Counter("breaker.t.opened"); got != 1 {
		t.Errorf("opened counter = %d, want 1", got)
	}
	if got := snap.Counter("breaker.t.closed"); got != 1 {
		t.Errorf("closed counter = %d, want 1", got)
	}
	if got := snap.Counter("breaker.t.rejected"); got != 2 {
		t.Errorf("rejected counter = %d, want 2", got)
	}
}

// TestBreakerHalfOpenFailureReopens: a failed probe restarts the
// cooldown; the breaker must reject again for a full OpenFor.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerPolicy{ConsecutiveFailures: 1, OpenFor: time.Second, Now: clock.now})

	b.Do(func() error { return errBoom })
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	clock.advance(time.Second)
	if err := b.Do(func() error { return errBoom }); !errors.Is(err, errBoom) {
		t.Fatalf("probe: %v", err)
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	clock.advance(500 * time.Millisecond)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("cooldown must restart after a failed probe")
	}
	clock.advance(501 * time.Millisecond)
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatalf("second probe: %v", err)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}
}

// TestBreakerHalfOpenProbeCap: only HalfOpenProbes calls are admitted
// concurrently in half-open, and closing takes that many successes.
func TestBreakerHalfOpenProbeCap(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerPolicy{ConsecutiveFailures: 1, OpenFor: time.Second, HalfOpenProbes: 2, Now: clock.now})
	b.Do(func() error { return errBoom })
	clock.advance(time.Second)

	if err := b.Allow(); err != nil {
		t.Fatalf("probe 1 admission: %v", err)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("probe 2 admission: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("probe 3 should be rejected, got %v", err)
	}
	b.Record(nil)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("one success of two: state = %v, want half-open", got)
	}
	b.Record(nil)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}
}

// TestBreakerErrorRateTrip: 25% threshold over a window of 8 trips on
// 3 failures in 8 even when never consecutive.
func TestBreakerErrorRateTrip(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerPolicy{
		ConsecutiveFailures: -1, // disable the consecutive trip
		ErrorRate:           0.25,
		Window:              8,
		OpenFor:             time.Second,
		Now:                 clock.now,
	})
	outcomes := []error{errBoom, nil, nil, errBoom, nil, nil, errBoom, nil}
	for i, out := range outcomes {
		err := out
		b.Do(func() error { return err })
		wantOpen := i == len(outcomes)-1 // 3/8 = 37.5% > 25%, but only once the window fills
		if got := b.State() == BreakerOpen; got != wantOpen {
			t.Fatalf("after outcome %d: open=%v, want %v", i, got, wantOpen)
		}
	}
}

// TestBreakerClassifyIgnoresCallerCancellation: a cancelled caller
// context is not evidence the dependency is unhealthy.
func TestBreakerClassifyIgnoresCallerCancellation(t *testing.T) {
	b := NewBreaker(BreakerPolicy{ConsecutiveFailures: 1})
	b.Do(func() error { return context.Canceled })
	b.Do(func() error { return fmt.Errorf("wrapped: %w", context.DeadlineExceeded) })
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed (cancellation is not failure)", got)
	}
	b.Do(func() error { return errBoom })
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
}

// TestBreakerConcurrentUse hammers one breaker from many goroutines
// under -race: the invariant is simply no data race and no panic, plus
// allowed+rejected accounting for every Allow.
func TestBreakerConcurrentUse(t *testing.T) {
	reg := obs.NewRegistry("test")
	b := NewBreaker(BreakerPolicy{ConsecutiveFailures: 4, OpenFor: time.Millisecond, Metrics: reg, Name: "conc"})
	var wg sync.WaitGroup
	const goroutines, calls = 8, 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				b.Do(func() error {
					if (g+i)%3 == 0 {
						return errBoom
					}
					return nil
				})
			}
		}(g)
	}
	wg.Wait()
	snap := reg.Snapshot()
	total := snap.Counter("breaker.conc.allowed") + snap.Counter("breaker.conc.rejected")
	if total != goroutines*calls {
		t.Fatalf("allowed+rejected = %d, want %d", total, goroutines*calls)
	}
}
