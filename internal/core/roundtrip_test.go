package core

import (
	"testing"

	"offnetscope/internal/corpus"
	"offnetscope/internal/hg"
	"offnetscope/internal/scanners"
)

// TestPipelineOverPersistedCorpus is the integration check behind
// cmd/worldgen + cmd/offnetmap: writing a scan to disk and reading it
// back must produce byte-identical inference results.
func TestPipelineOverPersistedCorpus(t *testing.T) {
	snap := rapid7At(t, lastSnap)
	root := t.TempDir()
	if err := corpus.Write(root, snap); err != nil {
		t.Fatal(err)
	}
	back, err := corpus.Read(root, corpus.Rapid7, lastSnap)
	if err != nil {
		t.Fatal(err)
	}

	p := testPipeline(DefaultOptions())
	direct := p.Run(snap)
	fromDisk := p.Run(back)

	if direct.TotalCertIPs != fromDisk.TotalCertIPs ||
		direct.ValidCertIPs != fromDisk.ValidCertIPs ||
		direct.TotalCertASes != fromDisk.TotalCertASes {
		t.Fatalf("corpus-wide stats differ: %+v vs %+v", direct, fromDisk)
	}
	for reason, n := range direct.InvalidByReason {
		if fromDisk.InvalidByReason[reason] != n {
			t.Errorf("invalid[%s]: %d vs %d", reason, n, fromDisk.InvalidByReason[reason])
		}
	}
	for _, h := range hg.All() {
		a, b := direct.PerHG[h.ID], fromDisk.PerHG[h.ID]
		if len(a.CandidateASes) != len(b.CandidateASes) || len(a.ConfirmedASes) != len(b.ConfirmedASes) {
			t.Errorf("%v: candidates %d/%d confirmed %d/%d",
				h.ID, len(a.CandidateASes), len(b.CandidateASes), len(a.ConfirmedASes), len(b.ConfirmedASes))
		}
		for as := range a.ConfirmedASes {
			if _, ok := b.ConfirmedASes[as]; !ok {
				t.Errorf("%v: AS %d confirmed directly but not from disk", h.ID, as)
			}
		}
		if len(a.DNSNames) != len(b.DNSNames) {
			t.Errorf("%v: fingerprint sizes differ %d vs %d", h.ID, len(a.DNSNames), len(b.DNSNames))
		}
	}
}

// TestCertigoCorpusCertsOnly checks the headerless corpus path end to
// end: a pure TLS scan still yields the certificate-level footprints.
func TestCertigoCorpusCertsOnly(t *testing.T) {
	snap := scanners.Scan(testWorld, scanners.CertigoProfile(), 24)
	if snap == nil {
		t.Fatal("no certigo data at 2019-10")
	}
	if len(snap.HTTP)+len(snap.HTTPS) != 0 {
		t.Fatal("certigo must not carry headers")
	}
	res := testPipeline(Options{HeaderMode: CertsOnly}).Run(snap)
	for _, id := range hg.Top4() {
		if len(res.PerHG[id].CandidateASes) == 0 {
			t.Errorf("%v has no candidates in the certigo corpus", id)
		}
	}
	// With header confirmation requested, a headerless corpus confirms
	// nothing — the mode matters.
	strict := testPipeline(Options{HeaderMode: HeadersEither}).Run(snap)
	for _, id := range hg.Top4() {
		if n := len(strict.PerHG[id].ConfirmedASes); n != 0 {
			t.Errorf("%v: %d ASes confirmed without any header corpus", id, n)
		}
	}
}
