package core

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"offnetscope/internal/corpus"
	"offnetscope/internal/hg"
	"offnetscope/internal/obs"
	"offnetscope/internal/report"
	"offnetscope/internal/scanners"
	"offnetscope/internal/timeline"
)

// The golden suite pins the pipeline's end-to-end output — the exact
// funnel metrics, growth series, per-hypergiant footprints, and report
// tables of a seeded worldsim study — against checked-in JSON. Any
// methodology change that shifts a number shows up as a readable diff
// of the golden file, reviewed like any other code change:
//
//	go test ./internal/core -run TestGolden -update
var updateGolden = flag.Bool("update", false, "rewrite the golden files instead of comparing")

const goldenPath = "testdata/golden/study_rapid7.json"

// goldenStudy is the full frozen output of one seeded Rapid7 study.
type goldenStudy struct {
	// Counters is the run's complete deterministic metric set: every
	// funnel.* and resilience.* counter (timing histograms are excluded
	// by construction — counters only).
	Counters map[string]int64 `json:"counters"`
	// Series are the Fig-3 growth lines, one value per covered snapshot.
	Series map[string][]int `json:"series"`
	// LastSnapshot is each hypergiant's footprint at the final snapshot.
	LastSnapshot map[string]goldenHG `json:"last_snapshot"`
	// Report is the rendered sparkline table over the confirmed series.
	Report []string `json:"report"`
}

type goldenHG struct {
	CandidateASes int `json:"candidate_ases"`
	ConfirmedASes int `json:"confirmed_ases"`
	CandidateIPs  int `json:"candidate_ips"`
	ConfirmedIPs  int `json:"confirmed_ips"`
}

// runGoldenStudy executes the seeded study at the given worker and
// record-shard counts and freezes everything the golden file pins.
func runGoldenStudy(t *testing.T, jobs, shards int) *goldenStudy {
	t.Helper()
	reg := obs.NewRegistry("golden")
	p := testPipeline(DefaultOptions())
	p.Metrics = reg
	p.Shards = shards
	profile := scanners.Rapid7Profile()
	sr, err := p.RunStudyConfig(context.Background(), func(_ context.Context, s timeline.Snapshot) (*corpus.Snapshot, error) {
		return scanners.Scan(testWorld, profile, s), nil
	}, StudyConfig{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	return freezeGolden(t, reg, sr)
}

// runGoldenStudyStream executes the same seeded study through the
// streaming engine — RunStudyStream over chunked record batches — and
// freezes the identical observable set. The determinism contract says
// the bytes must match the materializing run at any chunk size.
func runGoldenStudyStream(t *testing.T, jobs, shards, chunk int) *goldenStudy {
	t.Helper()
	reg := obs.NewRegistry("golden")
	p := testPipeline(DefaultOptions())
	p.Metrics = reg
	p.Shards = shards
	profile := scanners.Rapid7Profile()
	sr, err := p.RunStudyStream(context.Background(), func(_ context.Context, s timeline.Snapshot) (*corpus.Stream, error) {
		snap := scanners.Scan(testWorld, profile, s)
		if snap == nil {
			return nil, nil
		}
		return corpus.StreamOf(snap, chunk), nil
	}, StudyConfig{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	return freezeGolden(t, reg, sr)
}

// freezeGolden distills one finished study into the golden observable
// set: full counter map, growth series, last-snapshot footprints, and
// the rendered report.
func freezeGolden(t *testing.T, reg *obs.Registry, sr *StudyResult) *goldenStudy {
	t.Helper()
	g := &goldenStudy{
		Counters:     reg.Snapshot().Counters,
		Series:       map[string][]int{},
		LastSnapshot: map[string]goldenHG{},
	}
	covered := func(series []int) []int {
		var out []int
		for _, s := range timeline.All() {
			if sr.Results[s] != nil {
				out = append(out, series[s])
			}
		}
		return out
	}
	for _, h := range []hg.ID{hg.Google, hg.Facebook, hg.Akamai} {
		g.Series[hg.Get(h).Name] = covered(sr.ConfirmedSeries(h))
	}
	g.Series["Netflix initial"] = covered(sr.NetflixInitial)
	g.Series["Netflix w/ expired"] = covered(sr.NetflixWithExpired)
	g.Series["Netflix non-TLS"] = covered(sr.NetflixNonTLS)
	for name, series := range g.Series {
		g.Report = append(g.Report, report.SparkRow(name, series))
	}
	sort.Strings(g.Report)

	last := sr.Results[lastSnap]
	if last == nil {
		t.Fatal("study has no result at the last snapshot")
	}
	for _, h := range hg.All() {
		hr := last.PerHG[h.ID]
		g.LastSnapshot[h.Name] = goldenHG{
			CandidateASes: len(hr.CandidateASes),
			ConfirmedASes: len(hr.ConfirmedASes),
			CandidateIPs:  hr.CandidateIPs,
			ConfirmedIPs:  hr.ConfirmedIPs,
		}
	}
	return g
}

func marshalGolden(t *testing.T, g *goldenStudy) []byte {
	t.Helper()
	raw, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(raw, '\n')
}

func compareGolden(t *testing.T, got *goldenStudy) {
	t.Helper()
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	var want goldenStudy
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("corrupt golden file %s: %v", goldenPath, err)
	}
	if !reflect.DeepEqual(*got, want) {
		t.Errorf("study diverges from %s (rerun with -update if intentional)\n--- got ---\n%s\n--- want ---\n%s",
			goldenPath, marshalGolden(t, got), raw)
	}
}

// TestGoldenStudyRapid7 runs the seeded study sequentially and compares
// every frozen number against the golden file.
func TestGoldenStudyRapid7(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full seeded study")
	}
	got := runGoldenStudy(t, 1, 1)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, marshalGolden(t, got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	compareGolden(t, got)
}

// TestGoldenJobsInvariance reruns the same study on a 4-worker pool:
// the §7 determinism contract says every golden number — including the
// metric counters — must match the sequential run exactly.
func TestGoldenJobsInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full seeded study")
	}
	if *updateGolden {
		t.Skip("golden file is written by the sequential run")
	}
	compareGolden(t, runGoldenStudy(t, 4, 1))
}

// TestGoldenShardsInvariance reruns the study with each snapshot's
// record loops split across 4 shards: the sharded fold must reproduce
// every golden number — study output and funnel.* counters alike —
// byte-identically to the sequential run.
func TestGoldenShardsInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full seeded study")
	}
	if *updateGolden {
		t.Skip("golden file is written by the sequential run")
	}
	compareGolden(t, runGoldenStudy(t, 1, 4))
}

// TestGoldenJobsShardsInvariance stacks both axes — a snapshot worker
// pool and intra-snapshot record shards — and still demands the exact
// golden bytes.
func TestGoldenJobsShardsInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full seeded study")
	}
	if *updateGolden {
		t.Skip("golden file is written by the sequential run")
	}
	compareGolden(t, runGoldenStudy(t, 2, 2))
}

// TestGoldenChunkInvariance runs the study through the streaming engine
// at a pathological chunk size of one record per batch — every fold
// boundary exercised — stacked with a worker pool, and demands the
// exact golden bytes the materializing sequential run froze.
func TestGoldenChunkInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full seeded study")
	}
	if *updateGolden {
		t.Skip("golden file is written by the sequential run")
	}
	compareGolden(t, runGoldenStudyStream(t, 4, 1, 1))
}

// TestGoldenJobsShardsChunkInvariance stacks all three execution knobs —
// jobs × shards × an odd chunk size that never divides the record count
// evenly — and still demands the exact golden bytes.
func TestGoldenJobsShardsChunkInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full seeded study")
	}
	if *updateGolden {
		t.Skip("golden file is written by the sequential run")
	}
	compareGolden(t, runGoldenStudyStream(t, 2, 2, 509))
}
