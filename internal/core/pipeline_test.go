package core

import (
	"testing"

	"offnetscope/internal/astopo"
	"offnetscope/internal/corpus"
	"offnetscope/internal/hg"
	"offnetscope/internal/scanners"
	"offnetscope/internal/timeline"
	"offnetscope/internal/worldsim"
)

// The core tests run the full measurement loop: world → vendor scan →
// pipeline, then compare the inference against ground truth.

var (
	testWorld = func() *worldsim.World {
		w, err := worldsim.New(worldsim.Config{Seed: 42, Scale: 0.03})
		if err != nil {
			panic(err)
		}
		return w
	}()
	lastSnap = timeline.Snapshot(timeline.Count() - 1)
)

func testPipeline(opts Options) *Pipeline {
	return &Pipeline{
		Trust: testWorld.TrustStore(),
		Orgs:  testWorld.Orgs(),
		Mapper: func(s timeline.Snapshot) IPMapper {
			return testWorld.IP2AS(s)
		},
		Opts: opts,
	}
}

func rapid7At(t testing.TB, s timeline.Snapshot) *corpus.Snapshot {
	t.Helper()
	snap := scanners.Scan(testWorld, scanners.Rapid7Profile(), s)
	if snap == nil {
		t.Fatalf("no Rapid7 data at %v", s)
	}
	return snap
}

// overlap computes |inferred ∩ truth| / |truth| (recall) and
// |inferred ∩ truth| / |inferred| (precision).
func overlap(inferred map[astopo.ASN]struct{}, truth []astopo.ASN) (recall, precision float64) {
	truthSet := make(map[astopo.ASN]struct{}, len(truth))
	for _, as := range truth {
		truthSet[as] = struct{}{}
	}
	both := 0
	for as := range inferred {
		if _, ok := truthSet[as]; ok {
			both++
		}
	}
	if len(truth) > 0 {
		recall = float64(both) / float64(len(truth))
	}
	if len(inferred) > 0 {
		precision = float64(both) / float64(len(inferred))
	}
	return recall, precision
}

func TestPipelineRecoversTop4Footprints(t *testing.T) {
	res := testPipeline(DefaultOptions()).Run(rapid7At(t, lastSnap))
	for _, id := range hg.Top4() {
		truth := testWorld.TrueOffNetASes(id, lastSnap)
		hr := res.PerHG[id]
		recall, precision := overlap(hr.ConfirmedASes, truth)
		// The paper's operator survey: 89-95 % of hosting ASes
		// uncovered, small overestimates from mapping errors.
		if recall < 0.85 {
			t.Errorf("%v recall = %.3f (inferred %d, truth %d)", id, recall, len(hr.ConfirmedASes), len(truth))
		}
		if precision < 0.90 {
			t.Errorf("%v precision = %.3f", id, precision)
		}
	}
}

func TestPipelineOnNetDiscovery(t *testing.T) {
	res := testPipeline(DefaultOptions()).Run(rapid7At(t, lastSnap))
	for _, id := range hg.Top4() {
		hr := res.PerHG[id]
		want := testWorld.OnNetASes(id)
		if len(hr.OnNetASes) != len(want) {
			t.Errorf("%v on-net ASes = %v, want %v", id, hr.OnNetASes, want)
		}
		if len(hr.DNSNames) == 0 {
			t.Errorf("%v learned no dNSNames", id)
		}
		if hr.OnNetIPs == 0 {
			t.Errorf("%v has no on-net IPs", id)
		}
	}
}

func TestNoOffNetHypergiantsStayEmpty(t *testing.T) {
	res := testPipeline(DefaultOptions()).Run(rapid7At(t, lastSnap))
	for _, id := range []hg.ID{hg.Microsoft, hg.Hulu, hg.Disney, hg.Yahoo, hg.Fastly, hg.Apple} {
		if n := len(res.PerHG[id].ConfirmedASes); n > 1 {
			t.Errorf("%v confirmed off-nets = %d, want ~0", id, n)
		}
	}
}

func TestServicePresentNotConfirmed(t *testing.T) {
	// Apple/Twitter certificates on third-party CDN hardware must show
	// up as candidates but fail header confirmation (Table 3's
	// parenthesised-only entries).
	res := testPipeline(DefaultOptions()).Run(rapid7At(t, lastSnap))
	for _, id := range []hg.ID{hg.Apple, hg.Twitter} {
		hr := res.PerHG[id]
		if len(hr.CandidateASes) == 0 {
			t.Errorf("%v has no certs-only candidates", id)
		}
		if len(hr.ConfirmedASes) > len(hr.CandidateASes)/3 {
			t.Errorf("%v confirmed %d of %d candidates; expected nearly none",
				id, len(hr.ConfirmedASes), len(hr.CandidateASes))
		}
	}
}

func TestCloudflareFilter(t *testing.T) {
	snap := rapid7At(t, lastSnap)
	withFilter := testPipeline(DefaultOptions()).Run(snap)
	noFilter := testPipeline(Options{HeaderMode: HeadersEither, DisableCloudflareFilter: true}).Run(snap)

	fcf := withFilter.PerHG[hg.Cloudflare]
	ncf := noFilter.PerHG[hg.Cloudflare]
	if len(ncf.CandidateASes) <= len(fcf.CandidateASes) {
		t.Errorf("Cloudflare filter removed nothing: %d with vs %d without",
			len(fcf.CandidateASes), len(ncf.CandidateASes))
	}
	// Even with the filter, enterprise customer certificates leak
	// through — Cloudflare is misidentified as having some off-nets
	// (the paper's 110* caveat).
	if len(fcf.CandidateASes) == 0 {
		t.Error("expected residual Cloudflare misidentifications")
	}
	// But Cloudflare has no genuine off-nets.
	if truth := testWorld.TrueOffNetASes(hg.Cloudflare, lastSnap); len(truth) != 0 {
		t.Fatalf("ground truth violated: %d", len(truth))
	}
}

func TestDNSNameFilterAblation(t *testing.T) {
	snap := rapid7At(t, lastSnap)
	strict := testPipeline(Options{HeaderMode: CertsOnly}).Run(snap)
	loose := testPipeline(Options{HeaderMode: CertsOnly, DisableDNSNameFilter: true}).Run(snap)
	// Without the subset rule, shared-certificate partners inflate the
	// candidate sets.
	sum := func(r *Result) int {
		total := 0
		for _, hr := range r.PerHG {
			total += len(hr.CandidateASes)
		}
		return total
	}
	if sum(loose) <= sum(strict) {
		t.Errorf("dNSName filter removed nothing: %d strict vs %d loose", sum(strict), sum(loose))
	}
}

func TestChainValidationAblation(t *testing.T) {
	snap := rapid7At(t, lastSnap)
	strict := testPipeline(Options{HeaderMode: CertsOnly}).Run(snap)
	loose := testPipeline(Options{HeaderMode: CertsOnly, DisableChainValidation: true}).Run(snap)
	// Self-signed impostors claim hypergiant organizations; without
	// §4.1 they pollute candidates... but only those whose dNSNames are
	// also served on-net, which impostor certs are (they copy a real
	// HG domain). So candidate IP counts must grow.
	var strictIPs, looseIPs int
	for _, hr := range strict.PerHG {
		strictIPs += hr.CandidateIPs
	}
	for _, hr := range loose.PerHG {
		looseIPs += hr.CandidateIPs
	}
	if looseIPs <= strictIPs {
		t.Errorf("chain validation removed nothing: %d strict vs %d loose IPs", strictIPs, looseIPs)
	}
	if strict.ValidCertIPs >= strict.TotalCertIPs {
		t.Error("some certificates should be invalid")
	}
	frac := 1 - float64(strict.ValidCertIPs)/float64(strict.TotalCertIPs)
	if frac < 0.15 || frac > 0.5 {
		t.Errorf("invalid fraction = %.3f, paper reports more than a third of hosts", frac)
	}
}

func TestInvalidReasonsTracked(t *testing.T) {
	res := testPipeline(DefaultOptions()).Run(rapid7At(t, lastSnap))
	for _, reason := range []string{"expired", "self-signed-leaf", "untrusted-root"} {
		if res.InvalidByReason[reason] == 0 {
			t.Errorf("no chains rejected for %q", reason)
		}
	}
}

func TestNetflixEnvelopeDuringEra(t *testing.T) {
	p := testPipeline(DefaultOptions())
	profile := scanners.Rapid7Profile()
	sr := p.RunStudy(func(s timeline.Snapshot) *corpus.Snapshot {
		return scanners.Scan(testWorld, profile, s)
	})
	era := timeline.Snapshot(18) // 2018-04, mid expired-cert era
	pre := timeline.Snapshot(12) // 2016-10

	if sr.NetflixInitial[era] >= sr.NetflixWithExpired[era] {
		t.Errorf("expired restoration added nothing: initial %d, w/expired %d",
			sr.NetflixInitial[era], sr.NetflixWithExpired[era])
	}
	if sr.NetflixWithExpired[era] > sr.NetflixNonTLS[era] {
		t.Errorf("non-TLS restoration lost ASes: %d vs %d",
			sr.NetflixWithExpired[era], sr.NetflixNonTLS[era])
	}
	// Outside the era the three lines coincide (nearly).
	if diff := sr.NetflixNonTLS[pre] - sr.NetflixInitial[pre]; diff > sr.NetflixInitial[pre]/10 {
		t.Errorf("pre-era envelope gap = %d of %d", diff, sr.NetflixInitial[pre])
	}
	// The envelope tracks ground truth through the era.
	truth := len(testWorld.TrueOffNetASes(hg.Netflix, era))
	env := sr.EnvelopeSeries(hg.Netflix)[era]
	if float64(env) < 0.8*float64(truth) {
		t.Errorf("era envelope %d far below truth %d", env, truth)
	}
	// The plain inference visibly dips during the era.
	if !(sr.NetflixInitial[era] < int(0.8*float64(truth))) {
		t.Errorf("expected a visible dip: initial %d, truth %d", sr.NetflixInitial[era], truth)
	}
}

func TestHeaderModesOrdering(t *testing.T) {
	snap := rapid7At(t, lastSnap)
	certs := testPipeline(Options{HeaderMode: CertsOnly}).Run(snap)
	either := testPipeline(Options{HeaderMode: HeadersEither}).Run(snap)
	both := testPipeline(Options{HeaderMode: HeadersBoth}).Run(snap)
	for _, id := range hg.Top4() {
		c := len(certs.PerHG[id].ConfirmedASes)
		e := len(either.PerHG[id].ConfirmedASes)
		b := len(both.PerHG[id].ConfirmedASes)
		if !(b <= e && e <= c) {
			t.Errorf("%v: Both(%d) ≤ Either(%d) ≤ CertsOnly(%d) violated", id, b, e, c)
		}
		// Fig 4: the differences are minimal for genuine off-nets.
		if id != hg.Netflix && e < c*8/10 {
			t.Errorf("%v: header confirmation lost too much: %d of %d", id, e, c)
		}
	}
}

func TestMiningRecoversTable4(t *testing.T) {
	snap := rapid7At(t, lastSnap)
	mapper := testWorld.IP2AS(lastSnap)
	httpsIdx := snap.HTTPSHeadersByIP()

	for _, id := range []hg.ID{hg.Google, hg.Facebook, hg.Akamai, hg.Cloudflare} {
		h := hg.Get(id)
		onNet := make(map[astopo.ASN]struct{})
		for _, as := range testWorld.OnNetASes(id) {
			onNet[as] = struct{}{}
		}
		var responses [][]hg.Header
		for ip, headers := range httpsIdx {
			for _, as := range mapper.Lookup(ip) {
				if _, ok := onNet[as]; ok {
					responses = append(responses, headers)
					break
				}
			}
		}
		if len(responses) == 0 {
			t.Fatalf("%v: no on-net header responses", id)
		}
		mined := MineHeaderFingerprints(responses, 50)
		recovered := false
		for _, f := range h.Fingerprints {
			if mined.RecoversFingerprint(f) {
				recovered = true
				break
			}
		}
		if !recovered {
			t.Errorf("%v: mining did not recover any Table 4 fingerprint; top pairs: %v", id, mined.TopPairs[:min(5, len(mined.TopPairs))])
		}
		// Common standard headers must be filtered out.
		for _, pc := range mined.TopPairs {
			if pc.Name == "content-type" || pc.Name == "cache-control" {
				t.Errorf("%v: common header %q not filtered", id, pc.Name)
			}
		}
	}
}

func TestStudySeriesShapes(t *testing.T) {
	p := testPipeline(DefaultOptions())
	profile := scanners.Rapid7Profile()
	sr := p.RunStudy(func(s timeline.Snapshot) *corpus.Snapshot {
		return scanners.Scan(testWorld, profile, s)
	})
	g := sr.ConfirmedSeries(hg.Google)
	if g[0] == 0 || g[len(g)-1] <= g[0] {
		t.Errorf("Google series should grow: %v", g)
	}
	f := sr.ConfirmedSeries(hg.Facebook)
	if f[0] != 0 {
		t.Errorf("Facebook should start at 0, got %d", f[0])
	}
	a := sr.ConfirmedSeries(hg.Akamai)
	maxA, at := sr.MaxConfirmed(hg.Akamai)
	if at < 14 || at > 24 {
		t.Errorf("Akamai peak at %v (%d), want around 2018-04", at, maxA)
	}
	if a[len(a)-1] >= maxA {
		t.Errorf("Akamai should decline after its peak")
	}
	// Table 3 ordering at the end of the study.
	endG := g[len(g)-1]
	for _, id := range []hg.ID{hg.Netflix, hg.Facebook, hg.Akamai} {
		if s := sr.EnvelopeSeries(id); s[len(s)-1] > endG {
			t.Errorf("%v ends above Google", id)
		}
	}
}
