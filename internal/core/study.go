package core

import (
	"context"

	"offnetscope/internal/astopo"
	"offnetscope/internal/corpus"
	"offnetscope/internal/hg"
	"offnetscope/internal/timeline"
)

// SnapshotSource supplies the corpus for each study month; it returns
// nil when the vendor has no data for that month (e.g. Censys before
// 2019-10).
type SnapshotSource func(timeline.Snapshot) *corpus.Snapshot

// StudyResult is the full longitudinal output over the study window.
type StudyResult struct {
	// Results holds one inference result per snapshot, nil where the
	// source had no data.
	Results []*Result

	// The three Netflix series of Fig 3: the straight §4 inference, the
	// variant ignoring certificate expiry, and the variant additionally
	// restoring previously-seen Netflix IPs that moved to plain HTTP
	// between 2017-10 and 2019-10 (§6.2).
	NetflixInitial     []int
	NetflixWithExpired []int
	NetflixNonTLS      []int
}

// RunStudy executes the pipeline over every snapshot the source can
// supply, maintaining the cross-snapshot state the Netflix envelope
// needs. It is the simple sequential front of RunStudyConfig, kept for
// in-memory callers (tests, examples, experiments) that need no
// checkpointing, parallelism, or failure policy.
func (p *Pipeline) RunStudy(source SnapshotSource) *StudyResult {
	sr, _ := p.RunStudyConfig(context.Background(),
		func(_ context.Context, s timeline.Snapshot) (*corpus.Snapshot, error) {
			return source(s), nil
		}, StudyConfig{})
	return sr
}

// ConfirmedSeries extracts one hypergiant's confirmed off-net AS counts
// across the study (zero where no data).
func (sr *StudyResult) ConfirmedSeries(id hg.ID) []int {
	out := make([]int, len(sr.Results))
	for i, r := range sr.Results {
		if r != nil {
			out[i] = len(r.PerHG[id].ConfirmedASes)
		}
	}
	return out
}

// CandidateSeries extracts one hypergiant's certs-only AS counts.
func (sr *StudyResult) CandidateSeries(id hg.ID) []int {
	out := make([]int, len(sr.Results))
	for i, r := range sr.Results {
		if r != nil {
			out[i] = len(r.PerHG[id].CandidateASes)
		}
	}
	return out
}

// MaxConfirmed returns a hypergiant's maximum footprint and the snapshot
// it occurred at (Table 3's middle columns).
func (sr *StudyResult) MaxConfirmed(id hg.ID) (max int, at timeline.Snapshot) {
	series := sr.EnvelopeSeries(id)
	for i, v := range series {
		if v > max {
			max, at = v, timeline.Snapshot(i)
		}
	}
	return max, at
}

// EnvelopeSeries returns the series Table 3 ranks by: the plain
// confirmed counts for every hypergiant except Netflix, whose footprint
// uses the §6.2 envelope (the max of the three variants).
func (sr *StudyResult) EnvelopeSeries(id hg.ID) []int {
	if id != hg.Netflix {
		return sr.ConfirmedSeries(id)
	}
	out := make([]int, len(sr.Results))
	for i := range out {
		out[i] = sr.NetflixInitial[i]
		if sr.NetflixWithExpired[i] > out[i] {
			out[i] = sr.NetflixWithExpired[i]
		}
		if sr.NetflixNonTLS[i] > out[i] {
			out[i] = sr.NetflixNonTLS[i]
		}
	}
	return out
}

// ConfirmedASesAt returns the hypergiant's confirmed off-net AS set at
// snapshot s (nil when no data).
func (sr *StudyResult) ConfirmedASesAt(id hg.ID, s timeline.Snapshot) map[astopo.ASN]struct{} {
	r := sr.Results[s]
	if r == nil {
		return nil
	}
	return r.PerHG[id].ConfirmedASes
}
