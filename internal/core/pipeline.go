// Package core implements the paper's contribution: the generic
// methodology for inferring hypergiant off-net footprints from TLS
// certificate and HTTP(S) header scan corpuses (§4).
//
// The pipeline is dataset-agnostic: it consumes corpus.Snapshot records,
// an IP-to-AS mapper, and an AS-to-organization registry, and never
// touches simulator ground truth. Its five steps mirror the paper:
//
//  1. validate every certificate chain (§4.1);
//  2. learn each hypergiant's TLS fingerprint — the dNSNames served from
//     its own address space (§4.2);
//  3. flag candidate off-nets: IPs outside the hypergiant whose
//     certificate matches the organization keyword and whose dNSNames
//     are all served on-net (§4.3);
//  4. learn HTTP(S) header fingerprints from on-net responses (§4.4,
//     implemented in mine.go; confirmation uses the curated appendix-A.5
//     registry);
//  5. confirm candidates whose responses carry the hypergiant's header
//     fingerprint (§4.5), resolving reverse-proxy conflicts in favour of
//     third-party edge CDNs (§7).
package core

import (
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"offnetscope/internal/astopo"
	"offnetscope/internal/certmodel"
	"offnetscope/internal/corpus"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/obs"
	"offnetscope/internal/timeline"
)

// IPMapper resolves an IP address to its origin AS(es); *bgpsim.IP2AS
// satisfies it.
type IPMapper interface {
	Lookup(ip netmodel.IP) []astopo.ASN
}

// HeaderMode selects how candidates are confirmed (Fig 4's variants).
type HeaderMode int

const (
	// CertsOnly skips header confirmation entirely.
	CertsOnly HeaderMode = iota
	// HeadersEither confirms when the HTTP or the HTTPS response
	// matches (the paper's default, "Certs & (HTTP or HTTPS)").
	HeadersEither
	// HeadersBoth requires every collected port to match.
	HeadersBoth
)

// Options toggles individual methodology steps; the zero value is the
// paper's configuration. The Disable* fields exist for the ablation
// studies in DESIGN.md.
type Options struct {
	HeaderMode HeaderMode

	DisableChainValidation  bool // accept invalid/self-signed chains (§4.1 off)
	DisableDNSNameFilter    bool // skip the all-dNSNames-on-net rule (§4.3 off)
	DisableCloudflareFilter bool // keep Cloudflare customer certificates (§7 off)
	DisableConflictPriority bool // don't prioritise edge-CDN headers (§7 off)
	DisableNetflixNginx     bool // drop the Netflix default-nginx rule (§4.4 off)

	// IgnoreExpiryFor treats expired-but-otherwise-valid chains as valid
	// for the listed hypergiants — the Netflix "w/ expired" envelope
	// line of Fig 3.
	IgnoreExpiryFor map[hg.ID]bool
}

// DefaultHeaderMode is the paper's confirmation rule.
func DefaultOptions() Options {
	return Options{HeaderMode: HeadersEither}
}

// Pipeline binds the methodology to its external datasets.
type Pipeline struct {
	Trust  *certmodel.TrustStore
	Orgs   *astopo.OrgDB
	Mapper func(timeline.Snapshot) IPMapper
	Opts   Options

	// Metrics, when set, receives the per-stage funnel counters and
	// stage timers documented in DESIGN.md §7 (funnel.*). Counter
	// totals are deterministic for a fixed corpus — byte-identical
	// across runs and across StudyConfig.Jobs and Shards settings —
	// because every stage contributes by commutative addition; only the
	// *_ns timing histograms vary run to run. Nil disables
	// instrumentation at effectively zero cost.
	Metrics *obs.Registry

	// Shards bounds the intra-snapshot fan-out: Run splits its
	// per-record loops (§4.1 validation and each hypergiant's two
	// record scans) into this many contiguous ranges on as many
	// goroutines, and builds the header indexes concurrently. Zero or
	// one means fully sequential. The output is byte-identical at any
	// setting — partial results fold in shard order (see shard.go) — so
	// Shards, like StudyConfig.Jobs, is an execution knob: deliberately
	// not part of Options, and excluded from checkpoint manifests.
	Shards int

}

// shardScratchPool pools validateShard partials so chunked reads and
// long studies reuse the record buffers and tally maps across batches
// and snapshots instead of re-growing them each time. Scratch is fully
// reset before reuse, so pooling cannot leak state between snapshots —
// which also makes it safe to share process-wide rather than
// per-Pipeline (ablations and benchmarks copy Pipeline by value, and a
// struct-embedded pool would make that copy a vet error).
var shardScratchPool sync.Pool

// cloudflareCustomerRe is the §7 filter for Cloudflare-issued customer
// certificates.
var cloudflareCustomerRe = regexp.MustCompile(`^(ssl|sni)[0-9]*\.cloudflaressl\.com$`)

// HGResult is one hypergiant's inference output for one snapshot.
type HGResult struct {
	HG hg.ID

	// OnNetASes are the hypergiant's own ASes per the organization
	// registry (§A.2).
	OnNetASes []astopo.ASN
	// DNSNames is the learned TLS fingerprint: every dNSName observed
	// on valid on-net certificates matching the organization keyword.
	DNSNames map[string]struct{}

	// CandidateASes/ConfirmedASes are the §4.3 / §4.5 outputs;
	// ConfirmedASes follows Options.HeaderMode. The ByEither/ByBoth
	// variants are always computed so dataset comparisons (Fig 4) need
	// only one pipeline run.
	CandidateASes         map[astopo.ASN]struct{}
	ConfirmedASes         map[astopo.ASN]struct{}
	ConfirmedByEitherASes map[astopo.ASN]struct{}
	ConfirmedByBothASes   map[astopo.ASN]struct{}
	CandidateIPs          int
	ConfirmedIPs          int
	// ConfirmedIPList and CandidateIPList back longitudinal state and
	// the §5 validation experiments.
	ConfirmedIPList []netmodel.IP
	CandidateIPList []netmodel.IP

	// ExpiredASes are ASes whose only evidence is an expired
	// certificate matching the fingerprint — the input to the Netflix
	// "w/ expired" envelope.
	ExpiredASes map[astopo.ASN]struct{}
	ExpiredIPs  []netmodel.IP

	// OnNetIPs is the number of on-net IPs serving the HG's certificates.
	OnNetIPs int
	// CertIPGroups counts, per end-entity certificate, how many IPs
	// served it (Fig 11's IP groups).
	CertIPGroups map[certmodel.Fingerprint]int
}

// SortedConfirmedASes returns the confirmed off-net ASes in order.
func (r *HGResult) SortedConfirmedASes() []astopo.ASN { return sortedASNs(r.ConfirmedASes) }

// SortedCandidateASes returns the candidate (certs-only) ASes in order.
func (r *HGResult) SortedCandidateASes() []astopo.ASN { return sortedASNs(r.CandidateASes) }

func sortedASNs(set map[astopo.ASN]struct{}) []astopo.ASN {
	out := make([]astopo.ASN, 0, len(set))
	for as := range set {
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Result is the full per-snapshot inference output.
type Result struct {
	Vendor   corpus.Vendor
	Snapshot timeline.Snapshot

	// Corpus-wide statistics (Table 2 / Fig 2).
	TotalCertIPs    int
	TotalCertASes   int
	ValidCertIPs    int
	InvalidByReason map[string]int
	HGOnNetCertIPs  int // valid HG-matching cert IPs inside HG ASes
	HGOffNetCertIPs int // valid HG-matching cert IPs outside HG ASes

	PerHG map[hg.ID]*HGResult
}

// ASesWithAnyHG counts ASes hosting at least one examined hypergiant's
// confirmed off-net (Table 2's "any" column).
func (r *Result) ASesWithAnyHG() int {
	set := make(map[astopo.ASN]struct{})
	for _, hr := range r.PerHG {
		for as := range hr.ConfirmedASes {
			set[as] = struct{}{}
		}
	}
	return len(set)
}

// record is a validated certificate observation ready for matching.
type record struct {
	ip       netmodel.IP
	asns     []astopo.ASN
	leaf     *certmodel.Certificate
	orgLower string
	expired  bool // invalid solely because the leaf expired
}

// Run executes the methodology over one corpus snapshot.
func (p *Pipeline) Run(snap *corpus.Snapshot) *Result {
	m := p.Metrics
	runStart := time.Now()
	res := &Result{
		Vendor:          snap.Vendor,
		Snapshot:        snap.Snapshot,
		InvalidByReason: make(map[string]int),
		PerHG:           make(map[hg.ID]*HGResult, hg.Count),
	}
	mapper := p.Mapper(snap.Snapshot)

	// The header indexes are independent of validation, so with
	// sharding enabled they build concurrently with step 1 on two extra
	// goroutines instead of serializing after it.
	var httpsIdx, httpIdx map[netmodel.IP][]hg.Header
	var idxWG sync.WaitGroup
	if p.Shards > 1 {
		idxWG.Add(2)
		go func() { defer idxWG.Done(); httpsIdx = snap.HTTPSHeadersByIP() }()
		go func() { defer idxWG.Done(); httpIdx = snap.HTTPHeadersByIP() }()
	}

	valStart := time.Now()
	records := p.validate(snap, res, mapper)
	m.Histogram("funnel.validate_ns").Since(valStart)

	if p.Shards > 1 {
		idxWG.Wait()
	} else {
		httpsIdx = snap.HTTPSHeadersByIP()
		httpIdx = snap.HTTPHeadersByIP()
	}

	p.matchAndCount(res, records, httpsIdx, httpIdx)
	m.Histogram("funnel.run_ns").Since(runStart)
	return res
}

// matchAndCount is the post-validation half of the methodology — the
// per-hypergiant match/confirm passes (steps 2–5), the corpus-wide IP
// split, and every per-snapshot funnel counter. It is shared verbatim
// by the materializing (Run) and streaming (RunStream) paths, so the
// two can never emit different counter sets for the same records.
func (p *Pipeline) matchAndCount(res *Result, records []record, httpsIdx, httpIdx map[netmodel.IP][]hg.Header) {
	m := p.Metrics
	matchStart := time.Now()
	for _, h := range hg.All() {
		hr := p.runHG(h, res.Snapshot, records, httpsIdx, httpIdx)
		res.PerHG[h.ID] = hr
	}
	m.Histogram("funnel.match_ns").Since(matchStart)
	p.countHGIPs(res, records)

	// The per-snapshot funnel (§3–§4): how many records each stage
	// admitted. All plain additions, so study totals are identical at
	// any worker count.
	m.Counter("funnel.snapshots_inferred").Inc()
	m.Counter("funnel.certs_seen").Add(int64(res.TotalCertIPs))
	m.Counter("funnel.certs_valid").Add(int64(res.ValidCertIPs))
	for reason, n := range res.InvalidByReason {
		m.Counter("funnel.cert_invalid." + reason).Add(int64(n))
	}
	m.Counter("funnel.hg_cert_onnet_ips").Add(int64(res.HGOnNetCertIPs))
	m.Counter("funnel.hg_cert_offnet_ips").Add(int64(res.HGOffNetCertIPs))
	for _, hr := range res.PerHG {
		m.Counter("funnel.onnet_fingerprint_ips").Add(int64(hr.OnNetIPs))
		m.Counter("funnel.candidate_ips").Add(int64(hr.CandidateIPs))
		m.Counter("funnel.confirmed_ips").Add(int64(hr.ConfirmedIPs))
		m.Counter("funnel.confirmed_ases").Add(int64(len(hr.ConfirmedASes)))
	}
}

// validate is step 1: verify every chain and annotate records with
// their origin AS. Invalid chains are dropped (counted by reason)
// except expired-only leaves, which are kept flagged for the Fig 3
// envelope. The record loop shards across Pipeline.Shards goroutines;
// partials fold in shard order, so the returned slice preserves corpus
// order and every tally is byte-identical at any shard count.
func (p *Pipeline) validate(snap *corpus.Snapshot, res *Result, mapper IPMapper) []record {
	at := snap.ScanTime()
	n := len(snap.Certs)
	parts := make([]*validateShard, p.shardCount(n))
	forEachShard(n, len(parts), func(shard, lo, hi int) {
		parts[shard] = p.validateRange(snap.Certs[lo:hi], at, mapper)
	})

	records := make([]record, 0, n)
	asSet := make(map[astopo.ASN]struct{})
	res.TotalCertIPs = n
	for _, part := range parts {
		records = append(records, part.records...)
		res.ValidCertIPs += part.valid
		for reason, c := range part.invalid {
			res.InvalidByReason[reason] += c
		}
		for as := range part.asSet {
			asSet[as] = struct{}{}
		}
		p.putShardScratch(part)
	}
	res.TotalCertASes = len(asSet)
	return records
}

// getShardScratch hands out a fully reset validateShard, reusing a
// pooled one when available. Records appended into it are copied out by
// the fold before the shard returns to the pool, so reuse can never
// alias a previous batch's data.
func (p *Pipeline) getShardScratch() *validateShard {
	if v, ok := shardScratchPool.Get().(*validateShard); ok {
		v.records = v.records[:0]
		v.valid = 0
		clear(v.invalid)
		clear(v.asSet)
		return v
	}
	return &validateShard{
		invalid: make(map[string]int),
		asSet:   make(map[astopo.ASN]struct{}),
	}
}

func (p *Pipeline) putShardScratch(v *validateShard) { shardScratchPool.Put(v) }

// validateShard is one shard's step-1 partial result: counts and the AS
// set merge by addition/union, records concatenate in shard order.
type validateShard struct {
	records []record
	valid   int
	invalid map[string]int
	asSet   map[astopo.ASN]struct{}
}

// validateRange validates one contiguous run of certificate records. It
// only reads the pipeline's immutable datasets (trust store, mapper),
// so any number of ranges can run concurrently.
func (p *Pipeline) validateRange(certs []corpus.CertRecord, at time.Time, mapper IPMapper) *validateShard {
	part := p.getShardScratch()
	for _, cr := range certs {
		asns := mapper.Lookup(cr.IP)
		for _, as := range asns {
			part.asSet[as] = struct{}{}
		}
		err := certmodel.Verify(cr.Chain, at, p.Trust)
		expired := false
		if err != nil && !p.Opts.DisableChainValidation {
			reason := certmodel.Reason(err)
			part.invalid[reason]++
			if reason != certmodel.ReasonExpired {
				continue
			}
			expired = true
		}
		if !expired {
			part.valid++
		}
		part.records = append(part.records, record{
			ip:       cr.IP,
			asns:     asns,
			leaf:     cr.Chain.Leaf(),
			orgLower: strings.ToLower(cr.Chain.Leaf().Subject.Organization),
			expired:  expired,
		})
	}
	return part
}

// runHG executes steps 2-5 for one hypergiant. Both record passes —
// the step-2 fingerprint scan and the step-3/5 candidate scan — shard
// across Pipeline.Shards goroutines with a shard-order fold, separated
// by a barrier: the candidate scan needs the complete dNSName
// fingerprint, which it then only reads.
func (p *Pipeline) runHG(h *hg.Hypergiant, s timeline.Snapshot, records []record, httpsIdx, httpIdx map[netmodel.IP][]hg.Header) *HGResult {
	hr := &HGResult{
		HG:                    h.ID,
		DNSNames:              make(map[string]struct{}),
		CandidateASes:         make(map[astopo.ASN]struct{}),
		ConfirmedASes:         make(map[astopo.ASN]struct{}),
		ConfirmedByEitherASes: make(map[astopo.ASN]struct{}),
		ConfirmedByBothASes:   make(map[astopo.ASN]struct{}),
		ExpiredASes:           make(map[astopo.ASN]struct{}),
		CertIPGroups:          make(map[certmodel.Fingerprint]int),
	}

	// Step 2: on-net ASes from the organization registry, then the
	// dNSName fingerprint from valid on-net certificates.
	hr.OnNetASes = p.Orgs.ASesMatching(h.Keyword, s)
	onNet := make(map[astopo.ASN]struct{}, len(hr.OnNetASes))
	for _, as := range hr.OnNetASes {
		onNet[as] = struct{}{}
	}
	kw := strings.ToLower(h.Keyword)
	k := p.shardCount(len(records))
	fps := make([]*fingerprintShard, k)
	forEachShard(len(records), k, func(shard, lo, hi int) {
		fps[shard] = fingerprintRange(records[lo:hi], kw, onNet)
	})
	for _, part := range fps {
		hr.OnNetIPs += part.onNetIPs
		for fp, c := range part.groups {
			hr.CertIPGroups[fp] += c
		}
		for d := range part.names {
			hr.DNSNames[d] = struct{}{}
		}
	}

	// Steps 3 + 5: candidates outside the on-net ASes, confirmed by
	// headers. Rejections are tallied by reason so the funnel report
	// can show where records leave the pipeline (funnel.drop.*).
	cands := make([]*candidateShard, k)
	forEachShard(len(records), k, func(shard, lo, hi int) {
		cands[shard] = p.candidateRange(h, records[lo:hi], kw, onNet, hr.DNSNames, httpsIdx, httpIdx)
	})
	var drops dropTally
	for _, part := range cands {
		drops.add(&part.drops)
		sub := part.hr
		hr.CandidateIPs += sub.CandidateIPs
		hr.ConfirmedIPs += sub.ConfirmedIPs
		hr.CandidateIPList = append(hr.CandidateIPList, sub.CandidateIPList...)
		hr.ConfirmedIPList = append(hr.ConfirmedIPList, sub.ConfirmedIPList...)
		hr.ExpiredIPs = append(hr.ExpiredIPs, sub.ExpiredIPs...)
		unionASes(hr.CandidateASes, sub.CandidateASes)
		unionASes(hr.ConfirmedASes, sub.ConfirmedASes)
		unionASes(hr.ConfirmedByEitherASes, sub.ConfirmedByEitherASes)
		unionASes(hr.ConfirmedByBothASes, sub.ConfirmedByBothASes)
		unionASes(hr.ExpiredASes, sub.ExpiredASes)
		for fp, c := range sub.CertIPGroups {
			hr.CertIPGroups[fp] += c
		}
	}
	m := p.Metrics
	m.Counter("funnel.hg_cert_matches").Add(drops.hgMatches)
	m.Counter("funnel.drop.expired_cert").Add(drops.expired)
	m.Counter("funnel.drop.dnsnames_offnet").Add(drops.dnsNames)
	m.Counter("funnel.drop.cloudflare_customer").Add(drops.cloudflare)
	m.Counter("funnel.drop.header_unconfirmed").Add(drops.unconfirmed)
	return hr
}

// fingerprintShard is one shard's step-2 output; counts add, the group
// and name maps union.
type fingerprintShard struct {
	onNetIPs int
	groups   map[certmodel.Fingerprint]int
	names    map[string]struct{}
}

// fingerprintRange learns the dNSName fingerprint contribution of one
// contiguous run of records.
func fingerprintRange(records []record, kw string, onNet map[astopo.ASN]struct{}) *fingerprintShard {
	part := &fingerprintShard{
		groups: make(map[certmodel.Fingerprint]int),
		names:  make(map[string]struct{}),
	}
	for i := range records {
		r := &records[i]
		if r.expired || !strings.Contains(r.orgLower, kw) {
			continue
		}
		if !anyIn(r.asns, onNet) {
			continue
		}
		part.onNetIPs++
		part.groups[r.leaf.Fingerprint()]++
		for _, d := range r.leaf.DNSNames {
			part.names[d] = struct{}{}
		}
	}
	return part
}

// dropTally counts one shard's step-3/5 rejections by reason.
type dropTally struct {
	hgMatches, expired, dnsNames, cloudflare, unconfirmed int64
}

func (t *dropTally) add(o *dropTally) {
	t.hgMatches += o.hgMatches
	t.expired += o.expired
	t.dnsNames += o.dnsNames
	t.cloudflare += o.cloudflare
	t.unconfirmed += o.unconfirmed
}

// candidateShard is one shard's step-3/5 output, accumulated into a
// scratch HGResult whose list fields concatenate in shard order and
// whose set fields union.
type candidateShard struct {
	hr    *HGResult
	drops dropTally
}

// candidateRange runs the candidate + confirmation scan over one
// contiguous run of records. dnsNames is the complete step-2
// fingerprint and is only read, as are the header indexes.
func (p *Pipeline) candidateRange(h *hg.Hypergiant, records []record, kw string, onNet map[astopo.ASN]struct{}, dnsNames map[string]struct{}, httpsIdx, httpIdx map[netmodel.IP][]hg.Header) *candidateShard {
	part := &candidateShard{hr: &HGResult{
		CandidateASes:         make(map[astopo.ASN]struct{}),
		ConfirmedASes:         make(map[astopo.ASN]struct{}),
		ConfirmedByEitherASes: make(map[astopo.ASN]struct{}),
		ConfirmedByBothASes:   make(map[astopo.ASN]struct{}),
		ExpiredASes:           make(map[astopo.ASN]struct{}),
		CertIPGroups:          make(map[certmodel.Fingerprint]int),
	}}
	hr := part.hr
	allowExpired := p.Opts.IgnoreExpiryFor[h.ID]
	for i := range records {
		r := &records[i]
		if !strings.Contains(r.orgLower, kw) {
			continue
		}
		if len(r.asns) == 0 || anyIn(r.asns, onNet) {
			continue
		}
		part.drops.hgMatches++
		if r.expired && !allowExpired {
			// Track what ignoring expiry would add (Fig 3 envelope).
			if p.dnsNamesOnNet(r.leaf, dnsNames) && !p.isCloudflareCustomerCert(h.ID, r.leaf) {
				for _, as := range r.asns {
					hr.ExpiredASes[as] = struct{}{}
				}
				hr.ExpiredIPs = append(hr.ExpiredIPs, r.ip)
			}
			part.drops.expired++
			continue
		}
		if !p.dnsNamesOnNet(r.leaf, dnsNames) {
			part.drops.dnsNames++
			continue
		}
		if p.isCloudflareCustomerCert(h.ID, r.leaf) {
			part.drops.cloudflare++
			continue
		}
		hr.CandidateIPs++
		hr.CandidateIPList = append(hr.CandidateIPList, r.ip)
		for _, as := range r.asns {
			hr.CandidateASes[as] = struct{}{}
		}
		hr.CertIPGroups[r.leaf.Fingerprint()]++

		// Step 5: header confirmation, in every mode at once.
		either, both := p.confirmModes(h, r.ip, httpsIdx, httpIdx)
		if either {
			for _, as := range r.asns {
				hr.ConfirmedByEitherASes[as] = struct{}{}
			}
		}
		if both {
			for _, as := range r.asns {
				hr.ConfirmedByBothASes[as] = struct{}{}
			}
		}
		confirmed := either
		switch p.Opts.HeaderMode {
		case CertsOnly:
			confirmed = true
		case HeadersBoth:
			confirmed = both
		}
		if confirmed {
			hr.ConfirmedIPs++
			hr.ConfirmedIPList = append(hr.ConfirmedIPList, r.ip)
			for _, as := range r.asns {
				hr.ConfirmedASes[as] = struct{}{}
			}
		} else {
			part.drops.unconfirmed++
		}
	}
	return part
}

// unionASes folds src into dst.
func unionASes(dst, src map[astopo.ASN]struct{}) {
	for as := range src {
		dst[as] = struct{}{}
	}
}

// dnsNamesOnNet applies the §4.3 subset rule: every dNSName on the
// candidate certificate must have been observed on-net.
func (p *Pipeline) dnsNamesOnNet(leaf *certmodel.Certificate, onNetNames map[string]struct{}) bool {
	if p.Opts.DisableDNSNameFilter {
		return true
	}
	if len(leaf.DNSNames) == 0 {
		return false
	}
	for _, d := range leaf.DNSNames {
		if _, ok := onNetNames[d]; !ok {
			return false
		}
	}
	return true
}

// isCloudflareCustomerCert applies the §7 Cloudflare filter: Cloudflare
// candidates whose certificate carries a (ssl|sni)N.cloudflaressl.com
// entry are customer certificates, not off-nets.
func (p *Pipeline) isCloudflareCustomerCert(id hg.ID, leaf *certmodel.Certificate) bool {
	if p.Opts.DisableCloudflareFilter || id != hg.Cloudflare {
		return false
	}
	for _, d := range leaf.DNSNames {
		if cloudflareCustomerRe.MatchString(strings.ToLower(d)) {
			return true
		}
	}
	return false
}

// confirmModes applies the §4.5 header test to one candidate IP in both
// confirmation modes: "either port matches" and "every collected port
// matches".
func (p *Pipeline) confirmModes(h *hg.Hypergiant, ip netmodel.IP, httpsIdx, httpIdx map[netmodel.IP][]hg.Header) (either, both bool) {
	httpsH, hasHTTPS := httpsIdx[ip]
	httpH, hasHTTP := httpIdx[ip]
	if !hasHTTPS && !hasHTTP {
		return false, false
	}
	matchHTTPS := hasHTTPS && p.headersIdentify(h, httpsH)
	matchHTTP := hasHTTP && p.headersIdentify(h, httpH)
	either = matchHTTPS || matchHTTP
	both = (!hasHTTPS || matchHTTPS) && (!hasHTTP || matchHTTP)
	return either, both
}

// headersIdentify decides whether a response identifies h's serving
// software, including the Netflix default-nginx rule (§4.4) and the
// third-party edge-CDN conflict priority (§7).
func (p *Pipeline) headersIdentify(h *hg.Hypergiant, headers []hg.Header) bool {
	if !p.Opts.DisableConflictPriority {
		// A response carrying a third-party edge CDN's fingerprint is
		// that CDN's hardware, whatever certificate it holds.
		for _, edge := range []hg.ID{hg.Akamai, hg.Cloudflare} {
			if edge == h.ID {
				continue
			}
			if hg.Get(edge).MatchesHeaders(headers) {
				return false
			}
		}
	}
	if h.MatchesHeaders(headers) {
		return true
	}
	if h.ID == hg.Netflix && !p.Opts.DisableNetflixNginx {
		// A Netflix certificate plus the default nginx Server header is
		// an Open Connect appliance (§4.4).
		for _, hd := range headers {
			if strings.EqualFold(hd.Name, "Server") && strings.HasPrefix(strings.ToLower(hd.Value), "nginx") {
				return true
			}
		}
	}
	return false
}

// countHGIPs splits valid HG-matching certificate IPs into on-net and
// off-net populations (Fig 2's right axis).
func (p *Pipeline) countHGIPs(res *Result, records []record) {
	type kwOnNet struct {
		kw    string
		onNet map[astopo.ASN]struct{}
	}
	var hgs []kwOnNet
	for _, h := range hg.All() {
		onNet := make(map[astopo.ASN]struct{})
		for _, as := range res.PerHG[h.ID].OnNetASes {
			onNet[as] = struct{}{}
		}
		hgs = append(hgs, kwOnNet{kw: strings.ToLower(h.Keyword), onNet: onNet})
	}
	for i := range records {
		r := &records[i]
		if r.expired {
			continue
		}
		for _, k := range hgs {
			if !strings.Contains(r.orgLower, k.kw) {
				continue
			}
			if anyIn(r.asns, k.onNet) {
				res.HGOnNetCertIPs++
			} else {
				res.HGOffNetCertIPs++
			}
			break
		}
	}
}

func anyIn(asns []astopo.ASN, set map[astopo.ASN]struct{}) bool {
	for _, as := range asns {
		if _, ok := set[as]; ok {
			return true
		}
	}
	return false
}
