package core

import (
	"context"
	"testing"

	"offnetscope/internal/corpus"
	"offnetscope/internal/hg"
	"offnetscope/internal/scanners"
	"offnetscope/internal/timeline"
)

// Per-stage pipeline benchmarks over the shared seeded world (the same
// corpus the golden suite pins), so a perf regression is attributable
// to one methodology stage rather than "the pipeline got slower".
// `make bench` renders these into BENCH_pipeline.json.

// benchCorpus lazily scans the last snapshot once for all benchmarks.
var benchCorpus *corpus.Snapshot

func benchSnapshot(b *testing.B) *corpus.Snapshot {
	b.Helper()
	if benchCorpus == nil {
		benchCorpus = rapid7At(b, lastSnap)
	}
	return benchCorpus
}

// BenchmarkStageValidate measures §4.1 chain validation + AS annotation
// over one snapshot's certificate records.
func BenchmarkStageValidate(b *testing.B) {
	p := testPipeline(DefaultOptions())
	snap := benchSnapshot(b)
	mapper := p.Mapper(snap.Snapshot)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := &Result{InvalidByReason: make(map[string]int), PerHG: make(map[hg.ID]*HGResult)}
		if recs := p.validate(snap, res, mapper); len(recs) == 0 {
			b.Fatal("no validated records")
		}
	}
}

// BenchmarkStageCertMatch measures steps 2–3 — fingerprint learning,
// keyword match, and the dNSName filter — with header confirmation
// voided by empty header indexes.
func BenchmarkStageCertMatch(b *testing.B) {
	p := testPipeline(Options{HeaderMode: CertsOnly})
	snap := benchSnapshot(b)
	res := &Result{InvalidByReason: make(map[string]int), PerHG: make(map[hg.ID]*HGResult)}
	records := p.validate(snap, res, p.Mapper(snap.Snapshot))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hr := p.runHG(hg.Get(hg.Google), lastSnap, records, nil, nil)
		if hr.CandidateIPs == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkStageHeaderConfirm measures §4.5 header confirmation alone:
// both confirmation modes over every previously computed candidate IP.
func BenchmarkStageHeaderConfirm(b *testing.B) {
	p := testPipeline(DefaultOptions())
	snap := benchSnapshot(b)
	res := &Result{InvalidByReason: make(map[string]int), PerHG: make(map[hg.ID]*HGResult)}
	records := p.validate(snap, res, p.Mapper(snap.Snapshot))
	httpsIdx := snap.HTTPSHeadersByIP()
	httpIdx := snap.HTTPHeadersByIP()
	h := hg.Get(hg.Google)
	hr := p.runHG(h, lastSnap, records, httpsIdx, httpIdx)
	if len(hr.CandidateIPList) == 0 {
		b.Fatal("no candidate IPs to confirm")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		confirmed := 0
		for _, ip := range hr.CandidateIPList {
			if either, _ := p.confirmModes(h, ip, httpsIdx, httpIdx); either {
				confirmed++
			}
		}
		if confirmed == 0 {
			b.Fatal("nothing confirmed")
		}
	}
}

// BenchmarkSnapshotInference measures one full five-step inference pass
// — the unit of work a -jobs worker executes.
func BenchmarkSnapshotInference(b *testing.B) { benchInference(b, 1) }

// BenchmarkSnapshotInferenceShards4 is the same pass with the record
// loops split across 4 shards — the intra-snapshot speedup the -shards
// flag buys on a multi-core runner, with identical output per the
// golden suite.
func BenchmarkSnapshotInferenceShards4(b *testing.B) { benchInference(b, 4) }

func benchInference(b *testing.B, shards int) {
	p := testPipeline(DefaultOptions())
	p.Shards = shards
	snap := benchSnapshot(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := p.Run(snap)
		if res.TotalCertIPs == 0 {
			b.Fatal("empty result")
		}
	}
}

func benchStudy(b *testing.B, jobs int) {
	p := testPipeline(DefaultOptions())
	profile := scanners.Rapid7Profile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr, err := p.RunStudyConfig(context.Background(), func(_ context.Context, s timeline.Snapshot) (*corpus.Snapshot, error) {
			return scanners.Scan(testWorld, profile, s), nil
		}, StudyConfig{Jobs: jobs})
		if err != nil {
			b.Fatal(err)
		}
		if sr.ConfirmedSeries(hg.Google)[lastSnap] == 0 {
			b.Fatal("empty study")
		}
	}
}

// BenchmarkStudyJobs1/Jobs4 measure the full 31-snapshot longitudinal
// study sequentially and on a 4-worker pool — the speedup the -jobs
// flag buys, with identical output per the golden suite.
func BenchmarkStudyJobs1(b *testing.B) { benchStudy(b, 1) }
func BenchmarkStudyJobs4(b *testing.B) { benchStudy(b, 4) }

// BenchmarkStudyStreaming is the same 31-snapshot study driven through
// the streaming engine: RunStudyStream over scanner-synthesized record
// batches at the default chunk size, with records validated as batches
// arrive instead of materializing each month's corpus first. Its
// bytes/op against BenchmarkStudyJobs4 is the memory headroom the
// -chunk flag buys; the output is identical per the golden suite.
func BenchmarkStudyStreaming(b *testing.B) {
	p := testPipeline(DefaultOptions())
	profile := scanners.Rapid7Profile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr, err := p.RunStudyStream(context.Background(), func(_ context.Context, s timeline.Snapshot) (*corpus.Stream, error) {
			return scanners.ScanStream(testWorld, profile, s, 0), nil
		}, StudyConfig{Jobs: 4})
		if err != nil {
			b.Fatal(err)
		}
		if sr.ConfirmedSeries(hg.Google)[lastSnap] == 0 {
			b.Fatal("empty study")
		}
	}
}
