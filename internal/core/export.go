package core

import (
	"offnetscope/internal/astopo"
	"offnetscope/internal/hg"
	"offnetscope/internal/timeline"
)

// Export hooks: the serving layer (internal/footstore) consumes
// inference output as plain per-hypergiant AS sets, decoupled from the
// HGResult internals.

// Footprints returns each hypergiant's confirmed off-net AS set,
// sorted; hypergiants with an empty footprint are omitted.
func (r *Result) Footprints() map[hg.ID][]astopo.ASN {
	out := make(map[hg.ID][]astopo.ASN, len(r.PerHG))
	for id, hr := range r.PerHG {
		if len(hr.ConfirmedASes) == 0 {
			continue
		}
		out[id] = hr.SortedConfirmedASes()
	}
	return out
}

// Snapshots returns the snapshots the study produced results for, in
// order.
func (sr *StudyResult) Snapshots() []timeline.Snapshot {
	var out []timeline.Snapshot
	for i, r := range sr.Results {
		if r != nil {
			out = append(out, timeline.Snapshot(i))
		}
	}
	return out
}

// FootprintAt returns every hypergiant's confirmed off-net AS set at
// snapshot s, or nil when the study had no data for s.
func (sr *StudyResult) FootprintAt(s timeline.Snapshot) map[hg.ID][]astopo.ASN {
	if !s.Valid() || int(s) >= len(sr.Results) || sr.Results[s] == nil {
		return nil
	}
	return sr.Results[s].Footprints()
}
