package core

import (
	"reflect"
	"sync"
	"testing"

	"offnetscope/internal/obs"
)

// TestForEachShardPartition checks the shard geometry directly: for a
// spread of sizes and fan-outs the ranges must cover [0, n) exactly, in
// order, with no gap or overlap — the property the deterministic merge
// rests on.
func TestForEachShardPartition(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{0, 1}, {0, 4}, {1, 1}, {1, 8}, {7, 3}, {8, 4}, {100, 7}, {3, 16},
	} {
		type span struct{ shard, lo, hi int }
		var mu sync.Mutex
		var spans []span
		forEachShard(tc.n, tc.k, func(shard, lo, hi int) {
			mu.Lock()
			spans = append(spans, span{shard, lo, hi})
			mu.Unlock()
		})
		want := tc.k
		if tc.k < 1 {
			want = 1
		}
		if len(spans) != want {
			t.Fatalf("n=%d k=%d: %d calls, want %d", tc.n, tc.k, len(spans), want)
		}
		// Reassemble in shard order and demand exact coverage.
		byShard := make([]span, len(spans))
		seen := make(map[int]bool)
		for _, sp := range spans {
			if seen[sp.shard] {
				t.Fatalf("n=%d k=%d: shard %d ran twice", tc.n, tc.k, sp.shard)
			}
			seen[sp.shard] = true
			byShard[sp.shard] = sp
		}
		next := 0
		for i, sp := range byShard {
			if sp.lo != next {
				t.Fatalf("n=%d k=%d: shard %d starts at %d, want %d", tc.n, tc.k, i, sp.lo, next)
			}
			if sp.hi < sp.lo {
				t.Fatalf("n=%d k=%d: shard %d has inverted range [%d,%d)", tc.n, tc.k, i, sp.lo, sp.hi)
			}
			next = sp.hi
		}
		if next != tc.n {
			t.Fatalf("n=%d k=%d: ranges end at %d, want %d", tc.n, tc.k, next, tc.n)
		}
	}
}

func TestShardCountClamps(t *testing.T) {
	for _, tc := range []struct{ shards, n, want int }{
		{0, 100, 1},  // unset → sequential
		{-3, 100, 1}, // nonsense → sequential
		{4, 100, 4},  // plenty of records
		{8, 3, 3},    // never more shards than records
		{4, 0, 1},    // empty input still runs one empty range
	} {
		p := &Pipeline{Shards: tc.shards}
		if got := p.shardCount(tc.n); got != tc.want {
			t.Errorf("Shards=%d n=%d: shardCount = %d, want %d", tc.shards, tc.n, got, tc.want)
		}
	}
}

// TestRunShardInvariance is the single-snapshot core of the determinism
// contract: the full inference result and every deterministic metric
// counter must be identical at any shard count.
func TestRunShardInvariance(t *testing.T) {
	snap := rapid7At(t, lastSnap)

	runAt := func(shards int) (*Result, map[string]int64) {
		reg := obs.NewRegistry("shardinv")
		p := testPipeline(DefaultOptions())
		p.Metrics = reg
		p.Shards = shards
		return p.Run(snap), reg.Snapshot().Counters
	}

	wantRes, wantCtr := runAt(1)
	for _, shards := range []int{2, 3, 8} {
		gotRes, gotCtr := runAt(shards)
		if !reflect.DeepEqual(wantRes, gotRes) {
			t.Errorf("Shards=%d: inference result diverges from sequential run", shards)
		}
		if !reflect.DeepEqual(wantCtr, gotCtr) {
			t.Errorf("Shards=%d: counters diverge from sequential run\nwant %v\ngot  %v", shards, wantCtr, gotCtr)
		}
	}
}
