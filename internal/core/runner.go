package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"offnetscope/internal/corpus"
	"offnetscope/internal/resilience"
	"offnetscope/internal/timeline"
)

// StudySource supplies the corpus for one study month. Returning
// (nil, nil) means the vendor has no data for that month (e.g. Censys
// before 2019-10); an error marks the month damaged — it is retried per
// the study's policy and then dropped. Sources may be called from
// several worker goroutines at once when StudyConfig.Jobs > 1.
type StudySource func(ctx context.Context, s timeline.Snapshot) (*corpus.Snapshot, error)

// StreamSource supplies one study month as a chunked record stream —
// the bounded-memory counterpart of StudySource, with the same nil/nil
// convention for months the vendor doesn't cover and the same
// concurrency obligations. A fresh Stream must be returned per call:
// retries consume a new one.
type StreamSource func(ctx context.Context, s timeline.Snapshot) (*corpus.Stream, error)

// StudyConfig tunes the longitudinal runner. The zero value is the
// classic sequential in-memory run.
type StudyConfig struct {
	// Jobs bounds the worker pool running per-snapshot inference;
	// zero or one means sequential. The output is identical at any
	// setting — only the cross-snapshot envelope fold is order-
	// sensitive, and it always runs sequentially in snapshot order.
	Jobs int

	// SnapshotTimeout is the per-attempt watchdog deadline covering one
	// snapshot's read plus inference; zero disables it. An attempt that
	// overruns counts as failed and is retried, then dropped.
	SnapshotTimeout time.Duration

	// Retry is the per-snapshot retry policy (zero value: resilience
	// defaults). Unless Classify is set, an attempt is retried whenever
	// its error is not marked resilience.Permanent and the run itself
	// has not been cancelled — so a watchdog overrun is retryable but a
	// SIGINT is not.
	Retry resilience.Policy

	// Restore, when non-nil, is consulted once per snapshot before any
	// work is scheduled; a non-nil CheckpointData skips both inference
	// and fold for that snapshot, replaying the stored envelope instead.
	Restore func(timeline.Snapshot) *CheckpointData

	// Persist, when non-nil, is called in strict snapshot order after
	// the envelope fold of each freshly computed snapshot. A Persist
	// error aborts the run.
	Persist func(timeline.Snapshot, *CheckpointData) error

	// OnDrop is told about each snapshot dropped after its retry budget
	// (reduced coverage). Called from the fold goroutine, in order.
	OnDrop func(timeline.Snapshot, error)
}

// outcome is one worker's verdict on a snapshot: inf and err nil means
// the source had no data.
type outcome struct {
	inf *SnapshotInference
	err error
}

// RunStudyConfig executes the pipeline over every snapshot the source
// can supply: per-snapshot inference runs on a bounded worker pool,
// then the sequential envelope pass folds the Netflix memory in
// snapshot order, checkpointing each completed snapshot via Persist.
// On cancellation it folds (and persists) whatever already finished in
// contiguous order, then returns the partial result with ctx's error —
// so a resumed run restarts exactly where this one stopped.
func (p *Pipeline) RunStudyConfig(ctx context.Context, source StudySource, cfg StudyConfig) (*StudyResult, error) {
	return p.runStudy(ctx, cfg, func(ctx context.Context, s timeline.Snapshot) (*SnapshotInference, error) {
		snap, err := source(ctx, s)
		if err != nil || snap == nil {
			return nil, err
		}
		return p.InferSnapshot(snap), nil
	})
}

// RunStudyStream is RunStudyConfig over a StreamSource: identical
// scheduling, retry, checkpointing, and fold semantics, but each
// snapshot streams through inference in bounded memory instead of
// materializing first. Output is byte-identical to RunStudyConfig over
// the same corpus at any jobs × shards × chunk-size combination.
func (p *Pipeline) RunStudyStream(ctx context.Context, source StreamSource, cfg StudyConfig) (*StudyResult, error) {
	return p.runStudy(ctx, cfg, func(ctx context.Context, s timeline.Snapshot) (*SnapshotInference, error) {
		st, err := source(ctx, s)
		if err != nil || st == nil {
			return nil, err
		}
		return p.InferSnapshotStream(st)
	})
}

// runStudy is the scheduling skeleton both study runners share: the
// worker pool, the per-snapshot slots, the in-order envelope fold, and
// checkpoint restore/persist. attempt produces one snapshot's complete
// inference (nil, nil meaning the month is not covered); how the
// records get from disk to records — materialized or streamed — is
// entirely its business.
func (p *Pipeline) runStudy(ctx context.Context, cfg StudyConfig, attempt func(context.Context, timeline.Snapshot) (*SnapshotInference, error)) (*StudyResult, error) {
	n := timeline.Count()
	out := &StudyResult{
		Results:            make([]*Result, n),
		NetflixInitial:     make([]int, n),
		NetflixWithExpired: make([]int, n),
		NetflixNonTLS:      make([]int, n),
	}

	restored := make([]*CheckpointData, n)
	var pending []timeline.Snapshot
	for _, s := range timeline.All() {
		if cfg.Restore != nil {
			restored[s] = cfg.Restore(s)
		}
		if restored[s] == nil {
			pending = append(pending, s)
		}
	}

	// Workers deliver into one single-use buffered slot per snapshot, so
	// no send ever blocks and the fold can consume strictly in order.
	slots := make([]chan outcome, n)
	for _, s := range pending {
		slots[s] = make(chan outcome, 1)
	}

	wctx, cancelWorkers := context.WithCancel(ctx)
	defer cancelWorkers()
	jobs := cfg.Jobs
	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(pending) {
		jobs = len(pending)
	}
	var wg sync.WaitGroup
	if len(pending) > 0 {
		work := make(chan timeline.Snapshot)
		for i := 0; i < jobs; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for s := range work {
					inf, err := p.inferOnce(wctx, attempt, s, cfg)
					// Each slot is buffered and receives at most one send (the
					// dispatcher hands every snapshot out exactly once), so
					// this never blocks; the wctx arm is defensive, keeping a
					// cancelled run's teardown independent of that invariant.
					select {
					case slots[s] <- outcome{inf: inf, err: err}:
					case <-wctx.Done():
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(work)
			for _, s := range pending {
				select {
				case work <- s:
				case <-wctx.Done():
					return
				}
			}
		}()
	}

	env := newEnvelopeState()
	var runErr error
fold:
	for _, s := range timeline.All() {
		if ck := restored[s]; ck != nil {
			p.Metrics.Counter("funnel.snapshots_restored").Inc()
			out.Results[s] = ck.Result
			out.setEnvelope(s, ck.Envelope)
			env.replay(ck.MemDelta)
			continue
		}
		var o outcome
		select {
		case o = <-slots[s]:
		case <-ctx.Done():
			// Final flush: a result that is already sitting in the slot
			// still gets folded and persisted, so the next invocation
			// resumes after it rather than redoing it.
			select {
			case o = <-slots[s]:
			default:
				runErr = ctx.Err()
				break fold
			}
		}
		if o.err != nil {
			// A worker error after the run was cancelled is the
			// cancellation propagating, not reduced coverage — the
			// snapshot will simply be retried on resume.
			if ctx.Err() != nil {
				runErr = ctx.Err()
				break fold
			}
			p.Metrics.Counter("funnel.snapshots_dropped").Inc()
			if cfg.OnDrop != nil {
				cfg.OnDrop(s, o.err)
			}
			continue
		}
		if o.inf == nil {
			p.Metrics.Counter("funnel.snapshots_empty").Inc()
			continue // month not covered by this vendor
		}
		p.Metrics.Counter("funnel.snapshots_folded").Inc()
		vals, delta := env.fold(o.inf)
		out.Results[s] = o.inf.Result
		out.setEnvelope(s, vals)
		if cfg.Persist != nil {
			if err := cfg.Persist(s, &CheckpointData{Result: o.inf.Result, Envelope: vals, MemDelta: delta}); err != nil {
				runErr = fmt.Errorf("core: checkpointing %s: %w", s.Label(), err)
				break fold
			}
		}
	}
	cancelWorkers()
	wg.Wait()
	return out, runErr
}

func (sr *StudyResult) setEnvelope(s timeline.Snapshot, v EnvelopeValues) {
	sr.NetflixInitial[s] = v.Initial
	sr.NetflixWithExpired[s] = v.WithExpired
	sr.NetflixNonTLS[s] = v.NonTLS
}

// inferOnce runs one snapshot's read + inference under the watchdog
// deadline and the retry policy; the returned error means the snapshot
// is dropped.
func (p *Pipeline) inferOnce(ctx context.Context, attempt func(context.Context, timeline.Snapshot) (*SnapshotInference, error), s timeline.Snapshot, cfg StudyConfig) (*SnapshotInference, error) {
	pol := cfg.Retry
	if pol.Classify == nil {
		// The per-attempt watchdog surfaces as context.DeadlineExceeded,
		// which the default classifier would treat as the caller's own
		// context ending; here only the run context ending is permanent.
		pol.Classify = func(err error) bool {
			return ctx.Err() == nil && !resilience.IsPermanent(err)
		}
	}
	start := time.Now()
	var inf *SnapshotInference
	err := resilience.Retry(ctx, pol, func(rctx context.Context) error {
		actx := rctx
		if cfg.SnapshotTimeout > 0 {
			var cancel context.CancelFunc
			actx, cancel = context.WithTimeout(rctx, cfg.SnapshotTimeout)
			defer cancel()
		}
		res, err := attempt(actx, s)
		if err != nil {
			return err
		}
		if res == nil {
			inf = nil
			return nil
		}
		// Watchdog: an attempt that overran its deadline failed even if
		// it limped to a result — a stuck snapshot must not wedge the run.
		if aerr := actx.Err(); aerr != nil {
			return aerr
		}
		inf = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Snapshot wall time covers the read plus the inference, over all
	// retry attempts — the per-unit-of-work latency a -jobs setting
	// amortizes.
	p.Metrics.Histogram("funnel.snapshot_ns").Since(start)
	return inf, nil
}
