package core

import (
	"sort"
	"strings"

	"offnetscope/internal/hg"
)

// Header-fingerprint mining (§4.4): from a hypergiant's on-net HTTP(S)
// responses, surface the most frequent header name:value pairs and
// header names after filtering common standard headers. The paper then
// classified these manually into the appendix-A.5 registry; the mining
// step is reproduced here so that classification can be audited (the
// analysis package checks that mining recovers Table 4).

// commonHeaderNames are standard headers carried by virtually every
// response; they identify nothing.
var commonHeaderNames = map[string]struct{}{
	"cache-control":     {},
	"content-length":    {},
	"content-type":      {},
	"connection":        {},
	"date":              {},
	"expires":           {},
	"last-modified":     {},
	"etag":              {},
	"vary":              {},
	"accept-ranges":     {},
	"transfer-encoding": {},
	"keep-alive":        {},
	"pragma":            {},
	"age":               {},
	"location":          {},
	"set-cookie":        {},
}

// FingerprintCount is one mined candidate fingerprint with its frequency.
type FingerprintCount struct {
	Name  string
	Value string // empty for name-only candidates
	Count int
}

// MinedFingerprints is the §4.4 mining output for one hypergiant.
type MinedFingerprints struct {
	// TopPairs are the most frequent header name:value pairs (paper:
	// top 50).
	TopPairs []FingerprintCount
	// TopNames are the most frequent header names.
	TopNames []FingerprintCount
}

// MineHeaderFingerprints ranks header name:value pairs and names across
// a hypergiant's on-net responses, dropping common standard headers.
// topK bounds both lists (the paper used 50).
func MineHeaderFingerprints(responses [][]hg.Header, topK int) MinedFingerprints {
	pairCounts := make(map[[2]string]int)
	nameCounts := make(map[string]int)
	for _, headers := range responses {
		for _, h := range headers {
			name := strings.ToLower(h.Name)
			if _, common := commonHeaderNames[name]; common {
				continue
			}
			pairCounts[[2]string{name, h.Value}]++
			nameCounts[name]++
		}
	}
	out := MinedFingerprints{}
	for k, c := range pairCounts {
		out.TopPairs = append(out.TopPairs, FingerprintCount{Name: k[0], Value: k[1], Count: c})
	}
	for n, c := range nameCounts {
		out.TopNames = append(out.TopNames, FingerprintCount{Name: n, Count: c})
	}
	rank := func(xs []FingerprintCount) []FingerprintCount {
		sort.Slice(xs, func(i, j int) bool {
			if xs[i].Count != xs[j].Count {
				return xs[i].Count > xs[j].Count
			}
			if xs[i].Name != xs[j].Name {
				return xs[i].Name < xs[j].Name
			}
			return xs[i].Value < xs[j].Value
		})
		if len(xs) > topK {
			xs = xs[:topK]
		}
		return xs
	}
	out.TopPairs = rank(out.TopPairs)
	out.TopNames = rank(out.TopNames)
	return out
}

// RecoversFingerprint reports whether the mined output contains evidence
// for a curated fingerprint: a top name matching the rule's name (or
// prefix), or a top pair matching name and value (with prefix semantics).
func (m MinedFingerprints) RecoversFingerprint(f hg.HeaderFingerprint) bool {
	for _, p := range m.TopPairs {
		if f.Matches(hg.Header{Name: p.Name, Value: p.Value}) {
			return true
		}
	}
	if f.Value == "" {
		for _, n := range m.TopNames {
			if f.Matches(hg.Header{Name: n.Name}) {
				return true
			}
		}
	}
	return false
}
