package core

import (
	"errors"
	"reflect"
	"testing"

	"offnetscope/internal/corpus"
)

// TestInferSnapshotStreamMatchesInferSnapshot pins the streamed
// inference to the materialized one at the unit level: the complete
// SnapshotInference — every Result field, the HTTP-only set, and the
// Netflix memory lookups — must be deeply equal at any chunk size,
// including a chunk of one record per batch.
func TestInferSnapshotStreamMatchesInferSnapshot(t *testing.T) {
	snap := rapid7At(t, lastSnap)
	p := testPipeline(DefaultOptions())
	want := p.InferSnapshot(snap)
	for _, chunk := range []int{1, 7, 0, 1 << 20} {
		got, err := p.InferSnapshotStream(corpus.StreamOf(snap, chunk))
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if !reflect.DeepEqual(got.Result, want.Result) {
			t.Errorf("chunk=%d: Result diverges from the materialized inference", chunk)
		}
		if !reflect.DeepEqual(got.HTTPOnlyIPs, want.HTTPOnlyIPs) {
			t.Errorf("chunk=%d: HTTPOnlyIPs diverge", chunk)
		}
		if !reflect.DeepEqual(got.NetflixLookups, want.NetflixLookups) {
			t.Errorf("chunk=%d: NetflixLookups diverge", chunk)
		}
	}
}

// TestInferSnapshotStreamSharded reruns the chunk equality with the
// batch validation split across 4 shards — the (chunk, shard) fold.
func TestInferSnapshotStreamSharded(t *testing.T) {
	snap := rapid7At(t, lastSnap)
	p := testPipeline(DefaultOptions())
	want := p.InferSnapshot(snap)
	p.Shards = 4
	for _, chunk := range []int{3, 0} {
		got, err := p.InferSnapshotStream(corpus.StreamOf(snap, chunk))
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if !reflect.DeepEqual(got.Result, want.Result) {
			t.Errorf("chunk=%d shards=4: Result diverges", chunk)
		}
	}
}

// TestInferSnapshotStreamError pins stream-failure semantics: an error
// from any record stream aborts the inference and surfaces with the
// fixed certs-https-http precedence, like a failed materializing read.
func TestInferSnapshotStreamError(t *testing.T) {
	snap := rapid7At(t, lastSnap)
	p := testPipeline(DefaultOptions())
	certErr := errors.New("certs damaged")
	httpErr := errors.New("http damaged")

	st := corpus.StreamOf(snap, 0)
	st.Certs = func(func([]corpus.CertRecord) error) error { return certErr }
	st.HTTP = func(func([]corpus.HeaderRecord) error) error { return httpErr }
	if _, err := p.InferSnapshotStream(st); err != certErr {
		t.Fatalf("got %v, want the certs error (file-order precedence)", err)
	}

	st = corpus.StreamOf(snap, 0)
	st.HTTP = func(func([]corpus.HeaderRecord) error) error { return httpErr }
	if _, err := p.InferSnapshotStream(st); err != httpErr {
		t.Fatalf("got %v, want the http error", err)
	}

	if _, err := p.RunStream(corpus.StreamOf(snap, 0)); err != nil {
		t.Fatalf("clean stream must not error: %v", err)
	}
}
