package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"offnetscope/internal/corpus"
	"offnetscope/internal/resilience"
	"offnetscope/internal/scanners"
	"offnetscope/internal/timeline"
)

// studyTail pre-scans the last n snapshots once so the runner tests can
// share a cheap, deterministic source.
func studyTail(t testing.TB, n int) map[timeline.Snapshot]*corpus.Snapshot {
	t.Helper()
	snaps := make(map[timeline.Snapshot]*corpus.Snapshot, n)
	all := timeline.All()
	for _, s := range all[len(all)-n:] {
		snaps[s] = scanners.Scan(testWorld, scanners.Rapid7Profile(), s)
	}
	return snaps
}

func mapSource(snaps map[timeline.Snapshot]*corpus.Snapshot) StudySource {
	return func(_ context.Context, s timeline.Snapshot) (*corpus.Snapshot, error) {
		return snaps[s], nil
	}
}

func sameStudy(t *testing.T, want, got *StudyResult) {
	t.Helper()
	if !reflect.DeepEqual(want.NetflixInitial, got.NetflixInitial) ||
		!reflect.DeepEqual(want.NetflixWithExpired, got.NetflixWithExpired) ||
		!reflect.DeepEqual(want.NetflixNonTLS, got.NetflixNonTLS) {
		t.Fatalf("Netflix envelope series diverge")
	}
	for i := range want.Results {
		a, b := want.Results[i], got.Results[i]
		if (a == nil) != (b == nil) {
			t.Fatalf("snapshot %d: presence differs (%v vs %v)", i, a != nil, b != nil)
		}
		if a == nil {
			continue
		}
		for id, ha := range a.PerHG {
			if !reflect.DeepEqual(ha.ConfirmedASes, b.PerHG[id].ConfirmedASes) {
				t.Fatalf("snapshot %d: %v confirmed sets differ", i, id)
			}
		}
	}
}

func TestRunStudyConfigParallelMatchesSequential(t *testing.T) {
	snaps := studyTail(t, 4)
	p := testPipeline(DefaultOptions())

	seq, err := p.RunStudyConfig(context.Background(), mapSource(snaps), StudyConfig{Jobs: 1})
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	par, err := p.RunStudyConfig(context.Background(), mapSource(snaps), StudyConfig{Jobs: 4})
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	sameStudy(t, seq, par)

	// And the zero-config front door agrees with both.
	plain := p.RunStudy(func(s timeline.Snapshot) *corpus.Snapshot { return snaps[s] })
	sameStudy(t, seq, plain)
}

func TestRunStudyConfigRestoreSkipsRecompute(t *testing.T) {
	snaps := studyTail(t, 3)
	p := testPipeline(DefaultOptions())

	saved := make(map[timeline.Snapshot]*CheckpointData)
	var persistOrder []timeline.Snapshot
	full, err := p.RunStudyConfig(context.Background(), mapSource(snaps), StudyConfig{
		Persist: func(s timeline.Snapshot, ck *CheckpointData) error {
			saved[s] = ck
			persistOrder = append(persistOrder, s)
			return nil
		},
	})
	if err != nil {
		t.Fatalf("checkpointing run: %v", err)
	}
	if len(saved) != len(snaps) {
		t.Fatalf("persisted %d checkpoints, want %d", len(saved), len(snaps))
	}
	for i := 1; i < len(persistOrder); i++ {
		if persistOrder[i] <= persistOrder[i-1] {
			t.Fatalf("persist order not strictly increasing: %v", persistOrder)
		}
	}

	// Resume with every checkpoint present: the source must never run.
	resumed, err := p.RunStudyConfig(context.Background(),
		func(_ context.Context, s timeline.Snapshot) (*corpus.Snapshot, error) {
			if snaps[s] != nil {
				t.Errorf("source consulted for checkpointed snapshot %v", s)
			}
			return nil, nil
		},
		StudyConfig{Restore: func(s timeline.Snapshot) *CheckpointData { return saved[s] }})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	sameStudy(t, full, resumed)

	// Resume with a hole: only the missing snapshot is recomputed, and
	// the envelope still matches because the restored memory deltas
	// replay in order.
	hole := persistOrder[len(persistOrder)-1]
	var recomputed []timeline.Snapshot
	partial, err := p.RunStudyConfig(context.Background(),
		func(_ context.Context, s timeline.Snapshot) (*corpus.Snapshot, error) {
			if snaps[s] != nil {
				recomputed = append(recomputed, s)
			}
			return snaps[s], nil
		},
		StudyConfig{Restore: func(s timeline.Snapshot) *CheckpointData {
			if s == hole {
				return nil
			}
			return saved[s]
		}})
	if err != nil {
		t.Fatalf("partial resume: %v", err)
	}
	if len(recomputed) != 1 || recomputed[0] != hole {
		t.Fatalf("recomputed %v, want just %v", recomputed, hole)
	}
	sameStudy(t, full, partial)
}

func TestRunStudyConfigDropsFailedSnapshot(t *testing.T) {
	snaps := studyTail(t, 3)
	p := testPipeline(DefaultOptions())
	var bad timeline.Snapshot
	for s := range snaps {
		if bad == 0 || s < bad {
			bad = s
		}
	}

	var dropped []timeline.Snapshot
	sr, err := p.RunStudyConfig(context.Background(),
		func(_ context.Context, s timeline.Snapshot) (*corpus.Snapshot, error) {
			if s == bad {
				return nil, resilience.Permanent(errors.New("disk gone"))
			}
			return snaps[s], nil
		},
		StudyConfig{
			OnDrop: func(s timeline.Snapshot, err error) { dropped = append(dropped, s) },
		})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(dropped) != 1 || dropped[0] != bad {
		t.Fatalf("dropped %v, want just %v", dropped, bad)
	}
	if sr.Results[bad] != nil {
		t.Fatalf("dropped snapshot still has a result")
	}
	for s := range snaps {
		if s != bad && sr.Results[s] == nil {
			t.Errorf("healthy snapshot %v lost", s)
		}
	}
}

func TestRunStudyConfigRetriesTransient(t *testing.T) {
	snaps := studyTail(t, 2)
	p := testPipeline(DefaultOptions())
	fails := make(map[timeline.Snapshot]int)

	sr, err := p.RunStudyConfig(context.Background(),
		func(_ context.Context, s timeline.Snapshot) (*corpus.Snapshot, error) {
			if fails[s] == 0 {
				fails[s]++
				return nil, errors.New("transient read glitch")
			}
			return snaps[s], nil
		},
		StudyConfig{
			Retry: resilience.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
			OnDrop: func(s timeline.Snapshot, err error) {
				t.Errorf("snapshot %v dropped despite retry budget: %v", s, err)
			},
		})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for s := range snaps {
		if sr.Results[s] == nil {
			t.Errorf("snapshot %v missing after transient failure + retry", s)
		}
	}
}

func TestRunStudyConfigWatchdogDropsStuckSnapshot(t *testing.T) {
	p := testPipeline(DefaultOptions())
	stuck := lastSnap

	var dropped []timeline.Snapshot
	sr, err := p.RunStudyConfig(context.Background(),
		func(ctx context.Context, s timeline.Snapshot) (*corpus.Snapshot, error) {
			if s == stuck {
				<-ctx.Done() // simulate a wedged read; the watchdog fires
				return nil, ctx.Err()
			}
			return nil, nil
		},
		StudyConfig{
			SnapshotTimeout: 20 * time.Millisecond,
			Retry:           resilience.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
			OnDrop:          func(s timeline.Snapshot, err error) { dropped = append(dropped, s) },
		})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(dropped) != 1 || dropped[0] != stuck {
		t.Fatalf("dropped %v, want just %v", dropped, stuck)
	}
	if sr.Results[stuck] != nil {
		t.Fatalf("stuck snapshot produced a result")
	}
}

// TestRunStudyConfigCancelMidRun cancels while workers are in flight:
// the fold is blocked on the earliest snapshot (whose source wedges
// until cancellation) while later snapshots have already delivered into
// their slots. The run must unwind — workers sending after the fold has
// exited must not block past cancelWorkers() — and report the
// cancellation. Exercised under -race by make ci's chaos-race target.
func TestRunStudyConfigCancelMidRun(t *testing.T) {
	snaps := studyTail(t, 3)
	p := testPipeline(DefaultOptions())
	var wedged timeline.Snapshot
	for s := range snaps {
		if wedged == 0 || s < wedged {
			wedged = s
		}
	}

	fastDone := make(chan struct{}, len(snaps))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := p.RunStudyConfig(ctx,
			func(sctx context.Context, s timeline.Snapshot) (*corpus.Snapshot, error) {
				if s == wedged {
					<-sctx.Done()
					return nil, sctx.Err()
				}
				if snaps[s] != nil {
					defer func() { fastDone <- struct{}{} }()
				}
				return snaps[s], nil
			},
			StudyConfig{Jobs: len(snaps)})
		done <- err
	}()

	// Wait until both unwedged snapshots have been handed to workers, so
	// the cancellation lands with outcomes already parked in slots and
	// the fold still blocked on the wedged snapshot.
	for i := 0; i < len(snaps)-1; i++ {
		select {
		case <-fastDone:
		case <-time.After(30 * time.Second):
			t.Fatal("fast snapshots never ran")
		}
	}
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-run cancel returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not unwind after mid-run cancellation")
	}
}

func TestRunStudyConfigCancellation(t *testing.T) {
	snaps := studyTail(t, 2)
	p := testPipeline(DefaultOptions())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	_, err := p.RunStudyConfig(ctx, mapSource(snaps), StudyConfig{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}
