package core

import (
	"offnetscope/internal/astopo"
	"offnetscope/internal/corpus"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
)

// This file holds the per-snapshot half of the longitudinal split: a
// snapshot's §4 inference is independent of every other snapshot, so it
// can run on a worker pool and be checkpointed as a unit. The only
// cross-snapshot state — the Netflix §6.2 memory — is folded afterwards
// by the cheap sequential envelope pass in runner.go, which consumes
// the envelope inputs captured here.

// MemEntry is one Netflix memory fact: an IP that served a confirmed
// (or expired) Netflix certificate, and the ASes it mapped to at the
// time it was first seen.
type MemEntry struct {
	IP   netmodel.IP
	ASNs []astopo.ASN
}

// EnvelopeValues are the three Netflix series values of Fig 3 at one
// snapshot: the straight §4 inference, the with-expired variant, and
// the non-TLS restoration variant.
type EnvelopeValues struct {
	Initial     int `json:"initial"`
	WithExpired int `json:"with_expired"`
	NonTLS      int `json:"non_tls"`
}

// SnapshotInference is one snapshot's complete inference output plus
// the envelope inputs the sequential fold needs, so the fold never has
// to touch the (possibly huge) corpus snapshot or the mapper again.
type SnapshotInference struct {
	Result *Result

	// HTTPOnlyIPs are addresses that answered on port 80 but presented
	// no certificate in this snapshot — the §6.2 non-TLS restoration
	// test set: a remembered Netflix IP found here keeps its AS counted.
	HTTPOnlyIPs map[netmodel.IP]struct{}

	// NetflixLookups maps this snapshot's confirmed and expired Netflix
	// IPs (in evidence order, deduplicated) to their origin ASes at scan
	// time — the candidate additions to the cross-snapshot memory.
	NetflixLookups []MemEntry
}

// InferSnapshot runs the full §4 inference over one corpus snapshot and
// captures the envelope inputs. It is a pure function of the snapshot
// and the pipeline's immutable datasets, so any number of snapshots can
// be inferred concurrently.
func (p *Pipeline) InferSnapshot(snap *corpus.Snapshot) *SnapshotInference {
	res := p.Run(snap)

	certIPs := make(map[netmodel.IP]struct{}, len(snap.Certs))
	for _, cr := range snap.Certs {
		certIPs[cr.IP] = struct{}{}
	}
	httpOnly := make(map[netmodel.IP]struct{})
	for _, hr := range snap.HTTP {
		if _, onTLS := certIPs[hr.IP]; !onTLS {
			httpOnly[hr.IP] = struct{}{}
		}
	}

	lookups := p.netflixLookups(res, p.Mapper(snap.Snapshot))
	return &SnapshotInference{Result: res, HTTPOnlyIPs: httpOnly, NetflixLookups: lookups}
}

// netflixLookups maps one snapshot's confirmed and expired Netflix IPs
// (in evidence order, deduplicated) to their origin ASes — the memory
// candidates the envelope fold consumes. Shared by the materializing
// and streaming inference paths.
func (p *Pipeline) netflixLookups(res *Result, mapper IPMapper) []MemEntry {
	nf := res.PerHG[hg.Netflix]
	seen := make(map[netmodel.IP]struct{}, len(nf.ConfirmedIPList)+len(nf.ExpiredIPs))
	var lookups []MemEntry
	remember := func(ips []netmodel.IP) {
		for _, ip := range ips {
			if _, dup := seen[ip]; dup {
				continue
			}
			seen[ip] = struct{}{}
			lookups = append(lookups, MemEntry{IP: ip, ASNs: mapper.Lookup(ip)})
		}
	}
	remember(nf.ConfirmedIPList)
	remember(nf.ExpiredIPs)
	return lookups
}

// CheckpointData is everything the study needs to skip recomputing one
// snapshot on resume: the full inference result plus the folded
// envelope outputs and the memory delta the snapshot contributed.
// internal/runstate persists it crash-safely.
type CheckpointData struct {
	Result   *Result
	Envelope EnvelopeValues
	MemDelta []MemEntry
}

// envelopeState is the only cross-snapshot study state: the map of IPs
// that ever served a confirmed (or expired) Netflix certificate to the
// ASes they mapped to at the time. It must be folded in snapshot order.
type envelopeState struct {
	memory map[netmodel.IP][]astopo.ASN
}

func newEnvelopeState() *envelopeState {
	return &envelopeState{memory: make(map[netmodel.IP][]astopo.ASN)}
}

// fold consumes one snapshot's inference in study order, returning the
// envelope values and the memory delta this snapshot contributed —
// exactly the per-snapshot facts a checkpoint persists.
func (e *envelopeState) fold(inf *SnapshotInference) (EnvelopeValues, []MemEntry) {
	nf := inf.Result.PerHG[hg.Netflix]
	var v EnvelopeValues
	v.Initial = len(nf.ConfirmedASes)

	withExpired := make(map[astopo.ASN]struct{}, len(nf.ConfirmedASes)+len(nf.ExpiredASes))
	for as := range nf.ConfirmedASes {
		withExpired[as] = struct{}{}
	}
	for as := range nf.ExpiredASes {
		withExpired[as] = struct{}{}
	}
	v.WithExpired = len(withExpired)

	// Non-TLS restoration: remembered Netflix IPs that no longer answer
	// on 443 but still answer on 80 keep their AS counted.
	restored := make(map[astopo.ASN]struct{}, len(withExpired))
	for as := range withExpired {
		restored[as] = struct{}{}
	}
	for ip, asns := range e.memory {
		if _, onHTTPOnly := inf.HTTPOnlyIPs[ip]; !onHTTPOnly {
			continue
		}
		for _, as := range asns {
			restored[as] = struct{}{}
		}
	}
	v.NonTLS = len(restored)

	// Update the memory with this month's evidence; first sighting wins.
	var delta []MemEntry
	for _, ent := range inf.NetflixLookups {
		if _, known := e.memory[ent.IP]; known {
			continue
		}
		e.memory[ent.IP] = ent.ASNs
		delta = append(delta, ent)
	}
	return v, delta
}

// replay applies a restored checkpoint's stored memory delta without
// recomputation, keeping the fold deterministic across resumes.
func (e *envelopeState) replay(delta []MemEntry) {
	for _, ent := range delta {
		if _, known := e.memory[ent.IP]; !known {
			e.memory[ent.IP] = ent.ASNs
		}
	}
}
