package core

import (
	"sync"
	"time"

	"offnetscope/internal/astopo"
	"offnetscope/internal/corpus"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
)

// This file is the streaming half of the §4 inference: the same five
// methodology steps, fed by corpus.Stream record batches instead of a
// materialized Snapshot. Memory stays bounded by the chunk size plus
// the compact validated working set (one record struct per valid
// certificate observation — the two-pass §4.2/§4.3 scan needs it), not
// by the wire-format corpus: chains, header slices, and the snapshot's
// giant record slices never materialize at once.
//
// Determinism contract: batches arrive in record order and each batch's
// shard partials fold in shard order, so the overall fold order is
// (chunk, shard) — lexicographically identical to the record order the
// materializing path sees. Every counter merges by commutative
// addition/union and every list concatenates in that order, which is
// why RunStream is byte-identical to Run at any jobs × shards × chunk
// combination (pinned by TestGoldenChunkInvariance).

// RunStream executes the methodology over one streamed corpus
// snapshot. The error is the stream's: record-level damage accounting
// happened inside the stream per its ReadOptions, and a surfaced error
// means the month must be dropped exactly as a failed ReadWithStats
// would have been.
func (p *Pipeline) RunStream(st *corpus.Stream) (*Result, error) {
	inf, err := p.InferSnapshotStream(st)
	if err != nil {
		return nil, err
	}
	return inf.Result, nil
}

// InferSnapshotStream is InferSnapshot over a corpus.Stream: it drives
// all three record streams to completion — mirroring ReadWithStats'
// one-goroutine-per-file concurrency, and guaranteeing the stream's
// read accounting always finalizes — validating certificate batches
// through the shard workers as they arrive, then runs the shared
// match/confirm half on the folded records.
func (p *Pipeline) InferSnapshotStream(st *corpus.Stream) (*SnapshotInference, error) {
	m := p.Metrics
	runStart := time.Now()
	res := &Result{
		Vendor:          st.Vendor,
		Snapshot:        st.Snapshot,
		InvalidByReason: make(map[string]int),
		PerHG:           make(map[hg.ID]*HGResult, hg.Count),
	}
	mapper := p.Mapper(st.Snapshot)
	at := st.ScanTime()

	var (
		records  []record
		asSet    = make(map[astopo.ASN]struct{})
		certIPs  = make(map[netmodel.IP]struct{})
		httpsIdx = make(map[netmodel.IP][]hg.Header)
		httpIdx  = make(map[netmodel.IP][]hg.Header)
		errs     [3]error
	)
	valStart := time.Now()
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		// One scratch slice of shard partials, reused across batches —
		// the consumer is a single goroutine, so batches validate
		// strictly in arrival order and fold immediately.
		var parts []*validateShard
		errs[0] = st.Certs(func(batch []corpus.CertRecord) error {
			for i := range batch {
				certIPs[batch[i].IP] = struct{}{}
			}
			k := p.shardCount(len(batch))
			if cap(parts) < k {
				parts = make([]*validateShard, k)
			}
			parts = parts[:k]
			forEachShard(len(batch), k, func(shard, lo, hi int) {
				parts[shard] = p.validateRange(batch[lo:hi], at, mapper)
			})
			for _, part := range parts {
				records = append(records, part.records...)
				res.ValidCertIPs += part.valid
				for reason, c := range part.invalid {
					res.InvalidByReason[reason] += c
				}
				for as := range part.asSet {
					asSet[as] = struct{}{}
				}
				p.putShardScratch(part)
			}
			res.TotalCertIPs += len(batch)
			return nil
		})
	}()
	go func() {
		defer wg.Done()
		errs[1] = st.HTTPS(func(batch []corpus.HeaderRecord) error {
			for _, r := range batch {
				httpsIdx[r.IP] = r.Headers
			}
			return nil
		})
	}()
	go func() {
		defer wg.Done()
		errs[2] = st.HTTP(func(batch []corpus.HeaderRecord) error {
			for _, r := range batch {
				httpIdx[r.IP] = r.Headers
			}
			return nil
		})
	}()
	wg.Wait()
	// Error precedence follows the fixed file order, like ReadWithStats.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.TotalCertASes = len(asSet)
	m.Histogram("funnel.validate_ns").Since(valStart)

	p.matchAndCount(res, records, httpsIdx, httpIdx)

	// Envelope inputs (§6.2): the HTTP-only set falls out of the index
	// keys — indexHeaders dedups by IP exactly the same way.
	httpOnly := make(map[netmodel.IP]struct{})
	for ip := range httpIdx {
		if _, onTLS := certIPs[ip]; !onTLS {
			httpOnly[ip] = struct{}{}
		}
	}
	lookups := p.netflixLookups(res, mapper)
	m.Histogram("funnel.run_ns").Since(runStart)
	return &SnapshotInference{Result: res, HTTPOnlyIPs: httpOnly, NetflixLookups: lookups}, nil
}
