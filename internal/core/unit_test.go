package core

// Hand-crafted micro-corpus tests: every §4 rule exercised on records
// built by hand, with a toy IP-to-AS map — no simulator involved, so a
// failure here localizes the pipeline logic itself.

import (
	"testing"
	"time"

	"offnetscope/internal/astopo"
	"offnetscope/internal/certmodel"
	"offnetscope/internal/corpus"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/rng"
	"offnetscope/internal/timeline"
)

// toyMapper is a fixed IP→AS map.
type toyMapper map[netmodel.IP][]astopo.ASN

func (m toyMapper) Lookup(ip netmodel.IP) []astopo.ASN { return m[ip] }

// toyWorld builds a minimal dataset: AS 1 is Google's on-net AS, ASes
// 2..9 are eyeballs.
type toyWorld struct {
	auth   *certmodel.Authority
	trust  *certmodel.TrustStore
	orgs   *astopo.OrgDB
	mapper toyMapper
	snap   *corpus.Snapshot
	at     timeline.Snapshot
}

func newToyWorld(t *testing.T) *toyWorld {
	t.Helper()
	from := time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	tw := &toyWorld{
		auth:   certmodel.NewAuthority("ToyCA", 2, from, to, rng.New(9)),
		trust:  certmodel.NewTrustStore(),
		orgs:   astopo.NewOrgDB(),
		mapper: toyMapper{},
		at:     timeline.Snapshot(30),
	}
	if err := tw.trust.AddRoot(tw.auth.Root); err != nil {
		t.Fatal(err)
	}
	tw.orgs.Set(1, 0, "Google LLC")
	for as := astopo.ASN(2); as <= 9; as++ {
		tw.orgs.Set(as, 0, "Eyeball ISP")
	}
	tw.snap = &corpus.Snapshot{Vendor: corpus.Rapid7, Snapshot: tw.at}
	return tw
}

func (tw *toyWorld) leaf(org string, dns ...string) certmodel.Chain {
	return tw.auth.IssueLeaf(certmodel.LeafSpec{
		Organization: org, CommonName: dns[0], DNSNames: dns,
		NotBefore: time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:  time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC),
	})
}

func (tw *toyWorld) addCert(ip uint32, as astopo.ASN, chain certmodel.Chain) {
	addr := netmodel.IP(ip)
	tw.mapper[addr] = []astopo.ASN{as}
	tw.snap.Certs = append(tw.snap.Certs, corpus.CertRecord{IP: addr, Chain: chain})
}

func (tw *toyWorld) addHeaders(ip uint32, https bool, headers ...hg.Header) {
	rec := corpus.HeaderRecord{IP: netmodel.IP(ip), Headers: headers}
	if https {
		tw.snap.HTTPS = append(tw.snap.HTTPS, rec)
	} else {
		tw.snap.HTTP = append(tw.snap.HTTP, rec)
	}
}

func (tw *toyWorld) pipeline(opts Options) *Pipeline {
	return &Pipeline{
		Trust:  tw.trust,
		Orgs:   tw.orgs,
		Mapper: func(timeline.Snapshot) IPMapper { return tw.mapper },
		Opts:   opts,
	}
}

func TestUnitHappyPath(t *testing.T) {
	tw := newToyWorld(t)
	// On-net: AS 1 serves *.google.com + *.googlevideo.com.
	tw.addCert(100, 1, tw.leaf("Google LLC", "*.google.com", "*.googlevideo.com"))
	// Off-net in AS 2: subset of on-net names, gws header.
	tw.addCert(200, 2, tw.leaf("Google LLC", "*.googlevideo.com"))
	tw.addHeaders(200, true, hg.Header{Name: "Server", Value: "gws"})

	res := tw.pipeline(DefaultOptions()).Run(tw.snap)
	g := res.PerHG[hg.Google]
	if len(g.OnNetASes) != 1 || g.OnNetASes[0] != 1 {
		t.Fatalf("on-net ASes = %v", g.OnNetASes)
	}
	if _, ok := g.DNSNames["*.googlevideo.com"]; !ok {
		t.Fatal("fingerprint missing googlevideo")
	}
	if len(g.CandidateASes) != 1 || len(g.ConfirmedASes) != 1 {
		t.Fatalf("candidates=%d confirmed=%d, want 1/1", len(g.CandidateASes), len(g.ConfirmedASes))
	}
	if _, ok := g.ConfirmedASes[2]; !ok {
		t.Fatal("AS 2 not confirmed")
	}
}

func TestUnitSubsetRuleRejectsForeignName(t *testing.T) {
	tw := newToyWorld(t)
	tw.addCert(100, 1, tw.leaf("Google LLC", "*.google.com"))
	// Candidate carries a name never seen on-net: a shared certificate.
	tw.addCert(200, 2, tw.leaf("Google LLC", "*.google.com", "*.partner.example"))
	tw.addHeaders(200, true, hg.Header{Name: "Server", Value: "gws"})

	res := tw.pipeline(DefaultOptions()).Run(tw.snap)
	if n := len(res.PerHG[hg.Google].CandidateASes); n != 0 {
		t.Fatalf("shared cert accepted: %d candidates", n)
	}
	// Ablation: disabling the rule admits it.
	loose := tw.pipeline(Options{HeaderMode: HeadersEither, DisableDNSNameFilter: true}).Run(tw.snap)
	if n := len(loose.PerHG[hg.Google].CandidateASes); n != 1 {
		t.Fatalf("ablated pipeline should admit it: %d", n)
	}
}

func TestUnitOnNetExcludedFromCandidates(t *testing.T) {
	tw := newToyWorld(t)
	tw.addCert(100, 1, tw.leaf("Google LLC", "*.google.com"))
	tw.addCert(101, 1, tw.leaf("Google LLC", "*.google.com"))
	res := tw.pipeline(DefaultOptions()).Run(tw.snap)
	g := res.PerHG[hg.Google]
	if g.OnNetIPs != 2 {
		t.Fatalf("on-net IPs = %d", g.OnNetIPs)
	}
	if len(g.CandidateASes) != 0 {
		t.Fatal("on-net records must not be candidates")
	}
}

func TestUnitUnmappedIPSkipped(t *testing.T) {
	tw := newToyWorld(t)
	tw.addCert(100, 1, tw.leaf("Google LLC", "*.google.com"))
	// A record whose IP has no IP-to-AS mapping (the paper covers only
	// ~76% of routable space).
	addr := netmodel.IP(999)
	tw.snap.Certs = append(tw.snap.Certs, corpus.CertRecord{IP: addr, Chain: tw.leaf("Google LLC", "*.google.com")})

	res := tw.pipeline(DefaultOptions()).Run(tw.snap)
	if n := len(res.PerHG[hg.Google].CandidateASes); n != 0 {
		t.Fatalf("unmapped record produced %d candidate ASes", n)
	}
}

func TestUnitSelfSignedExcluded(t *testing.T) {
	tw := newToyWorld(t)
	tw.addCert(100, 1, tw.leaf("Google LLC", "*.google.com"))
	imp := tw.auth.IssueSelfSigned(certmodel.LeafSpec{
		Organization: "Google LLC", CommonName: "*.google.com",
		DNSNames:  []string{"*.google.com"},
		NotBefore: time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:  time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC),
	})
	tw.addCert(200, 2, imp)
	tw.addHeaders(200, true, hg.Header{Name: "Server", Value: "gws"})

	res := tw.pipeline(DefaultOptions()).Run(tw.snap)
	if n := len(res.PerHG[hg.Google].CandidateASes); n != 0 {
		t.Fatalf("self-signed impostor accepted: %d", n)
	}
	if res.InvalidByReason[certmodel.ReasonSelfSigned] != 1 {
		t.Fatalf("invalid stats = %v", res.InvalidByReason)
	}
}

func TestUnitMOASAttributesAllOrigins(t *testing.T) {
	tw := newToyWorld(t)
	tw.addCert(100, 1, tw.leaf("Google LLC", "*.google.com"))
	chain := tw.leaf("Google LLC", "*.google.com")
	addr := netmodel.IP(300)
	tw.mapper[addr] = []astopo.ASN{3, 4} // MOAS prefix
	tw.snap.Certs = append(tw.snap.Certs, corpus.CertRecord{IP: addr, Chain: chain})
	tw.addHeaders(300, true, hg.Header{Name: "Server", Value: "gws"})

	res := tw.pipeline(DefaultOptions()).Run(tw.snap)
	g := res.PerHG[hg.Google]
	if len(g.ConfirmedASes) != 2 {
		t.Fatalf("MOAS should confirm both origins, got %v", g.SortedConfirmedASes())
	}
}

func TestUnitNetflixNginxRule(t *testing.T) {
	tw := newToyWorld(t)
	tw.orgs.Set(10, 0, "Netflix, Inc.")
	tw.addCert(100, 10, tw.leaf("Netflix, Inc.", "*.nflxvideo.net"))
	tw.addCert(200, 2, tw.leaf("Netflix, Inc.", "*.nflxvideo.net"))
	tw.addHeaders(200, true, hg.Header{Name: "Server", Value: "nginx"})

	res := tw.pipeline(DefaultOptions()).Run(tw.snap)
	if len(res.PerHG[hg.Netflix].ConfirmedASes) != 1 {
		t.Fatal("cert + default nginx should confirm Netflix")
	}
	// With the rule disabled, nginx alone confirms nothing.
	off := tw.pipeline(Options{HeaderMode: HeadersEither, DisableNetflixNginx: true}).Run(tw.snap)
	if len(off.PerHG[hg.Netflix].ConfirmedASes) != 0 {
		t.Fatal("disabled nginx rule still confirmed")
	}
	// But nginx must never confirm Google.
	if len(res.PerHG[hg.Google].ConfirmedASes) != 0 {
		t.Fatal("nginx confirmed a non-Netflix hypergiant")
	}
}

func TestUnitConflictPriority(t *testing.T) {
	tw := newToyWorld(t)
	tw.orgs.Set(11, 0, "Apple Inc.")
	tw.addCert(100, 11, tw.leaf("Apple Inc.", "*.apple.com"))
	// Apple cert on a box answering with BOTH Akamai and Apple headers —
	// a cache miss through an Akamai edge (§7).
	tw.addCert(200, 2, tw.leaf("Apple Inc.", "*.apple.com"))
	tw.addHeaders(200, true,
		hg.Header{Name: "Server", Value: "AkamaiGHost"},
		hg.Header{Name: "CDNUUID", Value: "abc"},
	)

	res := tw.pipeline(DefaultOptions()).Run(tw.snap)
	if len(res.PerHG[hg.Apple].ConfirmedASes) != 0 {
		t.Fatal("edge-CDN conflict should suppress Apple confirmation")
	}
	loose := tw.pipeline(Options{HeaderMode: HeadersEither, DisableConflictPriority: true}).Run(tw.snap)
	if len(loose.PerHG[hg.Apple].ConfirmedASes) != 1 {
		t.Fatal("without priority the Apple header should confirm")
	}
}

func TestUnitCloudflareFilter(t *testing.T) {
	tw := newToyWorld(t)
	tw.orgs.Set(12, 0, "Cloudflare, Inc.")
	// Cloudflare's edge serves the universal certificate on-net...
	uni := tw.leaf("Cloudflare, Inc.", "sni12345.cloudflaressl.com", "*.customer.example")
	tw.addCert(100, 12, uni)
	// ...and the customer's origin in AS 2 serves the identical names.
	tw.addCert(200, 2, tw.leaf("Cloudflare, Inc.", "sni12345.cloudflaressl.com", "*.customer.example"))
	tw.addHeaders(200, true, hg.Header{Name: "Server", Value: "cloudflare"})

	res := tw.pipeline(DefaultOptions()).Run(tw.snap)
	if n := len(res.PerHG[hg.Cloudflare].CandidateASes); n != 0 {
		t.Fatalf("universal cert survived the filter: %d", n)
	}
	loose := tw.pipeline(Options{HeaderMode: HeadersEither, DisableCloudflareFilter: true}).Run(tw.snap)
	if n := len(loose.PerHG[hg.Cloudflare].CandidateASes); n != 1 {
		t.Fatalf("without the filter the origin passes the subset rule: %d", n)
	}
}

func TestUnitExpiredTracking(t *testing.T) {
	tw := newToyWorld(t)
	tw.orgs.Set(10, 0, "Netflix, Inc.")
	tw.addCert(100, 10, tw.leaf("Netflix, Inc.", "*.nflxvideo.net"))
	expired := tw.auth.IssueLeaf(certmodel.LeafSpec{
		Organization: "Netflix, Inc.", CommonName: "*.nflxvideo.net",
		DNSNames:  []string{"*.nflxvideo.net"},
		NotBefore: time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:  time.Date(2017, 4, 1, 0, 0, 0, 0, time.UTC),
	})
	tw.addCert(200, 2, expired)

	res := tw.pipeline(DefaultOptions()).Run(tw.snap)
	nf := res.PerHG[hg.Netflix]
	if len(nf.CandidateASes) != 0 {
		t.Fatal("expired cert must not be a candidate by default")
	}
	if len(nf.ExpiredASes) != 1 {
		t.Fatalf("expired evidence not tracked: %v", nf.ExpiredASes)
	}
	// The "w/ expired" envelope option promotes it to a candidate.
	env := tw.pipeline(Options{HeaderMode: CertsOnly, IgnoreExpiryFor: map[hg.ID]bool{hg.Netflix: true}}).Run(tw.snap)
	if len(env.PerHG[hg.Netflix].CandidateASes) != 1 {
		t.Fatal("IgnoreExpiryFor did not restore the expired off-net")
	}
}

func TestUnitHeaderModes(t *testing.T) {
	tw := newToyWorld(t)
	tw.addCert(100, 1, tw.leaf("Google LLC", "*.google.com"))
	// AS 2: HTTPS says gws, HTTP says nginx → Either yes, Both no.
	tw.addCert(200, 2, tw.leaf("Google LLC", "*.google.com"))
	tw.addHeaders(200, true, hg.Header{Name: "Server", Value: "gws"})
	tw.addHeaders(200, false, hg.Header{Name: "Server", Value: "nginx"})
	// AS 3: both ports say gws → Either and Both.
	tw.addCert(300, 3, tw.leaf("Google LLC", "*.google.com"))
	tw.addHeaders(300, true, hg.Header{Name: "Server", Value: "gws"})
	tw.addHeaders(300, false, hg.Header{Name: "Server", Value: "gws"})
	// AS 4: no header records at all → candidate only.
	tw.addCert(400, 4, tw.leaf("Google LLC", "*.google.com"))

	res := tw.pipeline(DefaultOptions()).Run(tw.snap)
	g := res.PerHG[hg.Google]
	if len(g.CandidateASes) != 3 {
		t.Fatalf("candidates = %d", len(g.CandidateASes))
	}
	if len(g.ConfirmedByEitherASes) != 2 {
		t.Fatalf("either = %v", g.ConfirmedByEitherASes)
	}
	if len(g.ConfirmedByBothASes) != 1 {
		t.Fatalf("both = %v", g.ConfirmedByBothASes)
	}
	certsOnly := tw.pipeline(Options{HeaderMode: CertsOnly}).Run(tw.snap)
	if len(certsOnly.PerHG[hg.Google].ConfirmedASes) != 3 {
		t.Fatal("certs-only mode should confirm every candidate")
	}
}

func TestUnitOrgRenameTracked(t *testing.T) {
	tw := newToyWorld(t)
	// AS 1 was "Google Inc." until 2017-04, then "Google LLC".
	tw.orgs = astopo.NewOrgDB()
	tw.orgs.Set(1, 0, "Google Inc.")
	tw.orgs.Set(1, 14, "Google LLC")
	tw.addCert(100, 1, tw.leaf("Google LLC", "*.google.com"))

	// Keyword matching spans the rename at any snapshot.
	for _, s := range []timeline.Snapshot{0, 14, 30} {
		tw.snap.Snapshot = s
		// Reissue a chain valid at the early scan time too.
		tw.snap.Certs[0].Chain = tw.auth.IssueLeaf(certmodel.LeafSpec{
			Organization: "Google LLC", CommonName: "*.google.com",
			DNSNames:  []string{"*.google.com"},
			NotBefore: time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC),
			NotAfter:  time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC),
		})
		res := tw.pipeline(DefaultOptions()).Run(tw.snap)
		if got := res.PerHG[hg.Google].OnNetASes; len(got) != 1 || got[0] != 1 {
			t.Fatalf("at %v on-net ASes = %v", s, got)
		}
	}
}
