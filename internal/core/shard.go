package core

import "sync"

// This file is the record-sharding layer behind Pipeline.Shards: the
// per-snapshot record loops (§4.1 validation and each hypergiant's two
// record scans) split into contiguous index ranges, run one goroutine
// per shard, and fold their partial results in shard order. Contiguous
// ranges plus ordered folds are what keep the output byte-identical at
// any shard count — slices concatenate back into record order, and
// every tally or set merges by commutative addition or union — the same
// invariance contract StudyConfig.Jobs carries across snapshots, pinned
// by the golden suite.

// shardCount clamps the configured shard fan-out to [1, n] for a loop
// over n records: never more shards than records, never fewer than one
// (so an empty input still runs a single empty range).
func (p *Pipeline) shardCount(n int) int {
	k := p.Shards
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	return k
}

// forEachShard splits [0, n) into k contiguous near-equal ranges and
// runs fn(shard, lo, hi) for each — inline when k is 1, otherwise one
// goroutine per shard, returning only after all complete. Boundaries
// sit at i*n/k, so the ranges cover the interval exactly in order and
// differ in size by at most one record.
func forEachShard(n, k int, fn func(shard, lo, hi int)) {
	if k <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(k)
	for shard := 0; shard < k; shard++ {
		go func(shard int) {
			defer wg.Done()
			fn(shard, shard*n/k, (shard+1)*n/k)
		}(shard)
	}
	wg.Wait()
}
