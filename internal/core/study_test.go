package core

// Unit tests for the longitudinal study assembly, on synthetic results —
// the end-to-end behaviour is covered in pipeline_test.go.

import (
	"testing"
	"time"

	"offnetscope/internal/astopo"
	"offnetscope/internal/certmodel"
	"offnetscope/internal/corpus"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/timeline"
)

// fabricateStudy builds a StudyResult with hand-set per-snapshot counts.
func fabricateStudy(counts map[hg.ID][]int) *StudyResult {
	sr := &StudyResult{
		Results:            make([]*Result, timeline.Count()),
		NetflixInitial:     make([]int, timeline.Count()),
		NetflixWithExpired: make([]int, timeline.Count()),
		NetflixNonTLS:      make([]int, timeline.Count()),
	}
	for i := range sr.Results {
		res := &Result{PerHG: make(map[hg.ID]*HGResult)}
		for _, h := range hg.All() {
			hr := &HGResult{ConfirmedASes: make(map[astopo.ASN]struct{})}
			if series, ok := counts[h.ID]; ok {
				for k := 0; k < series[i]; k++ {
					hr.ConfirmedASes[astopo.ASN(k+1)] = struct{}{}
				}
			}
			res.PerHG[h.ID] = hr
		}
		sr.Results[i] = res
	}
	return sr
}

func rampSeries(from, to int) []int {
	out := make([]int, timeline.Count())
	for i := range out {
		out[i] = from + (to-from)*i/(timeline.Count()-1)
	}
	return out
}

func TestMaxConfirmed(t *testing.T) {
	series := rampSeries(10, 50)
	series[18] = 99 // a mid-study peak
	sr := fabricateStudy(map[hg.ID][]int{hg.Akamai: series})
	max, at := sr.MaxConfirmed(hg.Akamai)
	if max != 99 || at != 18 {
		t.Fatalf("MaxConfirmed = %d @ %v", max, at)
	}
	// A hypergiant with no footprint peaks at zero.
	max, at = sr.MaxConfirmed(hg.Fastly)
	if max != 0 || at != 0 {
		t.Fatalf("empty MaxConfirmed = %d @ %v", max, at)
	}
}

func TestEnvelopeSeriesTakesMax(t *testing.T) {
	sr := fabricateStudy(map[hg.ID][]int{hg.Netflix: rampSeries(5, 5)})
	for i := range sr.NetflixInitial {
		sr.NetflixInitial[i] = 5
		sr.NetflixWithExpired[i] = 7
		sr.NetflixNonTLS[i] = 6
	}
	env := sr.EnvelopeSeries(hg.Netflix)
	for i, v := range env {
		if v != 7 {
			t.Fatalf("envelope[%d] = %d, want the max variant 7", i, v)
		}
	}
	// Non-Netflix hypergiants use the plain confirmed series.
	sr2 := fabricateStudy(map[hg.ID][]int{hg.Google: rampSeries(3, 3)})
	for i, v := range sr2.EnvelopeSeries(hg.Google) {
		if v != 3 {
			t.Fatalf("google envelope[%d] = %d", i, v)
		}
	}
}

func TestSeriesWithMissingSnapshots(t *testing.T) {
	sr := fabricateStudy(map[hg.ID][]int{hg.Google: rampSeries(2, 8)})
	sr.Results[5] = nil // a month with no corpus
	series := sr.ConfirmedSeries(hg.Google)
	if series[5] != 0 {
		t.Fatal("missing snapshot should report zero")
	}
	if series[6] == 0 {
		t.Fatal("following snapshot should be intact")
	}
	if sr.ConfirmedASesAt(hg.Google, 5) != nil {
		t.Fatal("missing snapshot AS set should be nil")
	}
	if sr.ConfirmedASesAt(hg.Google, 6) == nil {
		t.Fatal("present snapshot AS set should not be nil")
	}
}

func TestRunStudySkipsNilSources(t *testing.T) {
	p := testPipeline(DefaultOptions())
	calls := 0
	sr := p.RunStudy(func(s timeline.Snapshot) *corpus.Snapshot {
		calls++
		return nil // vendor with no data at all
	})
	if calls != timeline.Count() {
		t.Fatalf("source called %d times", calls)
	}
	for i, r := range sr.Results {
		if r != nil {
			t.Fatalf("snapshot %d has a result without data", i)
		}
	}
	if sr.NetflixNonTLS[30] != 0 {
		t.Fatal("empty study produced Netflix counts")
	}
}

func TestNetflixMemoryAcrossSnapshots(t *testing.T) {
	// A tiny two-snapshot source: the Netflix IP serves a valid cert in
	// month A, then disappears from TLS but stays on HTTP in month B —
	// the non-TLS restoration must keep its AS counted.
	tw := newToyWorld(t)
	tw.orgs.Set(10, 0, "Netflix, Inc.")
	ip := netmodel.IP(500)
	tw.mapper[ip] = []astopo.ASN{7}
	tw.mapper[netmodel.IP(100)] = []astopo.ASN{10}

	wideLeaf := func() certmodel.Chain {
		return tw.auth.IssueLeaf(certmodel.LeafSpec{
			Organization: "Netflix, Inc.", CommonName: "*.nflxvideo.net",
			DNSNames:  []string{"*.nflxvideo.net"},
			NotBefore: time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC),
			NotAfter:  time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC),
		})
	}
	chainOn := wideLeaf()
	chainOff := wideLeaf()

	source := func(s timeline.Snapshot) *corpus.Snapshot {
		switch s {
		case 10:
			return &corpus.Snapshot{
				Vendor: corpus.Rapid7, Snapshot: s,
				Certs: []corpus.CertRecord{
					{IP: netmodel.IP(100), Chain: chainOn},
					{IP: ip, Chain: chainOff},
				},
				HTTP: []corpus.HeaderRecord{
					{IP: ip, Headers: []hg.Header{{Name: "Server", Value: "nginx"}}},
				},
			}
		case 11:
			return &corpus.Snapshot{
				Vendor: corpus.Rapid7, Snapshot: s,
				Certs: []corpus.CertRecord{
					{IP: netmodel.IP(100), Chain: chainOn},
					// ip no longer answers TLS...
				},
				HTTP: []corpus.HeaderRecord{
					// ...but still talks HTTP.
					{IP: ip, Headers: []hg.Header{{Name: "Server", Value: "nginx"}}},
				},
			}
		default:
			return nil
		}
	}
	sr := tw.pipeline(DefaultOptions()).RunStudy(source)
	if sr.NetflixInitial[10] != 1 {
		t.Fatalf("month A initial = %d", sr.NetflixInitial[10])
	}
	if sr.NetflixInitial[11] != 0 {
		t.Fatalf("month B initial = %d, the IP left TLS", sr.NetflixInitial[11])
	}
	if sr.NetflixNonTLS[11] != 1 {
		t.Fatalf("month B non-TLS restoration = %d, want 1", sr.NetflixNonTLS[11])
	}
}
