package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"syscall"
	"time"

	"offnetscope/internal/obs"
)

// Target is anywhere the driver can send a request. *http.Client
// satisfies it for a live daemon over a socket; HandlerTarget satisfies
// it for an in-process offnetd server with zero network between the
// generator and the handler stack.
type Target interface {
	Do(*http.Request) (*http.Response, error)
}

// HandlerTarget drives an http.Handler directly — the production
// handler stack (worker pool, cache, shedding included) without a
// socket, which is what the committed benchmarks measure.
type HandlerTarget struct {
	Handler http.Handler
}

func (t HandlerTarget) Do(req *http.Request) (*http.Response, error) {
	rec := respRecorder{status: http.StatusOK, header: make(http.Header, 4)}
	t.Handler.ServeHTTP(&rec, req)
	return &http.Response{
		StatusCode: rec.status,
		Header:     rec.header,
		Body:       io.NopCloser(bytes.NewReader(rec.body.Bytes())),
	}, nil
}

// respRecorder is the driver's own minimal ResponseWriter; the httptest
// recorder is off-limits outside _test files.
type respRecorder struct {
	status int
	header http.Header
	body   bytes.Buffer
}

func (r *respRecorder) Header() http.Header         { return r.header }
func (r *respRecorder) WriteHeader(code int)        { r.status = code }
func (r *respRecorder) Write(p []byte) (int, error) { return r.body.Write(p) }

// Options tunes the driver, not the workload — everything here may
// change timing but never which requests are sent.
type Options struct {
	// Concurrency bounds in-flight requests (0: 32). With open-loop
	// pacing, a request whose scheduled time has passed waits only for
	// a free worker, so saturation shows up as schedule lag, not as a
	// silently reduced offered rate.
	Concurrency int

	// BaseURL prefixes every request path. Required for an *http.Client
	// target; ignored cosmetically by HandlerTarget (0: a placeholder
	// host).
	BaseURL string

	// Registry receives the driver's latency histogram and counters;
	// nil metrics are dropped (obs nop handles).
	Registry *obs.Registry

	// OnResponse, when set, observes every completed response after
	// accounting — the hook e2e tests use to cross-check generation
	// against content, and soak harnesses use (via the headers) to
	// separate chaos-injected faults from genuine ones. Called from
	// worker goroutines. Responses whose body read failed mid-stream
	// are counted as transport errors and never reach the hook.
	OnResponse func(req *Request, status int, header http.Header, body []byte)
}

// Report is the driver's deterministic-shape result. For an in-process
// run of a fixed plan, everything except wall-clock timing (Duration,
// QPS, latency quantiles) is identical run to run.
type Report struct {
	Seed      int64  `json:"seed"`
	TraceHash string `json:"trace_hash"`
	Requests  int    `json:"requests"`
	Lookups   int    `json:"lookups"`

	ByKind   map[string]int `json:"by_kind"`
	ByStatus map[string]int `json:"by_status"`

	Errors5xx int `json:"errors_5xx"`
	Shed429   int `json:"shed_429"`
	Transport int `json:"transport_errors"`

	// TransportByClass splits Transport into failure classes — reset,
	// timeout, eof (torn bodies included), refused, other — so a soak
	// SLO can budget injected resets separately from, say, dial
	// refusals that would mean the daemon died. Keys sort in the JSON
	// encoding, so the report stays byte-deterministic.
	TransportByClass map[string]int `json:"transport_by_class,omitempty"`

	// Generations histograms the generation field of every 200-status
	// body that carried one — how many responses each store generation
	// answered during the run.
	Generations map[string]int `json:"generations,omitempty"`

	DurationNs    int64   `json:"duration_ns"`
	QPS           float64 `json:"qps"`
	LookupsPerSec float64 `json:"lookups_per_sec"`
	P50Ns         int64   `json:"p50_ns"`
	P99Ns         int64   `json:"p99_ns"`
	P999Ns        int64   `json:"p999_ns"`
}

// WriteJSON renders the report with sorted keys and stable field
// order, newline-terminated.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Drive replays the plan against the target with bounded concurrency,
// honoring each request's open-loop arrival offset, and aggregates the
// result. The context aborts the run between requests.
func Drive(ctx context.Context, plan *Plan, target Target, opts Options) (*Report, error) {
	if target == nil {
		return nil, fmt.Errorf("loadgen: nil target")
	}
	conc := opts.Concurrency
	if conc <= 0 {
		conc = 32
	}
	base := opts.BaseURL
	if base == "" {
		base = "http://offnetd.invalid"
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry("loadgen")
	}
	lat := reg.Histogram("loadgen.latency")
	sent := reg.Counter("loadgen.sent")
	transport := reg.Counter("loadgen.transport_errors")

	var (
		mu        sync.Mutex
		byStatus  = make(map[string]int)
		gens      = make(map[string]int)
		transErrs = make(map[string]int)
		rep       = Report{
			Seed:      plan.Seed,
			TraceHash: plan.Hash(),
			Requests:  len(plan.Requests),
			Lookups:   plan.Lookups,
			ByKind:    plan.ByKind(),
			ByStatus:  byStatus,
		}
	)
	countTransport := func(err error) {
		class := classifyTransport(err)
		reg.Counter("loadgen.transport." + class).Inc()
		transport.Inc()
		mu.Lock()
		rep.Transport++
		transErrs[class]++
		mu.Unlock()
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				r := &plan.Requests[i]
				if r.At > 0 {
					if d := time.Until(start.Add(r.At)); d > 0 {
						select {
						case <-time.After(d):
						case <-ctx.Done():
							return
						}
					}
				}
				var body io.Reader
				if r.Body != nil {
					body = bytes.NewReader(r.Body)
				}
				req, err := http.NewRequestWithContext(ctx, r.Method, base+r.Path, body)
				if err != nil {
					panic(fmt.Sprintf("loadgen: plan produced an unbuildable request %q: %v", r.Path, err))
				}
				if r.Body != nil {
					req.Header.Set("Content-Type", "application/json")
				}
				issued := time.Now()
				resp, err := target.Do(req)
				sent.Inc()
				if err != nil {
					countTransport(err)
					continue
				}
				respBody, readErr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if readErr != nil {
					// A torn body is a transport failure, not a served
					// response: the status line arrived but the answer
					// did not, so none of the response accounting runs.
					countTransport(readErr)
					continue
				}
				lat.Since(issued)

				mu.Lock()
				byStatus[strconv.Itoa(resp.StatusCode)]++
				switch {
				case resp.StatusCode >= 500:
					rep.Errors5xx++
				case resp.StatusCode == http.StatusTooManyRequests:
					rep.Shed429++
				}
				if resp.StatusCode == http.StatusOK {
					if g, ok := scanGeneration(respBody); ok {
						gens[strconv.FormatUint(g, 10)]++
					}
				}
				mu.Unlock()
				if opts.OnResponse != nil {
					opts.OnResponse(r, resp.StatusCode, resp.Header, respBody)
				}
			}
		}()
	}
feed:
	for i := range plan.Requests {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}

	if len(gens) > 0 {
		rep.Generations = gens
	}
	if len(transErrs) > 0 {
		rep.TransportByClass = transErrs
	}
	rep.DurationNs = int64(elapsed)
	done := len(plan.Requests) - rep.Transport
	rep.QPS = float64(done) / elapsed.Seconds()
	rep.LookupsPerSec = float64(rep.Lookups) / elapsed.Seconds()
	hs := reg.Snapshot().Histograms["loadgen.latency"]
	sort.Slice(hs.Buckets, func(i, j int) bool { return hs.Buckets[i].Pow < hs.Buckets[j].Pow })
	rep.P50Ns = hs.Quantile(0.50)
	rep.P99Ns = hs.Quantile(0.99)
	rep.P999Ns = hs.Quantile(0.999)

	if err := ctx.Err(); err != nil {
		return &rep, fmt.Errorf("loadgen: run aborted: %w", err)
	}
	return &rep, nil
}

// classifyTransport buckets one transport failure. Sentinel checks run
// before the net.Error timeout interface check so a wrapped
// ECONNRESET that also happens to satisfy net.Error lands in "reset",
// the more specific bucket.
func classifyTransport(err error) string {
	switch {
	case errors.Is(err, syscall.ECONNRESET):
		return "reset"
	case errors.Is(err, syscall.ECONNREFUSED):
		return "refused"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, io.ErrUnexpectedEOF), errors.Is(err, io.EOF):
		return "eof"
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return "timeout"
	}
	return "other"
}

// scanGeneration pulls the top-level "generation" number out of a JSON
// body without a full decode — the driver reads every response body and
// a json.Unmarshal per response would dominate the measurement.
func scanGeneration(body []byte) (uint64, bool) {
	const key = `"generation":`
	i := bytes.Index(body, []byte(key))
	if i < 0 {
		return 0, false
	}
	j := i + len(key)
	for j < len(body) && (body[j] == ' ' || body[j] == '\t') {
		j++
	}
	k := j
	for k < len(body) && body[k] >= '0' && body[k] <= '9' {
		k++
	}
	if k == j {
		return 0, false
	}
	g, err := strconv.ParseUint(string(body[j:k]), 10, 64)
	return g, err == nil
}
