// Package loadgen is the serving-scale traffic harness: a seeded,
// deterministic workload generator that derives realistic query mixes
// from a footprint store itself, plus a bounded-concurrency open-loop
// driver that replays them against a live or in-process offnetd and
// reports QPS, latency quantiles, and error counts.
//
// Realism and reproducibility are both first-class (the
// ConCap/GHTraffic lesson: a serving benchmark is only credible if its
// traffic is synthetic-but-realistic and anyone can regenerate it):
//
//   - Hot IPs are drawn zipfian-weighted from the store's own prefix
//     table, so the hot set is the store's real footprint, not random
//     noise. Cold IPs sample the whole v4 space and mostly miss.
//     /v1/as and /v1/hg footprint queries draw from the store's AS and
//     hypergiant populations, and a configurable fraction of requests
//     is deliberately malformed.
//   - The whole trace — request order, paths, batch bodies, arrival
//     offsets — is a pure function of (store, PlanConfig). Two plans
//     built with the same seed are byte-identical; Plan.Hash() names
//     the trace so reports can prove it.
//   - Arrivals are open-loop: each request carries an absolute offset
//     from run start, derived from a baseline rate with periodic burst
//     phases, so the driver applies load at the scheduled rate instead
//     of adapting to the server (the coordinated-omission trap).
package loadgen

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"time"

	"offnetscope/internal/astopo"
	"offnetscope/internal/footstore"
	"offnetscope/internal/netmodel"
)

// Kind classifies one generated request.
type Kind uint8

const (
	KindIPHot     Kind = iota // GET /v1/ip/{ip}, zipfian over the store's prefixes
	KindIPCold                // GET /v1/ip/{ip}, uniform over v4 space (mostly unmapped)
	KindAS                    // GET /v1/as/{asn}, zipfian over the store's hosting ASes
	KindFootprint             // GET /v1/hg/{id}/footprint[?snapshot=...]
	KindMalformed             // deliberately invalid requests (4xx expected)
	KindBatch                 // POST /v1/batch carrying grouped IP lookups
)

var kindNames = [...]string{"ip_hot", "ip_cold", "as", "footprint", "malformed", "batch"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Request is one scheduled query of the workload trace.
type Request struct {
	Kind   Kind
	Method string
	Path   string        // URI relative to the server root, query included
	Body   []byte        // POST body (batch), nil otherwise
	At     time.Duration // open-loop arrival offset from run start
	Items  int           // lookups this request resolves (batch: body size, else 1)
}

// Mix weighs the query kinds. Weights are relative, not required to
// sum to 1; a kind whose population is empty in the store (no
// prefixes, no ASes) must carry weight 0.
type Mix struct {
	IPHot     float64 `json:"ip_hot"`
	IPCold    float64 `json:"ip_cold"`
	AS        float64 `json:"as"`
	Footprint float64 `json:"footprint"`
	Malformed float64 `json:"malformed"`
}

// DefaultMix approximates a CDN-style lookup service: dominated by
// single-IP resolution with a hot skew, a trickle of AS and footprint
// queries, and a small malformed fraction (clients misbehave).
func DefaultMix() Mix {
	return Mix{IPHot: 0.70, IPCold: 0.10, AS: 0.10, Footprint: 0.05, Malformed: 0.05}
}

// PlanConfig parameterizes workload derivation. Only Requests is
// required; zero values pick the documented defaults.
type PlanConfig struct {
	Seed     int64   // workload seed; same seed + same store = identical trace
	Requests int     // number of HTTP requests to schedule
	Mix      Mix     // kind weights (zero value: DefaultMix)
	ZipfS    float64 // zipf skew for hot IPs and ASes, >1 (0: 1.2)

	// BatchSize > 0 groups the IP lookups (hot and cold) into POST
	// /v1/batch bodies of this size; Requests then counts batches, so
	// the lookup volume is Requests×weight×BatchSize.
	BatchSize int

	// Open-loop arrival schedule. Rate 0 disables pacing (every offset
	// 0: the driver applies maximum pressure). With Rate > 0, arrivals
	// are spaced 1/Rate apart, except inside burst phases — the first
	// BurstDur of every BurstPeriod — where the rate is multiplied by
	// BurstFactor.
	Rate        float64
	BurstFactor float64
	BurstPeriod time.Duration
	BurstDur    time.Duration
}

// Plan is a frozen workload trace.
type Plan struct {
	Seed     int64
	Requests []Request
	Lookups  int // total lookups across all requests (batch items counted)
}

// Hash names the trace: FNV-1a over every request's kind, method,
// path, body, and arrival offset. Two runs with the same seed and
// store produce the same hash — the determinism receipt the committed
// benchmark report carries.
func (p *Plan) Hash() string {
	h := fnv.New64a()
	var scratch [16]byte
	for i := range p.Requests {
		r := &p.Requests[i]
		h.Write([]byte{byte(r.Kind)})
		h.Write([]byte(r.Method))
		h.Write([]byte(r.Path))
		h.Write(r.Body)
		n := binaryPutInt64(scratch[:], int64(r.At))
		h.Write(scratch[:n])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func binaryPutInt64(dst []byte, v int64) int {
	for i := 0; i < 8; i++ {
		dst[i] = byte(v >> (8 * i))
	}
	return 8
}

// ByKind counts the planned requests per kind name — deterministic,
// straight from the trace.
func (p *Plan) ByKind() map[string]int {
	out := make(map[string]int)
	for i := range p.Requests {
		out[p.Requests[i].Kind.String()]++
	}
	return out
}

// population is everything BuildPlan derives from the store once.
type population struct {
	prefixes []netmodel.Prefix
	ases     []astopo.ASN
	hgNames  []string
	snaps    []string
}

// BuildPlan derives a deterministic workload trace from the store. It
// fails when a requested kind has an empty population (for example
// IPHot weight > 0 against a store with no prefix table) rather than
// silently skewing the mix.
func BuildPlan(st *footstore.Store, cfg PlanConfig) (*Plan, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("loadgen: Requests must be positive, got %d", cfg.Requests)
	}
	if cfg.Mix == (Mix{}) {
		cfg.Mix = DefaultMix()
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.2
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("loadgen: ZipfS must be > 1, got %g", cfg.ZipfS)
	}
	m := cfg.Mix
	for _, w := range []float64{m.IPHot, m.IPCold, m.AS, m.Footprint, m.Malformed} {
		if w < 0 {
			return nil, fmt.Errorf("loadgen: negative mix weight")
		}
	}
	total := m.IPHot + m.IPCold + m.AS + m.Footprint + m.Malformed
	if total <= 0 {
		return nil, fmt.Errorf("loadgen: mix has no positive weight")
	}

	pop := population{}
	st.WalkPrefixes(func(p netmodel.Prefix, _ []astopo.ASN) bool {
		pop.prefixes = append(pop.prefixes, p)
		return true
	})
	pop.ases = st.ASes()
	for _, id := range st.Hypergiants() {
		pop.hgNames = append(pop.hgNames, id.String())
	}
	for _, s := range st.Snapshots() {
		pop.snaps = append(pop.snaps, s.Label())
	}
	if m.IPHot > 0 && len(pop.prefixes) == 0 {
		return nil, fmt.Errorf("loadgen: hot-IP weight %g but the store has no prefix table", m.IPHot)
	}
	if m.AS > 0 && len(pop.ases) == 0 {
		return nil, fmt.Errorf("loadgen: AS weight %g but the store has no hosting ASes", m.AS)
	}
	if m.Footprint > 0 && len(pop.hgNames) == 0 {
		return nil, fmt.Errorf("loadgen: footprint weight %g but the store has no hypergiants", m.Footprint)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	var zipfPrefix, zipfAS *rand.Zipf
	if len(pop.prefixes) > 0 {
		zipfPrefix = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(pop.prefixes)-1))
	}
	if len(pop.ases) > 0 {
		zipfAS = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(pop.ases)-1))
	}

	sched := newSchedule(cfg)
	plan := &Plan{Seed: cfg.Seed, Requests: make([]Request, 0, cfg.Requests)}
	var batch []string // pending IP lookups awaiting a full batch body

	flushBatch := func() {
		if len(batch) == 0 {
			return
		}
		body, _ := json.Marshal(map[string][]string{"ips": batch})
		plan.Requests = append(plan.Requests, Request{
			Kind: KindBatch, Method: "POST", Path: "/v1/batch",
			Body: body, At: sched.next(), Items: len(batch),
		})
		plan.Lookups += len(batch)
		batch = batch[:0]
	}
	addIP := func(kind Kind, ip netmodel.IP) {
		if cfg.BatchSize > 0 {
			batch = append(batch, ip.String())
			if len(batch) >= cfg.BatchSize {
				flushBatch()
			}
			return
		}
		plan.Requests = append(plan.Requests, Request{
			Kind: kind, Method: "GET", Path: "/v1/ip/" + ip.String(),
			At: sched.next(), Items: 1,
		})
		plan.Lookups++
	}
	addGet := func(kind Kind, path string) {
		plan.Requests = append(plan.Requests, Request{
			Kind: kind, Method: "GET", Path: path, At: sched.next(), Items: 1,
		})
		plan.Lookups++
	}

	for len(plan.Requests) < cfg.Requests {
		switch k := pickKind(rng, m, total); k {
		case KindIPHot:
			p := pop.prefixes[zipfPrefix.Uint64()]
			addIP(k, ipWithin(rng, p))
		case KindIPCold:
			addIP(k, coldIP(rng))
		case KindAS:
			as := pop.ases[zipfAS.Uint64()]
			addGet(k, "/v1/as/"+strconv.FormatUint(uint64(as), 10))
		case KindFootprint:
			path := "/v1/hg/" + pop.hgNames[rng.Intn(len(pop.hgNames))] + "/footprint"
			if rng.Intn(2) == 0 && len(pop.snaps) > 0 {
				path += "?snapshot=" + pop.snaps[rng.Intn(len(pop.snaps))]
			}
			addGet(k, path)
		case KindMalformed:
			addGet(k, malformedPath(rng))
		}
	}
	flushBatch()
	// Grouping may overshoot Requests by the trailing flush; trim to
	// the exact count so Requests means what it says.
	if len(plan.Requests) > cfg.Requests {
		for _, r := range plan.Requests[cfg.Requests:] {
			plan.Lookups -= r.Items
		}
		plan.Requests = plan.Requests[:cfg.Requests]
	}
	return plan, nil
}

// pickKind draws one request kind by cumulative weight.
func pickKind(rng *rand.Rand, m Mix, total float64) Kind {
	x := rng.Float64() * total
	for _, c := range []struct {
		w float64
		k Kind
	}{
		{m.IPHot, KindIPHot},
		{m.IPCold, KindIPCold},
		{m.AS, KindAS},
		{m.Footprint, KindFootprint},
		{m.Malformed, KindMalformed},
	} {
		if x < c.w {
			return c.k
		}
		x -= c.w
	}
	return KindIPHot
}

// ipWithin draws an address inside p. Sampling is capped at a /16 worth
// of spread: hot traffic concentrates near prefix heads in practice,
// and the cap keeps the draw cheap for giant prefixes.
func ipWithin(rng *rand.Rand, p netmodel.Prefix) netmodel.IP {
	span := p.NumAddrs()
	if span > 1<<16 {
		span = 1 << 16
	}
	return p.First() + netmodel.IP(rng.Int63n(int64(span)))
}

// coldIP draws uniformly from the unicast v4 space (1.0.0.0 to
// 223.255.255.255) — almost always outside the store's prefix table,
// so these exercise the miss path.
func coldIP(rng *rand.Rand) netmodel.IP {
	lo, hi := uint32(0x01000000), uint32(0xDFFFFFFF)
	return netmodel.IP(lo + uint32(rng.Int63n(int64(hi-lo))))
}

// malformedPath rotates through realistic client mistakes; the rng
// picks the variant and fills in the garbage deterministically.
func malformedPath(rng *rand.Rand) string {
	switch rng.Intn(6) {
	case 0:
		return "/v1/ip/not-an-ip-" + strconv.Itoa(rng.Intn(1000))
	case 1:
		return "/v1/ip/999.999.999." + strconv.Itoa(rng.Intn(1000))
	case 2:
		return "/v1/as/0"
	case 3:
		return "/v1/as/banana" + strconv.Itoa(rng.Intn(1000))
	case 4:
		return "/v1/hg/nosuchhg" + strconv.Itoa(rng.Intn(1000)) + "/footprint"
	default:
		return "/v1/hg/google/footprint?snapshot=never-" + strconv.Itoa(rng.Intn(1000))
	}
}

// schedule paces open-loop arrivals: offsets advance by the reciprocal
// of the instantaneous rate, which is Rate×BurstFactor inside the
// first BurstDur of every BurstPeriod and Rate otherwise.
type schedule struct {
	rate, burstFactor     float64
	burstPeriod, burstDur time.Duration
	t                     time.Duration
}

func newSchedule(cfg PlanConfig) *schedule {
	s := &schedule{
		rate:        cfg.Rate,
		burstFactor: cfg.BurstFactor,
		burstPeriod: cfg.BurstPeriod,
		burstDur:    cfg.BurstDur,
	}
	if s.burstFactor <= 0 {
		s.burstFactor = 1
	}
	return s
}

func (s *schedule) next() time.Duration {
	if s.rate <= 0 {
		return 0
	}
	at := s.t
	r := s.rate
	if s.burstPeriod > 0 && s.burstDur > 0 && s.t%s.burstPeriod < s.burstDur {
		r *= s.burstFactor
	}
	s.t += time.Duration(float64(time.Second) / r)
	return at
}
