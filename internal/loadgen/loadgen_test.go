package loadgen

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"offnetscope/internal/astopo"
	"offnetscope/internal/footstore"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/obs"
	"offnetscope/internal/offnetserve"
	"offnetscope/internal/timeline"
)

// benchStore builds a small but non-trivial store: two hypergiants,
// three snapshots, and a handful of prefixes of mixed length so the
// zipf draw has a population to skew over.
func benchStore(tb testing.TB) *footstore.Store {
	tb.Helper()
	s1, _ := timeline.FromLabel("2020-10")
	s2, _ := timeline.FromLabel("2021-01")
	s3, _ := timeline.FromLabel("2021-04")
	b := footstore.NewBuilder()
	steps := []struct {
		s  timeline.Snapshot
		fp map[hg.ID][]astopo.ASN
	}{
		{s1, map[hg.ID][]astopo.ASN{hg.Google: {100, 200}}},
		{s2, map[hg.ID][]astopo.ASN{hg.Google: {200}, hg.Netflix: {300}}},
		{s3, map[hg.ID][]astopo.ASN{hg.Google: {100, 200}, hg.Netflix: {200, 300}}},
	}
	for _, step := range steps {
		if err := b.AddSnapshot(step.s, step.fp); err != nil {
			tb.Fatal(err)
		}
	}
	for _, p := range []struct {
		cidr string
		as   astopo.ASN
	}{
		{"10.1.0.0/16", 100},
		{"10.1.2.0/24", 200},
		{"10.9.0.0/20", 200},
		{"172.16.0.0/12", 300},
		{"192.168.4.0/22", 100},
	} {
		b.AddPrefix(netmodel.MustParsePrefix(p.cidr), []astopo.ASN{p.as})
	}
	st, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return st
}

// TestPlanDeterminism is the reproducibility contract: same store +
// same config = byte-identical trace and equal hash; a different seed
// moves the hash.
func TestPlanDeterminism(t *testing.T) {
	st := benchStore(t)
	cfg := PlanConfig{Seed: 42, Requests: 500, Rate: 100000, BurstFactor: 4,
		BurstPeriod: 50 * time.Millisecond, BurstDur: 10 * time.Millisecond}

	p1, err := BuildPlan(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := BuildPlan(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("two plans from the same seed differ")
	}
	if p1.Hash() != p2.Hash() {
		t.Fatalf("hash mismatch for identical plans: %s vs %s", p1.Hash(), p2.Hash())
	}

	cfg.Seed = 43
	p3, err := BuildPlan(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Hash() == p1.Hash() {
		t.Fatal("different seeds produced the same trace hash")
	}
}

// TestPlanShape checks the mix lands near its weights, every path is
// well-formed for its kind, and arrival offsets never go backwards.
func TestPlanShape(t *testing.T) {
	st := benchStore(t)
	const n = 4000
	p, err := BuildPlan(st, PlanConfig{Seed: 7, Requests: n, Rate: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Requests) != n {
		t.Fatalf("planned %d requests, want %d", len(p.Requests), n)
	}
	if p.Lookups != n {
		t.Fatalf("unbatched plan has %d lookups, want %d", p.Lookups, n)
	}

	byKind := p.ByKind()
	// DefaultMix: 70/10/10/5/5. With n=4000 a ±40% band is loose
	// enough to never flake yet tight enough to catch a broken picker.
	for kind, wantFrac := range map[string]float64{
		"ip_hot": 0.70, "ip_cold": 0.10, "as": 0.10, "footprint": 0.05, "malformed": 0.05,
	} {
		got := float64(byKind[kind]) / n
		if got < wantFrac*0.6 || got > wantFrac*1.4 {
			t.Errorf("kind %s frequency %.3f, want about %.2f", kind, got, wantFrac)
		}
	}

	var prev time.Duration
	hotPrefix := 0
	for i := range p.Requests {
		r := &p.Requests[i]
		if r.At < prev {
			t.Fatalf("request %d arrives at %v before its predecessor at %v", i, r.At, prev)
		}
		prev = r.At
		switch r.Kind {
		case KindIPHot:
			ip, err := netmodel.ParseIP(strings.TrimPrefix(r.Path, "/v1/ip/"))
			if err != nil {
				t.Fatalf("hot path %q does not carry a parseable IP: %v", r.Path, err)
			}
			if _, _, ok := st.LookupIP(ip); ok {
				hotPrefix++
			}
		case KindAS:
			if !strings.HasPrefix(r.Path, "/v1/as/") {
				t.Fatalf("as path %q", r.Path)
			}
		case KindFootprint:
			if !strings.HasPrefix(r.Path, "/v1/hg/") || !strings.Contains(r.Path, "/footprint") {
				t.Fatalf("footprint path %q", r.Path)
			}
		}
	}
	// Hot lookups are drawn from the store's own prefixes, so nearly
	// all of them must actually map (more-specifics can shadow, so not
	// necessarily 100%).
	if hot := byKind["ip_hot"]; hotPrefix < hot*9/10 {
		t.Errorf("only %d of %d hot IPs map in the store", hotPrefix, hot)
	}
}

// TestPlanBatching: with BatchSize set, IP lookups ride POST /v1/batch
// in bodies capped at the batch size, and Lookups counts the items.
func TestPlanBatching(t *testing.T) {
	st := benchStore(t)
	p, err := BuildPlan(st, PlanConfig{Seed: 11, Requests: 300, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	batches, items := 0, 0
	for i := range p.Requests {
		r := &p.Requests[i]
		if r.Kind != KindBatch {
			if strings.HasPrefix(r.Path, "/v1/ip/") && r.Kind != KindMalformed {
				t.Fatalf("unbatched IP lookup %q in a batching plan", r.Path)
			}
			items += r.Items
			continue
		}
		batches++
		items += r.Items
		if r.Method != "POST" || r.Path != "/v1/batch" {
			t.Fatalf("batch request %q %q", r.Method, r.Path)
		}
		if r.Items < 1 || r.Items > 16 {
			t.Fatalf("batch carries %d items, want 1..16", r.Items)
		}
	}
	if batches == 0 {
		t.Fatal("no batch requests planned")
	}
	if items != p.Lookups {
		t.Fatalf("summed items %d != plan.Lookups %d", items, p.Lookups)
	}
	if p.Lookups <= len(p.Requests) {
		t.Fatalf("batching should amortize: %d lookups over %d requests", p.Lookups, len(p.Requests))
	}
}

// TestScheduleBursts: inside a burst phase arrivals are BurstFactor
// times closer together than in the baseline phase.
func TestScheduleBursts(t *testing.T) {
	cfg := PlanConfig{Rate: 1000, BurstFactor: 5,
		BurstPeriod: 100 * time.Millisecond, BurstDur: 20 * time.Millisecond}
	s := newSchedule(cfg)
	var gaps []time.Duration
	prev := s.next()
	for i := 0; i < 200; i++ {
		cur := s.next()
		gaps = append(gaps, cur-prev)
		prev = cur
	}
	base := time.Second / 1000
	burst := base / 5
	var sawBase, sawBurst bool
	for _, g := range gaps {
		switch g {
		case base:
			sawBase = true
		case burst:
			sawBurst = true
		default:
			t.Fatalf("gap %v is neither the base %v nor the burst %v spacing", g, base, burst)
		}
	}
	if !sawBase || !sawBurst {
		t.Fatalf("schedule never alternated phases (base=%v burst=%v)", sawBase, sawBurst)
	}
}

// TestPlanRejectsBadConfig: empty populations and broken weights fail
// loudly instead of silently skewing the mix.
func TestPlanRejectsBadConfig(t *testing.T) {
	st := benchStore(t)
	for name, cfg := range map[string]PlanConfig{
		"zero requests":  {Seed: 1},
		"negative mix":   {Seed: 1, Requests: 10, Mix: Mix{IPHot: -1, IPCold: 1}},
		"no weight":      {Seed: 1, Requests: 10, Mix: Mix{}}, // zero Mix = DefaultMix, so force it
		"zipf too small": {Seed: 1, Requests: 10, ZipfS: 0.5},
	} {
		if name == "no weight" {
			continue // zero value means DefaultMix by design; covered below
		}
		if _, err := BuildPlan(st, cfg); err == nil {
			t.Errorf("%s: BuildPlan accepted a bad config", name)
		}
	}

	// A store with no prefixes cannot serve a hot-IP mix.
	b := footstore.NewBuilder()
	s3, _ := timeline.FromLabel("2021-04")
	if err := b.AddSnapshot(s3, map[hg.ID][]astopo.ASN{hg.Google: {100}}); err != nil {
		t.Fatal(err)
	}
	bare, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildPlan(bare, PlanConfig{Seed: 1, Requests: 10}); err == nil {
		t.Error("hot-IP mix against a prefixless store should fail")
	}
	// But a mix that avoids the empty population works.
	if _, err := BuildPlan(bare, PlanConfig{Seed: 1, Requests: 10,
		Mix: Mix{AS: 1, Footprint: 1}}); err != nil {
		t.Errorf("AS/footprint-only plan: %v", err)
	}
}

// TestDriveInProcess replays a full default-mix plan against the real
// offnetd handler stack: no 5xx, no transport errors, malformed
// requests land in 4xx, every accounted status sums back to the
// request count, and all 200s report generation 1.
func TestDriveInProcess(t *testing.T) {
	st := benchStore(t)
	srv := offnetserve.New(st, offnetserve.Config{Workers: 16, CacheSize: 256})
	plan, err := BuildPlan(st, PlanConfig{Seed: 3, Requests: 1500})
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry("loadgen-test")
	rep, err := Drive(context.Background(), plan, HandlerTarget{Handler: srv}, Options{
		Concurrency: 8,
		Registry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Transport != 0 || rep.Errors5xx != 0 {
		t.Fatalf("transport=%d errors5xx=%d, want 0/0\nreport: %+v", rep.Transport, rep.Errors5xx, rep)
	}
	total := 0
	for _, n := range rep.ByStatus {
		total += n
	}
	if total != len(plan.Requests) {
		t.Fatalf("statuses account for %d of %d requests", total, len(plan.Requests))
	}
	fourxx := rep.ByStatus["400"] + rep.ByStatus["404"]
	if malformed := rep.ByKind["malformed"]; fourxx < malformed {
		t.Errorf("%d malformed requests but only %d 4xx responses", malformed, fourxx)
	}
	if rep.ByStatus["200"] == 0 {
		t.Fatal("no 200s at all")
	}
	if len(rep.Generations) != 1 || rep.Generations["1"] == 0 {
		t.Errorf("generations = %v, want all on generation 1", rep.Generations)
	}
	if rep.QPS <= 0 || rep.DurationNs <= 0 {
		t.Errorf("degenerate timing: qps=%v duration=%d", rep.QPS, rep.DurationNs)
	}
	if rep.TraceHash != plan.Hash() {
		t.Errorf("report hash %s != plan hash %s", rep.TraceHash, plan.Hash())
	}
	// The driver's histogram lives on the caller's registry.
	if got := reg.Snapshot().Histograms["loadgen.latency"].Count; got != uint64(total) {
		t.Errorf("latency histogram observed %d, want %d", got, total)
	}
}

// TestDriveBatchPlan sends the batched variant through the server and
// cross-checks the server-side item counter against the plan.
func TestDriveBatchPlan(t *testing.T) {
	st := benchStore(t)
	srv := offnetserve.New(st, offnetserve.Config{Workers: 16})
	plan, err := BuildPlan(st, PlanConfig{Seed: 5, Requests: 200, BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Drive(context.Background(), plan, HandlerTarget{Handler: srv}, Options{Concurrency: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors5xx != 0 {
		t.Fatalf("5xx under batch plan: %+v", rep)
	}
	wantItems := int64(0)
	for i := range plan.Requests {
		if plan.Requests[i].Kind == KindBatch {
			wantItems += int64(plan.Requests[i].Items)
		}
	}
	snap := srv.Registry().Snapshot()
	if got := snap.Counter("http.batch_items"); got != wantItems {
		t.Errorf("server resolved %d batch items, plan carried %d", got, wantItems)
	}
}

func TestScanGeneration(t *testing.T) {
	for _, tc := range []struct {
		body string
		want uint64
		ok   bool
	}{
		{`{"generation": 7, "count": 2}`, 7, true},
		{`{"count":2,"generation":123}`, 123, true},
		{`{"count": 2}`, 0, false},
		{`{"generation": "nope"}`, 0, false},
	} {
		got, ok := scanGeneration([]byte(tc.body))
		if got != tc.want || ok != tc.ok {
			t.Errorf("scanGeneration(%s) = %d,%v want %d,%v", tc.body, got, ok, tc.want, tc.ok)
		}
	}
}
