package loadgen

import (
	"context"
	"fmt"
	"testing"
	"time"

	"offnetscope/internal/astopo"
	"offnetscope/internal/footstore"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/offnetserve"
	"offnetscope/internal/timeline"
)

// The serving benchmarks behind BENCH_offnetd.json: a zipfian
// default-mix workload of benchLookups lookups replayed through the
// production handler stack in-process (HandlerTarget — no socket, so
// the numbers are the engine, not the kernel's TCP stack). Run them
// with -benchtime=1x (`make bench-serve`): one iteration IS the whole
// workload, and ns/op is whole-run wall time. QPS and latency
// quantiles ride along as custom metrics for benchjson.

const (
	benchLookups      = 1_000_000
	benchLookupsShort = 20_000
)

func lookupsForRun() int {
	if testing.Short() {
		return benchLookupsShort
	}
	return benchLookups
}

// servingStore is the benchmark corpus: 4 hypergiants over 3
// snapshots and 2k prefixes spread over 32 hosting ASes — big enough
// that the zipf skew and the LRU matter, small and synthetic enough to
// build in milliseconds from nothing.
func servingStore(tb testing.TB) *footstore.Store {
	tb.Helper()
	s1, _ := timeline.FromLabel("2020-10")
	s2, _ := timeline.FromLabel("2021-01")
	s3, _ := timeline.FromLabel("2021-04")
	ases := make([]astopo.ASN, 32)
	for i := range ases {
		ases[i] = astopo.ASN(1000 + i)
	}
	b := footstore.NewBuilder()
	for _, step := range []struct {
		s    timeline.Snapshot
		take int // how many of the ASes each HG occupies at this snapshot
	}{{s1, 8}, {s2, 16}, {s3, 32}} {
		fp := map[hg.ID][]astopo.ASN{
			hg.Google:     ases[:step.take],
			hg.Netflix:    ases[:step.take/2],
			hg.Facebook:   ases[:step.take/4],
			hg.Cloudflare: ases[:step.take/8],
		}
		if err := b.AddSnapshot(step.s, fp); err != nil {
			tb.Fatal(err)
		}
	}
	// 2k disjoint /24s: 10.x.y.0/24 for x in 0..7, y in 0..249.
	n := 0
	for x := 0; x < 8 && n < 2000; x++ {
		for y := 0; y < 250 && n < 2000; y++ {
			p := netmodel.MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", x, y))
			b.AddPrefix(p, []astopo.ASN{ases[n%len(ases)]})
			n++
		}
	}
	st, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return st
}

type benchVariant struct {
	name      string
	cacheSize int
	batchSize int
	mix       Mix // zero value: DefaultMix
}

// ipOnlyMix isolates bulk IP→HG resolution — the workload POST
// /v1/batch exists for — so the batch and single-request variants
// resolve the same number of lookups through the same code path and
// differ only in how they are framed on the wire.
func ipOnlyMix() Mix { return Mix{IPHot: 0.9, IPCold: 0.1} }

func runServingBench(b *testing.B, v benchVariant) {
	st := servingStore(b)
	lookups := lookupsForRun()
	requests := lookups
	if v.batchSize > 0 {
		requests = lookups / v.batchSize
	}
	plan, err := BuildPlan(st, PlanConfig{Seed: 1, Requests: requests, Mix: v.mix, BatchSize: v.batchSize})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var last *Report
	for i := 0; i < b.N; i++ {
		// Production posture: per-request deadline and breaker armed, so
		// the committed numbers carry their hot-path overhead.
		srv := offnetserve.New(st, offnetserve.Config{
			Workers:        64,
			CacheSize:      v.cacheSize,
			RequestTimeout: 30 * time.Second,
		})
		rep, err := Drive(context.Background(), plan, HandlerTarget{Handler: srv}, Options{Concurrency: 32})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Errors5xx != 0 || rep.Transport != 0 {
			b.Fatalf("bench run saw errors: 5xx=%d transport=%d", rep.Errors5xx, rep.Transport)
		}
		last = rep
	}
	b.StopTimer()
	b.ReportMetric(last.QPS, "qps")
	b.ReportMetric(last.LookupsPerSec, "lookups/s")
	b.ReportMetric(float64(last.P50Ns), "p50_ns")
	b.ReportMetric(float64(last.P99Ns), "p99_ns")
	b.ReportMetric(float64(last.P999Ns), "p999_ns")
}

func BenchmarkServe1MZipfianCacheOn(b *testing.B) {
	runServingBench(b, benchVariant{name: "cache-on", cacheSize: 4096})
}

func BenchmarkServe1MZipfianCacheOff(b *testing.B) {
	runServingBench(b, benchVariant{name: "cache-off", cacheSize: 0})
}

func BenchmarkServe1MZipfianSingleIP(b *testing.B) {
	runServingBench(b, benchVariant{name: "single-ip", cacheSize: 0, mix: ipOnlyMix()})
}

func BenchmarkServe1MZipfianBatch256(b *testing.B) {
	runServingBench(b, benchVariant{name: "batch-256", cacheSize: 0, batchSize: 256, mix: ipOnlyMix()})
}
