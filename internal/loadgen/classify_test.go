package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"offnetscope/internal/chaos"
	"offnetscope/internal/obs"
	"offnetscope/internal/offnetserve"
)

// timeoutErr is a minimal net.Error for the interface-based branch.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "deadline reached" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

// TestClassifyTransport pins the error → bucket mapping, wrapped the
// way real transports wrap them (url.Error, os.SyscallError).
func TestClassifyTransport(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want string
	}{
		{"reset", &url.Error{Op: "Get", Err: os.NewSyscallError("read", syscall.ECONNRESET)}, "reset"},
		{"reset-wrapped", fmt.Errorf("chaos: injected reset: %w", syscall.ECONNRESET), "reset"},
		{"refused", &net.OpError{Op: "dial", Err: os.NewSyscallError("connect", syscall.ECONNREFUSED)}, "refused"},
		{"ctx-timeout", fmt.Errorf("doing request: %w", context.DeadlineExceeded), "timeout"},
		{"net-timeout", &url.Error{Op: "Get", Err: timeoutErr{}}, "timeout"},
		{"torn-body", io.ErrUnexpectedEOF, "eof"},
		{"eof", &url.Error{Op: "Get", Err: io.EOF}, "eof"},
		{"other", errors.New("flux capacitor misaligned"), "other"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := classifyTransport(tc.err); got != tc.want {
				t.Fatalf("classifyTransport(%v) = %q, want %q", tc.err, got, tc.want)
			}
		})
	}
}

// TestDriveClassifiesChaosFaults drives a real daemon through the
// chaos transport and checks the report splits the injected faults
// into the right buckets — resets as transport (not 5xx), torn bodies
// as eof, totals consistent.
func TestDriveClassifiesChaosFaults(t *testing.T) {
	st := benchStore(t)
	srv := offnetserve.New(st, offnetserve.Config{Workers: 16})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	plan, err := BuildPlan(st, PlanConfig{Seed: 11, Requests: 400})
	if err != nil {
		t.Fatal(err)
	}
	tr := chaos.NewTransport(nil, chaos.HTTPConfig{Seed: 11, ResetProb: 0.15, TruncateProb: 0.1})
	client := &http.Client{Transport: tr, Timeout: 10 * time.Second}
	reg := obs.NewRegistry("classify-test")
	rep, err := Drive(context.Background(), plan, client, Options{
		Concurrency: 8,
		BaseURL:     ts.URL,
		Registry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	counts := tr.Counts()
	if counts.Resets == 0 || counts.TruncatedBodies == 0 {
		t.Fatalf("chaos injected nothing at these rates: %+v", counts)
	}
	if got := rep.TransportByClass["reset"]; got != int(counts.Resets) {
		t.Errorf("reset bucket = %d, injected %d", got, counts.Resets)
	}
	if got := rep.TransportByClass["eof"]; got != int(counts.TruncatedBodies) {
		t.Errorf("eof bucket = %d, truncated %d", got, counts.TruncatedBodies)
	}
	sum := 0
	for _, n := range rep.TransportByClass {
		sum += n
	}
	if sum != rep.Transport {
		t.Errorf("buckets sum to %d, Transport = %d", sum, rep.Transport)
	}
	// Completed responses + transport failures must account for the
	// whole plan: nothing silently dropped.
	total := rep.Transport
	for _, n := range rep.ByStatus {
		total += n
	}
	if total != len(plan.Requests) {
		t.Errorf("accounted for %d of %d requests", total, len(plan.Requests))
	}
	// Per-class counters also land on the caller's registry.
	snap := reg.Snapshot()
	if got := snap.Counter("loadgen.transport.reset"); got != int64(counts.Resets) {
		t.Errorf("loadgen.transport.reset = %d, want %d", got, counts.Resets)
	}
}

// TestOnResponseReceivesHeaders: the hook sees response headers, which
// is how soak harnesses spot chaos markers.
func TestOnResponseReceivesHeaders(t *testing.T) {
	st := benchStore(t)
	srv := offnetserve.New(st, offnetserve.Config{CacheSize: 32})
	plan, err := BuildPlan(st, PlanConfig{Seed: 2, Requests: 50})
	if err != nil {
		t.Fatal(err)
	}
	var sawContentType atomic.Bool
	_, err = Drive(context.Background(), plan, HandlerTarget{Handler: srv}, Options{
		Concurrency: 4,
		OnResponse: func(req *Request, status int, header http.Header, body []byte) {
			if header.Get("Content-Type") == "application/json" {
				sawContentType.Store(true)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawContentType.Load() {
		t.Fatal("OnResponse never saw a Content-Type header")
	}
}
