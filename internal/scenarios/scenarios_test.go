package scenarios

import (
	"bytes"
	"context"
	"testing"

	"offnetscope/internal/timeline"
)

func TestFullGridShape(t *testing.T) {
	cells := FullGrid(1)
	if len(cells) < 24 {
		t.Fatalf("full grid has %d cells, the matrix promises ≥ 24", len(cells))
	}
	fams := Families(cells)
	if len(fams) < 4 {
		t.Fatalf("full grid covers %d families %v, the matrix promises ≥ 4", len(fams), fams)
	}
	if err := ValidateGrid(cells); err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Thresholds == (Thresholds{}) {
			t.Errorf("cell %q has no thresholds — an ungated cell can never fail", c.ID)
		}
	}
}

func TestSmokeGridValid(t *testing.T) {
	cells := SmokeGrid(1)
	if len(cells) < 5 {
		t.Fatalf("smoke grid has %d cells, want one per family", len(cells))
	}
	if err := ValidateGrid(cells); err != nil {
		t.Fatal(err)
	}
	// Every smoke cell must be affordable: the CI gate runs on every push.
	for _, c := range cells {
		if c.Config.Scale > smokeScale {
			t.Errorf("smoke cell %q at scale %g > %g — too slow for CI", c.ID, c.Config.Scale, smokeScale)
		}
	}
}

func TestGridByName(t *testing.T) {
	for _, name := range Grids() {
		if _, err := GridByName(name, 1); err != nil {
			t.Errorf("GridByName(%q): %v", name, err)
		}
	}
	if _, err := GridByName("nope", 1); err == nil {
		t.Error("GridByName accepted an unknown grid")
	}
}

func TestCellValidateRejects(t *testing.T) {
	base := SmokeGrid(1)[0]
	bad := []func(*Cell){
		func(c *Cell) { c.ID = "" },
		func(c *Cell) { c.Config.Scale = -1 },
		func(c *Cell) { c.Outages = []timeline.Snapshot{99} },
		func(c *Cell) { c.Damaged = []timeline.Snapshot{-1} },
		func(c *Cell) { c.ScoreSnapshots = []timeline.Snapshot{31} },
		func(c *Cell) { c.Thresholds.MinRecall = 101 },
		func(c *Cell) { c.Outages = timeline.All() },
	}
	for i, mutate := range bad {
		c := base
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad[%d]: Validate accepted %+v", i, c)
		}
	}
}

// TestSmokeGridPasses is the CI gate behind `make scenarios-smoke`: the
// reduced grid must run end to end with every cell inside its
// thresholds. Skipped under -short (it runs six full studies).
func TestSmokeGridPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six full studies; skipped under -short")
	}
	m, err := Run(context.Background(), "smoke", SmokeGrid(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Cells {
		if !c.Pass {
			t.Errorf("cell %s out of thresholds: %v (precision %.1f, recall %.1f, coverage %.1f)",
				c.ID, c.Failures, c.Precision, c.Recall, c.Coverage)
		}
	}
	if !m.Pass {
		t.Errorf("smoke matrix failed: %v", m.Failed)
	}
	// Outage cells must actually lose coverage — otherwise the schedule
	// never reached the runner.
	outage, ok := ByID(SmokeGrid(1), "outage/mid")
	if !ok {
		t.Fatal("smoke grid lost its outage cell")
	}
	for _, c := range m.Cells {
		if c.ID != outage.ID {
			continue
		}
		wantCov := 100 * float64(timeline.Count()-len(outage.Outages)) / float64(timeline.Count())
		if c.Coverage > wantCov+0.1 {
			t.Errorf("outage cell coverage %.1f%%, want ≤ %.1f%% (outages ignored?)", c.Coverage, wantCov)
		}
	}
}

// TestMatrixDeterminism pins the artifact contract: the same grid and
// seed must encode byte-identically at any Workers/Jobs/Shards
// setting. Two cells keep it affordable.
func TestMatrixDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four studies; skipped under -short")
	}
	grid := SmokeGrid(7)[:2]
	seq, err := Run(context.Background(), "det", grid, Options{Workers: 1, Jobs: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), "det", grid, Options{Workers: 4, Jobs: 2, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := seq.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("matrix differs across worker settings:\nsequential: %d bytes\nparallel:   %d bytes", len(a), len(b))
	}
}

func TestMatrixRoundTrip(t *testing.T) {
	m := &Matrix{Grid: "full", Seed: 1, Pass: false, Failed: []string{"hide/null-0.95"},
		Cells: []CellResult{{ID: "hide/null-0.95", Family: "hide", Precision: 81.25,
			Thresholds: Thresholds{MinPrecision: 80}, Failures: []string{"recall 1.0% < 2.0%"}}}}
	data, err := m.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeMatrix(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := back.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("matrix JSON does not round-trip")
	}
}
