package scenarios

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

// FuzzScenarioConfig hammers the grid generator with arbitrary knob
// values: every generated cell must clamp to a valid worldsim.Config
// (no NaN, no negative fractions), WithDefaults must stay idempotent,
// and a matrix built from the cells must round-trip through the
// canonical JSON encoding.
func FuzzScenarioConfig(f *testing.F) {
	f.Add(uint64(1), 0.01, 0.2, 0.95, 0.05, 3.0, 2000.0, 4, 7)
	f.Add(uint64(0), -1.0, 1.5, -0.5, 2.0, -3.0, -100.0, -5, 99)
	f.Add(uint64(math.MaxUint64), math.Inf(1), math.NaN(), 0.5, math.NaN(), math.Inf(-1), math.NaN(), 1000, -1000)
	f.Fuzz(func(t *testing.T, seed uint64, scale, v6, null, shared, boost, flash float64, outFrom, outTo int) {
		spec := GridSpec{
			Seed:           seed,
			BaseScale:      scale,
			Scales:         []float64{scale, scale * 2},
			V6Fracs:        []float64{v6},
			NullCertFracs:  []float64{null},
			SharedFracs:    []float64{shared},
			CustomerBoosts: []float64{boost},
			FlashPeaks:     []float64{flash},
			OutageEras:     [][2]int{{outFrom, outTo}},
		}
		cells := spec.Cells()
		if len(cells) == 0 {
			t.Fatal("spec produced no cells")
		}
		for _, c := range cells {
			if err := c.Config.Validate(); err != nil {
				t.Fatalf("cell %q: clamped config still invalid: %v", c.ID, err)
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("cell %q: invalid: %v", c.ID, err)
			}
			cfg := c.Config
			if math.IsNaN(cfg.Scale) || cfg.Scale < 0 ||
				math.IsNaN(cfg.IPv6OnlyASFrac) || cfg.IPv6OnlyASFrac < 0 ||
				math.IsNaN(cfg.SharedCertFrac) || cfg.SharedCertFrac < 0 ||
				math.IsNaN(cfg.CustomerCertBoost) || cfg.CustomerCertBoost < 0 ||
				math.IsNaN(cfg.Hide.NullDefaultCertFrac) || cfg.Hide.NullDefaultCertFrac < 0 {
				t.Fatalf("cell %q: NaN or negative fraction escaped clamping: %+v", c.ID, cfg)
			}
			once := cfg.WithDefaults()
			twice := once.WithDefaults()
			if !reflect.DeepEqual(once, twice) {
				t.Fatalf("cell %q: WithDefaults not idempotent: %+v vs %+v", c.ID, once, twice)
			}
		}

		// The matrix artifact must survive decode(encode(m)) bytewise.
		m := &Matrix{Grid: "fuzz", Seed: seed, Pass: true}
		for _, c := range cells {
			m.Cells = append(m.Cells, CellResult{
				ID: c.ID, Family: c.Family, Label: c.Label,
				Precision: 100, Recall: 100, Coverage: 100,
				Thresholds: c.Thresholds, Pass: true,
			})
		}
		data, err := m.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeMatrix(data)
		if err != nil {
			t.Fatalf("decoding own encoding: %v", err)
		}
		data2, err := back.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatal("matrix JSON did not round-trip bytewise")
		}
	})
}
