package scenarios

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// Matrix is the committed artifact of a grid run: every cell's scores
// and verdicts, in grid order. Encoding is canonical (sorted keys via
// struct order, three-decimal floats, trailing newline) so the same
// grid and seed produce the same bytes at any Workers/Jobs/Shards
// setting.
type Matrix struct {
	Grid  string       `json:"grid"`
	Seed  uint64       `json:"seed"`
	Cells []CellResult `json:"cells"`
	Pass  bool         `json:"pass"`
	// Failed lists the IDs of failing cells, sorted.
	Failed []string `json:"failed,omitempty"`
}

// EncodeJSON renders the canonical committed form.
func (m *Matrix) EncodeJSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return nil, fmt.Errorf("scenarios: encoding matrix: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeMatrix parses an encoded matrix back.
func DecodeMatrix(data []byte) (*Matrix, error) {
	var m Matrix
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("scenarios: decoding matrix: %w", err)
	}
	return &m, nil
}

// Markdown renders the matrix as the committed results table: one row
// per cell with its micro-averaged scores, thresholds, and verdict.
func (m *Matrix) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Scenario matrix — grid %q, seed %d\n\n", m.Grid, m.Seed)
	if m.Pass {
		fmt.Fprintf(&b, "**PASS** — all %d cells within thresholds.\n\n", len(m.Cells))
	} else {
		fmt.Fprintf(&b, "**FAIL** — %d of %d cells out of thresholds: %s\n\n",
			len(m.Failed), len(m.Cells), strings.Join(m.Failed, ", "))
	}
	b.WriteString("| cell | scenario | precision | recall | coverage | gates (P/R/C) | verdict |\n")
	b.WriteString("|---|---|---:|---:|---:|---|---|\n")
	for _, c := range m.Cells {
		verdict := "pass"
		if !c.Pass {
			verdict = "**FAIL**: " + strings.Join(c.Failures, "; ")
		}
		gates := fmt.Sprintf("≥%g / ≥%g / ≥%g", c.Thresholds.MinPrecision, c.Thresholds.MinRecall, c.Thresholds.MinCoverage)
		if c.Thresholds.MaxSpurious > 0 {
			gates += fmt.Sprintf(", ≤%d spurious", c.Thresholds.MaxSpurious)
		}
		fmt.Fprintf(&b, "| %s | %s | %.1f%% | %.1f%% | %.1f%% | %s | %s |\n",
			c.ID, c.Label, c.Precision, c.Recall, c.Coverage, gates, verdict)
	}
	b.WriteString("\nPrecision and recall are micro-averages pooled over every scored\n")
	b.WriteString("snapshot (flash cells also score at their flash peak); coverage is\n")
	b.WriteString("the share of the 31 study months with vendor data. Regenerate with\n")
	b.WriteString("`make scenarios`.\n")
	return b.String()
}
