// Package scenarios turns the world simulator into a fuzzer for the
// paper's methodology. It sweeps a grid of adversarial worldsim
// configurations — IPv6-only eyeball networks, §8 hide-and-seek evasion
// combinations, aggressive customer-certificate reuse, flash hypergiant
// expansion/retreat, vendor outages mid-study, and world-scale sweeps —
// runs the full §4 cert-match → §5 header-confirm inference on every
// cell, and scores each against the simulator's ground truth with
// per-cell pass thresholds. A methodology change that silently degrades
// precision, recall, or coverage on an adversarial world fails the
// matrix instead of shipping.
package scenarios

import (
	"fmt"
	"math"

	"offnetscope/internal/hg"
	"offnetscope/internal/timeline"
	"offnetscope/internal/worldsim"
)

// Thresholds are one cell's pass gates, applied to the micro-averaged
// score over every scored snapshot (percentages). Evasion cells gate
// mostly on precision — finding nothing is acceptable, inventing
// footprints is not.
type Thresholds struct {
	MinPrecision float64 `json:"min_precision"`
	MinRecall    float64 `json:"min_recall"`
	MinCoverage  float64 `json:"min_coverage"`
	// MaxSpurious bounds the absolute number of invented hosting ASes
	// (pooled inferred − correct); zero disables the gate. It replaces
	// the precision gate on total-evasion cells, where one spurious AS
	// out of one inferred reads as 0% precision without meaning it.
	MaxSpurious int `json:"max_spurious,omitempty"`
}

// Cell is one scenario in the matrix: a world configuration, the
// vendor-availability schedule, where to score, and what to demand.
type Cell struct {
	// ID is the stable "family/name" identifier cells are addressed by.
	ID string `json:"id"`
	// Family groups related cells (scale, v6, hide, certreuse, flash,
	// outage).
	Family string `json:"family"`
	// Label is the human description rendered into the matrix table.
	Label string `json:"label"`
	// Config is the world under test.
	Config worldsim.Config `json:"config"`
	// Outages lists study months the simulated vendor has no data for;
	// they flow through the runner's no-data path and reduce coverage.
	Outages []timeline.Snapshot `json:"outages,omitempty"`
	// Damaged lists study months whose reads fail permanently; the
	// runner's retry/drop isolation drops them (reduced coverage), the
	// same way offnetmap's tolerant reads drop a corrupt vendor-month.
	Damaged []timeline.Snapshot `json:"damaged,omitempty"`
	// ScoreSnapshots are extra snapshots to score besides the last
	// covered one — flash cells score at the flash peak.
	ScoreSnapshots []timeline.Snapshot `json:"score_snapshots,omitempty"`
	// Thresholds are the cell's pass gates.
	Thresholds Thresholds `json:"thresholds"`
}

// Validate rejects cells that cannot mean anything: invalid world
// configurations, out-of-window snapshots, or nonsense thresholds.
func (c Cell) Validate() error {
	if c.ID == "" || c.Family == "" {
		return fmt.Errorf("scenarios: cell %q needs an id and a family", c.ID)
	}
	if err := c.Config.Validate(); err != nil {
		return fmt.Errorf("scenarios: cell %q: %w", c.ID, err)
	}
	for _, s := range c.Outages {
		if !s.Valid() {
			return fmt.Errorf("scenarios: cell %q: outage snapshot %d outside the study window", c.ID, int(s))
		}
	}
	for _, s := range c.Damaged {
		if !s.Valid() {
			return fmt.Errorf("scenarios: cell %q: damaged snapshot %d outside the study window", c.ID, int(s))
		}
	}
	for _, s := range c.ScoreSnapshots {
		if !s.Valid() {
			return fmt.Errorf("scenarios: cell %q: score snapshot %d outside the study window", c.ID, int(s))
		}
	}
	if len(c.Outages)+len(c.Damaged) >= timeline.Count() {
		return fmt.Errorf("scenarios: cell %q: every study month is an outage", c.ID)
	}
	for _, th := range []struct {
		name string
		v    float64
	}{
		{"min_precision", c.Thresholds.MinPrecision},
		{"min_recall", c.Thresholds.MinRecall},
		{"min_coverage", c.Thresholds.MinCoverage},
	} {
		if math.IsNaN(th.v) || th.v < 0 || th.v > 100 {
			return fmt.Errorf("scenarios: cell %q: threshold %s = %v out of [0, 100]", c.ID, th.name, th.v)
		}
	}
	if c.Thresholds.MaxSpurious < 0 {
		return fmt.Errorf("scenarios: cell %q: max_spurious %d is negative", c.ID, c.Thresholds.MaxSpurious)
	}
	return nil
}

// GridSpec parameterizes grid generation. The curated FullGrid and
// SmokeGrid are built from fixed specs; the fuzz harness feeds it
// arbitrary values, which Cells clamps into the valid ranges so every
// generated cell passes Validate.
type GridSpec struct {
	Seed           uint64
	BaseScale      float64
	Scales         []float64
	V6Fracs        []float64
	NullCertFracs  []float64
	SharedFracs    []float64
	CustomerBoosts []float64
	FlashPeaks     []float64
	OutageEras     [][2]int
}

// clampFrac forces v into [0, hi], mapping NaN/negatives to 0.
func clampFrac(v, hi float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > hi {
		return hi
	}
	return v
}

// clampScale keeps world scales affordable and positive.
func clampScale(v float64) float64 {
	if math.IsNaN(v) || v < 0.002 {
		return 0.002
	}
	if v > 0.2 {
		return 0.2
	}
	return v
}

// clampSnap forces an int onto the study window.
func clampSnap(v int) timeline.Snapshot {
	if v < 0 {
		return 0
	}
	if v >= timeline.Count() {
		return timeline.Snapshot(timeline.Count() - 1)
	}
	return timeline.Snapshot(v)
}

// Cells expands the spec into one cell per listed knob value, clamping
// every value into its valid range first.
func (g GridSpec) Cells() []Cell {
	base := worldsim.Config{Seed: g.Seed, Scale: clampScale(g.BaseScale)}
	var out []Cell
	cell := func(family, name, label string, cfg worldsim.Config) Cell {
		return Cell{
			ID:     family + "/" + name,
			Family: family,
			Label:  label,
			Config: cfg,
		}
	}
	for _, sc := range g.Scales {
		sc = clampScale(sc)
		cfg := base
		cfg.Scale = sc
		out = append(out, cell("scale", fmt.Sprintf("%g", sc), fmt.Sprintf("world scale %g", sc), cfg))
	}
	for _, f := range g.V6Fracs {
		f = clampFrac(f, 0.95)
		cfg := base
		cfg.IPv6OnlyASFrac = f
		out = append(out, cell("v6", fmt.Sprintf("%g", f), fmt.Sprintf("%.0f%% of eyeball ASes IPv6-only", 100*f), cfg))
	}
	for _, f := range g.NullCertFracs {
		f = clampFrac(f, 1)
		cfg := base
		cfg.Hide = worldsim.HideAndSeek{NullDefaultCertFrac: f}
		out = append(out, cell("hide", fmt.Sprintf("null-%g", f), fmt.Sprintf("null default certs on %.0f%% of off-nets", 100*f), cfg))
	}
	for _, f := range g.SharedFracs {
		f = clampFrac(f, 1)
		cfg := base
		cfg.SharedCertFrac = f
		out = append(out, cell("certreuse", fmt.Sprintf("shared-%g", f), fmt.Sprintf("%.1f%% of background hosts share HG certs", 100*f), cfg))
	}
	for _, b := range g.CustomerBoosts {
		b = clampFrac(b, 100)
		cfg := base
		cfg.CustomerCertBoost = b
		out = append(out, cell("certreuse", fmt.Sprintf("cf-boost-%g", b), fmt.Sprintf("Cloudflare customer footprint ×%g", b), cfg))
	}
	for _, p := range g.FlashPeaks {
		p = clampFrac(p, 1e6)
		cfg := base
		cfg.Trajectories = map[hg.ID]worldsim.TrajectoryOverride{
			hg.Google: {FlashPeakASes: p, FlashAt: 20, FlashWidth: 5},
		}
		c := cell("flash", fmt.Sprintf("google-%g", p), fmt.Sprintf("Google flash expansion of %g paper ASes @ 2018-10", p), cfg)
		c.ScoreSnapshots = []timeline.Snapshot{20}
		out = append(out, c)
	}
	for _, era := range g.OutageEras {
		from, to := clampSnap(era[0]), clampSnap(era[1])
		if to < from {
			from, to = to, from
		}
		if int(to-from) >= timeline.Count()-1 {
			to = from // never wipe the whole study
		}
		c := cell("outage", fmt.Sprintf("%d-%d", int(from), int(to)),
			fmt.Sprintf("vendor outage %s..%s", from.Label(), to.Label()), base)
		for s := from; s <= to; s++ {
			c.Outages = append(c.Outages, s)
		}
		out = append(out, c)
	}
	return out
}

// fullBaseScale keeps a full-grid cell's study in the low seconds; the
// scale family sweeps above and below it.
const fullBaseScale = 0.01

// smokeScale is the reduced-grid scale CI can afford.
const smokeScale = 0.005

// FullGrid is the committed ≥24-cell matrix behind results/SCENARIOS.json:
// six families of adversarial worlds, every cell thresholded. seed
// drives every world; the committed artifact uses seed 1.
func FullGrid(seed uint64) []Cell {
	base := worldsim.Config{Seed: seed, Scale: fullBaseScale}
	mk := func(family, name, label string, cfg worldsim.Config, th Thresholds) Cell {
		return Cell{ID: family + "/" + name, Family: family, Label: label, Config: cfg, Thresholds: th}
	}
	healthy := Thresholds{MinPrecision: 90, MinRecall: 80, MinCoverage: 100}

	var cells []Cell

	// scale: the methodology must hold from toy worlds to the largest
	// affordable ones.
	for _, sc := range []float64{0.005, 0.0075, 0.01, 0.015, 0.02, 0.03} {
		cfg := base
		cfg.Scale = sc
		th := healthy
		if sc <= 0.005 {
			// A ~350-AS world quantizes recall hard; keep the gate honest
			// but looser.
			th.MinRecall = 70
		}
		cells = append(cells, mk("scale", fmt.Sprintf("%g", sc), fmt.Sprintf("world scale %g", sc), cfg, th))
	}

	// v6: IPv6-only eyeballs are invisible to the IPv4 corpus (§7); the
	// recall floor tracks the visible share with margin.
	for _, f := range []float64{0.05, 0.1, 0.2, 0.3, 0.4} {
		cfg := base
		cfg.IPv6OnlyASFrac = f
		th := Thresholds{MinPrecision: 90, MinRecall: (1 - f) * 65, MinCoverage: 100}
		cells = append(cells, mk("v6", fmt.Sprintf("%g", f), fmt.Sprintf("%.0f%% of eyeball ASes IPv6-only", 100*f), cfg, th))
	}

	// hide: §8 evasion. Recall is allowed to collapse; precision of
	// whatever survives must not.
	hideCells := []struct {
		name, label string
		hide        worldsim.HideAndSeek
		th          Thresholds
	}{
		{"null-0.5", "null default certs on 50% of off-nets",
			worldsim.HideAndSeek{NullDefaultCertFrac: 0.5},
			Thresholds{MinPrecision: 85, MinRecall: 25, MinCoverage: 100}},
		{"null-0.95", "null default certs on 95% of off-nets",
			worldsim.HideAndSeek{NullDefaultCertFrac: 0.95},
			Thresholds{MinPrecision: 80, MinCoverage: 100}},
		{"strip-org", "Subject Organization stripped from off-net certs",
			worldsim.HideAndSeek{StripOrganization: true},
			Thresholds{MaxSpurious: 3, MinCoverage: 100}},
		{"anon-headers", "identifying debug headers stripped",
			worldsim.HideAndSeek{AnonymizeHeaders: true},
			Thresholds{MinPrecision: 80, MinCoverage: 100}},
		{"strip+anon", "stripped Organization and anonymized headers",
			worldsim.HideAndSeek{StripOrganization: true, AnonymizeHeaders: true},
			Thresholds{MaxSpurious: 3, MinCoverage: 100}},
		{"full-evasion", "null certs + stripped Organization + anonymized headers",
			worldsim.HideAndSeek{NullDefaultCertFrac: 0.95, StripOrganization: true, AnonymizeHeaders: true},
			Thresholds{MaxSpurious: 3, MinCoverage: 100}},
	}
	for _, hc := range hideCells {
		cfg := base
		cfg.Hide = hc.hide
		cells = append(cells, mk("hide", hc.name, hc.label, cfg, hc.th))
	}

	// certreuse: aggressive customer-certificate reuse attacks the
	// §4.3/§7 filters — precision must survive a corpus full of shared
	// and customer certificates.
	reuse := []struct {
		name, label  string
		shared       float64
		customerMult float64
	}{
		{"shared-0.02", "2% of background hosts share HG certs", 0.02, 0},
		{"shared-0.05", "5% of background hosts share HG certs", 0.05, 0},
		{"shared-0.1", "10% of background hosts share HG certs", 0.1, 0},
		{"cf-boost-3", "Cloudflare customer footprint ×3", 0, 3},
		{"cf-boost-6", "Cloudflare customer footprint ×6", 0, 6},
		{"shared+boost", "5% shared certs and Cloudflare ×3", 0.05, 3},
	}
	for _, rc := range reuse {
		cfg := base
		cfg.SharedCertFrac = rc.shared
		cfg.CustomerCertBoost = rc.customerMult
		cells = append(cells, mk("certreuse", rc.name, rc.label, cfg, healthy))
	}

	// flash: trajectory overrides — sudden expansion, deep retreat, and
	// surges must be tracked snapshot by snapshot, not just at the end.
	flash := []struct {
		name, label string
		traj        map[hg.ID]worldsim.TrajectoryOverride
		scoreAt     []timeline.Snapshot
		th          Thresholds
	}{
		{"google-flash", "Google flash expansion +2000 ASes @ 2018-10",
			map[hg.ID]worldsim.TrajectoryOverride{hg.Google: {FlashPeakASes: 2000, FlashAt: 20, FlashWidth: 5}},
			[]timeline.Snapshot{20}, healthy},
		{"netflix-retreat", "Netflix off-net footprint shrunk to 30%",
			map[hg.ID]worldsim.TrajectoryOverride{hg.Netflix: {OffNetScale: 0.3}},
			nil, healthy},
		{"akamai-surge", "Akamai off-net footprint grown 2.5×",
			map[hg.ID]worldsim.TrajectoryOverride{hg.Akamai: {OffNetScale: 2.5}},
			nil, healthy},
		{"fb-flash-retreat", "Facebook halved with a +1500 AS flash @ 2019-10",
			map[hg.ID]worldsim.TrajectoryOverride{hg.Facebook: {OffNetScale: 0.5, FlashPeakASes: 1500, FlashAt: 24, FlashWidth: 4}},
			[]timeline.Snapshot{24}, healthy},
		{"twitter-flash", "Twitter flash expansion +300 ASes @ 2020-10",
			map[hg.ID]worldsim.TrajectoryOverride{hg.Twitter: {FlashPeakASes: 300, FlashAt: 28, FlashWidth: 3}},
			[]timeline.Snapshot{28}, healthy},
	}
	for _, fc := range flash {
		cfg := base
		cfg.Trajectories = fc.traj
		c := mk("flash", fc.name, fc.label, cfg, fc.th)
		c.ScoreSnapshots = fc.scoreAt
		cells = append(cells, c)
	}

	// outage: vendor-months vanish mid-study; the runner must degrade
	// to reduced coverage, never to wrong footprints.
	outages := []struct {
		name, label    string
		out, damaged   [2]int
		hasOut, hasDmg bool
		th             Thresholds
	}{
		{"early", "vendor dark 2014-10..2015-07", [2]int{4, 7}, [2]int{}, true, false,
			Thresholds{MinPrecision: 90, MinRecall: 80, MinCoverage: 87}},
		{"mid", "vendor dark 2017-04..2018-04", [2]int{14, 18}, [2]int{}, true, false,
			Thresholds{MinPrecision: 90, MinRecall: 80, MinCoverage: 83}},
		{"late", "vendor dark 2020-07..2021-04", [2]int{27, 30}, [2]int{}, true, false,
			Thresholds{MinPrecision: 90, MinRecall: 80, MinCoverage: 87}},
		{"damaged-mid", "four vendor-months unreadable 2016-04..2017-01", [2]int{}, [2]int{10, 13}, false, true,
			Thresholds{MinPrecision: 90, MinRecall: 80, MinCoverage: 87}},
	}
	for _, oc := range outages {
		c := mk("outage", oc.name, oc.label, base, oc.th)
		if oc.hasOut {
			for s := oc.out[0]; s <= oc.out[1]; s++ {
				c.Outages = append(c.Outages, timeline.Snapshot(s))
			}
		}
		if oc.hasDmg {
			for s := oc.damaged[0]; s <= oc.damaged[1]; s++ {
				c.Damaged = append(c.Damaged, timeline.Snapshot(s))
			}
		}
		cells = append(cells, c)
	}

	return cells
}

// SmokeGrid is the reduced grid `make scenarios-smoke` runs in CI: one
// representative cell per family at a scale small enough for seconds,
// with thresholds loosened for the quantization of ~350-AS worlds.
func SmokeGrid(seed uint64) []Cell {
	base := worldsim.Config{Seed: seed, Scale: smokeScale}
	mk := func(family, name, label string, cfg worldsim.Config, th Thresholds) Cell {
		return Cell{ID: family + "/" + name, Family: family, Label: label, Config: cfg, Thresholds: th}
	}
	healthy := Thresholds{MinPrecision: 85, MinRecall: 65, MinCoverage: 100}

	v6 := base
	v6.IPv6OnlyASFrac = 0.2
	hide := base
	hide.Hide = worldsim.HideAndSeek{NullDefaultCertFrac: 0.95}
	reuse := base
	reuse.SharedCertFrac = 0.05
	flash := base
	flash.Trajectories = map[hg.ID]worldsim.TrajectoryOverride{hg.Netflix: {OffNetScale: 0.3}}

	cells := []Cell{
		mk("scale", "base", fmt.Sprintf("world scale %g", smokeScale), base, healthy),
		mk("v6", "0.2", "20% of eyeball ASes IPv6-only", v6,
			Thresholds{MinPrecision: 85, MinRecall: 45, MinCoverage: 100}),
		mk("hide", "null-0.95", "null default certs on 95% of off-nets", hide,
			Thresholds{MinPrecision: 75, MinCoverage: 100}),
		mk("certreuse", "shared-0.05", "5% of background hosts share HG certs", reuse, healthy),
		mk("flash", "netflix-retreat", "Netflix off-net footprint shrunk to 30%", flash, healthy),
	}
	outage := mk("outage", "mid", "vendor dark 2017-04..2018-04", base,
		Thresholds{MinPrecision: 85, MinRecall: 65, MinCoverage: 83})
	for s := 14; s <= 18; s++ {
		outage.Outages = append(outage.Outages, timeline.Snapshot(s))
	}
	return append(cells, outage)
}

// Grids names the curated grids for CLI selection.
func Grids() []string { return []string{"full", "smoke"} }

// GridByName resolves a curated grid.
func GridByName(name string, seed uint64) ([]Cell, error) {
	switch name {
	case "full":
		return FullGrid(seed), nil
	case "smoke":
		return SmokeGrid(seed), nil
	}
	return nil, fmt.Errorf("scenarios: unknown grid %q (have: full, smoke)", name)
}

// Families lists the distinct families of a grid, in first-seen order.
func Families(cells []Cell) []string {
	seen := make(map[string]bool)
	var out []string
	for _, c := range cells {
		if !seen[c.Family] {
			seen[c.Family] = true
			out = append(out, c.Family)
		}
	}
	return out
}

// ByID finds one cell in a grid.
func ByID(cells []Cell, id string) (Cell, bool) {
	for _, c := range cells {
		if c.ID == id {
			return c, true
		}
	}
	return Cell{}, false
}

// ValidateGrid checks every cell and demands unique IDs.
func ValidateGrid(cells []Cell) error {
	seen := make(map[string]bool, len(cells))
	for _, c := range cells {
		if err := c.Validate(); err != nil {
			return err
		}
		if seen[c.ID] {
			return fmt.Errorf("scenarios: duplicate cell id %q", c.ID)
		}
		seen[c.ID] = true
	}
	return nil
}
