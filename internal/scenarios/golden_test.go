package scenarios

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The golden cell pins one scenario end to end — world build, outage
// schedule, full inference, scoring, threshold verdict, and the
// canonical JSON encoding — against a checked-in artifact. Any
// methodology or encoding change shows up as a readable diff:
//
//	go test ./internal/scenarios -run TestGoldenCell -update
var updateGolden = flag.Bool("update", false, "rewrite the golden files instead of comparing")

const goldenPath = "testdata/golden/cell_outage_mid.json"

// goldenCell is the pinned scenario: the smoke grid's outage cell,
// which exercises the no-data path, coverage accounting, and scoring
// in one run.
func goldenCell() Cell {
	c, ok := ByID(SmokeGrid(1), "outage/mid")
	if !ok {
		panic("smoke grid lost its outage/mid cell")
	}
	return c
}

func TestGoldenCell(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full seeded study")
	}
	m, err := Run(context.Background(), "golden", []Cell{goldenCell()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("golden cell diverges from %s (rerun with -update if intentional)\n--- got ---\n%s\n--- want ---\n%s",
			goldenPath, got, want)
	}
}
