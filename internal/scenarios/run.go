package scenarios

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"offnetscope/internal/analysis"
	"offnetscope/internal/core"
	"offnetscope/internal/corpus"
	"offnetscope/internal/resilience"
	"offnetscope/internal/scanners"
	"offnetscope/internal/timeline"
	"offnetscope/internal/worldsim"
)

// Options tunes matrix execution. All three knobs are pure execution
// levers: the matrix is byte-identical at any setting.
type Options struct {
	// Workers bounds how many cells run concurrently; zero or one means
	// sequential.
	Workers int
	// Jobs is forwarded to core.StudyConfig.Jobs inside each cell
	// (per-snapshot inference workers).
	Jobs int
	// Shards is forwarded to core.Pipeline.Shards inside each cell
	// (intra-snapshot record sharding).
	Shards int
	// Progress, when non-nil, is called as each cell finishes (from the
	// collecting goroutine, serialized).
	Progress func(CellResult)
}

// SnapshotScore is the scored accuracy of one cell at one snapshot.
type SnapshotScore struct {
	Snapshot  string             `json:"snapshot"`
	Precision float64            `json:"precision"`
	Recall    float64            `json:"recall"`
	Rows      []analysis.HGScore `json:"per_hg,omitempty"`
}

// CellResult is one scenario cell's outcome: the micro-averaged
// accuracy over every scored snapshot, the per-snapshot breakdowns,
// and the threshold verdict.
type CellResult struct {
	ID     string `json:"id"`
	Family string `json:"family"`
	Label  string `json:"label"`

	// Precision/Recall are the micro-averages pooled over every scored
	// snapshot; Coverage is the share of study months with data.
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	Coverage  float64 `json:"coverage"`

	// Scores carries the per-snapshot detail (the last covered snapshot
	// first, then any extra ScoreSnapshots in order).
	Scores []SnapshotScore `json:"scores"`

	Thresholds Thresholds `json:"thresholds"`
	Pass       bool       `json:"pass"`
	// Failures names every violated threshold, empty when Pass.
	Failures []string `json:"failures,omitempty"`
}

// round3 pins floats to three decimals so the committed artifact never
// wobbles in the last ulp.
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// snapshotSet builds a membership set from a snapshot list.
func snapshotSet(ss []timeline.Snapshot) map[timeline.Snapshot]bool {
	if len(ss) == 0 {
		return nil
	}
	out := make(map[timeline.Snapshot]bool, len(ss))
	for _, s := range ss {
		out[s] = true
	}
	return out
}

// RunCell executes one scenario end to end: build the cell's world,
// run the full longitudinal inference over the simulated Rapid7
// corpus (honoring the cell's outage and damage schedule through the
// runner's no-data and retry/drop paths), score against ground truth,
// and apply the thresholds.
func RunCell(ctx context.Context, c Cell, opts Options) (CellResult, error) {
	if err := c.Validate(); err != nil {
		return CellResult{}, err
	}
	w, err := worldsim.New(c.Config)
	if err != nil {
		return CellResult{}, fmt.Errorf("scenarios: cell %q: %w", c.ID, err)
	}
	p := &core.Pipeline{
		Trust:  w.TrustStore(),
		Orgs:   w.Orgs(),
		Mapper: func(s timeline.Snapshot) core.IPMapper { return w.IP2AS(s) },
		Opts:   core.DefaultOptions(),
		Shards: opts.Shards,
	}
	profile := scanners.Rapid7Profile()
	outages := snapshotSet(c.Outages)
	damaged := snapshotSet(c.Damaged)
	source := func(_ context.Context, s timeline.Snapshot) (*corpus.Snapshot, error) {
		if outages[s] {
			return nil, nil // vendor has no data this month
		}
		if damaged[s] {
			return nil, resilience.Permanent(fmt.Errorf("scenarios: %s: simulated unreadable vendor month", s.Label()))
		}
		return scanners.Scan(w, profile, s), nil
	}
	sr, err := p.RunStudyConfig(ctx, source, core.StudyConfig{Jobs: opts.Jobs})
	if err != nil {
		return CellResult{}, fmt.Errorf("scenarios: cell %q: %w", c.ID, err)
	}

	primary := analysis.ScoreStudy(w, sr)
	scored := []*analysis.ScoreResult{primary}
	for _, s := range c.ScoreSnapshots {
		if s == primary.Snapshot {
			continue
		}
		scored = append(scored, analysis.ScoreStudyAt(w, sr, s))
	}

	out := CellResult{
		ID:         c.ID,
		Family:     c.Family,
		Label:      c.Label,
		Coverage:   round3(primary.Coverage),
		Thresholds: c.Thresholds,
	}
	// Pool the micro-average across every scored snapshot so a flash
	// cell is judged at its peak and at the end of the study together.
	var truth, inferred, both int
	for _, sc := range scored {
		prec, rec := sc.MicroAverage()
		out.Scores = append(out.Scores, SnapshotScore{
			Snapshot:  sc.Snapshot.Label(),
			Precision: round3(prec),
			Recall:    round3(rec),
			Rows:      sc.Rows,
		})
		for _, row := range sc.Rows {
			truth += row.Truth
			inferred += row.Inferred
			both += row.Both
		}
	}
	out.Precision, out.Recall = 100, 100
	if inferred > 0 {
		out.Precision = round3(100 * float64(both) / float64(inferred))
	}
	if truth > 0 {
		out.Recall = round3(100 * float64(both) / float64(truth))
	}

	if out.Precision < c.Thresholds.MinPrecision {
		out.Failures = append(out.Failures,
			fmt.Sprintf("precision %.1f%% < %.1f%%", out.Precision, c.Thresholds.MinPrecision))
	}
	if out.Recall < c.Thresholds.MinRecall {
		out.Failures = append(out.Failures,
			fmt.Sprintf("recall %.1f%% < %.1f%%", out.Recall, c.Thresholds.MinRecall))
	}
	if out.Coverage < c.Thresholds.MinCoverage {
		out.Failures = append(out.Failures,
			fmt.Sprintf("coverage %.1f%% < %.1f%%", out.Coverage, c.Thresholds.MinCoverage))
	}
	if max := c.Thresholds.MaxSpurious; max > 0 && inferred-both > max {
		out.Failures = append(out.Failures,
			fmt.Sprintf("spurious ASes %d > %d", inferred-both, max))
	}
	out.Pass = len(out.Failures) == 0
	return out, nil
}

// Run executes every cell of a grid on a bounded pool of Workers and
// assembles the Matrix. Results land in grid order regardless of
// worker count, so the encoded matrix is byte-identical at any
// Workers/Jobs/Shards setting.
func Run(ctx context.Context, grid string, cells []Cell, opts Options) (*Matrix, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("scenarios: empty grid")
	}
	if err := ValidateGrid(cells); err != nil {
		return nil, err
	}
	results := make([]CellResult, len(cells))
	errs := make([]error, len(cells))

	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	work := make(chan int)
	done := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				results[idx], errs[idx] = RunCell(ctx, cells[idx], opts)
				select {
				case done <- idx:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(work)
		for i := range cells {
			select {
			case work <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(done)
	}()
	finished := 0
	for idx := range done {
		finished++
		if opts.Progress != nil && errs[idx] == nil {
			opts.Progress(results[idx])
		}
	}
	if err := ctx.Err(); err != nil && finished < len(cells) {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("scenarios: cell %q failed: %w", cells[i].ID, err)
		}
	}

	m := &Matrix{
		Grid:  grid,
		Seed:  cells[0].Config.Seed,
		Cells: results,
		Pass:  true,
	}
	for _, r := range results {
		if !r.Pass {
			m.Pass = false
			m.Failed = append(m.Failed, r.ID)
		}
	}
	sort.Strings(m.Failed)
	return m, nil
}
