// Package obs is the repo's dependency-free observability core: atomic
// counters, gauges, and fixed log-scale histograms grouped into named
// registries that snapshot to deterministic JSON.
//
// The package exists so the inference funnel (§3–§4 of the paper) is
// measurable at every stage — certs seen, HG-cert matches, header
// confirmations, off-net attributions, drops by reason — without
// pulling a metrics dependency into the hot path. Design rules:
//
//   - Writers never take a lock. Counter/Gauge/Histogram updates are
//     single atomic operations; Registry lookups take a mutex, so hot
//     paths resolve their metrics once and hold the pointer.
//   - Counts are never lost. Concurrent Add calls all land; the only
//     documented relaxation is that a Snapshot taken while writers are
//     active may observe different metrics at slightly different
//     instants (each individual value is still atomically consistent).
//   - Counters are deterministic for a deterministic workload: addition
//     commutes, so funnel totals are byte-identical across runs and
//     across worker counts. Histograms measure wall time and are
//     explicitly excluded from that guarantee (their observation
//     *counts* are deterministic, their sums and buckets are not).
//   - Snapshots marshal to deterministic JSON (sorted keys, sorted
//     buckets, zero buckets omitted) so golden tests can compare them
//     byte-for-byte, and merge commutatively so sharded registries can
//     be combined.
//
// A nil *Registry is valid everywhere and discards all updates, so
// instrumented packages need no "is observability on" branches.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is allowed but not meaningful for funnels).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, open files).
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// numBuckets covers every int64: bucket 0 holds v <= 0, bucket i holds
// values with bit length i, i.e. [2^(i-1), 2^i).
const numBuckets = 65

// Histogram is a fixed log2-bucket histogram on atomics: bucket
// boundaries are powers of two, so any nonneg int64 (latencies in
// nanoseconds, sizes in bytes) lands in one of 65 buckets with two
// instructions and no float math.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	buckets [numBuckets]atomic.Uint64
}

// bucketIndex maps a value to its bucket: 0 for v <= 0, else the bit
// length of v (so bucket i spans [2^(i-1), 2^i)).
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketBounds returns the half-open value range [lo, hi) of bucket
// pow; bucket 0 is (-inf, 1) by convention.
func BucketBounds(pow int) (lo, hi int64) {
	if pow <= 0 {
		return 0, 1
	}
	return 1 << (pow - 1), 1 << pow
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// Since records the elapsed wall time (in nanoseconds) since start —
// the idiomatic stage timer: defer reg.Histogram("x_ns").Since(start).
func (h *Histogram) Since(start time.Time) { h.Observe(int64(time.Since(start))) }

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Registry is a named collection of metrics, created on first use.
// Lookups are mutex-guarded get-or-create; all updates on the returned
// metric are lock-free. A nil *Registry is valid: it hands out shared
// discard metrics whose values are never read.
type Registry struct {
	name string

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// nop holds the discard metrics a nil registry hands out. They absorb
// writes from every uninstrumented caller at once, which is safe
// because nothing ever reads them.
var nop struct {
	c Counter
	g Gauge
	h Histogram
}

// NewRegistry returns an empty registry with the given report name.
func NewRegistry(name string) *Registry {
	return &Registry{
		name:     name,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Name returns the registry's report name ("" for nil).
func (r *Registry) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// Counter returns the named counter, creating it at zero on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &nop.c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &nop.g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it empty on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return &nop.h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Bucket is one non-empty histogram bucket: N values whose bucketIndex
// is Pow (i.e. values in [2^(Pow-1), 2^Pow); Pow 0 holds v <= 0).
type Bucket struct {
	Pow int    `json:"pow"`
	N   uint64 `json:"n"`
}

// HistogramSnapshot is a histogram frozen for reporting: total count,
// value sum, and the non-empty buckets in ascending Pow order.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the mean observed value (0 when empty).
func (h HistogramSnapshot) Mean() int64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / int64(h.Count)
}

// Quantile returns an upper bound on the q-quantile of the observed
// values: the inclusive upper edge (2^pow - 1) of the first bucket at
// which the cumulative count reaches ceil(q·Count). Log2 buckets bound
// the estimate within 2× of the true value, which is the right
// resolution for serving-latency percentiles (p50/p99/p999) without
// storing samples. q is clamped to [0, 1]; an empty histogram reports 0.
func (h HistogramSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.N
		if cum >= rank {
			if b.Pow <= 0 {
				return 0
			}
			if b.Pow >= 63 {
				return math.MaxInt64
			}
			return (int64(1) << b.Pow) - 1
		}
	}
	return 0
}

// Snapshot is a registry frozen at one instant. It marshals to
// deterministic JSON: encoding/json sorts map keys, buckets are sorted
// by Pow, and empty sections are omitted.
type Snapshot struct {
	Name       string                       `json:"name,omitempty"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current values. Taken while writers
// are active it is a consistent-per-metric view: each value is read
// atomically, but two metrics may be read a few instructions apart.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{Name: r.name}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
			for pow := 0; pow < numBuckets; pow++ {
				if n := h.buckets[pow].Load(); n > 0 {
					hs.Buckets = append(hs.Buckets, Bucket{Pow: pow, N: n})
				}
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// Counter returns a snapshot counter's value (0 when absent) — the
// accessor golden tests and report renderers use.
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Merge combines two snapshots additively: counters, gauges, histogram
// counts, sums, and buckets all add. Merge is commutative and
// associative, so per-worker or per-shard registries can be combined in
// any order. Gauges add too — merging is for disjoint shards, where a
// summed gauge (total queue depth across shards) is the useful reading.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{Name: s.Name}
	if out.Name == "" {
		out.Name = o.Name
	}
	out.Counters = mergeInts(s.Counters, o.Counters)
	out.Gauges = mergeInts(s.Gauges, o.Gauges)
	if len(s.Histograms) > 0 || len(o.Histograms) > 0 {
		out.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms)+len(o.Histograms))
		for name, h := range s.Histograms {
			out.Histograms[name] = h
		}
		for name, h := range o.Histograms {
			out.Histograms[name] = mergeHists(out.Histograms[name], h)
		}
	}
	return out
}

func mergeInts(a, b map[string]int64) map[string]int64 {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make(map[string]int64, len(a)+len(b))
	for name, v := range a {
		out[name] = v
	}
	for name, v := range b {
		out[name] += v
	}
	return out
}

func mergeHists(a, b HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Count: a.Count + b.Count, Sum: a.Sum + b.Sum}
	byPow := make(map[int]uint64, len(a.Buckets)+len(b.Buckets))
	for _, bk := range a.Buckets {
		byPow[bk.Pow] += bk.N
	}
	for _, bk := range b.Buckets {
		byPow[bk.Pow] += bk.N
	}
	for pow, n := range byPow {
		out.Buckets = append(out.Buckets, Bucket{Pow: pow, N: n})
	}
	sort.Slice(out.Buckets, func(i, j int) bool { return out.Buckets[i].Pow < out.Buckets[j].Pow })
	return out
}

// WriteJSON writes the snapshot as indented, deterministically ordered
// JSON followed by a newline.
func (s Snapshot) WriteJSON(w io.Writer) error {
	raw, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	raw = append(raw, '\n')
	_, err = w.Write(raw)
	return err
}

// ParseSnapshot decodes a snapshot previously produced by WriteJSON (or
// plain json.Marshal). It normalizes the bucket order so that a parsed
// snapshot re-marshals byte-identically.
func ParseSnapshot(raw []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: parsing snapshot: %w", err)
	}
	for name, h := range s.Histograms {
		sort.Slice(h.Buckets, func(i, j int) bool { return h.Buckets[i].Pow < h.Buckets[j].Pow })
		s.Histograms[name] = h
	}
	return s, nil
}
