package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry("t")
	c := r.Counter("a")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("a") != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("q")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	if r.Name() != "t" {
		t.Fatalf("Name = %q", r.Name())
	}
}

func TestNilRegistryDiscards(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(5)
	r.Gauge("y").Set(5)
	r.Histogram("z").Observe(5)
	r.Histogram("z").Since(time.Now())
	if r.Name() != "" {
		t.Fatal("nil registry has a name")
	}
	s := r.Snapshot()
	if s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Fatalf("nil registry snapshot is not empty: %+v", s)
	}
}

func TestHistogramBuckets(t *testing.T) {
	// Bucket i spans [2^(i-1), 2^i); bucket 0 takes v <= 0.
	cases := []struct {
		v   int64
		pow int
	}{
		{-3, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.pow {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.pow)
		}
		lo, hi := BucketBounds(c.pow)
		if c.v > 0 && (c.v < lo || c.v >= hi) {
			t.Errorf("value %d outside BucketBounds(%d) = [%d, %d)", c.v, c.pow, lo, hi)
		}
	}

	r := NewRegistry("t")
	h := r.Histogram("lat")
	for _, v := range []int64{1, 2, 3, 100, 0} {
		h.Observe(v)
	}
	hs := r.Snapshot().Histograms["lat"]
	if hs.Count != 5 || hs.Sum != 106 {
		t.Fatalf("hist = %+v", hs)
	}
	want := []Bucket{{Pow: 0, N: 1}, {Pow: 1, N: 1}, {Pow: 2, N: 2}, {Pow: 7, N: 1}}
	if !reflect.DeepEqual(hs.Buckets, want) {
		t.Fatalf("buckets = %v, want %v", hs.Buckets, want)
	}
	if hs.Mean() != 106/5 {
		t.Fatalf("mean = %d", hs.Mean())
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry("det")
		r.Counter("b").Add(2)
		r.Counter("a").Add(1)
		r.Gauge("g").Set(9)
		r.Histogram("h").Observe(5)
		r.Histogram("h").Observe(500)
		return r.Snapshot()
	}
	var bufs [2]bytes.Buffer
	for i := range bufs {
		if err := build().WriteJSON(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if bufs[0].String() != bufs[1].String() {
		t.Fatalf("snapshot JSON is not deterministic:\n%s\nvs\n%s", bufs[0].String(), bufs[1].String())
	}

	// Round trip: parse then re-marshal byte-identically.
	parsed, err := ParseSnapshot(bufs[0].Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := parsed.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != bufs[0].String() {
		t.Fatalf("round trip changed JSON:\n%s\nvs\n%s", again.String(), bufs[0].String())
	}
}

func TestMergeAdds(t *testing.T) {
	a := NewRegistry("a")
	a.Counter("c").Add(3)
	a.Histogram("h").Observe(4)
	b := NewRegistry("b")
	b.Counter("c").Add(5)
	b.Counter("only_b").Inc()
	b.Histogram("h").Observe(4)
	b.Histogram("h").Observe(1000)

	m := a.Snapshot().Merge(b.Snapshot())
	if m.Counter("c") != 8 || m.Counter("only_b") != 1 {
		t.Fatalf("merged counters = %v", m.Counters)
	}
	h := m.Histograms["h"]
	if h.Count != 3 || h.Sum != 1008 {
		t.Fatalf("merged hist = %+v", h)
	}
	want := []Bucket{{Pow: 3, N: 2}, {Pow: 10, N: 1}}
	if !reflect.DeepEqual(h.Buckets, want) {
		t.Fatalf("merged buckets = %v, want %v", h.Buckets, want)
	}

	// Commutativity, compared via canonical JSON (names differ, so
	// clear them).
	ab, ba := a.Snapshot().Merge(b.Snapshot()), b.Snapshot().Merge(a.Snapshot())
	ab.Name, ba.Name = "", ""
	ja, _ := json.Marshal(ab)
	jb, _ := json.Marshal(ba)
	if string(ja) != string(jb) {
		t.Fatalf("merge is not commutative:\n%s\nvs\n%s", ja, jb)
	}
}

// TestConcurrentNoLostCounts is the documented concurrency contract:
// counts are never lost, whatever the interleaving. Run under -race by
// the chaos-race target.
func TestConcurrentNoLostCounts(t *testing.T) {
	const goroutines = 8
	const perG = 10000
	r := NewRegistry("race")
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				r.Counter("n").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(int64(j))
				if j%100 == 0 {
					_ = r.Snapshot() // snapshots race with writers by design
				}
			}
		}(i)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counter("n") != goroutines*perG {
		t.Fatalf("lost counter increments: %d", s.Counter("n"))
	}
	if s.Gauges["g"] != goroutines*perG {
		t.Fatalf("lost gauge adds: %d", s.Gauges["g"])
	}
	h := s.Histograms["h"]
	if h.Count != goroutines*perG {
		t.Fatalf("lost observations: %d", h.Count)
	}
	var inBuckets uint64
	for _, bk := range h.Buckets {
		inBuckets += bk.N
	}
	if inBuckets != h.Count {
		t.Fatalf("bucket sum %d != count %d", inBuckets, h.Count)
	}
}

// TestHistogramQuantile: quantiles resolve to the upper bound of the
// log2 bucket holding the ranked observation.
func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry("q")
	h := reg.Histogram("lat")
	// 90 fast observations in [64,128) and 10 slow in [65536,131072).
	for i := 0; i < 90; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100_000)
	}
	hs := reg.Snapshot().Histograms["lat"]

	if got := hs.Quantile(0.50); got != 127 {
		t.Errorf("p50 = %d, want 127", got)
	}
	if got := hs.Quantile(0.90); got != 127 {
		t.Errorf("p90 = %d, want 127 (rank 90 is the last fast observation)", got)
	}
	if got := hs.Quantile(0.99); got != 131071 {
		t.Errorf("p99 = %d, want 131071", got)
	}
	if got := hs.Quantile(1.0); got != 131071 {
		t.Errorf("p100 = %d, want 131071", got)
	}
	// Clamping and the empty histogram.
	if got := hs.Quantile(-1); got != 127 {
		t.Errorf("q<0 clamps to min bucket, got %d", got)
	}
	var empty HistogramSnapshot
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram quantile = %d, want 0", got)
	}
}
