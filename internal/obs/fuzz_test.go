package obs

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzMetricsSnapshot drives a registry with an arbitrary op stream,
// then checks the serialization laws the golden suite and the -metrics
// report rely on:
//
//  1. snapshot → JSON → parse → JSON is byte-identical (round trip);
//  2. Merge is commutative and keeps counter sums exact;
//  3. merging a snapshot with an empty one is the identity.
//
// The op stream is interpreted 4 bytes at a time: kind, metric-name
// index, registry selector, and a value byte — enough to hit every
// metric type, shared names across registries, and negative values.
func FuzzMetricsSnapshot(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1})
	f.Add([]byte{0, 1, 0, 200, 1, 1, 1, 7, 2, 2, 0, 255, 2, 2, 1, 0})
	f.Add(bytes.Repeat([]byte{3, 0, 1, 128}, 40))

	names := []string{"funnel.certs_seen", "funnel.drop.expired", "corpus.records", "lat_ns"}

	f.Fuzz(func(t *testing.T, data []byte) {
		regs := [2]*Registry{NewRegistry("shard0"), NewRegistry("shard1")}
		for i := 0; i+4 <= len(data); i += 4 {
			kind, name, which, val := data[i], data[i+1], data[i+2], data[i+3]
			r := regs[which%2]
			n := names[int(name)%len(names)]
			v := int64(val) - 64 // exercise negatives too
			switch kind % 4 {
			case 0:
				r.Counter(n).Add(v)
			case 1:
				r.Counter(n).Inc()
			case 2:
				r.Gauge(n).Add(v)
			case 3:
				r.Histogram(n).Observe(v)
			}
		}

		for _, r := range regs {
			s := r.Snapshot()
			var buf bytes.Buffer
			if err := s.WriteJSON(&buf); err != nil {
				t.Fatalf("WriteJSON: %v", err)
			}
			parsed, err := ParseSnapshot(buf.Bytes())
			if err != nil {
				t.Fatalf("ParseSnapshot of our own output: %v", err)
			}
			var again bytes.Buffer
			if err := parsed.WriteJSON(&again); err != nil {
				t.Fatalf("re-WriteJSON: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), again.Bytes()) {
				t.Fatalf("round trip not byte-identical:\n%s\nvs\n%s", buf.String(), again.String())
			}
		}

		a, b := regs[0].Snapshot(), regs[1].Snapshot()
		ab, ba := a.Merge(b), b.Merge(a)
		ab.Name, ba.Name = "", ""
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("merge not commutative:\n%+v\nvs\n%+v", ab, ba)
		}
		for name := range ab.Counters {
			if got, want := ab.Counter(name), a.Counter(name)+b.Counter(name); got != want {
				t.Fatalf("merged counter %s = %d, want %d", name, got, want)
			}
		}
		for name, h := range ab.Histograms {
			if got, want := h.Count, a.Histograms[name].Count+b.Histograms[name].Count; got != want {
				t.Fatalf("merged histogram %s count = %d, want %d", name, got, want)
			}
			var inBuckets uint64
			for _, bk := range h.Buckets {
				inBuckets += bk.N
			}
			if inBuckets != h.Count {
				t.Fatalf("merged histogram %s bucket sum %d != count %d", name, inBuckets, h.Count)
			}
		}

		identity := a.Merge(Snapshot{})
		if !reflect.DeepEqual(identity, a) {
			t.Fatalf("merge with empty is not identity:\n%+v\nvs\n%+v", identity, a)
		}
	})
}
