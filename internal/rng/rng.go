// Package rng provides the deterministic pseudo-random number generator
// used by every simulator in offnetscope. All world generation is a pure
// function of a single seed so experiments are exactly reproducible; the
// generator is splitmix64-based, cheap to fork, and has no global state.
package rng

import "math"

// RNG is a splitmix64 generator. The zero value is a valid generator
// seeded with 0; use New for an explicit seed.
type RNG struct {
	seed  uint64
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{seed: seed, state: seed}
}

// Fork derives an independent child generator from the current one and a
// stream label. Identical (parent-seed, label) pairs always produce the
// same child stream regardless of how much the parent has been consumed,
// which lets subsystems own their randomness without ordering coupling.
func (r *RNG) Fork(label string) *RNG {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	child := mix(r.seed ^ h)
	return &RNG{seed: child, state: child}
}

func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a normally distributed float with mean 0 and
// standard deviation 1, via the Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Exp returns an exponentially distributed float with rate 1.
func (r *RNG) Exp() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u)
	}
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation otherwise.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		n := int(mean + math.Sqrt(mean)*r.NormFloat64() + 0.5)
		if n < 0 {
			return 0
		}
		return n
	}
	limit := math.Exp(-mean)
	p := 1.0
	n := 0
	for {
		p *= r.Float64()
		if p <= limit {
			return n
		}
		n++
	}
}

// Zipf returns an integer in [0, n) drawn from a Zipf-like distribution
// with exponent s (larger s = more skew). Implemented via rejection-free
// inverse CDF over a harmonic table would be costly per call, so this uses
// the standard approximation by inverse transform on the continuous
// bounded Pareto distribution.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	if s == 1 {
		s = 1.0000001
	}
	u := r.Float64()
	oneMinusS := 1 - s
	hi := math.Pow(float64(n)+1, oneMinusS)
	x := math.Pow(u*(hi-1)+1, 1/oneMinusS) - 1
	k := int(x)
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	return k
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen element of xs. It panics on an empty
// slice.
func Pick[T any](r *RNG, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// WeightedPick returns an index into weights chosen with probability
// proportional to the weight. Zero or negative total weight yields 0.
func (r *RNG) WeightedPick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
