package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Fork("astopo")
	// Consuming the parent must not change what a same-label fork yields.
	parent2 := New(7)
	for i := 0; i < 50; i++ {
		parent2.Uint64()
	}
	c2 := parent2.Fork("astopo")
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("fork stream depends on parent consumption")
		}
	}
	if New(7).Fork("a").Uint64() == New(7).Fork("b").Uint64() {
		t.Error("different labels should fork different streams")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		n := r.Intn(17)
		if n < 0 || n >= 17 {
			t.Fatalf("Intn(17) = %d", n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Bool(0.25) frequency = %v", frac)
	}
	if r.Bool(0) {
		t.Error("Bool(0) must be false")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) must be true")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	var sum, sumsq float64
	const n = 100000
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(17)
	for _, mean := range []float64{0.5, 3, 20, 120} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > mean*0.05+0.1 {
			t.Errorf("Poisson(%v) empirical mean = %v", mean, got)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive mean should be 0")
	}
}

func TestZipfSkewAndBounds(t *testing.T) {
	r := New(19)
	const n = 50
	counts := make([]int, n)
	for i := 0; i < 100000; i++ {
		k := r.Zipf(n, 1.2)
		if k < 0 || k >= n {
			t.Fatalf("Zipf out of bounds: %d", k)
		}
		counts[k]++
	}
	if counts[0] <= counts[n-1] {
		t.Errorf("Zipf not skewed: first=%d last=%d", counts[0], counts[n-1])
	}
	if r.Zipf(1, 1.2) != 0 {
		t.Error("Zipf(1, s) must be 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nn uint8) bool {
		n := int(nn % 64)
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedPick(t *testing.T) {
	r := New(23)
	w := []float64{0, 1, 3, 0}
	counts := make([]int, len(w))
	for i := 0; i < 40000; i++ {
		counts[r.WeightedPick(w)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Errorf("zero-weight entries picked: %v", counts)
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.3 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
	if r.WeightedPick([]float64{0, 0}) != 0 {
		t.Error("all-zero weights should return 0")
	}
}

func TestShuffleAndPick(t *testing.T) {
	r := New(29)
	xs := []int{1, 2, 3, 4, 5}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 15 {
		t.Fatalf("shuffle changed multiset: %v", xs)
	}
	v := Pick(r, xs)
	found := false
	for _, x := range xs {
		if x == v {
			found = true
		}
	}
	if !found {
		t.Fatalf("Pick returned %d not in slice", v)
	}
}

func TestInt63nAndUint32(t *testing.T) {
	r := New(31)
	for i := 0; i < 1000; i++ {
		if v := r.Int63n(1000); v < 0 || v >= 1000 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
	seen := map[uint32]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint32()] = true
	}
	if len(seen) < 95 {
		t.Errorf("Uint32 produced only %d distinct values of 100", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Int63n(0) should panic")
		}
	}()
	r.Int63n(0)
}

func TestExpMean(t *testing.T) {
	r := New(37)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		x := r.Exp()
		if x < 0 {
			t.Fatalf("Exp returned negative %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("Exp mean = %v, want ~1", mean)
	}
}

func TestZipfSZero(t *testing.T) {
	r := New(41)
	// s near 1 triggers the epsilon fallback.
	for i := 0; i < 100; i++ {
		if k := r.Zipf(10, 1); k < 0 || k >= 10 {
			t.Fatalf("Zipf(10, 1) = %d", k)
		}
	}
}
