package netmodel

import "testing"

func BenchmarkTrieLookup(b *testing.B) {
	var tr Trie[int]
	// A routing-table-like population: 100k prefixes of mixed length.
	x := uint32(2463534242)
	for i := 0; i < 100000; i++ {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		tr.Insert(MakePrefix(IP(x), 16+int(x%9)), i)
	}
	probe := IP(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe += 2654435761
		tr.Lookup(probe)
	}
}

func BenchmarkTrieInsert(b *testing.B) {
	x := uint32(88172645)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tr Trie[int]
		for j := 0; j < 1000; j++ {
			x ^= x << 13
			x ^= x >> 17
			x ^= x << 5
			tr.Insert(MakePrefix(IP(x), 24), j)
		}
	}
}

func BenchmarkParseIP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParseIP("203.0.113.254"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIPString(b *testing.B) {
	ip := MustParseIP("203.0.113.254")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ip.String()
	}
}
