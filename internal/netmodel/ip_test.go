package netmodel

import (
	"testing"
	"testing/quick"
)

func TestParseIPRoundTrip(t *testing.T) {
	cases := []string{"0.0.0.0", "1.2.3.4", "8.8.8.8", "192.168.1.255", "255.255.255.255", "10.0.0.1"}
	for _, s := range cases {
		ip, err := ParseIP(s)
		if err != nil {
			t.Fatalf("ParseIP(%q): %v", s, err)
		}
		if got := ip.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseIPRejectsInvalid(t *testing.T) {
	bad := []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.-4", "a.b.c.d", "1..2.3", "01.2.3.4", "1.2.3.4 ", "1.2.3.999"}
	for _, s := range bad {
		if _, err := ParseIP(s); err == nil {
			t.Errorf("ParseIP(%q) unexpectedly succeeded", s)
		}
	}
}

func TestMakeIPOctets(t *testing.T) {
	ip := MakeIP(10, 20, 30, 40)
	a, b, c, d := ip.Octets()
	if a != 10 || b != 20 || c != 30 || d != 40 {
		t.Fatalf("Octets = %d.%d.%d.%d", a, b, c, d)
	}
	if ip.String() != "10.20.30.40" {
		t.Fatalf("String = %q", ip.String())
	}
}

func TestIPStringRoundTripQuick(t *testing.T) {
	f := func(x uint32) bool {
		ip := IP(x)
		back, err := ParseIP(ip.String())
		return err == nil && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("10.1.2.3/16")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "10.1.0.0/16" {
		t.Fatalf("canonicalised prefix = %q", p)
	}
	if !p.Contains(MustParseIP("10.1.255.255")) {
		t.Error("10.1.255.255 should be inside 10.1.0.0/16")
	}
	if p.Contains(MustParseIP("10.2.0.0")) {
		t.Error("10.2.0.0 should be outside 10.1.0.0/16")
	}
	if p.NumAddrs() != 65536 {
		t.Errorf("NumAddrs = %d", p.NumAddrs())
	}
	if p.Last() != MustParseIP("10.1.255.255") {
		t.Errorf("Last = %v", p.Last())
	}
}

func TestParsePrefixRejectsInvalid(t *testing.T) {
	bad := []string{"", "10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "10.0.0.0/x", "300.0.0.0/8"}
	for _, s := range bad {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) unexpectedly succeeded", s)
		}
	}
}

func TestMaskEdges(t *testing.T) {
	if Mask(0) != 0 {
		t.Error("Mask(0) != 0")
	}
	if Mask(32) != ^IP(0) {
		t.Error("Mask(32) != all ones")
	}
	if Mask(8) != MustParseIP("255.0.0.0") {
		t.Errorf("Mask(8) = %v", Mask(8))
	}
	if Mask(-3) != 0 || Mask(40) != ^IP(0) {
		t.Error("Mask should clamp out-of-range lengths")
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.5.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes should overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("disjoint prefixes should not overlap")
	}
	if !a.Overlaps(a) {
		t.Error("prefix should overlap itself")
	}
}

func TestPrefixContainsPropertyQuick(t *testing.T) {
	// Every address inside a prefix maps back to the same canonical
	// prefix when masked.
	f := func(x uint32, l uint8) bool {
		length := int(l % 33)
		p := MakePrefix(IP(x), length)
		if !p.IsCanonical() {
			return false
		}
		return p.Contains(p.First()) && p.Contains(p.Last())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBogons(t *testing.T) {
	if !IsBogon(MustParseIP("10.1.2.3")) {
		t.Error("10.1.2.3 should be a bogon")
	}
	if !IsBogon(MustParseIP("127.0.0.1")) {
		t.Error("loopback should be a bogon")
	}
	if !IsBogon(MustParseIP("240.0.0.1")) {
		t.Error("class E should be a bogon")
	}
	if IsBogon(MustParseIP("8.8.8.8")) {
		t.Error("8.8.8.8 should not be a bogon")
	}
	if !IsBogonPrefix(MustParsePrefix("10.128.0.0/9")) {
		t.Error("prefix inside 10/8 should be a bogon prefix")
	}
	if !IsBogonPrefix(MustParsePrefix("0.0.0.0/0")) {
		t.Error("default route overlaps everything, including bogons")
	}
	if IsBogonPrefix(MustParsePrefix("8.0.0.0/8")) {
		t.Error("8/8 should not be a bogon prefix")
	}
	if len(Bogons()) == 0 {
		t.Error("Bogons() should be non-empty")
	}
	// Bogons must return a copy, not the internal slice.
	bs := Bogons()
	bs[0] = MustParsePrefix("8.0.0.0/8")
	if IsBogonPrefix(MustParsePrefix("8.1.0.0/16")) {
		t.Error("mutating Bogons() result must not affect the registry")
	}
}
