// Package netmodel provides the low-level network value types used across
// offnetscope: IPv4 addresses, CIDR prefixes, bogon classification, and a
// longest-prefix-match radix trie.
//
// IPv4 addresses are represented as uint32 in host order so the simulator
// can iterate over millions of addresses without allocation. The types are
// deliberately small value types; all of them are safe to copy and to use
// as map keys.
package netmodel

import (
	"fmt"
	"strconv"
	"strings"
)

// IP is an IPv4 address in host byte order. The zero value is 0.0.0.0.
type IP uint32

// MakeIP assembles an IP from its four dotted-quad octets.
func MakeIP(a, b, c, d byte) IP {
	return IP(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseIP parses a dotted-quad IPv4 address. It rejects anything that is
// not exactly four decimal octets in 0-255.
func ParseIP(s string) (IP, error) {
	var ip uint32
	rest := s
	for i := 0; i < 4; i++ {
		var part string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("netmodel: invalid IPv4 address %q", s)
			}
			part, rest = rest[:dot], rest[dot+1:]
		} else {
			part = rest
		}
		if part == "" || len(part) > 3 {
			return 0, fmt.Errorf("netmodel: invalid IPv4 address %q", s)
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 || n > 255 {
			return 0, fmt.Errorf("netmodel: invalid IPv4 address %q", s)
		}
		// Reject leading zeros such as "01" which are ambiguous (octal in
		// some legacy parsers).
		if len(part) > 1 && part[0] == '0' {
			return 0, fmt.Errorf("netmodel: invalid IPv4 address %q (leading zero)", s)
		}
		ip = ip<<8 | uint32(n)
	}
	return IP(ip), nil
}

// MustParseIP is ParseIP for static initialisers; it panics on error.
func MustParseIP(s string) IP {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// String renders the address in dotted-quad notation.
func (ip IP) String() string {
	var b [15]byte
	out := strconv.AppendUint(b[:0], uint64(ip>>24), 10)
	out = append(out, '.')
	out = strconv.AppendUint(out, uint64(ip>>16&0xff), 10)
	out = append(out, '.')
	out = strconv.AppendUint(out, uint64(ip>>8&0xff), 10)
	out = append(out, '.')
	out = strconv.AppendUint(out, uint64(ip&0xff), 10)
	return string(out)
}

// Octets returns the four dotted-quad octets of the address.
func (ip IP) Octets() (a, b, c, d byte) {
	return byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)
}

// Prefix is an IPv4 CIDR prefix. Bits beyond Len are zero by construction
// for prefixes produced by MakePrefix/ParsePrefix; Canonical() enforces it.
type Prefix struct {
	Addr IP
	Len  uint8
}

// MakePrefix builds a canonical prefix, masking host bits off addr.
func MakePrefix(addr IP, length int) Prefix {
	if length < 0 {
		length = 0
	}
	if length > 32 {
		length = 32
	}
	return Prefix{Addr: addr & Mask(length), Len: uint8(length)}
}

// ParsePrefix parses "a.b.c.d/len" into a canonical Prefix.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netmodel: invalid prefix %q: missing '/'", s)
	}
	ip, err := ParseIP(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	n, err := strconv.Atoi(s[slash+1:])
	if err != nil || n < 0 || n > 32 {
		return Prefix{}, fmt.Errorf("netmodel: invalid prefix length in %q", s)
	}
	return MakePrefix(ip, n), nil
}

// MustParsePrefix is ParsePrefix for static initialisers; it panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Mask returns the network mask for a prefix length.
func Mask(length int) IP {
	if length <= 0 {
		return 0
	}
	if length >= 32 {
		return ^IP(0)
	}
	return ^IP(0) << (32 - length)
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip IP) bool {
	return ip&Mask(int(p.Len)) == p.Addr
}

// Overlaps reports whether two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.Len <= q.Len {
		return p.Contains(q.Addr)
	}
	return q.Contains(p.Addr)
}

// NumAddrs returns the number of addresses covered by the prefix.
func (p Prefix) NumAddrs() uint64 {
	return 1 << (32 - p.Len)
}

// First returns the first (network) address of the prefix.
func (p Prefix) First() IP { return p.Addr }

// Last returns the last (broadcast) address of the prefix.
func (p Prefix) Last() IP {
	return p.Addr | ^Mask(int(p.Len))
}

// Canonical returns the prefix with host bits masked off.
func (p Prefix) Canonical() Prefix {
	return Prefix{Addr: p.Addr & Mask(int(p.Len)), Len: p.Len}
}

// IsCanonical reports whether no host bits are set.
func (p Prefix) IsCanonical() bool {
	return p.Addr == p.Addr&Mask(int(p.Len))
}

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return p.Addr.String() + "/" + strconv.Itoa(int(p.Len))
}

// bogons is the IANA special-purpose IPv4 registry subset the paper's
// IP-to-AS pipeline filters out (§A.1).
var bogons = []Prefix{
	MustParsePrefix("0.0.0.0/8"),
	MustParsePrefix("10.0.0.0/8"),
	MustParsePrefix("100.64.0.0/10"),
	MustParsePrefix("127.0.0.0/8"),
	MustParsePrefix("169.254.0.0/16"),
	MustParsePrefix("172.16.0.0/12"),
	MustParsePrefix("192.0.0.0/24"),
	MustParsePrefix("192.0.2.0/24"),
	MustParsePrefix("192.88.99.0/24"),
	MustParsePrefix("192.168.0.0/16"),
	MustParsePrefix("198.18.0.0/15"),
	MustParsePrefix("198.51.100.0/24"),
	MustParsePrefix("203.0.113.0/24"),
	MustParsePrefix("224.0.0.0/4"),
	MustParsePrefix("240.0.0.0/4"),
}

// IsBogon reports whether the address falls inside an IANA special-purpose
// (non publicly routable) range.
func IsBogon(ip IP) bool {
	for _, p := range bogons {
		if p.Contains(ip) {
			return true
		}
	}
	return false
}

// IsBogonPrefix reports whether the prefix overlaps any special-purpose
// range. BGP announcements for such prefixes are dropped before IP-to-AS
// mapping, mirroring the paper's appendix A.1.
func IsBogonPrefix(p Prefix) bool {
	for _, b := range bogons {
		if p.Overlaps(b) {
			return true
		}
	}
	return false
}

// Bogons returns a copy of the special-purpose prefix list, primarily for
// tests and documentation.
func Bogons() []Prefix {
	out := make([]Prefix, len(bogons))
	copy(out, bogons)
	return out
}
