package netmodel

import (
	"testing"
	"testing/quick"
)

func TestTrieEmpty(t *testing.T) {
	var tr Trie[int]
	if tr.Len() != 0 {
		t.Fatal("empty trie should have length 0")
	}
	if _, ok := tr.Lookup(MustParseIP("1.2.3.4")); ok {
		t.Fatal("lookup in empty trie should miss")
	}
	if tr.Delete(MustParsePrefix("1.0.0.0/8")) {
		t.Fatal("delete in empty trie should report false")
	}
}

func TestTrieLongestPrefixMatch(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustParsePrefix("10.0.0.0/8"), "eight")
	tr.Insert(MustParsePrefix("10.1.0.0/16"), "sixteen")
	tr.Insert(MustParsePrefix("10.1.2.0/24"), "twentyfour")

	cases := []struct {
		ip   string
		want string
	}{
		{"10.1.2.3", "twentyfour"},
		{"10.1.3.3", "sixteen"},
		{"10.2.0.1", "eight"},
	}
	for _, c := range cases {
		got, ok := tr.Lookup(MustParseIP(c.ip))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = %q, %v; want %q", c.ip, got, ok, c.want)
		}
	}
	if _, ok := tr.Lookup(MustParseIP("11.0.0.1")); ok {
		t.Error("lookup outside any prefix should miss")
	}
}

func TestTrieLookupPrefix(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustParsePrefix("192.168.0.0/16"), 1)
	tr.Insert(MustParsePrefix("192.168.4.0/22"), 2)
	p, v, ok := tr.LookupPrefix(MustParseIP("192.168.5.9"))
	if !ok || v != 2 || p.String() != "192.168.4.0/22" {
		t.Fatalf("LookupPrefix = %v %d %v", p, v, ok)
	}
	p, v, ok = tr.LookupPrefix(MustParseIP("192.168.200.1"))
	if !ok || v != 1 || p.String() != "192.168.0.0/16" {
		t.Fatalf("LookupPrefix = %v %d %v", p, v, ok)
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustParsePrefix("0.0.0.0/0"), "default")
	got, ok := tr.Lookup(MustParseIP("203.0.113.77"))
	if !ok || got != "default" {
		t.Fatalf("default route lookup = %q, %v", got, ok)
	}
}

func TestTrieHostRoute(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustParsePrefix("1.2.3.4/32"), "host")
	if got, ok := tr.Lookup(MustParseIP("1.2.3.4")); !ok || got != "host" {
		t.Fatalf("host route lookup = %q %v", got, ok)
	}
	if _, ok := tr.Lookup(MustParseIP("1.2.3.5")); ok {
		t.Fatal("adjacent address must not match /32")
	}
}

func TestTrieInsertReplaceDelete(t *testing.T) {
	var tr Trie[int]
	p := MustParsePrefix("10.0.0.0/8")
	if !tr.Insert(p, 1) {
		t.Fatal("first insert should be fresh")
	}
	if tr.Insert(p, 2) {
		t.Fatal("second insert should replace, not create")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if v, ok := tr.Get(p); !ok || v != 2 {
		t.Fatalf("Get = %d %v", v, ok)
	}
	if !tr.Delete(p) {
		t.Fatal("delete should succeed")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len after delete = %d", tr.Len())
	}
	if _, ok := tr.Lookup(MustParseIP("10.1.1.1")); ok {
		t.Fatal("lookup after delete should miss")
	}
}

func TestTrieWalkOrderAndEarlyStop(t *testing.T) {
	var tr Trie[int]
	prefixes := []string{"10.0.0.0/8", "10.0.0.0/16", "11.0.0.0/8", "9.0.0.0/8"}
	for i, s := range prefixes {
		tr.Insert(MustParsePrefix(s), i)
	}
	var seen []string
	tr.Walk(func(p Prefix, _ int) bool {
		seen = append(seen, p.String())
		return true
	})
	want := []string{"9.0.0.0/8", "10.0.0.0/8", "10.0.0.0/16", "11.0.0.0/8"}
	if len(seen) != len(want) {
		t.Fatalf("walk visited %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("walk order %v, want %v", seen, want)
		}
	}
	count := 0
	tr.Walk(func(Prefix, int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestTrieAgainstLinearScanQuick(t *testing.T) {
	// Property: trie longest-prefix match agrees with a brute-force scan
	// over the inserted prefixes.
	f := func(seeds []uint32, probe uint32) bool {
		var tr Trie[int]
		type entry struct {
			p Prefix
			v int
		}
		var entries []entry
		for i, s := range seeds {
			p := MakePrefix(IP(s), int(s%33))
			if tr.Insert(p, i) {
				entries = append(entries, entry{p, i})
			} else {
				// Replaced: update the linear model too.
				for j := range entries {
					if entries[j].p == p {
						entries[j].v = i
					}
				}
			}
		}
		bestLen, bestVal, found := -1, 0, false
		for _, e := range entries {
			if e.p.Contains(IP(probe)) && int(e.p.Len) > bestLen {
				bestLen, bestVal, found = int(e.p.Len), e.v, true
			}
		}
		got, ok := tr.Lookup(IP(probe))
		if ok != found {
			return false
		}
		return !found || got == bestVal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
