package netmodel

// Trie is a binary radix trie mapping IPv4 prefixes to values, supporting
// longest-prefix match. It is the lookup structure behind the IP-to-AS
// table: BGP RIB snapshots hold hundreds of thousands of prefixes and the
// pipeline performs one lookup per scanned IP address, so lookups must be
// allocation-free.
//
// The zero value is an empty trie ready to use. Trie is not safe for
// concurrent mutation; concurrent lookups without mutation are safe.
type Trie[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

// Insert stores val under prefix, replacing any existing value for the
// exact same prefix. It reports whether the prefix was newly inserted.
func (t *Trie[V]) Insert(p Prefix, val V) bool {
	p = p.Canonical()
	if t.root == nil {
		t.root = &trieNode[V]{}
	}
	n := t.root
	for depth := 0; depth < int(p.Len); depth++ {
		bit := (p.Addr >> (31 - depth)) & 1
		if n.child[bit] == nil {
			n.child[bit] = &trieNode[V]{}
		}
		n = n.child[bit]
	}
	fresh := !n.set
	n.val, n.set = val, true
	if fresh {
		t.size++
	}
	return fresh
}

// Lookup returns the value of the longest prefix containing ip.
func (t *Trie[V]) Lookup(ip IP) (val V, ok bool) {
	n := t.root
	if n == nil {
		return val, false
	}
	if n.set {
		val, ok = n.val, true
	}
	for depth := 0; depth < 32 && n != nil; depth++ {
		bit := (ip >> (31 - depth)) & 1
		n = n.child[bit]
		if n != nil && n.set {
			val, ok = n.val, true
		}
	}
	return val, ok
}

// LookupPrefix returns the value and the matched prefix of the longest
// prefix containing ip.
func (t *Trie[V]) LookupPrefix(ip IP) (p Prefix, val V, ok bool) {
	n := t.root
	if n == nil {
		return Prefix{}, val, false
	}
	if n.set {
		p, val, ok = MakePrefix(ip, 0), n.val, true
	}
	for depth := 0; depth < 32 && n != nil; depth++ {
		bit := (ip >> (31 - depth)) & 1
		n = n.child[bit]
		if n != nil && n.set {
			p, val, ok = MakePrefix(ip, depth+1), n.val, true
		}
	}
	return p, val, ok
}

// Get returns the value stored for exactly prefix p, if any.
func (t *Trie[V]) Get(p Prefix) (val V, ok bool) {
	p = p.Canonical()
	n := t.root
	for depth := 0; depth < int(p.Len) && n != nil; depth++ {
		bit := (p.Addr >> (31 - depth)) & 1
		n = n.child[bit]
	}
	if n == nil || !n.set {
		return val, false
	}
	return n.val, true
}

// Delete removes the exact prefix p. It reports whether it was present.
// Interior nodes are left in place; the trie is built once per snapshot
// and discarded, so reclaiming them is not worth the bookkeeping.
func (t *Trie[V]) Delete(p Prefix) bool {
	p = p.Canonical()
	n := t.root
	for depth := 0; depth < int(p.Len) && n != nil; depth++ {
		bit := (p.Addr >> (31 - depth)) & 1
		n = n.child[bit]
	}
	if n == nil || !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	return true
}

// Walk visits every stored prefix/value pair in address order. The walk
// stops early if fn returns false.
func (t *Trie[V]) Walk(fn func(Prefix, V) bool) {
	var rec func(n *trieNode[V], addr IP, depth int) bool
	rec = func(n *trieNode[V], addr IP, depth int) bool {
		if n == nil {
			return true
		}
		if n.set {
			if !fn(Prefix{Addr: addr, Len: uint8(depth)}, n.val) {
				return false
			}
		}
		if !rec(n.child[0], addr, depth+1) {
			return false
		}
		return rec(n.child[1], addr|1<<(31-depth), depth+1)
	}
	rec(t.root, 0, 0)
}
