package netmodel

import "testing"

// Fuzz targets double as robustness tests: go test runs the seed corpus
// on every invocation, and `go test -fuzz` explores further.

func FuzzParseIP(f *testing.F) {
	for _, seed := range []string{"1.2.3.4", "255.255.255.255", "0.0.0.0", "999.1.1.1", "", "a.b.c.d", "1.2.3.4.5", "01.2.3.4"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ip, err := ParseIP(s)
		if err != nil {
			return
		}
		// Valid parses must round-trip exactly.
		back, err := ParseIP(ip.String())
		if err != nil || back != ip {
			t.Fatalf("round trip failed for %q → %v", s, ip)
		}
	})
}

func FuzzParsePrefix(f *testing.F) {
	for _, seed := range []string{"10.0.0.0/8", "1.2.3.4/32", "0.0.0.0/0", "1.2.3.4/33", "x/8", "1.2.3.4/"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return
		}
		if !p.IsCanonical() {
			t.Fatalf("ParsePrefix(%q) returned non-canonical %v", s, p)
		}
		back, err := ParsePrefix(p.String())
		if err != nil || back != p {
			t.Fatalf("round trip failed for %q → %v", s, p)
		}
		if !p.Contains(p.First()) || !p.Contains(p.Last()) {
			t.Fatalf("prefix %v does not contain its own range", p)
		}
	})
}
