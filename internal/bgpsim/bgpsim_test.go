package bgpsim

import (
	"testing"
	"testing/quick"

	"offnetscope/internal/astopo"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/timeline"
)

func testGraph(t *testing.T) *astopo.Graph {
	t.Helper()
	return astopo.Generate(astopo.GenConfig{Seed: 5, FinalASes: 500})
}

func TestAllocatorDisjointPrefixes(t *testing.T) {
	g := testGraph(t)
	alloc, err := NewAllocator(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.NumPrefixes() == 0 {
		t.Fatal("no prefixes allocated")
	}
	var all []netmodel.Prefix
	for _, as := range alloc.AllASes() {
		ps := alloc.PrefixesOf(as)
		if len(ps) == 0 {
			t.Fatalf("AS %d has no prefixes", as)
		}
		all = append(all, ps...)
	}
	for i := 0; i < len(all); i++ {
		if netmodel.IsBogonPrefix(all[i]) {
			t.Fatalf("allocated bogon prefix %v", all[i])
		}
		for j := i + 1; j < len(all); j++ {
			if all[i].Overlaps(all[j]) {
				t.Fatalf("prefixes overlap: %v %v", all[i], all[j])
			}
		}
	}
}

func TestAllocatorSizesScaleWithCategory(t *testing.T) {
	g := testGraph(t)
	alloc, err := NewAllocator(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	last := timeline.Snapshot(timeline.Count() - 1)
	space := func(cat astopo.Category) uint64 {
		var total, n uint64
		for _, as := range alloc.AllASes() {
			if g.CategoryOf(as, last) != cat {
				continue
			}
			n++
			for _, p := range alloc.PrefixesOf(as) {
				total += p.NumAddrs()
			}
		}
		if n == 0 {
			return 0
		}
		return total / n
	}
	// Small worlds may have no XLarge AS; compare the biggest category
	// that exists against Stub.
	var biggest uint64
	for _, cat := range []astopo.Category{astopo.XLarge, astopo.Large, astopo.Medium} {
		if s := space(cat); s > 0 {
			biggest = s
			break
		}
	}
	if stub := space(astopo.Stub); biggest <= stub {
		t.Errorf("largest category avg space (%d) should exceed Stub (%d)", biggest, stub)
	}
}

func TestTrueOwner(t *testing.T) {
	g := testGraph(t)
	alloc, _ := NewAllocator(g, 5)
	for _, as := range alloc.AllASes()[:20] {
		p := alloc.PrefixesOf(as)[0]
		owner, ok := alloc.TrueOwner(p.First())
		if !ok || owner != as {
			t.Fatalf("TrueOwner(%v) = %d, %v; want %d", p.First(), owner, ok, as)
		}
	}
	if _, ok := alloc.TrueOwner(netmodel.MustParseIP("0.0.0.1")); ok {
		t.Error("unallocated space should have no owner")
	}
}

func TestBuildRIBActiveOnly(t *testing.T) {
	g := testGraph(t)
	alloc, _ := NewAllocator(g, 5)
	rib := BuildRIB(g, alloc, RouteViews, 0, DefaultNoise(), 9)
	for _, ann := range rib.Announcements {
		if g.Valid(ann.Origin) && !g.Active(ann.Origin, 0) {
			// Hijackers may be any registered AS, but a hijacked origin
			// always has low presence and gets filtered later; genuine
			// owners must be active.
			owner, ok := alloc.TrueOwner(ann.Prefix.First())
			if ok && owner == ann.Origin {
				t.Fatalf("inactive AS %d announced its prefix at snapshot 0", ann.Origin)
			}
		}
	}
}

func TestBuildRIBDeterministic(t *testing.T) {
	g := testGraph(t)
	alloc, _ := NewAllocator(g, 5)
	a := BuildRIB(g, alloc, RouteViews, 3, DefaultNoise(), 9)
	b := BuildRIB(g, alloc, RouteViews, 3, DefaultNoise(), 9)
	if len(a.Announcements) != len(b.Announcements) {
		t.Fatal("same seed produced different RIBs")
	}
	for i := range a.Announcements {
		if a.Announcements[i] != b.Announcements[i] {
			t.Fatal("same seed produced different announcements")
		}
	}
	c := BuildRIB(g, alloc, RIPERIS, 3, DefaultNoise(), 9)
	if len(a.Announcements) == len(c.Announcements) {
		// Different collectors fork different streams; identical lengths
		// would suggest the collector label is ignored.
		same := true
		for i := range a.Announcements {
			if a.Announcements[i] != c.Announcements[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("collectors produced identical RIBs")
		}
	}
}

func TestIP2ASStabilityFilterDropsHijacks(t *testing.T) {
	g := testGraph(t)
	alloc, _ := NewAllocator(g, 5)
	victim := alloc.AllASes()[0]
	p := alloc.PrefixesOf(victim)[0]
	rib := &RIB{Collector: RouteViews, Snapshot: 0, Announcements: []Announcement{
		{Prefix: p, Origin: victim, Presence: 0.95},
		{Prefix: p, Origin: victim + 1, Presence: 0.05}, // hijack
	}}
	m := BuildIP2AS(0, rib)
	asns := m.Lookup(p.First())
	if len(asns) != 1 || asns[0] != victim {
		t.Fatalf("Lookup = %v, want only the victim", asns)
	}
}

func TestIP2ASMOASKept(t *testing.T) {
	p := netmodel.MustParsePrefix("8.8.0.0/16")
	rib := &RIB{Announcements: []Announcement{
		{Prefix: p, Origin: 10, Presence: 0.9},
		{Prefix: p, Origin: 20, Presence: 0.8},
	}}
	m := BuildIP2AS(0, rib)
	asns := m.Lookup(p.First())
	if len(asns) != 2 || asns[0] != 10 || asns[1] != 20 {
		t.Fatalf("MOAS lookup = %v", asns)
	}
	one, ok := m.LookupOne(p.First())
	if !ok || one != 10 {
		t.Fatalf("LookupOne = %d, %v", one, ok)
	}
}

func TestIP2ASBogonsDropped(t *testing.T) {
	rib := &RIB{Announcements: []Announcement{
		{Prefix: netmodel.MustParsePrefix("10.0.0.0/8"), Origin: 5, Presence: 0.9},
	}}
	m := BuildIP2AS(0, rib)
	if m.Len() != 0 {
		t.Fatal("bogon announcement survived the pipeline")
	}
	if got := m.Lookup(netmodel.MustParseIP("10.1.1.1")); got != nil {
		t.Fatalf("bogon lookup = %v", got)
	}
}

func TestIP2ASMergesCollectors(t *testing.T) {
	p := netmodel.MustParsePrefix("9.0.0.0/16")
	q := netmodel.MustParsePrefix("11.0.0.0/16")
	rv := &RIB{Collector: RouteViews, Announcements: []Announcement{{Prefix: p, Origin: 1, Presence: 0.9}}}
	ris := &RIB{Collector: RIPERIS, Announcements: []Announcement{{Prefix: q, Origin: 2, Presence: 0.9}}}
	m := BuildIP2AS(0, rv, ris)
	if m.Len() != 2 {
		t.Fatalf("merged table has %d prefixes", m.Len())
	}
	if asns := m.Lookup(q.First()); len(asns) != 1 || asns[0] != 2 {
		t.Fatalf("RIS-only prefix lookup = %v", asns)
	}
}

func TestBuildMonthlyMapsMostOwnedSpace(t *testing.T) {
	g := testGraph(t)
	alloc, _ := NewAllocator(g, 5)
	last := timeline.Snapshot(timeline.Count() - 1)
	m := BuildMonthly(g, alloc, last, DefaultNoise(), 9)

	total, correct := 0, 0
	for _, as := range alloc.AllASes() {
		if !g.Active(as, last) {
			continue
		}
		for _, p := range alloc.PrefixesOf(as) {
			total++
			asns := m.Lookup(p.First())
			for _, a := range asns {
				if a == as {
					correct++
					break
				}
			}
		}
	}
	frac := float64(correct) / float64(total)
	if frac < 0.95 {
		t.Fatalf("only %.1f%% of owned prefixes map to the true owner", 100*frac)
	}
}

func TestIP2ASWalkOrdered(t *testing.T) {
	g := testGraph(t)
	alloc, _ := NewAllocator(g, 5)
	m := BuildMonthly(g, alloc, 0, DefaultNoise(), 9)
	var prev netmodel.Prefix
	first := true
	m.Walk(func(p netmodel.Prefix, asns []astopo.ASN) bool {
		if len(asns) == 0 {
			t.Fatal("prefix mapped to no AS")
		}
		if !first && p.Addr < prev.Addr {
			t.Fatal("walk not in address order")
		}
		prev, first = p, false
		return true
	})
}

func TestIP2ASLookupNeverPanicsQuick(t *testing.T) {
	g := testGraph(t)
	alloc, _ := NewAllocator(g, 5)
	m := BuildMonthly(g, alloc, 10, DefaultNoise(), 9)
	f := func(raw uint32) bool {
		asns := m.Lookup(netmodel.IP(raw))
		one, ok := m.LookupOne(netmodel.IP(raw))
		if len(asns) == 0 {
			return !ok
		}
		return ok && one == asns[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
