package bgpsim

import (
	"strings"
	"testing"
)

func FuzzReadRIB(f *testing.F) {
	f.Add("# offnetscope rib collector=routeviews snapshot=2019-10\n1.2.3.0/24|5|0.9\n")
	f.Add("1.2.3.0/24|5|0.9\n10.0.0.0/8|7|0.1")
	f.Add("garbage")
	f.Add("1.2.3.0/24|5|1.5")
	f.Fuzz(func(t *testing.T, input string) {
		rib, err := ReadRIB(strings.NewReader(input))
		if err != nil {
			return
		}
		// Whatever parses must be internally consistent and re-serialize.
		for _, ann := range rib.Announcements {
			if ann.Presence < 0 || ann.Presence > 1 {
				t.Fatalf("parsed out-of-range presence %v", ann.Presence)
			}
			if !ann.Prefix.IsCanonical() {
				t.Fatalf("parsed non-canonical prefix %v", ann.Prefix)
			}
		}
		var sb strings.Builder
		if err := WriteRIB(&sb, rib); err != nil {
			t.Fatalf("re-serialization failed: %v", err)
		}
	})
}
