package bgpsim

import (
	"bytes"
	"strings"
	"testing"

	"offnetscope/internal/astopo"
)

func TestRIBRoundTrip(t *testing.T) {
	g := astopo.Generate(astopo.GenConfig{Seed: 5, FinalASes: 300})
	alloc, _ := NewAllocator(g, 5)
	rib := BuildRIB(g, alloc, RouteViews, 12, DefaultNoise(), 9)

	var buf bytes.Buffer
	if err := WriteRIB(&buf, rib); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRIB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Collector != RouteViews || back.Snapshot != 12 {
		t.Fatalf("header lost: %s %v", back.Collector, back.Snapshot)
	}
	if len(back.Announcements) != len(rib.Announcements) {
		t.Fatalf("announcement counts differ: %d vs %d", len(back.Announcements), len(rib.Announcements))
	}
	for i := range rib.Announcements {
		a, b := rib.Announcements[i], back.Announcements[i]
		if a.Prefix != b.Prefix || a.Origin != b.Origin {
			t.Fatalf("announcement %d differs", i)
		}
		if diff := a.Presence - b.Presence; diff > 0.001 || diff < -0.001 {
			t.Fatalf("presence %d drifted: %v vs %v", i, a.Presence, b.Presence)
		}
	}
	// The parsed RIB feeds the pipeline identically.
	m1 := BuildIP2AS(12, rib)
	m2 := BuildIP2AS(12, back)
	if m1.Len() != m2.Len() {
		t.Fatalf("IP2AS sizes differ: %d vs %d", m1.Len(), m2.Len())
	}
}

func TestReadRIBRejectsGarbage(t *testing.T) {
	bad := []string{
		"1.2.3.0/24|0|0.5", // origin must be positive
		"1.2.3.0/24|x|0.5", // bad origin
		"1.2.3.0/24|5|1.5", // presence out of range
		"1.2.3.0/24|5",     // arity
		"nonsense",
		"500.2.3.0/24|5|0.5", // bad prefix
	}
	for _, in := range bad {
		if _, err := ReadRIB(strings.NewReader(in)); err == nil {
			t.Errorf("input %q parsed without error", in)
		}
	}
}
