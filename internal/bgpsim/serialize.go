package bgpsim

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"offnetscope/internal/astopo"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/timeline"
)

// RIB serialization, playing the role of the monthly RouteViews / RIPE
// RIS aggregates the paper downloads: one line per (prefix, origin)
// observation with its visible-fraction-of-month.

// WriteRIB serializes a monthly RIB: "prefix|origin|presence".
func WriteRIB(w io.Writer, rib *RIB) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# offnetscope rib collector=%s snapshot=%s\n", rib.Collector, rib.Snapshot.Label())
	for _, ann := range rib.Announcements {
		fmt.Fprintf(bw, "%s|%d|%.4f\n", ann.Prefix, ann.Origin, ann.Presence)
	}
	return bw.Flush()
}

// ReadRIB parses WriteRIB output.
func ReadRIB(r io.Reader) (*RIB, error) {
	rib := &RIB{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			for _, field := range strings.Fields(text) {
				if v, ok := strings.CutPrefix(field, "collector="); ok {
					rib.Collector = Collector(v)
				}
				if v, ok := strings.CutPrefix(field, "snapshot="); ok {
					if s, okk := timeline.FromLabel(v); okk {
						rib.Snapshot = s
					}
				}
			}
			continue
		}
		parts := strings.Split(text, "|")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bgpsim: line %d: bad announcement %q", line, text)
		}
		prefix, err := netmodel.ParsePrefix(parts[0])
		if err != nil {
			return nil, fmt.Errorf("bgpsim: line %d: %w", line, err)
		}
		origin, err := strconv.Atoi(parts[1])
		if err != nil || origin <= 0 {
			return nil, fmt.Errorf("bgpsim: line %d: bad origin %q", line, parts[1])
		}
		presence, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || presence < 0 || presence > 1 {
			return nil, fmt.Errorf("bgpsim: line %d: bad presence %q", line, parts[2])
		}
		rib.Announcements = append(rib.Announcements, Announcement{
			Prefix: prefix, Origin: astopo.ASN(origin), Presence: presence,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bgpsim: %w", err)
	}
	return rib, nil
}
