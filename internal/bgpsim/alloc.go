// Package bgpsim provides the BGP substrate of the study: IPv4 address
// allocation to ASes, monthly RIB snapshots from two route collectors
// (RouteViews- and RIPE-RIS-like) including MOAS, hijack and route-leak
// noise, and the paper's appendix-A.1 IP-to-AS pipeline — bogon
// filtering, a ≥25 %-of-month stability filter, and a merge of the two
// collectors into a longest-prefix-match table.
package bgpsim

import (
	"fmt"
	"sort"

	"offnetscope/internal/astopo"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/rng"
	"offnetscope/internal/timeline"
)

// Allocator owns the mapping from ASes to the IPv4 prefixes they
// originate. Allocation is deterministic in (graph, seed): address space
// is carved sequentially from 1.0.0.0 upward, skipping IANA
// special-purpose ranges, with block sizes scaled to the AS's size
// category so large eyeballs own far more addresses than stubs.
type Allocator struct {
	prefixes map[astopo.ASN][]netmodel.Prefix
	owner    netmodel.Trie[astopo.ASN]
}

// Plan describes an AS's allocation: how many blocks of which size.
type Plan struct {
	Blocks int
	Length int
}

// allocation plan per category: number of blocks and block prefix length.
var allocPlan = map[astopo.Category]Plan{
	astopo.Stub:   {1, 23},
	astopo.Small:  {1, 22},
	astopo.Medium: {2, 21},
	astopo.Large:  {3, 18},
	astopo.XLarge: {4, 15},
}

// PlanForCategory returns the default allocation plan for a size
// category.
func PlanForCategory(c astopo.Category) Plan { return allocPlan[c] }

// NewAllocator assigns address space to every AS in the graph, sized by
// the AS's category at the final snapshot.
func NewAllocator(g *astopo.Graph, seed uint64) (*Allocator, error) {
	return NewAllocatorFunc(g, seed, nil)
}

// NewAllocatorFunc is NewAllocator with per-AS plan overrides: when
// planFor returns a non-zero Plan for an AS it replaces the
// category-derived default. Hypergiant on-net ASes use this to receive
// datacenter-sized blocks despite having no customer cone.
func NewAllocatorFunc(g *astopo.Graph, seed uint64, planFor func(astopo.ASN) Plan) (*Allocator, error) {
	rnd := rng.New(seed).Fork("bgpsim/alloc")
	last := timeline.Snapshot(timeline.Count() - 1)
	a := &Allocator{prefixes: make(map[astopo.ASN][]netmodel.Prefix, g.NumASes())}

	cursor := uint64(netmodel.MustParseIP("1.0.0.0"))
	carve := func(length int) (netmodel.Prefix, error) {
		size := uint64(1) << (32 - length)
		for {
			cursor = (cursor + size - 1) / size * size // align
			if cursor+size > 1<<32 {
				return netmodel.Prefix{}, fmt.Errorf("bgpsim: IPv4 space exhausted")
			}
			p := netmodel.MakePrefix(netmodel.IP(cursor), length)
			cursor += size
			if !netmodel.IsBogonPrefix(p) {
				return p, nil
			}
		}
	}

	for i := 1; i <= g.NumASes(); i++ {
		as := astopo.ASN(i)
		var plan Plan
		if planFor != nil {
			plan = planFor(as)
		}
		if plan.Blocks == 0 {
			plan = allocPlan[g.CategoryOf(as, last)]
		}
		n := plan.Blocks
		if n > 1 && rnd.Bool(0.3) {
			n-- // some ASes announce fewer, larger-than-needed blocks
		}
		for b := 0; b < n; b++ {
			p, err := carve(plan.Length)
			if err != nil {
				return nil, err
			}
			a.prefixes[as] = append(a.prefixes[as], p)
			a.owner.Insert(p, as)
		}
	}
	return a, nil
}

// PrefixesOf returns the prefixes allocated to as.
func (a *Allocator) PrefixesOf(as astopo.ASN) []netmodel.Prefix {
	return a.prefixes[as]
}

// TrueOwner returns the AS that genuinely owns ip (ground truth,
// independent of BGP noise).
func (a *Allocator) TrueOwner(ip netmodel.IP) (astopo.ASN, bool) {
	return a.owner.Lookup(ip)
}

// NumPrefixes returns the total number of allocated prefixes.
func (a *Allocator) NumPrefixes() int { return a.owner.Len() }

// AllASes returns every AS holding at least one prefix, sorted.
func (a *Allocator) AllASes() []astopo.ASN {
	out := make([]astopo.ASN, 0, len(a.prefixes))
	for as := range a.prefixes {
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
