package bgpsim

import (
	"sort"

	"offnetscope/internal/astopo"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/rng"
	"offnetscope/internal/timeline"
)

// Collector identifies a route-collector project.
type Collector string

// The two collector projects the paper merges (§A.1).
const (
	RouteViews Collector = "routeviews"
	RIPERIS    Collector = "ripe-ris"
)

// Announcement is one (prefix, origin) pair aggregated over a monthly
// collector snapshot. Presence is the fraction of the month the mapping
// was visible; the paper keeps mappings seen ≥25 % of the time to shed
// hijacks and leaks (fewer than 2 % of hijacks last longer than a week).
type Announcement struct {
	Prefix   netmodel.Prefix
	Origin   astopo.ASN
	Presence float64
}

// RIB is one collector's monthly aggregate.
type RIB struct {
	Collector     Collector
	Snapshot      timeline.Snapshot
	Announcements []Announcement
}

// NoiseConfig tunes the disturbances injected into RIBs.
type NoiseConfig struct {
	// HijackRate is the per-prefix probability of a short-lived
	// (sub-week) hijack by a random AS appearing in the month.
	HijackRate float64
	// LeakRate is the per-prefix probability of a route leak that
	// briefly re-originates the prefix from a provider.
	LeakRate float64
	// MOASRate is the per-AS probability that one of its prefixes is
	// legitimately co-originated by a sibling AS all month.
	MOASRate float64
	// MissRate is the per-prefix probability a collector misses the
	// announcement entirely that month (visibility gaps).
	MissRate float64
	// BogonRate is the probability of a stray bogon announcement
	// polluting the RIB.
	BogonRate float64
}

// DefaultNoise mirrors observed magnitudes: hijacks and leaks are rare
// and short; collector visibility gaps are a little more common.
func DefaultNoise() NoiseConfig {
	return NoiseConfig{
		HijackRate: 0.004,
		LeakRate:   0.002,
		MOASRate:   0.01,
		MissRate:   0.01,
		BogonRate:  0.002,
	}
}

// BuildRIB produces a collector's monthly RIB for snapshot s: every
// active AS announces its prefixes near-continuously, plus injected
// noise. Deterministic in (graph, alloc, collector, snapshot, seed).
func BuildRIB(g *astopo.Graph, alloc *Allocator, col Collector, s timeline.Snapshot, noise NoiseConfig, seed uint64) *RIB {
	rnd := rng.New(seed).Fork("bgpsim/rib/" + string(col) + "/" + s.Label())
	rib := &RIB{Collector: col, Snapshot: s}
	numASes := g.NumASes()

	for i := 1; i <= numASes; i++ {
		as := astopo.ASN(i)
		if !g.Active(as, s) {
			continue
		}
		prefixes := alloc.PrefixesOf(as)
		moasSibling := astopo.ASN(0)
		if rnd.Bool(noise.MOASRate) {
			moasSibling = astopo.ASN(rnd.Intn(numASes) + 1)
		}
		for _, p := range prefixes {
			if rnd.Bool(noise.MissRate) {
				continue
			}
			rib.Announcements = append(rib.Announcements, Announcement{
				Prefix:   p,
				Origin:   as,
				Presence: 0.92 + 0.08*rnd.Float64(),
			})
			if moasSibling != 0 && g.Active(moasSibling, s) {
				rib.Announcements = append(rib.Announcements, Announcement{
					Prefix:   p,
					Origin:   moasSibling,
					Presence: 0.8 + 0.2*rnd.Float64(),
				})
			}
			if rnd.Bool(noise.HijackRate) {
				hijacker := astopo.ASN(rnd.Intn(numASes) + 1)
				rib.Announcements = append(rib.Announcements, Announcement{
					Prefix:   p,
					Origin:   hijacker,
					Presence: 0.01 + 0.2*rnd.Float64(), // < 25 % of the month
				})
			}
			if rnd.Bool(noise.LeakRate) {
				providers := g.Providers(as)
				if len(providers) > 0 {
					rib.Announcements = append(rib.Announcements, Announcement{
						Prefix:   p,
						Origin:   rng.Pick(rnd, providers),
						Presence: 0.01 + 0.15*rnd.Float64(),
					})
				}
			}
		}
	}

	if rnd.Bool(noise.BogonRate * 100) { // scale: a handful per month
		bogons := netmodel.Bogons()
		for k := 0; k < 3; k++ {
			rib.Announcements = append(rib.Announcements, Announcement{
				Prefix:   bogons[rnd.Intn(len(bogons))],
				Origin:   astopo.ASN(rnd.Intn(numASes) + 1),
				Presence: 0.5,
			})
		}
	}
	return rib
}

// IP2AS is the monthly IP-to-AS longest-prefix-match table produced by
// the appendix-A.1 pipeline. MOAS prefixes map to multiple origins.
type IP2AS struct {
	snapshot timeline.Snapshot
	trie     netmodel.Trie[[]astopo.ASN]
}

// Snapshot returns the month the table describes.
func (m *IP2AS) Snapshot() timeline.Snapshot { return m.snapshot }

// Len returns the number of mapped prefixes.
func (m *IP2AS) Len() int { return m.trie.Len() }

// Lookup maps an IP to its origin AS(es) by longest-prefix match. The
// slice has length >1 only for MOAS prefixes. Bogon addresses never
// resolve.
func (m *IP2AS) Lookup(ip netmodel.IP) []astopo.ASN {
	if netmodel.IsBogon(ip) {
		return nil
	}
	asns, _ := m.trie.Lookup(ip)
	return asns
}

// LookupOne maps an IP to a single origin AS, choosing the lowest ASN
// for MOAS prefixes so results are deterministic.
func (m *IP2AS) LookupOne(ip netmodel.IP) (astopo.ASN, bool) {
	asns := m.Lookup(ip)
	if len(asns) == 0 {
		return 0, false
	}
	return asns[0], true
}

// Walk visits every mapped prefix in address order.
func (m *IP2AS) Walk(fn func(netmodel.Prefix, []astopo.ASN) bool) {
	m.trie.Walk(fn)
}

// MinPresence is the appendix-A.1 stability threshold: a mapping must be
// visible at least 25 % of the month (~one week).
const MinPresence = 0.25

// BuildIP2AS merges monthly RIBs from multiple collectors into one
// IP-to-AS table: bogon prefixes are dropped, mappings below MinPresence
// are dropped (per collector), and surviving conflicting origins for the
// same prefix are all kept as MOAS.
func BuildIP2AS(s timeline.Snapshot, ribs ...*RIB) *IP2AS {
	origins := make(map[netmodel.Prefix]map[astopo.ASN]struct{})
	for _, rib := range ribs {
		for _, ann := range rib.Announcements {
			if ann.Presence < MinPresence {
				continue
			}
			if netmodel.IsBogonPrefix(ann.Prefix) {
				continue
			}
			set := origins[ann.Prefix]
			if set == nil {
				set = make(map[astopo.ASN]struct{})
				origins[ann.Prefix] = set
			}
			set[ann.Origin] = struct{}{}
		}
	}
	m := &IP2AS{snapshot: s}
	for p, set := range origins {
		asns := make([]astopo.ASN, 0, len(set))
		for as := range set {
			asns = append(asns, as)
		}
		sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
		m.trie.Insert(p, asns)
	}
	return m
}

// BuildMonthly runs the whole pipeline for one snapshot: both collectors'
// RIBs are generated and merged.
func BuildMonthly(g *astopo.Graph, alloc *Allocator, s timeline.Snapshot, noise NoiseConfig, seed uint64) *IP2AS {
	rv := BuildRIB(g, alloc, RouteViews, s, noise, seed)
	ris := BuildRIB(g, alloc, RIPERIS, s, noise, seed)
	return BuildIP2AS(s, rv, ris)
}
