package dnssim

import (
	"testing"

	"offnetscope/internal/astopo"
	"offnetscope/internal/hg"
	"offnetscope/internal/timeline"
	"offnetscope/internal/worldsim"
)

var (
	testWorld = func() *worldsim.World {
		w, err := worldsim.New(worldsim.Config{Seed: 42, Scale: 0.03})
		if err != nil {
			panic(err)
		}
		return w
	}()
	testResolver = New(testWorld)
)

func lastS() timeline.Snapshot { return timeline.Snapshot(timeline.Count() - 1) }

func TestResolveSteersToLocalOffNet(t *testing.T) {
	s := lastS()
	hosting := testWorld.TrueOffNetASes(hg.Google, s)
	if len(hosting) == 0 {
		t.Fatal("no Google off-nets")
	}
	client := hosting[0]
	ans := testResolver.Resolve("www.googlevideo.com", client, s)
	if ans.NXDomain || len(ans.IPs) == 0 {
		t.Fatal("no answer for a hosted client")
	}
	owner, ok := testWorld.Alloc().TrueOwner(ans.IPs[0])
	if !ok || owner != client {
		t.Fatalf("steered to AS %d, want the client's own AS %d", owner, client)
	}
	// The answer IP really is a serving host with a Google certificate.
	h, ok := testWorld.HostAt(ans.IPs[0], s)
	if !ok || h.Chain == nil || !h.Chain.Leaf().MatchesOrganization("google") {
		t.Fatal("DNS answer does not point at a Google server")
	}
}

func TestResolveFallsBackToOnNet(t *testing.T) {
	s := lastS()
	// Find an eyeball AS hosting nothing and whose providers host
	// nothing either.
	hosting := make(map[uint32]bool)
	for _, as := range testWorld.TrueOffNetASes(hg.Google, s) {
		hosting[uint32(as)] = true
	}
	g := testWorld.Graph()
	var client uint32
	for i := 1; i <= g.NumASes(); i++ {
		if hosting[uint32(i)] || !g.Active(astopo.ASN(i), s) {
			continue
		}
		clean := true
		for _, p := range g.Providers(astopo.ASN(i)) {
			if hosting[uint32(p)] {
				clean = false
				break
			}
		}
		if clean {
			client = uint32(i)
			break
		}
	}
	if client == 0 {
		t.Skip("every AS is near an off-net in this world")
	}
	ans := testResolver.Resolve("www.google.com", astopo.ASN(client), s)
	if len(ans.IPs) == 0 {
		t.Fatal("no on-net fallback answer")
	}
	owner, _ := testWorld.Alloc().TrueOwner(ans.IPs[0])
	if id, ok := testWorld.HGOfOnNetAS(owner); !ok || id != hg.Google {
		t.Fatalf("fallback answer not on-net: AS %d", owner)
	}
}

func TestResolveUnknownName(t *testing.T) {
	ans := testResolver.Resolve("www.unknown-site.example", 1, lastS())
	if !ans.NXDomain {
		t.Fatal("unknown name should be NXDOMAIN")
	}
}

func TestECSWindow(t *testing.T) {
	s := timeline.Snapshot(5) // pre-cutoff
	hosting := testWorld.TrueOffNetASes(hg.Google, s)
	if len(hosting) == 0 {
		t.Fatal("no Google off-nets pre-cutoff")
	}
	prefix := testWorld.Alloc().PrefixesOf(hosting[0])[0]

	// Before the cutoff, ECS reveals the in-network cache.
	ans := testResolver.ResolveECS("www.googlevideo.com", prefix, s)
	owner, _ := testWorld.Alloc().TrueOwner(ans.IPs[0])
	if owner != hosting[0] {
		t.Fatalf("pre-cutoff ECS steered to AS %d, want %d", owner, hosting[0])
	}

	// From 2016-04 on, ECS only ever sees on-net (the lockdown that
	// broke the technique).
	late := lastS()
	lateHosting := testWorld.TrueOffNetASes(hg.Google, late)
	prefix = testWorld.Alloc().PrefixesOf(lateHosting[0])[0]
	ans = testResolver.ResolveECS("www.googlevideo.com", prefix, late)
	owner, _ = testWorld.Alloc().TrueOwner(ans.IPs[0])
	if id, ok := testWorld.HGOfOnNetAS(owner); !ok || id != hg.Google {
		t.Fatalf("post-cutoff ECS leaked an off-net in AS %d", owner)
	}

	// Netflix never supported ECS.
	nf := testWorld.TrueOffNetASes(hg.Netflix, s)
	if len(nf) > 0 {
		prefix = testWorld.Alloc().PrefixesOf(nf[0])[0]
		ans = testResolver.ResolveECS("www.nflxvideo.net", prefix, s)
		owner, _ = testWorld.Alloc().TrueOwner(ans.IPs[0])
		if id, ok := testWorld.HGOfOnNetAS(owner); !ok || id != hg.Netflix {
			t.Fatal("Netflix ECS should be ignored (on-net answer)")
		}
	}
}

func TestFNAResolution(t *testing.T) {
	s := lastS()
	hosting := testWorld.TrueOffNetASes(hg.Facebook, s)
	if len(hosting) == 0 {
		t.Fatal("no Facebook off-nets")
	}
	as := hosting[0]
	name, ok := testResolver.FNAName(as)
	if !ok {
		t.Fatalf("AS %d has no FNA name", as)
	}
	ans := testResolver.Resolve(name+"-c1.fna.fbcdn.net", 0, s)
	if ans.NXDomain || len(ans.IPs) == 0 {
		t.Fatalf("FNA name %q did not resolve", name)
	}
	owner, _ := testWorld.Alloc().TrueOwner(ans.IPs[0])
	if owner != as {
		t.Fatalf("FNA answer in AS %d, want %d", owner, as)
	}
	// A bogus site is NXDOMAIN; an existing site before Facebook's CDN
	// launch is NXDOMAIN too.
	if ans := testResolver.Resolve("zzz99-c1.fna.fbcdn.net", 0, s); !ans.NXDomain {
		t.Fatal("bogus FNA name resolved")
	}
	if ans := testResolver.Resolve(name+"-c1.fna.fbcdn.net", 0, 0); !ans.NXDomain {
		t.Fatal("FNA name resolved before the CDN existed")
	}
}

func TestFNANamesFollowCountryCodes(t *testing.T) {
	s := lastS()
	g := testWorld.Graph()
	for _, as := range testWorld.TrueOffNetASes(hg.Facebook, s) {
		name, ok := testResolver.FNAName(as)
		if !ok {
			t.Fatalf("AS %d unnamed", as)
		}
		found := false
		for _, code := range AirportCodesFor(g.Country(as)) {
			if len(name) > len(code) && name[:len(code)] == code {
				found = true
			}
		}
		if !found {
			t.Fatalf("AS %d (country %s) has out-of-country name %q", as, g.Country(as), name)
		}
	}
}
