// Package dnssim is the DNS control plane of the simulated world: the
// authoritative behaviour hypergiants use to steer clients to nearby
// servers. It exists to make the *earlier* mapping approaches the paper
// compares against (§1, §5) implementable as real algorithms:
//
//   - EDNS-Client-Subnet (ECS) queries, which let a measurer appear to
//     resolve from arbitrary prefixes (Calder et al.'s Google mapping) —
//     including the whitelisting and the post-2016 lockdown that broke
//     that technique;
//   - Facebook's FNA naming convention (<airport><n>-c<k>.fna.fbcdn.net),
//     which the community exploited by exhaustively guessing hostnames.
//
// The resolver consults world ground truth the way a hypergiant's own
// authoritative DNS does; measurement code (package baselines) only ever
// sees query/answer pairs.
package dnssim

import (
	"fmt"
	"sort"
	"strings"

	"offnetscope/internal/astopo"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/timeline"
	"offnetscope/internal/worldsim"
)

// ECSCutoff is when Google stopped answering ECS queries for its
// user-facing domains with off-net addresses (§1: "even Google ... now
// only responds ... with IP addresses of on-net servers").
const ECSCutoff = timeline.Snapshot(10) // 2016-04

// Resolver is the hypergiants' authoritative DNS for the world.
type Resolver struct {
	w *worldsim.World
	// fna maps (code, idx) → Facebook hosting AS, and its inverse.
	fnaByName map[string]astopo.ASN
	fnaOfAS   map[astopo.ASN]string
}

// New builds the resolver, assigning every Facebook hosting AS (over the
// whole study) an FNA site name derived from its country — the naming
// convention the guessing attack exploits.
func New(w *worldsim.World) *Resolver {
	r := &Resolver{
		w:         w,
		fnaByName: make(map[string]astopo.ASN),
		fnaOfAS:   make(map[astopo.ASN]string),
	}
	// All-time Facebook hosting ASes in deterministic order.
	seen := make(map[astopo.ASN]struct{})
	var all []astopo.ASN
	for _, s := range timeline.All() {
		for _, as := range w.TrueOffNetASes(hg.Facebook, s) {
			if _, ok := seen[as]; !ok {
				seen[as] = struct{}{}
				all = append(all, as)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	counter := make(map[string]int)
	for _, as := range all {
		code := siteCode(w.Graph().Country(as), uint64(as))
		counter[code]++
		name := fmt.Sprintf("%s%d", code, counter[code])
		r.fnaByName[name] = as
		r.fnaOfAS[as] = name
	}
	return r
}

// siteCode derives a 3-letter airport-style site code from the country:
// one of AirportCodesFor(country). Which one a given AS gets is
// deterministic but not public; the guessing attack enumerates all of
// them.
func siteCode(country string, h uint64) string {
	codes := AirportCodesFor(country)
	return codes[h%uint64(len(codes))]
}

// AirportCodesFor lists the site codes used in a country — the "global
// airport codes" list the naming attack iterates over. Public knowledge.
func AirportCodesFor(country string) []string {
	cc := strings.ToLower(country)
	if len(cc) != 2 {
		cc = "zz"
	}
	return []string{cc + "a", cc + "b", cc + "c"}
}

// Answer is one DNS response.
type Answer struct {
	IPs []netmodel.IP
	// NXDomain marks a name that does not exist.
	NXDomain bool
}

// ownerOf maps a query name to the hypergiant serving it.
func ownerOf(qname string) (hg.ID, bool) {
	for _, h := range hg.All() {
		for _, pat := range h.Domains {
			if hg.MatchDomain(pat, qname) {
				return h.ID, true
			}
		}
	}
	return hg.None, false
}

// Resolve answers qname for a client inside clientAS at snapshot s,
// steering to the off-net inside the client's network when one exists,
// then to an off-net at a provider, then to on-net.
func (r *Resolver) Resolve(qname string, clientAS astopo.ASN, s timeline.Snapshot) Answer {
	qname = strings.ToLower(qname)
	if strings.HasSuffix(qname, ".fna.fbcdn.net") {
		return r.resolveFNA(qname, s)
	}
	id, ok := ownerOf(qname)
	if !ok {
		return Answer{NXDomain: true}
	}
	return Answer{IPs: r.steer(id, clientAS, s)}
}

// ResolveECS answers an EDNS-Client-Subnet query: the client pretends to
// sit inside ecs. Hypergiants that do not support ECS (most, §1) answer
// as if the query came from the resolver itself (on-net); Google
// supported it until ECSCutoff.
func (r *Resolver) ResolveECS(qname string, ecs netmodel.Prefix, s timeline.Snapshot) Answer {
	qname = strings.ToLower(qname)
	id, ok := ownerOf(qname)
	if !ok {
		return Answer{NXDomain: true}
	}
	supportsECS := id == hg.Google && s < ECSCutoff
	if !supportsECS {
		return Answer{IPs: r.onNetIPs(id, s)}
	}
	clientAS, ok := r.w.Alloc().TrueOwner(ecs.Addr)
	if !ok {
		return Answer{IPs: r.onNetIPs(id, s)}
	}
	return Answer{IPs: r.steer(id, clientAS, s)}
}

// resolveFNA answers a Facebook FNA hostname such as "gba2-c1.fna.fbcdn.net".
// A fraction of sites only expose higher cluster numbers (-c2, -c3), one
// of the reasons the guessing attack never reached 100%.
func (r *Resolver) resolveFNA(qname string, s timeline.Snapshot) Answer {
	rest, ok := strings.CutSuffix(qname, ".fna.fbcdn.net")
	if !ok {
		return Answer{NXDomain: true}
	}
	site, cluster, ok := strings.Cut(rest, "-c")
	if !ok {
		return Answer{NXDomain: true}
	}
	as, ok := r.fnaByName[site]
	if !ok {
		return Answer{NXDomain: true}
	}
	// ~8% of sites answer only on cluster 2.
	onlyC2 := uint64(as)*0xbf58476d1ce4e5b9>>56%100 < 8
	if onlyC2 && cluster == "1" || !onlyC2 && cluster != "1" && cluster != "2" {
		return Answer{NXDomain: true}
	}
	ips := r.offNetIPsIn(hg.Facebook, as, s)
	if len(ips) == 0 {
		return Answer{NXDomain: true} // site not (yet/anymore) deployed
	}
	return Answer{IPs: ips}
}

// FNAName exposes the site name of a hosting AS — ground truth used only
// by tests.
func (r *Resolver) FNAName(as astopo.ASN) (string, bool) {
	name, ok := r.fnaOfAS[as]
	return name, ok
}

// steer picks the closest serving IPs for a client: in-network off-net →
// provider's off-net → on-net.
func (r *Resolver) steer(id hg.ID, clientAS astopo.ASN, s timeline.Snapshot) []netmodel.IP {
	if ips := r.offNetIPsIn(id, clientAS, s); len(ips) > 0 {
		return ips
	}
	providers := append([]astopo.ASN(nil), r.w.Graph().Providers(clientAS)...)
	sort.Slice(providers, func(i, j int) bool { return providers[i] < providers[j] })
	for _, p := range providers {
		if ips := r.offNetIPsIn(id, p, s); len(ips) > 0 {
			return ips
		}
	}
	return r.onNetIPs(id, s)
}

// offNetIPsIn returns the hypergiant's off-net IPs inside as, if deployed.
func (r *Resolver) offNetIPsIn(id hg.ID, as astopo.ASN, s timeline.Snapshot) []netmodel.IP {
	deployed := false
	for _, a := range r.w.TrueOffNetASes(id, s) {
		if a == as {
			deployed = true
			break
		}
	}
	if !deployed {
		return nil
	}
	prefixes := r.w.Alloc().PrefixesOf(as)
	if len(prefixes) == 0 {
		return nil
	}
	base := prefixes[0].Addr
	// Two user-facing cache IPs per site (the layout's off-net slots).
	slot := netmodel.IP(10 + (int(id)-1)*8)
	return []netmodel.IP{base + slot, base + slot + 1}
}

// onNetIPs returns a couple of the hypergiant's on-net front-end IPs.
func (r *Resolver) onNetIPs(id hg.ID, s timeline.Snapshot) []netmodel.IP {
	ases := r.w.OnNetASes(id)
	if len(ases) == 0 {
		return nil
	}
	prefixes := r.w.Alloc().PrefixesOf(ases[0])
	if len(prefixes) == 0 {
		return nil
	}
	return []netmodel.IP{prefixes[0].Addr + 256, prefixes[0].Addr + 257}
}
