package chaos

// HTTP-layer chaos: the network half of the fault-injection story. The
// byte-level Reader degrades what the pipeline *reads*; Transport and
// Proxy degrade what the serving stack *speaks* — latency spikes,
// connection resets, injected 5xx, truncated response bodies — so
// loadgen traffic can exercise a live daemon the way a hostile network
// would, reproducibly from one seed.
//
// Determinism under concurrency is the hard part: goroutine scheduling
// reorders requests run-to-run, so drawing faults from one shared
// stream would make every run different. Instead each request draws
// from a generator forked on (path, per-path occurrence index): the
// k-th GET /v1/snapshots sees the same faults in every run no matter
// how the scheduler interleaves it with other paths, and aggregate
// fault counts over a fixed request multiset are schedule-independent.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"offnetscope/internal/rng"
)

// FaultHeader marks responses whose fault was injected by this package
// (values: "injected-5xx", "truncated-body"), so a soak harness can
// budget injected faults separately from genuine server errors.
const FaultHeader = "X-Chaos-Fault"

// HTTPConfig tunes the HTTP-layer injectors. The zero value injects
// nothing: a zero-config Transport or Proxy is a transparent relay.
type HTTPConfig struct {
	// Seed roots the deterministic fault stream.
	Seed uint64
	// LatencyProb is the per-request (Transport) or per-connection
	// (Proxy) probability of an added latency spike, uniform in
	// [0, MaxLatency).
	LatencyProb float64
	// MaxLatency bounds the spike. Zero means 50ms.
	MaxLatency time.Duration
	// ResetProb is the probability of a simulated connection reset:
	// Transport fails the request with ECONNRESET before it reaches the
	// server; Proxy hard-closes (RST) the client connection after
	// forwarding a random prefix of the response bytes.
	ResetProb float64
	// Inject5xxProb is the Transport-only probability of replacing a
	// successful response with a marked 502.
	Inject5xxProb float64
	// TruncateProb is the Transport-only probability that the response
	// body is cut short mid-read (io.ErrUnexpectedEOF), Content-Length
	// intact — the shape of a torn response.
	TruncateProb float64
}

func (c HTTPConfig) maxLatency() time.Duration {
	if c.MaxLatency <= 0 {
		return 50 * time.Millisecond
	}
	return c.MaxLatency
}

// FaultCounts totals the faults an injector actually fired. With a
// fixed seed and a fixed request multiset the totals are reproducible
// run-to-run, which is what lets a soak report pin them exactly.
type FaultCounts struct {
	LatencySpikes   uint64 `json:"latency_spikes"`
	Resets          uint64 `json:"resets"`
	Injected5xx     uint64 `json:"injected_5xx"`
	TruncatedBodies uint64 `json:"truncated_bodies"`
}

// Transport is a fault-injecting http.RoundTripper. Wrap a client's
// transport with it and every request runs the seeded fault gauntlet
// before (reset, latency) and after (5xx, truncation) the real round
// trip. Safe for concurrent use.
type Transport struct {
	cfg  HTTPConfig
	base http.RoundTripper
	root *rng.RNG

	mu  sync.Mutex
	seq map[string]uint64 // per-path occurrence counter

	latencySpikes, resets        atomic.Uint64
	injected5xx, truncatedBodies atomic.Uint64
}

// NewTransport wraps base (nil: http.DefaultTransport) with the
// configured fault injector.
func NewTransport(base http.RoundTripper, cfg HTTPConfig) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{
		cfg:  cfg,
		base: base,
		root: rng.New(cfg.Seed),
		seq:  make(map[string]uint64),
	}
}

// CloseIdleConnections forwards to the base transport when it has the
// method. Without this, http.Client.CloseIdleConnections() silently
// does nothing through a chaos wrapper — the client type-asserts its
// transport for exactly this method.
func (t *Transport) CloseIdleConnections() {
	if ci, ok := t.base.(interface{ CloseIdleConnections() }); ok {
		ci.CloseIdleConnections()
	}
}

// Counts returns the faults fired so far.
func (t *Transport) Counts() FaultCounts {
	return FaultCounts{
		LatencySpikes:   t.latencySpikes.Load(),
		Resets:          t.resets.Load(),
		Injected5xx:     t.injected5xx.Load(),
		TruncatedBodies: t.truncatedBodies.Load(),
	}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	path := req.URL.Path
	t.mu.Lock()
	seq := t.seq[path]
	t.seq[path] = seq + 1
	t.mu.Unlock()
	// Fork is independent of parent consumption, so concurrent requests
	// drawing from siblings never perturb each other's streams.
	g := t.root.Fork("http:" + path + "#" + strconv.FormatUint(seq, 10))

	// Draw every decision up front, in a fixed order, so one fault
	// class's probability never shifts another's stream position.
	var spike time.Duration
	if t.cfg.LatencyProb > 0 && g.Bool(t.cfg.LatencyProb) {
		spike = time.Duration(g.Int63n(int64(t.cfg.maxLatency())))
	}
	reset := t.cfg.ResetProb > 0 && g.Bool(t.cfg.ResetProb)
	inject := t.cfg.Inject5xxProb > 0 && g.Bool(t.cfg.Inject5xxProb)
	truncate := t.cfg.TruncateProb > 0 && g.Bool(t.cfg.TruncateProb)

	if spike > 0 {
		t.latencySpikes.Add(1)
		select {
		case <-time.After(spike):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if reset {
		t.resets.Add(1)
		return nil, fmt.Errorf("chaos: injected reset: %w", syscall.ECONNRESET)
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if inject {
		resp.Body.Close()
		body := []byte(`{"error":"chaos: injected upstream failure"}`)
		hdr := make(http.Header)
		hdr.Set("Content-Type", "application/json")
		hdr.Set(FaultHeader, "injected-5xx")
		t.injected5xx.Add(1)
		return &http.Response{
			Status:        "502 Bad Gateway",
			StatusCode:    http.StatusBadGateway,
			Proto:         resp.Proto,
			ProtoMajor:    resp.ProtoMajor,
			ProtoMinor:    resp.ProtoMinor,
			Header:        hdr,
			Body:          io.NopCloser(bytes.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	if truncate {
		// Deliver a prefix then fail the read: Content-Length stays, so
		// the client observes a torn body, not a short-but-clean one.
		keep := int64(16)
		if resp.ContentLength > 1 {
			keep = resp.ContentLength / 2
		}
		resp.Header.Set(FaultHeader, "truncated-body")
		t.truncatedBodies.Add(1)
		resp.Body = &truncatedBody{rc: resp.Body, remain: keep}
	}
	return resp, nil
}

// truncatedBody delivers remain bytes then reports the torn-connection
// error a real mid-body reset produces.
type truncatedBody struct {
	rc     io.ReadCloser
	remain int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= int64(n)
	if err == nil && b.remain <= 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }

// Proxy is a fault-injecting TCP relay in front of a backend address:
// the listener-level complement to Transport, for faults that must
// happen on the wire (mid-response RST, connect-time latency) rather
// than inside the client process. Connections are keyed by accept
// order, so a sequential client sees a reproducible fault schedule.
type Proxy struct {
	cfg     HTTPConfig
	backend string
	ln      net.Listener
	root    *rng.RNG

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg      sync.WaitGroup
	connSeq atomic.Uint64

	latencySpikes, resets atomic.Uint64
}

// NewProxy listens on a fresh loopback port and relays every accepted
// connection to backend with the configured faults.
func NewProxy(backend string, cfg HTTPConfig) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		cfg:     cfg,
		backend: backend,
		ln:      ln,
		root:    rng.New(cfg.Seed),
		conns:   make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (dial this instead of the
// backend).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Counts returns the faults fired so far.
func (p *Proxy) Counts() FaultCounts {
	return FaultCounts{
		LatencySpikes: p.latencySpikes.Load(),
		Resets:        p.resets.Load(),
	}
}

// Close stops accepting, severs every live relay, and waits for the
// relay goroutines to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			// Only a closed listener ends the loop. Anything else
			// (EMFILE under connection churn, ECONNABORTED) is transient:
			// giving up would leave the listener open, and the kernel
			// keeps completing handshakes into the backlog — a silent
			// black hole where clients wait forever.
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		seq := p.connSeq.Add(1) - 1
		p.wg.Add(1)
		go p.relay(client, seq)
	}
}

func (p *Proxy) relay(client net.Conn, seq uint64) {
	defer p.wg.Done()
	defer client.Close()
	if !p.track(client) {
		return
	}
	defer p.untrack(client)

	g := p.root.Fork("proxy#" + strconv.FormatUint(seq, 10))
	var spike time.Duration
	if p.cfg.LatencyProb > 0 && g.Bool(p.cfg.LatencyProb) {
		spike = time.Duration(g.Int63n(int64(p.cfg.maxLatency())))
	}
	resetAfter := int64(-1)
	if p.cfg.ResetProb > 0 && g.Bool(p.cfg.ResetProb) {
		resetAfter = g.Int63n(2048)
	}

	backend, err := net.Dial("tcp", p.backend)
	if err != nil {
		return
	}
	defer backend.Close()
	if !p.track(backend) {
		return
	}
	defer p.untrack(backend)

	if spike > 0 {
		p.latencySpikes.Add(1)
		time.Sleep(spike)
	}

	// Upstream copy runs aside; it unblocks when either side closes,
	// which the deferred Closes above guarantee on every exit path.
	// The client's FIN is propagated with CloseWrite so the backend
	// tears its side down immediately instead of idling until its own
	// timeout — otherwise every churned client connection pins two
	// proxy file descriptors for the backend's full idle window, and a
	// busy run exhausts the fd limit.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		io.Copy(backend, client) //nolint:errcheck — severed on purpose
		if tc, ok := backend.(*net.TCPConn); ok {
			tc.CloseWrite() //nolint:errcheck — best effort
		}
	}()

	if resetAfter >= 0 {
		io.CopyN(client, backend, resetAfter) //nolint:errcheck — partial on purpose
		p.resets.Add(1)
		// SetLinger(0) turns the close into a genuine RST on the wire,
		// so the client sees ECONNRESET, not a clean FIN.
		if tc, ok := client.(*net.TCPConn); ok {
			tc.SetLinger(0) //nolint:errcheck — best effort
		}
		return
	}
	io.Copy(client, backend) //nolint:errcheck — relay ends with either side
}
