package chaos

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func payload(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i * 31)
	}
	return data
}

// A zero config must be a transparent pass-through.
func TestZeroConfigPassesThrough(t *testing.T) {
	data := payload(64 << 10)
	got, err := io.ReadAll(NewReader(bytes.NewReader(data), Config{}, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("zero-config reader altered the stream")
	}
}

// The fault stream is a pure function of (seed, label): same pair, same
// corruption; different pair, different corruption.
func TestDeterminism(t *testing.T) {
	data := payload(32 << 10)
	cfg := Config{Seed: 7, BitFlipRate: 0.01, TruncateProb: 0.5, TruncateWindow: 16 << 10}
	a := Corrupt(data, cfg, "x")
	b := Corrupt(data, cfg, "x")
	if !bytes.Equal(a, b) {
		t.Fatal("identical (seed, label) produced different corruption")
	}
	c := Corrupt(data, cfg, "y")
	if bytes.Equal(a, c) {
		t.Fatal("different labels produced identical corruption")
	}
	cfg.Seed = 8
	d := Corrupt(data, cfg, "x")
	if bytes.Equal(a, d) {
		t.Fatal("different seeds produced identical corruption")
	}
}

func TestBitFlips(t *testing.T) {
	data := payload(64 << 10)
	got := Corrupt(data, Config{Seed: 3, BitFlipRate: 0.01}, "f")
	if len(got) != len(data) {
		t.Fatalf("length changed: %d vs %d", len(got), len(data))
	}
	flipped := 0
	for i := range data {
		if got[i] != data[i] {
			flipped++
			// Exactly one bit per hit byte.
			if x := got[i] ^ data[i]; x&(x-1) != 0 {
				t.Fatalf("byte %d had multiple bits flipped: %08b", i, x)
			}
		}
	}
	// ~655 expected at 1%; allow a wide deterministic band.
	if flipped < 300 || flipped > 1200 {
		t.Fatalf("flipped %d/%d bytes at rate 0.01", flipped, len(data))
	}
}

func TestTruncation(t *testing.T) {
	data := payload(1 << 20)
	cfg := Config{Seed: 11, TruncateProb: 1, TruncateWindow: 4096}
	got := Corrupt(data, cfg, "f")
	if len(got) >= 4096 {
		t.Fatalf("stream not truncated inside window: got %d bytes", len(got))
	}
	if !bytes.Equal(got, data[:len(got)]) {
		t.Fatal("truncation altered the surviving prefix")
	}
}

// Transient errors must not consume input: a retrying reader recovers
// the full stream.
func TestTransientErrorsAreRetryable(t *testing.T) {
	data := payload(64 << 10)
	r := NewReader(bytes.NewReader(data), Config{Seed: 5, ErrProb: 0.3}, "f")
	var out []byte
	buf := make([]byte, 1024)
	transients := 0
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			if !IsTransient(err) {
				t.Fatalf("unexpected error class: %v", err)
			}
			var te *TransientError
			if !errors.As(err, &te) || !te.Temporary() {
				t.Fatalf("transient error not Temporary(): %v", err)
			}
			transients++
			continue
		}
	}
	if transients == 0 {
		t.Fatal("ErrProb 0.3 injected no transient errors")
	}
	if !bytes.Equal(out, data) {
		t.Fatal("retried stream does not match the original")
	}
}

func TestOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	data := payload(8 << 10)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rc, err := Open(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("Open pass-through altered file contents")
	}
	if _, err := Open(path+".missing", Config{}); err == nil {
		t.Fatal("opening a missing file should fail")
	}
}
