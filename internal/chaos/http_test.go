package chaos

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// chaosBackend is a plain handler with a body big enough to truncate.
func chaosBackend() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"path":%q,"pad":%q}`, r.URL.Path, strings.Repeat("x", 512))
	})
}

// TestTransportZeroConfigTransparent: no config, no faults, bytes
// untouched.
func TestTransportZeroConfigTransparent(t *testing.T) {
	ts := httptest.NewServer(chaosBackend())
	defer ts.Close()
	tr := NewTransport(nil, HTTPConfig{})
	client := &http.Client{Transport: tr}
	resp, err := client.Get(ts.URL + "/v1/snapshots")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("status %d, read err %v", resp.StatusCode, err)
	}
	if !strings.Contains(string(body), `"pad"`) {
		t.Fatalf("body mangled: %s", body)
	}
	if got := tr.Counts(); got != (FaultCounts{}) {
		t.Fatalf("zero config fired faults: %+v", got)
	}
}

// TestTransportInjects5xx: probability 1 replaces every response with a
// marked 502 — the marker is what lets a soak budget injected faults
// apart from genuine ones.
func TestTransportInjects5xx(t *testing.T) {
	ts := httptest.NewServer(chaosBackend())
	defer ts.Close()
	tr := NewTransport(nil, HTTPConfig{Seed: 1, Inject5xxProb: 1})
	client := &http.Client{Transport: tr}
	resp, err := client.Get(ts.URL + "/v1/snapshots")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	if got := resp.Header.Get(FaultHeader); got != "injected-5xx" {
		t.Fatalf("%s = %q, want injected-5xx", FaultHeader, got)
	}
	if got := tr.Counts().Injected5xx; got != 1 {
		t.Fatalf("Injected5xx = %d, want 1", got)
	}
}

// TestTransportReset: probability 1 fails every request with a
// classifiable ECONNRESET before it reaches the server.
func TestTransportReset(t *testing.T) {
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { hits++ }))
	defer ts.Close()
	tr := NewTransport(nil, HTTPConfig{Seed: 1, ResetProb: 1})
	client := &http.Client{Transport: tr}
	_, err := client.Get(ts.URL + "/v1/snapshots")
	if err == nil {
		t.Fatal("reset-injected request succeeded")
	}
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("err = %v, want ECONNRESET in the chain", err)
	}
	if hits != 0 {
		t.Fatalf("backend saw %d requests, want 0 (reset fires before the dial)", hits)
	}
}

// TestTransportTruncatesBody: the torn-response shape — headers fine,
// Content-Length intact, body read dies with ErrUnexpectedEOF.
func TestTransportTruncatesBody(t *testing.T) {
	ts := httptest.NewServer(chaosBackend())
	defer ts.Close()
	tr := NewTransport(nil, HTTPConfig{Seed: 1, TruncateProb: 1})
	client := &http.Client{Transport: tr}
	resp, err := client.Get(ts.URL + "/v1/snapshots")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(FaultHeader); got != "truncated-body" {
		t.Fatalf("%s = %q, want truncated-body", FaultHeader, got)
	}
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("body read err = %v, want ErrUnexpectedEOF", err)
	}
	if len(body) == 0 || int64(len(body)) >= resp.ContentLength {
		t.Fatalf("read %d bytes of %d, want a strict prefix", len(body), resp.ContentLength)
	}
}

// TestTransportDeterministicAcrossSchedules is the keystone property:
// the same request multiset yields identical fault totals regardless of
// the order (or concurrency) requests ran in, because faults key on
// (path, per-path occurrence), not on a shared stream.
func TestTransportDeterministicAcrossSchedules(t *testing.T) {
	ts := httptest.NewServer(chaosBackend())
	defer ts.Close()
	cfg := HTTPConfig{Seed: 42, Inject5xxProb: 0.3, TruncateProb: 0.2}
	paths := []string{"/v1/snapshots", "/v1/ip/10.0.0.1", "/v1/as/100"}

	run := func(concurrent bool) FaultCounts {
		tr := NewTransport(nil, HTTPConfig{Seed: cfg.Seed, Inject5xxProb: cfg.Inject5xxProb, TruncateProb: cfg.TruncateProb})
		client := &http.Client{Transport: tr}
		do := func(path string) {
			resp, err := client.Get(ts.URL + path)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck — truncation is expected
			resp.Body.Close()
		}
		if concurrent {
			var wg sync.WaitGroup
			for _, path := range paths {
				for i := 0; i < 20; i++ {
					wg.Add(1)
					go func(p string) { defer wg.Done(); do(p) }(path)
				}
			}
			wg.Wait()
		} else {
			// A deliberately different order: round-robin across paths.
			for i := 0; i < 20; i++ {
				for _, path := range paths {
					do(path)
				}
			}
		}
		return tr.Counts()
	}

	serial := run(false)
	parallel := run(true)
	if serial != parallel {
		t.Fatalf("fault totals depend on schedule:\n serial   %+v\n parallel %+v", serial, parallel)
	}
	if serial.Injected5xx == 0 || serial.TruncatedBodies == 0 {
		t.Fatalf("expected some faults at these rates: %+v", serial)
	}
}

// TestProxyTransparentAndReset covers the listener-level relay: a
// zero-fault proxy is invisible, and ResetProb=1 tears every
// connection down mid-response.
func TestProxyTransparentAndReset(t *testing.T) {
	ts := httptest.NewServer(chaosBackend())
	defer ts.Close()
	backendAddr := strings.TrimPrefix(ts.URL, "http://")

	clean, err := NewProxy(backendAddr, HTTPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + clean.Addr() + "/v1/snapshots")
	if err != nil {
		t.Fatalf("through clean proxy: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 || !strings.Contains(string(body), `"pad"`) {
		t.Fatalf("clean proxy mangled the exchange: status %d err %v", resp.StatusCode, err)
	}

	rough, err := NewProxy(backendAddr, HTTPConfig{Seed: 7, ResetProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rough.Close()
	// Fresh client: keepalive pools must not bypass the rough proxy.
	roughClient := &http.Client{Timeout: 5 * time.Second, Transport: &http.Transport{DisableKeepAlives: true}}
	sawError := false
	for i := 0; i < 5; i++ {
		resp, err := roughClient.Get("http://" + rough.Addr() + "/v1/snapshots")
		if err != nil {
			sawError = true
			continue
		}
		if _, err := io.ReadAll(resp.Body); err != nil {
			sawError = true
		}
		resp.Body.Close()
	}
	if !sawError {
		t.Fatal("ResetProb=1 proxy never surfaced an error")
	}
	if got := rough.Counts().Resets; got == 0 {
		t.Fatal("proxy reset counter is zero")
	}
}

// TestTransportCloseIdleConnections: the wrapper must forward the
// method to its base — http.Client type-asserts its transport for it,
// so without forwarding, teardown leaks the idle pool.
func TestTransportCloseIdleConnections(t *testing.T) {
	base := &closeIdleRecorder{}
	tr := NewTransport(base, HTTPConfig{})
	(&http.Client{Transport: tr}).CloseIdleConnections()
	if !base.called {
		t.Fatal("CloseIdleConnections did not reach the base transport")
	}
}

type closeIdleRecorder struct{ called bool }

func (c *closeIdleRecorder) RoundTrip(*http.Request) (*http.Response, error) {
	return nil, errors.New("unused")
}
func (c *closeIdleRecorder) CloseIdleConnections() { c.called = true }
