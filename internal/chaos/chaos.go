// Package chaos is the deterministic fault-injection layer: it wraps
// io.Reader / file access and injects the failure modes real corpus
// consumption sees — bit-flips from partial downloads, truncated
// streams, transient I/O errors on networked filesystems, and read
// latency — all reproducible from a single seed. The benchmark-dataset
// literature (GHTraffic, the worm-infection dataset work) argues that a
// synthetic corpus is only trustworthy once its consumer has been
// validated against deliberately degraded inputs; this package is how
// offnetscope degrades them on purpose.
//
// Every injector derives its randomness from (Config.Seed, label) via
// rng.Fork, so two readers over different files draw independent fault
// streams yet the whole experiment replays exactly from one seed.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"offnetscope/internal/rng"
)

// Config tunes which faults are injected and how often. The zero value
// injects nothing: a zero-config Reader is a transparent pass-through.
type Config struct {
	// Seed roots the deterministic fault stream. Identical
	// (Seed, label) pairs inject identical faults.
	Seed uint64
	// BitFlipRate is the per-byte probability that one random bit of
	// the byte is flipped.
	BitFlipRate float64
	// TruncateProb is the probability that the stream silently ends
	// early, at a random offset within the first TruncateWindow bytes —
	// the shape of a partial download.
	TruncateProb float64
	// TruncateWindow bounds the truncation offset. Zero means 1 MiB.
	TruncateWindow int64
	// ErrProb is the per-Read probability of returning a transient
	// error instead of data. The read is not consumed: a retry sees the
	// same stream position, so retrying callers make progress.
	ErrProb float64
	// MaxLatency, when nonzero, sleeps a uniform duration in
	// [0, MaxLatency) before each Read.
	MaxLatency time.Duration
}

// TransientError is the retryable fault the injector returns with
// probability Config.ErrProb. It implements Temporary() so generic
// classifiers (net.Error-style checks, internal/resilience's default
// policy) treat it as retryable.
type TransientError struct {
	Offset int64
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("chaos: transient I/O error at offset %d", e.Offset)
}

// Temporary reports that the fault clears on retry.
func (e *TransientError) Temporary() bool { return true }

// IsTransient reports whether err is an injected transient fault.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// Reader injects faults into an underlying io.Reader.
type Reader struct {
	r          io.Reader
	cfg        Config
	g          *rng.RNG
	off        int64 // bytes delivered so far
	truncateAt int64 // -1: never truncate
}

// NewReader wraps r with the configured fault injector. label names the
// stream (conventionally the file path) so distinct streams under one
// seed draw independent faults.
func NewReader(r io.Reader, cfg Config, label string) *Reader {
	g := rng.New(cfg.Seed).Fork("chaos:" + label)
	cr := &Reader{r: r, cfg: cfg, g: g, truncateAt: -1}
	if cfg.TruncateProb > 0 && g.Bool(cfg.TruncateProb) {
		window := cfg.TruncateWindow
		if window <= 0 {
			window = 1 << 20
		}
		cr.truncateAt = g.Int63n(window)
	}
	return cr
}

// Read implements io.Reader with fault injection.
func (c *Reader) Read(p []byte) (int, error) {
	if c.cfg.MaxLatency > 0 {
		time.Sleep(time.Duration(c.g.Int63n(int64(c.cfg.MaxLatency))))
	}
	if c.cfg.ErrProb > 0 && c.g.Bool(c.cfg.ErrProb) {
		return 0, &TransientError{Offset: c.off}
	}
	if c.truncateAt >= 0 {
		if c.off >= c.truncateAt {
			return 0, io.EOF
		}
		if remain := c.truncateAt - c.off; int64(len(p)) > remain {
			p = p[:remain]
		}
	}
	n, err := c.r.Read(p)
	if c.cfg.BitFlipRate > 0 {
		for i := 0; i < n; i++ {
			if c.g.Bool(c.cfg.BitFlipRate) {
				p[i] ^= 1 << c.g.Intn(8)
			}
		}
	}
	c.off += int64(n)
	return n, err
}

// Open opens path with the fault injector layered over the file,
// labelled by the path itself. Closing the returned ReadCloser closes
// the file.
func Open(path string, cfg Config) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &readCloser{Reader: NewReader(f, cfg, path), c: f}, nil
}

type readCloser struct {
	*Reader
	c io.Closer
}

func (rc *readCloser) Close() error { return rc.c.Close() }

// Corrupt runs data through a fault injector and returns whatever
// survives: bits flipped per BitFlipRate, the tail dropped when the
// truncation coin lands. Transient errors are retried internally so the
// result depends only on (cfg, label, data) — the convenience form used
// to corrupt fixture bytes in tests.
func Corrupt(data []byte, cfg Config, label string) []byte {
	r := NewReader(bytes.NewReader(data), cfg, label)
	out := make([]byte, 0, len(data))
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			if IsTransient(err) {
				continue
			}
			return out
		}
	}
}
