// Package certgen mints real X.509 certificates (ECDSA P-256) for the
// live-network path: the loopback server farm serves them over genuine
// TLS handshakes and the probe scanner fetches and verifies them, just
// like the paper's certigo/ZGrab2 scans did. The simulated corpuses use
// package certmodel instead; this package is only for code paths that
// cross a real crypto/tls connection.
package certgen

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"time"
)

// CA is a certificate authority holding a signing key.
type CA struct {
	Cert *x509.Certificate
	Key  *ecdsa.PrivateKey
	pool *x509.CertPool
}

var serialCounter int64 = 1000

func nextSerial() *big.Int {
	serialCounter++
	return big.NewInt(serialCounter)
}

// NewCA creates a self-signed root CA valid for ten years.
func NewCA(name string) (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("certgen: %w", err)
	}
	tpl := &x509.Certificate{
		SerialNumber:          nextSerial(),
		Subject:               pkix.Name{Organization: []string{name}, CommonName: name + " Root"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().AddDate(10, 0, 0),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tpl, tpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("certgen: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("certgen: %w", err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)
	return &CA{Cert: cert, Key: key, pool: pool}, nil
}

// Pool returns a cert pool trusting this CA.
func (ca *CA) Pool() *x509.CertPool { return ca.pool }

// LeafSpec describes an end-entity certificate to issue.
type LeafSpec struct {
	Organization string
	CommonName   string
	DNSNames     []string
	NotBefore    time.Time
	NotAfter     time.Time
}

func (spec *LeafSpec) defaults() {
	if spec.CommonName == "" && len(spec.DNSNames) > 0 {
		spec.CommonName = spec.DNSNames[0]
	}
	if spec.NotBefore.IsZero() {
		spec.NotBefore = time.Now().Add(-time.Hour)
	}
	if spec.NotAfter.IsZero() {
		spec.NotAfter = time.Now().AddDate(1, 0, 0)
	}
}

// IssueLeaf mints a CA-signed server certificate ready for crypto/tls.
func (ca *CA) IssueLeaf(spec LeafSpec) (tls.Certificate, error) {
	spec.defaults()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("certgen: %w", err)
	}
	tpl := &x509.Certificate{
		SerialNumber: nextSerial(),
		Subject:      pkix.Name{Organization: []string{spec.Organization}, CommonName: spec.CommonName},
		DNSNames:     spec.DNSNames,
		NotBefore:    spec.NotBefore,
		NotAfter:     spec.NotAfter,
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	der, err := x509.CreateCertificate(rand.Reader, tpl, ca.Cert, &key.PublicKey, ca.Key)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("certgen: %w", err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("certgen: %w", err)
	}
	return tls.Certificate{
		Certificate: [][]byte{der, ca.Cert.Raw},
		PrivateKey:  key,
		Leaf:        leaf,
	}, nil
}

// SelfSigned mints a self-signed server certificate — the kind §4.1
// rejects.
func SelfSigned(spec LeafSpec) (tls.Certificate, error) {
	spec.defaults()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("certgen: %w", err)
	}
	tpl := &x509.Certificate{
		SerialNumber: nextSerial(),
		Subject:      pkix.Name{Organization: []string{spec.Organization}, CommonName: spec.CommonName},
		DNSNames:     spec.DNSNames,
		NotBefore:    spec.NotBefore,
		NotAfter:     spec.NotAfter,
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	der, err := x509.CreateCertificate(rand.Reader, tpl, tpl, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("certgen: %w", err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("certgen: %w", err)
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key, Leaf: leaf}, nil
}
