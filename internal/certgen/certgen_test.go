package certgen

import (
	"crypto/x509"
	"testing"
	"time"
)

func TestCAIssuesVerifiableLeaf(t *testing.T) {
	ca, err := NewCA("Test WebPKI")
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.IssueLeaf(LeafSpec{
		Organization: "Google LLC",
		DNSNames:     []string{"*.google.com", "*.googlevideo.com"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Leaf == nil {
		t.Fatal("leaf not parsed")
	}
	if got := cert.Leaf.Subject.Organization[0]; got != "Google LLC" {
		t.Errorf("org = %q", got)
	}
	if _, err := cert.Leaf.Verify(x509.VerifyOptions{Roots: ca.Pool(), DNSName: "www.google.com"}); err != nil {
		t.Errorf("leaf should verify for www.google.com: %v", err)
	}
	if _, err := cert.Leaf.Verify(x509.VerifyOptions{Roots: ca.Pool(), DNSName: "www.netflix.com"}); err == nil {
		t.Error("leaf must not verify for a foreign domain")
	}
}

func TestSelfSignedDoesNotVerify(t *testing.T) {
	ca, err := NewCA("Test WebPKI")
	if err != nil {
		t.Fatal(err)
	}
	cert, err := SelfSigned(LeafSpec{Organization: "Google LLC", DNSNames: []string{"*.google.com"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cert.Leaf.Verify(x509.VerifyOptions{Roots: ca.Pool()}); err == nil {
		t.Error("self-signed leaf must not verify against the CA pool")
	}
}

func TestExpiredLeafRejected(t *testing.T) {
	ca, err := NewCA("Test WebPKI")
	if err != nil {
		t.Fatal(err)
	}
	// The leaf's window sits inside the CA's validity but ends just
	// before now, so it is expired at verification time.
	cert, err := ca.IssueLeaf(LeafSpec{
		Organization: "Netflix, Inc.",
		DNSNames:     []string{"*.nflxvideo.net"},
		NotBefore:    time.Now().Add(-50 * time.Minute),
		NotAfter:     time.Now().Add(-time.Minute),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cert.Leaf.Verify(x509.VerifyOptions{Roots: ca.Pool()}); err == nil {
		t.Error("expired leaf must not verify")
	}
	// But it verifies at a time inside its window.
	if _, err := cert.Leaf.Verify(x509.VerifyOptions{
		Roots:       ca.Pool(),
		CurrentTime: time.Now().Add(-10 * time.Minute),
	}); err != nil {
		t.Errorf("leaf should verify inside its window: %v", err)
	}
}

func TestDistinctSerials(t *testing.T) {
	ca, err := NewCA("Test WebPKI")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := ca.IssueLeaf(LeafSpec{Organization: "X", DNSNames: []string{"a.example"}})
	b, _ := ca.IssueLeaf(LeafSpec{Organization: "X", DNSNames: []string{"a.example"}})
	if a.Leaf.SerialNumber.Cmp(b.Leaf.SerialNumber) == 0 {
		t.Error("serial numbers must be distinct")
	}
}
