package offnetserve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// cacheState performs one GET and returns the X-Offnet-Cache header
// ("hit", "miss", "shared", or "" when the cache is off/bypassed).
func cacheState(t *testing.T, h http.Handler, url string) string {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("GET %s = %d: %s", url, rec.Code, rec.Body.String())
	}
	return rec.Header().Get("X-Offnet-Cache")
}

// TestCacheCountersMatchSnapshot drives a known request sequence and
// requires the obs snapshot to account for every single cache event
// exactly — hits, misses, evictions, entries. This is the accounting
// contract: the cache has no private tallies; /debug/metrics is the
// authoritative view.
func TestCacheCountersMatchSnapshot(t *testing.T) {
	s := New(testStore(t), Config{Workers: 4, CacheSize: 2})

	// Three distinct URLs through a 2-entry cache: three misses, one
	// eviction (the first URL falls off when the third is inserted).
	if got := cacheState(t, s, "/v1/ip/10.1.2.3"); got != "miss" {
		t.Fatalf("first lookup = %q, want miss", got)
	}
	if got := cacheState(t, s, "/v1/as/200"); got != "miss" {
		t.Fatalf("second lookup = %q, want miss", got)
	}
	if got := cacheState(t, s, "/v1/hg/google/footprint"); got != "miss" {
		t.Fatalf("third lookup = %q, want miss", got)
	}
	// The two survivors hit; the evicted one misses again (evicting
	// the next-oldest).
	if got := cacheState(t, s, "/v1/hg/google/footprint"); got != "hit" {
		t.Fatalf("footprint re-lookup = %q, want hit", got)
	}
	if got := cacheState(t, s, "/v1/ip/10.1.2.3"); got != "miss" {
		t.Fatalf("evicted lookup = %q, want miss", got)
	}

	snap := s.reg.Snapshot()
	for name, want := range map[string]int64{
		"cache.hits":      1,
		"cache.misses":    4,
		"cache.shared":    0,
		"cache.evictions": 2,
		"cache.flushed":   0,
	} {
		if got := snap.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := snap.Gauges["cache.entries"]; got != 2 {
		t.Errorf("cache.entries gauge = %d, want 2", got)
	}
	if got := s.cache.len(); got != 2 {
		t.Errorf("cache.len() = %d, want 2 (must match the gauge)", got)
	}

	// Query strings are part of the key: the same endpoint with a
	// different snapshot is a different entry.
	if got := cacheState(t, s, "/v1/hg/google/footprint?snapshot=2021-01"); got != "miss" {
		t.Errorf("distinct query string = %q, want miss", got)
	}
}

// TestCacheSingleflightDedup fires many concurrent identical queries
// through a deliberately slow handler: exactly one execution may
// happen; everyone else must wait on that flight (shared) or hit the
// stored entry. The obs counters must balance to the request count.
func TestCacheSingleflightDedup(t *testing.T) {
	s := New(testStore(t), Config{Workers: 64, CacheSize: 8})
	var executions atomic.Int64
	slow := s.wrap("ip", true, func(v *view, w http.ResponseWriter, r *http.Request) {
		executions.Add(1)
		time.Sleep(50 * time.Millisecond)
		writeJSON(w, http.StatusOK, map[string]any{"slow": true, "generation": v.gen})
	})

	const clients = 50
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := httptest.NewRequest("GET", "/v1/ip/10.1.2.3", nil)
			rec := httptest.NewRecorder()
			slow(rec, req)
			if rec.Code != 200 {
				t.Errorf("concurrent lookup = %d", rec.Code)
			}
		}()
	}
	wg.Wait()

	if got := executions.Load(); got != 1 {
		t.Fatalf("handler executed %d times under singleflight, want 1", got)
	}
	snap := s.reg.Snapshot()
	misses := snap.Counter("cache.misses")
	hits := snap.Counter("cache.hits")
	shared := snap.Counter("cache.shared")
	if misses != 1 {
		t.Errorf("cache.misses = %d, want 1", misses)
	}
	if hits+shared+misses != clients {
		t.Errorf("hits(%d) + shared(%d) + misses(%d) != %d requests", hits, shared, misses, clients)
	}
	if shared == 0 {
		t.Error("no shared flights despite 50 concurrent identical queries")
	}
}

// TestCacheLeaderPanic: a panicking singleflight leader must not
// deadlock its waiters or leak the flight; the next request recomputes.
func TestCacheLeaderPanic(t *testing.T) {
	s := New(testStore(t), Config{Workers: 8, CacheSize: 8})
	var calls atomic.Int64
	flaky := s.wrap("ip", true, func(v *view, w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			panic("first call explodes")
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})

	req := httptest.NewRequest("GET", "/v1/ip/10.1.2.3", nil)
	rec := httptest.NewRecorder()
	flaky(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking leader = %d, want 500", rec.Code)
	}
	// The flight was cleaned up: a retry recomputes and succeeds.
	rec = httptest.NewRecorder()
	flaky(rec, httptest.NewRequest("GET", "/v1/ip/10.1.2.3", nil))
	if rec.Code != 200 {
		t.Fatalf("retry after panic = %d, want 200", rec.Code)
	}
	// The failed execution must not have been stored.
	if got := s.reg.Snapshot().Counter("cache.misses"); got != 2 {
		t.Errorf("cache.misses = %d, want 2 (panic result not cached)", got)
	}
}

// TestCacheGenerationKeying: a reload flushes the cache and moves the
// key space, so the same URL misses again and recomputes against the
// new store — never serves the old generation's answer.
func TestCacheGenerationKeying(t *testing.T) {
	s := New(testStore(t), Config{Workers: 4, CacheSize: 8})
	url := "/v1/hg/google/footprint?snapshot=2021-04"

	if got := cacheState(t, s, url); got != "miss" {
		t.Fatalf("first = %q, want miss", got)
	}
	before := getJSON(t, s, url, 200)
	if before["count"] != float64(2) || before["generation"] != float64(1) {
		t.Fatalf("gen-1 answer = %v", before)
	}
	if got := cacheState(t, s, url); got != "hit" {
		t.Fatalf("second = %q, want hit", got)
	}

	s.Reload(altStore(t)) // Google's 2021-04 footprint grows to 3 ASes

	if got := cacheState(t, s, url); got != "miss" {
		t.Fatalf("post-reload = %q, want miss (old generation must not hit)", got)
	}
	after := getJSON(t, s, url, 200)
	if after["count"] != float64(3) || after["generation"] != float64(2) {
		t.Fatalf("gen-2 answer = %v", after)
	}

	snap := s.reg.Snapshot()
	if got := snap.Counter("cache.flushed"); got != 1 {
		t.Errorf("cache.flushed = %d, want 1", got)
	}
}

// TestCacheGenerationConsistencyUnderReload is the reload-race proof
// for the cache path: sustained concurrent traffic across many store
// swaps, where every response's generation field must match the
// content it carries. testStore answers count=2 on odd generations,
// altStore count=3 on even ones — a cache hit leaking across a reload
// would pair a new generation with the old count. Run under -race via
// `make chaos-race`.
func TestCacheGenerationConsistencyUnderReload(t *testing.T) {
	a, b := testStore(t), altStore(t)
	s := New(a, Config{Workers: 16, QueueWait: 5 * time.Second, CacheSize: 16})
	url := "/v1/hg/google/footprint?snapshot=2021-04"

	stop := make(chan struct{})
	var swapWG sync.WaitGroup
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				s.Reload(b) // even swap count -> even generation
			} else {
				s.Reload(a)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const clients = 800
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := getJSON(t, s, url, 200)
			gen := uint64(resp["generation"].(float64))
			count := int(resp["count"].(float64))
			want := 2 // odd generations serve testStore
			if gen%2 == 0 {
				want = 3 // even generations serve altStore
			}
			if count != want {
				errs <- fmt.Sprintf("generation %d served count %d, want %d — stale cache hit across reload", gen, count, want)
			}
		}()
	}
	wg.Wait()
	close(stop)
	swapWG.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestCacheDisabled: CacheSize 0 serves without the cache layer or its
// header, and never populates cache counters.
func TestCacheDisabled(t *testing.T) {
	s := New(testStore(t), Config{Workers: 4})
	req := httptest.NewRequest("GET", "/v1/ip/10.1.2.3", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("lookup = %d", rec.Code)
	}
	if got := rec.Header().Get("X-Offnet-Cache"); got != "" {
		t.Errorf("X-Offnet-Cache = %q with cache disabled", got)
	}
	if got := s.reg.Snapshot().Counter("cache.misses"); got != 0 {
		t.Errorf("cache.misses = %d with cache disabled", got)
	}
}
