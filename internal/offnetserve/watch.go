package offnetserve

import (
	"context"
	"time"

	"offnetscope/internal/footstore"
)

// WatchGenLog turns a Server into a live timeline view over a
// generation log: it polls the log's manifest (one small read — no
// directory scan, no segment I/O) and funnels every newly committed
// generation through the validated reload path, in order. The daemon
// writing the log (cmd/offnetwatchd) and the daemon serving it
// (cmd/offnetd) share nothing but the directory; the manifest's atomic
// rename is the only synchronization either side needs.
//
// The watcher is the Server's sole reload caller by contract (it calls
// ReloadGeneration from its own goroutine, satisfying Reload's
// "callers must serialize" rule), so a daemon running a watcher must
// not also wire SIGHUP→ReloadFile.

// WatchConfig tunes one WatchGenLog run. The zero value polls every
// 250ms and reports nothing.
type WatchConfig struct {
	// Interval is the manifest poll period (0: 250ms). Polling reads
	// only the manifest file, so sub-second intervals are cheap.
	Interval time.Duration
	// OnReload, when non-nil, observes every reload attempt: the
	// generation tried and the verdict (nil on commit). Used for
	// logging; errors are already fully handled — the watcher skips the
	// bad generation and moves on.
	OnReload func(gen uint64, err error)
}

// WatchGenLog follows the generation log at dir until ctx is
// canceled, reloading each committed generation into s as it appears.
// It runs in the calling goroutine (start it with `go`).
//
// Failure handling is skip-forward: a generation that fails to load or
// validate is reported (OnReload, /readyz degraded, reload.rejected)
// and then left behind — the watcher advances past it rather than
// retrying a durably bad entry forever, and the next good generation
// both supersedes it and clears the degraded mark. Compaction moving
// the log's base past the watcher's cursor likewise just snaps the
// cursor forward: only the newest generation matters to a server.
func (s *Server) WatchGenLog(ctx context.Context, dir string, cfg WatchConfig) {
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	var seen uint64 // newest log generation already attempted (0: none)
	tick := time.NewTicker(cfg.Interval)
	defer tick.Stop()
	for {
		base, next, err := footstore.PeekGenLog(dir)
		if err == nil && next > base {
			last := next - 1
			if seen < base-1 {
				// Compaction (or a fresh watcher on an old log) left a
				// gap; only the tail below `last` is still loadable.
				seen = base - 1
			}
			for gen := seen + 1; gen <= last; gen++ {
				if ctx.Err() != nil {
					return
				}
				rerr := s.ReloadGeneration(dir, gen)
				if cfg.OnReload != nil {
					cfg.OnReload(gen, rerr)
				}
				// Advance even on failure: the entry is committed and
				// immutable, so retrying cannot change the verdict.
				seen = gen
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}
