package offnetserve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestDeadlineQueued504DistinctFromShed pins the status-code contract
// for a saturated server: a request that dies waiting because its own
// RequestTimeout expired is a 504 (http.timeouts), while one the
// server gives up on after queueWait is a 429 shed (http.shed). The
// two must never be conflated — a 429 tells the client to back off, a
// 504 tells the operator the latency promise broke.
func TestDeadlineQueued504DistinctFromShed(t *testing.T) {
	// Deadline shorter than queue wait: the deadline wins → 504.
	s := New(testStore(t), Config{Workers: 1, QueueWait: 5 * time.Second, RequestTimeout: 30 * time.Millisecond})
	s.sem <- struct{}{} // saturate the pool
	defer func() { <-s.sem }()

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/snapshots", nil))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("queued past deadline: code = %d, want 504: %s", rec.Code, rec.Body.String())
	}
	snap := s.Registry().Snapshot()
	if got := snap.Counter("http.timeouts"); got != 1 {
		t.Errorf("http.timeouts = %d, want 1", got)
	}
	if got := snap.Counter("http.shed"); got != 0 {
		t.Errorf("http.shed = %d, want 0 (deadline expiry is not a shed)", got)
	}

	// Queue wait shorter than deadline: the shed wins → 429.
	s2 := New(testStore(t), Config{Workers: 1, QueueWait: 30 * time.Millisecond, RequestTimeout: 5 * time.Second})
	s2.sem <- struct{}{}
	defer func() { <-s2.sem }()

	rec = httptest.NewRecorder()
	s2.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/snapshots", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("queued past queueWait: code = %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Retry-After"); got == "" {
		t.Error("shed response missing Retry-After")
	}
	snap = s2.Registry().Snapshot()
	if got := snap.Counter("http.shed"); got != 1 {
		t.Errorf("http.shed = %d, want 1", got)
	}
	if got := snap.Counter("http.timeouts"); got != 0 {
		t.Errorf("http.timeouts = %d, want 0", got)
	}
}

// TestDeadlineReachesHandler: the per-request context the handler sees
// carries the configured deadline; with RequestTimeout zero it carries
// none. This is the end-to-end plumbing the batch budget rides on.
func TestDeadlineReachesHandler(t *testing.T) {
	var deadline time.Time
	var hasDeadline bool
	probe := func(v *view, w http.ResponseWriter, r *http.Request) {
		deadline, hasDeadline = r.Context().Deadline()
		w.WriteHeader(http.StatusOK)
	}

	s := New(testStore(t), Config{RequestTimeout: 250 * time.Millisecond})
	start := time.Now()
	rec := httptest.NewRecorder()
	s.wrap("snapshots", false, probe)(rec, httptest.NewRequest("GET", "/v1/snapshots", nil))
	if !hasDeadline {
		t.Fatal("handler context carries no deadline despite RequestTimeout")
	}
	if d := deadline.Sub(start); d <= 0 || d > time.Second {
		t.Errorf("deadline %v from request start, want ~250ms", d)
	}

	s2 := New(testStore(t), Config{})
	s2.wrap("snapshots", false, probe)(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/snapshots", nil))
	if hasDeadline {
		t.Error("handler context carries a deadline with RequestTimeout disabled")
	}
}

// TestBatchDeadlineBudget: all items of a batch share one deadline; a
// batch whose budget is exhausted answers 504 naming its progress
// instead of holding the worker slot to the end.
func TestBatchDeadlineBudget(t *testing.T) {
	s := New(testStore(t), Config{})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	body := strings.NewReader(`{"ips":["10.0.0.1","10.0.0.2","10.0.0.3"]}`)
	req := httptest.NewRequest("POST", "/v1/batch", body).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.handleBatch(s.view.Load(), rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired batch: code = %d, want 504: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "0 of 3") {
		t.Errorf("504 body does not name batch progress: %s", rec.Body.String())
	}
}

// TestBreakerOpensOnRepeatedPanics: consecutive server-side failures
// trip the overload breaker; subsequent requests fail fast with 503 +
// Retry-After without reaching the handler, and the breaker closes
// again after its cooldown lets a healthy probe through.
func TestBreakerOpensOnRepeatedPanics(t *testing.T) {
	s := New(testStore(t), Config{BreakerFailures: 3, BreakerOpenFor: 25 * time.Millisecond})
	boom := s.wrap("snapshots", false, func(v *view, w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		boom(rec, httptest.NewRequest("GET", "/v1/snapshots", nil))
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("panic %d: code = %d, want 500", i, rec.Code)
		}
	}

	// Tripped: even a healthy endpoint fails fast now.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/snapshots", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: code = %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("breaker-open response missing Retry-After")
	}
	if got := s.Registry().Snapshot().Counter("http.breaker_open"); got != 1 {
		t.Errorf("http.breaker_open = %d, want 1", got)
	}

	// After the cooldown a healthy request closes it again.
	time.Sleep(40 * time.Millisecond)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/snapshots", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("probe after cooldown: code = %d, want 200: %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/ip/10.0.0.1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("request after recovery: code = %d, want 200: %s", rec.Code, rec.Body.String())
	}
}

// TestBreakerDisabled: BreakerFailures < 0 turns the breaker off; any
// number of panics keeps answering 500, never 503.
func TestBreakerDisabled(t *testing.T) {
	s := New(testStore(t), Config{BreakerFailures: -1})
	boom := s.wrap("snapshots", false, func(v *view, w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	for i := 0; i < 50; i++ {
		rec := httptest.NewRecorder()
		boom(rec, httptest.NewRequest("GET", "/v1/snapshots", nil))
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("call %d: code = %d, want 500 (breaker disabled)", i, rec.Code)
		}
	}
}

// TestShedDoesNotTripBreaker: sheds are load control working, not
// serving-path failure — a storm of 429s must leave the breaker
// closed so recovery is instant once load drops.
func TestShedDoesNotTripBreaker(t *testing.T) {
	s := New(testStore(t), Config{Workers: 1, QueueWait: time.Millisecond, BreakerFailures: 3})
	s.sem <- struct{}{}
	for i := 0; i < 10; i++ {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/snapshots", nil))
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("shed %d: code = %d, want 429", i, rec.Code)
		}
	}
	<-s.sem
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/snapshots", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("after load drop: code = %d, want 200 (sheds must not trip the breaker): %s",
			rec.Code, rec.Body.String())
	}
}
