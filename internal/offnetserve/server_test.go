package offnetserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"offnetscope/internal/astopo"
	"offnetscope/internal/core"
	"offnetscope/internal/footstore"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/obs"
	"offnetscope/internal/scanners"
	"offnetscope/internal/timeline"
	"offnetscope/internal/worldsim"
)

// testStore hand-builds a tiny store: Google in AS100 (2020-10 on) and
// AS200 (all three snapshots), Netflix in AS200 at the last snapshot,
// one /16 and a more-specific /24.
func testStore(t testing.TB) *footstore.Store {
	t.Helper()
	s1, _ := timeline.FromLabel("2020-10")
	s2, _ := timeline.FromLabel("2021-01")
	s3, _ := timeline.FromLabel("2021-04")
	b := footstore.NewBuilder()
	for _, step := range []struct {
		s  timeline.Snapshot
		fp map[hg.ID][]astopo.ASN
	}{
		{s1, map[hg.ID][]astopo.ASN{hg.Google: {100, 200}}},
		{s2, map[hg.ID][]astopo.ASN{hg.Google: {200}}},
		{s3, map[hg.ID][]astopo.ASN{hg.Google: {100, 200}, hg.Netflix: {200}}},
	} {
		if err := b.AddSnapshot(step.s, step.fp); err != nil {
			t.Fatal(err)
		}
	}
	b.AddPrefix(netmodel.MustParsePrefix("10.1.0.0/16"), []astopo.ASN{100})
	b.AddPrefix(netmodel.MustParsePrefix("10.1.2.0/24"), []astopo.ASN{200})
	st, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// altStore builds a store that differs from testStore: a shorter
// window (two snapshots) and a bigger Google footprint at the latest
// one, so a served response reveals which version answered it.
func altStore(t testing.TB) *footstore.Store {
	t.Helper()
	s2, _ := timeline.FromLabel("2021-01")
	s3, _ := timeline.FromLabel("2021-04")
	b := footstore.NewBuilder()
	for _, step := range []struct {
		s  timeline.Snapshot
		fp map[hg.ID][]astopo.ASN
	}{
		{s2, map[hg.ID][]astopo.ASN{hg.Google: {200}}},
		{s3, map[hg.ID][]astopo.ASN{hg.Google: {100, 200, 300}, hg.Netflix: {200}}},
	} {
		if err := b.AddSnapshot(step.s, step.fp); err != nil {
			t.Fatal(err)
		}
	}
	b.AddPrefix(netmodel.MustParsePrefix("10.1.0.0/16"), []astopo.ASN{100})
	b.AddPrefix(netmodel.MustParsePrefix("10.1.2.0/24"), []astopo.ASN{200})
	st, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func getJSON(t *testing.T, handler http.Handler, url string, wantCode int) map[string]any {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != wantCode {
		t.Fatalf("GET %s = %d, want %d: %s", url, rec.Code, wantCode, rec.Body.String())
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
	return out
}

func hostingHGs(v map[string]any) []string {
	var out []string
	hostings, _ := v["hostings"].([]any)
	for _, h := range hostings {
		m := h.(map[string]any)
		out = append(out, m["hg"].(string))
	}
	return out
}

func TestEndpoints(t *testing.T) {
	h := New(testStore(t), Config{Workers: 8})

	snaps := getJSON(t, h, "/v1/snapshots", 200)
	if snaps["latest"] != "2021-04" {
		t.Errorf("latest = %v", snaps["latest"])
	}
	if got := snaps["snapshots"].([]any); len(got) != 3 || got[0] != "2020-10" {
		t.Errorf("snapshots = %v", got)
	}

	// IP inside the /24: AS200, hosted by Google and Netflix.
	ip := getJSON(t, h, "/v1/ip/10.1.2.3", 200)
	if ip["mapped"] != true || ip["prefix"] != "10.1.2.0/24" {
		t.Errorf("ip response = %v", ip)
	}
	// Google's AS200 run spans all three snapshots, Netflix's one.
	if got := hostingHGs(ip); len(got) != 2 || got[0] != "Google" || got[1] != "Netflix" {
		t.Errorf("hostings = %v", got)
	}
	// IP inside the /16 but outside the /24: AS100, Google only, and
	// its run is split (2020-10, then 2021-04).
	ip = getJSON(t, h, "/v1/ip/10.1.99.1", 200)
	if got := hostingHGs(ip); len(got) != 2 || got[0] != "Google" || got[1] != "Google" {
		t.Errorf("AS100 hostings = %v", got)
	}
	unmapped := getJSON(t, h, "/v1/ip/192.0.2.1", 200)
	if unmapped["mapped"] != false || len(unmapped["hostings"].([]any)) != 0 {
		t.Errorf("unmapped ip response = %v", unmapped)
	}
	getJSON(t, h, "/v1/ip/not-an-ip", 400)

	as := getJSON(t, h, "/v1/as/200", 200)
	hgs := hostingHGs(as)
	if len(hgs) != 2 || hgs[0] != "Google" || hgs[1] != "Netflix" {
		t.Errorf("as/200 hostings = %v", hgs)
	}
	if got := hostingHGs(getJSON(t, h, "/v1/as/999", 200)); len(got) != 0 {
		t.Errorf("as/999 hostings = %v", got)
	}
	getJSON(t, h, "/v1/as/zero", 400)
	getJSON(t, h, "/v1/as/0", 400)

	fp := getJSON(t, h, "/v1/hg/google/footprint", 200)
	if fp["snapshot"] != "2021-04" || fp["count"] != float64(2) {
		t.Errorf("footprint = %v", fp)
	}
	fp = getJSON(t, h, "/v1/hg/Google/footprint?snapshot=2021-01", 200)
	if fp["count"] != float64(1) {
		t.Errorf("footprint at 2021-01 = %v", fp)
	}
	// Numeric ID works too.
	fp = getJSON(t, h, fmt.Sprintf("/v1/hg/%d/footprint", int(hg.Netflix)), 200)
	if fp["hg"] != "Netflix" || fp["count"] != float64(1) {
		t.Errorf("numeric-id footprint = %v", fp)
	}
	// Present-window but absent snapshot, bad label, unknown HG.
	getJSON(t, h, "/v1/hg/google/footprint?snapshot=2014-01", 404)
	getJSON(t, h, "/v1/hg/google/footprint?snapshot=never", 400)
	getJSON(t, h, "/v1/hg/nosuchhg/footprint", 404)

	// Metrics surface: the handlers above must have been counted.
	req := httptest.NewRequest("GET", "/debug/vars", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("/debug/vars = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"offnetd.requests", "offnetd.latency", "offnetd.store", "offnetd.cache", `"footprint"`, `"generation"`, `"last_reload"`} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/vars missing %s", want)
		}
	}

	// /debug/metrics serves the same registry as one parseable obs
	// snapshot, without consuming a worker token.
	req = httptest.NewRequest("GET", "/debug/metrics", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("/debug/metrics = %d", rec.Code)
	}
	snap, err := obs.ParseSnapshot(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("/debug/metrics body: %v", err)
	}
	if snap.Name != "offnetd" {
		t.Errorf("metrics registry name = %q", snap.Name)
	}
	if snap.Counter("http.requests.footprint") == 0 {
		t.Errorf("footprint requests uncounted: %v", snap.Counters)
	}
	lat := snap.Histograms["http.latency_ns.footprint"]
	var inBuckets uint64
	for _, b := range lat.Buckets {
		inBuckets += b.N
	}
	if lat.Count == 0 || lat.Count != inBuckets {
		t.Errorf("footprint latency histogram inconsistent: %+v", lat)
	}
}

// TestGenerationInResponses pins the reload-race detection contract:
// every /v1/* success body names the store generation it was answered
// from, and the number moves with Reload.
func TestGenerationInResponses(t *testing.T) {
	h := New(testStore(t), Config{Workers: 4})
	paths := []string{
		"/v1/snapshots",
		"/v1/ip/10.1.2.3",
		"/v1/as/200",
		"/v1/hg/google/footprint",
	}
	for _, p := range paths {
		if got := getJSON(t, h, p, 200)["generation"]; got != float64(1) {
			t.Errorf("%s generation = %v, want 1", p, got)
		}
	}
	h.Reload(altStore(t))
	for _, p := range paths {
		if got := getJSON(t, h, p, 200)["generation"]; got != float64(2) {
			t.Errorf("%s generation after reload = %v, want 2", p, got)
		}
	}
	// /readyz names it too, and the batch envelope is covered by
	// TestBatchEndpoint.
	if got := getJSON(t, h, "/readyz", 200)["generation"]; got != float64(2) {
		t.Errorf("readyz generation = %v, want 2", got)
	}
}

// TestPprofFlag verifies the profile endpoints exist only behind
// EnablePprof (the -pprof flag).
func TestPprofFlag(t *testing.T) {
	h := New(testStore(t), Config{Workers: 4})
	req := httptest.NewRequest("GET", "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("pprof without -pprof = %d, want 404", rec.Code)
	}
	h.EnablePprof()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatalf("pprof index = %d:\n%.200s", rec.Code, rec.Body.String())
	}
}

// TestConcurrentLoad floods the handler with 1000 in-flight requests
// through a small worker pool; every one must complete successfully.
// Run under -race this doubles as the lock-free-query-path check. The
// cache is on, so this also races hits, misses, and shared flights.
func TestConcurrentLoad(t *testing.T) {
	h := New(testStore(t), Config{Workers: 16, CacheSize: 64})
	urls := []string{
		"/v1/snapshots",
		"/v1/ip/10.1.2.3",
		"/v1/ip/10.1.99.1",
		"/v1/as/200",
		"/v1/hg/google/footprint",
		"/v1/hg/netflix/footprint?snapshot=2021-04",
	}
	const clients = 1000
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := urls[i%len(urls)]
			req := httptest.NewRequest("GET", url, nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				errs <- fmt.Sprintf("%s -> %d", url, rec.Code)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestHealthEndpoints(t *testing.T) {
	h := New(testStore(t), Config{Workers: 4})
	if got := getJSON(t, h, "/healthz", 200); got["status"] != "ok" {
		t.Errorf("healthz = %v", got)
	}
	ready := getJSON(t, h, "/readyz", 200)
	if ready["ready"] != true || ready["latest"] != "2021-04" || ready["snapshots"] != float64(3) {
		t.Errorf("readyz = %v", ready)
	}
	// Readiness tracks reloads.
	h.Reload(altStore(t))
	if got := getJSON(t, h, "/readyz", 200); got["snapshots"] != float64(2) {
		t.Errorf("readyz after reload = %v", got)
	}
}

// A panicking handler costs one 500 response, never the daemon, and is
// counted.
func TestPanicRecovery(t *testing.T) {
	s := New(testStore(t), Config{Workers: 4})
	boom := s.wrap("snapshots", false, func(*view, http.ResponseWriter, *http.Request) {
		panic("boom")
	})
	req := httptest.NewRequest("GET", "/v1/snapshots", nil)
	rec := httptest.NewRecorder()
	boom(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "internal error") {
		t.Errorf("panic response body: %s", rec.Body.String())
	}
	if got := s.reg.Snapshot().Counter("http.panics"); got != 1 {
		t.Errorf("panics counter = %v, want 1", got)
	}
	// The worker token was released despite the panic: the pool still
	// serves.
	for i := 0; i < 8; i++ {
		getJSON(t, s, "/v1/snapshots", 200)
	}
}

// Once the worker pool is saturated past the queue deadline, requests
// are shed with 429 + Retry-After instead of piling up.
func TestLoadShedding(t *testing.T) {
	s := New(testStore(t), Config{Workers: 1, QueueWait: 5 * time.Millisecond})
	s.sem <- struct{}{} // occupy the only worker
	defer func() { <-s.sem }()

	req := httptest.NewRequest("GET", "/v1/snapshots", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated pool = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	if got := s.reg.Snapshot().Counter("http.shed"); got != 1 {
		t.Errorf("shed counter = %v, want 1", got)
	}
	// Health stays green through the overload: it bypasses the pool.
	getJSON(t, s, "/healthz", 200)
	getJSON(t, s, "/readyz", 200)
}

// The Retry-After hint tracks the configured queue deadline instead of
// a hardcoded second: clients should stay away at least as long as a
// request may queue.
func TestRetryAfterDerivedFromQueueWait(t *testing.T) {
	for _, tc := range []struct {
		queueWait time.Duration
		want      string
	}{
		{0, "1"}, // zero-value default (1s)
		{5 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"}, // rounded up, never under-hinting
		{4 * time.Second, "4"},
	} {
		s := New(testStore(t), Config{Workers: 1, QueueWait: tc.queueWait})
		if s.retryAfter != tc.want {
			t.Errorf("queueWait %v: retryAfter = %q, want %q", tc.queueWait, s.retryAfter, tc.want)
			continue
		}
		if tc.queueWait != 5*time.Millisecond {
			continue // a shed waits out the full queue deadline (0 defaults to 1s); one quick case is enough
		}
		s.sem <- struct{}{} // occupy the only worker so the request sheds
		req := httptest.NewRequest("GET", "/v1/snapshots", nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		<-s.sem
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("queueWait %v: saturated pool = %d, want 429", tc.queueWait, rec.Code)
		}
		if got := rec.Header().Get("Retry-After"); got != tc.want {
			t.Errorf("queueWait %v: Retry-After = %q, want %q", tc.queueWait, got, tc.want)
		}
	}
}

// Every reload bumps the store generation and moves the last-reload
// timestamp, so an operator can confirm from /debug/vars that a SIGHUP
// actually swapped the store (and when).
func TestReloadGeneration(t *testing.T) {
	s := New(testStore(t), Config{Workers: 4})
	if got := s.Generation(); got != 1 {
		t.Fatalf("initial generation = %d, want 1", got)
	}
	t0 := s.lastReload.Load()
	if t0 == 0 {
		t.Fatal("initial load left no timestamp")
	}
	s.Reload(altStore(t))
	if got := s.Generation(); got != 2 {
		t.Errorf("generation after reload = %d, want 2", got)
	}
	s.Reload(altStore(t))
	if got := s.Generation(); got != 3 {
		t.Errorf("generation after second reload = %d, want 3", got)
	}
	if s.lastReload.Load() < t0 {
		t.Error("last-reload timestamp moved backwards")
	}
}

// TestHotReloadUnderLoad hammers the handler with 1000 concurrent
// requests while the store is swapped repeatedly. Every response must
// be a 2xx (a deliberate 429 shed would also be legal, but the queue
// deadline here is generous) and every footprint answer must be
// internally consistent with exactly one store version. Run under
// -race this is the zero-downtime reload proof. The cache is enabled,
// so the swap loop also races flush against hits and inserts.
func TestHotReloadUnderLoad(t *testing.T) {
	a, b := testStore(t), altStore(t)
	s := New(a, Config{Workers: 16, QueueWait: 5 * time.Second, CacheSize: 32})
	urls := []string{
		"/v1/snapshots",
		"/v1/ip/10.1.2.3",
		"/v1/as/200",
		"/v1/hg/google/footprint?snapshot=2021-04",
		"/readyz",
	}
	const clients = 1000
	stopSwap := make(chan struct{})
	var swaps int
	var swapWG sync.WaitGroup
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		stores := []*footstore.Store{b, a}
		for i := 0; ; i++ {
			select {
			case <-stopSwap:
				return
			default:
			}
			s.Reload(stores[i%2])
			swaps++
			time.Sleep(100 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := urls[i%len(urls)]
			req := httptest.NewRequest("GET", url, nil)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			switch rec.Code {
			case http.StatusOK:
			case http.StatusTooManyRequests: // legal shed, not a failure
			default:
				errs <- fmt.Sprintf("%s -> %d: %s", url, rec.Code, rec.Body.String())
				return
			}
			// Footprint answers must match one of the two versions
			// exactly — never a torn mix.
			if strings.Contains(url, "footprint") && rec.Code == http.StatusOK {
				body := rec.Body.String()
				if !strings.Contains(body, `"count": 2`) && !strings.Contains(body, `"count": 3`) {
					errs <- fmt.Sprintf("torn footprint response: %s", body)
				}
			}
		}(i)
	}
	wg.Wait()
	close(stopSwap)
	swapWG.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if swaps < 3 {
		t.Fatalf("only %d store swaps happened during the load", swaps)
	}
}

// TestEndToEndAgainstGroundTruth runs the whole flow in-process: world
// → scan → §4 pipeline → store → serving layer, then checks the served
// answers against the simulator's ground truth for Google.
func TestEndToEndAgainstGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a world")
	}
	world, err := worldsim.New(worldsim.Config{Seed: 7, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	s := timeline.Snapshot(timeline.Count() - 1)
	snap := scanners.Scan(world, scanners.Rapid7Profile(), s)
	pipeline := &core.Pipeline{
		Trust:  world.TrustStore(),
		Orgs:   world.Orgs(),
		Mapper: func(s timeline.Snapshot) core.IPMapper { return world.IP2AS(s) },
		Opts:   core.DefaultOptions(),
	}
	res := pipeline.Run(snap)
	st, err := footstore.FromResult(res, world.IP2AS(s))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(st, Config{Workers: 64, CacheSize: 128}))
	defer srv.Close()

	get := func(path string, wantCode int) map[string]any {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, wantCode)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// /v1/snapshots carries the scanned month.
	if got := get("/v1/snapshots", 200); got["latest"] != s.Label() {
		t.Errorf("latest = %v, want %s", got["latest"], s.Label())
	}

	// /v1/hg footprint equals the pipeline's confirmed set and covers
	// most of the ground truth (the paper reports ~90 % recall).
	inferred := res.PerHG[hg.Google].ConfirmedASes
	fp := get("/v1/hg/google/footprint?snapshot="+s.Label(), 200)
	if fp["count"] != float64(len(inferred)) {
		t.Errorf("served footprint count %v, pipeline %d", fp["count"], len(inferred))
	}
	served := make(map[astopo.ASN]bool)
	for _, v := range fp["ases"].([]any) {
		served[astopo.ASN(v.(float64))] = true
	}
	truth := world.TrueOffNetASes(hg.Google, s)
	hits := 0
	for _, as := range truth {
		if served[as] {
			hits++
		}
	}
	if len(truth) == 0 || hits*2 < len(truth) {
		t.Errorf("served footprint covers %d/%d true off-net ASes", hits, len(truth))
	}

	// /v1/ip and /v1/as for a confirmed off-net IP must name Google.
	ips := res.PerHG[hg.Google].ConfirmedIPList
	if len(ips) == 0 {
		t.Fatal("pipeline confirmed no Google IPs")
	}
	ipResp := get("/v1/ip/"+ips[0].String(), 200)
	if ipResp["mapped"] != true {
		t.Fatalf("confirmed IP unmapped: %v", ipResp)
	}
	found := false
	for _, name := range hostingHGs(ipResp) {
		if name == "Google" {
			found = true
		}
	}
	if !found {
		t.Errorf("/v1/ip/%s does not name Google: %v", ips[0], ipResp)
	}
	as, ok := world.IP2AS(s).LookupOne(ips[0])
	if !ok {
		t.Fatal("ground-truth mapper cannot resolve confirmed IP")
	}
	found = false
	for _, name := range hostingHGs(get(fmt.Sprintf("/v1/as/%d", as), 200)) {
		if name == "Google" {
			found = true
		}
	}
	if !found {
		t.Errorf("/v1/as/%d does not name Google", as)
	}
}
