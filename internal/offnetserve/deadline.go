package offnetserve

import (
	"context"
	"sync"
	"time"
)

// deadlineCtx is the per-request deadline context. It exists because
// context.WithTimeout is too expensive for this hot path: it arms a
// runtime timer, allocates its cancellation machinery, and tears both
// down again on every request, whether or not anything ever waited on
// the deadline — measurable as a double-digit qps loss on the cached
// serving path. Here the deadline is just a timestamp: Deadline() and
// Err() compare against the clock, and a real timer plus done channel
// are materialized only when someone subscribes via Done() — which
// happens exactly on the saturated-queue path, where a request is
// already paying a multi-millisecond wait.
//
// release() is this type's cancel function: it stops the lazy timer,
// closes the done channel, and marks the context canceled, exactly as
// context.WithTimeout's CancelFunc would.
type deadlineCtx struct {
	parent   context.Context
	deadline time.Time

	mu       sync.Mutex
	done     chan struct{}
	timer    *time.Timer
	released bool
}

// newDeadlineCtx derives a deadline context from the request context.
// A parent deadline earlier than ours wins, matching context semantics.
func newDeadlineCtx(parent context.Context, timeout time.Duration) *deadlineCtx {
	d := time.Now().Add(timeout)
	if pd, ok := parent.Deadline(); ok && pd.Before(d) {
		d = pd
	}
	return &deadlineCtx{parent: parent, deadline: d}
}

func (c *deadlineCtx) Deadline() (time.Time, bool) { return c.deadline, true }

func (c *deadlineCtx) Value(key any) any { return c.parent.Value(key) }

func (c *deadlineCtx) Err() error {
	if err := c.parent.Err(); err != nil {
		return err
	}
	if !time.Now().Before(c.deadline) {
		return context.DeadlineExceeded
	}
	c.mu.Lock()
	released := c.released
	c.mu.Unlock()
	if released {
		return context.Canceled
	}
	return nil
}

// Done materializes the wait machinery on first use: a timer firing at
// the deadline, and a watcher on the parent's cancellation if it has
// one. The watcher goroutine exits when either side closes, and
// release() closes unconditionally, so its lifetime is bounded by the
// request's.
func (c *deadlineCtx) Done() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done == nil {
		c.done = make(chan struct{})
		if c.released {
			close(c.done)
			return c.done
		}
		c.timer = time.AfterFunc(time.Until(c.deadline), c.expire)
		if pd := c.parent.Done(); pd != nil {
			done := c.done
			go func() {
				select {
				case <-pd:
					c.expire()
				case <-done:
				}
			}()
		}
	}
	return c.done
}

func (c *deadlineCtx) expire() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closeLocked()
}

func (c *deadlineCtx) closeLocked() {
	if c.done != nil {
		select {
		case <-c.done:
		default:
			close(c.done)
		}
	}
}

// release ends the context's life at the end of its request: the lazy
// timer is stopped and any waiters are unblocked. Idempotent.
func (c *deadlineCtx) release() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.released = true
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	c.closeLocked()
}
