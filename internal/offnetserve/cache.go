package offnetserve

import (
	"container/list"
	"net/http"
	"sync"

	"offnetscope/internal/obs"
)

// entry is one cached response: status, content type, and the rendered
// JSON body. Bodies are immutable once stored and shared by reference.
type entry struct {
	status int
	ctype  string
	body   []byte
}

// ckey keys the cache by (store generation, request URI). Including the
// generation makes reload invalidation structural: a request pinned to
// generation G can only ever see entries computed from generation G's
// store, because the view swaps store and generation atomically.
type ckey struct {
	gen uint64
	q   string
}

// flight is one in-progress handler execution that concurrent identical
// requests wait on instead of recomputing — singleflight. The leader
// fills e, then closes done.
type flight struct {
	done chan struct{}
	e    entry
}

// cache is a mutex-guarded LRU of rendered answers with singleflight
// miss deduplication. The serving hot path takes the mutex only for
// pointer-sized bookkeeping (lookup, list splice); the handler itself
// always runs outside the lock.
//
// Accounting contract (pinned by TestCacheCountersMatchSnapshot):
// every get/do outcome increments exactly one of hits / misses /
// shared, misses counts handler executions, evictions counts entries
// dropped for capacity, and flushed counts entries dropped by a reload.
// The counters live on the server's obs registry, so /debug/metrics is
// the authoritative view.
type cache struct {
	capacity int

	hits, misses, shared *obs.Counter
	evictions, flushed   *obs.Counter
	entriesGauge         *obs.Gauge

	mu      sync.Mutex
	gen     uint64     // current generation; entries for other generations are not stored
	ll      *list.List // front = most recently used; element values are *lruItem
	items   map[ckey]*list.Element
	flights map[ckey]*flight
}

type lruItem struct {
	key ckey
	e   entry
}

func newCache(capacity int, reg *obs.Registry) *cache {
	return &cache{
		capacity:     capacity,
		hits:         reg.Counter("cache.hits"),
		misses:       reg.Counter("cache.misses"),
		shared:       reg.Counter("cache.shared"),
		evictions:    reg.Counter("cache.evictions"),
		flushed:      reg.Counter("cache.flushed"),
		entriesGauge: reg.Gauge("cache.entries"),
		gen:          1,
		ll:           list.New(),
		items:        make(map[ckey]*list.Element),
		flights:      make(map[ckey]*flight),
	}
}

// get returns the cached answer for (gen, q) and marks it most
// recently used. A miss is not counted here — do() owns miss
// accounting, so a get-miss followed by do() counts once.
func (c *cache) get(gen uint64, q string) (entry, bool) {
	if c == nil {
		return entry{}, false
	}
	k := ckey{gen: gen, q: q}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return entry{}, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*lruItem).e, true
}

// do resolves (gen, q) through the singleflight: a late hit returns the
// stored entry, a concurrent identical miss waits for the leader, and
// otherwise the caller becomes the leader and runs fn exactly once.
// Only 200s for the cache's current generation are stored, so error
// responses and answers computed for an already-replaced store never
// occupy capacity. If fn panics, waiters receive a zero entry (status
// 0) and the panic propagates to the leader's recovery layer.
func (c *cache) do(gen uint64, q string, fn func() entry) entry {
	if c == nil {
		return fn()
	}
	k := ckey{gen: gen, q: q}
	c.mu.Lock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.hits.Inc()
		e := el.Value.(*lruItem).e
		c.mu.Unlock()
		return e
	}
	if f, ok := c.flights[k]; ok {
		c.shared.Inc()
		c.mu.Unlock()
		<-f.done
		return f.e
	}
	f := &flight{done: make(chan struct{})}
	c.flights[k] = f
	c.misses.Inc()
	c.mu.Unlock()

	defer func() {
		c.mu.Lock()
		delete(c.flights, k)
		if f.e.status == http.StatusOK && k.gen == c.gen {
			c.insertLocked(k, f.e)
		}
		c.mu.Unlock()
		close(f.done)
	}()
	f.e = fn()
	return f.e
}

// insertLocked stores one entry and evicts from the LRU tail past
// capacity. Caller holds c.mu.
func (c *cache) insertLocked(k ckey, e entry) {
	if _, ok := c.items[k]; ok {
		return // a racing leader for the same key already stored it
	}
	c.items[k] = c.ll.PushFront(&lruItem{key: k, e: e})
	for c.ll.Len() > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruItem).key)
		c.evictions.Inc()
	}
	c.entriesGauge.Set(int64(c.ll.Len()))
}

// flush drops every entry and advances the cache's generation — called
// on store reload. Entries for the old generation are unreachable from
// the new view regardless (the generation is part of the key); the
// flush reclaims their memory immediately and stops in-flight
// old-generation leaders from storing their results.
func (c *cache) flush(newGen uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := c.ll.Len(); n > 0 {
		c.flushed.Add(int64(n))
	}
	c.ll.Init()
	clear(c.items)
	c.gen = newGen
	c.entriesGauge.Set(0)
}

// len reports the current entry count (tests).
func (c *cache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
