// Package offnetserve is the HTTP serving layer over a footstore: the
// engine inside cmd/offnetd, factored out so load generators
// (internal/loadgen), benchmarks, and tests can drive the exact
// production handler stack in-process, without a socket.
//
// The package owns the whole serving contract:
//
//   - the /v1/* query surface (single-IP, AS, footprint, snapshots) plus
//     POST /v1/batch for amortized bulk IP→HG resolution;
//   - a bounded worker pool with queue-deadline load shedding;
//   - zero-downtime store reloads: the store pointer and its generation
//     number swap together in one atomic pointer, and every /v1/*
//     response body carries the generation it was answered from, so
//     clients can detect reload races;
//   - an optional singleflight-deduped LRU cache for hot answers, keyed
//     by (request URI, store generation) and flushed wholesale on
//     reload (cache.go);
//   - obs metrics for all of the above.
package offnetserve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"offnetscope/internal/astopo"
	"offnetscope/internal/footstore"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/obs"
	"offnetscope/internal/resilience"
	"offnetscope/internal/timeline"
)

// view is one immutable (store, generation) pair. The pair swaps as a
// unit behind a single atomic pointer, so a request that pins a view
// can never observe a store from one generation labeled with another —
// the invariant the generation-keyed cache and the generation field in
// response bodies both rely on.
type view struct {
	st  *footstore.Store
	gen uint64
}

// Config carries the serving knobs cmd/offnetd exposes as flags. The
// zero value is usable: 256 workers, 1s queue wait, cache disabled,
// 1024-item batch limit.
type Config struct {
	Workers   int           // max concurrently served requests (0: 256)
	QueueWait time.Duration // max queue time before a 429 shed (0: 1s)
	CacheSize int           // query-cache capacity in entries (0: cache disabled)
	MaxBatch  int           // max IPs per /v1/batch request (0: 1024)

	// RequestTimeout is the end-to-end budget for one request: queueing
	// for a worker AND handling share it, so it is a promise about total
	// latency, not handler time. Expiry answers 504 — distinct from the
	// 429 shed (load control working) and 503 (client gone / breaker
	// open). Zero disables the deadline.
	RequestTimeout time.Duration

	// BreakerFailures is the consecutive server-side-failure count
	// (panics, deadline expiries) that trips the overload breaker into
	// failing fast with 503. Zero means 32; negative disables the
	// breaker entirely.
	BreakerFailures int
	// BreakerOpenFor is how long a tripped breaker rejects before
	// admitting a probe request. Zero means 1s.
	BreakerOpenFor time.Duration
}

// DefaultMaxBatch caps /v1/batch when Config.MaxBatch is zero. A batch
// occupies one worker slot for its whole run, so the cap bounds how
// long one request can monopolize a worker.
const DefaultMaxBatch = 1024

// Server binds an immutable footprint store to the HTTP surface. The
// only shared mutable state is the atomic view pointer, the atomic
// metrics, the worker semaphore, and the mutex-guarded cache, so any
// number of requests can run concurrently. Reload may be called
// concurrently with serving but callers must serialize Reload against
// itself (cmd/offnetd's signal loop does).
type Server struct {
	view       atomic.Pointer[view]
	sem        chan struct{} // bounded worker pool: one token per in-flight request
	queueWait  time.Duration // how long a request may queue for a worker before being shed
	retryAfter string        // Retry-After seconds on a shed, derived from queueWait
	timeout    time.Duration // end-to-end request deadline; 0 disables
	lastReload atomic.Int64  // unix nanos of the last swap (or initial load)
	cache      *cache        // nil when disabled
	maxBatch   int
	mux        *http.ServeMux

	// breaker fails fast once the serving path itself keeps failing
	// (panics, deadline overruns). Shedding is not failure — it is the
	// load control working — so only server-side faults feed it.
	breaker *resilience.Breaker

	// degraded, when non-nil, describes why the daemon is serving in a
	// degraded mode (e.g. after a corrupt candidate store was refused by
	// reload validation). /readyz reports it; a committed reload clears
	// it. The pointer swaps atomically so readers never see a torn
	// record.
	degraded atomic.Pointer[DegradedInfo]

	// Metrics live in one obs registry (served whole at /debug/metrics)
	// but the hot path only touches these pre-resolved handles — the
	// registry's name-lookup mutex is never taken while serving.
	reg                    *obs.Registry
	reqCount               map[string]*obs.Counter   // per-endpoint requests
	reqLatency             map[string]*obs.Histogram // per-endpoint latency, log2-ns buckets
	panics, shed, rejected *obs.Counter
	timeouts               *obs.Counter // 504s: requests that overran RequestTimeout
	breakerOpen            *obs.Counter // 503s: requests refused by the open breaker
	batchItems             *obs.Counter // total IPs resolved through /v1/batch
	reloadAccepted         *obs.Counter // committed store swaps (validated or direct)
	reloadRejected         *obs.Counter // candidate stores refused by validation
	reloadValidateNs       *obs.Histogram
	genGauge               *obs.Gauge
}

// errServeFailure is what the breaker sees when a request panicked or
// overran its deadline: a server-side fault, as opposed to client
// errors or sheds which say nothing about the serving path's health.
var errServeFailure = errors.New("offnetserve: server-side failure")

// storeHandler is a data endpoint: it receives the (store, generation)
// view pinned for this request.
type storeHandler func(v *view, w http.ResponseWriter, r *http.Request)

// endpoints names the data endpoints, used as metric keys.
var endpoints = []string{"snapshots", "ip", "as", "footprint", "batch"}

// New builds the daemon's handler around an initial store (generation
// 1). /healthz, /readyz, and /debug/metrics bypass the worker pool
// entirely — health checks and overload diagnostics must answer even
// when no worker token is free.
func New(st *footstore.Store, cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 256
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = time.Second
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	reg := obs.NewRegistry("offnetd")
	s := &Server{
		sem:              make(chan struct{}, cfg.Workers),
		queueWait:        cfg.QueueWait,
		retryAfter:       retryAfterSeconds(cfg.QueueWait),
		timeout:          cfg.RequestTimeout,
		maxBatch:         cfg.MaxBatch,
		reg:              reg,
		reqCount:         make(map[string]*obs.Counter, len(endpoints)),
		reqLatency:       make(map[string]*obs.Histogram, len(endpoints)),
		panics:           reg.Counter("http.panics"),
		shed:             reg.Counter("http.shed"),
		rejected:         reg.Counter("http.rejected"),
		timeouts:         reg.Counter("http.timeouts"),
		breakerOpen:      reg.Counter("http.breaker_open"),
		batchItems:       reg.Counter("http.batch_items"),
		reloadAccepted:   reg.Counter("reload.accepted"),
		reloadRejected:   reg.Counter("reload.rejected"),
		reloadValidateNs: reg.Histogram("reload.validate_ns"),
		genGauge:         reg.Gauge("store.generation"),
	}
	for _, name := range endpoints {
		s.reqCount[name] = reg.Counter("http.requests." + name)
		s.reqLatency[name] = reg.Histogram("http.latency_ns." + name)
	}
	if cfg.BreakerFailures >= 0 {
		failures := cfg.BreakerFailures
		if failures == 0 {
			failures = 32
		}
		openFor := cfg.BreakerOpenFor
		if openFor <= 0 {
			openFor = time.Second
		}
		s.breaker = resilience.NewBreaker(resilience.BreakerPolicy{
			ConsecutiveFailures: failures,
			OpenFor:             openFor,
			Metrics:             reg,
			Name:                "serve",
			// errServeFailure is already filtered to server-side faults,
			// so any non-nil error recorded here counts.
			Classify: func(err error) bool { return err != nil },
		})
	}
	if cfg.CacheSize > 0 {
		s.cache = newCache(cfg.CacheSize, reg)
	}
	s.view.Store(&view{st: st, gen: 1})
	s.lastReload.Store(time.Now().UnixNano())
	s.genGauge.Set(1)
	publishMetrics(s)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/snapshots", s.wrap("snapshots", true, handleSnapshots))
	mux.HandleFunc("GET /v1/ip/{ip}", s.wrap("ip", true, handleIP))
	mux.HandleFunc("GET /v1/as/{asn}", s.wrap("as", true, handleAS))
	mux.HandleFunc("GET /v1/hg/{id}/footprint", s.wrap("footprint", true, handleFootprint))
	mux.HandleFunc("POST /v1/batch", s.wrap("batch", false, s.handleBatch))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// EnablePprof mounts the net/http/pprof handlers on the daemon's mux
// (the -pprof flag). Note the daemon's -timeout wraps these too: CPU
// profiles need ?seconds= below the request timeout, or a raised
// -timeout.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Generation returns the current store generation (1 at startup, +1
// per successful reload).
func (s *Server) Generation() uint64 { return s.view.Load().gen }

// Store returns the currently served store.
func (s *Server) Store() *footstore.Store { return s.view.Load().st }

// Registry exposes the server's metrics registry (for tests and for
// embedding processes that merge snapshots).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Reload atomically swaps the served store and bumps the generation.
// In-flight requests finish on the view they pinned; new requests see
// the new store and generation together. The query cache is flushed
// wholesale: old-generation keys are unreachable from the new view
// anyway (the generation is part of the key), so the flush is memory
// hygiene, not correctness.
func (s *Server) Reload(st *footstore.Store) {
	next := &view{st: st, gen: s.view.Load().gen + 1}
	s.view.Store(next)
	s.genGauge.Set(int64(next.gen))
	s.lastReload.Store(time.Now().UnixNano())
	s.cache.flush(next.gen)
	s.reloadAccepted.Inc()
	// A committed swap supersedes any earlier rejection: the daemon is
	// serving fresh, validated data again.
	s.degraded.Store(nil)
}

// retryAfterSeconds renders the Retry-After hint for shed requests: a
// client should stay away at least as long as a request may queue, so
// the hint is queueWait rounded up to whole seconds (minimum 1 — the
// header's granularity).
func retryAfterSeconds(queueWait time.Duration) string {
	secs := int64((queueWait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// wrap applies panic recovery, the overload breaker, the per-request
// deadline, the worker bound with queue-deadline load shedding, the
// per-request view pin, the query cache (for cacheable GET endpoints),
// and per-endpoint request counts and latency. A batch occupies
// exactly one worker slot like any other request — that is the
// amortization contract.
//
// The status-code contract, one code per failure mode:
//
//	429  shed: queued past queueWait while saturated (load control)
//	503  client gave up while queued, or the breaker is open
//	504  the request overran RequestTimeout (queue time included)
//	500  the handler panicked
//
// Only the 500 and 504 paths feed the breaker as failures: sheds and
// client cancellations say nothing about the serving path's health.
func (s *Server) wrap(name string, cacheable bool, h storeHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// The breaker fails fast before any queueing: once the serving
		// path itself keeps failing, queueing more work behind it only
		// deepens the outage.
		if s.breaker != nil {
			if s.breaker.Allow() != nil {
				s.breakerOpen.Inc()
				w.Header().Set("Retry-After", s.retryAfter)
				writeError(w, http.StatusServiceUnavailable, "circuit breaker open, retry later")
				return
			}
		}
		failed := false
		if s.breaker != nil {
			defer func() {
				var err error
				if failed {
					err = errServeFailure
				}
				s.breaker.Record(err)
			}()
		}
		// A bug in one handler must cost one 500, never the daemon.
		defer func() {
			if v := recover(); v != nil {
				failed = true
				s.panics.Inc()
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", v))
			}
		}()
		// The deadline starts before queueing: RequestTimeout is a
		// promise about total latency, so queue time spends the same
		// budget the handler does.
		ctx := r.Context()
		if s.timeout > 0 {
			// Not context.WithTimeout: the lazy deadlineCtx defers its
			// timer and channel until someone actually waits on Done(),
			// which keeps the uncontended path allocation-free.
			dctx := newDeadlineCtx(ctx, s.timeout)
			defer dctx.release()
			ctx = dctx
			r = r.WithContext(ctx)
		}
		select {
		case s.sem <- struct{}{}:
		default:
			// Saturated: queue for at most queueWait, then shed. 429
			// tells well-behaved clients to back off, which is what
			// keeps the daemon live through an overload instead of
			// letting every request time out at the full deadline.
			t := time.NewTimer(s.queueWait)
			select {
			case s.sem <- struct{}{}:
				t.Stop()
			case <-t.C:
				s.shed.Inc()
				w.Header().Set("Retry-After", s.retryAfter)
				writeError(w, http.StatusTooManyRequests, "server overloaded, request shed")
				return
			case <-ctx.Done():
				t.Stop()
				if errors.Is(ctx.Err(), context.DeadlineExceeded) {
					failed = true
					s.timeouts.Inc()
					writeError(w, http.StatusGatewayTimeout, "request deadline exceeded while queued")
				} else {
					s.rejected.Inc()
					writeError(w, http.StatusServiceUnavailable, "client gave up while queued")
				}
				return
			}
		}
		defer func() { <-s.sem }()
		if s.timeout > 0 && ctx.Err() != nil {
			// The budget ran out between queue admission and dispatch
			// (an uncontended sem receive does not check the context).
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				failed = true
				s.timeouts.Inc()
				writeError(w, http.StatusGatewayTimeout, "request deadline exceeded before dispatch")
			} else {
				s.rejected.Inc()
				writeError(w, http.StatusServiceUnavailable, "client gone before dispatch")
			}
			return
		}
		start := time.Now()
		v := s.view.Load()
		if cacheable && s.cache != nil {
			s.serveCached(v, h, w, r)
		} else {
			h(v, w, r)
		}
		if s.timeout > 0 && errors.Is(ctx.Err(), context.DeadlineExceeded) {
			// The handler overran the budget mid-flight (the batch loop
			// answers its own 504); either way the request blew its
			// deadline — overload evidence the breaker must see.
			failed = true
			s.timeouts.Inc()
		}
		s.reqCount[name].Inc()
		s.reqLatency[name].Since(start)
	}
}

// serveCached answers from the generation-keyed cache when possible.
// The key is the full request URI under the view's generation; a miss
// runs the handler once into a recorder — concurrent identical misses
// share that single execution via the cache's singleflight — and only
// 200s are stored. The X-Offnet-Cache header names the path taken
// (hit, miss, or shared) so tests and clients can observe it.
func (s *Server) serveCached(v *view, h storeHandler, w http.ResponseWriter, r *http.Request) {
	key := r.URL.RequestURI()
	if e, ok := s.cache.get(v.gen, key); ok {
		writeEntry(w, e, "hit")
		return
	}
	leader := false
	e := s.cache.do(v.gen, key, func() entry {
		leader = true
		rec := recorder{status: http.StatusOK}
		h(v, &rec, r)
		return rec.entry()
	})
	if e.status == 0 {
		// The singleflight leader panicked before producing a response;
		// the leader's own request already turned that into a 500.
		writeError(w, http.StatusInternalServerError, "internal error: cache leader failed")
		return
	}
	if leader {
		writeEntry(w, e, "miss")
	} else {
		writeEntry(w, e, "shared")
	}
}

// recorder captures one handler response for the cache. Handlers only
// set Content-Type and write a JSON body, so that is all it keeps.
type recorder struct {
	status int
	header http.Header
	body   []byte
}

func (rec *recorder) Header() http.Header {
	if rec.header == nil {
		rec.header = make(http.Header)
	}
	return rec.header
}

func (rec *recorder) WriteHeader(code int) { rec.status = code }

func (rec *recorder) Write(p []byte) (int, error) {
	rec.body = append(rec.body, p...)
	return len(p), nil
}

func (rec *recorder) entry() entry {
	return entry{status: rec.status, ctype: rec.Header().Get("Content-Type"), body: rec.body}
}

// writeEntry replays a recorded response. The cached body bytes are
// shared across responses and never mutated.
func writeEntry(w http.ResponseWriter, e entry, cacheState string) {
	if e.ctype != "" {
		w.Header().Set("Content-Type", e.ctype)
	}
	w.Header().Set("X-Offnet-Cache", cacheState)
	w.WriteHeader(e.status)
	w.Write(e.body)
}

// handleMetrics serves the whole obs registry as one JSON snapshot.
// Like the health checks it bypasses the worker pool: the snapshot is
// a few atomic loads, and an operator debugging an overload needs the
// metrics precisely when no worker token is free.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	s.reg.Snapshot().WriteJSON(w)
}

// handleHealthz is liveness: the process is up and serving HTTP.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleReadyz is readiness: a valid, non-empty store is loaded. It
// stays true across hot reloads — the old store serves until the swap —
// and across rejected reloads, which only add a "degraded" note: the
// old generation is still perfectly good data, but operators need to
// see that a newer candidate was refused.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	v := s.view.Load()
	if v.st == nil || v.st.Stats().Snapshots == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false})
		return
	}
	resp := map[string]any{
		"ready":      true,
		"snapshots":  v.st.Stats().Snapshots,
		"latest":     v.st.Latest().Label(),
		"generation": v.gen,
	}
	if d := s.degraded.Load(); d != nil {
		// "degraded" stays the bare reason string — the stable contract
		// health checks key on — while "degraded_detail" carries the
		// typed record (error text, and for corrupt candidates the file
		// path and byte offset) operators need to act on the refusal.
		resp["degraded"] = d.Reason
		resp["degraded_detail"] = d
	}
	writeJSON(w, http.StatusOK, resp)
}

// hostingJSON is the wire form of one hypergiant presence run.
type hostingJSON struct {
	HG      string     `json:"hg"`
	AS      astopo.ASN `json:"as"`
	First   string     `json:"first"`
	Last    string     `json:"last"`
	Current bool       `json:"current"` // still present at the store's latest snapshot
}

func hostingsJSON(st *footstore.Store, as astopo.ASN) []hostingJSON {
	latest := st.Latest()
	out := []hostingJSON{}
	for _, h := range st.HostingsOf(as) {
		out = append(out, hostingJSON{
			HG:      h.HG.String(),
			AS:      h.AS,
			First:   h.First.Label(),
			Last:    h.Last.Label(),
			Current: h.Last == latest,
		})
	}
	return out
}

// handleSnapshots answers GET /v1/snapshots.
func handleSnapshots(v *view, w http.ResponseWriter, r *http.Request) {
	snaps := v.st.Snapshots()
	labels := make([]string, len(snaps))
	for i, sn := range snaps {
		labels[i] = sn.Label()
	}
	hgs := []string{}
	for _, id := range v.st.Hypergiants() {
		hgs = append(hgs, id.String())
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"snapshots":   labels,
		"latest":      v.st.Latest().Label(),
		"hypergiants": hgs,
		"generation":  v.gen,
	})
}

// resolveIP computes the /v1/ip answer for one parsed address — shared
// by the single-IP endpoint and every /v1/batch item.
func resolveIP(st *footstore.Store, ip netmodel.IP) map[string]any {
	prefix, origins, ok := st.LookupIP(ip)
	resp := map[string]any{"ip": ip.String(), "mapped": ok}
	hostings := []hostingJSON{}
	if ok {
		resp["prefix"] = prefix.String()
		resp["asns"] = origins
		for _, as := range origins {
			hostings = append(hostings, hostingsJSON(st, as)...)
		}
	}
	resp["hostings"] = hostings
	return resp
}

// handleIP answers GET /v1/ip/{ip}: which hypergiants serve from this
// address's network, and since when.
func handleIP(v *view, w http.ResponseWriter, r *http.Request) {
	ip, err := netmodel.ParseIP(r.PathValue("ip"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp := resolveIP(v.st, ip)
	resp["generation"] = v.gen
	writeJSON(w, http.StatusOK, resp)
}

// handleAS answers GET /v1/as/{asn}: the AS's hypergiant tenants over
// the whole study window.
func handleAS(v *view, w http.ResponseWriter, r *http.Request) {
	n, err := strconv.ParseUint(r.PathValue("asn"), 10, 32)
	if err != nil || n == 0 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid ASN %q", r.PathValue("asn")))
		return
	}
	as := astopo.ASN(n)
	writeJSON(w, http.StatusOK, map[string]any{
		"asn":        as,
		"hostings":   hostingsJSON(v.st, as),
		"generation": v.gen,
	})
}

// handleFootprint answers GET /v1/hg/{id}/footprint?snapshot=YYYY-MM
// (default: the latest snapshot in the store).
func handleFootprint(v *view, w http.ResponseWriter, r *http.Request) {
	h, ok := parseHG(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown hypergiant %q", r.PathValue("id")))
		return
	}
	snap := v.st.Latest()
	if label := r.URL.Query().Get("snapshot"); label != "" {
		snap, ok = timeline.FromLabel(label)
		if !ok {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid snapshot %q (want YYYY-MM on the quarterly grid)", label))
			return
		}
	}
	ases, ok := v.st.Footprint(h.ID, snap)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("snapshot %s not in store", snap.Label()))
		return
	}
	if ases == nil {
		ases = []astopo.ASN{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"hg":         h.Name,
		"snapshot":   snap.Label(),
		"count":      len(ases),
		"ases":       ases,
		"generation": v.gen,
	})
}

// parseHG accepts a hypergiant display name (case-insensitive) or a
// numeric registry ID.
func parseHG(s string) (*hg.Hypergiant, bool) {
	if h, ok := hg.ByName(s); ok {
		return h, true
	}
	if n, err := strconv.Atoi(s); err == nil && n > 0 && n <= hg.Count {
		return hg.Get(hg.ID(n)), true
	}
	return nil, false
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// publishMetrics exposes the first server's metrics under /debug/vars —
// the legacy expvar view of the same obs registry /debug/metrics serves
// whole. expvar's registry is global and rejects duplicate names, so
// later servers in the same process (tests, in-process load runs) keep
// private metrics.
var publishOnce sync.Once

func publishMetrics(s *Server) {
	publishOnce.Do(func() {
		expvar.Publish("offnetd.requests", expvar.Func(func() any {
			snap := s.reg.Snapshot()
			out := map[string]any{
				"panics":   snap.Counter("http.panics"),
				"shed":     snap.Counter("http.shed"),
				"rejected": snap.Counter("http.rejected"),
			}
			for _, name := range endpoints {
				out[name] = snap.Counter("http.requests." + name)
			}
			return out
		}))
		expvar.Publish("offnetd.latency", expvar.Func(func() any {
			snap := s.reg.Snapshot()
			out := map[string]any{}
			for _, name := range endpoints {
				h := snap.Histograms["http.latency_ns."+name]
				out[name] = map[string]any{
					"count":   h.Count,
					"mean":    time.Duration(h.Mean()).String(),
					"buckets": h.Buckets,
				}
			}
			return out
		}))
		expvar.Publish("offnetd.store", expvar.Func(func() any {
			v := s.view.Load()
			return map[string]any{
				"stats":       v.st.Stats(),
				"generation":  v.gen,
				"last_reload": time.Unix(0, s.lastReload.Load()).UTC().Format(time.RFC3339),
			}
		}))
		expvar.Publish("offnetd.cache", expvar.Func(func() any {
			snap := s.reg.Snapshot()
			return map[string]any{
				"hits":      snap.Counter("cache.hits"),
				"misses":    snap.Counter("cache.misses"),
				"shared":    snap.Counter("cache.shared"),
				"evictions": snap.Counter("cache.evictions"),
				"flushed":   snap.Counter("cache.flushed"),
				"entries":   snap.Gauges["cache.entries"],
			}
		}))
	})
}
