package offnetserve

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"offnetscope/internal/footstore"
)

// writeStoreFile encodes st (or raw bytes) to a file under dir.
func writeStoreFile(t *testing.T, dir, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReloadFileCommitsValidStore: the happy path bumps the generation,
// counts reload.accepted, and serves the new store's answers.
func TestReloadFileCommitsValidStore(t *testing.T) {
	s := New(testStore(t), Config{})
	dir := t.TempDir()
	path := writeStoreFile(t, dir, "next.fst", altStore(t).Encode())

	if err := s.ReloadFile(path); err != nil {
		t.Fatalf("ReloadFile(valid): %v", err)
	}
	if got := s.Generation(); got != 2 {
		t.Fatalf("generation = %d, want 2", got)
	}
	snap := s.Registry().Snapshot()
	if got := snap.Counter("reload.accepted"); got != 1 {
		t.Errorf("reload.accepted = %d, want 1", got)
	}
	if got := snap.Counter("reload.rejected"); got != 0 {
		t.Errorf("reload.rejected = %d, want 0", got)
	}
	if h := snap.Histograms["reload.validate_ns"]; h.Count != 1 {
		t.Errorf("reload.validate_ns count = %d, want 1", h.Count)
	}
	// altStore has 3 Google ASes at 2021-04 where testStore has 2 — the
	// served answer proves the swap committed.
	resp := getJSON(t, s, "/v1/hg/google/footprint", 200)
	if got := resp["count"].(float64); got != 3 {
		t.Errorf("footprint count after reload = %v, want 3", got)
	}
}

// TestReloadFileRejectsCorruptStore is the rollback contract: a corrupt
// candidate is refused, the old generation keeps serving, /readyz goes
// degraded, and a later good reload clears the degradation.
func TestReloadFileRejectsCorruptStore(t *testing.T) {
	s := New(testStore(t), Config{})
	dir := t.TempDir()
	good := altStore(t).Encode()

	corrupt := [][]byte{
		good[:len(good)/2],                  // truncated
		append([]byte("XXXX"), good[4:]...), // bad magic
		{},                                  // empty file
	}
	for i, data := range corrupt {
		path := writeStoreFile(t, dir, "bad.fst", data)
		err := s.ReloadFile(path)
		if err == nil {
			t.Fatalf("corrupt candidate %d accepted", i)
		}
		if !errors.Is(err, footstore.ErrCorrupt) {
			t.Errorf("corrupt candidate %d: error not ErrCorrupt: %v", i, err)
		}
	}

	// Rollback: still generation 1, still the old store's answers.
	if got := s.Generation(); got != 1 {
		t.Fatalf("generation after rejected reloads = %d, want 1", got)
	}
	resp := getJSON(t, s, "/v1/hg/google/footprint", 200)
	if got := resp["count"].(float64); got != 2 {
		t.Errorf("footprint count = %v, want 2 (old store must keep serving)", got)
	}

	snap := s.Registry().Snapshot()
	if got := snap.Counter("reload.rejected"); got != int64(len(corrupt)) {
		t.Errorf("reload.rejected = %d, want %d", got, len(corrupt))
	}
	if got := snap.Counter("reload.accepted"); got != 0 {
		t.Errorf("reload.accepted = %d, want 0", got)
	}

	// Degraded until a good reload commits.
	ready := getJSON(t, s, "/readyz", 200)
	if got := ready["degraded"]; got != DegradedReloadRejected {
		t.Errorf("readyz degraded = %v, want %q", got, DegradedReloadRejected)
	}
	if err := s.ReloadFile(writeStoreFile(t, dir, "good.fst", good)); err != nil {
		t.Fatalf("good reload after rejections: %v", err)
	}
	ready = getJSON(t, s, "/readyz", 200)
	if _, still := ready["degraded"]; still {
		t.Errorf("degraded survived a committed reload: %v", ready)
	}
	if got := s.Generation(); got != 2 {
		t.Errorf("generation = %d, want 2", got)
	}
}

// TestReloadFileMissingFile: a missing path is rejected (counted) but
// is NOT corruption.
func TestReloadFileMissingFile(t *testing.T) {
	s := New(testStore(t), Config{})
	err := s.ReloadFile(filepath.Join(t.TempDir(), "nope.fst"))
	if err == nil {
		t.Fatal("missing candidate accepted")
	}
	if errors.Is(err, footstore.ErrCorrupt) {
		t.Errorf("missing file misclassified as corrupt: %v", err)
	}
	if got := s.Registry().Snapshot().Counter("reload.rejected"); got != 1 {
		t.Errorf("reload.rejected = %d, want 1", got)
	}
}

// TestSmokeValidateRejectsEmptyStore: an empty (but structurally valid)
// store must not pass validation — serving zero snapshots is an outage
// with a 200 status code.
func TestSmokeValidateRejectsEmptyStore(t *testing.T) {
	st, err := footstore.NewBuilder().Build()
	if err != nil {
		// An empty build may itself error; either refusal is fine, but
		// if Build succeeds SmokeValidate must be the backstop.
		t.Skipf("builder refuses empty store at Build: %v", err)
	}
	if err := SmokeValidate(st); !errors.Is(err, ErrValidation) {
		t.Fatalf("SmokeValidate(empty) = %v, want ErrValidation", err)
	}
	if err := SmokeValidate(nil); !errors.Is(err, ErrValidation) {
		t.Fatalf("SmokeValidate(nil) = %v, want ErrValidation", err)
	}
}

// TestSmokeValidateAcceptsGoodStore: both fixtures pass.
func TestSmokeValidateAcceptsGoodStore(t *testing.T) {
	for name, st := range map[string]*footstore.Store{"test": testStore(t), "alt": altStore(t)} {
		if err := SmokeValidate(st); err != nil {
			t.Errorf("SmokeValidate(%s store) = %v, want nil", name, err)
		}
	}
}
