package offnetserve

import (
	"errors"
	"fmt"
	"time"

	"offnetscope/internal/footstore"
	"offnetscope/internal/netmodel"
)

// This file is the validated-reload half of the crash-only contract:
// cmd/offnetd's SIGHUP path calls ReloadFile, which opens the candidate
// store (footstore.Open already verifies magic, CRC, and structural
// decode — a corrupt file surfaces as footstore.ErrCorrupt), runs
// SmokeValidate against it, and only then commits the swap via Reload.
// A candidate that fails at any step is dropped on the floor: the old
// (store, generation) view keeps serving untouched, /readyz gains
// "degraded": "reload-rejected", and reload.rejected counts the refusal.
// SIGHUP with a bad file on disk must never take the daemon down or
// serve a torn view — this is where that promise is kept.

// DegradedReloadRejected is the /readyz "degraded" value after a
// candidate store was refused by reload validation.
const DegradedReloadRejected = "reload-rejected"

// DegradedInfo is the typed record behind /readyz's "degraded_detail":
// why the last reload was refused, and — when the candidate was
// structurally corrupt — exactly where in which file the corruption
// sits, lifted from footstore's CorruptError so an operator can go
// straight from a failing health check to the broken bytes.
type DegradedInfo struct {
	Reason  string `json:"reason"`           // stable machine key, e.g. "reload-rejected"
	Detail  string `json:"detail"`           // human-readable cause from the rejected reload
	Corrupt bool   `json:"corrupt"`          // the candidate failed structural decode (footstore.ErrCorrupt)
	Path    string `json:"path,omitempty"`   // corrupt file, when known
	Offset  int    `json:"offset,omitempty"` // byte offset of the corruption, when known
}

// newDegradedInfo classifies one rejected-reload error. A typed
// footstore corruption carries its file path and byte offset through;
// everything else (validation failures, unreadable files) keeps just
// the error text.
func newDegradedInfo(err error) *DegradedInfo {
	d := &DegradedInfo{Reason: DegradedReloadRejected, Detail: err.Error()}
	var ce *footstore.CorruptError
	if errors.As(err, &ce) {
		d.Corrupt = true
		d.Path = ce.Path
		d.Offset = ce.Offset
	}
	return d
}

// ErrValidation wraps every SmokeValidate failure so callers can
// distinguish "candidate failed validation" from "file unreadable".
var ErrValidation = errors.New("offnetserve: store validation failed")

// SmokeValidate runs the pre-commit checks a candidate store must pass
// before it may serve: structural invariants (non-empty, sorted
// snapshot grid, footprints resolvable) plus a fixed set of smoke
// queries exercising the exact lookup paths the handlers use. It is
// deliberately cheap — linear in snapshots × hypergiants, no
// per-prefix work beyond one probe — because it runs on the reload
// path while the old generation is still serving.
func SmokeValidate(st *footstore.Store) error {
	if st == nil {
		return fmt.Errorf("%w: nil store", ErrValidation)
	}
	stats := st.Stats()
	if stats.Snapshots == 0 {
		return fmt.Errorf("%w: empty store (no snapshots)", ErrValidation)
	}

	// Structure walk: the snapshot grid must be strictly increasing and
	// on the study calendar, and Latest must be its last element —
	// handleFootprint's default-snapshot path depends on both.
	snaps := st.Snapshots()
	for i, sn := range snaps {
		if !sn.Valid() {
			return fmt.Errorf("%w: snapshot %d outside the study grid", ErrValidation, int(sn))
		}
		if i > 0 && snaps[i-1] >= sn {
			return fmt.Errorf("%w: snapshots out of order (%s then %s)",
				ErrValidation, snaps[i-1].Label(), sn.Label())
		}
	}
	if st.Latest() != snaps[len(snaps)-1] {
		return fmt.Errorf("%w: Latest() disagrees with the snapshot list", ErrValidation)
	}

	// Smoke queries: every (hypergiant, snapshot) footprint the /v1
	// surface can name must resolve without error, and the latest
	// footprints must account for every hypergiant the store claims.
	for _, id := range st.Hypergiants() {
		for _, sn := range snaps {
			if _, ok := st.Footprint(id, sn); !ok {
				return fmt.Errorf("%w: footprint(%s, %s) unresolvable", ErrValidation, id, sn.Label())
			}
		}
	}

	// One probe through the IP lookup path: any answer is fine (the
	// prefix table may legitimately be empty), it just must not panic
	// and a mapped answer must carry origins.
	if p, origins, ok := st.LookupIP(netmodel.MustParseIP("192.0.2.1")); ok {
		if len(origins) == 0 {
			return fmt.Errorf("%w: prefix %s maps to zero origins", ErrValidation, p)
		}
	}
	return nil
}

// ReloadFile is the SIGHUP entry point: open the candidate at path,
// validate it, and commit the swap only if both succeed. On any
// failure the error reports why and the previous generation keeps
// serving; the caller's only job is to log it. The validation duration
// lands on reload.validate_ns either way — a slow validate on the
// reload path is an operational smell worth graphing.
func (s *Server) ReloadFile(path string) error {
	return s.reloadFrom(func() (*footstore.Store, error) { return footstore.Open(path) })
}

// ReloadGeneration is ReloadFile for a generation-log entry: open
// generation gen from the log at dir, validate it, and commit the swap
// only if both succeed. It shares ReloadFile's whole contract —
// rejection keeps the old view serving, marks /readyz degraded (with
// the corrupt file's path and offset when the entry is torn), and
// counts on reload.rejected.
func (s *Server) ReloadGeneration(dir string, gen uint64) error {
	return s.reloadFrom(func() (*footstore.Store, error) { return footstore.LoadGeneration(dir, gen) })
}

// reloadFrom is the shared validated-reload spine: open a candidate,
// smoke-validate it, and either commit the swap or record the typed
// refusal. Callers must serialize reloads, same as Reload.
func (s *Server) reloadFrom(open func() (*footstore.Store, error)) error {
	start := time.Now()
	st, err := open()
	if err == nil {
		err = SmokeValidate(st)
	}
	s.reloadValidateNs.Since(start)
	if err != nil {
		s.reloadRejected.Inc()
		s.degraded.Store(newDegradedInfo(err))
		return fmt.Errorf("reload rejected, generation %d keeps serving: %w", s.Generation(), err)
	}
	s.Reload(st)
	return nil
}
