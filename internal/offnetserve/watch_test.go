package offnetserve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"offnetscope/internal/footstore"
)

// reloadLog collects OnReload callbacks so tests can await and inspect
// the watcher's verdicts without racing it.
type reloadLog struct {
	mu      sync.Mutex
	entries []struct {
		gen uint64
		err error
	}
}

func (l *reloadLog) add(gen uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, struct {
		gen uint64
		err error
	}{gen, err})
}

// wait blocks until n reload attempts have been observed (or the test
// deadline kills it).
func (l *reloadLog) wait(t *testing.T, n int) []struct {
	gen uint64
	err error
} {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		l.mu.Lock()
		got := len(l.entries)
		out := append([]struct {
			gen uint64
			err error
		}(nil), l.entries...)
		l.mu.Unlock()
		if got >= n {
			return out
		}
		if time.Now().After(deadline) {
			t.Fatalf("watcher made %d reload attempts, want %d", got, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func openLog(t *testing.T, dir string) *footstore.GenLog {
	t.Helper()
	l, _, err := footstore.OpenGenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestWatchGenLogFollowsCommits: generations appended to the log appear
// in the server, in order, through the validated reload path.
func TestWatchGenLogFollowsCommits(t *testing.T) {
	dir := t.TempDir()
	glog := openLog(t, dir)
	if _, err := glog.Append(testStore(t)); err != nil {
		t.Fatal(err)
	}

	s := New(testStore(t), Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var rl reloadLog
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.WatchGenLog(ctx, dir, WatchConfig{Interval: 10 * time.Millisecond, OnReload: rl.add})
	}()

	got := rl.wait(t, 1)
	if got[0].gen != 1 || got[0].err != nil {
		t.Fatalf("first reload = gen %d err %v, want gen 1 committed", got[0].gen, got[0].err)
	}
	if s.Generation() != 2 {
		t.Fatalf("server generation = %d, want 2 after one watched reload", s.Generation())
	}

	// A second committed generation is picked up and served: altStore
	// has 3 Google ASes at 2021-04 where testStore has 2.
	if _, err := glog.Append(altStore(t)); err != nil {
		t.Fatal(err)
	}
	got = rl.wait(t, 2)
	if got[1].gen != 2 || got[1].err != nil {
		t.Fatalf("second reload = gen %d err %v, want gen 2 committed", got[1].gen, got[1].err)
	}
	resp := getJSON(t, s, "/v1/hg/google/footprint", 200)
	if n := resp["count"].(float64); n != 3 {
		t.Errorf("footprint count after watched reload = %v, want 3", n)
	}
	snap := s.Registry().Snapshot()
	if n := snap.Counter("reload.accepted"); n != 2 {
		t.Errorf("reload.accepted = %d, want 2", n)
	}

	cancel()
	<-done
}

// TestWatchGenLogSkipsBadGeneration: a committed-but-unloadable
// generation (an opaque payload appended via AppendEncoded) is reported
// once with typed corruption detail in /readyz, then left behind — the
// next good generation is served and clears the degradation.
func TestWatchGenLogSkipsBadGeneration(t *testing.T) {
	dir := t.TempDir()
	glog := openLog(t, dir)
	if _, err := glog.AppendEncoded([]byte("this is not a footstore")); err != nil {
		t.Fatal(err)
	}

	s := New(testStore(t), Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var rl reloadLog
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.WatchGenLog(ctx, dir, WatchConfig{Interval: 10 * time.Millisecond, OnReload: rl.add})
	}()

	got := rl.wait(t, 1)
	if got[0].gen != 1 || !errors.Is(got[0].err, footstore.ErrCorrupt) {
		t.Fatalf("bad generation verdict = gen %d err %v, want gen 1 ErrCorrupt", got[0].gen, got[0].err)
	}
	if s.Generation() != 1 {
		t.Fatalf("server generation = %d, want 1 (bad generation must not commit)", s.Generation())
	}

	// Satellite: /readyz carries the typed corruption detail — reason,
	// corrupt flag, and the segment file's path.
	ready := getJSON(t, s, "/readyz", 200)
	if gotReason := ready["degraded"]; gotReason != DegradedReloadRejected {
		t.Fatalf("degraded = %v, want %q", gotReason, DegradedReloadRejected)
	}
	detail, ok := ready["degraded_detail"].(map[string]any)
	if !ok {
		t.Fatalf("degraded_detail missing or mistyped: %v", ready["degraded_detail"])
	}
	if detail["reason"] != DegradedReloadRejected {
		t.Errorf("degraded_detail.reason = %v", detail["reason"])
	}
	if detail["corrupt"] != true {
		t.Errorf("degraded_detail.corrupt = %v, want true", detail["corrupt"])
	}
	if p, _ := detail["path"].(string); p == "" {
		t.Errorf("degraded_detail.path empty, want the corrupt segment's path (detail: %v)", detail)
	}

	// The watcher moved past the bad entry: the next good generation is
	// served and clears the degradation.
	if _, err := glog.Append(altStore(t)); err != nil {
		t.Fatal(err)
	}
	got = rl.wait(t, 2)
	if got[1].gen != 2 || got[1].err != nil {
		t.Fatalf("reload after bad generation = gen %d err %v, want gen 2 committed", got[1].gen, got[1].err)
	}
	ready = getJSON(t, s, "/readyz", 200)
	if d, still := ready["degraded"]; still {
		t.Errorf("degraded survived the next committed generation: %v", d)
	}
	snap := s.Registry().Snapshot()
	if n := snap.Counter("reload.rejected"); n != 1 {
		t.Errorf("reload.rejected = %d, want 1 (bad generation must be tried exactly once)", n)
	}

	cancel()
	<-done
}

// TestWatchGenLogSurvivesCompaction: the watcher's cursor snaps forward
// when compaction raises the log's base past generations it never saw.
func TestWatchGenLogSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	glog := openLog(t, dir)
	stores := []*footstore.Store{testStore(t), altStore(t), testStore(t), altStore(t)}
	for _, st := range stores {
		if _, err := glog.Append(st); err != nil {
			t.Fatal(err)
		}
	}
	// Keep only the newest generation: base jumps 1 → 4.
	if _, err := glog.Compact(1); err != nil {
		t.Fatal(err)
	}

	s := New(testStore(t), Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var rl reloadLog
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.WatchGenLog(ctx, dir, WatchConfig{Interval: 10 * time.Millisecond, OnReload: rl.add})
	}()

	got := rl.wait(t, 1)
	if got[0].gen != 4 || got[0].err != nil {
		t.Fatalf("post-compaction reload = gen %d err %v, want gen 4 committed", got[0].gen, got[0].err)
	}
	resp := getJSON(t, s, "/v1/hg/google/footprint", 200)
	if n := resp["count"].(float64); n != 3 {
		t.Errorf("footprint count = %v, want 3 (generation 4 is altStore)", n)
	}

	cancel()
	<-done
}
