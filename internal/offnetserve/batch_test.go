package offnetserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

func postJSON(t *testing.T, h http.Handler, url, body string, wantCode int) map[string]any {
	t.Helper()
	req := httptest.NewRequest("POST", url, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantCode {
		t.Fatalf("POST %s = %d, want %d: %s", url, rec.Code, wantCode, rec.Body.String())
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("POST %s: bad JSON: %v", url, err)
	}
	return out
}

func TestBatchEndpoint(t *testing.T) {
	s := New(testStore(t), Config{Workers: 4})
	resp := postJSON(t, s, "/v1/batch",
		`{"ips": ["10.1.2.3", "10.1.99.1", "192.0.2.1", "garbage"]}`, 200)

	if resp["count"] != float64(4) || resp["generation"] != float64(1) {
		t.Fatalf("batch envelope = %v", resp)
	}
	results := resp["results"].([]any)
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	// Item 0: mapped /24, Google + Netflix.
	r0 := results[0].(map[string]any)
	if r0["ip"] != "10.1.2.3" || r0["mapped"] != true || r0["prefix"] != "10.1.2.0/24" {
		t.Errorf("results[0] = %v", r0)
	}
	if got := hostingHGs(r0); len(got) != 2 || got[0] != "Google" || got[1] != "Netflix" {
		t.Errorf("results[0] hostings = %v", got)
	}
	// Item 2: well-formed but unmapped.
	r2 := results[2].(map[string]any)
	if r2["mapped"] != false || len(r2["hostings"].([]any)) != 0 {
		t.Errorf("results[2] = %v", r2)
	}
	// Item 3: per-item error, not a whole-batch failure.
	r3 := results[3].(map[string]any)
	if r3["ip"] != "garbage" || r3["error"] == nil {
		t.Errorf("results[3] = %v", r3)
	}

	snap := s.reg.Snapshot()
	if got := snap.Counter("http.requests.batch"); got != 1 {
		t.Errorf("http.requests.batch = %d, want 1 (one worker slot per batch)", got)
	}
	if got := snap.Counter("http.batch_items"); got != 4 {
		t.Errorf("http.batch_items = %d, want 4", got)
	}
}

// TestBatchMatchesSingle: for every address, a batch item must carry
// exactly the single-endpoint answer (modulo the envelope-level
// generation field, which the batch hoists up because all items pin
// one view).
func TestBatchMatchesSingle(t *testing.T) {
	s := New(testStore(t), Config{Workers: 4})
	ips := []string{"10.1.2.3", "10.1.99.1", "192.0.2.1"}

	quoted := make([]string, len(ips))
	for i, ip := range ips {
		quoted[i] = fmt.Sprintf("%q", ip)
	}
	batch := postJSON(t, s, "/v1/batch", `{"ips": [`+strings.Join(quoted, ",")+`]}`, 200)
	results := batch["results"].([]any)

	for i, ip := range ips {
		single := getJSON(t, s, "/v1/ip/"+ip, 200)
		delete(single, "generation")
		if !reflect.DeepEqual(results[i], single) {
			t.Errorf("batch[%s] = %v\nsingle  = %v", ip, results[i], single)
		}
	}
}

func TestBatchLimits(t *testing.T) {
	s := New(testStore(t), Config{Workers: 4, MaxBatch: 3})

	// One over the limit: 413 with the limit named.
	over := postJSON(t, s, "/v1/batch", `{"ips": ["1.1.1.1","2.2.2.2","3.3.3.3","4.4.4.4"]}`, 413)
	if !strings.Contains(over["error"].(string), "3-item limit") {
		t.Errorf("413 body = %v", over)
	}
	// At the limit: fine.
	at := postJSON(t, s, "/v1/batch", `{"ips": ["1.1.1.1","2.2.2.2","3.3.3.3"]}`, 200)
	if at["count"] != float64(3) {
		t.Errorf("at-limit count = %v", at["count"])
	}
	// Malformed body: 400.
	postJSON(t, s, "/v1/batch", `{"ips": [`, 400)
	// Empty batch: legal, zero results.
	empty := postJSON(t, s, "/v1/batch", `{"ips": []}`, 200)
	if empty["count"] != float64(0) || len(empty["results"].([]any)) != 0 {
		t.Errorf("empty batch = %v", empty)
	}

	// GET on the batch route is a method mismatch.
	req := httptest.NewRequest("GET", "/v1/batch", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/batch = %d, want 405", rec.Code)
	}
}

// TestBatchGenerationTracksReload: the batch envelope reports the
// generation the whole batch was resolved against, and it moves with
// reloads like the single endpoints.
func TestBatchGenerationTracksReload(t *testing.T) {
	s := New(testStore(t), Config{Workers: 4})
	if got := postJSON(t, s, "/v1/batch", `{"ips": ["10.1.2.3"]}`, 200)["generation"]; got != float64(1) {
		t.Errorf("generation = %v, want 1", got)
	}
	s.Reload(altStore(t))
	if got := postJSON(t, s, "/v1/batch", `{"ips": ["10.1.2.3"]}`, 200)["generation"]; got != float64(2) {
		t.Errorf("generation after reload = %v, want 2", got)
	}
}
