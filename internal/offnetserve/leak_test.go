package offnetserve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// settledGoroutines polls runtime.NumGoroutine until the count stops
// shrinking (HTTP keepalive reapers and test-server teardown finish
// asynchronously), then returns it. The settle loop is what keeps this
// test deterministic enough for -race CI.
func settledGoroutines(t *testing.T) int {
	t.Helper()
	prev := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		time.Sleep(10 * time.Millisecond)
		n := runtime.NumGoroutine()
		if n >= prev {
			return n
		}
		prev = n
	}
	return prev
}

// TestGoroutineLeakServeCycles is the leak regression for the serving
// engine: repeated start → serve-under-concurrent-load (with a reload
// mid-flight) → stop cycles must return the process to its baseline
// goroutine count. A leaked per-request or per-reload goroutine
// compounds over a daemon's months of SIGHUPs — exactly the failure a
// one-shot test never sees. Runs under -race via make chaos-race.
func TestGoroutineLeakServeCycles(t *testing.T) {
	baseline := settledGoroutines(t)

	for cycle := 0; cycle < 3; cycle++ {
		s := New(testStore(t), Config{
			Workers:         8,
			CacheSize:       64,
			RequestTimeout:  2 * time.Second,
			BreakerFailures: 16,
		})
		ts := httptest.NewServer(s)
		client := ts.Client()

		var wg sync.WaitGroup
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					var resp *http.Response
					var err error
					switch i % 3 {
					case 0:
						resp, err = client.Get(ts.URL + "/v1/snapshots")
					case 1:
						resp, err = client.Get(fmt.Sprintf("%s/v1/ip/10.0.%d.%d", ts.URL, g, i))
					default:
						resp, err = client.Post(ts.URL+"/v1/batch", "application/json",
							strings.NewReader(`{"ips":["10.0.0.1","10.1.2.3"]}`))
					}
					if err != nil {
						t.Errorf("cycle %d request: %v", cycle, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}(g)
		}
		// A reload racing the in-flight load, every cycle: the swap path
		// must not strand cache singleflight waiters or flush workers.
		s.Reload(altStore(t))
		wg.Wait()
		ts.Close()
		client.CloseIdleConnections()
	}

	settled := settledGoroutines(t)
	// Allow a little slack for runtime-internal goroutines (GC, netpoll)
	// that may have started legitimately; a real leak here scales with
	// cycles × requests and blows far past this.
	if settled > baseline+5 {
		t.Fatalf("goroutines: baseline %d, settled %d after 3 serve cycles — leak", baseline, settled)
	}
}
