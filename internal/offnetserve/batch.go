package offnetserve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"offnetscope/internal/netmodel"
)

// batchRequest is the POST /v1/batch body: a flat list of dotted-quad
// addresses to resolve.
type batchRequest struct {
	IPs []string `json:"ips"`
}

// handleBatch answers POST /v1/batch: amortized bulk IP→HG resolution.
// One batch consumes one worker-pool slot and one HTTP round trip for
// up to maxBatch lookups, which is what makes million-lookup runs
// affordable. The response carries per-item results in input order —
// an unparseable address yields a per-item error, never a whole-batch
// failure — plus the store generation every item was resolved against
// (the whole batch pins one view, so one generation covers all items).
// Batches bypass the query cache: their item mix is too diverse to
// reuse and would evict the hot single-query entries.
func (s *Server) handleBatch(v *view, w http.ResponseWriter, r *http.Request) {
	// Bound the body before decoding: ~64 bytes covers any quoted
	// dotted-quad plus JSON framing, so maxBatch items always fit and
	// a deliberately huge body fails fast.
	body := http.MaxBytesReader(w, r.Body, int64(s.maxBatch)*64+4096)
	var req batchRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid batch body: %v", err))
		return
	}
	if len(req.IPs) > s.maxBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d exceeds the %d-item limit", len(req.IPs), s.maxBatch))
		return
	}
	s.batchItems.Add(int64(len(req.IPs)))
	// All items share the request's deadline budget: a batch must not
	// stretch one worker slot past RequestTimeout just because it has
	// many items. The check is amortized over 64 items — one atomic
	// load per check, invisible against the lookup cost.
	ctx := r.Context()
	results := make([]map[string]any, len(req.IPs))
	for i, raw := range req.IPs {
		if i&63 == 0 && ctx.Err() != nil {
			writeError(w, http.StatusGatewayTimeout,
				fmt.Sprintf("batch deadline exceeded after %d of %d items", i, len(req.IPs)))
			return
		}
		ip, err := netmodel.ParseIP(raw)
		if err != nil {
			results[i] = map[string]any{"ip": raw, "error": err.Error()}
			continue
		}
		results[i] = resolveIP(v.st, ip)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": v.gen,
		"count":      len(req.IPs),
		"results":    results,
	})
}
