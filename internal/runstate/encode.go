package runstate

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"sort"

	"offnetscope/internal/astopo"
	"offnetscope/internal/certmodel"
	"offnetscope/internal/core"
	"offnetscope/internal/corpus"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/timeline"
)

// Entry wire format, following the footstore discipline:
//
//	magic "offnetCK" | uvarint version | JSON payload | CRC-32 (IEEE, LE)
//
// The CRC covers every preceding byte, so truncation, bit flips, and
// half-written files all fail closed. The payload is JSON rather than a
// packed binary: checkpoints are transient per-run scratch (entries are
// ~tens of KB and rewritten from scratch on any input change), so
// debuggability beats density here. Map-shaped sets are serialized
// sorted and slices verbatim, keeping encode deterministic; consumers
// never depend on map iteration order.

var entryMagic = []byte("offnetCK")

const (
	entryVersion = 1
	entrySuffix  = ".ckpt"
)

type wireEntry struct {
	Snapshot int                 `json:"snapshot"`
	Result   wireResult          `json:"result"`
	Envelope core.EnvelopeValues `json:"envelope"`
	MemDelta []wireMem           `json:"mem_delta,omitempty"`
}

type wireMem struct {
	IP   uint32   `json:"ip"`
	ASNs []uint32 `json:"asns,omitempty"`
}

type wireResult struct {
	Vendor          string         `json:"vendor"`
	TotalCertIPs    int            `json:"total_cert_ips"`
	TotalCertASes   int            `json:"total_cert_ases"`
	ValidCertIPs    int            `json:"valid_cert_ips"`
	InvalidByReason map[string]int `json:"invalid_by_reason,omitempty"`
	HGOnNetCertIPs  int            `json:"hg_onnet_cert_ips"`
	HGOffNetCertIPs int            `json:"hg_offnet_cert_ips"`
	PerHG           []wireHG       `json:"per_hg"`
}

type wireHG struct {
	HG int `json:"hg"`

	OnNetASes []uint32 `json:"onnet_ases,omitempty"` // verbatim order
	DNSNames  []string `json:"dns_names,omitempty"`  // sorted

	CandidateASes         []uint32 `json:"candidate_ases,omitempty"` // sorted
	ConfirmedASes         []uint32 `json:"confirmed_ases,omitempty"` // sorted
	ConfirmedByEitherASes []uint32 `json:"either_ases,omitempty"`    // sorted
	ConfirmedByBothASes   []uint32 `json:"both_ases,omitempty"`      // sorted
	ExpiredASes           []uint32 `json:"expired_ases,omitempty"`   // sorted
	CandidateIPs          int      `json:"candidate_ips"`
	ConfirmedIPs          int      `json:"confirmed_ips"`
	ConfirmedIPList       []uint32 `json:"confirmed_ip_list,omitempty"` // verbatim order
	CandidateIPList       []uint32 `json:"candidate_ip_list,omitempty"` // verbatim order
	ExpiredIPs            []uint32 `json:"expired_ips,omitempty"`       // verbatim order
	OnNetIPs              int      `json:"onnet_ips"`
	CertIPGroups          []fpSize `json:"cert_ip_groups,omitempty"` // sorted by fingerprint
}

type fpSize struct {
	FP uint64 `json:"fp"`
	N  int    `json:"n"`
}

func encodeEntry(s timeline.Snapshot, ck *core.CheckpointData) ([]byte, error) {
	if ck == nil || ck.Result == nil {
		return nil, fmt.Errorf("runstate: refusing to checkpoint empty snapshot %s", s.Label())
	}
	we := wireEntry{
		Snapshot: int(s),
		Result:   packResult(ck.Result),
		Envelope: ck.Envelope,
	}
	for _, ent := range ck.MemDelta {
		we.MemDelta = append(we.MemDelta, wireMem{IP: uint32(ent.IP), ASNs: asnsOut(ent.ASNs)})
	}
	payload, err := json.Marshal(we)
	if err != nil {
		return nil, fmt.Errorf("runstate: %w", err)
	}
	var buf bytes.Buffer
	buf.Write(entryMagic)
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], entryVersion)])
	buf.Write(payload)
	binary.Write(&buf, binary.LittleEndian, crc32.ChecksumIEEE(buf.Bytes()))
	return buf.Bytes(), nil
}

func decodeEntry(s timeline.Snapshot, raw []byte) (*core.CheckpointData, error) {
	if len(raw) < len(entryMagic)+1+4 || !bytes.Equal(raw[:len(entryMagic)], entryMagic) {
		return nil, fmt.Errorf("runstate: not a checkpoint entry")
	}
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("runstate: checksum mismatch")
	}
	rest := body[len(entryMagic):]
	version, n := binary.Uvarint(rest)
	if n <= 0 || version != entryVersion {
		return nil, fmt.Errorf("runstate: unsupported entry version %d", version)
	}
	var we wireEntry
	if err := json.Unmarshal(rest[n:], &we); err != nil {
		return nil, fmt.Errorf("runstate: %w", err)
	}
	if we.Snapshot != int(s) {
		return nil, fmt.Errorf("runstate: entry is for snapshot %d, not %d", we.Snapshot, int(s))
	}
	ck := &core.CheckpointData{
		Result:   unpackResult(timeline.Snapshot(we.Snapshot), we.Result),
		Envelope: we.Envelope,
	}
	for _, m := range we.MemDelta {
		ck.MemDelta = append(ck.MemDelta, core.MemEntry{IP: netmodel.IP(m.IP), ASNs: asnsIn(m.ASNs)})
	}
	return ck, nil
}

func packResult(r *core.Result) wireResult {
	wr := wireResult{
		Vendor:          string(r.Vendor),
		TotalCertIPs:    r.TotalCertIPs,
		TotalCertASes:   r.TotalCertASes,
		ValidCertIPs:    r.ValidCertIPs,
		InvalidByReason: r.InvalidByReason,
		HGOnNetCertIPs:  r.HGOnNetCertIPs,
		HGOffNetCertIPs: r.HGOffNetCertIPs,
	}
	ids := make([]int, 0, len(r.PerHG))
	for id := range r.PerHG {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		wr.PerHG = append(wr.PerHG, packHG(r.PerHG[hg.ID(id)]))
	}
	return wr
}

func unpackResult(s timeline.Snapshot, wr wireResult) *core.Result {
	r := &core.Result{
		Vendor:          corpus.Vendor(wr.Vendor),
		Snapshot:        s,
		TotalCertIPs:    wr.TotalCertIPs,
		TotalCertASes:   wr.TotalCertASes,
		ValidCertIPs:    wr.ValidCertIPs,
		InvalidByReason: wr.InvalidByReason,
		HGOnNetCertIPs:  wr.HGOnNetCertIPs,
		HGOffNetCertIPs: wr.HGOffNetCertIPs,
		PerHG:           make(map[hg.ID]*core.HGResult, len(wr.PerHG)),
	}
	if r.InvalidByReason == nil {
		r.InvalidByReason = map[string]int{}
	}
	for _, wh := range wr.PerHG {
		r.PerHG[hg.ID(wh.HG)] = unpackHG(wh)
	}
	return r
}

func packHG(h *core.HGResult) wireHG {
	wh := wireHG{
		HG:                    int(h.HG),
		OnNetASes:             asnsOut(h.OnNetASes),
		DNSNames:              stringsOut(h.DNSNames),
		CandidateASes:         setOut(h.CandidateASes),
		ConfirmedASes:         setOut(h.ConfirmedASes),
		ConfirmedByEitherASes: setOut(h.ConfirmedByEitherASes),
		ConfirmedByBothASes:   setOut(h.ConfirmedByBothASes),
		ExpiredASes:           setOut(h.ExpiredASes),
		CandidateIPs:          h.CandidateIPs,
		ConfirmedIPs:          h.ConfirmedIPs,
		ConfirmedIPList:       ipsOut(h.ConfirmedIPList),
		CandidateIPList:       ipsOut(h.CandidateIPList),
		ExpiredIPs:            ipsOut(h.ExpiredIPs),
		OnNetIPs:              h.OnNetIPs,
	}
	fps := make([]uint64, 0, len(h.CertIPGroups))
	for fp := range h.CertIPGroups {
		fps = append(fps, uint64(fp))
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	for _, fp := range fps {
		wh.CertIPGroups = append(wh.CertIPGroups, fpSize{FP: fp, N: h.CertIPGroups[certmodel.Fingerprint(fp)]})
	}
	return wh
}

func unpackHG(wh wireHG) *core.HGResult {
	h := &core.HGResult{
		HG:                    hg.ID(wh.HG),
		OnNetASes:             asnsIn(wh.OnNetASes),
		DNSNames:              stringsIn(wh.DNSNames),
		CandidateASes:         setIn(wh.CandidateASes),
		ConfirmedASes:         setIn(wh.ConfirmedASes),
		ConfirmedByEitherASes: setIn(wh.ConfirmedByEitherASes),
		ConfirmedByBothASes:   setIn(wh.ConfirmedByBothASes),
		ExpiredASes:           setIn(wh.ExpiredASes),
		CandidateIPs:          wh.CandidateIPs,
		ConfirmedIPs:          wh.ConfirmedIPs,
		ConfirmedIPList:       ipsIn(wh.ConfirmedIPList),
		CandidateIPList:       ipsIn(wh.CandidateIPList),
		ExpiredIPs:            ipsIn(wh.ExpiredIPs),
		OnNetIPs:              wh.OnNetIPs,
		CertIPGroups:          make(map[certmodel.Fingerprint]int, len(wh.CertIPGroups)),
	}
	for _, g := range wh.CertIPGroups {
		h.CertIPGroups[certmodel.Fingerprint(g.FP)] = g.N
	}
	return h
}

func asnsOut(in []astopo.ASN) []uint32 {
	out := make([]uint32, len(in))
	for i, as := range in {
		out[i] = uint32(as)
	}
	return out
}

func asnsIn(in []uint32) []astopo.ASN {
	if in == nil {
		return nil
	}
	out := make([]astopo.ASN, len(in))
	for i, as := range in {
		out[i] = astopo.ASN(as)
	}
	return out
}

func ipsOut(in []netmodel.IP) []uint32 {
	out := make([]uint32, len(in))
	for i, ip := range in {
		out[i] = uint32(ip)
	}
	return out
}

func ipsIn(in []uint32) []netmodel.IP {
	if in == nil {
		return nil
	}
	out := make([]netmodel.IP, len(in))
	for i, ip := range in {
		out[i] = netmodel.IP(ip)
	}
	return out
}

func setOut(in map[astopo.ASN]struct{}) []uint32 {
	out := make([]uint32, 0, len(in))
	for as := range in {
		out = append(out, uint32(as))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func setIn(in []uint32) map[astopo.ASN]struct{} {
	out := make(map[astopo.ASN]struct{}, len(in))
	for _, as := range in {
		out[astopo.ASN(as)] = struct{}{}
	}
	return out
}

func stringsOut(in map[string]struct{}) []string {
	out := make([]string, 0, len(in))
	for s := range in {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func stringsIn(in []string) map[string]struct{} {
	out := make(map[string]struct{}, len(in))
	for _, s := range in {
		out[s] = struct{}{}
	}
	return out
}
