package runstate

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
)

// Named blob checkpoints: small opaque payloads (the continuous-
// measurement daemon's mid-wave progress, for example) that need the
// same crash discipline as snapshot entries but none of the manifest
// machinery — the caller owns staleness via whatever it encodes into
// the payload. Wire format follows the entry discipline:
//
//	magic "offnetBL" | uvarint version | payload | CRC-32 (IEEE, LE)
//
// A blob is written atomically (temp + fsync + rename + dir fsync), so
// after SaveBlob returns it survives SIGKILL; a missing, truncated, or
// corrupt blob loads as nil — recompute, never trust.

var blobMagic = []byte("offnetBL")

const (
	blobVersion = 1
	blobSuffix  = ".blob"
)

// blobPath flattens the caller's name into one safe filename.
func blobPath(dir, name string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
	return filepath.Join(dir, safe+blobSuffix)
}

// SaveBlob atomically persists payload under name inside dir, creating
// the directory if needed.
func SaveBlob(dir, name string, payload []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("runstate: %w", err)
	}
	buf := append([]byte(nil), blobMagic...)
	buf = binary.AppendUvarint(buf, blobVersion)
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return writeAtomic(blobPath(dir, name), buf)
}

// LoadBlob returns the payload saved under name, or nil when the blob
// is missing, truncated, or corrupt. A damaged blob is removed so the
// next save starts clean.
func LoadBlob(dir, name string) []byte {
	path := blobPath(dir, name)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	if len(raw) < len(blobMagic)+1+4 || !bytes.Equal(raw[:len(blobMagic)], blobMagic) {
		os.Remove(path)
		return nil
	}
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		os.Remove(path)
		return nil
	}
	rest := body[len(blobMagic):]
	version, n := binary.Uvarint(rest)
	if n <= 0 || version != blobVersion {
		os.Remove(path)
		return nil
	}
	return rest[n:]
}

// RemoveBlob deletes the blob saved under name; removing a blob that
// does not exist is not an error.
func RemoveBlob(dir, name string) error {
	err := os.Remove(blobPath(dir, name))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("runstate: %w", err)
	}
	return nil
}
