package runstate

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestBlobRoundtrip(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(`{"wave":"2021-04","done":3}`)
	if err := SaveBlob(dir, "wave-2021-04", payload); err != nil {
		t.Fatal(err)
	}
	if got := LoadBlob(dir, "wave-2021-04"); !bytes.Equal(got, payload) {
		t.Fatalf("LoadBlob = %q, want %q", got, payload)
	}
	// Overwrite wins.
	if err := SaveBlob(dir, "wave-2021-04", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got := LoadBlob(dir, "wave-2021-04"); string(got) != "v2" {
		t.Fatalf("after overwrite: %q", got)
	}
	if err := RemoveBlob(dir, "wave-2021-04"); err != nil {
		t.Fatal(err)
	}
	if got := LoadBlob(dir, "wave-2021-04"); got != nil {
		t.Fatalf("after remove: %q", got)
	}
	// Removing twice is fine.
	if err := RemoveBlob(dir, "wave-2021-04"); err != nil {
		t.Fatal(err)
	}
}

func TestBlobEmptyPayload(t *testing.T) {
	dir := t.TempDir()
	if err := SaveBlob(dir, "empty", nil); err != nil {
		t.Fatal(err)
	}
	// An empty payload is distinguishable from a missing blob only by
	// the file's presence; both load as zero-length/nil, which is what
	// "recompute from scratch" wants.
	if got := LoadBlob(dir, "empty"); len(got) != 0 {
		t.Fatalf("empty blob = %q", got)
	}
}

func TestBlobCorruptDiscardedAndRemoved(t *testing.T) {
	dir := t.TempDir()
	if err := SaveBlob(dir, "ck", []byte("precious progress")); err != nil {
		t.Fatal(err)
	}
	path := blobPath(dir, "ck")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func([]byte) []byte{
		"bitflip":   func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)/2] ^= 0x10; return c },
		"truncated": func(b []byte) []byte { return b[:len(b)-3] },
		"garbage":   func([]byte) []byte { return []byte("not a blob") },
	} {
		if err := os.WriteFile(path, mutate(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		if got := LoadBlob(dir, "ck"); got != nil {
			t.Fatalf("%s blob loaded as %q", name, got)
		}
		if _, err := os.Lstat(path); !os.IsNotExist(err) {
			t.Fatalf("%s blob not removed after rejection", name)
		}
	}
}

func TestBlobNameFlattening(t *testing.T) {
	dir := t.TempDir()
	if err := SaveBlob(dir, "wave/2021 04:b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := LoadBlob(dir, "wave/2021 04:b"); string(got) != "x" {
		t.Fatalf("flattened blob = %q", got)
	}
	// The hostile name must not have escaped the directory.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].IsDir() {
		t.Fatalf("unexpected directory contents: %v", ents)
	}
	if filepath.Ext(ents[0].Name()) != blobSuffix {
		t.Fatalf("blob filename %q", ents[0].Name())
	}
}
