// Package runstate persists longitudinal-run progress so a crashed or
// killed growth run resumes instead of restarting. A checkpoint
// directory holds a manifest binding the run to its inputs (corpus
// fingerprint, pipeline-options hash, vendor, format version) plus one
// crash-safe entry per completed snapshot. Entries are written with the
// footstore discipline — temp file, fsync, rename, CRC-32 trailer — so
// a SIGKILL mid-write leaves at worst a stale temp file, never a
// half-trusted checkpoint; corrupt or partial entries are discarded on
// load and simply recomputed.
package runstate

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"offnetscope/internal/core"
	"offnetscope/internal/obs"
	"offnetscope/internal/timeline"
)

// Format is the checkpoint wire-format version; bumping it invalidates
// every existing checkpoint directory.
const Format = 1

const manifestName = "manifest.json"

// ErrManifestMismatch wraps every resume rejection so callers can tell
// "stale checkpoints" from I/O failure.
var ErrManifestMismatch = errors.New("runstate: checkpoint manifest does not match this run")

// Manifest pins a checkpoint directory to one exact run configuration.
// Any field differing between the directory and the resuming run means
// the checkpoints describe a different study and must not be mixed in.
type Manifest struct {
	Format  int    `json:"format"`
	Corpus  string `json:"corpus_fingerprint"`
	Options string `json:"options_hash"`
	Vendor  string `json:"vendor"`
}

func (m Manifest) diff(other Manifest) string {
	var parts []string
	if m.Format != other.Format {
		parts = append(parts, fmt.Sprintf("format %d vs %d", other.Format, m.Format))
	}
	if m.Corpus != other.Corpus {
		parts = append(parts, "corpus contents changed")
	}
	if m.Options != other.Options {
		parts = append(parts, "pipeline options changed")
	}
	if m.Vendor != other.Vendor {
		parts = append(parts, fmt.Sprintf("vendor %q vs %q", other.Vendor, m.Vendor))
	}
	return strings.Join(parts, "; ")
}

// Dir is an open checkpoint directory.
type Dir struct {
	path     string
	manifest Manifest
	metrics  *obs.Registry
}

// Path returns the directory the checkpoints live in.
func (d *Dir) Path() string { return d.path }

// SetMetrics routes checkpoint accounting (runstate.* in DESIGN.md §7)
// into reg: save/load counts, corrupt-entry discards, and save/load
// latency histograms. A nil registry (the default) disables it.
func (d *Dir) SetMetrics(reg *obs.Registry) { d.metrics = reg }

// Create opens a fresh checkpoint directory for the given run,
// discarding any entries (and temp-file litter) a previous run left
// behind. The directory is created if missing.
func Create(path string, m Manifest) (*Dir, error) {
	m.Format = Format
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("runstate: %w", err)
	}
	ents, err := os.ReadDir(path)
	if err != nil {
		return nil, fmt.Errorf("runstate: %w", err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if name == manifestName || strings.HasSuffix(name, entrySuffix) || strings.HasPrefix(name, tmpPrefix) {
			if err := os.Remove(filepath.Join(path, name)); err != nil {
				return nil, fmt.Errorf("runstate: clearing stale checkpoint: %w", err)
			}
		}
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("runstate: %w", err)
	}
	if err := writeAtomic(filepath.Join(path, manifestName), append(raw, '\n')); err != nil {
		return nil, err
	}
	return &Dir{path: path, manifest: m}, nil
}

// Resume opens an existing checkpoint directory, validating that its
// manifest matches the resuming run exactly. A directory with no
// manifest (or no directory at all) starts fresh via Create — there is
// simply nothing to resume. A mismatched manifest is an error: mixing
// checkpoints across different corpuses or options would silently
// corrupt the study.
func Resume(path string, m Manifest) (*Dir, error) {
	m.Format = Format
	raw, err := os.ReadFile(filepath.Join(path, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return Create(path, m)
	}
	if err != nil {
		return nil, fmt.Errorf("runstate: %w", err)
	}
	var have Manifest
	if err := json.Unmarshal(raw, &have); err != nil {
		return nil, fmt.Errorf("runstate: unreadable manifest in %s: %w (delete the directory to start over)", path, err)
	}
	if have != m {
		return nil, fmt.Errorf("%w: %s (directory %s; delete it or pick another -checkpoint to start over)",
			ErrManifestMismatch, m.diff(have), path)
	}
	return &Dir{path: path, manifest: m}, nil
}

func (d *Dir) entryPath(s timeline.Snapshot) string {
	return filepath.Join(d.path, "snap-"+s.Label()+entrySuffix)
}

// Save persists one completed snapshot atomically: temp file in the
// same directory, fsync, rename. After Save returns, a crash at any
// later point leaves the entry loadable.
func (d *Dir) Save(s timeline.Snapshot, ck *core.CheckpointData) error {
	start := time.Now()
	defer d.metrics.Histogram("runstate.save_ns").Since(start)
	raw, err := encodeEntry(s, ck)
	if err != nil {
		d.metrics.Counter("runstate.save_errors").Inc()
		return err
	}
	if err := writeAtomic(d.entryPath(s), raw); err != nil {
		d.metrics.Counter("runstate.save_errors").Inc()
		return err
	}
	d.metrics.Counter("runstate.saves").Inc()
	return nil
}

// Load returns the checkpoint for snapshot s, or nil when the entry is
// missing, truncated, or corrupt — a damaged checkpoint is removed and
// the snapshot recomputed, never trusted.
func (d *Dir) Load(s timeline.Snapshot) *core.CheckpointData {
	start := time.Now()
	defer d.metrics.Histogram("runstate.load_ns").Since(start)
	d.metrics.Counter("runstate.loads").Inc()
	path := d.entryPath(s)
	raw, err := os.ReadFile(path)
	if err != nil {
		d.metrics.Counter("runstate.load_misses").Inc()
		return nil
	}
	ck, err := decodeEntry(s, raw)
	if err != nil {
		d.metrics.Counter("runstate.load_corrupt").Inc()
		os.Remove(path)
		return nil
	}
	d.metrics.Counter("runstate.load_hits").Inc()
	return ck
}

const tmpPrefix = ".tmp-"

// writeAtomic is the footstore/corpus write discipline: temp file in
// the target's directory, write, fsync, close, chmod, rename, then
// fsync the directory so the rename itself survives power loss.
func writeAtomic(path string, raw []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, tmpPrefix+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("runstate: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("runstate: writing %s: %w", path, err)
	}
	if _, err := f.Write(raw); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("runstate: writing %s: %w", path, err)
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("runstate: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("runstate: %w", err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("runstate: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("runstate: syncing %s: %w", dir, serr)
	}
	if cerr != nil {
		return fmt.Errorf("runstate: %w", cerr)
	}
	return nil
}

// CorpusFingerprint hashes the contents of every regular file under dir
// (names, sizes, and a CRC of the bytes, in sorted path order) into a
// stable hex digest. Any change to the corpus — a regenerated world, an
// added vendor-month, even silent bit rot — changes the fingerprint and
// invalidates old checkpoints.
func CorpusFingerprint(dir string) (string, error) {
	h := sha256.New()
	err := filepath.WalkDir(dir, func(path string, ent fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !ent.Type().IsRegular() {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		crc := crc32.NewIEEE()
		n, err := io.Copy(crc, f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(h, "%s\x00%d\x00%08x\n", filepath.ToSlash(rel), n, crc.Sum32())
		return nil
	})
	if err != nil {
		return "", fmt.Errorf("runstate: fingerprinting %s: %w", dir, err)
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// OptionsHash digests the pipeline options that affect inference
// output. Worker count, timeouts, and retry policy are deliberately
// excluded: they change how the run executes, never what it computes.
func OptionsHash(opts core.Options) string {
	var ids []int
	for id, on := range opts.IgnoreExpiryFor {
		if on {
			ids = append(ids, int(id))
		}
	}
	sort.Ints(ids)
	h := sha256.Sum256([]byte(fmt.Sprintf("mode=%d chain=%t dns=%t cf=%t conflict=%t nginx=%t expiry=%v",
		opts.HeaderMode, opts.DisableChainValidation, opts.DisableDNSNameFilter,
		opts.DisableCloudflareFilter, opts.DisableConflictPriority, opts.DisableNetflixNginx, ids)))
	return fmt.Sprintf("%x", h[:])
}
