package runstate

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"offnetscope/internal/astopo"
	"offnetscope/internal/certmodel"
	"offnetscope/internal/core"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/timeline"
)

func sampleCheckpoint() *core.CheckpointData {
	mkSet := func(asns ...astopo.ASN) map[astopo.ASN]struct{} {
		m := make(map[astopo.ASN]struct{})
		for _, as := range asns {
			m[as] = struct{}{}
		}
		return m
	}
	res := &core.Result{
		Vendor:          "rapid7",
		Snapshot:        timeline.Snapshot(5),
		TotalCertIPs:    1234,
		TotalCertASes:   77,
		ValidCertIPs:    1100,
		InvalidByReason: map[string]int{"expired": 30, "self-signed": 104},
		HGOnNetCertIPs:  400,
		HGOffNetCertIPs: 90,
		PerHG:           map[hg.ID]*core.HGResult{},
	}
	for _, id := range []hg.ID{hg.Google, hg.Netflix} {
		res.PerHG[id] = &core.HGResult{
			HG:                    id,
			OnNetASes:             []astopo.ASN{15169, 36040},
			DNSNames:              map[string]struct{}{"*.example.com": {}, "cdn.example.net": {}},
			CandidateASes:         mkSet(7, 3, 99),
			ConfirmedASes:         mkSet(3, 99),
			ConfirmedByEitherASes: mkSet(3, 99, 12),
			ConfirmedByBothASes:   mkSet(3),
			ExpiredASes:           mkSet(55),
			CandidateIPs:          42,
			ConfirmedIPs:          31,
			ConfirmedIPList:       []netmodel.IP{0x01020304, 0x01020305},
			CandidateIPList:       []netmodel.IP{0x01020304, 0x01020305, 0x0a000001},
			ExpiredIPs:            []netmodel.IP{0x0a000002},
			OnNetIPs:              900,
			CertIPGroups:          map[certmodel.Fingerprint]int{0xdeadbeefcafef00d: 12, 0x1: 3},
		}
	}
	// An HG the run examined but that had no off-nets: PerHG holds an
	// entry for every hypergiant and restore must preserve that.
	res.PerHG[hg.Fastly] = &core.HGResult{
		HG:                    hg.Fastly,
		DNSNames:              map[string]struct{}{},
		CandidateASes:         mkSet(),
		ConfirmedASes:         mkSet(),
		ConfirmedByEitherASes: mkSet(),
		ConfirmedByBothASes:   mkSet(),
		ExpiredASes:           mkSet(),
		CertIPGroups:          map[certmodel.Fingerprint]int{},
	}
	return &core.CheckpointData{
		Result:   res,
		Envelope: core.EnvelopeValues{Initial: 2, WithExpired: 3, NonTLS: 4},
		MemDelta: []core.MemEntry{
			{IP: 0x01020304, ASNs: []astopo.ASN{3}},
			{IP: 0x0a000002, ASNs: []astopo.ASN{55, 56}},
		},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir, err := Create(t.TempDir(), Manifest{Corpus: "c", Options: "o", Vendor: "rapid7"})
	if err != nil {
		t.Fatal(err)
	}
	s := timeline.Snapshot(5)
	want := sampleCheckpoint()
	if err := dir.Save(s, want); err != nil {
		t.Fatal(err)
	}
	got := dir.Load(s)
	if got == nil {
		t.Fatal("Load returned nil for a freshly saved entry")
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip diverged:\nwant %+v\ngot  %+v", want, got)
	}
	if dir.Load(timeline.Snapshot(6)) != nil {
		t.Fatal("Load invented a checkpoint for a snapshot never saved")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	s := timeline.Snapshot(5)
	a, err := encodeEntry(s, sampleCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	b, err := encodeEntry(s, sampleCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("encoding the same checkpoint twice produced different bytes")
	}
}

func TestLoadDiscardsCorruptEntry(t *testing.T) {
	s := timeline.Snapshot(5)
	base, err := Create(t.TempDir(), Manifest{Corpus: "c", Options: "o", Vendor: "rapid7"})
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Save(s, sampleCheckpoint()); err != nil {
		t.Fatal(err)
	}
	path := base.entryPath(s)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte at a spread of offsets: every corruption must be
	// caught by the CRC (or the magic/version checks) and the entry
	// dropped, never half-trusted.
	for _, off := range []int{0, 7, 9, len(good) / 2, len(good) - 5, len(good) - 1} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x20
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if ck := base.Load(s); ck != nil {
			t.Fatalf("corrupt entry (byte %d flipped) was loaded", off)
		}
		if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("corrupt entry (byte %d flipped) not removed", off)
		}
	}

	// Truncation at every prefix length.
	for _, n := range []int{0, 4, len(good) / 3, len(good) - 1} {
		if err := os.WriteFile(path, good[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if ck := base.Load(s); ck != nil {
			t.Fatalf("entry truncated to %d bytes was loaded", n)
		}
	}
}

func TestCreateClearsStaleState(t *testing.T) {
	root := t.TempDir()
	first, err := Create(root, Manifest{Corpus: "old", Options: "o", Vendor: "rapid7"})
	if err != nil {
		t.Fatal(err)
	}
	s := timeline.Snapshot(3)
	if err := first.Save(s, sampleCheckpoint()); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: leave temp litter behind.
	litter := filepath.Join(root, tmpPrefix+"snap-2014-07.ckpt-12345")
	if err := os.WriteFile(litter, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// And an unrelated file that must survive.
	keep := filepath.Join(root, "NOTES.txt")
	if err := os.WriteFile(keep, []byte("ops notes"), 0o644); err != nil {
		t.Fatal(err)
	}

	second, err := Create(root, Manifest{Corpus: "new", Options: "o", Vendor: "rapid7"})
	if err != nil {
		t.Fatal(err)
	}
	if ck := second.Load(s); ck != nil {
		t.Fatal("Create kept a checkpoint from the previous run")
	}
	if _, err := os.Stat(litter); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("Create kept temp-file litter")
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatal("Create removed an unrelated file")
	}
}

func TestResumeValidatesManifest(t *testing.T) {
	root := t.TempDir()
	m := Manifest{Corpus: "c1", Options: "o1", Vendor: "rapid7"}
	first, err := Create(root, m)
	if err != nil {
		t.Fatal(err)
	}
	s := timeline.Snapshot(7)
	if err := first.Save(s, sampleCheckpoint()); err != nil {
		t.Fatal(err)
	}

	// Matching manifest: checkpoints survive.
	again, err := Resume(root, m)
	if err != nil {
		t.Fatalf("matching resume rejected: %v", err)
	}
	if again.Load(s) == nil {
		t.Fatal("matching resume lost the checkpoint")
	}

	// Any drifted field: clear rejection, nothing silently mixed.
	for name, bad := range map[string]Manifest{
		"corpus":  {Corpus: "c2", Options: "o1", Vendor: "rapid7"},
		"options": {Corpus: "c1", Options: "o2", Vendor: "rapid7"},
		"vendor":  {Corpus: "c1", Options: "o1", Vendor: "censys"},
	} {
		if _, err := Resume(root, bad); !errors.Is(err, ErrManifestMismatch) {
			t.Errorf("%s drift: got %v, want ErrManifestMismatch", name, err)
		}
	}

	// Resuming where nothing exists starts fresh.
	fresh, err := Resume(filepath.Join(root, "never-created"), m)
	if err != nil {
		t.Fatalf("resume of empty directory: %v", err)
	}
	if fresh.Load(s) != nil {
		t.Fatal("fresh directory has checkpoints")
	}

	// An unreadable manifest is an error, not a silent restart.
	garbled := filepath.Join(root, "garbled")
	if err := os.MkdirAll(garbled, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(garbled, manifestName), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(garbled, m); err == nil {
		t.Fatal("garbled manifest accepted")
	}
}

func TestCorpusFingerprint(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.MkdirAll(filepath.Dir(filepath.Join(dir, name)), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("manifest.json", `{"seed":1}`)
	write("rapid7/2013-10.ndjson.gz", "aaaa")

	fp1, err := CorpusFingerprint(dir)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := CorpusFingerprint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatal("fingerprint not stable across calls")
	}

	write("rapid7/2013-10.ndjson.gz", "aaab") // same size, different bytes
	fp3, err := CorpusFingerprint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fp3 == fp1 {
		t.Fatal("content change not reflected in fingerprint")
	}

	write("rapid7/2014-01.ndjson.gz", "bbbb") // added file
	fp4, err := CorpusFingerprint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fp4 == fp3 {
		t.Fatal("added file not reflected in fingerprint")
	}
}

func TestOptionsHash(t *testing.T) {
	base := core.DefaultOptions()
	h1 := OptionsHash(base)
	if h1 != OptionsHash(core.DefaultOptions()) {
		t.Fatal("hash not stable for equal options")
	}

	changed := base
	changed.DisableCloudflareFilter = true
	if OptionsHash(changed) == h1 {
		t.Fatal("option change not reflected in hash")
	}

	withExpiry := base
	withExpiry.IgnoreExpiryFor = map[hg.ID]bool{hg.Netflix: true, hg.Google: true}
	alsoExpiry := base
	alsoExpiry.IgnoreExpiryFor = map[hg.ID]bool{hg.Google: true, hg.Netflix: true, hg.Akamai: false}
	if OptionsHash(withExpiry) != OptionsHash(alsoExpiry) {
		t.Fatal("hash depends on map representation, not effective set")
	}
	if OptionsHash(withExpiry) == h1 {
		t.Fatal("expiry set not reflected in hash")
	}
}
