package corpus

import (
	"bytes"
	"compress/gzip"
	"testing"

	"offnetscope/internal/certmodel"
)

// gzipped compresses raw NDJSON for seeding the fuzzer.
func gzipped(t testing.TB, raw string) []byte {
	t.Helper()
	var buf bytes.Buffer
	gw := gzip.NewWriter(&buf)
	if _, err := gw.Write([]byte(raw)); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzCorpusRead throws arbitrary bytes at the NDJSON+gzip decode path
// (mirroring FuzzFootstoreDecode): corrupt input must produce an error
// or a clean skip — never a panic — in both strict and tolerant mode,
// and tolerant accounting must stay consistent with what was decoded.
func FuzzCorpusRead(f *testing.F) {
	valid := gzipped(f,
		`{"ip":"1.2.3.4","chain":[{"serial":1,"subject_org":"Google LLC","key":1,"signed_by":2}]}`+"\n"+
			`{"ip":"5.6.7.8","chain":[]}`+"\n")
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(gzipped(f, "not json at all\n{\"ip\":\"bad\"}\n"))
	f.Add(gzipped(f, ""))
	f.Add([]byte("not gzip"))
	f.Add([]byte{})
	f.Add([]byte{0x1f, 0x8b}) // bare gzip magic

	f.Fuzz(func(t *testing.T, input []byte) {
		for _, opts := range []ReadOptions{
			{},
			{Tolerant: true},
			{Tolerant: true, MaxBadFraction: 1},
		} {
			gz, err := gzip.NewReader(bytes.NewReader(input))
			if err != nil {
				continue
			}
			snap := &Snapshot{}
			interned := make(map[certmodel.Fingerprint]*certmodel.Certificate)
			fs := &FileStats{Name: "fuzz"}
			err = decodeNDJSON(gz, "fuzz", opts, fs, certLineDecoder(snap, interned))
			gz.Close()
			if fs.Records != len(snap.Certs) {
				t.Fatalf("accounting drift: %d records counted, %d decoded", fs.Records, len(snap.Certs))
			}
			if !opts.Tolerant && fs.Skipped != 0 {
				t.Fatalf("strict mode skipped %d records", fs.Skipped)
			}
			if err == nil && opts.Tolerant {
				total := fs.Records + fs.Skipped
				if total > 0 && float64(fs.Skipped) > opts.budget()*float64(total) {
					t.Fatalf("accepted a file over budget: %s", fs)
				}
			}
		}
	})
}
