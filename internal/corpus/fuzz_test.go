package corpus

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"

	"offnetscope/internal/certmodel"
)

// gzipped compresses raw NDJSON for seeding the fuzzer.
func gzipped(t testing.TB, raw string) []byte {
	t.Helper()
	var buf bytes.Buffer
	gw := gzip.NewWriter(&buf)
	if _, err := gw.Write([]byte(raw)); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeChunked runs the same NDJSON stream through the chunked cert
// decoder (the readCertChunks shape: shared per-record decoder, one
// reused batch buffer) and materializes the yielded batches.
func decodeChunked(input []byte, opts ReadOptions, chunk int) ([]CertRecord, *FileStats, error) {
	gz, err := gzip.NewReader(bytes.NewReader(input))
	if err != nil {
		return nil, nil, err
	}
	defer gz.Close()
	if chunk <= 0 {
		chunk = DefaultChunkSize
	}
	interned := make(map[certmodel.Fingerprint]*certmodel.Certificate)
	strs := make(strTable)
	batch := make([]CertRecord, 0, chunk)
	var out []CertRecord
	fs := &FileStats{Name: "fuzz"}
	derr := decodeNDJSON(gz, "fuzz", opts, fs, func(line []byte) error {
		rec, err := decodeCertRecord(line, interned, strs)
		if err != nil {
			return err
		}
		batch = append(batch, rec)
		if len(batch) == chunk {
			out = append(out, batch...)
			batch = batch[:0]
		}
		return nil
	})
	out = append(out, batch...)
	return out, fs, derr
}

// sameCertRecords compares decoded cert records by IP and per-link
// fingerprint — structural equality without tripping over the lazily
// memoized fingerprint cache inside Certificate.
func sameCertRecords(a, b []CertRecord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].IP != b[i].IP || len(a[i].Chain) != len(b[i].Chain) {
			return false
		}
		for j := range a[i].Chain {
			if a[i].Chain[j].Fingerprint() != b[i].Chain[j].Fingerprint() {
				return false
			}
		}
	}
	return true
}

func sameFileStats(a, b *FileStats) bool {
	if a.Records != b.Records || a.Skipped != b.Skipped || len(a.Reasons) != len(b.Reasons) {
		return false
	}
	for r, n := range a.Reasons {
		if b.Reasons[r] != n {
			return false
		}
	}
	return true
}

// FuzzCorpusRead throws arbitrary bytes at the NDJSON+gzip decode path
// (mirroring FuzzFootstoreDecode): corrupt input must produce an error
// or a clean skip — never a panic — in both strict and tolerant mode,
// and tolerant accounting must stay consistent with what was decoded.
// Every input additionally runs through the chunked decoder at chunk
// sizes 1, 7, and the default, which must reproduce the unchunked
// records, stats, and error exactly — the determinism contract that
// makes -chunk an execution knob rather than a semantic one.
func FuzzCorpusRead(f *testing.F) {
	valid := gzipped(f,
		`{"ip":"1.2.3.4","chain":[{"serial":1,"subject_org":"Google LLC","key":1,"signed_by":2}]}`+"\n"+
			`{"ip":"5.6.7.8","chain":[]}`+"\n")
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(gzipped(f, "not json at all\n{\"ip\":\"bad\"}\n"))
	f.Add(gzipped(f, ""))
	f.Add([]byte("not gzip"))
	f.Add([]byte{})
	f.Add([]byte{0x1f, 0x8b}) // bare gzip magic
	// Corruption landing exactly on a chunk boundary: with chunk size 7,
	// line 7 closes the first batch and line 8 opens the next — both are
	// malformed, so the skip accounting straddles the batch flush.
	boundary := make([]string, 0, 9)
	for i := 0; i < 6; i++ {
		boundary = append(boundary, `{"ip":"1.2.3.4","chain":[]}`)
	}
	boundary = append(boundary, "corrupt at batch close", "{corrupt at batch open", `{"ip":"5.6.7.8","chain":[]}`)
	f.Add(gzipped(f, strings.Join(boundary, "\n")+"\n"))

	f.Fuzz(func(t *testing.T, input []byte) {
		for _, opts := range []ReadOptions{
			{},
			{Tolerant: true},
			{Tolerant: true, MaxBadFraction: 1},
		} {
			gz, err := gzip.NewReader(bytes.NewReader(input))
			if err != nil {
				continue
			}
			snap := &Snapshot{}
			interned := make(map[certmodel.Fingerprint]*certmodel.Certificate)
			fs := &FileStats{Name: "fuzz"}
			err = decodeNDJSON(gz, "fuzz", opts, fs, certLineDecoder(snap, interned, make(strTable)))
			gz.Close()
			if fs.Records != len(snap.Certs) {
				t.Fatalf("accounting drift: %d records counted, %d decoded", fs.Records, len(snap.Certs))
			}
			if !opts.Tolerant && fs.Skipped != 0 {
				t.Fatalf("strict mode skipped %d records", fs.Skipped)
			}
			if err == nil && opts.Tolerant {
				total := fs.Records + fs.Skipped
				if total > 0 && float64(fs.Skipped) > opts.budget()*float64(total) {
					t.Fatalf("accepted a file over budget: %s", fs)
				}
			}

			for _, chunk := range []int{1, 7, 0} {
				recs, cfs, cerr := decodeChunked(input, opts, chunk)
				if (cerr == nil) != (err == nil) || (cerr != nil && cerr.Error() != err.Error()) {
					t.Fatalf("chunk=%d error diverged: %v vs %v", chunk, cerr, err)
				}
				if !sameFileStats(fs, cfs) {
					t.Fatalf("chunk=%d stats diverged: %s vs %s", chunk, cfs, fs)
				}
				if !sameCertRecords(snap.Certs, recs) {
					t.Fatalf("chunk=%d decoded %d records, unchunked %d", chunk, len(recs), len(snap.Certs))
				}
			}
		}
	})
}
