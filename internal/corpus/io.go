package corpus

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"offnetscope/internal/certmodel"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/timeline"
)

// On-disk layout mirrors how the public corpuses are distributed: one
// directory per vendor and month, NDJSON+gzip files inside.
//
//	<root>/<vendor>/<YYYY-MM>/certs.ndjson.gz
//	<root>/<vendor>/<YYYY-MM>/https_headers.ndjson.gz
//	<root>/<vendor>/<YYYY-MM>/http_headers.ndjson.gz

// wireCert is the serialized certificate form.
type wireCert struct {
	Serial     uint64   `json:"serial"`
	SubjectOrg string   `json:"subject_org,omitempty"`
	SubjectCN  string   `json:"subject_cn,omitempty"`
	IssuerOrg  string   `json:"issuer_org,omitempty"`
	IssuerCN   string   `json:"issuer_cn,omitempty"`
	DNSNames   []string `json:"dns_names,omitempty"`
	NotBefore  int64    `json:"not_before"`
	NotAfter   int64    `json:"not_after"`
	IsCA       bool     `json:"is_ca,omitempty"`
	Key        uint64   `json:"key"`
	SignedBy   uint64   `json:"signed_by"`
	Forged     bool     `json:"forged,omitempty"`
}

type wireCertRecord struct {
	IP    string     `json:"ip"`
	Chain []wireCert `json:"chain"`
}

type wireHeaderRecord struct {
	IP      string      `json:"ip"`
	Headers []hg.Header `json:"headers"`
}

func toWireCert(c *certmodel.Certificate) wireCert {
	return wireCert{
		Serial:     c.SerialNumber,
		SubjectOrg: c.Subject.Organization,
		SubjectCN:  c.Subject.CommonName,
		IssuerOrg:  c.Issuer.Organization,
		IssuerCN:   c.Issuer.CommonName,
		DNSNames:   c.DNSNames,
		NotBefore:  c.NotBefore.Unix(),
		NotAfter:   c.NotAfter.Unix(),
		IsCA:       c.IsCA,
		Key:        uint64(c.Key),
		SignedBy:   uint64(c.SignedBy),
		Forged:     c.Forged,
	}
}

func fromWireCert(w wireCert) *certmodel.Certificate {
	return &certmodel.Certificate{
		SerialNumber: w.Serial,
		Subject:      certmodel.Name{Organization: w.SubjectOrg, CommonName: w.SubjectCN},
		Issuer:       certmodel.Name{Organization: w.IssuerOrg, CommonName: w.IssuerCN},
		DNSNames:     w.DNSNames,
		NotBefore:    unixTime(w.NotBefore),
		NotAfter:     unixTime(w.NotAfter),
		IsCA:         w.IsCA,
		Key:          certmodel.KeyID(w.Key),
		SignedBy:     certmodel.KeyID(w.SignedBy),
		Forged:       w.Forged,
	}
}

func unixTime(sec int64) time.Time { return time.Unix(sec, 0).UTC() }

// Dir returns the directory for one (vendor, snapshot) pair under root.
func Dir(root string, vendor Vendor, s timeline.Snapshot) string {
	return filepath.Join(root, string(vendor), s.Label())
}

// Write persists a snapshot under root.
func Write(root string, snap *Snapshot) error {
	dir := Dir(root, snap.Vendor, snap.Snapshot)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	if err := writeNDJSON(filepath.Join(dir, "certs.ndjson.gz"), len(snap.Certs), func(enc *json.Encoder, i int) error {
		r := snap.Certs[i]
		w := wireCertRecord{IP: r.IP.String()}
		for _, c := range r.Chain {
			w.Chain = append(w.Chain, toWireCert(c))
		}
		return enc.Encode(&w)
	}); err != nil {
		return err
	}
	if err := writeHeaderFile(filepath.Join(dir, "https_headers.ndjson.gz"), snap.HTTPS); err != nil {
		return err
	}
	return writeHeaderFile(filepath.Join(dir, "http_headers.ndjson.gz"), snap.HTTP)
}

func writeHeaderFile(path string, records []HeaderRecord) error {
	return writeNDJSON(path, len(records), func(enc *json.Encoder, i int) error {
		return enc.Encode(&wireHeaderRecord{IP: records[i].IP.String(), Headers: records[i].Headers})
	})
}

func writeNDJSON(path string, n int, encode func(*json.Encoder, int) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	gz := gzip.NewWriter(f)
	bw := bufio.NewWriterSize(gz, 1<<16)
	enc := json.NewEncoder(bw)
	for i := 0; i < n; i++ {
		if err := encode(enc, i); err != nil {
			f.Close()
			return fmt.Errorf("corpus: encoding %s: %w", path, err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("corpus: %w", err)
	}
	if err := gz.Close(); err != nil {
		f.Close()
		return fmt.Errorf("corpus: %w", err)
	}
	return f.Close()
}

// Read loads a snapshot previously persisted with Write. Shared
// intermediate certificates are deduplicated by fingerprint so the
// in-memory size matches freshly scanned snapshots.
func Read(root string, vendor Vendor, s timeline.Snapshot) (*Snapshot, error) {
	dir := Dir(root, vendor, s)
	snap := &Snapshot{Vendor: vendor, Snapshot: s}
	interned := make(map[certmodel.Fingerprint]*certmodel.Certificate)

	err := readNDJSON(filepath.Join(dir, "certs.ndjson.gz"), func(dec *json.Decoder) error {
		var w wireCertRecord
		if err := dec.Decode(&w); err != nil {
			return err
		}
		ip, err := netmodel.ParseIP(w.IP)
		if err != nil {
			return err
		}
		rec := CertRecord{IP: ip}
		for i := range w.Chain {
			c := fromWireCert(w.Chain[i])
			if i > 0 { // intermediates and roots repeat heavily
				if known, ok := interned[c.Fingerprint()]; ok {
					c = known
				} else {
					interned[c.Fingerprint()] = c
				}
			}
			rec.Chain = append(rec.Chain, c)
		}
		snap.Certs = append(snap.Certs, rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if snap.HTTPS, err = readHeaderFile(filepath.Join(dir, "https_headers.ndjson.gz")); err != nil {
		return nil, err
	}
	if snap.HTTP, err = readHeaderFile(filepath.Join(dir, "http_headers.ndjson.gz")); err != nil {
		return nil, err
	}
	return snap, nil
}

func readHeaderFile(path string) ([]HeaderRecord, error) {
	var out []HeaderRecord
	err := readNDJSON(path, func(dec *json.Decoder) error {
		var w wireHeaderRecord
		if err := dec.Decode(&w); err != nil {
			return err
		}
		ip, err := netmodel.ParseIP(w.IP)
		if err != nil {
			return err
		}
		out = append(out, HeaderRecord{IP: ip, Headers: w.Headers})
		return nil
	})
	return out, err
}

func readNDJSON(path string, decode func(*json.Decoder) error) (err error) {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	// Close errors must not vanish: a gzip stream only proves its
	// checksum at Close, and a failing file Close can mask a partial
	// read on networked filesystems. Keep the first error.
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("corpus: closing %s: %w", path, cerr)
		}
	}()
	gz, err := gzip.NewReader(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	defer func() {
		if cerr := gz.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("corpus: closing %s: %w", path, cerr)
		}
	}()
	dec := json.NewDecoder(gz)
	for {
		if err := decode(dec); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("corpus: decoding %s: %w", path, err)
		}
	}
}
