package corpus

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"offnetscope/internal/certmodel"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/obs"
	"offnetscope/internal/timeline"
)

// On-disk layout mirrors how the public corpuses are distributed: one
// directory per vendor and month, NDJSON+gzip files inside.
//
//	<root>/<vendor>/<YYYY-MM>/certs.ndjson.gz
//	<root>/<vendor>/<YYYY-MM>/https_headers.ndjson.gz
//	<root>/<vendor>/<YYYY-MM>/http_headers.ndjson.gz

// wireCert is the serialized certificate form.
type wireCert struct {
	Serial     uint64   `json:"serial"`
	SubjectOrg string   `json:"subject_org,omitempty"`
	SubjectCN  string   `json:"subject_cn,omitempty"`
	IssuerOrg  string   `json:"issuer_org,omitempty"`
	IssuerCN   string   `json:"issuer_cn,omitempty"`
	DNSNames   []string `json:"dns_names,omitempty"`
	NotBefore  int64    `json:"not_before"`
	NotAfter   int64    `json:"not_after"`
	IsCA       bool     `json:"is_ca,omitempty"`
	Key        uint64   `json:"key"`
	SignedBy   uint64   `json:"signed_by"`
	Forged     bool     `json:"forged,omitempty"`
}

type wireCertRecord struct {
	IP    string     `json:"ip"`
	Chain []wireCert `json:"chain"`
}

type wireHeaderRecord struct {
	IP      string      `json:"ip"`
	Headers []hg.Header `json:"headers"`
}

func toWireCert(c *certmodel.Certificate) wireCert {
	return wireCert{
		Serial:     c.SerialNumber,
		SubjectOrg: c.Subject.Organization,
		SubjectCN:  c.Subject.CommonName,
		IssuerOrg:  c.Issuer.Organization,
		IssuerCN:   c.Issuer.CommonName,
		DNSNames:   c.DNSNames,
		NotBefore:  c.NotBefore.Unix(),
		NotAfter:   c.NotAfter.Unix(),
		IsCA:       c.IsCA,
		Key:        uint64(c.Key),
		SignedBy:   uint64(c.SignedBy),
		Forged:     c.Forged,
	}
}

func fromWireCert(w wireCert, strs strTable) *certmodel.Certificate {
	for i := range w.DNSNames {
		w.DNSNames[i] = strs.intern(w.DNSNames[i])
	}
	return &certmodel.Certificate{
		SerialNumber: w.Serial,
		Subject:      certmodel.Name{Organization: strs.intern(w.SubjectOrg), CommonName: strs.intern(w.SubjectCN)},
		Issuer:       certmodel.Name{Organization: strs.intern(w.IssuerOrg), CommonName: strs.intern(w.IssuerCN)},
		DNSNames:     w.DNSNames,
		NotBefore:    unixTime(w.NotBefore),
		NotAfter:     unixTime(w.NotAfter),
		IsCA:         w.IsCA,
		Key:          certmodel.KeyID(w.Key),
		SignedBy:     certmodel.KeyID(w.SignedBy),
		Forged:       w.Forged,
	}
}

// strTable interns the short strings that repeat across the records of
// one read — dNSNames, organization and common-name fields, header
// names and values — so a vendor-month whose millions of records share
// a few thousand distinct names retains one copy per distinct string
// instead of one per record. A table lives for exactly one file read:
// vocabularies repeat within a month, but a longer-lived table would
// pin a study's worth of dead strings. A nil table disables interning.
type strTable map[string]string

func (t strTable) intern(s string) string {
	if t == nil || s == "" {
		return s
	}
	if v, ok := t[s]; ok {
		return v
	}
	t[s] = s
	return s
}

func unixTime(sec int64) time.Time { return time.Unix(sec, 0).UTC() }

// Dir returns the directory for one (vendor, snapshot) pair under root.
func Dir(root string, vendor Vendor, s timeline.Snapshot) string {
	return filepath.Join(root, string(vendor), s.Label())
}

// Write persists a snapshot under root.
func Write(root string, snap *Snapshot) error {
	dir := Dir(root, snap.Vendor, snap.Snapshot)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	if err := writeNDJSON(filepath.Join(dir, "certs.ndjson.gz"), len(snap.Certs), func(enc *json.Encoder, i int) error {
		r := snap.Certs[i]
		w := wireCertRecord{IP: r.IP.String()}
		for _, c := range r.Chain {
			w.Chain = append(w.Chain, toWireCert(c))
		}
		return enc.Encode(&w)
	}); err != nil {
		return err
	}
	if err := writeHeaderFile(filepath.Join(dir, "https_headers.ndjson.gz"), snap.HTTPS); err != nil {
		return err
	}
	return writeHeaderFile(filepath.Join(dir, "http_headers.ndjson.gz"), snap.HTTP)
}

func writeHeaderFile(path string, records []HeaderRecord) error {
	return writeNDJSON(path, len(records), func(enc *json.Encoder, i int) error {
		return enc.Encode(&wireHeaderRecord{IP: records[i].IP.String(), Headers: records[i].Headers})
	})
}

// writeNDJSON is crash-safe and durable: it streams into a temp file in
// the target directory, renames it into place only after the gzip
// stream is finalized and fsynced, and then fsyncs the parent directory
// so the rename itself survives power loss — without the directory
// sync the new name can live only in the page cache, and a crash could
// resurface the old file (or nothing) at path even though the rename
// "succeeded". A killed run can never leave a truncated *.ndjson.gz
// behind to poison later reads — at worst it leaves a *.tmp-* file that
// the next Write simply ignores. The crash suite pins both halves:
// TestWriteNDJSONCrashSafe the atomicity, TestWriteNDJSONSyncsDir the
// directory sync.
func writeNDJSON(path string, n int, encode func(*json.Encoder, int) error) (err error) {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()      //nolint:errcheck — already failing
			os.Remove(tmp) //nolint:errcheck — best-effort cleanup
		}
	}()
	gz := gzip.NewWriter(f)
	bw := bufio.NewWriterSize(gz, 1<<16)
	enc := json.NewEncoder(bw)
	for i := 0; i < n; i++ {
		if err = encode(enc, i); err != nil {
			return fmt.Errorf("corpus: encoding %s: %w", path, err)
		}
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	if err = gz.Close(); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	if err = os.Chmod(tmp, 0o644); err != nil { // CreateTemp makes 0600
		return fmt.Errorf("corpus: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	if err = fsyncDir(filepath.Dir(path)); err != nil {
		return err
	}
	return nil
}

// fsyncDir makes a completed rename in dir durable by syncing the
// directory itself. It is a variable so the crash suite can observe
// that every successful write syncs its directory.
var fsyncDir = func(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("corpus: syncing %s: %w", dir, serr)
	}
	if cerr != nil {
		return fmt.Errorf("corpus: %w", cerr)
	}
	return nil
}

// ReadOptions selects between the strict and the degraded-mode read
// path.
type ReadOptions struct {
	// Tolerant skips malformed records instead of failing on the first
	// one, within the per-file error budget below. File-level damage — a
	// corrupt or truncated gzip stream — still fails the read: the
	// remainder of such a file is unknowable, so its budget cannot be
	// assessed.
	Tolerant bool
	// MaxBadFraction is the per-file error budget: the tolerant read
	// fails with ErrBudgetExceeded once skipped records exceed this
	// fraction of the records seen — strictly exceed, so a file exactly
	// at the budget still passes. The zero value (unset) means the 5%
	// default; any negative value — use the NoBudget sentinel — means
	// zero tolerance: a single skipped record fails the read.
	MaxBadFraction float64

	// Metrics, when set, receives read/skip accounting (corpus.* in
	// DESIGN.md §7): reads, read errors, records decoded, records
	// skipped by reason, and a read-latency histogram. Counter totals
	// are deterministic for a fixed corpus; only corpus.read_ns varies.
	Metrics *obs.Registry

	// ChunkSize bounds the record batches the streaming read path
	// (OpenStream) yields; zero means DefaultChunkSize. It is an
	// execution knob like -jobs and -shards, not part of the
	// determinism contract: output is byte-identical at any setting.
	// The materializing path (Read/ReadWithStats) ignores it.
	ChunkSize int
}

// NoBudget is the MaxBadFraction sentinel for zero tolerance: any
// skipped record fails the tolerant read. It exists because the zero
// value must keep meaning "unset, use the default" — an explicit 0
// would otherwise be indistinguishable and silently become 5%.
const NoBudget = -1.0

func (o ReadOptions) budget() float64 {
	switch {
	case o.MaxBadFraction < 0:
		return 0 // NoBudget: zero tolerance
	case o.MaxBadFraction == 0:
		return 0.05 // unset: the documented default
	default:
		return o.MaxBadFraction
	}
}

// ErrBudgetExceeded reports that a file blew through its tolerant-mode
// error budget; the whole snapshot read fails with it so callers can
// drop the vendor-month rather than trust a mostly-corrupt file.
var ErrBudgetExceeded = errors.New("corpus: per-file error budget exceeded")

// recordReadMetrics emits the corpus.* read accounting for one snapshot
// read attempt. It is shared by the materializing (ReadWithStats) and
// streaming (OpenStream) paths so the counter totals stay byte-identical
// between them for the same corpus.
func recordReadMetrics(m *obs.Registry, start time.Time, stats *ReadStats, err error) {
	m.Histogram("corpus.read_ns").Since(start)
	m.Counter("corpus.reads").Inc()
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			m.Counter("corpus.read_missing").Inc() // months the vendor doesn't cover
		} else {
			m.Counter("corpus.read_errors").Inc()
		}
	}
	m.Counter("corpus.records").Add(int64(stats.TotalRecords()))
	m.Counter("corpus.records_skipped").Add(int64(stats.TotalSkipped()))
	for reason, n := range stats.ReasonTotals() {
		m.Counter("corpus.skip." + reason).Add(int64(n))
	}
}

// FileStats is the degraded-mode accounting for one NDJSON file.
type FileStats struct {
	Name    string         // base file name
	Records int            // records decoded OK
	Skipped int            // malformed records dropped (tolerant mode)
	Reasons map[string]int // skip reasons: "json", "ip", ...
}

func (fs *FileStats) skip(reason string) {
	fs.Skipped++
	if fs.Reasons == nil {
		fs.Reasons = make(map[string]int)
	}
	fs.Reasons[reason]++
}

// String renders one file's accounting, e.g.
// "certs.ndjson.gz: 4988 ok, 12 skipped (json=10 ip=2)".
func (fs *FileStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d ok, %d skipped", fs.Name, fs.Records, fs.Skipped)
	if len(fs.Reasons) > 0 {
		reasons := make([]string, 0, len(fs.Reasons))
		for r := range fs.Reasons {
			reasons = append(reasons, r)
		}
		// Deterministic order without importing sort for two keys.
		for i := 1; i < len(reasons); i++ {
			for j := i; j > 0 && reasons[j] < reasons[j-1]; j-- {
				reasons[j], reasons[j-1] = reasons[j-1], reasons[j]
			}
		}
		b.WriteString(" (")
		for i, r := range reasons {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s=%d", r, fs.Reasons[r])
		}
		b.WriteByte(')')
	}
	return b.String()
}

// ReadStats aggregates per-file accounting across one snapshot read.
type ReadStats struct {
	Files []*FileStats
}

func (st *ReadStats) file(name string) *FileStats {
	fs := &FileStats{Name: name}
	st.Files = append(st.Files, fs)
	return fs
}

// TotalRecords sums records decoded OK across all files.
func (st *ReadStats) TotalRecords() int {
	n := 0
	for _, fs := range st.Files {
		n += fs.Records
	}
	return n
}

// TotalSkipped sums dropped records across all files.
func (st *ReadStats) TotalSkipped() int {
	n := 0
	for _, fs := range st.Files {
		n += fs.Skipped
	}
	return n
}

// ReasonTotals folds the per-file skip reasons into snapshot-wide
// totals, so the funnel report can name the corruption classes instead
// of burying them per file.
func (st *ReadStats) ReasonTotals() map[string]int {
	out := make(map[string]int)
	for _, fs := range st.Files {
		for reason, n := range fs.Reasons {
			out[reason] += n
		}
	}
	return out
}

// DominantReason returns the skip reason that dropped the most records
// across the snapshot (ties broken alphabetically) and its count;
// ("", 0) when nothing was skipped. Reduced-coverage reports quote this
// verbatim, so the selection must not depend on map iteration order:
// the reasons are walked in sorted order and a later reason wins only
// on a strictly larger count.
func (st *ReadStats) DominantReason() (string, int) {
	totals := st.ReasonTotals()
	reasons := make([]string, 0, len(totals))
	for r := range totals {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	var reason string
	var max int
	for _, r := range reasons {
		if totals[r] > max {
			reason, max = r, totals[r]
		}
	}
	return reason, max
}

// recordError tags a per-record decode failure with its accounting
// reason.
type recordError struct {
	reason string
	err    error
}

func (e *recordError) Error() string { return e.reason + ": " + e.err.Error() }
func (e *recordError) Unwrap() error { return e.err }

func badRecord(reason string, err error) error { return &recordError{reason: reason, err: err} }

func reasonOf(err error) string {
	var re *recordError
	if errors.As(err, &re) {
		return re.reason
	}
	return "decode"
}

// Read loads a snapshot previously persisted with Write, strictly: the
// first malformed record fails the read. Shared intermediate
// certificates are deduplicated by fingerprint so the in-memory size
// matches freshly scanned snapshots.
func Read(root string, vendor Vendor, s timeline.Snapshot) (*Snapshot, error) {
	snap, _, err := ReadWithStats(root, vendor, s, ReadOptions{})
	return snap, err
}

// ReadWithStats loads a snapshot under the given options. In tolerant
// mode, malformed records are skipped and counted per file; the read
// fails only when a file exceeds its error budget or is damaged at the
// gzip level. The returned stats are valid (for inspection) even when
// err is non-nil.
//
// The three corpus files decode concurrently, each on its own
// goroutine — gzip inflation and JSON decoding dominate a snapshot
// read, and the files share nothing. Stats ordering and error
// precedence follow the fixed file order (certs, https, http)
// regardless of which read finishes or fails first, so the returned
// error, the stats, and the snapshot are all deterministic.
func ReadWithStats(root string, vendor Vendor, s timeline.Snapshot, opts ReadOptions) (snap *Snapshot, stats *ReadStats, err error) {
	start := time.Now()
	stats = &ReadStats{}
	defer func() { recordReadMetrics(opts.Metrics, start, stats, err) }()
	dir := Dir(root, vendor, s)
	snap = &Snapshot{Vendor: vendor, Snapshot: s}
	interned := make(map[certmodel.Fingerprint]*certmodel.Certificate)

	// FileStats are registered up front so stats.Files keeps the file
	// order however the concurrent reads interleave; each goroutine
	// owns its own FileStats and its own slice of the snapshot.
	certFS := stats.file("certs.ndjson.gz")
	httpsFS := stats.file("https_headers.ndjson.gz")
	httpFS := stats.file("http_headers.ndjson.gz")
	errs := make([]error, 3)
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		errs[0] = readNDJSONFile(filepath.Join(dir, certFS.Name), opts, certFS, certLineDecoder(snap, interned, make(strTable)))
	}()
	go func() {
		defer wg.Done()
		snap.HTTPS, errs[1] = readHeaderFile(filepath.Join(dir, httpsFS.Name), opts, httpsFS)
	}()
	go func() {
		defer wg.Done()
		snap.HTTP, errs[2] = readHeaderFile(filepath.Join(dir, httpFS.Name), opts, httpFS)
	}()
	wg.Wait()
	for _, err = range errs {
		if err != nil {
			return nil, stats, err
		}
	}
	return snap, stats, nil
}

// decodeCertRecord decodes one certs.ndjson.gz line, interning repeated
// intermediates/roots by fingerprint and repeated strings via strs. It
// is the single decode routine behind both the materializing and the
// chunked read paths, so the two can never disagree on what counts as
// a malformed record.
func decodeCertRecord(line []byte, interned map[certmodel.Fingerprint]*certmodel.Certificate, strs strTable) (CertRecord, error) {
	var w wireCertRecord
	if err := json.Unmarshal(line, &w); err != nil {
		return CertRecord{}, badRecord("json", err)
	}
	ip, err := netmodel.ParseIP(w.IP)
	if err != nil {
		return CertRecord{}, badRecord("ip", err)
	}
	rec := CertRecord{IP: ip, Chain: make(certmodel.Chain, 0, len(w.Chain))}
	for i := range w.Chain {
		c := fromWireCert(w.Chain[i], strs)
		if i > 0 { // intermediates and roots repeat heavily
			if known, ok := interned[c.Fingerprint()]; ok {
				c = known
			} else {
				interned[c.Fingerprint()] = c
			}
		}
		rec.Chain = append(rec.Chain, c)
	}
	return rec, nil
}

// decodeHeaderRecord decodes one header-file line, interning repeated
// header names and values via strs.
func decodeHeaderRecord(line []byte, strs strTable) (HeaderRecord, error) {
	var w wireHeaderRecord
	if err := json.Unmarshal(line, &w); err != nil {
		return HeaderRecord{}, badRecord("json", err)
	}
	ip, err := netmodel.ParseIP(w.IP)
	if err != nil {
		return HeaderRecord{}, badRecord("ip", err)
	}
	for i := range w.Headers {
		w.Headers[i].Name = strs.intern(w.Headers[i].Name)
		w.Headers[i].Value = strs.intern(w.Headers[i].Value)
	}
	return HeaderRecord{IP: ip, Headers: w.Headers}, nil
}

// certLineDecoder appends decoded cert records to snap.
func certLineDecoder(snap *Snapshot, interned map[certmodel.Fingerprint]*certmodel.Certificate, strs strTable) func([]byte) error {
	return func(line []byte) error {
		rec, err := decodeCertRecord(line, interned, strs)
		if err != nil {
			return err
		}
		snap.Certs = append(snap.Certs, rec)
		return nil
	}
}

func readHeaderFile(path string, opts ReadOptions, fs *FileStats) ([]HeaderRecord, error) {
	var out []HeaderRecord
	strs := make(strTable)
	err := readNDJSONFile(path, opts, fs, func(line []byte) error {
		rec, derr := decodeHeaderRecord(line, strs)
		if derr != nil {
			return derr
		}
		out = append(out, rec)
		return nil
	})
	return out, err
}

func readNDJSONFile(path string, opts ReadOptions, fs *FileStats, decode func([]byte) error) (err error) {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	// Close errors must not vanish: a gzip stream only proves its
	// checksum at Close, and a failing file Close can mask a partial
	// read on networked filesystems. Keep the first error.
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("corpus: closing %s: %w", path, cerr)
		}
	}()
	gz, err := gzip.NewReader(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	defer func() {
		if cerr := gz.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("corpus: closing %s: %w", path, cerr)
		}
	}()
	return decodeNDJSON(gz, path, opts, fs, decode)
}

// decodeNDJSON walks one record-per-line stream. Strict mode fails on
// the first malformed record; tolerant mode skips and counts it,
// failing only past the error budget. Stream-level read errors (flate
// corruption, truncation) always fail: the undecodable remainder makes
// the budget unassessable.
//
// The budget is enforced incrementally once enough lines have been seen
// to judge the fraction, and finally at EOF — so a hopelessly corrupt
// file aborts early instead of burning through gigabytes.
func decodeNDJSON(r io.Reader, name string, opts ReadOptions, fs *FileStats, decode func([]byte) error) error {
	const minSampleForEarlyAbort = 512
	budget := opts.budget()
	overBudget := func() bool {
		total := fs.Records + fs.Skipped
		return float64(fs.Skipped) > budget*float64(total)
	}
	br := bufio.NewReaderSize(r, 1<<16)
	for lineNo := 1; ; lineNo++ {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			// Stream-level damage (flate corruption, a truncated or
			// checksum-failing gzip trailer). Any bytes in hand are the
			// undecodable tail of a broken stream: decoding them would
			// misfile the damage as a per-record skip — and with a tight
			// budget, report ErrBudgetExceeded instead of the truncation.
			return fmt.Errorf("corpus: reading %s: %w", name, rerr)
		}
		if rec := bytes.TrimSpace(line); len(rec) > 0 {
			if derr := decode(rec); derr != nil {
				var abort *yieldError
				if errors.As(derr, &abort) {
					// A stream consumer rejected a yielded batch. That is
					// not record damage: it must neither count against the
					// error budget nor be dressed up as a decode failure.
					return abort.err
				}
				if !opts.Tolerant {
					return fmt.Errorf("corpus: decoding %s line %d: %w", name, lineNo, derr)
				}
				fs.skip(reasonOf(derr))
				// A zero budget needs no sample to judge the fraction:
				// any skip already exceeds it, so abort on the first.
				if (budget == 0 || fs.Records+fs.Skipped >= minSampleForEarlyAbort) && overBudget() {
					return fmt.Errorf("%w: %s after %d lines (%s)", ErrBudgetExceeded, name, lineNo, fs)
				}
			} else {
				fs.Records++
			}
		}
		if rerr == io.EOF {
			if opts.Tolerant && fs.Skipped > 0 && overBudget() {
				return fmt.Errorf("%w: %s (%s)", ErrBudgetExceeded, name, fs)
			}
			return nil
		}
	}
}
