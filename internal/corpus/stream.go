package corpus

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"offnetscope/internal/certmodel"
	"offnetscope/internal/timeline"
)

// DefaultChunkSize is the record-batch size the streaming read path
// yields when ReadOptions.ChunkSize is unset. Large enough that the
// shard workers amortize their fan-out, small enough that a batch of
// fully decoded records stays in cache-friendly territory.
const DefaultChunkSize = 4096

// Stream is the chunked read path over one vendor-month: instead of
// materializing a Snapshot's record slices, each file is exposed as a
// consume function that decodes the NDJSON stream in place and yields
// fixed-size record batches. Memory stays bounded by the chunk size
// (plus the per-read intern tables), however large the month is.
//
// Contract, shared by every producer (OpenStream, StreamOf,
// scanners.ScanStream):
//
//   - Batches arrive in record order — chunk N+1's records follow chunk
//     N's exactly as a materializing read would have appended them. A
//     consumer that folds batches in arrival order reproduces the
//     unchunked result byte for byte at any chunk size.
//   - The batch slice is only valid during the yield call: producers
//     reuse it. Consumers copy what they retain — the records' contents
//     (chain pointers, header slices) are freshly decoded and safe to
//     keep; the []CertRecord / []HeaderRecord slice itself is not.
//   - A non-nil error from yield aborts the stream and is returned
//     verbatim from the consume function, never recorded as decode
//     damage or counted against the error budget.
//   - Each consume function may be called at most once.
type Stream struct {
	Vendor   Vendor
	Snapshot timeline.Snapshot

	// Stats carries the same per-file accounting a materializing read
	// returns. The counts fill in as the consume functions run and are
	// complete once all three have returned.
	Stats *ReadStats

	Certs func(yield func([]CertRecord) error) error
	HTTPS func(yield func([]HeaderRecord) error) error
	HTTP  func(yield func([]HeaderRecord) error) error
}

// ScanTime is the instant certificates are validated against —
// mid-month, matching Snapshot.ScanTime.
func (st *Stream) ScanTime() time.Time { return st.Snapshot.MidTime() }

// StreamOf adapts an in-memory snapshot to the streaming interface,
// yielding zero-copy subslice batches of chunk records each
// (DefaultChunkSize when chunk <= 0). It is how scanner-generated
// corpuses and tests drive the streaming pipeline without a disk
// round-trip; it records no stats and emits no metrics, exactly like
// handing the snapshot itself to the materializing pipeline.
func StreamOf(snap *Snapshot, chunk int) *Stream {
	if chunk <= 0 {
		chunk = DefaultChunkSize
	}
	return &Stream{
		Vendor:   snap.Vendor,
		Snapshot: snap.Snapshot,
		Certs:    func(yield func([]CertRecord) error) error { return yieldChunks(snap.Certs, chunk, yield) },
		HTTPS:    func(yield func([]HeaderRecord) error) error { return yieldChunks(snap.HTTPS, chunk, yield) },
		HTTP:     func(yield func([]HeaderRecord) error) error { return yieldChunks(snap.HTTP, chunk, yield) },
	}
}

func yieldChunks[T any](recs []T, chunk int, yield func([]T) error) error {
	for lo := 0; lo < len(recs); lo += chunk {
		hi := min(lo+chunk, len(recs))
		if err := yield(recs[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// OpenStream opens a persisted vendor-month for chunked reading. The
// ReadOptions carry over from ReadWithStats unchanged — tolerant mode,
// the per-file error budget, and metrics all behave identically, and
// the budget aborts at exactly the same skip count as the materializing
// reader (the incremental enforcement in decodeNDJSON never needed the
// up-front record count). All three files are stat'd up front so a
// month the vendor doesn't cover fails here with fs.ErrNotExist, like
// ReadWithStats, rather than mid-consumption.
//
// The read's corpus.* metrics are recorded once, after all three
// consume functions have completed; a consumer that abandons a stream
// forfeits that read's accounting. Error precedence across files
// follows the fixed file order (certs, https, http), matching
// ReadWithStats.
func OpenStream(root string, vendor Vendor, s timeline.Snapshot, opts ReadOptions) (*Stream, error) {
	start := time.Now()
	dir := Dir(root, vendor, s)
	stats := &ReadStats{}
	certFS := stats.file("certs.ndjson.gz")
	httpsFS := stats.file("https_headers.ndjson.gz")
	httpFS := stats.file("http_headers.ndjson.gz")
	for _, fs := range stats.Files {
		if _, err := os.Stat(filepath.Join(dir, fs.Name)); err != nil {
			err = fmt.Errorf("corpus: %w", err)
			recordReadMetrics(opts.Metrics, start, stats, err)
			return nil, err
		}
	}
	chunk := opts.ChunkSize
	if chunk <= 0 {
		chunk = DefaultChunkSize
	}
	fin := &streamFinalizer{start: start, stats: stats, opts: opts, left: 3}
	st := &Stream{Vendor: vendor, Snapshot: s, Stats: stats}
	st.Certs = func(yield func([]CertRecord) error) error {
		err := readCertChunks(filepath.Join(dir, certFS.Name), opts, certFS, chunk, yield)
		fin.done(0, err)
		return err
	}
	st.HTTPS = func(yield func([]HeaderRecord) error) error {
		err := readHeaderChunks(filepath.Join(dir, httpsFS.Name), opts, httpsFS, chunk, yield)
		fin.done(1, err)
		return err
	}
	st.HTTP = func(yield func([]HeaderRecord) error) error {
		err := readHeaderChunks(filepath.Join(dir, httpFS.Name), opts, httpFS, chunk, yield)
		fin.done(2, err)
		return err
	}
	return st, nil
}

// streamFinalizer fires the one-shot read accounting when the last of
// the three file consumers finishes, whatever order (or goroutines)
// they ran on. Error precedence is by file index, not completion order.
type streamFinalizer struct {
	start time.Time
	stats *ReadStats
	opts  ReadOptions

	mu   sync.Mutex
	left int
	errs [3]error
}

func (f *streamFinalizer) done(i int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.errs[i] = err
	if f.left--; f.left > 0 {
		return
	}
	first := error(nil)
	for _, e := range f.errs {
		if e != nil {
			first = e
			break
		}
	}
	recordReadMetrics(f.opts.Metrics, f.start, f.stats, first)
}

// yieldError marks an error returned by a stream consumer's yield so
// decodeNDJSON can tell a consumer abort apart from record damage and
// propagate it verbatim.
type yieldError struct{ err error }

func (e *yieldError) Error() string { return e.err.Error() }
func (e *yieldError) Unwrap() error { return e.err }

// readCertChunks drives one certs file through the shared per-record
// decoder, accumulating records into a single reused batch buffer and
// yielding it every chunk records. Interning (fingerprints and strings)
// spans the whole file, exactly like the materializing read.
func readCertChunks(path string, opts ReadOptions, fs *FileStats, chunk int, yield func([]CertRecord) error) error {
	interned := make(map[certmodel.Fingerprint]*certmodel.Certificate)
	strs := make(strTable)
	batch := make([]CertRecord, 0, chunk)
	err := readNDJSONFile(path, opts, fs, func(line []byte) error {
		rec, derr := decodeCertRecord(line, interned, strs)
		if derr != nil {
			return derr
		}
		batch = append(batch, rec)
		if len(batch) == chunk {
			if yerr := yield(batch); yerr != nil {
				return &yieldError{yerr}
			}
			batch = batch[:0]
		}
		return nil
	})
	if err != nil {
		return err
	}
	if len(batch) > 0 {
		return yield(batch)
	}
	return nil
}

func readHeaderChunks(path string, opts ReadOptions, fs *FileStats, chunk int, yield func([]HeaderRecord) error) error {
	strs := make(strTable)
	batch := make([]HeaderRecord, 0, chunk)
	err := readNDJSONFile(path, opts, fs, func(line []byte) error {
		rec, derr := decodeHeaderRecord(line, strs)
		if derr != nil {
			return derr
		}
		batch = append(batch, rec)
		if len(batch) == chunk {
			if yerr := yield(batch); yerr != nil {
				return &yieldError{yerr}
			}
			batch = batch[:0]
		}
		return nil
	})
	if err != nil {
		return err
	}
	if len(batch) > 0 {
		return yield(batch)
	}
	return nil
}
