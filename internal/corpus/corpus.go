// Package corpus defines the scan-record formats the pipeline consumes —
// the shape of the Rapid7/Censys datasets: certificate observations from
// port-443 sweeps and HTTP(S) response headers — plus streaming
// NDJSON+gzip persistence so generated corpuses can be written to disk
// and re-read exactly like the public datasets are.
package corpus

import (
	"time"

	"offnetscope/internal/certmodel"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/timeline"
)

// Vendor identifies a scan corpus source.
type Vendor string

// The corpus sources in the study (§4.6, Table 2).
const (
	Rapid7  Vendor = "rapid7"
	Censys  Vendor = "censys"
	Certigo Vendor = "certigo" // the authors' own active scan
)

// CertRecord is one observation from a port-443 certificate sweep: the
// default chain an IP presented when no SNI was sent.
type CertRecord struct {
	IP    netmodel.IP
	Chain certmodel.Chain
}

// HeaderRecord is one observation from an HTTP (port 80) or HTTPS
// (port 443) banner grab.
type HeaderRecord struct {
	IP      netmodel.IP
	Headers []hg.Header
}

// Snapshot is everything one vendor's scans captured in one study month.
type Snapshot struct {
	Vendor   Vendor
	Snapshot timeline.Snapshot

	Certs []CertRecord
	// HTTPS are port-443 response headers; empty before the vendor
	// started collecting them (Rapid7: summer 2016; Censys: late 2019).
	HTTPS []HeaderRecord
	// HTTP are port-80 response headers, available for the whole window.
	HTTP []HeaderRecord
}

// ScanTime is the instant certificates are validated against — mid-month,
// matching when the sweeps ran.
func (s *Snapshot) ScanTime() time.Time { return s.Snapshot.MidTime() }

// HTTPSHeadersByIP indexes the HTTPS header records.
func (s *Snapshot) HTTPSHeadersByIP() map[netmodel.IP][]hg.Header {
	return indexHeaders(s.HTTPS)
}

// HTTPHeadersByIP indexes the HTTP header records.
func (s *Snapshot) HTTPHeadersByIP() map[netmodel.IP][]hg.Header {
	return indexHeaders(s.HTTP)
}

func indexHeaders(records []HeaderRecord) map[netmodel.IP][]hg.Header {
	m := make(map[netmodel.IP][]hg.Header, len(records))
	for _, r := range records {
		m[r.IP] = r.Headers
	}
	return m
}

// UniqueLeafFingerprints counts distinct end-entity certificates in the
// snapshot, the paper's "unique certificates" statistic.
func (s *Snapshot) UniqueLeafFingerprints() int {
	set := make(map[certmodel.Fingerprint]struct{})
	for _, r := range s.Certs {
		if leaf := r.Chain.Leaf(); leaf != nil {
			set[leaf.Fingerprint()] = struct{}{}
		}
	}
	return len(set)
}
