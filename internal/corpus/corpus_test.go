package corpus

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"offnetscope/internal/certmodel"
	"offnetscope/internal/hg"
	"offnetscope/internal/netmodel"
	"offnetscope/internal/rng"
)

func sampleSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	from := time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	auth := certmodel.NewAuthority("TestCA", 2, from, to, rng.New(1))
	snap := &Snapshot{Vendor: Rapid7, Snapshot: 20}
	for i := 0; i < 50; i++ {
		ch := auth.IssueLeaf(certmodel.LeafSpec{
			Organization: "Google LLC",
			CommonName:   "*.google.com",
			DNSNames:     []string{"*.google.com", "*.googlevideo.com"},
			NotBefore:    from,
			NotAfter:     to,
		})
		snap.Certs = append(snap.Certs, CertRecord{IP: netmodel.IP(0x01000000 + uint32(i)), Chain: ch})
	}
	// One self-signed record too.
	snap.Certs = append(snap.Certs, CertRecord{
		IP: netmodel.MustParseIP("9.9.9.9"),
		Chain: auth.IssueSelfSigned(certmodel.LeafSpec{
			Organization: "Evil Corp", CommonName: "x", DNSNames: []string{"x.example"},
			NotBefore: from, NotAfter: to,
		}),
	})
	snap.HTTPS = []HeaderRecord{
		{IP: netmodel.MustParseIP("1.0.0.1"), Headers: []hg.Header{{Name: "Server", Value: "gws"}}},
	}
	snap.HTTP = []HeaderRecord{
		{IP: netmodel.MustParseIP("1.0.0.2"), Headers: []hg.Header{{Name: "Server", Value: "nginx"}}},
	}
	return snap
}

func TestWriteReadRoundTrip(t *testing.T) {
	snap := sampleSnapshot(t)
	root := t.TempDir()
	if err := Write(root, snap); err != nil {
		t.Fatal(err)
	}
	back, err := Read(root, Rapid7, snap.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Certs) != len(snap.Certs) {
		t.Fatalf("cert records: %d vs %d", len(back.Certs), len(snap.Certs))
	}
	for i := range snap.Certs {
		a, b := snap.Certs[i], back.Certs[i]
		if a.IP != b.IP {
			t.Fatalf("record %d IP: %v vs %v", i, a.IP, b.IP)
		}
		if len(a.Chain) != len(b.Chain) {
			t.Fatalf("record %d chain length differs", i)
		}
		for j := range a.Chain {
			if a.Chain[j].Fingerprint() != b.Chain[j].Fingerprint() {
				t.Fatalf("record %d cert %d fingerprint differs", i, j)
			}
		}
	}
	if len(back.HTTPS) != 1 || back.HTTPS[0].Headers[0].Value != "gws" {
		t.Fatalf("HTTPS records corrupted: %+v", back.HTTPS)
	}
	if len(back.HTTP) != 1 || back.HTTP[0].Headers[0].Value != "nginx" {
		t.Fatalf("HTTP records corrupted: %+v", back.HTTP)
	}
}

func TestReadInternsIntermediates(t *testing.T) {
	snap := sampleSnapshot(t)
	root := t.TempDir()
	if err := Write(root, snap); err != nil {
		t.Fatal(err)
	}
	back, err := Read(root, Rapid7, snap.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	// Two records signed by the same intermediate must share the pointer
	// after interning.
	var first *certmodel.Certificate
	shared := false
	for _, r := range back.Certs {
		if len(r.Chain) < 3 {
			continue
		}
		if first == nil {
			first = r.Chain[2] // root
			continue
		}
		if r.Chain[2] == first {
			shared = true
			break
		}
	}
	if !shared {
		t.Error("root certificates not interned on read")
	}
}

func TestReadMissingDir(t *testing.T) {
	if _, err := Read(t.TempDir(), Rapid7, 5); err == nil {
		t.Fatal("reading a missing snapshot should fail")
	}
}

func TestDirLayout(t *testing.T) {
	got := Dir("/data", Censys, 3)
	want := filepath.Join("/data", "censys", "2014-07")
	if got != want {
		t.Fatalf("Dir = %q, want %q", got, want)
	}
}

func TestHeaderIndexes(t *testing.T) {
	snap := sampleSnapshot(t)
	idx := snap.HTTPSHeadersByIP()
	if len(idx) != 1 {
		t.Fatalf("https index size %d", len(idx))
	}
	if h := idx[netmodel.MustParseIP("1.0.0.1")]; len(h) != 1 || h[0].Value != "gws" {
		t.Fatalf("index content: %+v", h)
	}
	if len(snap.HTTPHeadersByIP()) != 1 {
		t.Fatal("http index wrong")
	}
}

func TestUniqueLeafFingerprints(t *testing.T) {
	snap := sampleSnapshot(t)
	n := snap.UniqueLeafFingerprints()
	if n != len(snap.Certs) {
		t.Fatalf("unique leaves = %d, want %d (all serials distinct)", n, len(snap.Certs))
	}
	// Duplicate a record: count must not change.
	snap.Certs = append(snap.Certs, snap.Certs[0])
	if snap.UniqueLeafFingerprints() != n {
		t.Fatal("duplicate record changed unique count")
	}
}

func TestScanTime(t *testing.T) {
	snap := &Snapshot{Snapshot: 0}
	ts := snap.ScanTime()
	if ts.Year() != 2013 || ts.Month() != time.October {
		t.Fatalf("ScanTime = %v", ts)
	}
}

func TestWriteToUnwritableDir(t *testing.T) {
	snap := sampleSnapshot(t)
	if err := Write("/proc/definitely/not/writable", snap); err == nil {
		t.Fatal("writing to an unwritable path should fail")
	}
}

func osMkdirAll(dir string) error                { return os.MkdirAll(dir, 0o755) }
func osWriteFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }
func filepathJoin(parts ...string) string        { return filepath.Join(parts...) }

// TestReadTruncatedGzip guards the close-error propagation in
// readNDJSON: a gzip stream cut mid-file (as after a partial download)
// must fail Read loudly, never return a silently short snapshot.
func TestReadTruncatedGzip(t *testing.T) {
	snap := sampleSnapshot(t)
	root := t.TempDir()
	if err := Write(root, snap); err != nil {
		t.Fatal(err)
	}
	path := filepathJoin(Dir(root, Rapid7, snap.Snapshot), "certs.ndjson.gz")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-stream and, separately, cut just the 8-byte CRC/size
	// trailer (the flate payload stays intact — only the checksum
	// machinery can notice).
	for _, keep := range []int{len(data) / 2, len(data) - 8} {
		if err := osWriteFile(path, data[:keep]); err != nil {
			t.Fatal(err)
		}
		if _, err := Read(root, Rapid7, snap.Snapshot); err == nil {
			t.Errorf("truncated to %d/%d bytes: Read succeeded, want error", keep, len(data))
		}
	}
}

func TestReadCorruptGzip(t *testing.T) {
	root := t.TempDir()
	dir := Dir(root, Rapid7, 20)
	if err := osMkdirAll(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"certs.ndjson.gz", "https_headers.ndjson.gz", "http_headers.ndjson.gz"} {
		if err := osWriteFile(filepathJoin(dir, name), []byte("not gzip at all")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Read(root, Rapid7, 20); err == nil {
		t.Fatal("corrupt gzip should fail to parse")
	}
}
