package corpus

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"offnetscope/internal/obs"
)

// drainStream consumes all three files of a stream, materializing the
// batches (copying them, per the reuse contract) and returning the
// per-file errors in fixed file order.
func drainStream(st *Stream) (certs []CertRecord, https, http []HeaderRecord, errs [3]error) {
	errs[0] = st.Certs(func(batch []CertRecord) error {
		certs = append(certs, batch...)
		return nil
	})
	errs[1] = st.HTTPS(func(batch []HeaderRecord) error {
		https = append(https, batch...)
		return nil
	})
	errs[2] = st.HTTP(func(batch []HeaderRecord) error {
		http = append(http, batch...)
		return nil
	})
	return
}

// OpenStream must reproduce the materializing read exactly — records in
// order, identical stats, identical corpus.* counters — at any chunk
// size, including sizes that split records mid-file and a chunk larger
// than the file.
func TestOpenStreamMatchesRead(t *testing.T) {
	snap := sampleSnapshot(t)
	root := t.TempDir()
	if err := Write(root, snap); err != nil {
		t.Fatal(err)
	}
	wantReg := obs.NewRegistry("want")
	want, wantStats, err := ReadWithStats(root, Rapid7, snap.Snapshot, ReadOptions{Metrics: wantReg})
	if err != nil {
		t.Fatal(err)
	}

	for _, chunk := range []int{1, 7, 0, 1 << 20} {
		reg := obs.NewRegistry("got")
		st, err := OpenStream(root, Rapid7, snap.Snapshot, ReadOptions{Metrics: reg, ChunkSize: chunk})
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		certs, https, http, errs := drainStream(st)
		for i, e := range errs {
			if e != nil {
				t.Fatalf("chunk=%d file %d: %v", chunk, i, e)
			}
		}
		if !sameCertRecords(want.Certs, certs) {
			t.Fatalf("chunk=%d: cert records diverged (%d vs %d)", chunk, len(certs), len(want.Certs))
		}
		for name, pair := range map[string][2][]HeaderRecord{
			"https": {want.HTTPS, https},
			"http":  {want.HTTP, http},
		} {
			if len(pair[0]) != len(pair[1]) {
				t.Fatalf("chunk=%d: %s record count %d, want %d", chunk, name, len(pair[1]), len(pair[0]))
			}
			for i := range pair[0] {
				if pair[0][i].IP != pair[1][i].IP || len(pair[0][i].Headers) != len(pair[1][i].Headers) {
					t.Fatalf("chunk=%d: %s record %d diverged", chunk, name, i)
				}
			}
		}
		for i, fs := range wantStats.Files {
			if !sameFileStats(fs, st.Stats.Files[i]) {
				t.Fatalf("chunk=%d: stats for %s diverged: %s vs %s", chunk, fs.Name, st.Stats.Files[i], fs)
			}
		}
		got, wantCtrs := reg.Snapshot().Counters, wantReg.Snapshot().Counters
		if len(got) != len(wantCtrs) {
			t.Fatalf("chunk=%d: counter sets diverged: %v vs %v", chunk, got, wantCtrs)
		}
		for name, v := range wantCtrs {
			if got[name] != v {
				t.Errorf("chunk=%d: counter %s = %d, want %d", chunk, name, got[name], v)
			}
		}
	}
}

// A month the vendor doesn't cover fails OpenStream up front with
// fs.ErrNotExist and books the same corpus.read_missing accounting the
// materializing read does.
func TestOpenStreamMissingMonth(t *testing.T) {
	reg := obs.NewRegistry("got")
	_, err := OpenStream(t.TempDir(), Rapid7, 3, ReadOptions{Metrics: reg})
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err = %v, want fs.ErrNotExist", err)
	}
	s := reg.Snapshot()
	if s.Counter("corpus.reads") != 1 || s.Counter("corpus.read_missing") != 1 {
		t.Fatalf("missing-month accounting: %v", s.Counters)
	}

	// One file missing out of three counts the same way: the month is
	// incomplete, so it is not covered.
	snap := sampleSnapshot(t)
	root := t.TempDir()
	if err := Write(root, snap); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(Dir(root, Rapid7, snap.Snapshot), "https_headers.ndjson.gz")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStream(root, Rapid7, snap.Snapshot, ReadOptions{}); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("partial month: err = %v, want fs.ErrNotExist", err)
	}
}

// A consumer abort must surface verbatim from the consume function —
// not dressed up as a decode error, not counted against the budget —
// and the records yielded before the abort stay delivered.
func TestOpenStreamConsumerAbort(t *testing.T) {
	snap := sampleSnapshot(t)
	root := t.TempDir()
	if err := Write(root, snap); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStream(root, Rapid7, snap.Snapshot, ReadOptions{Tolerant: true, MaxBadFraction: NoBudget, ChunkSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	batches := 0
	err = st.Certs(func([]CertRecord) error {
		if batches++; batches == 2 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want the consumer's own error", err)
	}
	if batches != 2 {
		t.Fatalf("consumed %d batches after abort, want 2", batches)
	}
	fs := st.Stats.Files[0]
	if fs.Skipped != 0 {
		t.Fatalf("consumer abort was booked as %d skips", fs.Skipped)
	}
}

// The chunked reader enforces the -max-bad budget at exactly the same
// skip count as the slice-based reader, even though the per-file record
// count is unknown up front: the boundary cases from
// TestTolerantBudgetBoundary must behave identically through
// readCertChunks at chunk sizes that straddle the failing record.
func TestStreamBudgetBoundaryParity(t *testing.T) {
	input := func(total, bad int) string {
		var raw strings.Builder
		for i := 0; i < total; i++ {
			if i < bad {
				raw.WriteString("bad json\n")
			} else {
				raw.WriteString(`{"ip":"1.2.3.4","chain":[]}` + "\n")
			}
		}
		return raw.String()
	}
	for _, tc := range []struct {
		name     string
		opts     ReadOptions
		total    int
		bad      int
		overflow bool
	}{
		{"exactly at explicit budget", ReadOptions{Tolerant: true, MaxBadFraction: 0.05}, 100, 5, false},
		{"one record over explicit budget", ReadOptions{Tolerant: true, MaxBadFraction: 0.05}, 100, 6, true},
		{"unset budget means 5% default", ReadOptions{Tolerant: true}, 100, 5, false},
		{"unset budget still enforces the default", ReadOptions{Tolerant: true}, 100, 6, true},
		{"NoBudget passes a clean file", ReadOptions{Tolerant: true, MaxBadFraction: NoBudget}, 100, 0, false},
		{"NoBudget rejects a single skip", ReadOptions{Tolerant: true, MaxBadFraction: NoBudget}, 100, 1, true},
		{"any negative value is zero tolerance", ReadOptions{Tolerant: true, MaxBadFraction: -0.5}, 100, 1, true},
		{"strict mode fails on the first bad record", ReadOptions{}, 100, 1, true},
	} {
		raw := gzipped(t, input(tc.total, tc.bad))
		_, wantFS, wantErr := decodeChunked(raw, tc.opts, 1<<20) // effectively unchunked
		for _, chunk := range []int{1, 3, 7, 0} {
			recs, fs, err := decodeChunked(raw, tc.opts, chunk)
			if (err == nil) != (wantErr == nil) || (err != nil && err.Error() != wantErr.Error()) {
				t.Errorf("%s chunk=%d: err = %v, want %v", tc.name, chunk, err, wantErr)
			}
			if tc.overflow && err == nil {
				t.Errorf("%s chunk=%d: read accepted", tc.name, chunk)
			}
			if !tc.overflow {
				if err != nil {
					t.Errorf("%s chunk=%d: err = %v, want nil", tc.name, chunk, err)
				}
				if len(recs) != tc.total-tc.bad {
					t.Errorf("%s chunk=%d: %d records, want %d", tc.name, chunk, len(recs), tc.total-tc.bad)
				}
			}
			if !sameFileStats(fs, wantFS) {
				t.Errorf("%s chunk=%d: stats %s, want %s", tc.name, chunk, fs, wantFS)
			}
		}
	}
}

// Corruption landing exactly on a chunk boundary — the last record of
// one batch and the first of the next both malformed — must account
// identically at every chunk size.
func TestStreamChunkBoundaryCorruption(t *testing.T) {
	lines := make([]string, 0, 16)
	for i := 0; i < 6; i++ {
		lines = append(lines, `{"ip":"1.2.3.4","chain":[]}`)
	}
	lines = append(lines, "bad at batch close", "{bad at batch open")
	for i := 0; i < 6; i++ {
		lines = append(lines, `{"ip":"5.6.7.8","chain":[]}`)
	}
	raw := gzipped(t, strings.Join(lines, "\n")+"\n")
	opts := ReadOptions{Tolerant: true, MaxBadFraction: 0.5}
	want, wantFS, err := decodeChunked(raw, opts, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if wantFS.Skipped != 2 || len(want) != 12 {
		t.Fatalf("fixture drifted: %s", wantFS)
	}
	for _, chunk := range []int{1, 7, 0} { // 7 puts the first bad line at a batch close
		recs, fs, err := decodeChunked(raw, opts, chunk)
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if !sameCertRecords(want, recs) || !sameFileStats(fs, wantFS) {
			t.Fatalf("chunk=%d diverged: %s vs %s", chunk, fs, wantFS)
		}
	}
}

// A gzip stream whose trailer is truncated — the CRC can never be
// verified — must fail the read in both strict and tolerant mode, on
// both the materializing and the streaming path, and must never be
// misfiled as a per-record skip or an ErrBudgetExceeded.
func TestTruncatedGzipTrailer(t *testing.T) {
	snap := sampleSnapshot(t)
	root := t.TempDir()
	if err := Write(root, snap); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(Dir(root, Rapid7, snap.Snapshot), "certs.ndjson.gz")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The gzip trailer is the final 8 bytes (CRC32 + ISIZE); cutting
	// into it leaves every record intact but the checksum unprovable.
	if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}

	for _, opts := range []ReadOptions{
		{},
		{Tolerant: true},
		{Tolerant: true, MaxBadFraction: NoBudget},
	} {
		_, _, err := ReadWithStats(root, Rapid7, snap.Snapshot, opts)
		if err == nil {
			t.Fatalf("materializing read (tolerant=%v) accepted a truncated trailer", opts.Tolerant)
		}
		if errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("materializing read misfiled truncation as budget: %v", err)
		}

		st, oerr := OpenStream(root, Rapid7, snap.Snapshot, opts)
		if oerr != nil {
			t.Fatal(oerr)
		}
		_, _, _, errs := drainStream(st)
		if errs[0] == nil {
			t.Fatalf("stream read (tolerant=%v) accepted a truncated trailer", opts.Tolerant)
		}
		if errors.Is(errs[0], ErrBudgetExceeded) {
			t.Fatalf("stream read misfiled truncation as budget: %v", errs[0])
		}
		if st.Stats.Files[0].Skipped != 0 {
			t.Fatalf("truncation was booked as %d record skips", st.Stats.Files[0].Skipped)
		}
	}
}

// DominantReason must be byte-identical run to run: with tied counts
// the lexicographically smallest reason wins, regardless of map
// iteration order. Run many shuffled constructions to catch an
// order-dependent implementation.
func TestDominantReasonTieBreak(t *testing.T) {
	for i := 0; i < 100; i++ {
		st := &ReadStats{}
		fs := st.file("certs.ndjson.gz") // fresh map each round: new iteration order
		fs.skip("json")
		fs.skip("ip")
		fs.skip("decode")
		reason, n := st.DominantReason()
		if reason != "decode" || n != 1 {
			t.Fatalf("round %d: DominantReason = %q/%d, want decode/1", i, reason, n)
		}
	}
	// A tie split across files folds first, then tie-breaks.
	st := &ReadStats{}
	st.file("a").skip("zz")
	st.file("a").skip("zz")
	b := st.file("b")
	b.skip("aa")
	b.skip("aa")
	if reason, n := st.DominantReason(); reason != "aa" || n != 2 {
		t.Fatalf("cross-file tie: %q/%d, want aa/2", reason, n)
	}
}

// StreamOf reproduces the snapshot it wraps, in order, at any chunk
// size — it is the zero-copy bridge that lets scanner output drive the
// streaming pipeline.
func TestStreamOfRoundTrip(t *testing.T) {
	snap := sampleSnapshot(t)
	for _, chunk := range []int{1, 7, 0, 1 << 20} {
		st := StreamOf(snap, chunk)
		if st.ScanTime() != snap.ScanTime() {
			t.Fatalf("chunk=%d: ScanTime diverged", chunk)
		}
		certs, https, http, errs := drainStream(st)
		for i, e := range errs {
			if e != nil {
				t.Fatalf("chunk=%d file %d: %v", chunk, i, e)
			}
		}
		if !sameCertRecords(snap.Certs, certs) || len(https) != len(snap.HTTPS) || len(http) != len(snap.HTTP) {
			t.Fatalf("chunk=%d: round trip diverged", chunk)
		}
	}
}
