package corpus

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"offnetscope/internal/obs"
)

// rewriteNDJSONGZ decompresses path, applies edit to the raw NDJSON
// lines, and writes the result back compressed.
func rewriteNDJSONGZ(t *testing.T, path string, edit func(lines []string) []string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	lines = edit(lines)
	var buf bytes.Buffer
	gw := gzip.NewWriter(&buf)
	if _, err := gw.Write([]byte(strings.Join(lines, "\n") + "\n")); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// Tolerant mode skips malformed records within the budget, counts them
// by reason, and keeps every well-formed record; strict mode still
// fails on the first malformed record.
func TestTolerantReadSkipsMalformed(t *testing.T) {
	snap := sampleSnapshot(t)
	root := t.TempDir()
	if err := Write(root, snap); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(Dir(root, Rapid7, snap.Snapshot), "certs.ndjson.gz")
	const badJSON, badIP = 3, 1
	rewriteNDJSONGZ(t, path, func(lines []string) []string {
		out := []string{"this is not json", `{"ip":`}
		out = append(out, lines...)
		out = append(out, "{corrupt", `{"ip":"not-an-address","chain":[]}`)
		return out
	})

	if _, err := Read(root, Rapid7, snap.Snapshot); err == nil {
		t.Fatal("strict read accepted malformed records")
	}

	back, stats, err := ReadWithStats(root, Rapid7, snap.Snapshot, ReadOptions{Tolerant: true, MaxBadFraction: 0.2})
	if err != nil {
		t.Fatalf("tolerant read: %v", err)
	}
	if len(back.Certs) != len(snap.Certs) {
		t.Fatalf("kept %d records, want %d", len(back.Certs), len(snap.Certs))
	}
	fs := stats.Files[0]
	if fs.Name != "certs.ndjson.gz" || fs.Records != len(snap.Certs) {
		t.Fatalf("file stats: %+v", fs)
	}
	if fs.Skipped != badJSON+badIP || fs.Reasons["json"] != badJSON || fs.Reasons["ip"] != badIP {
		t.Fatalf("skip accounting wrong: %s", fs)
	}
	if stats.TotalSkipped() != badJSON+badIP || stats.TotalRecords() != len(snap.Certs)+len(snap.HTTPS)+len(snap.HTTP) {
		t.Fatalf("totals wrong: records=%d skipped=%d", stats.TotalRecords(), stats.TotalSkipped())
	}
	for _, want := range []string{"certs.ndjson.gz:", "4 skipped", "json=3", "ip=1"} {
		if !strings.Contains(fs.String(), want) {
			t.Errorf("stats string %q missing %q", fs.String(), want)
		}
	}
}

// Per-file skip reasons fold into snapshot-wide totals — with the
// dominant corruption class named — and mirror into the obs registry,
// so the funnel report can say *what* is eating a degraded corpus.
func TestTolerantReadReasonTotalsAndMetrics(t *testing.T) {
	snap := sampleSnapshot(t)
	root := t.TempDir()
	if err := Write(root, snap); err != nil {
		t.Fatal(err)
	}
	dir := Dir(root, Rapid7, snap.Snapshot)
	// Damage two different files with different reason mixes (the
	// headers file is tiny, so it gets a single bad record to stay
	// inside the budget).
	rewriteNDJSONGZ(t, filepath.Join(dir, "certs.ndjson.gz"), func(lines []string) []string {
		return append(lines, "not json", "{still not json", `{"ip":"bad-ip","chain":[]}`)
	})
	rewriteNDJSONGZ(t, filepath.Join(dir, "https_headers.ndjson.gz"), func(lines []string) []string {
		return append(lines, "also not json")
	})

	reg := obs.NewRegistry("test")
	back, stats, err := ReadWithStats(root, Rapid7, snap.Snapshot,
		ReadOptions{Tolerant: true, MaxBadFraction: 0.5, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	totals := stats.ReasonTotals()
	if totals["json"] != 3 || totals["ip"] != 1 {
		t.Fatalf("ReasonTotals = %v, want json=3 ip=1", totals)
	}
	reason, n := stats.DominantReason()
	if reason != "json" || n != 3 {
		t.Fatalf("DominantReason = %q/%d, want json/3", reason, n)
	}

	s := reg.Snapshot()
	if got := s.Counter("corpus.skip.json"); got != 3 {
		t.Errorf("corpus.skip.json = %d, want 3", got)
	}
	if got := s.Counter("corpus.skip.ip"); got != 1 {
		t.Errorf("corpus.skip.ip = %d, want 1", got)
	}
	wantRecords := int64(len(back.Certs) + len(back.HTTPS) + len(back.HTTP))
	if got := s.Counter("corpus.records"); got != wantRecords {
		t.Errorf("corpus.records = %d, want %d", got, wantRecords)
	}
	if s.Counter("corpus.reads") != 1 || s.Counter("corpus.records_skipped") != 4 {
		t.Errorf("read accounting: %v", s.Counters)
	}
	if h := s.Histograms["corpus.read_ns"]; h.Count != 1 {
		t.Errorf("corpus.read_ns count = %d, want 1", h.Count)
	}

	// An untouched read reports no skips and a ("", 0) dominant reason.
	clean := &ReadStats{}
	if reason, n := clean.DominantReason(); reason != "" || n != 0 {
		t.Fatalf("clean DominantReason = %q/%d", reason, n)
	}
}

// Past the per-file budget the tolerant read fails with
// ErrBudgetExceeded instead of returning a mostly-empty snapshot.
func TestTolerantReadBudget(t *testing.T) {
	snap := sampleSnapshot(t)
	root := t.TempDir()
	if err := Write(root, snap); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(Dir(root, Rapid7, snap.Snapshot), "certs.ndjson.gz")
	rewriteNDJSONGZ(t, path, func(lines []string) []string {
		for i := 0; i < 20; i++ {
			lines = append(lines, "garbage record")
		}
		return lines
	})
	// 20 bad / 71 total ≈ 28%: over a 5% budget, under a 50% one.
	_, _, err := ReadWithStats(root, Rapid7, snap.Snapshot, ReadOptions{Tolerant: true})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if _, _, err := ReadWithStats(root, Rapid7, snap.Snapshot, ReadOptions{Tolerant: true, MaxBadFraction: 0.5}); err != nil {
		t.Fatalf("generous budget still failed: %v", err)
	}
}

// A hopelessly corrupt file aborts during the scan, not after reading
// the whole thing.
func TestTolerantReadEarlyAbort(t *testing.T) {
	var raw strings.Builder
	for i := 0; i < 10000; i++ {
		raw.WriteString("junk line\n")
	}
	fs := &FileStats{Name: "junk"}
	err := decodeNDJSON(strings.NewReader(raw.String()), "junk", ReadOptions{Tolerant: true}, fs,
		func([]byte) error { return badRecord("json", errors.New("nope")) })
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if fs.Skipped >= 10000 {
		t.Fatalf("read all %d lines before giving up", fs.Skipped)
	}
}

// TestTolerantBudgetBoundary pins the error-budget comparison: skipped
// records must strictly exceed MaxBadFraction of the records seen, so a
// file landing exactly on the budget still reads, and one more record
// over fails it. The zero value (unset) means the 5% default; negative
// values — the NoBudget sentinel — mean zero tolerance, so an explicit
// strict budget is expressible and can no longer silently widen to 5%.
func TestTolerantBudgetBoundary(t *testing.T) {
	decodeBad := func(b []byte) error {
		if string(b) == "bad" {
			return badRecord("json", errors.New("boundary"))
		}
		return nil
	}
	input := func(total, bad int) string {
		var raw strings.Builder
		for i := 0; i < total; i++ {
			if i < bad {
				raw.WriteString("bad\n")
			} else {
				raw.WriteString("ok\n")
			}
		}
		return raw.String()
	}

	for _, tc := range []struct {
		name     string
		opts     ReadOptions
		total    int
		bad      int
		overflow bool
	}{
		{"exactly at explicit budget", ReadOptions{Tolerant: true, MaxBadFraction: 0.05}, 100, 5, false},
		{"one record over explicit budget", ReadOptions{Tolerant: true, MaxBadFraction: 0.05}, 100, 6, true},
		{"unset budget means 5% default", ReadOptions{Tolerant: true}, 100, 5, false},
		{"unset budget still enforces the default", ReadOptions{Tolerant: true}, 100, 6, true},
		{"NoBudget passes a clean file", ReadOptions{Tolerant: true, MaxBadFraction: NoBudget}, 100, 0, false},
		{"NoBudget rejects a single skip", ReadOptions{Tolerant: true, MaxBadFraction: NoBudget}, 100, 1, true},
		{"any negative value is zero tolerance", ReadOptions{Tolerant: true, MaxBadFraction: -0.5}, 100, 1, true},
	} {
		fs := &FileStats{Name: "boundary"}
		err := decodeNDJSON(strings.NewReader(input(tc.total, tc.bad)), "boundary", tc.opts, fs, decodeBad)
		if tc.overflow && !errors.Is(err, ErrBudgetExceeded) {
			t.Errorf("%s: err = %v, want ErrBudgetExceeded", tc.name, err)
		}
		if !tc.overflow {
			if err != nil {
				t.Errorf("%s: err = %v, want nil", tc.name, err)
			}
			if fs.Skipped != tc.bad || fs.Records != tc.total-tc.bad {
				t.Errorf("%s: stats %d skipped/%d records, want %d/%d",
					tc.name, fs.Skipped, fs.Records, tc.bad, tc.total-tc.bad)
			}
		}
	}
}

// A zero-tolerance read needs no sample to judge the fraction: it must
// abort on the first skipped record, not after the early-abort sample
// or — worse — the whole file.
func TestTolerantZeroToleranceAbortsOnFirstSkip(t *testing.T) {
	var raw strings.Builder
	for i := 0; i < 10000; i++ {
		raw.WriteString("junk line\n")
	}
	fs := &FileStats{Name: "junk"}
	err := decodeNDJSON(strings.NewReader(raw.String()), "junk",
		ReadOptions{Tolerant: true, MaxBadFraction: NoBudget}, fs,
		func([]byte) error { return badRecord("json", errors.New("nope")) })
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if fs.Skipped != 1 {
		t.Fatalf("read %d bad records before aborting, want 1", fs.Skipped)
	}
}

// Tolerant mode must still refuse gzip-level damage: a truncated stream
// has an unassessable remainder.
func TestTolerantReadStillFailsTruncatedGzip(t *testing.T) {
	snap := sampleSnapshot(t)
	root := t.TempDir()
	if err := Write(root, snap); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(Dir(root, Rapid7, snap.Snapshot), "certs.ndjson.gz")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadWithStats(root, Rapid7, snap.Snapshot, ReadOptions{Tolerant: true}); err == nil {
		t.Fatal("tolerant read accepted a truncated gzip stream")
	}
}

// writeNDJSON must never leave a partial file at the target path: on an
// encode error the temp file is removed and a pre-existing good file
// survives untouched.
func TestWriteNDJSONCrashSafe(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "records.ndjson.gz")
	writeVals := func(vals []int) error {
		return writeNDJSON(path, len(vals), func(enc *json.Encoder, i int) error {
			return enc.Encode(vals[i])
		})
	}
	if err := writeVals([]int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	boom := errors.New("boom")
	err = writeNDJSON(path, 3, func(enc *json.Encoder, i int) error {
		if i == 1 {
			return boom
		}
		return enc.Encode(i)
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the encode error", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed write clobbered the existing file")
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("temp files leaked: %v", leftovers)
	}
	// The surviving file still round-trips through gzip.
	gz, err := gzip.NewReader(bytes.NewReader(after))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(gz); err != nil {
		t.Fatal(err)
	}
}

// TestWriteNDJSONSyncsDir pins the durability half of the crash-safety
// claim: a successful writeNDJSON must fsync the parent directory after
// the rename (or the rename may not survive power loss), and a failed
// write — whose rename never happens — must not.
func TestWriteNDJSONSyncsDir(t *testing.T) {
	orig := fsyncDir
	defer func() { fsyncDir = orig }()
	var synced []string
	fsyncDir = func(dir string) error {
		synced = append(synced, dir)
		return orig(dir)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "records.ndjson.gz")
	if err := writeNDJSON(path, 2, func(enc *json.Encoder, i int) error {
		return enc.Encode(i)
	}); err != nil {
		t.Fatal(err)
	}
	if len(synced) != 1 || synced[0] != dir {
		t.Fatalf("successful write synced %v, want exactly [%s]", synced, dir)
	}

	synced = nil
	boom := errors.New("boom")
	err := writeNDJSON(path, 1, func(*json.Encoder, int) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the encode error", err)
	}
	if len(synced) != 0 {
		t.Fatalf("failed write synced the directory (%v) despite no rename", synced)
	}
}
