// Package timeline defines the study clock: the quarterly snapshot grid
// from October 2013 to April 2021 that every dataset in the paper is
// aggregated on (31 snapshots). All simulators and analyses address time
// through Snapshot indices so the whole system shares one calendar.
package timeline

import (
	"fmt"
	"time"
)

// Snapshot is a quarterly snapshot index: 0 is 2013-10, Count()-1 is
// 2021-04.
type Snapshot int

// start is the first snapshot month.
var start = time.Date(2013, time.October, 1, 0, 0, 0, 0, time.UTC)

// Count returns the number of snapshots in the study period (31).
func Count() int { return 31 }

// All returns every snapshot in order.
func All() []Snapshot {
	out := make([]Snapshot, Count())
	for i := range out {
		out[i] = Snapshot(i)
	}
	return out
}

// Valid reports whether s is inside the study period.
func (s Snapshot) Valid() bool { return s >= 0 && int(s) < Count() }

// Time returns the first instant of the snapshot's month.
func (s Snapshot) Time() time.Time {
	return start.AddDate(0, 3*int(s), 0)
}

// MidTime returns an instant mid-month, used as "scan time" when
// validating certificate windows.
func (s Snapshot) MidTime() time.Time {
	return s.Time().AddDate(0, 0, 14)
}

// EndTime returns the first instant after the snapshot's month.
func (s Snapshot) EndTime() time.Time {
	return s.Time().AddDate(0, 1, 0)
}

// Label renders the snapshot as the paper labels its x-axes: "2013-10".
func (s Snapshot) Label() string {
	t := s.Time()
	return fmt.Sprintf("%04d-%02d", t.Year(), int(t.Month()))
}

// String implements fmt.Stringer.
func (s Snapshot) String() string { return s.Label() }

// FromLabel parses a "YYYY-MM" label back into a snapshot. It returns
// false if the label does not land exactly on the quarterly grid.
func FromLabel(label string) (Snapshot, bool) {
	var y, m int
	if _, err := fmt.Sscanf(label, "%d-%d", &y, &m); err != nil {
		return 0, false
	}
	months := (y-start.Year())*12 + (m - int(start.Month()))
	if months < 0 || months%3 != 0 {
		return 0, false
	}
	s := Snapshot(months / 3)
	if !s.Valid() {
		return 0, false
	}
	return s, true
}

// At returns the snapshot whose quarter contains t, and false if t is
// outside the study period.
func At(t time.Time) (Snapshot, bool) {
	if t.Before(start) {
		return 0, false
	}
	months := (t.Year()-start.Year())*12 + int(t.Month()) - int(start.Month())
	s := Snapshot(months / 3)
	if !s.Valid() {
		return 0, false
	}
	return s, true
}
