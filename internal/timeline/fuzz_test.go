package timeline

import "testing"

func FuzzFromLabel(f *testing.F) {
	for _, seed := range []string{"2013-10", "2021-04", "2016-07", "1999-01", "x", "2014-1", "2014-02"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		snap, ok := FromLabel(s)
		if !ok {
			return
		}
		if !snap.Valid() {
			t.Fatalf("FromLabel(%q) returned invalid snapshot %d", s, snap)
		}
		if back, ok2 := FromLabel(snap.Label()); !ok2 || back != snap {
			t.Fatalf("label round trip failed: %q → %v → %q", s, snap, snap.Label())
		}
	})
}
