package timeline

import (
	"testing"
	"time"
)

func TestBounds(t *testing.T) {
	if Count() != 31 {
		t.Fatalf("Count = %d, want 31 (quarterly 2013-10..2021-04)", Count())
	}
	if Snapshot(0).Label() != "2013-10" {
		t.Errorf("first label = %q", Snapshot(0).Label())
	}
	if last := Snapshot(Count() - 1); last.Label() != "2021-04" {
		t.Errorf("last label = %q", last.Label())
	}
}

func TestLabelsQuarterly(t *testing.T) {
	want := []string{"2013-10", "2014-01", "2014-04", "2014-07", "2014-10"}
	for i, w := range want {
		if got := Snapshot(i).Label(); got != w {
			t.Errorf("snapshot %d label = %q, want %q", i, got, w)
		}
	}
}

func TestFromLabelRoundTrip(t *testing.T) {
	for _, s := range All() {
		back, ok := FromLabel(s.Label())
		if !ok || back != s {
			t.Fatalf("round trip failed for %v: got %v, %v", s, back, ok)
		}
	}
}

func TestFromLabelRejects(t *testing.T) {
	for _, bad := range []string{"", "2013-09", "2013-11", "2012-10", "2021-07", "garbage"} {
		if _, ok := FromLabel(bad); ok {
			t.Errorf("FromLabel(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestTimesOrdered(t *testing.T) {
	for i := 1; i < Count(); i++ {
		if !Snapshot(i - 1).Time().Before(Snapshot(i).Time()) {
			t.Fatalf("snapshot times not increasing at %d", i)
		}
	}
	s := Snapshot(3)
	if !s.Time().Before(s.MidTime()) || !s.MidTime().Before(s.EndTime()) {
		t.Error("Time < MidTime < EndTime must hold")
	}
}

func TestAt(t *testing.T) {
	s, ok := At(time.Date(2013, 11, 15, 0, 0, 0, 0, time.UTC))
	if !ok || s != 0 {
		t.Errorf("At(2013-11) = %v, %v", s, ok)
	}
	s, ok = At(time.Date(2014, 2, 1, 0, 0, 0, 0, time.UTC))
	if !ok || s != 1 {
		t.Errorf("At(2014-02) = %v, %v", s, ok)
	}
	if _, ok := At(time.Date(2013, 9, 30, 0, 0, 0, 0, time.UTC)); ok {
		t.Error("before study period should be invalid")
	}
	if _, ok := At(time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)); ok {
		t.Error("after study period should be invalid")
	}
}

func TestValid(t *testing.T) {
	if Snapshot(-1).Valid() || Snapshot(Count()).Valid() {
		t.Error("out-of-range snapshots must be invalid")
	}
	if !Snapshot(0).Valid() || !Snapshot(Count()-1).Valid() {
		t.Error("boundary snapshots must be valid")
	}
}
